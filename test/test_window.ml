(* Windowed permissibility: extraction invariants, the windowed-vs-
   global differential over a large fuzz population (a window [Proved]
   claims global soundness, so it must never contradict a decided
   global refutation), and the forged-verdict resilience leg. *)

module Circuit = Netlist.Circuit
module Engine = Sim.Engine
module Rng = Sim.Rng
module Gen = Fuzz.Gen
module Oracle = Fuzz.Oracle
module Window = Atpg.Window
module Check = Powder.Check
module Subst = Powder.Subst

(* Candidate generation mirroring the fuzz harness: signature-matched
   substitutions over a private random pattern set. *)
let candidates_of ~seed c k =
  let eng = Engine.create c ~words:4 in
  Engine.randomize eng (Rng.stream seed "fuzz/pat");
  let est = Power.Estimator.create eng in
  let cfg =
    {
      Powder.Candidates.classes = Subst.all_klasses;
      per_target = 2;
      pool_limit = 30;
      require_positive = false;
      credit_downstream = false;
      index = Powder.Candidates.Hash;
    }
  in
  let all = Powder.Candidates.generate ~config:cfg est in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: rest -> x :: take (n - 1) rest
  in
  take k all

let case_circuit i =
  let seed = Rng.derive 424242L (Printf.sprintf "window-case-%d" i) in
  (seed, Gen.generate (Gen.spec_of_seed seed))

(* ------------------------------------------------------------------ *)
(* Extraction invariants                                               *)
(* ------------------------------------------------------------------ *)

let test_extract_invariants () =
  let windows = ref 0 in
  for i = 0 to 39 do
    let _, c = case_circuit i in
    List.iter
      (fun id ->
        match Circuit.kind c id with
        | Circuit.Cell _ when Circuit.num_fanouts c id > 0 -> (
          match
            Window.extract c ~roots:[ id ] ~support:[ id ] ~max_cut:6
              ~max_volume:60
          with
          | None -> ()
          | Some w ->
            incr windows;
            Alcotest.(check bool)
              "cut within the overflow bound" true
              (Window.cut_size w <= 12);
            Alcotest.(check bool)
              "root is internal" true (Window.is_internal w id);
            (* every internal fanin is internal or on the cut *)
            Array.iter
              (fun n ->
                Array.iter
                  (fun f ->
                    let ok =
                      Window.is_internal w f
                      || Array.exists (fun x -> x = f) w.Window.cut
                    in
                    Alcotest.(check bool) "closed under fanin" true ok)
                  (Circuit.fanins c n))
              w.Window.order;
            (* escapes are changed nodes *)
            Array.iter
              (fun e ->
                Alcotest.(check bool) "escape is changed" true
                  (Window.is_changed w e))
              w.Window.escapes)
        | _ -> ())
      (Circuit.live_gates c)
  done;
  Alcotest.(check bool) "extracted a real population" true (!windows > 100)

(* ------------------------------------------------------------------ *)
(* Windowed-vs-global differential                                     *)
(* ------------------------------------------------------------------ *)

(* >= 200 fuzz netlists; every window [Proved] is cross-checked against
   the three-backend global oracle.  Zero mismatches allowed. *)
let test_differential_200 () =
  let proved = ref 0 and escalated = ref 0 and mismatches = ref 0 in
  for i = 0 to 219 do
    let seed, c = case_circuit i in
    List.iter
      (fun (s, _) ->
        if not (Subst.creates_cycle c s) then
          match Check.windowed ~max_cut:8 c s with
          | Check.W_escalated _ -> incr escalated
          | Check.W_proved ->
            incr proved;
            let r = Oracle.check c s in
            if r.Oracle.final = Oracle.No && not r.Oracle.split then begin
              incr mismatches;
              Printf.eprintf "case %d: window proved, oracle refuted: %s\n" i
                (Subst.describe c s)
            end)
      (candidates_of ~seed c 6)
  done;
  Alcotest.(check int) "zero windowed-vs-global mismatches" 0 !mismatches;
  (* the run must actually exercise the prover, not just escalate *)
  Alcotest.(check bool)
    (Printf.sprintf "window proofs happen (%d proved, %d escalated)" !proved
       !escalated)
    true
    (!proved > 200 && !escalated > 0)

(* ------------------------------------------------------------------ *)
(* Forged-verdict leg                                                  *)
(* ------------------------------------------------------------------ *)

(* Arm the one-shot forge so the window prover lies (a real window
   refutation becomes [Proved]).  A forge consumed on a spurious window
   counterexample is harmless by luck — the candidate really was
   permissible — so re-arm until the differential catches an actual
   lie.  The differential MUST catch it; if it never does, the guard
   layer is dead code and this test fails. *)
let test_forged_verdict_caught () =
  let caught = ref false in
  let i = ref 0 in
  while (not !caught) && !i < 400 do
    let seed, c = case_circuit !i in
    Window.inject_forge ();
    List.iter
      (fun (s, _) ->
        if not (Subst.creates_cycle c s) then
          match Check.windowed ~max_cut:8 c s with
          | Check.W_escalated _ -> ()
          | Check.W_proved ->
            let r = Oracle.check c s in
            if r.Oracle.final = Oracle.No && not r.Oracle.split then
              caught := true)
      (candidates_of ~seed c 6);
    incr i
  done;
  Window.clear_forge ();
  Alcotest.(check bool)
    (Printf.sprintf "forged window verdict caught (within %d cases)" !i)
    true !caught

let test_forge_arm_clear () =
  Alcotest.(check bool) "disarmed at rest" false (Window.forge_armed ());
  Window.inject_forge ();
  Alcotest.(check bool) "armed after inject" true (Window.forge_armed ());
  Window.clear_forge ();
  Alcotest.(check bool) "disarmed after clear" false (Window.forge_armed ())

(* ------------------------------------------------------------------ *)
(* Determinism                                                         *)
(* ------------------------------------------------------------------ *)

(* The windowed verdict is a pure function of (circuit, substitution,
   cut budget): re-running yields the identical verdict, and the
   extraction does not mutate the circuit. *)
let test_windowed_deterministic () =
  for i = 0 to 19 do
    let seed, c = case_circuit i in
    let before = Blif.Blif_io.circuit_to_string c in
    List.iter
      (fun (s, _) ->
        if not (Subst.creates_cycle c s) then begin
          let v1 = Check.windowed ~max_cut:8 c s in
          let v2 = Check.windowed ~max_cut:8 c s in
          Alcotest.(check bool) "same verdict on re-run" true (v1 = v2)
        end)
      (candidates_of ~seed c 6);
    Alcotest.(check string) "circuit untouched" before
      (Blif.Blif_io.circuit_to_string c)
  done

let suite =
  [
    ( "window",
      [
        Alcotest.test_case "extract invariants" `Quick test_extract_invariants;
        Alcotest.test_case "windowed deterministic" `Quick
          test_windowed_deterministic;
        Alcotest.test_case "forge arm/clear" `Quick test_forge_arm_clear;
        Alcotest.test_case "differential vs global oracle (200+ netlists)"
          `Slow test_differential_200;
        Alcotest.test_case "forged verdict caught" `Slow
          test_forged_verdict_caught;
      ] );
  ]
