(* The fuzz subsystem's own tests: generator determinism and
   function preservation, differential-oracle agreement (including the
   injected-split tie-breaker path), shrinker soundness, bundle round
   trips, and the end-to-end harness with an injected Guard fault. *)

module Circuit = Netlist.Circuit
module Engine = Sim.Engine
module Rng = Sim.Rng
module Gen = Fuzz.Gen
module Oracle = Fuzz.Oracle
module Shrink = Fuzz.Shrink
module Bundle = Fuzz.Bundle
module Harness = Fuzz.Harness

let lib = Gatelib.Library.lib2
let cell name = Gatelib.Library.find lib name

let counter_value name =
  match Obs.Metrics.find name with Some (`Counter n) -> n | _ -> 0

(* PO equivalence on a shared exhaustive/random pattern set. *)
let equivalent a b =
  let words = 16 in
  let ea = Engine.create a ~words and eb = Engine.create b ~words in
  let npis = List.length (Circuit.pis a) in
  if 1 lsl npis <= 64 * words then begin
    Engine.exhaustive ea;
    Engine.exhaustive eb
  end
  else begin
    Engine.randomize ea (Rng.stream 99L "test/equiv");
    Engine.randomize eb (Rng.stream 99L "test/equiv")
  end;
  Engine.equivalent_on_patterns ea eb

(* ------------------------------------------------------------------ *)
(* Generator                                                           *)
(* ------------------------------------------------------------------ *)

let test_spec_deterministic () =
  let s1 = Gen.spec_of_seed 42L and s2 = Gen.spec_of_seed 42L in
  Alcotest.(check bool) "same seed, same spec" true (s1 = s2);
  let c1 = Gen.generate s1 and c2 = Gen.generate s2 in
  Alcotest.(check string) "same seed, same netlist"
    (Blif.Blif_io.circuit_to_string c1)
    (Blif.Blif_io.circuit_to_string c2);
  let s3 = Gen.spec_of_seed 43L in
  Alcotest.(check bool) "different seed, different spec" true (s1 <> s3)

let test_generator_validates () =
  for i = 0 to 11 do
    let spec = Gen.spec_of_seed (Int64.of_int (100 + i)) in
    let c = Gen.generate spec in
    (match Circuit.validate c with
    | Ok () -> ()
    | Error e ->
      Alcotest.failf "seed %d: generated circuit invalid: %s" (100 + i) e);
    Alcotest.(check bool)
      (Printf.sprintf "seed %d: non-degenerate" (100 + i))
      true
      (Circuit.gate_count c >= 0 && Circuit.pos c <> [])
  done

let test_mutations_preserve_function () =
  for i = 0 to 9 do
    let spec = Gen.spec_of_seed (Int64.of_int (200 + i)) in
    let base = Gen.base spec in
    let mutated = Gen.generate spec in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d: mutated = base" (200 + i))
      true (equivalent base mutated)
  done

let test_each_mutation_preserves_function () =
  List.iter
    (fun m ->
      (* a fixed mapped circuit with multi-fanout stems *)
      let spec = Gen.spec_of_seed 7L in
      let c = Gen.base spec in
      let reference = Circuit.clone c in
      let rng = Rng.stream 7L "test/mutation" in
      let applied = Gen.mutate rng c m in
      (match Circuit.validate c with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s: invalid: %s" (Gen.mutation_name m) e);
      if applied then
        Alcotest.(check bool)
          (Gen.mutation_name m ^ " preserves function")
          true (equivalent reference c))
    Gen.all_mutations

(* ------------------------------------------------------------------ *)
(* Oracle                                                              *)
(* ------------------------------------------------------------------ *)

(* Figure 2: reconnecting the EXOR's [a] input to [e = a*b] is the
   paper's known-permissible IS2 substitution; replacing stem [d] by
   the unrelated signal [a] is refuted. *)
let test_oracle_agrees_on_fig2 () =
  let c, a, _, _, d, e, _ = Build.fig2_a () in
  let good =
    { Powder.Subst.target = Powder.Subst.Branch { sink = d; pin = 0 };
      source = Powder.Subst.Signal e }
  in
  let r = Oracle.check c good in
  Alcotest.(check bool) "no split on permissible" false r.Oracle.split;
  Alcotest.(check bool) "verdict yes" true (r.Oracle.final = Oracle.Yes);
  let bad =
    { Powder.Subst.target = Powder.Subst.Stem d;
      source = Powder.Subst.Signal a }
  in
  let r = Oracle.check c bad in
  Alcotest.(check bool) "no split on refuted" false r.Oracle.split;
  Alcotest.(check bool) "verdict no" true (r.Oracle.final = Oracle.No);
  Alcotest.(check bool) "counterexample replayed" false r.Oracle.bad_cex

let test_oracle_agrees_on_fuzzed () =
  let seen = ref 0 in
  for i = 0 to 5 do
    let spec = Gen.spec_of_seed (Int64.of_int (300 + i)) in
    let c = Gen.generate spec in
    let eng = Engine.create c ~words:4 in
    Engine.randomize eng (Rng.stream (Int64.of_int i) "test/pat");
    let est = Power.Estimator.create eng in
    let cands =
      Powder.Candidates.generate
        ~config:
          { Powder.Candidates.classes = Powder.Subst.all_klasses;
            per_target = 2; pool_limit = 16; require_positive = false;
            credit_downstream = false; index = Powder.Candidates.Hash }
        est
    in
    List.iteri
      (fun j (s, _) ->
        if j < 3 && not (Powder.Subst.creates_cycle c s) then begin
          incr seen;
          let r = Oracle.check c s in
          Alcotest.(check bool)
            (Printf.sprintf "seed %d cand %d: backends agree" (300 + i) j)
            false r.Oracle.split
        end)
      cands
  done;
  Alcotest.(check bool) "exercised some candidates" true (!seen > 0)

(* Satellite: on a reconvergent 14-PI circuit the exhaustive backend
   abstains, so a flipped SAT verdict splits the decided backends and
   must be settled by the forced-exhaustive tie-breaker, visibly in the
   fuzz/oracle_split counter. *)
let test_oracle_split_tiebreak_wide () =
  let aig = Circuits.Generators.comparator ~width:7 in
  let c = Mapper.Techmap.map lib aig in
  Alcotest.(check bool) "wide enough" true (List.length (Circuit.pis c) >= 14);
  (* a duplicated gate gives a trivially permissible stem substitution *)
  let g =
    match Circuit.live_gates c with
    | g :: _ -> g
    | [] -> Alcotest.fail "no gates"
  in
  let dup = Circuit.add_cell c (Circuit.cell_of c g) (Circuit.fanins c g) in
  let s =
    { Powder.Subst.target = Powder.Subst.Stem g;
      source = Powder.Subst.Signal dup }
  in
  let splits0 = counter_value "fuzz/oracle_split" in
  let tiebreaks0 = counter_value "fuzz/oracle_tiebreak" in
  let r = Oracle.check c s in
  Alcotest.(check bool) "sanity: no split unflipped" false r.Oracle.split;
  Alcotest.(check bool) "exhaustive abstained" true
    (List.assoc Oracle.Exhaustive r.Oracle.verdicts = Oracle.Abstain);
  Oracle.inject_flip Oracle.Sat;
  let r = Oracle.check c s in
  Oracle.clear_injection ();
  Alcotest.(check bool) "flipped sat splits" true r.Oracle.split;
  Alcotest.(check bool) "resolved by exhaustive tie-breaker" true
    (r.Oracle.resolved_by = Some Oracle.Exhaustive);
  Alcotest.(check bool) "tie-breaker restores truth" true
    (r.Oracle.final = Oracle.Yes);
  Alcotest.(check int) "fuzz/oracle_split counted" (splits0 + 1)
    (counter_value "fuzz/oracle_split");
  Alcotest.(check int) "fuzz/oracle_tiebreak counted" (tiebreaks0 + 1)
    (counter_value "fuzz/oracle_tiebreak")

(* ------------------------------------------------------------------ *)
(* Shrinker                                                            *)
(* ------------------------------------------------------------------ *)

let test_shrink_preserves_predicate () =
  let spec = Gen.spec_of_seed 11L in
  let c = Gen.generate spec in
  (* failure = "some xor2/xnor2 gate is present"; absent from some
     circuits, so fall back to plain and2 which the library guarantees *)
  let has_cell names cand =
    List.exists
      (fun g ->
        List.mem (Circuit.cell_of cand g).Gatelib.Cell.name names)
      (Circuit.live_gates cand)
  in
  let names =
    if has_cell [ "xor2"; "xnor2" ] c then [ "xor2"; "xnor2" ]
    else [ (Circuit.cell_of c (List.hd (Circuit.live_gates c))).Gatelib.Cell.name ]
  in
  let failing cand = has_cell names cand in
  let shrunk, st = Shrink.minimize ~failing c in
  Alcotest.(check bool) "predicate still fails" true (failing shrunk);
  Alcotest.(check bool) "valid after shrink" true
    (Circuit.validate shrunk = Ok ());
  Alcotest.(check bool) "did not grow" true
    (st.Shrink.final_gates <= st.Shrink.initial_gates);
  Alcotest.(check int) "stats consistent" st.Shrink.final_gates
    (Circuit.gate_count shrunk)

let test_shrink_reaches_minimum () =
  let spec = Gen.spec_of_seed 12L in
  let c = Gen.generate spec in
  let failing cand = Circuit.gate_count cand >= 1 in
  let shrunk, st = Shrink.minimize ~failing c in
  Alcotest.(check bool) "shrinks a trivial predicate hard" true
    (Circuit.gate_count shrunk <= 2);
  Alcotest.(check bool) "counted steps" true (st.Shrink.steps > 0)

let test_shrink_non_failing_unchanged () =
  let spec = Gen.spec_of_seed 13L in
  let c = Gen.generate spec in
  let shrunk, st = Shrink.minimize ~failing:(fun _ -> false) c in
  Alcotest.(check int) "no steps" 0 st.Shrink.steps;
  Alcotest.(check string) "unchanged"
    (Blif.Blif_io.circuit_to_string c)
    (Blif.Blif_io.circuit_to_string shrunk)

let test_restrict_pos_keeps_cone () =
  (* two POs: keep one, its function must be untouched *)
  let c = Circuit.create lib in
  let a = Circuit.add_pi c ~name:"a" in
  let b = Circuit.add_pi c ~name:"b" in
  let x = Circuit.add_cell c ~name:"x" (cell "and2") [| a; b |] in
  let y = Circuit.add_cell c ~name:"y" (cell "or2") [| a; b |] in
  ignore (Circuit.add_po c ~name:"po_x" x);
  ignore (Circuit.add_po c ~name:"po_y" y);
  let r = Shrink.restrict_pos c [ "po_x" ] in
  Alcotest.(check bool) "valid" true (Circuit.validate r = Ok ());
  Alcotest.(check int) "one po" 1 (List.length (Circuit.pos r));
  Alcotest.(check int) "or2 cone dropped" 1 (Circuit.gate_count r);
  let e = Engine.create r ~words:1 and e0 = Engine.create c ~words:1 in
  Engine.exhaustive e;
  Engine.exhaustive e0;
  let x' = Option.get (Circuit.find_by_name r "x") in
  Alcotest.(check int) "kept cone is still a*b" (Engine.count_ones e0 x)
    (Engine.count_ones e x')

(* ------------------------------------------------------------------ *)
(* Bundles                                                             *)
(* ------------------------------------------------------------------ *)

let test_bundle_roundtrip () =
  let spec = Gen.spec_of_seed 21L in
  let c = Gen.generate spec in
  let b =
    { Bundle.campaign_seed = 21L;
      case_seed = Rng.derive 21L "case-0";
      case = 0;
      kind = "oracle_split";
      detail = "unit test";
      injected = Some "forge_verdict";
      blif = Blif.Blif_io.circuit_to_string c;
      original_gates = Circuit.gate_count c;
      shrunk_gates = Circuit.gate_count c;
      shrink_steps = 0 }
  in
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "fuzz-bundle-test" in
  let path = Bundle.save ~dir b in
  (match Bundle.load path with
  | Error e -> Alcotest.failf "load failed: %s" e
  | Ok b' ->
    Alcotest.(check bool) "fields round-trip" true (b = b');
    (match Bundle.circuit b' with
    | Error e -> Alcotest.failf "embedded BLIF unusable: %s" e
    | Ok c' ->
      Alcotest.(check int) "same gates" (Circuit.gate_count c)
        (Circuit.gate_count c')));
  Sys.remove path

(* ------------------------------------------------------------------ *)
(* Harness                                                             *)
(* ------------------------------------------------------------------ *)

let test_harness_clean_campaign () =
  let cases0 = counter_value "fuzz/cases" in
  let r =
    Harness.run
      { Harness.default_config with
        seed = 5L; cases = 4; budget_seconds = Some 30.0 }
  in
  Alcotest.(check int) "ran all cases" 4 r.Harness.cases_run;
  Alcotest.(check int) "no failures" 0 (List.length r.Harness.failures);
  Alcotest.(check int) "no splits" 0 r.Harness.oracle_splits;
  Alcotest.(check bool) "checked some verdicts" true (r.Harness.checks > 0);
  Alcotest.(check int) "fuzz/cases counted" (cases0 + 4)
    (counter_value "fuzz/cases")

let test_harness_catches_injected_fault () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ()) "fuzz-inject-test"
  in
  let r =
    Harness.run
      { Harness.default_config with
        seed = 1L;
        cases = 4;
        budget_seconds = Some 45.0;
        out_dir = Some dir;
        inject = Some Powder.Guard.Forge_verdict }
  in
  Alcotest.(check bool) "injected fault caught" true r.Harness.injected_caught;
  let f =
    match
      List.filter
        (fun (f : Harness.failure) -> f.Harness.kind = "injected_corruption")
        r.Harness.failures
    with
    | [ f ] -> f
    | l -> Alcotest.failf "expected 1 injected_corruption, got %d" (List.length l)
  in
  Alcotest.(check bool) "shrunk to <= 20 gates" true (f.Harness.gates <= 20);
  let path =
    match f.Harness.bundle_path with
    | Some p -> p
    | None -> Alcotest.fail "no bundle written"
  in
  (match Harness.replay path with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "bundle did not replay: %s" e);
  Sys.remove path

let test_harness_budget_respected () =
  let t0 = Obs.Clock.now () in
  let r =
    Harness.run
      { Harness.default_config with seed = 9L; budget_seconds = Some 1.0 }
  in
  let elapsed = Obs.Clock.now () -. t0 in
  Alcotest.(check bool) "made progress" true (r.Harness.cases_run >= 1);
  (* one in-flight case may overrun the deadline, but not by much *)
  Alcotest.(check bool) "stopped near the budget" true (elapsed < 20.0)

let suite =
  [
    ( "fuzz",
      [
        Alcotest.test_case "spec and netlist are seed-deterministic" `Quick
          test_spec_deterministic;
        Alcotest.test_case "generated circuits validate" `Quick
          test_generator_validates;
        Alcotest.test_case "mutation pipeline preserves function" `Quick
          test_mutations_preserve_function;
        Alcotest.test_case "each mutation preserves function" `Quick
          test_each_mutation_preserves_function;
        Alcotest.test_case "oracle agrees on fig2 verdicts" `Quick
          test_oracle_agrees_on_fig2;
        Alcotest.test_case "oracle agrees on fuzzed candidates" `Quick
          test_oracle_agrees_on_fuzzed;
        Alcotest.test_case "injected split resolves via exhaustive tie-break"
          `Quick test_oracle_split_tiebreak_wide;
        Alcotest.test_case "shrinker preserves the failure" `Quick
          test_shrink_preserves_predicate;
        Alcotest.test_case "shrinker reaches a minimal form" `Quick
          test_shrink_reaches_minimum;
        Alcotest.test_case "shrinker leaves non-failures alone" `Quick
          test_shrink_non_failing_unchanged;
        Alcotest.test_case "restrict_pos keeps the chosen cone" `Quick
          test_restrict_pos_keeps_cone;
        Alcotest.test_case "bundles round-trip through JSON" `Quick
          test_bundle_roundtrip;
        Alcotest.test_case "clean campaign finds nothing" `Quick
          test_harness_clean_campaign;
        Alcotest.test_case "injected guard fault is caught, shrunk, replayable"
          `Quick test_harness_catches_injected_fault;
        Alcotest.test_case "campaign respects its budget" `Quick
          test_harness_budget_respected;
      ] );
  ]
