(* The incremental-miter permissibility check must agree with the
   brute-force clone + full equivalence check on every candidate. *)

module Circuit = Netlist.Circuit
module Engine = Sim.Engine
module Estimator = Power.Estimator
module Subst = Powder.Subst
module Check = Powder.Check
module Equiv = Atpg.Equiv

type tag = Perm | Not_perm

let tag_of = function
  | Check.Permissible -> Some Perm
  | Check.Not_permissible _ -> Some Not_perm
  | Check.Gave_up _ -> None

let reference_verdict circ s =
  match Powder.Subst.apply_to_clone circ s with
  | clone -> (
    match Equiv.check ~exhaustive_limit:16 circ clone with
    | Equiv.Equivalent -> Some Perm
    | Equiv.Different _ -> Some Not_perm
    | Equiv.Unknown -> None)
  | exception Invalid_argument _ -> None

let candidates_of circ =
  let eng = Engine.create circ ~words:8 in
  Engine.randomize eng (Sim.Rng.create 5L);
  let est = Estimator.create eng in
  (* include negative-gain candidates too: correctness is what matters *)
  let config = { Powder.Candidates.default_config with require_positive = false } in
  Powder.Candidates.generate ~config est

let agree_on_circuit circ =
  List.for_all
    (fun (s, _) ->
      if Subst.creates_cycle circ s then true
      else
        match reference_verdict circ s with
        | None -> true
        | Some expected -> (
          match tag_of (Check.permissible ~exhaustive_limit:12 circ s) with
          | None -> true
          | Some got -> got = expected))
    (candidates_of circ)

let test_fig2_candidates () =
  let circ, _, _, _, _, _, _ = Build.fig2_a () in
  Alcotest.(check bool) "agree" true (agree_on_circuit circ)

let prop_incremental_equals_full =
  QCheck.Test.make ~name:"incremental miter = full check" ~count:12
    QCheck.(int_bound 9999)
    (fun seed ->
      let circ = Build.random_circuit ~seed ~n_pis:7 ~n_gates:30 in
      agree_on_circuit circ)

let prop_incremental_equals_full_sat =
  (* force the SAT path even on narrow circuits *)
  QCheck.Test.make ~name:"incremental miter (sat) = full check" ~count:8
    QCheck.(int_bound 9999)
    (fun seed ->
      let circ = Build.random_circuit ~seed ~n_pis:7 ~n_gates:25 in
      List.for_all
        (fun (s, _) ->
          if Subst.creates_cycle circ s then true
          else
            match reference_verdict circ s with
            | None -> true
            | Some expected -> (
              match
                tag_of (Check.permissible ~exhaustive_limit:0 ~engine:`Sat circ s)
              with
              | None -> true
              | Some got -> got = expected))
        (candidates_of circ))

let test_benchmark_candidates () =
  (* cross-check on a real mapped benchmark with reconvergence *)
  match Circuits.Suite.find "alu2" with
  | None -> Alcotest.fail "alu2 missing"
  | Some spec ->
    let circ = Circuits.Suite.mapped spec in
    Alcotest.(check bool) "agree on alu2" true (agree_on_circuit circ)

let suite =
  [
    ( "check",
      [
        Alcotest.test_case "fig2 candidates" `Quick test_fig2_candidates;
        QCheck_alcotest.to_alcotest prop_incremental_equals_full;
        QCheck_alcotest.to_alcotest prop_incremental_equals_full_sat;
        Alcotest.test_case "benchmark candidates" `Slow test_benchmark_candidates;
      ] );
  ]
