(* The profiling layer: call-tree aggregation from the span stream,
   the exclusive-time invariant, the flamegraph/Chrome exports, the
   run manifest, allocation deltas, histogram quantiles, and the
   jobs-N ≡ jobs-1 profile-identity contract. *)

module Trace = Obs.Trace
module Profile = Obs.Profile
module Runinfo = Obs.Runinfo
module Metrics = Obs.Metrics
module Optimizer = Powder.Optimizer
module Circuit = Netlist.Circuit

let span_end ?(ts = 0.0) ?(alloc = 0.0) path dur =
  {
    Trace.ts;
    name = "span_end";
    path;
    fields = [ ("dur_s", Trace.Float dur); ("alloc_b", Trace.Float alloc) ];
  }

let point ?(ts = 0.0) name fields = { Trace.ts; name; path = []; fields }

(* ------------------------------------------------------------------ *)
(* Aggregation from a synthetic stream.                                *)
(* ------------------------------------------------------------------ *)

(* Durations are powers of two, so inclusive/exclusive arithmetic is
   exact and the folded microsecond values are integers. *)
let synthetic_profile () =
  let p = Profile.create () in
  Profile.add_event p (span_end [ "gen"; "scan" ] 0.125);
  Profile.add_event p (span_end [ "gen"; "scan" ] 0.125);
  Profile.add_event p (span_end [ "gen"; "sel" ] 0.25);
  Profile.add_event p (span_end [ "gen" ] 1.0);
  Profile.add_event p (span_end [ "sta" ] 0.5);
  p

let test_tree_aggregation () =
  let p = synthetic_profile () in
  Alcotest.(check (float 1e-9)) "total" 1.5 (Profile.total_seconds p);
  let seen = ref [] in
  Profile.iter_nodes p
    (fun ~path ~count ~inclusive_s ~exclusive_s ~alloc_bytes:_
         ~children_inclusive_s:_ ->
      seen := (String.concat ";" path, count, inclusive_s, exclusive_s) :: !seen);
  let find k =
    match List.find_opt (fun (p', _, _, _) -> p' = k) !seen with
    | Some r -> r
    | None -> Alcotest.failf "node %s missing" k
  in
  let _, n, incl, excl = find "gen" in
  Alcotest.(check int) "gen count" 1 n;
  Alcotest.(check (float 1e-9)) "gen inclusive" 1.0 incl;
  Alcotest.(check (float 1e-9)) "gen exclusive" 0.5 excl;
  let _, n, incl, excl = find "gen;scan" in
  Alcotest.(check int) "scan count" 2 n;
  Alcotest.(check (float 1e-9)) "scan inclusive" 0.25 incl;
  Alcotest.(check (float 1e-9)) "scan exclusive (leaf)" 0.25 excl;
  let _, _, _, excl = find "sta" in
  Alcotest.(check (float 1e-9)) "sta exclusive" 0.5 excl;
  Alcotest.(check int) "node count" 4 (List.length !seen)

let test_folded_golden () =
  let p = synthetic_profile () in
  Alcotest.(check string) "collapsed stacks"
    "gen 500000\ngen;scan 250000\ngen;sel 250000\nsta 500000\n"
    (Profile.to_folded p)

let test_funnel () =
  let p = Profile.create () in
  Profile.add_event p
    (point "round" [ ("round", Trace.Int 1); ("pool", Trace.Int 42) ]);
  Profile.add_event p (point "accept" []);
  Profile.add_event p (point "reject" [ ("reason", Trace.String "cex") ]);
  Profile.add_event p (point "reject" [ ("reason", Trace.String "cex") ]);
  Profile.add_event p (point "reject" [ ("reason", Trace.String "delay") ]);
  let j = Profile.to_json p in
  let rounds =
    Option.bind (Obs.Json.member "rounds" j) Obs.Json.get_list |> Option.get
  in
  Alcotest.(check int) "one round" 1 (List.length rounds);
  let r = List.hd rounds in
  let geti k = Option.bind (Obs.Json.member k r) Obs.Json.get_int in
  Alcotest.(check (option int)) "pool" (Some 42) (geti "pool");
  Alcotest.(check (option int)) "accepted" (Some 1) (geti "accepted");
  let rejected = Option.get (Obs.Json.member "rejected" r) in
  Alcotest.(check (option int)) "cex rejections" (Some 2)
    (Option.bind (Obs.Json.member "cex" rejected) Obs.Json.get_int);
  Alcotest.(check (option int)) "delay rejections" (Some 1)
    (Option.bind (Obs.Json.member "delay" rejected) Obs.Json.get_int)

(* ------------------------------------------------------------------ *)
(* Chrome trace-event export.                                          *)
(* ------------------------------------------------------------------ *)

let test_chrome_span () =
  match Profile.chrome_event (span_end ~ts:1.0 [ "a"; "b" ] 0.5) with
  | None -> Alcotest.fail "span_end must export"
  | Some j ->
    let gets k = Option.bind (Obs.Json.member k j) Obs.Json.get_string in
    let getf k = Option.bind (Obs.Json.member k j) Obs.Json.get_float in
    Alcotest.(check (option string)) "name (innermost span)" (Some "b")
      (gets "name");
    Alcotest.(check (option string)) "complete event" (Some "X") (gets "ph");
    Alcotest.(check (option (float 1e-6))) "ts = (end - dur) in us"
      (Some 500000.0) (getf "ts");
    Alcotest.(check (option (float 1e-6))) "dur in us" (Some 500000.0)
      (getf "dur");
    let path =
      Option.bind (Obs.Json.member "args" j) (Obs.Json.member "path")
    in
    Alcotest.(check (option string)) "args.path" (Some "a/b")
      (Option.bind path Obs.Json.get_string)

let test_chrome_instant_and_begin () =
  (match Profile.chrome_event (point ~ts:2.0 "accept" []) with
  | None -> Alcotest.fail "point events must export"
  | Some j ->
    Alcotest.(check (option string)) "instant" (Some "i")
      (Option.bind (Obs.Json.member "ph" j) Obs.Json.get_string));
  Alcotest.(check bool) "span_begin dropped" true
    (Profile.chrome_event (point "span_begin" []) = None)

let test_chrome_sink_wellformed () =
  let file = Filename.temp_file "powder_chrome" ".json" in
  let sink = Profile.chrome_sink (open_out file) in
  Trace.set_sink sink;
  Trace.with_span "outer" (fun () -> Trace.event "mark" []);
  Trace.close_sink ();
  let ic = open_in_bin file in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove file;
  match Obs.Json.of_string s with
  | Error e -> Alcotest.failf "chrome export is not JSON: %s" e
  | Ok j ->
    let events =
      Option.bind (Obs.Json.member "traceEvents" j) Obs.Json.get_list
      |> Option.get
    in
    (* one instant for the mark, one X for the span; the begin is folded *)
    Alcotest.(check int) "two trace events" 2 (List.length events)

(* ------------------------------------------------------------------ *)
(* Allocation deltas.                                                  *)
(* ------------------------------------------------------------------ *)

let test_alloc_delta () =
  let captured = ref [] in
  Trace.set_sink
    (Trace.make_sink
       ~emit:(fun e -> captured := e :: !captured)
       ~close:(fun () -> ()));
  Trace.with_span "alloc-test" (fun () ->
      ignore (Sys.opaque_identity (Bytes.create 1_000_000)));
  Trace.close_sink ();
  let span_end =
    List.find (fun e -> e.Trace.name = "span_end") !captured
  in
  match List.assoc_opt "alloc_b" span_end.Trace.fields with
  | Some (Trace.Float b) ->
    Alcotest.(check bool)
      (Printf.sprintf "alloc delta covers the megabyte (%.0f)" b)
      true
      (b >= 1_000_000.0)
  | _ -> Alcotest.fail "span_end carries no alloc_b field"

(* ------------------------------------------------------------------ *)
(* Run manifest.                                                       *)
(* ------------------------------------------------------------------ *)

let test_runinfo () =
  let m =
    Runinfo.create ~jobs:4 ~seed:7L ~circuit:"rd84"
      ~options:[ ("words", "8"); ("delay", "none") ]
      ()
  in
  let j = Runinfo.to_json m in
  Alcotest.(check (option string)) "circuit" (Some "rd84")
    (Option.bind (Obs.Json.member "circuit" j) Obs.Json.get_string);
  Alcotest.(check bool) "hostname present before strip" true
    (Obs.Json.member "hostname" j <> None);
  let stripped = Runinfo.strip_volatile j in
  List.iter
    (fun k ->
      Alcotest.(check bool) (k ^ " stripped") true
        (Obs.Json.member k stripped = None))
    Runinfo.volatile_fields;
  Alcotest.(check bool) "options_hash survives" true
    (Obs.Json.member "options_hash" stripped <> None);
  (* the hash depends only on the canonical options *)
  let m2 =
    Runinfo.create ~jobs:1 ~seed:7L ~circuit:"rd84"
      ~options:[ ("delay", "none"); ("words", "8") ]
      ()
  in
  Alcotest.(check string) "options hash is order-insensitive"
    m.Runinfo.options_hash m2.Runinfo.options_hash

let test_run_start_header () =
  let captured = ref [] in
  Trace.set_sink
    (Trace.make_sink
       ~emit:(fun e -> captured := e :: !captured)
       ~close:(fun () -> ()));
  let m =
    Runinfo.create ~jobs:1 ~seed:1L ~circuit:"c" ~options:[] ()
  in
  Runinfo.emit_run_start m;
  Trace.close_sink ();
  match List.rev !captured with
  | e :: _ ->
    Alcotest.(check string) "header event" "run_start" e.Trace.name;
    Alcotest.(check bool) "carries the tool" true
      (List.assoc_opt "tool" e.Trace.fields = Some (Trace.String "powder"))
  | [] -> Alcotest.fail "no event emitted"

(* ------------------------------------------------------------------ *)
(* Histogram quantiles.                                                *)
(* ------------------------------------------------------------------ *)

let test_quantiles () =
  let h = Metrics.histogram "test.profile.quantiles" in
  for _ = 1 to 100 do
    Metrics.observe h 1e-3
  done;
  Metrics.observe h 1.0;
  Alcotest.(check (float 0.0)) "max is exact" 1.0 (Metrics.histogram_max h);
  let p50 = Metrics.histogram_quantile h 0.5 in
  Alcotest.(check bool) "p50 within one bucket of 1ms" true
    (p50 >= 1e-3 && p50 <= 2.1e-3);
  let p99 = Metrics.histogram_quantile h 0.99 in
  Alcotest.(check bool) "p99 still in the 1ms bucket" true (p99 <= 2.1e-3);
  Alcotest.(check (float 0.0)) "p100 clamped to max" 1.0
    (Metrics.histogram_quantile h 1.0);
  Alcotest.(check (float 0.0)) "empty histogram" 0.0
    (Metrics.histogram_quantile (Metrics.histogram "test.profile.empty") 0.5)

(* ------------------------------------------------------------------ *)
(* End-to-end: optimizer profile invariants and jobs identity.         *)
(* ------------------------------------------------------------------ *)

let mapped name =
  match Circuits.Suite.find name with
  | Some spec -> Circuits.Suite.mapped spec
  | None -> Alcotest.failf "no circuit %s" name

let profile_at ~jobs name =
  let p = Profile.create () in
  Trace.set_sink (Profile.sink p);
  let config =
    { Optimizer.default_config with words = 8; max_rounds = 3; jobs }
  in
  ignore (Optimizer.optimize ~config (mapped name));
  Trace.close_sink ();
  p

let test_exclusive_invariant () =
  let p = profile_at ~jobs:1 "rd84" in
  Alcotest.(check bool) "profile not empty" true (Profile.total_seconds p > 0.0);
  Profile.iter_nodes p
    (fun ~path ~count ~inclusive_s ~exclusive_s ~alloc_bytes
         ~children_inclusive_s ->
      let name = String.concat ";" path in
      Alcotest.(check bool) (name ^ ": positive count") true (count > 0);
      Alcotest.(check bool) (name ^ ": children sum <= inclusive") true
        (children_inclusive_s <= inclusive_s +. 1e-6);
      Alcotest.(check (float 1e-9)) (name ^ ": exclusive identity")
        (inclusive_s -. children_inclusive_s) exclusive_s;
      Alcotest.(check bool) (name ^ ": alloc non-negative") true
        (alloc_bytes >= 0.0))

let test_generate_subspans_present () =
  let p = profile_at ~jobs:1 "rd84" in
  let paths = ref [] in
  Profile.iter_nodes p
    (fun ~path ~count:_ ~inclusive_s:_ ~exclusive_s:_ ~alloc_bytes:_
         ~children_inclusive_s:_ -> paths := String.concat ";" path :: !paths);
  List.iter
    (fun expected ->
      Alcotest.(check bool) (expected ^ " attributed") true
        (List.mem expected !paths))
    [
      "generate";
      "generate;generate/targets";
      "generate;generate/scan";
      "generate;generate/select";
      "sta";
    ]

let test_profile_jobs_identity () =
  let strip p =
    Obs.Json.to_string (Profile.strip_volatile (Profile.to_json p))
  in
  let p1 = profile_at ~jobs:1 "rd84" in
  let p4 = profile_at ~jobs:4 "rd84" in
  Alcotest.(check string) "profile identical at jobs 1 and 4" (strip p1)
    (strip p4)

let suite =
  [
    ( "profile",
      [
        Alcotest.test_case "call-tree aggregation" `Quick test_tree_aggregation;
        Alcotest.test_case "folded stacks golden" `Quick test_folded_golden;
        Alcotest.test_case "candidate funnel" `Quick test_funnel;
        Alcotest.test_case "chrome span export" `Quick test_chrome_span;
        Alcotest.test_case "chrome instant/begin" `Quick
          test_chrome_instant_and_begin;
        Alcotest.test_case "chrome sink well-formed" `Quick
          test_chrome_sink_wellformed;
        Alcotest.test_case "allocation delta" `Quick test_alloc_delta;
        Alcotest.test_case "run manifest" `Quick test_runinfo;
        Alcotest.test_case "run_start header" `Quick test_run_start_header;
        Alcotest.test_case "histogram quantiles" `Quick test_quantiles;
        Alcotest.test_case "exclusive-time invariant" `Quick
          test_exclusive_invariant;
        Alcotest.test_case "generate sub-spans attributed" `Quick
          test_generate_subspans_present;
        Alcotest.test_case "profile identical across jobs" `Quick
          test_profile_jobs_identity;
      ] );
  ]
