module Circuit = Netlist.Circuit
module Timing = Sta.Timing
module Library = Gatelib.Library
module Cell = Gatelib.Cell

let test_gate_delay_formula () =
  let c, _, _, _, d, _, _ = Build.fig2_a () in
  let xor2 = Library.find Build.lib "xor2" in
  (* d (xor2) drives one and2 pin: load 1.0 *)
  Alcotest.(check (float 1e-9)) "delay d"
    (xor2.Cell.tau +. (xor2.Cell.drive_res *. 1.0))
    (Timing.gate_delay c d)

let test_arrival_chain () =
  let c = Build.parity_chain 3 in
  let t = Timing.analyze c in
  let xor2 = Library.find Build.lib "xor2" in
  let d_last = xor2.Cell.tau +. (xor2.Cell.drive_res *. 1.0) in
  let d_first = xor2.Cell.tau +. (xor2.Cell.drive_res *. 2.0) in
  Alcotest.(check (float 1e-9)) "chain delay" (d_first +. d_last)
    (Timing.circuit_delay t)

let test_required_and_slack () =
  let c = Build.parity_chain 4 in
  let t = Timing.analyze c in
  (* with required = circuit delay, the critical path has zero slack *)
  let min_slack =
    List.fold_left
      (fun acc g -> Float.min acc (Timing.slack t g))
      infinity (Circuit.live_gates c)
  in
  Alcotest.(check (float 1e-9)) "zero slack on critical" 0.0 min_slack;
  (* a looser constraint gives positive slack everywhere *)
  let t2 = Timing.analyze ~required_time:(Timing.circuit_delay t +. 5.0) c in
  List.iter
    (fun g ->
      Alcotest.(check bool) "positive slack" true (Timing.slack t2 g >= 4.999))
    (Circuit.live_gates c)

let test_critical_path_is_path () =
  let c = Build.random_circuit ~seed:17 ~n_pis:6 ~n_gates:40 in
  let t = Timing.analyze c in
  let path = Timing.critical_path t in
  Alcotest.(check bool) "nonempty" true (path <> []);
  let rec check_consecutive = function
    | a :: (b :: _ as rest) ->
      let fanout_ok =
        List.exists (fun p -> p.Circuit.sink = b) (Circuit.fanouts c a)
      in
      Alcotest.(check bool) "edge exists" true fanout_ok;
      check_consecutive rest
    | [ last ] ->
      Alcotest.(check bool) "ends at po driver" true (Circuit.drives_po c last)
    | [] -> ()
  in
  check_consecutive path

let test_arrival_monotone_along_path () =
  let c = Build.random_circuit ~seed:23 ~n_pis:6 ~n_gates:40 in
  let t = Timing.analyze c in
  Array.iter
    (fun id ->
      Array.iter
        (fun f ->
          Alcotest.(check bool) "arrival monotone" true
            (Timing.arrival t f <= Timing.arrival t id +. 1e-9))
        (Circuit.fanins c id))
    (Circuit.topo_order c)

let prop_load_increases_delay =
  QCheck.Test.make ~name:"delay grows with load" ~count:50
    QCheck.(pair (float_range 0.0 10.0) (float_range 0.0 10.0))
    (fun (l1, l2) ->
      let c, _, _, _, d, _, _ = Build.fig2_a () in
      let low = Float.min l1 l2 and high = Float.max l1 l2 in
      Timing.delay_with_load c d low <= Timing.delay_with_load c d high +. 1e-12)

let prop_slack_consistency =
  QCheck.Test.make ~name:"slack = required - arrival" ~count:20
    QCheck.(int_bound 9999)
    (fun seed ->
      let c = Build.random_circuit ~seed ~n_pis:5 ~n_gates:20 in
      let t = Timing.analyze c in
      List.for_all
        (fun g ->
          Float.abs (Timing.slack t g -. (Timing.required t g -. Timing.arrival t g))
          < 1e-12)
        (Circuit.live_gates c))

(* Incremental re-analysis ([Timing.update] fed from the circuit's
   edit log) must be bit-equal — not merely close — to a from-scratch
   [analyze] after every edit burst.  The bursts are real optimizer
   edits: signature-matched substitutions applied with [Subst.apply]
   (which also sweeps), exactly the path the optimizer drives. *)
let test_update_bitequal_after_substitutions () =
  let bits = Int64.bits_of_float in
  for seed = 0 to 5 do
    let c = Build.random_circuit ~seed:(300 + seed) ~n_pis:6 ~n_gates:40 in
    let eng = Sim.Engine.create c ~words:2 in
    Sim.Engine.randomize eng
      (Sim.Rng.stream (Int64.of_int (77 + seed)) "test/sta-inc");
    let est = Power.Estimator.create eng in
    let t = ref (Timing.analyze c) in
    let cursor = ref (Circuit.edit_cursor c) in
    let applied = ref 0 in
    let progress = ref true in
    while !applied < 5 && !progress do
      let cands =
        Powder.Candidates.generate
          ~config:
            {
              Powder.Candidates.default_config with
              Powder.Candidates.require_positive = false;
            }
          est
      in
      match
        List.find_opt
          (fun (s, _) -> not (Powder.Subst.creates_cycle c s))
          cands
      with
      | None -> progress := false
      | Some (s, _) ->
        let src = Powder.Subst.apply c s in
        ignore (Power.Estimator.update_after_edit est src);
        (match Circuit.edits_since c !cursor with
        | Some dirty -> t := Timing.update !t ~dirty
        | None -> Alcotest.fail "edit log unexpectedly invalidated");
        cursor := Circuit.edit_cursor c;
        incr applied;
        let fresh = Timing.analyze c in
        Circuit.iter_live c (fun id ->
            let same name a b =
              if not (Int64.equal (bits a) (bits b)) then
                Alcotest.failf
                  "seed %d edit %d node %d: incremental %s %.17g <> fresh %.17g"
                  seed !applied id name a b
            in
            same "arrival" (Timing.arrival !t id) (Timing.arrival fresh id);
            same "required" (Timing.required !t id) (Timing.required fresh id);
            same "slack" (Timing.slack !t id) (Timing.slack fresh id))
    done;
    Alcotest.(check bool)
      (Printf.sprintf "seed %d: edits actually applied" seed)
      true (!applied >= 3)
  done

(* Same burst, constrained mode: a fixed required time must survive
   incremental updates bit-exactly too. *)
let test_update_bitequal_constrained () =
  let bits = Int64.bits_of_float in
  let c = Build.random_circuit ~seed:808 ~n_pis:6 ~n_gates:40 in
  let rt = Timing.required_time (Timing.analyze c) *. 1.1 in
  let eng = Sim.Engine.create c ~words:2 in
  Sim.Engine.randomize eng (Sim.Rng.stream 5050L "test/sta-inc-rt");
  let est = Power.Estimator.create eng in
  let t = ref (Timing.analyze ~required_time:rt c) in
  let cursor = ref (Circuit.edit_cursor c) in
  let cands =
    Powder.Candidates.generate
      ~config:
        {
          Powder.Candidates.default_config with
          Powder.Candidates.require_positive = false;
        }
      est
  in
  (match
     List.find_opt (fun (s, _) -> not (Powder.Subst.creates_cycle c s)) cands
   with
  | None -> Alcotest.fail "no applicable substitution"
  | Some (s, _) ->
    let src = Powder.Subst.apply c s in
    ignore (Power.Estimator.update_after_edit est src);
    (match Circuit.edits_since c !cursor with
    | Some dirty -> t := Timing.update ~required_time:rt !t ~dirty
    | None -> Alcotest.fail "edit log unexpectedly invalidated"));
  let fresh = Timing.analyze ~required_time:rt c in
  Circuit.iter_live c (fun id ->
      Alcotest.(check bool)
        (Printf.sprintf "node %d bit-equal" id)
        true
        (Int64.equal (bits (Timing.arrival !t id))
           (bits (Timing.arrival fresh id))
        && Int64.equal (bits (Timing.required !t id))
             (bits (Timing.required fresh id))))

let suite =
  [
    ( "sta",
      [
        Alcotest.test_case "gate delay formula" `Quick test_gate_delay_formula;
        Alcotest.test_case "arrival chain" `Quick test_arrival_chain;
        Alcotest.test_case "required and slack" `Quick test_required_and_slack;
        Alcotest.test_case "critical path is a path" `Quick test_critical_path_is_path;
        Alcotest.test_case "arrival monotone" `Quick test_arrival_monotone_along_path;
        Alcotest.test_case "incremental bit-equal after substitutions" `Quick
          test_update_bitequal_after_substitutions;
        Alcotest.test_case "incremental bit-equal constrained" `Quick
          test_update_bitequal_constrained;
        QCheck_alcotest.to_alcotest prop_load_increases_delay;
        QCheck_alcotest.to_alcotest prop_slack_consistency;
      ] );
  ]
