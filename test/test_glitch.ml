module Circuit = Netlist.Circuit
module Glitch = Power.Glitch
module Library = Gatelib.Library

let test_no_glitches_single_gate () =
  (* one gate cannot glitch: timed = zero-delay *)
  let lib = Build.lib in
  let c = Circuit.create lib in
  let a = Circuit.add_pi c ~name:"a" in
  let b = Circuit.add_pi c ~name:"b" in
  let f = Circuit.add_cell c (Library.find lib "and2") [| a; b |] in
  ignore (Circuit.add_po c ~name:"o" f);
  let r = Glitch.estimate ~pairs:64 c in
  Alcotest.(check (float 1e-9)) "no glitches" 0.0 r.Glitch.glitch_fraction

let test_unbalanced_paths_glitch () =
  (* classic hazard: f = xor(a, delayed(a)) shape — build
     f = xor2(a, inv(inv(inv(a)))): functionally constant... use
     instead g = and2(a, inv(a)) via a long inverter chain: the output
     is functionally constant 0 but pulses on rising a *)
  let lib = Build.lib in
  let c = Circuit.create lib in
  let a = Circuit.add_pi c ~name:"a" in
  let inv = Gatelib.Library.inverter lib in
  let i1 = Circuit.add_cell c inv [| a |] in
  let i2 = Circuit.add_cell c inv [| i1 |] in
  let i3 = Circuit.add_cell c inv [| i2 |] in
  let f = Circuit.add_cell c (Library.find lib "and2") [| a; i3 |] in
  ignore (Circuit.add_po c ~name:"o" f);
  let r = Glitch.estimate ~pairs:128 c in
  (* f is functionally constant 0: all its timed activity is glitches *)
  Alcotest.(check bool) "glitches observed" true (r.Glitch.glitch_fraction > 0.0);
  Alcotest.(check bool) "timed >= zero-delay" true
    (r.Glitch.timed_switched_cap >= r.Glitch.zero_delay_switched_cap -. 1e-9)

let test_zero_delay_matches_estimator_scale () =
  (* the zero-delay part of the glitch report must roughly agree with
     the Monte-Carlo estimator (same model, different sampling) *)
  let spec = Option.get (Circuits.Suite.find "rd84") in
  let c = Circuits.Suite.mapped spec in
  let r = Glitch.estimate ~pairs:512 ~seed:3L c in
  let eng = Sim.Engine.create c ~words:32 in
  Sim.Engine.randomize eng (Sim.Rng.create 3L);
  let est = Power.Estimator.create eng in
  let reference = Power.Estimator.total est in
  let ratio = r.Glitch.zero_delay_switched_cap /. reference in
  Alcotest.(check bool)
    (Printf.sprintf "ratio %.3f in [0.8, 1.2]" ratio)
    true
    (ratio > 0.8 && ratio < 1.2)

let test_timed_at_least_zero_delay () =
  List.iter
    (fun name ->
      let spec = Option.get (Circuits.Suite.find name) in
      let c = Circuits.Suite.mapped spec in
      let r = Glitch.estimate ~pairs:128 c in
      Alcotest.(check bool)
        (name ^ " timed >= functional")
        true
        (r.Glitch.timed_switched_cap >= r.Glitch.zero_delay_switched_cap -. 1e-9))
    [ "rd84"; "alu2"; "f51m" ]

(* --- differential reference for [Glitch.count_pair] ---------------

   An independent re-implementation of the transport-delay transition
   count by waveform algebra: instead of a global event queue, each
   node's output waveform is computed in topological order from its
   fanins' complete waveforms.  A node's candidate fire times are its
   fanins' change times shifted by the node's own delay; at each fire
   time the cell re-evaluates against its fanins' values at that
   instant (matching the queue's fire-time re-evaluation, which lets a
   later input change cancel a scheduled event), and only actual output
   changes are recorded.  Two genuinely different algorithms that must
   agree transition-for-transition on every node. *)

(* steady-state values under [vector], by direct topological evaluation *)
let eval_steady circ vector =
  let values = Array.make (Circuit.num_nodes circ) false in
  List.iteri (fun i pi -> values.(pi) <- List.nth vector i) (Circuit.pis circ);
  Array.iter
    (fun id ->
      match Circuit.kind circ id with
      | Circuit.Pi -> ()
      | Circuit.Const b -> values.(id) <- b
      | Circuit.Po d -> values.(id) <- values.(d)
      | Circuit.Cell (c, fs) ->
        values.(id) <- Gatelib.Cell.eval c (Array.map (fun f -> values.(f)) fs))
    (Circuit.topo_order circ);
  values

let reference_count_pair circ ~before ~after =
  let n = Circuit.num_nodes circ in
  let init = eval_steady circ before in
  (* per node: time-ordered (time, new value) changes; [init] holds the
     value before the first change.  When a fanin changes at exactly one
     of a node's fire times, the event queue's intra-batch order decides
     whether the node's re-evaluation sees the old or the new value —
     such a pair is flagged ambiguous and the caller skips it rather
     than baking the queue's tie-breaking into the reference. *)
  let waves = Array.make n [] in
  let ambiguous = ref false in
  List.iteri
    (fun i pi ->
      let v = List.nth after i in
      if init.(pi) <> v then waves.(pi) <- [ (0.0, v) ])
    (Circuit.pis circ);
  let value_at id t =
    (* inclusive: a change at exactly [t] is visible at [t] *)
    List.fold_left
      (fun acc (tc, v) -> if tc <= t then v else acc)
      init.(id) waves.(id)
  in
  Array.iter
    (fun id ->
      match Circuit.kind circ id with
      | Circuit.Pi | Circuit.Const _ | Circuit.Po _ -> ()
      | Circuit.Cell (c, fs) when Circuit.is_live circ id ->
        let d = Sta.Timing.gate_delay circ id in
        let input_changes =
          Array.to_list fs
          |> List.concat_map (fun f -> List.map fst waves.(f))
          |> List.sort_uniq compare
        in
        let fire_times = List.map (fun t -> t +. d) input_changes in
        if List.exists (fun t -> List.mem t fire_times) input_changes then
          ambiguous := true;
        let v = ref init.(id) in
        waves.(id) <-
          List.filter_map
            (fun t ->
              let v' =
                Gatelib.Cell.eval c (Array.map (fun f -> value_at f t) fs)
              in
              if v' <> !v then begin
                v := v';
                Some (t, v')
              end
              else None)
            fire_times
      | Circuit.Cell _ -> ())
    (Circuit.topo_order circ);
  let final = eval_steady circ after in
  let timed = Array.map List.length waves in
  let zero_delay =
    Array.init n (fun id -> if init.(id) <> final.(id) then 1 else 0)
  in
  (timed, zero_delay, !ambiguous)

(* returns true when the pair was actually compared *)
let check_pair_against_reference circ ~before ~after =
  let ref_timed, ref_zero, ambiguous = reference_count_pair circ ~before ~after in
  if ambiguous then false
  else begin
    let timed, zero_delay = Glitch.count_pair circ ~before ~after in
    Circuit.iter_live circ (fun id ->
        Alcotest.(check int)
          (Printf.sprintf "node %d zero-delay transitions" id)
          ref_zero.(id) zero_delay.(id);
        if not (Circuit.is_po_node circ id) then begin
          Alcotest.(check int)
            (Printf.sprintf "node %d timed transitions" id)
            ref_timed.(id) timed.(id);
          (* a functional flip is at least one timed event *)
          Alcotest.(check bool)
            (Printf.sprintf "node %d timed >= zero-delay" id)
            true
            (timed.(id) >= zero_delay.(id));
          Alcotest.(check bool)
            (Printf.sprintf "node %d zero-delay in {0,1}" id)
            true
            (zero_delay.(id) = 0 || zero_delay.(id) = 1)
        end);
    true
  end

let vectors n =
  let rec go = function
    | 0 -> [ [] ]
    | k -> List.concat_map (fun v -> [ false :: v; true :: v ]) (go (k - 1))
  in
  go n

let all_pairs circ =
  let vs = vectors (List.length (Circuit.pis circ)) in
  let compared = ref 0 and total = ref 0 in
  List.iter
    (fun before ->
      List.iter
        (fun after ->
          incr total;
          if check_pair_against_reference circ ~before ~after then
            incr compared)
        vs)
    vs;
  (* tie-ambiguous pairs may be skipped, but they must stay the
     exception or the differential check is vacuous *)
  Alcotest.(check bool)
    (Printf.sprintf "compared %d of %d pairs" !compared !total)
    true
    (!compared * 2 >= !total)

let test_count_pair_vs_reference_hazard () =
  (* the inverter-chain hazard circuit: every before/after pair on its
     single input, including the glitching rising edge *)
  let lib = Build.lib in
  let c = Circuit.create lib in
  let a = Circuit.add_pi c ~name:"a" in
  let inv = Gatelib.Library.inverter lib in
  let i1 = Circuit.add_cell c inv [| a |] in
  let i2 = Circuit.add_cell c inv [| i1 |] in
  let i3 = Circuit.add_cell c inv [| i2 |] in
  let f = Circuit.add_cell c (Library.find lib "and2") [| a; i3 |] in
  ignore (Circuit.add_po c ~name:"o" f);
  all_pairs c

let test_count_pair_vs_reference_fig2 () =
  let c, _, _, _, _, _, _ = Build.fig2_a () in
  all_pairs c

let test_count_pair_vs_reference_random () =
  (* exhaustive vector pairs on small random mapped netlists: 4 PIs
     means 256 transitions per circuit, <= 10 gates each *)
  List.iter
    (fun seed ->
      let c = Build.random_circuit ~seed ~n_pis:4 ~n_gates:10 in
      all_pairs c)
    [ 1; 2; 3; 7; 11 ]

let suite =
  [
    ( "glitch",
      [
        Alcotest.test_case "single gate clean" `Quick test_no_glitches_single_gate;
        Alcotest.test_case "hazard pulses counted" `Quick test_unbalanced_paths_glitch;
        Alcotest.test_case "agrees with estimator" `Quick test_zero_delay_matches_estimator_scale;
        Alcotest.test_case "timed >= functional" `Quick test_timed_at_least_zero_delay;
        Alcotest.test_case "count_pair vs reference (hazard)" `Quick
          test_count_pair_vs_reference_hazard;
        Alcotest.test_case "count_pair vs reference (fig2)" `Quick
          test_count_pair_vs_reference_fig2;
        Alcotest.test_case "count_pair vs reference (random)" `Quick
          test_count_pair_vs_reference_random;
      ] );
  ]
