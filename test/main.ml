let () =
  Alcotest.run "powder"
    (Test_tt.suite @ Test_cube.suite @ Test_gatelib.suite @ Test_circuit.suite
   @ Test_sim.suite @ Test_power.suite @ Test_sta.suite @ Test_sat.suite @ Test_bdd.suite
   @ Test_atpg.suite @ Test_aig.suite @ Test_bitvec.suite @ Test_mapper.suite @ Test_blif.suite
   @ Test_redundancy.suite @ Test_resize.suite @ Test_glitch.suite @ Test_circuits.suite @ Test_check.suite @ Test_powder.suite
   @ Test_sigstore.suite
   @ Test_window.suite
   @ Test_obs.suite @ Test_profile.suite @ Test_par.suite @ Test_guard.suite @ Test_fuzz.suite
   @ Test_pareto.suite
   @ Test_serve.suite @ Test_integration.suite)
