(* The domain pool: deterministic fan-out, exception propagation,
   cancellation, nested-submission rejection, collector merging — and
   the end-to-end contract that --jobs N runs are byte-identical to
   --jobs 1 for both the optimizer and the fuzzer. *)

module Circuit = Netlist.Circuit
module Optimizer = Powder.Optimizer
module Candidates = Powder.Candidates

exception Boom of int

let mapped name =
  match Circuits.Suite.find name with
  | Some spec -> Circuits.Suite.mapped spec
  | None -> Alcotest.fail (name ^ " missing from suite")

(* Wall-clock spin without Unix: poll a private deadline. *)
let spin_for seconds =
  let d = Obs.Deadline.after ~seconds in
  while not (Obs.Deadline.expired d) do
    Domain.cpu_relax ()
  done

(* ------------------------------------------------------------------ *)
(* Pool combinators.                                                   *)
(* ------------------------------------------------------------------ *)

let test_map_basic () =
  Par.Pool.with_pool ~jobs:4 (fun pool ->
      Alcotest.(check int) "jobs" 4 (Par.Pool.jobs pool);
      Alcotest.(check (array (option int))) "empty" [||]
        (Par.Pool.map pool ~f:Fun.id [||]);
      Alcotest.(check (array (option int))) "singleton" [| Some 9 |]
        (Par.Pool.map pool ~f:(fun x -> x * x) [| 3 |]);
      let n = 37 in
      let r = Par.Pool.map pool ~f:(fun i -> i * i) (Array.init n Fun.id) in
      Alcotest.(check int) "length" n (Array.length r);
      Array.iteri
        (fun i v -> Alcotest.(check (option int)) "element order" (Some (i * i)) v)
        r)

let test_jobs1_inline () =
  Par.Pool.with_pool ~jobs:1 (fun pool ->
      Alcotest.(check int) "jobs clamped" 1 (Par.Pool.jobs pool);
      Alcotest.(check (array (option int))) "inline map"
        [| Some 2; Some 3; Some 4 |]
        (Par.Pool.map pool ~f:succ [| 1; 2; 3 |]))

let test_map_reduce_order () =
  Par.Pool.with_pool ~jobs:4 (fun pool ->
      let s =
        Par.Pool.map_reduce pool ~map:string_of_int
          ~reduce:(fun acc x -> acc ^ x)
          ~init:""
          (Array.init 10 Fun.id)
      in
      (* the reduce is non-commutative: any out-of-order fold shows *)
      Alcotest.(check string) "left-to-right fold" "0123456789" s)

let test_find_first_accept_order () =
  Par.Pool.with_pool ~jobs:4 (fun pool ->
      let committed = ref [] in
      let result =
        Par.Pool.find_first_accept pool
          ~check:(fun i x -> i + x)
          ~screen:(fun i _ -> i mod 2 = 1)
          ~commit:(fun i _ v ->
            committed := i :: !committed;
            if i >= 5 then Some v else None)
          (Array.init 12 (fun i -> i * 10))
      in
      Alcotest.(check (option int)) "first accept wins" (Some 55) result;
      (* screened-in items consumed in index order, nothing after the
         accept — exactly the sequential walk *)
      Alcotest.(check (list int)) "commit order stops at accept" [ 1; 3; 5 ]
        (List.rev !committed))

(* ------------------------------------------------------------------ *)
(* Exceptions.                                                         *)
(* ------------------------------------------------------------------ *)

let test_exception_propagates_first_index () =
  Par.Pool.with_pool ~jobs:4 (fun pool ->
      match
        Par.Pool.map pool
          ~f:(fun i -> if i = 1 || i = 3 then raise (Boom i) else i)
          [| 0; 1; 2; 3; 4 |]
      with
      | _ -> Alcotest.fail "exception did not propagate"
      | exception Boom i ->
        Alcotest.(check int) "lowest raising index surfaces" 1 i)

let test_exception_discards_later_collectors () =
  let c = Obs.Metrics.counter "test.par.exn.ctr" in
  let before = Obs.Metrics.counter_value c in
  Par.Pool.with_pool ~jobs:4 (fun pool ->
      match
        Par.Pool.map pool
          ~f:(fun i ->
            if i = 1 then raise (Boom i)
            else Obs.Metrics.incr (Obs.Metrics.counter "test.par.exn.ctr"))
          [| 0; 1; 2; 3 |]
      with
      | _ -> Alcotest.fail "exception did not propagate"
      | exception Boom 1 ->
        (* index 0 committed before the raise; 2 and 3 ran but their
           collectors are dropped with the abandoned walk *)
        Alcotest.(check int) "only committed work merged" (before + 1)
          (Obs.Metrics.counter_value c)
      | exception Boom i -> Alcotest.fail (Printf.sprintf "wrong index %d" i))

(* ------------------------------------------------------------------ *)
(* Deadlines and nesting.                                              *)
(* ------------------------------------------------------------------ *)

let test_deadline_cancels_unstarted () =
  Par.Pool.with_pool ~jobs:2 (fun pool ->
      (* both executors grab a task immediately and hold it past the
         deadline, so everything behind them is cancelled unstarted *)
      let deadline = Obs.Deadline.after ~seconds:0.05 in
      let r =
        Par.Pool.map pool ~deadline
          ~f:(fun i ->
            spin_for 0.15;
            i)
          [| 0; 1; 2; 3; 4; 5 |]
      in
      Alcotest.(check (option int)) "task 0 ran" (Some 0) r.(0);
      Alcotest.(check (option int)) "task 1 ran" (Some 1) r.(1);
      for i = 2 to 5 do
        Alcotest.(check (option int))
          (Printf.sprintf "task %d cancelled" i)
          None r.(i)
      done)

let test_nested_submit_rejected () =
  Alcotest.(check bool) "not in a task outside" false (Par.Pool.in_task ());
  Par.Pool.with_pool ~jobs:2 (fun pool ->
      match
        Par.Pool.map pool
          ~f:(fun _ ->
            if not (Par.Pool.in_task ()) then failwith "in_task false in task";
            Par.Pool.map pool ~f:Fun.id [| 1 |])
          [| 0 |]
      with
      | _ -> Alcotest.fail "nested submission accepted"
      | exception Invalid_argument _ -> ());
  Alcotest.(check bool) "flag cleared after" false (Par.Pool.in_task ())

let test_shutdown_rejects_submission () =
  let pool = Par.Pool.create ~jobs:2 () in
  Par.Pool.shutdown pool;
  Par.Pool.shutdown pool;
  (* idempotent *)
  match Par.Pool.map pool ~f:Fun.id [| 1 |] with
  | _ -> Alcotest.fail "submission to shut-down pool accepted"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Collector merging.                                                  *)
(* ------------------------------------------------------------------ *)

let test_metrics_merge () =
  let c = Obs.Metrics.counter "test.par.merge.ctr" in
  let g = Obs.Metrics.gauge "test.par.merge.gauge" in
  let before = Obs.Metrics.counter_value c in
  Par.Pool.with_pool ~jobs:4 (fun pool ->
      ignore
        (Par.Pool.map pool
           ~f:(fun i ->
             Obs.Metrics.add (Obs.Metrics.counter "test.par.merge.ctr") i;
             Obs.Metrics.set_gauge
               (Obs.Metrics.gauge "test.par.merge.gauge")
               (float_of_int i);
             i)
           (Array.init 8 Fun.id)));
  Alcotest.(check int) "counter adds across shards" (before + 28)
    (Obs.Metrics.counter_value c);
  (* gauges take the last committed write — index order, so task 7 *)
  Alcotest.(check (float 0.0)) "gauge last-write in commit order" 7.0
    (Obs.Metrics.gauge_value g)

(* ------------------------------------------------------------------ *)
(* End-to-end determinism: --jobs N ≡ --jobs 1.                        *)
(* ------------------------------------------------------------------ *)

let strip_volatile = function
  | Obs.Json.Obj fields ->
    Obs.Json.Obj
      (List.filter
         (fun (k, _) ->
           k <> "cpu_seconds" && k <> "phase_seconds" && k <> "jobs"
           && k <> "elapsed_seconds")
         fields)
  | other -> other

let optimize_at ~jobs name =
  let c = mapped name in
  let config =
    { Optimizer.default_config with words = 8; max_rounds = 3; jobs }
  in
  let r = Optimizer.optimize ~config c in
  ( Obs.Json.to_string (strip_volatile (Optimizer.report_to_json r)),
    Blif.Blif_io.circuit_to_string c )

let optimizer_determinism name () =
  let j1, b1 = optimize_at ~jobs:1 name in
  let j4, b4 = optimize_at ~jobs:4 name in
  Alcotest.(check string) "report identical" j1 j4;
  Alcotest.(check string) "final netlist identical" b1 b4

(* Windowed runs carry the same guarantee: the window verdict is a
   deterministic function of (circuit, substitution, cut budget), so
   neither the job width nor the signature-index strategy may change a
   single byte of the result — only [--window] itself may. *)
let windowed_optimize ~jobs ~sig_index name =
  let c = mapped name in
  let config =
    {
      Optimizer.default_config with
      words = 8;
      max_rounds = 3;
      jobs;
      sig_index;
      window = Some 16;
    }
  in
  let r = Optimizer.optimize ~config c in
  ( Obs.Json.to_string (strip_volatile (Optimizer.report_to_json r)),
    Blif.Blif_io.circuit_to_string c )

let windowed_determinism name () =
  let j1, b1 = windowed_optimize ~jobs:1 ~sig_index:Candidates.Hash name in
  let j4, b4 = windowed_optimize ~jobs:4 ~sig_index:Candidates.Hash name in
  let js, bs = windowed_optimize ~jobs:1 ~sig_index:Candidates.Scan name in
  Alcotest.(check string) "windowed report identical across jobs" j1 j4;
  Alcotest.(check string) "windowed netlist identical across jobs" b1 b4;
  Alcotest.(check string) "windowed report identical across sig-index" j1 js;
  Alcotest.(check string) "windowed netlist identical across sig-index" b1 bs

let fuzz_at jobs =
  let config =
    { Fuzz.Harness.default_config with
      seed = 7L;
      cases = 4;
      budget_seconds = None;
      jobs;
    }
  in
  Obs.Json.to_string
    (strip_volatile (Fuzz.Harness.report_to_json (Fuzz.Harness.run config)))

let test_fuzz_determinism () =
  Alcotest.(check string) "fuzz campaign identical at jobs 1 and 2"
    (fuzz_at 1) (fuzz_at 2)

(* ------------------------------------------------------------------ *)
(* Containment: a raising task is a per-task error, not a pool death.  *)
(* ------------------------------------------------------------------ *)

let containment_at jobs () =
  Par.Pool.with_pool ~jobs (fun pool ->
      let c = Obs.Metrics.counter "test.par.contain.ctr" in
      let before = Obs.Metrics.counter_value c in
      let f i =
        Obs.Metrics.add (Obs.Metrics.counter "test.par.contain.ctr") 1;
        if i = 2 then raise (Boom i);
        i * 10
      in
      let r = Par.Pool.map_result pool ~f (Array.init 5 Fun.id) in
      Array.iteri
        (fun i v ->
          match v with
          | Some (Ok y) when i <> 2 ->
            Alcotest.(check int) "value delivered" (i * 10) y
          | Some (Error (Boom 2)) when i = 2 -> ()
          | _ -> Alcotest.fail (Printf.sprintf "element %d: wrong outcome" i))
        r;
      (* sequential parity: the raising task's pre-raise work merged *)
      Alcotest.(check int) "all five collectors merged" (before + 5)
        (Obs.Metrics.counter_value c);
      (* the pool is not poisoned: a follow-up batch runs normally *)
      Alcotest.(check (array (option int))) "pool survives"
        [| Some 1; Some 2; Some 3 |]
        (Par.Pool.map pool ~f:(fun x -> x + 1) [| 0; 1; 2 |]))

let test_commit_result_single () =
  Par.Pool.with_pool ~jobs:2 (fun pool ->
      let specs = Par.Pool.speculate pool [| (fun () -> raise (Boom 7)) |] in
      (match Par.Pool.commit_result specs.(0) with
      | Some (Error (Boom 7, _)) -> ()
      | _ -> Alcotest.fail "exception not surfaced as Error");
      (* consume-once: a second consumption is a usage error *)
      match Par.Pool.commit_result specs.(0) with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "double consumption accepted")

let test_commit_result_cancelled () =
  Par.Pool.with_pool ~jobs:1 (fun pool ->
      let d = Obs.Deadline.after ~seconds:(-1.0) in
      let specs =
        Par.Pool.speculate pool ~deadline:d
          [| (fun () -> spin_for 0.001; 1) |]
      in
      match Par.Pool.commit_result specs.(0) with
      | None -> ()
      | Some _ -> Alcotest.fail "cancelled task produced an outcome")

let suite =
  [
    ( "par",
      [
        Alcotest.test_case "map empty/singleton/order" `Quick test_map_basic;
        Alcotest.test_case "jobs=1 runs inline" `Quick test_jobs1_inline;
        Alcotest.test_case "map_reduce folds left-to-right" `Quick
          test_map_reduce_order;
        Alcotest.test_case "find_first_accept commit order" `Quick
          test_find_first_accept_order;
        Alcotest.test_case "exception surfaces at first index" `Quick
          test_exception_propagates_first_index;
        Alcotest.test_case "exception discards later collectors" `Quick
          test_exception_discards_later_collectors;
        Alcotest.test_case "deadline cancels unstarted tasks" `Quick
          test_deadline_cancels_unstarted;
        Alcotest.test_case "nested submission rejected" `Quick
          test_nested_submit_rejected;
        Alcotest.test_case "shutdown rejects submission" `Quick
          test_shutdown_rejects_submission;
        Alcotest.test_case "metrics shards merge deterministically" `Quick
          test_metrics_merge;
        Alcotest.test_case "optimizer deterministic: rd84" `Quick
          (optimizer_determinism "rd84");
        Alcotest.test_case "optimizer deterministic: comp" `Quick
          (optimizer_determinism "comp");
        Alcotest.test_case "optimizer deterministic: f51m" `Quick
          (optimizer_determinism "f51m");
        Alcotest.test_case "windowed deterministic: rd84" `Quick
          (windowed_determinism "rd84");
        Alcotest.test_case "windowed deterministic: comp" `Quick
          (windowed_determinism "comp");
        Alcotest.test_case "fuzz deterministic across jobs" `Quick
          test_fuzz_determinism;
        Alcotest.test_case "raising task contained at jobs=1" `Quick
          (containment_at 1);
        Alcotest.test_case "raising task contained at jobs=4" `Quick
          (containment_at 4);
        Alcotest.test_case "commit_result surfaces the exception" `Quick
          test_commit_result_single;
        Alcotest.test_case "commit_result marks cancellation" `Quick
          test_commit_result_cancelled;
      ] );
  ]
