(* The telemetry layer: metric semantics, JSON round-trips, span
   nesting, sink behavior, and an end-to-end check that the optimizer
   emits a coherent trace. *)

module Json = Obs.Json
module Metrics = Obs.Metrics
module Trace = Obs.Trace

(* ------------------------------------------------------------------ *)
(* Metrics.                                                            *)
(* ------------------------------------------------------------------ *)

let test_counter () =
  let c = Metrics.counter "test.obs.counter" in
  let c' = Metrics.counter "test.obs.counter" in
  Alcotest.(check bool) "get-or-create aliases" true (c == c');
  let before = Metrics.counter_value c in
  Metrics.incr c;
  Metrics.add c 41;
  Alcotest.(check int) "incr+add" (before + 42) (Metrics.counter_value c);
  Alcotest.(check bool) "find sees it" true
    (match Metrics.find "test.obs.counter" with
    | Some (`Counter v) -> v = before + 42
    | _ -> false);
  match Metrics.histogram "test.obs.counter" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "kind clash not detected"

let test_gauge () =
  let g = Metrics.gauge "test.obs.gauge" in
  Metrics.set_gauge g 2.5;
  Alcotest.(check (float 1e-9)) "set" 2.5 (Metrics.gauge_value g)

let test_histogram () =
  let h = Metrics.histogram "test.obs.histogram" in
  let values = [ 0.0; 1e-7; 1e-6; 3e-6; 1e-3; 0.5; 2.0 ] in
  List.iter (Metrics.observe h) values;
  Alcotest.(check int) "count" (List.length values) (Metrics.histogram_count h);
  Alcotest.(check (float 1e-9)) "sum"
    (List.fold_left ( +. ) 0.0 values)
    (Metrics.histogram_sum h);
  let buckets = Metrics.histogram_buckets h in
  Alcotest.(check int) "bucket counts total the observations"
    (List.length values)
    (List.fold_left (fun acc (_, n) -> acc + n) 0 buckets);
  (* bounds strictly increasing *)
  let rec increasing = function
    | (a, _) :: ((b, _) :: _ as rest) -> a < b && increasing rest
    | _ -> true
  in
  Alcotest.(check bool) "bucket bounds increasing" true (increasing buckets);
  (* the three sub-microsecond observations share the first bucket *)
  (match buckets with
  | (ub, n) :: _ ->
    Alcotest.(check (float 1e-12)) "first bucket is 1us" 1e-6 ub;
    Alcotest.(check int) "sub-1us observations pooled" 3 n
  | [] -> Alcotest.fail "no buckets");
  (* a duration far beyond the bucket range is clamped, not lost *)
  Metrics.observe h 1e30;
  Alcotest.(check int) "overflow clamped into last bucket"
    (List.length values + 1)
    (List.fold_left
       (fun acc (_, n) -> acc + n)
       0
       (Metrics.histogram_buckets h))

let test_reset () =
  let c = Metrics.counter "test.obs.reset" in
  Metrics.incr c;
  Metrics.reset ();
  Alcotest.(check int) "reset zeroes in place" 0 (Metrics.counter_value c);
  Metrics.incr c;
  Alcotest.(check int) "handle still live after reset" 1 (Metrics.counter_value c)

(* ------------------------------------------------------------------ *)
(* JSON.                                                               *)
(* ------------------------------------------------------------------ *)

let test_json_roundtrip () =
  let j =
    Json.Obj
      [
        ("null", Json.Null);
        ("t", Json.Bool true);
        ("f", Json.Bool false);
        ("int", Json.Int (-42));
        ("float", Json.Float 1.5e-3);
        ("str", Json.String "a \"quoted\"\nline\twith \\ specials");
        ("list", Json.List [ Json.Int 1; Json.String "x"; Json.Obj [] ]);
        ("nested", Json.Obj [ ("k", Json.List []) ]);
      ]
  in
  match Json.of_string (Json.to_string j) with
  | Error e -> Alcotest.fail e
  | Ok j' -> Alcotest.(check bool) "round-trip" true (j = j')

let test_json_numbers () =
  (* floats keep their JSON number type even when integral *)
  (match Json.of_string (Json.to_string (Json.Float 3.0)) with
  | Ok (Json.Float f) -> Alcotest.(check (float 1e-9)) "3.0" 3.0 f
  | _ -> Alcotest.fail "integral float lost its type");
  (match Json.of_string "{\"a\": 12, \"b\": -0.5e2}" with
  | Ok j ->
    Alcotest.(check (option int)) "int member" (Some 12)
      (Option.bind (Json.member "a" j) Json.get_int);
    Alcotest.(check (option (float 1e-9))) "float member" (Some (-50.0))
      (Option.bind (Json.member "b" j) Json.get_float)
  | Error e -> Alcotest.fail e);
  (* non-finite floats serialize as null, which any consumer accepts *)
  Alcotest.(check string) "nan is null" "null" (Json.to_string (Json.Float Float.nan))

let test_json_rejects () =
  List.iter
    (fun s ->
      match Json.of_string s with
      | Ok _ -> Alcotest.fail ("accepted malformed: " ^ s)
      | Error _ -> ())
    [ "{"; "[1,]"; "{\"a\":}"; "tru"; "\"unterminated"; "1 2"; "" ]

(* ------------------------------------------------------------------ *)
(* Tracing.                                                            *)
(* ------------------------------------------------------------------ *)

let with_memory_sink f =
  let events = ref [] in
  Trace.set_sink
    (Trace.make_sink
       ~emit:(fun e -> events := e :: !events)
       ~close:(fun () -> ()));
  Fun.protect ~finally:Trace.close_sink (fun () -> f ());
  List.rev !events

let test_span_nesting () =
  let events =
    with_memory_sink (fun () ->
        Trace.with_span "outer" (fun () ->
            Trace.event "point" [ ("k", Trace.Int 1) ];
            Trace.with_span "inner" (fun () ->
                Alcotest.(check (list string))
                  "path inside nested spans" [ "outer"; "inner" ]
                  (Trace.current_path ()))))
  in
  Alcotest.(check (list string)) "stack unwound" [] (Trace.current_path ());
  let names = List.map (fun (e : Trace.event) -> e.Trace.name) events in
  Alcotest.(check (list string)) "event order"
    [ "span_begin"; "point"; "span_begin"; "span_end"; "span_end" ]
    names;
  let point = List.nth events 1 in
  Alcotest.(check (list string)) "point event carries enclosing path"
    [ "outer" ] point.Trace.path;
  let inner_end = List.nth events 3 in
  Alcotest.(check (list string)) "span_end path includes itself"
    [ "outer"; "inner" ] inner_end.Trace.path;
  Alcotest.(check bool) "span_end carries duration" true
    (List.mem_assoc "dur_s" inner_end.Trace.fields);
  Alcotest.(check bool) "span accounting accumulated" true
    (Trace.span_count "outer" >= 1 && Trace.span_seconds "outer" >= 0.0)

let test_span_exception_safe () =
  (match Trace.with_span "explosive" (fun () -> failwith "boom") with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "exception swallowed");
  Alcotest.(check (list string)) "stack unwound after raise" []
    (Trace.current_path ())

let test_null_sink_inert () =
  Alcotest.(check bool) "inactive by default" false (Trace.active ());
  let ran = ref false in
  Trace.event_f "x" (fun () ->
      ran := true;
      []);
  Alcotest.(check bool) "event_f thunk not run when inactive" false !ran

let test_jsonl_roundtrip () =
  let file = Filename.temp_file "obs_test" ".jsonl" in
  Trace.set_sink (Trace.jsonl_sink file);
  Trace.with_span "s" ~fields:[ ("tag", Trace.String "v") ] (fun () ->
      Trace.event "hello"
        [
          ("i", Trace.Int 7);
          ("f", Trace.Float 0.25);
          ("b", Trace.Bool true);
          ("s", Trace.String "tricky \"str\"\n");
        ]);
  Trace.close_sink ();
  let ic = open_in file in
  let rec lines acc =
    match input_line ic with
    | l -> lines (l :: acc)
    | exception End_of_file -> List.rev acc
  in
  let ls = lines [] in
  close_in ic;
  Sys.remove file;
  Alcotest.(check int) "three lines" 3 (List.length ls);
  let parsed =
    List.map
      (fun l ->
        match Json.of_string l with
        | Ok j -> j
        | Error e -> Alcotest.fail (e ^ ": " ^ l))
      ls
  in
  List.iter
    (fun j ->
      Alcotest.(check bool) "has ts" true (Json.member "ts" j <> None);
      Alcotest.(check bool) "has ev" true (Json.member "ev" j <> None))
    parsed;
  let hello = List.nth parsed 1 in
  Alcotest.(check (option string)) "ev name" (Some "hello")
    (Option.bind (Json.member "ev" hello) Json.get_string);
  Alcotest.(check (option string)) "path" (Some "s")
    (Option.bind (Json.member "path" hello) Json.get_string);
  Alcotest.(check (option int)) "int field" (Some 7)
    (Option.bind (Json.member "i" hello) Json.get_int);
  Alcotest.(check (option string)) "string field survives escaping"
    (Some "tricky \"str\"\n")
    (Option.bind (Json.member "s" hello) Json.get_string);
  let span_end = List.nth parsed 2 in
  Alcotest.(check (option string)) "span_end" (Some "span_end")
    (Option.bind (Json.member "ev" span_end) Json.get_string);
  Alcotest.(check bool) "span_end has dur_s" true
    (Json.member "dur_s" span_end <> None)

(* ------------------------------------------------------------------ *)
(* Integration: the optimizer's trace is coherent with its report.     *)
(* ------------------------------------------------------------------ *)

let test_optimizer_trace () =
  let file = Filename.temp_file "obs_powder" ".jsonl" in
  Trace.set_sink (Trace.jsonl_sink file);
  let spec = Option.get (Circuits.Suite.find "rd84") in
  let circ = Circuits.Suite.mapped spec in
  let config = { Powder.Optimizer.default_config with words = 8 } in
  let report = Powder.Optimizer.optimize ~config circ in
  Trace.close_sink ();
  let ic = open_in file in
  let rec lines acc =
    match input_line ic with
    | l -> lines (l :: acc)
    | exception End_of_file -> List.rev acc
  in
  let ls = lines [] in
  close_in ic;
  Sys.remove file;
  let parsed =
    List.map
      (fun l ->
        match Json.of_string l with
        | Ok j -> j
        | Error e -> Alcotest.fail (e ^ ": " ^ l))
      ls
  in
  let by_ev name =
    List.filter
      (fun j ->
        Option.bind (Json.member "ev" j) Json.get_string = Some name)
      parsed
  in
  let accepts = by_ev "accept" in
  Alcotest.(check int) "one accept event per substitution"
    report.Powder.Optimizer.substitutions (List.length accepts);
  Alcotest.(check bool) "optimizer did accept something" true
    (report.Powder.Optimizer.substitutions > 0);
  List.iter
    (fun a ->
      Alcotest.(check bool) "accept carries estimated gain" true
        (Option.bind (Json.member "est_gain" a) Json.get_float <> None);
      Alcotest.(check bool) "accept carries realized gain" true
        (Option.bind (Json.member "realized_gain" a) Json.get_float <> None))
    accepts;
  Alcotest.(check int) "one round event per round"
    report.Powder.Optimizer.rounds
    (List.length (by_ev "round"));
  (* every reject event's reason is one of the funnel reasons, and the
     per-reason totals match the report *)
  let reject_count reason =
    List.length
      (List.filter
         (fun j ->
           Option.bind (Json.member "reason" j) Json.get_string = Some reason)
         (by_ev "reject"))
  in
  Alcotest.(check int) "atpg rejects" report.Powder.Optimizer.rejected_by_atpg
    (reject_count "atpg");
  Alcotest.(check int) "giveup rejects"
    report.Powder.Optimizer.rejected_by_giveup (reject_count "giveup");
  Alcotest.(check int) "cex rejects" report.Powder.Optimizer.rejected_by_cex
    (reject_count "cex");
  Alcotest.(check int) "delay rejects" report.Powder.Optimizer.rejected_by_delay
    (reject_count "delay");
  (* phase accounting: every declared phase is present and the span
     histogram actually fired for the phases a successful run must hit *)
  Alcotest.(check (list string)) "phase keys" Powder.Optimizer.phase_names
    (List.map fst report.Powder.Optimizer.phase_seconds);
  List.iter
    (fun (n, s) ->
      if s < 0.0 then Alcotest.fail (n ^ ": negative phase time"))
    report.Powder.Optimizer.phase_seconds;
  let phase_total =
    List.fold_left (fun acc (_, s) -> acc +. s) 0.0
      report.Powder.Optimizer.phase_seconds
  in
  Alcotest.(check bool) "phases account for some of the run" true
    (phase_total > 0.0
    && phase_total <= report.Powder.Optimizer.cpu_seconds *. 1.5)

let test_report_json () =
  let spec = Option.get (Circuits.Suite.find "comp") in
  let circ = Circuits.Suite.mapped spec in
  let config = { Powder.Optimizer.default_config with words = 8 } in
  let report = Powder.Optimizer.optimize ~config circ in
  let j = Powder.Optimizer.report_to_json report in
  (* serialized form must reparse, and the funnel must be internally
     consistent: generated >= checked >= accepted *)
  (match Json.of_string (Json.to_string j) with
  | Error e -> Alcotest.fail e
  | Ok j' ->
    let funnel = Option.get (Json.member "funnel" j') in
    let get k = Option.get (Option.bind (Json.member k funnel) Json.get_int) in
    let generated = get "candidates_generated" in
    let checked = get "checks_run" in
    let accepted = get "accepted" in
    Alcotest.(check bool) "funnel narrows" true
      (generated >= checked && checked >= accepted);
    Alcotest.(check int) "checks = accepted + refuted + gaveup + timeout + rolled back"
      checked
      (accepted + get "rejected_by_atpg" + get "rejected_by_giveup"
      + get "rejected_by_timeout" + get "rolled_back");
    Alcotest.(check (option int)) "substitutions" (Some report.Powder.Optimizer.substitutions)
      (Option.bind (Json.member "substitutions" j') Json.get_int))

(* ------------------------------------------------------------------ *)
(* Deadline edge cases: the supervisor leans on these (zero budgets    *)
(* from deadline storms, nested job/slice deadlines).                  *)
(* ------------------------------------------------------------------ *)

let spin_past () =
  (* let the wall clock tick at least once *)
  let t0 = Unix.gettimeofday () in
  while Unix.gettimeofday () -. t0 <= 1e-4 do
    Domain.cpu_relax ()
  done

let test_deadline_zero_budget () =
  let d = Obs.Deadline.after ~seconds:0.0 in
  spin_past ();
  Alcotest.(check bool) "zero budget expires" true (Obs.Deadline.expired d);
  Alcotest.(check bool) "zero budget is finite" true (Obs.Deadline.is_finite d);
  Alcotest.(check bool) "remaining has gone negative" true
    (Obs.Deadline.remaining d < 0.0)

let test_deadline_negative_budget () =
  let d = Obs.Deadline.after ~seconds:(-5.0) in
  Alcotest.(check bool) "already expired at creation" true
    (Obs.Deadline.expired d);
  Alcotest.(check bool) "remaining below -4s" true
    (Obs.Deadline.remaining d < -4.0)

let test_deadline_never () =
  Alcotest.(check bool) "never is infinite" false
    (Obs.Deadline.is_finite Obs.Deadline.never);
  Alcotest.(check bool) "never never expires" false
    (Obs.Deadline.expired Obs.Deadline.never);
  Alcotest.(check bool) "remaining is infinity" true
    (Obs.Deadline.remaining Obs.Deadline.never = infinity);
  Alcotest.(check bool) "of_option None is never" false
    (Obs.Deadline.is_finite (Obs.Deadline.of_option None));
  Alcotest.(check bool) "of_option Some is finite" true
    (Obs.Deadline.is_finite (Obs.Deadline.of_option (Some 10.0)))

let test_deadline_nested () =
  (* a slice deadline nested under a job deadline: the tighter wins,
     whichever argument order *)
  let job = Obs.Deadline.after ~seconds:100.0 in
  let slice = Obs.Deadline.after ~seconds:(-1.0) in
  let a = Obs.Deadline.earliest job slice
  and b = Obs.Deadline.earliest slice job in
  Alcotest.(check bool) "tighter wins (left)" true (Obs.Deadline.expired a);
  Alcotest.(check bool) "tighter wins (right)" true (Obs.Deadline.expired b);
  (* never is the identity *)
  let c = Obs.Deadline.earliest Obs.Deadline.never job in
  Alcotest.(check bool) "never is identity" true (Obs.Deadline.is_finite c);
  Alcotest.(check bool) "identity keeps the budget" true
    (Obs.Deadline.remaining c > 90.0);
  (* expired stays expired even nested under generous budgets *)
  let d = Obs.Deadline.earliest slice Obs.Deadline.never in
  Alcotest.(check bool) "expired survives nesting" true
    (Obs.Deadline.expired d)

let suite =
  [
    ( "obs",
      [
        Alcotest.test_case "counter semantics" `Quick test_counter;
        Alcotest.test_case "gauge semantics" `Quick test_gauge;
        Alcotest.test_case "histogram semantics" `Quick test_histogram;
        Alcotest.test_case "reset keeps handles" `Quick test_reset;
        Alcotest.test_case "json round-trip" `Quick test_json_roundtrip;
        Alcotest.test_case "json numbers" `Quick test_json_numbers;
        Alcotest.test_case "json rejects malformed" `Quick test_json_rejects;
        Alcotest.test_case "span nesting" `Quick test_span_nesting;
        Alcotest.test_case "span exception safety" `Quick test_span_exception_safe;
        Alcotest.test_case "null sink is inert" `Quick test_null_sink_inert;
        Alcotest.test_case "jsonl sink round-trip" `Quick test_jsonl_roundtrip;
        Alcotest.test_case "optimizer trace coherent" `Quick test_optimizer_trace;
        Alcotest.test_case "report json" `Quick test_report_json;
        Alcotest.test_case "deadline zero budget" `Quick
          test_deadline_zero_budget;
        Alcotest.test_case "deadline negative budget" `Quick
          test_deadline_negative_budget;
        Alcotest.test_case "deadline never/of_option" `Quick
          test_deadline_never;
        Alcotest.test_case "deadline nesting" `Quick test_deadline_nested;
      ] );
  ]
