module Sat = Atpg.Sat
module Cnf = Atpg.Cnf
module Circuit = Netlist.Circuit

(* brute-force reference for small variable counts *)
let brute_force ~num_vars clauses =
  let sat_under model =
    List.for_all
      (fun clause ->
        Array.exists
          (fun l ->
            let v = l lsr 1 and neg = l land 1 = 1 in
            (model land (1 lsl v) <> 0) <> neg)
          clause)
      clauses
  in
  let rec scan m = if m >= 1 lsl num_vars then None else if sat_under m then Some m else scan (m + 1) in
  scan 0

let test_trivial () =
  (match Sat.solve ~num_vars:1 [] with
  | Sat.Sat _ -> ()
  | Sat.Unsat | Sat.Timeout _ -> Alcotest.fail "empty problem is sat");
  (match Sat.solve ~num_vars:1 [ [||] ] with
  | Sat.Unsat -> ()
  | Sat.Sat _ | Sat.Timeout _ -> Alcotest.fail "empty clause is unsat");
  match Sat.solve ~num_vars:1 [ [| Sat.lit_of 0 true |]; [| Sat.lit_of 0 false |] ] with
  | Sat.Unsat -> ()
  | Sat.Sat _ | Sat.Timeout _ -> Alcotest.fail "x and !x is unsat"

let test_simple_sat () =
  let clauses =
    [
      [| Sat.lit_of 0 true; Sat.lit_of 1 true |];
      [| Sat.lit_of 0 false; Sat.lit_of 1 true |];
      [| Sat.lit_of 1 false; Sat.lit_of 2 true |];
    ]
  in
  match Sat.solve ~num_vars:3 clauses with
  | Sat.Sat model ->
    Alcotest.(check bool) "x1" true model.(1);
    Alcotest.(check bool) "x2" true model.(2)
  | Sat.Unsat | Sat.Timeout _ -> Alcotest.fail "expected sat"

let test_pigeonhole_unsat () =
  (* 3 pigeons, 2 holes: var p*2+h means pigeon p in hole h *)
  let v p h = (p * 2) + h in
  let clauses = ref [] in
  for p = 0 to 2 do
    clauses := [| Sat.lit_of (v p 0) true; Sat.lit_of (v p 1) true |] :: !clauses
  done;
  for h = 0 to 1 do
    for p1 = 0 to 2 do
      for p2 = p1 + 1 to 2 do
        clauses :=
          [| Sat.lit_of (v p1 h) false; Sat.lit_of (v p2 h) false |] :: !clauses
      done
    done
  done;
  match Sat.solve ~num_vars:6 !clauses with
  | Sat.Unsat -> ()
  | Sat.Sat _ | Sat.Timeout _ -> Alcotest.fail "php(3,2) is unsat"

let random_cnf rand ~num_vars ~num_clauses =
  List.init num_clauses (fun _ ->
      let len = 1 + (rand 3) in
      Array.init len (fun _ -> Sat.lit_of (rand num_vars) (rand 2 = 0)))

let prop_agrees_with_brute_force =
  QCheck.Test.make ~name:"sat agrees with brute force" ~count:300
    QCheck.(int_bound 100_000)
    (fun seed ->
      let state = ref (seed * 7919 + 13) in
      let rand bound =
        state := (!state * 1103515245 + 12345) land 0x3FFFFFFF;
        !state mod bound
      in
      let num_vars = 3 + rand 6 in
      let clauses = random_cnf rand ~num_vars ~num_clauses:(3 + rand 20) in
      let reference = brute_force ~num_vars clauses in
      match Sat.solve ~num_vars clauses with
      | Sat.Sat model ->
        reference <> None
        && List.for_all
             (fun clause ->
               Array.exists
                 (fun l -> model.(l lsr 1) = (l land 1 = 0))
                 clause)
             clauses
      | Sat.Unsat -> reference = None
      | Sat.Timeout _ -> false)

let test_cnf_justify_constant () =
  let lib = Build.lib in
  let c = Circuit.create lib in
  let x = Circuit.add_pi c ~name:"x" in
  let nx = Circuit.add_cell c (Gatelib.Library.inverter lib) [| x |] in
  let z = Circuit.add_cell c (Gatelib.Library.find lib "and2") [| x; nx |] in
  let _ = Circuit.add_po c ~name:"z" z in
  (match Cnf.justify_one c z with
  | Cnf.Impossible -> ()
  | Cnf.Justified _ | Cnf.Gave_up _ -> Alcotest.fail "x & !x is constant 0");
  let w = Circuit.add_cell c (Gatelib.Library.find lib "or2") [| x; nx |] in
  match Cnf.justify_one c w with
  | Cnf.Justified _ -> ()
  | Cnf.Impossible | Cnf.Gave_up _ -> Alcotest.fail "x | !x is constant 1"

let prop_cnf_vs_exhaustive =
  (* justify_one agrees with exhaustive simulation on random circuits *)
  QCheck.Test.make ~name:"cnf justification = exhaustive" ~count:20
    QCheck.(int_bound 9999)
    (fun seed ->
      let c = Build.random_circuit ~seed ~n_pis:6 ~n_gates:25 in
      let eng = Sim.Engine.create c ~words:1 in
      Sim.Engine.exhaustive eng;
      List.for_all
        (fun g ->
          let can_be_one = Sim.Engine.count_ones eng g > 0 in
          match Cnf.justify_one c g with
          | Cnf.Justified assignment ->
            can_be_one
            &&
            (* verify the returned vector *)
            let vector =
              List.map
                (fun pi ->
                  match List.assoc_opt pi assignment with
                  | Some v -> v
                  | None -> false)
                (Circuit.pis c)
            in
            let values = Sim.Engine.eval_single c vector in
            ignore values;
            (* evaluate g directly by re-simulating a tiny engine *)
            let eng2 = Sim.Engine.create c ~words:1 in
            let probs pi' =
              if List.assoc pi' (List.combine (Circuit.pis c) vector) then 1.0
              else 0.0
            in
            Sim.Engine.randomize eng2 ~input_probs:probs (Sim.Rng.create 1L);
            Sim.Engine.count_ones eng2 g = 64
          | Cnf.Impossible -> not can_be_one
          | Cnf.Gave_up _ -> false)
        (Circuit.live_gates c))

let suite =
  [
    ( "sat",
      [
        Alcotest.test_case "trivial cases" `Quick test_trivial;
        Alcotest.test_case "simple sat" `Quick test_simple_sat;
        Alcotest.test_case "pigeonhole unsat" `Quick test_pigeonhole_unsat;
        QCheck_alcotest.to_alcotest prop_agrees_with_brute_force;
        Alcotest.test_case "cnf constants" `Quick test_cnf_justify_constant;
        QCheck_alcotest.to_alcotest prop_cnf_vs_exhaustive;
      ] );
  ]

(* stress: random hard-ish 3-CNF near the phase transition must still be
   decided correctly against brute force *)
let prop_phase_transition =
  QCheck.Test.make ~name:"sat at clause/var ratio 4.2" ~count:60
    QCheck.(int_bound 100_000)
    (fun seed ->
      let state = ref (seed * 31 + 17) in
      let rand bound =
        state := (!state * 1103515245 + 12345) land 0x3FFFFFFF;
        !state mod bound
      in
      let num_vars = 8 in
      let num_clauses = 33 (* ~4.2 ratio *) in
      let clauses =
        List.init num_clauses (fun _ ->
            Array.init 3 (fun _ -> Sat.lit_of (rand num_vars) (rand 2 = 0)))
      in
      let reference = brute_force ~num_vars clauses in
      match Sat.solve ~num_vars clauses with
      | Sat.Sat _ -> reference <> None
      | Sat.Unsat -> reference = None
      | Sat.Timeout _ -> false)

let suite =
  match suite with
  | [ (name, tests) ] ->
    [ (name, tests @ [ QCheck_alcotest.to_alcotest prop_phase_transition ]) ]
  | other -> other
