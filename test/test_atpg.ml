module Circuit = Netlist.Circuit
module Engine = Sim.Engine
module Fault = Atpg.Fault
module Podem = Atpg.Podem
module Equiv = Atpg.Equiv
module Faultsim = Atpg.Faultsim
module Tval = Atpg.Tval
module Tt = Logic.Tt

let test_tval_eval_cell () =
  let and2 = Tt.and_ (Tt.var 2 0) (Tt.var 2 1) in
  Alcotest.(check bool) "0x -> 0" true
    (Tval.eval_cell and2 [| Tval.V0; Tval.VX |] = Tval.V0);
  Alcotest.(check bool) "1x -> x" true
    (Tval.eval_cell and2 [| Tval.V1; Tval.VX |] = Tval.VX);
  Alcotest.(check bool) "11 -> 1" true
    (Tval.eval_cell and2 [| Tval.V1; Tval.V1 |] = Tval.V1);
  let xor2 = Tt.xor (Tt.var 2 0) (Tt.var 2 1) in
  Alcotest.(check bool) "x0 -> x" true
    (Tval.eval_cell xor2 [| Tval.VX; Tval.V0 |] = Tval.VX)

(* Verify a PODEM test by plugging the vector into good and faulty
   single-pattern evaluation. *)
let verify_test circ fault assignment =
  let vector =
    List.map
      (fun pi ->
        match List.assoc_opt pi assignment with Some v -> v | None -> false)
      (Circuit.pis circ)
  in
  let good = Sim.Engine.eval_single circ vector in
  (* build faulty circuit: force the fault effect *)
  let faulty = Circuit.clone circ in
  (match fault.Fault.site with
  | Fault.Stem s ->
    let const = Circuit.add_const faulty fault.Fault.stuck_at in
    (* move all fanouts of s to the constant *)
    Circuit.replace_stem faulty s const
  | Fault.Branch (sink, pin) ->
    let const = Circuit.add_const faulty fault.Fault.stuck_at in
    Circuit.set_fanin faulty sink pin const);
  let bad = Sim.Engine.eval_single faulty vector in
  List.exists
    (fun (name, v) -> List.assoc name bad <> v)
    good

let test_podem_finds_test () =
  let c, ab, _, _ = Build.redundant_and () in
  (* ab stuck-at-0 is testable: out = ab *)
  let f = Fault.stem ab false in
  match Podem.generate_test c f with
  | Podem.Test assignment ->
    Alcotest.(check bool) "test detects" true (verify_test c f assignment)
  | Podem.Untestable -> Alcotest.fail "should be testable"
  | Podem.Aborted _ -> Alcotest.fail "aborted"

let test_podem_redundant () =
  (* In redundant_and, out = ab | (ab & c'); the branch ab->abc is not
     observable: abc stuck-at-0 is redundant. *)
  let c, _, abc, out = Build.redundant_and () in
  ignore out;
  let f = Fault.stem abc false in
  match Podem.generate_test c f with
  | Podem.Untestable -> ()
  | Podem.Test a ->
    Alcotest.failf "expected redundant, got test (detects=%b)"
      (verify_test c f a)
  | Podem.Aborted _ -> Alcotest.fail "aborted"

let test_podem_all_faults_parity () =
  (* every stuck-at fault in a parity tree is testable *)
  let c = Build.parity_chain 4 in
  List.iter
    (fun f ->
      match Podem.generate_test c f with
      | Podem.Test assignment ->
        Alcotest.(check bool)
          (Fault.to_string c f) true (verify_test c f assignment)
      | Podem.Untestable | Podem.Aborted _ ->
        Alcotest.fail ("no test for " ^ Fault.to_string c f))
    (Fault.all_faults c)

let test_justify () =
  let c, _, _, _, _, _, f = Build.fig2_a () in
  (match Podem.justify_one c f with
  | Podem.Test assignment ->
    let vector =
      List.map
        (fun pi ->
          match List.assoc_opt pi assignment with Some v -> v | None -> false)
        (Circuit.pis c)
    in
    let outs = Sim.Engine.eval_single c vector in
    Alcotest.(check bool) "f = 1" true (List.assoc "out_f" outs)
  | Podem.Untestable | Podem.Aborted _ -> Alcotest.fail "justification failed");
  (* a constant-0 target: x & !x *)
  let lib = Build.lib in
  let c2 = Circuit.create lib in
  let x = Circuit.add_pi c2 ~name:"x" in
  let nx = Circuit.add_cell c2 (Gatelib.Library.find lib "inv1") [| x |] in
  let z = Circuit.add_cell c2 (Gatelib.Library.find lib "and2") [| x; nx |] in
  let _ = Circuit.add_po c2 ~name:"z" z in
  match Podem.justify_one c2 z with
  | Podem.Untestable -> ()
  | Podem.Test _ | Podem.Aborted _ -> Alcotest.fail "x & !x is never 1"

let test_equiv_identical () =
  let c1 = Build.parity_chain 4 in
  let c2 = Build.parity_chain 4 in
  Alcotest.(check bool) "equivalent" true (Equiv.check c1 c2 = Equiv.Equivalent)

let test_equiv_different () =
  let c1 = Build.parity_chain 4 in
  let c2 = Build.parity_chain 4 in
  (* negate the output of c2 by retargeting its PO through an inverter *)
  (match Circuit.pos c2 with
  | [ po ] ->
    let d = Circuit.po_driver c2 po in
    let inv = Circuit.add_cell c2 (Gatelib.Library.inverter Build.lib) [| d |] in
    Circuit.set_fanin c2 po 0 inv
  | _ -> Alcotest.fail "one po");
  match Equiv.check c1 c2 with
  | Equiv.Different _ -> ()
  | Equiv.Equivalent | Equiv.Unknown -> Alcotest.fail "should differ"

let test_equiv_fig2 () =
  (* the paper's Figure 2 substitution is permissible *)
  let ca, _, _, _, _, _, _ = Build.fig2_a () in
  let cb = Build.fig2_b () in
  Alcotest.(check bool) "fig2 A equiv B" true (Equiv.check ca cb = Equiv.Equivalent)

let test_equiv_via_miter_podem () =
  (* force the PODEM path by setting exhaustive_limit to 0 *)
  let ca, _, _, _, _, _, _ = Build.fig2_a () in
  let cb = Build.fig2_b () in
  Alcotest.(check bool) "miter podem equiv" true
    (Equiv.check ~exhaustive_limit:0 ca cb = Equiv.Equivalent);
  let c3 = Build.parity_chain 3 in
  let c4 = Build.parity_chain 3 in
  (match Circuit.pos c4 with
  | [ po ] ->
    let d = Circuit.po_driver c4 po in
    let inv = Circuit.add_cell c4 (Gatelib.Library.inverter Build.lib) [| d |] in
    Circuit.set_fanin c4 po 0 inv
  | _ -> ());
  match Equiv.check ~exhaustive_limit:0 c3 c4 with
  | Equiv.Different _ -> ()
  | Equiv.Equivalent | Equiv.Unknown -> Alcotest.fail "should differ via miter"

let test_faultsim_detects () =
  let c = Build.parity_chain 4 in
  let eng = Engine.create c ~words:1 in
  Engine.exhaustive eng;
  let cov = Faultsim.grade eng (Fault.all_faults c) in
  Alcotest.(check int) "all detected" cov.Faultsim.total cov.Faultsim.detected

let test_faultsim_redundant_undetected () =
  let c, _, abc, _ = Build.redundant_and () in
  let eng = Engine.create c ~words:1 in
  Engine.exhaustive eng;
  Alcotest.(check bool) "redundant fault missed" false
    (Faultsim.detects eng (Fault.stem abc false))

let test_random_coverage_runs () =
  let c = Build.random_circuit ~seed:3 ~n_pis:6 ~n_gates:20 in
  let cov = Faultsim.random_coverage c ~patterns:256 ~seed:9L in
  Alcotest.(check bool) "some detected" true (cov.Faultsim.detected > 0);
  Alcotest.(check bool) "bounded" true (cov.Faultsim.detected <= cov.Faultsim.total)

(* Cross-validation: PODEM vs exhaustive fault simulation on random
   circuits — the central correctness property of the ATPG engine. *)
let prop_podem_agrees_with_exhaustive =
  QCheck.Test.make ~name:"podem agrees with exhaustive faultsim" ~count:15
    QCheck.(int_bound 9999)
    (fun seed ->
      let c = Build.random_circuit ~seed ~n_pis:5 ~n_gates:15 in
      let eng = Engine.create c ~words:1 in
      Engine.exhaustive eng;
      List.for_all
        (fun f ->
          let simulated = Faultsim.detects eng f in
          match Podem.generate_test c f with
          | Podem.Test assignment -> verify_test c f assignment
          | Podem.Untestable -> not simulated
          | Podem.Aborted _ -> true (* inconclusive is acceptable *))
        (Fault.all_faults c))

let suite =
  [
    ( "atpg",
      [
        Alcotest.test_case "tval eval" `Quick test_tval_eval_cell;
        Alcotest.test_case "podem finds test" `Quick test_podem_finds_test;
        Alcotest.test_case "podem proves redundancy" `Quick test_podem_redundant;
        Alcotest.test_case "podem on parity faults" `Quick test_podem_all_faults_parity;
        Alcotest.test_case "justify" `Quick test_justify;
        Alcotest.test_case "equiv identical" `Quick test_equiv_identical;
        Alcotest.test_case "equiv different" `Quick test_equiv_different;
        Alcotest.test_case "equiv fig2" `Quick test_equiv_fig2;
        Alcotest.test_case "equiv via miter+podem" `Quick test_equiv_via_miter_podem;
        Alcotest.test_case "faultsim detects" `Quick test_faultsim_detects;
        Alcotest.test_case "faultsim misses redundant" `Quick test_faultsim_redundant_undetected;
        Alcotest.test_case "random coverage" `Quick test_random_coverage_runs;
        QCheck_alcotest.to_alcotest prop_podem_agrees_with_exhaustive;
      ] );
  ]
