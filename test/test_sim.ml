module Circuit = Netlist.Circuit
module Engine = Sim.Engine
module Rng = Sim.Rng

let test_exhaustive_parity () =
  let c = Build.parity_chain 4 in
  let eng = Engine.create c ~words:1 in
  Engine.exhaustive eng;
  (* the parity of 4 inputs is 1 on exactly half the minterms *)
  match Circuit.pos c with
  | [ po ] ->
    let d = Circuit.po_driver c po in
    (* only the first 16 patterns form one exhaustive block; with 64
       patterns the block repeats 4 times, so counting still works *)
    Alcotest.(check int) "ones" 32 (Engine.count_ones eng d)
  | _ -> Alcotest.fail "one po expected"

let test_eval_single_matches_engine () =
  let c = Build.random_circuit ~seed:42 ~n_pis:5 ~n_gates:20 in
  let eng = Engine.create c ~words:1 in
  Engine.exhaustive eng;
  (* check pattern 13 = inputs (1,0,1,1,0) *)
  let m = 13 in
  let pi_vals = List.mapi (fun i _ -> m land (1 lsl i) <> 0) (Circuit.pis c) in
  let single = Engine.eval_single c pi_vals in
  List.iter
    (fun po ->
      let name = Circuit.name c po in
      let from_engine =
        Int64.logand (Int64.shift_right_logical (Engine.value eng po).(0) m) 1L
        = 1L
      in
      Alcotest.(check bool) name (List.assoc name single) from_engine)
    (Circuit.pos c)

let test_prob_uniform_inputs () =
  let c = Build.parity_chain 6 in
  let eng = Engine.create c ~words:1 in
  Engine.exhaustive eng;
  List.iter
    (fun pi -> Alcotest.(check (float 1e-9)) "pi prob" 0.5 (Engine.prob_one eng pi))
    (Circuit.pis c)

let test_randomize_prob_bias () =
  let c = Build.parity_chain 2 in
  let eng = Engine.create c ~words:64 in
  let probs pi = if Circuit.name c pi = "x0" then 0.9 else 0.5 in
  Engine.randomize eng ~input_probs:probs (Rng.create 7L);
  match Circuit.pis c with
  | [ x0; x1 ] ->
    let p0 = Engine.prob_one eng x0 and p1 = Engine.prob_one eng x1 in
    Alcotest.(check bool) "x0 biased" true (p0 > 0.85 && p0 < 0.95);
    Alcotest.(check bool) "x1 near half" true (p1 > 0.44 && p1 < 0.56)
  | _ -> Alcotest.fail "two pis"

let test_resim_tfo_consistency () =
  let c, _, _, _, d, e, _ = Build.fig2_a () in
  let eng = Engine.create c ~words:4 in
  Engine.randomize eng (Rng.create 3L);
  (* apply the IS2 edit, resim only the TFO, compare against full resim *)
  Circuit.set_fanin c d 0 e;
  Engine.resim_tfo eng d;
  let incr_sigs = Engine.po_signatures eng in
  Engine.resim_all eng;
  let full_sigs = Engine.po_signatures eng in
  List.iter2
    (fun (n1, v1) (n2, v2) ->
      Alcotest.(check string) "name" n1 n2;
      Alcotest.(check bool) "words equal" true (v1 = v2))
    incr_sigs full_sigs

let test_signature_equal_complement () =
  let c = Build.parity_chain 3 in
  let eng = Engine.create c ~words:1 in
  Engine.exhaustive eng;
  (* x0 xor x1 node vs its own value *)
  match Circuit.live_gates c with
  | g1 :: _ ->
    Alcotest.(check bool) "self equal" true (Engine.equal_signature eng g1 g1);
    Alcotest.(check bool) "self not complement" false
      (Engine.complement_signature eng g1 g1)
  | [] -> Alcotest.fail "gates expected"

let test_stem_observability_parity () =
  (* in a parity chain every internal signal is observable on every
     pattern *)
  let c = Build.parity_chain 4 in
  let eng = Engine.create c ~words:1 in
  Engine.exhaustive eng;
  List.iter
    (fun g ->
      let obs = Engine.stem_observability eng g in
      Alcotest.(check bool) "fully observable" true
        (Array.for_all (fun w -> Int64.equal w (-1L)) obs))
    (Circuit.live_gates c)

let test_branch_observability_masked () =
  (* f = (a & b): branch a->f is observable exactly when b = 1 *)
  let lib = Build.lib in
  let c = Circuit.create lib in
  let a = Circuit.add_pi c ~name:"a" in
  let b = Circuit.add_pi c ~name:"b" in
  let f = Circuit.add_cell c ~name:"f" (Gatelib.Library.find lib "and2") [| a; b |] in
  let _ = Circuit.add_po c ~name:"out" f in
  let eng = Engine.create c ~words:1 in
  Engine.exhaustive eng;
  let obs = Engine.branch_observability eng ~sink:f ~pin:0 in
  let b_sig = Engine.value eng b in
  Alcotest.(check bool) "obs = b" true (Int64.equal obs.(0) b_sig.(0))

let test_observability_preserves_state () =
  let c = Build.random_circuit ~seed:5 ~n_pis:6 ~n_gates:30 in
  let eng = Engine.create c ~words:2 in
  Engine.randomize eng (Rng.create 11L);
  let before = Engine.po_signatures eng in
  List.iter (fun g -> ignore (Engine.stem_observability eng g)) (Circuit.live_gates c);
  let after = Engine.po_signatures eng in
  List.iter2
    (fun (_, v1) (_, v2) -> Alcotest.(check bool) "unchanged" true (v1 = v2))
    before after

let test_with_perturbation_restores () =
  let c = Build.parity_chain 5 in
  let eng = Engine.create c ~words:2 in
  Engine.randomize eng (Rng.create 23L);
  match Circuit.live_gates c with
  | g :: _ ->
    let before = Array.copy (Engine.value eng g) in
    let ones_during =
      Engine.with_perturbation eng ~first:g
        ~perturb:(fun eng -> Engine.set_value eng g (Array.make 2 (-1L)))
        ~measure:(fun eng -> Engine.count_ones eng g)
    in
    Alcotest.(check int) "forced to ones" 128 ones_during;
    Alcotest.(check bool) "restored" true (before = Engine.value eng g)
  | [] -> Alcotest.fail "gates expected"

let prop_exhaustive_po_prob_parity =
  QCheck.Test.make ~name:"parity output prob is 1/2" ~count:5
    QCheck.(int_range 2 6)
    (fun n ->
      let c = Build.parity_chain n in
      let eng = Engine.create c ~words:1 in
      Engine.exhaustive eng;
      match Circuit.pos c with
      | [ po ] -> Float.abs (Engine.prob_one eng po -. 0.5) < 1e-9
      | _ -> false)

(* Satellite: every stochastic component (bench sections, the
   optimizer's cex screen, guard re-verify, the fuzz harness) now draws
   through [Rng.derive]/[Rng.stream], so equal seed + label must mean
   an identical stream, and distinct labels distinct domains. *)
let test_rng_derive_deterministic () =
  Alcotest.(check int64) "same seed and label"
    (Rng.derive 5L "powder/cex") (Rng.derive 5L "powder/cex");
  Alcotest.(check bool) "labels separate domains" true
    (Rng.derive 5L "powder/cex" <> Rng.derive 5L "powder/guard");
  Alcotest.(check bool) "seeds separate streams" true
    (Rng.derive 5L "fuzz/spec" <> Rng.derive 6L "fuzz/spec");
  Alcotest.(check int64) "stream replays"
    (Rng.next (Rng.stream 7L "bench/sig")) (Rng.next (Rng.stream 7L "bench/sig"));
  Alcotest.(check bool) "stream label matters" true
    (Rng.next (Rng.stream 7L "bench/sig") <> Rng.next (Rng.stream 7L "fuzz/pat"))

let test_identical_seeds_identical_signatures () =
  let c1 = Build.parity_chain 6 and c2 = Build.parity_chain 6 in
  let e1 = Engine.create c1 ~words:4 and e2 = Engine.create c2 ~words:4 in
  Engine.randomize e1 (Rng.stream 7L "test/sig");
  Engine.randomize e2 (Rng.stream 7L "test/sig");
  Alcotest.(check bool) "identical seeds give identical signatures" true
    (Engine.equivalent_on_patterns e1 e2);
  List.iter2
    (fun p1 p2 ->
      Alcotest.(check int) "pattern words match bit for bit"
        (Engine.count_ones e1 p1) (Engine.count_ones e2 p2))
    (Circuit.pis c1) (Circuit.pis c2)

let suite =
  [
    ( "sim",
      [
        Alcotest.test_case "exhaustive parity" `Quick test_exhaustive_parity;
        Alcotest.test_case "seed derivation deterministic" `Quick
          test_rng_derive_deterministic;
        Alcotest.test_case "identical seeds, identical signatures" `Quick
          test_identical_seeds_identical_signatures;
        Alcotest.test_case "eval_single vs engine" `Quick test_eval_single_matches_engine;
        Alcotest.test_case "uniform input probs" `Quick test_prob_uniform_inputs;
        Alcotest.test_case "randomize bias" `Quick test_randomize_prob_bias;
        Alcotest.test_case "resim_tfo consistency" `Quick test_resim_tfo_consistency;
        Alcotest.test_case "signature predicates" `Quick test_signature_equal_complement;
        Alcotest.test_case "stem observability (parity)" `Quick test_stem_observability_parity;
        Alcotest.test_case "branch observability mask" `Quick test_branch_observability_masked;
        Alcotest.test_case "observability preserves state" `Quick test_observability_preserves_state;
        Alcotest.test_case "with_perturbation restores" `Quick test_with_perturbation_restores;
        QCheck_alcotest.to_alcotest prop_exhaustive_po_prob_parity;
      ] );
  ]
