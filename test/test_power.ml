module Circuit = Netlist.Circuit
module Engine = Sim.Engine
module Estimator = Power.Estimator

let make_estimator c =
  let eng = Engine.create c ~words:1 in
  Engine.exhaustive eng;
  Estimator.create eng

let test_transition_prob () =
  let c, a, _, _, _, e, _ = Build.fig2_a () in
  let est = make_estimator c in
  Alcotest.(check (float 1e-9)) "E(pi)" 0.5 (Estimator.transition_prob est a);
  (* e = a & b: p = 1/4, E = 2 * 1/4 * 3/4 = 0.375 *)
  Alcotest.(check (float 1e-9)) "E(and)" 0.375 (Estimator.transition_prob est e)

let test_total_by_hand () =
  let c, a, b, ci, d, e, f = Build.fig2_a () in
  let est = make_estimator c in
  (* loads: a=3 (and pin + xor pin), b=2, c=2 (xor pin), d=1, e=1 (po), f=1 (po) *)
  let expected =
    (3.0 *. 0.5) +. (2.0 *. 0.5) +. (2.0 *. 0.5)
    +. (1.0 *. Estimator.transition_prob est d)
    +. (1.0 *. Estimator.transition_prob est e)
    +. (1.0 *. Estimator.transition_prob est f)
  in
  ignore (a, b, ci);
  Alcotest.(check (float 1e-9)) "total" expected (Estimator.total est)

let test_update_after_edit_matches_full () =
  let c, _, _, _, d, e, _ = Build.fig2_a () in
  let est = make_estimator c in
  Circuit.set_fanin c d 0 e;
  ignore (Estimator.update_after_edit est d);
  let incremental = Estimator.total est in
  Estimator.refresh_all est;
  let full = Estimator.total est in
  Alcotest.(check (float 1e-12)) "incremental = full" full incremental

let test_po_nodes_not_counted () =
  let c = Build.parity_chain 3 in
  let est = make_estimator c in
  List.iter
    (fun po ->
      Alcotest.(check (float 1e-12)) "po power" 0.0 (Estimator.node_power est po))
    (Circuit.pos c)

let test_region_power () =
  let c, ab, abc, out = Build.redundant_and () in
  let est = make_estimator c in
  let dom = Circuit.dominated_region c abc in
  let region = Estimator.region_power est dom in
  (* region is abc + nc + pi c (whose only fanout is nc) *)
  let named n =
    match Circuit.find_by_name c n with
    | Some id -> Circuit.load_of c id *. Estimator.transition_prob est id
    | None -> Alcotest.fail ("missing node " ^ n)
  in
  let expected =
    (Circuit.load_of c abc *. Estimator.transition_prob est abc)
    +. named "nc" +. named "c"
  in
  ignore (ab, out);
  Alcotest.(check (float 1e-9)) "region power" expected region

let test_region_input_relief () =
  let c, ab, abc, _ = Build.redundant_and () in
  let est = make_estimator c in
  let dom = Circuit.dominated_region c abc in
  (* the only region input is ab, contributing its pin into abc (and2
     pin = 1.0); pi c lies inside the region *)
  let expected = 1.0 *. Estimator.transition_prob est ab in
  Alcotest.(check (float 1e-9)) "relief" expected
    (Estimator.region_input_relief est dom)

let test_watts_scale () =
  let c = Build.parity_chain 3 in
  let est = make_estimator c in
  let w = Estimator.watts ~vdd:2.0 ~freq:1.0e6 est in
  Alcotest.(check (float 1e-6)) "scale" (2.0e6 *. Estimator.total est) w

let prop_total_nonnegative =
  QCheck.Test.make ~name:"power total >= 0" ~count:20 QCheck.(int_bound 9999)
    (fun seed ->
      let c = Build.random_circuit ~seed ~n_pis:6 ~n_gates:25 in
      let est = make_estimator c in
      Estimator.total est >= 0.0)

let prop_incremental_equals_full =
  QCheck.Test.make ~name:"incremental update = full refresh" ~count:20
    QCheck.(int_bound 9999)
    (fun seed ->
      let c = Build.random_circuit ~seed ~n_pis:6 ~n_gates:25 in
      let est = make_estimator c in
      (* perturb: retarget the first gate's pin 0 to the first PI if legal *)
      match (Circuit.live_gates c, Circuit.pis c) with
      | g :: _, pi :: _ ->
        if Circuit.would_cycle_pin c g 0 pi then true
        else begin
          Circuit.set_fanin c g 0 pi;
          ignore (Estimator.update_after_edit est g);
          let incr = Estimator.total est in
          Estimator.refresh_all est;
          Float.abs (incr -. Estimator.total est) < 1e-9
        end
      | _ -> true)

(* The pairwise-tree total must be bit-equal — not within a tolerance —
   to a from-scratch estimator on the same engine state, after every
   optimizer-style edit burst (substitution apply + sweep + incremental
   resim).  This is the fixed-association guarantee [Estimator.total]
   documents. *)
let test_total_bitequal_incremental () =
  let bits = Int64.bits_of_float in
  for seed = 0 to 5 do
    let c = Build.random_circuit ~seed:(500 + seed) ~n_pis:6 ~n_gates:40 in
    let eng = Engine.create c ~words:2 in
    let stream () =
      Sim.Rng.stream (Int64.of_int (909 + seed)) "test/power-inc"
    in
    Engine.randomize eng (stream ());
    let est = Estimator.create eng in
    let applied = ref 0 in
    let progress = ref true in
    while !applied < 5 && !progress do
      let cands =
        Powder.Candidates.generate
          ~config:
            {
              Powder.Candidates.default_config with
              Powder.Candidates.require_positive = false;
            }
          est
      in
      match
        List.find_opt
          (fun (s, _) -> not (Powder.Subst.creates_cycle c s))
          cands
      with
      | None -> progress := false
      | Some (s, _) ->
        let src = Powder.Subst.apply c s in
        ignore (Estimator.update_after_edit est src);
        incr applied;
        let fresh_eng = Engine.create c ~words:2 in
        Engine.randomize fresh_eng (stream ());
        let fresh = Estimator.create fresh_eng in
        let a = Estimator.total est and b = Estimator.total fresh in
        if not (Int64.equal (bits a) (bits b)) then
          Alcotest.failf
            "seed %d edit %d: incremental total %.17g <> fresh %.17g" seed
            !applied a b
    done;
    Alcotest.(check bool)
      (Printf.sprintf "seed %d: edits actually applied" seed)
      true (!applied >= 3)
  done

let suite =
  [
    ( "power",
      [
        Alcotest.test_case "transition prob" `Quick test_transition_prob;
        Alcotest.test_case "total by hand" `Quick test_total_by_hand;
        Alcotest.test_case "incremental update" `Quick test_update_after_edit_matches_full;
        Alcotest.test_case "incremental total bit-equal" `Quick
          test_total_bitequal_incremental;
        Alcotest.test_case "po nodes not counted" `Quick test_po_nodes_not_counted;
        Alcotest.test_case "region power" `Quick test_region_power;
        Alcotest.test_case "region input relief" `Quick test_region_input_relief;
        Alcotest.test_case "watts scale" `Quick test_watts_scale;
        QCheck_alcotest.to_alcotest prop_total_nonnegative;
        QCheck_alcotest.to_alcotest prop_incremental_equals_full;
      ] );
  ]
