module Verilog = Blif.Verilog
module Blif = Blif.Blif_io
module Network = Aig.Network
module G = Aig.Graph
module Circuit = Netlist.Circuit
module Engine = Sim.Engine

let sample_blif =
  {|
# a small two-output network
.model demo
.inputs a b c
.outputs f g
.names a b t
11 1
.names t c f
1- 1
-1 1
.names c g
0 1
.end
|}

let test_parse_network () =
  match Blif.network_of_string sample_blif with
  | Error e -> Alcotest.fail (Blif.error_to_string e)
  | Ok net ->
    Alcotest.(check string) "model" "demo" net.Network.model;
    Alcotest.(check (list string)) "inputs" [ "a"; "b"; "c" ] net.Network.inputs;
    Alcotest.(check (list string)) "outputs" [ "f"; "g" ] net.Network.outputs;
    Alcotest.(check int) "nodes" 3 (List.length net.Network.nodes);
    (* f = (a&b) | c ; g = !c *)
    let g = Network.to_aig net in
    for m = 0 to 7 do
      let va = m land 1 <> 0 and vb = m land 2 <> 0 and vc = m land 4 <> 0 in
      let outs = G.eval g [| va; vb; vc |] in
      Alcotest.(check bool) "f" ((va && vb) || vc) (List.assoc "f" outs);
      Alcotest.(check bool) "g" (not vc) (List.assoc "g" outs)
    done

let test_offset_rows () =
  let text = ".model x\n.inputs a b\n.outputs f\n.names a b f\n10 0\n01 0\n.end\n" in
  match Blif.network_of_string text with
  | Error e -> Alcotest.fail (Blif.error_to_string e)
  | Ok net ->
    (* f is the complement of (a xor b) *)
    let g = Network.to_aig net in
    for m = 0 to 3 do
      let va = m land 1 <> 0 and vb = m land 2 <> 0 in
      Alcotest.(check bool) "xnor" (va = vb) (List.assoc "f" (G.eval g [| va; vb |]))
    done

let test_network_roundtrip () =
  match Blif.network_of_string sample_blif with
  | Error e -> Alcotest.fail (Blif.error_to_string e)
  | Ok net ->
    let text = Blif.network_to_string net in
    (match Blif.network_of_string text with
    | Error e -> Alcotest.fail ("reparse: " ^ Blif.error_to_string e)
    | Ok net2 ->
      let g1 = Network.to_aig net and g2 = Network.to_aig net2 in
      for m = 0 to 7 do
        let v = [| m land 1 <> 0; m land 2 <> 0; m land 4 <> 0 |] in
        Alcotest.(check bool) "same f"
          (List.assoc "f" (G.eval g1 v))
          (List.assoc "f" (G.eval g2 v))
      done)

let test_parse_errors () =
  let cases =
    [
      (".model x\n.inputs a\n.outputs f\n.names a f\n1 1\n.baddir\n.end\n", "directive");
      (".model x\n.inputs a\n.outputs zz\n.end\n", "undefined output");
      (".model x\n.inputs a\n.outputs f\n.names a f\n111 1\n.end\n", "row width");
      (".model x\n.model y\n.inputs a\n.outputs f\n.names a f\n1 1\n.end\n",
       "duplicate .model");
    ]
  in
  List.iter
    (fun (text, what) ->
      match Blif.network_of_string text with
      | Ok _ -> Alcotest.fail ("expected failure: " ^ what)
      | Error _ -> ())
    cases

let test_parse_error_lines () =
  (* the typed error points at the physical line of the offense, even
     when the logical line started earlier via a [\] continuation *)
  (match Blif.network_of_string ".model x\n.inputs a\n.outputs f\n.names a f\n1 1\n.baddir\n.end\n" with
  | Error e -> Alcotest.(check int) "directive line" 6 e.Blif.line
  | Ok _ -> Alcotest.fail "expected failure");
  (match Blif.network_of_string ".model x\n.inputs \\\na\n.outputs f\n.names a f\n111 1\n.end\n" with
  | Error e ->
    Alcotest.(check int) "row after continuation" 6 e.Blif.line;
    Alcotest.(check bool) "message names the node" true
      (String.length e.Blif.message > 0)
  | Ok _ -> Alcotest.fail "expected failure");
  (* a .names body error is reported at the line the node started *)
  match Blif.network_of_string ".model x\n.inputs a b\n.outputs f\n.names a b f\n11 1\n00 0\n.end\n" with
  | Error e -> Alcotest.(check int) "mixed rows at .names line" 4 e.Blif.line
  | Ok _ -> Alcotest.fail "expected failure"

let test_truncated_gate_rejected () =
  List.iter
    (fun (text, what) ->
      match Blif.circuit_of_string Build.lib text with
      | Ok _ -> Alcotest.fail ("expected failure: " ^ what)
      | Error e ->
        Alcotest.(check int) ("line of " ^ what) 4 e.Blif.line)
    [
      (".model m\n.inputs a\n.outputs f\n.gate\n.end\n", "bare .gate");
      (".model m\n.inputs a\n.outputs f\n.gate inv1\n.end\n", "gate without pins");
      (".model m\n.inputs a\n.outputs f\n.gate inv1 a=a\n.end\n",
       "gate without output");
      (".model m\n.inputs a\n.outputs f\n.gate inv1 a O=f\n.end\n",
       "connection without =");
      (".model m\n.inputs a\n.outputs f\n.gate inv1 q=a O=f\n.end\n",
       "unknown pin");
      (".model m\n.inputs a b\n.outputs f\n.gate and2 a=a O=f\n.end\n",
       "missing pin");
    ]

let test_duplicate_model_rejected_mapped () =
  let text = ".model m\n.model m2\n.inputs a\n.outputs f\n.gate inv1 a=a O=f\n.end\n" in
  match Blif.circuit_of_string Build.lib text with
  | Ok _ -> Alcotest.fail "expected duplicate .model error"
  | Error e -> Alcotest.(check int) "line" 2 e.Blif.line

let test_circuit_roundtrip () =
  let circ, _, _, _, _, _, _ = Build.fig2_a () in
  let text = Blif.circuit_to_string circ in
  match Blif.circuit_of_string Build.lib text with
  | Error e -> Alcotest.fail (Blif.error_to_string e)
  | Ok circ2 ->
    (match Circuit.validate circ2 with Ok () -> () | Error e -> Alcotest.fail e);
    Alcotest.(check int) "gates" (Circuit.gate_count circ) (Circuit.gate_count circ2);
    for m = 0 to 7 do
      let v = [ m land 1 <> 0; m land 2 <> 0; m land 4 <> 0 ] in
      let o1 = Engine.eval_single circ v and o2 = Engine.eval_single circ2 v in
      List.iter
        (fun (name, value) ->
          Alcotest.(check bool) name value (List.assoc name o2))
        o1
    done

let test_circuit_roundtrip_mapped_suite () =
  (* a mapped benchmark survives the BLIF roundtrip bit-exactly *)
  match Circuits.Suite.find "rd84" with
  | None -> Alcotest.fail "rd84 missing"
  | Some spec ->
    let circ = Circuits.Suite.mapped spec in
    let text = Blif.circuit_to_string circ in
    (match Blif.circuit_of_string Gatelib.Library.lib2 text with
    | Error e -> Alcotest.fail (Blif.error_to_string e)
    | Ok circ2 ->
      Alcotest.(check bool) "equivalent" true
        (Atpg.Equiv.check circ circ2 = Atpg.Equiv.Equivalent))

let test_unknown_cell_rejected () =
  let text = ".model m\n.inputs a\n.outputs f\n.gate nosuchcell a=a O=f\n.end\n" in
  match Blif.circuit_of_string Build.lib text with
  | Ok _ -> Alcotest.fail "expected unknown cell error"
  | Error e ->
    Alcotest.(check int) "error line" 4 e.Blif.line;
    Alcotest.(check bool) "mentions cell" true
      (String.length e.Blif.message > 0)

let blif_tests =
  [
        Alcotest.test_case "parse network" `Quick test_parse_network;
        Alcotest.test_case "offset rows" `Quick test_offset_rows;
        Alcotest.test_case "network roundtrip" `Quick test_network_roundtrip;
        Alcotest.test_case "parse errors" `Quick test_parse_errors;
        Alcotest.test_case "circuit roundtrip" `Quick test_circuit_roundtrip;
        Alcotest.test_case "mapped suite roundtrip" `Quick test_circuit_roundtrip_mapped_suite;
        Alcotest.test_case "unknown cell" `Quick test_unknown_cell_rejected;
        Alcotest.test_case "parse error lines" `Quick test_parse_error_lines;
        Alcotest.test_case "truncated .gate" `Quick test_truncated_gate_rejected;
        Alcotest.test_case "duplicate .model (mapped)" `Quick
          test_duplicate_model_rejected_mapped;
  ]

(* ------------------------------------------------------------------ *)
(* Verilog writer                                                      *)
(* ------------------------------------------------------------------ *)

let test_verilog_writer () =
  let circ, _, _, _, _, _, _ = Build.fig2_a () in
  let text = Verilog.circuit_to_string ~module_name:"fig2" circ in
  List.iter
    (fun fragment ->
      Alcotest.(check bool) ("contains " ^ fragment) true
        (let re = Str.regexp_string fragment in
         try ignore (Str.search_forward re text 0); true with Not_found -> false))
    [ "module fig2"; "input a;"; "output out_f;"; "and2 "; "xor2 ";
      "endmodule" ]

let test_verilog_sanitizes () =
  let lib = Build.lib in
  let c = Circuit.create lib in
  let a = Circuit.add_pi c ~name:"weird[3].x" in
  let g = Circuit.add_cell c (Gatelib.Library.inverter lib) [| a |] in
  ignore (Circuit.add_po c ~name:"1bad" g);
  let text = Verilog.circuit_to_string c in
  Alcotest.(check bool) "no brackets" true
    (not (String.contains text '['));
  Alcotest.(check bool) "port renamed" true
    (let re = Str.regexp_string "weird_3__x" in
     try ignore (Str.search_forward re text 0); true with Not_found -> false)

let verilog_tests =
  [
    Alcotest.test_case "verilog writer" `Quick test_verilog_writer;
    Alcotest.test_case "verilog sanitize" `Quick test_verilog_sanitizes;
  ]

(* Satellite: repro bundles embed circuits as BLIF, so fuzzed netlists
   must survive emit -> parse -> emit with byte-identical text — any
   drift (ordering, constants, naming) would break exact replay. *)
let test_fuzzed_roundtrip_byte_stable () =
  for i = 0 to 9 do
    let seed = Int64.of_int (400 + i) in
    let c = Fuzz.Gen.generate (Fuzz.Gen.spec_of_seed seed) in
    let s1 = Blif.circuit_to_string c in
    match Blif.circuit_of_string Build.lib s1 with
    | Error e ->
      Alcotest.failf "seed %Ld: reparse: %s" seed (Blif.error_to_string e)
    | Ok c2 ->
      Alcotest.(check string)
        (Printf.sprintf "seed %Ld: byte-stable" seed)
        s1
        (Blif.circuit_to_string c2)
  done

let fuzz_roundtrip_tests =
  [
    Alcotest.test_case "fuzzed emit/parse/emit byte-stable" `Quick
      test_fuzzed_roundtrip_byte_stable;
  ]

let suite = [ ("blif", blif_tests @ verilog_tests @ fuzz_roundtrip_tests) ]
