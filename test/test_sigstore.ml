(* Signature-store invariants: incremental maintenance vs. full
   rebuild, counterexample folding, TFO-only re-simulation, and the
   hash-index/linear-scan candidate identity. *)

module Circuit = Netlist.Circuit
module Engine = Sim.Engine
module Sigstore = Sim.Sigstore
module Estimator = Power.Estimator
module Candidates = Powder.Candidates
module Subst = Powder.Subst

let lib = Gatelib.Library.lib2
let cell name = Gatelib.Library.find lib name

(* Observable state of a store: every row word-for-word, plus the full
   class structure.  Two stores over equal engine states must agree on
   all of it — the incremental path included. *)
let store_fingerprint st =
  let n = Sigstore.num_signals st in
  let rows = List.init n (fun p -> Array.to_list (Sigstore.row st p)) in
  let irows = List.init n (fun p -> Array.to_list (Sigstore.irow st p)) in
  let classes =
    List.init (Sigstore.num_classes st) (fun c ->
        ( Array.to_list (Sigstore.class_canon st c),
          Array.to_list (Sigstore.class_icanon st c),
          Array.to_list (Sigstore.class_members st c),
          Sigstore.class_has_plus st c,
          Sigstore.class_has_minus st c ))
  in
  let membership =
    List.init n (fun p -> (Sigstore.class_of st p, Sigstore.member_complemented st p))
  in
  ( Array.to_list (Sigstore.signals st),
    rows,
    irows,
    classes,
    membership,
    Array.to_list (Sigstore.icanon_flat st),
    Sigstore.icanon_stride st )

(* A structural edit the resim/maintenance tests can run: the first
   acyclic stem-to-signal rewiring of a random circuit.  Nothing about
   it needs to be permissible — these tests exercise simulation
   plumbing, not logic equivalence. *)
let first_acyclic_stem_subst circ =
  let gates = Circuit.live_gates circ in
  let candidates =
    List.concat_map
      (fun a ->
        if Circuit.num_fanouts circ a = 0 then []
        else
          List.filter_map
            (fun b ->
              if b = a then None
              else
                let s = { Subst.target = Subst.Stem a; source = Subst.Signal b } in
                if Subst.creates_cycle circ s then None else Some s)
            gates)
      gates
  in
  match candidates with
  | s :: _ -> s
  | [] -> Alcotest.fail "no acyclic stem substitution in test circuit"

(* --- TFO-only resim == full resim, word for word ------------------ *)

let test_resim_after_edit_matches_full () =
  List.iter
    (fun seed ->
      let circ = Build.random_circuit ~seed ~n_pis:6 ~n_gates:30 in
      let eng_inc = Engine.create circ ~words:4 in
      let eng_full = Engine.create circ ~words:4 in
      Engine.randomize eng_inc (Sim.Rng.create 11L);
      Engine.randomize eng_full (Sim.Rng.create 11L);
      let s = first_acyclic_stem_subst circ in
      (* both engines share [circ], so one apply edits both worlds *)
      let root = Subst.apply circ s in
      let touched = Engine.resim_after_edit eng_inc root in
      Engine.resim_all eng_full;
      Alcotest.(check bool) "some nodes touched" true (touched >= 0);
      Circuit.iter_live circ (fun id ->
          Alcotest.(check (list int64))
            (Printf.sprintf "seed %d node %d" seed id)
            (Array.to_list (Engine.value eng_full id))
            (Array.to_list (Engine.value eng_inc id))))
    [ 3; 17; 99 ]

(* --- incremental store maintenance == rebuild --------------------- *)

let test_update_after_edit_matches_rebuild () =
  List.iter
    (fun seed ->
      let circ = Build.random_circuit ~seed ~n_pis:6 ~n_gates:40 in
      let base = Engine.create circ ~words:4 in
      let cex = Engine.create circ ~words:2 in
      Engine.randomize base (Sim.Rng.create 5L);
      Engine.randomize cex (Sim.Rng.create 23L);
      let st = Sigstore.create ~cex ~base () in
      Sigstore.sync st;
      let s = first_acyclic_stem_subst circ in
      let root = Subst.apply circ s in
      ignore (Engine.resim_after_edit base root);
      ignore (Engine.resim_after_edit cex root);
      (* incremental: only the edit's TFO rows are re-snapshot *)
      Sigstore.update_after_edit st root;
      (* reference: a fresh store rebuilt from scratch over the same
         engine states *)
      let st_ref = Sigstore.create ~cex ~base () in
      Sigstore.sync st_ref;
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: incremental == rebuild" seed)
        true
        (store_fingerprint st = store_fingerprint st_ref))
    [ 7; 42; 123 ]

(* --- counterexample folding makes a refuted pair unfindable ------- *)

let test_cex_folding_splits_class () =
  (* x = a AND b and y = a OR b agree whenever a = b.  Feed the base
     engine only such patterns: the store must alias x and y into one
     compatibility class — exactly the false positive the exact checker
     would refute with the assignment a=1, b=0.  Folding that
     counterexample into the cex engine must split the class, so the
     pair can never be generated again. *)
  let circ = Circuit.create lib in
  let a = Circuit.add_pi circ ~name:"a" in
  let b = Circuit.add_pi circ ~name:"b" in
  let x = Circuit.add_cell circ ~name:"x" (cell "and2") [| a; b |] in
  let y = Circuit.add_cell circ ~name:"y" (cell "or2") [| a; b |] in
  ignore (Circuit.add_po circ ~name:"ox" x);
  ignore (Circuit.add_po circ ~name:"oy" y);
  let base = Engine.create circ ~words:1 in
  let agree = 0x5A5A_F0F0_3C3C_00FFL in
  Engine.set_value base a [| agree |];
  Engine.set_value base b [| agree |];
  Engine.resim_all base;
  let cex = Engine.create circ ~words:1 in
  Engine.set_value cex a [| 0L |];
  Engine.set_value cex b [| 0L |];
  Engine.resim_all cex;
  let st = Sigstore.create ~cex ~base () in
  Sigstore.sync st;
  let px = Sigstore.position st x and py = Sigstore.position st y in
  Alcotest.(check bool) "aliased before the cex" true
    (Sigstore.class_of st px = Sigstore.class_of st py);
  (* fold the distinguishing assignment a=1, b=0 into cex pattern 0 *)
  Engine.set_value cex a [| 1L |];
  Engine.resim_all cex;
  Sigstore.invalidate st;
  Sigstore.sync st;
  let px = Sigstore.position st x and py = Sigstore.position st y in
  Alcotest.(check bool) "split after the cex" false
    (Sigstore.class_of st px = Sigstore.class_of st py);
  (* and the signature lookup of x's row no longer reaches y's class *)
  match Sigstore.lookup st (Sigstore.row st px) with
  | None -> Alcotest.fail "x's own signature must stay findable"
  | Some (c, _) ->
    Alcotest.(check bool) "lookup avoids the refuted alias" false
      (c = Sigstore.class_of st py)

(* --- hash index == linear scan, candidate for candidate ----------- *)

let test_hash_matches_scan () =
  List.iter
    (fun seed ->
      let circ = Build.random_circuit ~seed ~n_pis:7 ~n_gates:50 in
      let eng = Engine.create circ ~words:8 in
      Engine.randomize eng (Sim.Rng.create 31L);
      let est = Estimator.create eng in
      let hash =
        Candidates.generate
          ~config:{ Candidates.default_config with index = Candidates.Hash }
          est
      in
      let scan =
        Candidates.generate
          ~config:{ Candidates.default_config with index = Candidates.Scan }
          est
      in
      Alcotest.(check int)
        (Printf.sprintf "seed %d: same count" seed)
        (List.length hash) (List.length scan);
      List.iter2
        (fun (s1, g1) (s2, g2) ->
          Alcotest.(check string)
            (Printf.sprintf "seed %d: same candidate" seed)
            (Subst.describe circ s1) (Subst.describe circ s2);
          Alcotest.(check bool) "same gain" true
            (Subst.total_gain g1 = Subst.total_gain g2))
        hash scan)
    [ 2; 29; 77 ]

let suite =
  [
    ( "sigstore",
      [
        Alcotest.test_case "resim_after_edit == resim_all" `Quick
          test_resim_after_edit_matches_full;
        Alcotest.test_case "update_after_edit == rebuild" `Quick
          test_update_after_edit_matches_rebuild;
        Alcotest.test_case "cex folding splits the aliased class" `Quick
          test_cex_folding_splits_class;
        Alcotest.test_case "hash index == linear scan" `Quick
          test_hash_matches_scan;
      ] );
  ]
