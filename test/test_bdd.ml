module Bdd = Logic.Bdd
module Tt = Logic.Tt
module Bddcheck = Atpg.Bddcheck
module Circuit = Netlist.Circuit

let test_constants_and_vars () =
  let m = Bdd.manager () in
  Alcotest.(check bool) "true" true (Bdd.is_true m (Bdd.bdd_true m));
  Alcotest.(check bool) "false" true (Bdd.is_false m (Bdd.bdd_false m));
  let x = Bdd.var m 0 in
  Alcotest.(check bool) "x under x=1" true (Bdd.eval m x (fun _ -> true));
  Alcotest.(check bool) "x under x=0" false (Bdd.eval m x (fun _ -> false))

let test_hash_consing () =
  let m = Bdd.manager () in
  let x = Bdd.var m 0 and y = Bdd.var m 1 in
  let a = Bdd.and_ m x y in
  let b = Bdd.and_ m y x in
  Alcotest.(check bool) "same node" true (Bdd.equal a b);
  (* (x and y) or (x and not y) = x *)
  let c = Bdd.or_ m a (Bdd.and_ m x (Bdd.not_ m y)) in
  Alcotest.(check bool) "reduces to x" true (Bdd.equal c x)

let test_tautology_detection () =
  let m = Bdd.manager () in
  let x = Bdd.var m 0 in
  Alcotest.(check bool) "x or !x" true (Bdd.is_true m (Bdd.or_ m x (Bdd.not_ m x)));
  Alcotest.(check bool) "x and !x" true (Bdd.is_false m (Bdd.and_ m x (Bdd.not_ m x)))

let test_sat_fraction () =
  let m = Bdd.manager () in
  let x = Bdd.var m 0 and y = Bdd.var m 1 in
  let f = Bdd.and_ m x y in
  Alcotest.(check (float 1e-12)) "and" 0.25 (Bdd.sat_fraction m f ~num_vars:2);
  let g = Bdd.xor m x y in
  Alcotest.(check (float 1e-12)) "xor" 0.5 (Bdd.sat_fraction m g ~num_vars:2)

let test_node_limit () =
  let m = Bdd.manager ~node_limit:8 () in
  Alcotest.check_raises "limit" Bdd.Node_limit_exceeded (fun () ->
      let vars = List.init 8 (Bdd.var m) in
      ignore
        (List.fold_left (fun acc v -> Bdd.xor m acc v) (Bdd.bdd_false m) vars))

let prop_bdd_matches_tt =
  (* random 4-var functions built two ways must agree minterm by minterm *)
  QCheck.Test.make ~name:"bdd agrees with truth table" ~count:200
    QCheck.(int_bound 0xFFFF)
    (fun w ->
      let tt = Tt.create 4 (Int64.of_int w) in
      let m = Bdd.manager () in
      (* build the BDD from the minterm expansion *)
      let f =
        List.fold_left
          (fun acc minterm ->
            let cube =
              List.fold_left
                (fun c i ->
                  let v = Bdd.var m i in
                  Bdd.and_ m c
                    (if minterm land (1 lsl i) <> 0 then v else Bdd.not_ m v))
                (Bdd.bdd_true m)
                [ 0; 1; 2; 3 ]
            in
            Bdd.or_ m acc cube)
          (Bdd.bdd_false m) (Tt.minterms tt)
      in
      let ok = ref true in
      for minterm = 0 to 15 do
        let assign i = minterm land (1 lsl i) <> 0 in
        if Bdd.eval m f assign <> Tt.eval_int tt minterm then ok := false
      done;
      !ok
      && Float.abs
           (Bdd.sat_fraction m f ~num_vars:4
           -. (float_of_int (Tt.count_ones tt) /. 16.0))
         < 1e-12)

let test_bddcheck_justify () =
  let c, _, _, _, _, _, f = Build.fig2_a () in
  (match Bddcheck.justify_one c f with
  | Bddcheck.Justified assignment ->
    let vector =
      List.map
        (fun pi ->
          match List.assoc_opt pi assignment with Some v -> v | None -> false)
        (Circuit.pis c)
    in
    let outs = Sim.Engine.eval_single c vector in
    Alcotest.(check bool) "vector works" true (List.assoc "out_f" outs)
  | Bddcheck.Impossible | Bddcheck.Gave_up _ -> Alcotest.fail "justifiable");
  (* constant-zero cone *)
  let lib = Build.lib in
  let c2 = Circuit.create lib in
  let x = Circuit.add_pi c2 ~name:"x" in
  let nx = Circuit.add_cell c2 (Gatelib.Library.inverter lib) [| x |] in
  let z = Circuit.add_cell c2 (Gatelib.Library.find lib "and2") [| x; nx |] in
  ignore (Circuit.add_po c2 ~name:"z" z);
  match Bddcheck.justify_one c2 z with
  | Bddcheck.Impossible -> ()
  | Bddcheck.Justified _ | Bddcheck.Gave_up _ -> Alcotest.fail "constant 0"

let prop_bddcheck_matches_exhaustive =
  QCheck.Test.make ~name:"bdd justification = exhaustive" ~count:15
    QCheck.(int_bound 9999)
    (fun seed ->
      let c = Build.random_circuit ~seed ~n_pis:6 ~n_gates:22 in
      let eng = Sim.Engine.create c ~words:1 in
      Sim.Engine.exhaustive eng;
      List.for_all
        (fun g ->
          let can_be_one = Sim.Engine.count_ones eng g > 0 in
          match Bddcheck.justify_one c g with
          | Bddcheck.Justified _ -> can_be_one
          | Bddcheck.Impossible -> not can_be_one
          | Bddcheck.Gave_up _ -> false)
        (Circuit.live_gates c))

let test_bdd_engine_in_check () =
  (* the `Bdd engine agrees with the exhaustive path on a benchmark *)
  match Circuits.Suite.find "rd84" with
  | None -> Alcotest.fail "rd84"
  | Some spec ->
    let circ = Circuits.Suite.mapped spec in
    let eng = Sim.Engine.create circ ~words:8 in
    Sim.Engine.randomize eng (Sim.Rng.create 2L);
    let est = Power.Estimator.create eng in
    let cands =
      Powder.Candidates.generate est |> List.filteri (fun i _ -> i < 20)
    in
    List.iter
      (fun (s, _) ->
        if not (Powder.Subst.creates_cycle circ s) then begin
          let reference = Powder.Check.permissible ~exhaustive_limit:16 circ s in
          let bdd = Powder.Check.permissible ~exhaustive_limit:0 ~engine:`Bdd circ s in
          let tag = function
            | Powder.Check.Permissible -> `P
            | Powder.Check.Not_permissible _ -> `N
            | Powder.Check.Gave_up _ -> `G
          in
          if tag bdd <> `G then
            Alcotest.(check bool) "verdicts agree" true (tag reference = tag bdd)
        end)
      cands

let test_bdd_size_blowup_multiplier () =
  (* product-output BDDs of multipliers blow up: the budget must trip on
     a modest multiplier where simulation/SAT sail through *)
  let g = Circuits.Generators.multiplier ~width:7 in
  let circ =
    Mapper.Techmap.map ~objective:Mapper.Techmap.Area Gatelib.Library.lib2 g
  in
  let mid_po =
    (* a middle product bit has the widest cone *)
    match Circuit.find_by_name circ "p_7" with
    | Some po -> Circuit.po_driver circ po
    | None -> Alcotest.fail "p_7 missing"
  in
  match Atpg.Bddcheck.bdd_size_of_cone ~node_limit:2_000 circ mid_po with
  | None -> () (* blew the tiny budget, as expected *)
  | Some n ->
    (* even if it fits, it must be disproportionately large *)
    Alcotest.(check bool) (Printf.sprintf "size %d" n) true (n > 500)

let suite =
  [
    ( "bdd",
      [
        Alcotest.test_case "constants and vars" `Quick test_constants_and_vars;
        Alcotest.test_case "hash consing" `Quick test_hash_consing;
        Alcotest.test_case "tautology" `Quick test_tautology_detection;
        Alcotest.test_case "sat fraction" `Quick test_sat_fraction;
        Alcotest.test_case "node limit" `Quick test_node_limit;
        QCheck_alcotest.to_alcotest prop_bdd_matches_tt;
        Alcotest.test_case "bddcheck justify" `Quick test_bddcheck_justify;
        QCheck_alcotest.to_alcotest prop_bddcheck_matches_exhaustive;
        Alcotest.test_case "bdd engine in check" `Quick test_bdd_engine_in_check;
        Alcotest.test_case "multiplier blow-up" `Quick test_bdd_size_blowup_multiplier;
      ] );
  ]

let prop_bdd_probability_exact =
  (* BDD signal probability must equal the exhaustive-simulation count *)
  QCheck.Test.make ~name:"bdd probability = exhaustive" ~count:15
    QCheck.(int_bound 9999)
    (fun seed ->
      let c = Build.random_circuit ~seed ~n_pis:6 ~n_gates:20 in
      let eng = Sim.Engine.create c ~words:1 in
      Sim.Engine.exhaustive eng;
      List.for_all
        (fun g ->
          match Bddcheck.signal_probability c g with
          | None -> false
          | Some p -> Float.abs (p -. Sim.Engine.prob_one eng g) < 1e-12)
        (Circuit.live_gates c))

let suite =
  match suite with
  | [ (name, tests) ] ->
    [ (name, tests @ [ QCheck_alcotest.to_alcotest prop_bdd_probability_exact ]) ]
  | other -> other
