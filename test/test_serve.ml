(* The batch optimization service: strict protocol parsing against the
   hostile corpus, deterministic retry backoff, priority scheduling,
   failure classification, and the end-to-end supervisor contracts —
   drain, preemption, chaos-under-fault byte-identical outputs, and
   kill/restart recovery. *)

module Protocol = Serve.Protocol
module Supervisor = Serve.Supervisor

(* ------------------------------------------------------------------ *)
(* Helpers.                                                            *)
(* ------------------------------------------------------------------ *)

let temp_dir () =
  let f = Filename.temp_file "serve_test" "" in
  Sys.remove f;
  Unix.mkdir f 0o755;
  f

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Unix.rmdir path
  end
  else Sys.remove path

let read_file path =
  match Serve.Persist.read_file path with
  | Ok s -> s
  | Error e -> Alcotest.fail e

let list_source lines =
  let q = Queue.create () in
  List.iter (fun l -> Queue.push l q) lines;
  fun () ->
    if Queue.is_empty q then Supervisor.Eof else Supervisor.Line (Queue.pop q)

let staged_source pulls =
  let r = ref pulls in
  fun () ->
    match !r with
    | [] -> Supervisor.Eof
    | p :: tl ->
      r := tl;
      p

let event_name = function
  | Obs.Json.Obj fields -> (
    match List.assoc_opt "ev" fields with
    | Some (Obs.Json.String n) -> n
    | _ -> "?")
  | _ -> "?"

let run_supervisor ?(slice_rounds = 1) ?(jobs = 1) ?chaos ?should_stop ~dir
    source =
  let config =
    {
      (Supervisor.default_config ~state_dir:dir) with
      slice_rounds;
      jobs;
      chaos;
      retry = { Serve.Retry.default with Serve.Retry.base = 0.002; cap = 0.01 };
    }
  in
  let events = ref [] in
  let emit j = events := j :: !events in
  let outcome = Supervisor.run config ~source ~emit ?should_stop () in
  (outcome, List.rev !events)

let submit ?(priority = 0) ?(max_rounds = 2) ?(circuit = "rd84") id =
  Printf.sprintf
    "{\"op\":\"submit\",\"id\":%S,\"circuit\":%S,\"priority\":%d,\"options\":{\"words\":4,\"max_rounds\":%d}}"
    id circuit priority max_rounds

(* ------------------------------------------------------------------ *)
(* Protocol parsing.                                                   *)
(* ------------------------------------------------------------------ *)

let test_corpus_all_rejected () =
  Array.iter
    (fun (label, line) ->
      match Protocol.parse line with
      | Ok _ -> Alcotest.fail (label ^ ": hostile line parsed as a request")
      | Error e ->
        Alcotest.(check bool)
          (label ^ ": error has a name") true
          (String.length (Protocol.error_name e) > 0))
    (Fuzz.Proto.corpus ());
  match Protocol.parse (Fuzz.Proto.valid_submit ()) with
  | Ok (Protocol.Submit j) ->
    Alcotest.(check string) "valid submit id" "job-ok" j.Protocol.id
  | _ -> Alcotest.fail "valid submit line rejected"

let test_typed_errors () =
  let expect line name =
    match Protocol.parse line with
    | Error e -> Alcotest.(check string) line name (Protocol.error_name e)
    | Ok _ -> Alcotest.fail (line ^ ": accepted")
  in
  expect "{\"op\":\"nope\"}" "unknown_op";
  expect "{\"op\":\"submit\",\"circuit\":\"rd84\"}" "missing_field";
  expect
    "{\"op\":\"submit\",\"id\":\"x\",\"circuit\":\"rd84\",\"oops\":1}"
    "unknown_field";
  expect
    "{\"op\":\"submit\",\"id\":\"x\",\"circuit\":\"rd84\",\"options\":{\"words\":0}}"
    "absurd_value";
  expect
    "{\"op\":\"submit\",\"id\":\"x\",\"circuit\":\"rd84\",\"priority\":9999}"
    "absurd_value";
  expect "{\"op\":\"submit\",\"id\":\"x\",\"circuit\":\"zz_missing\"}"
    "unknown_circuit";
  expect "{\"op\":\"submit\",\"id\":\"x\"}" "ambiguous_source";
  expect "{\"op\":\"submit\",\"id\":\"has space\",\"circuit\":\"rd84\"}"
    "bad_field";
  expect "{\"op\":\"submit\",\"id\":\"x\",\"blif\":\"garbage\"}" "bad_blif"

let test_job_json_roundtrip () =
  match Protocol.parse (submit ~priority:7 ~max_rounds:5 "rt1") with
  | Ok (Protocol.Submit j) -> (
    match Protocol.job_of_json (Protocol.job_to_json j) with
    | Ok j' -> Alcotest.(check bool) "round-trips exactly" true (j = j')
    | Error e -> Alcotest.fail (Protocol.error_detail e))
  | _ -> Alcotest.fail "submit line rejected"

(* ------------------------------------------------------------------ *)
(* Retry backoff.                                                      *)
(* ------------------------------------------------------------------ *)

let test_retry_deterministic_and_capped () =
  let policy =
    { Serve.Retry.base = 0.05; cap = 0.4; max_attempts = 6; jitter = 0.5 }
  in
  let delays r =
    let rec go acc =
      match Serve.Retry.next_delay r with
      | Some d -> go (d :: acc)
      | None -> List.rev acc
    in
    go []
  in
  let a = delays (Serve.Retry.create policy ~seed:9L ~job_id:"j") in
  let b = delays (Serve.Retry.create policy ~seed:9L ~job_id:"j") in
  let c = delays (Serve.Retry.create policy ~seed:9L ~job_id:"other") in
  Alcotest.(check int) "max_attempts - 1 retries" 5 (List.length a);
  Alcotest.(check bool) "same seed+id => same schedule" true (a = b);
  Alcotest.(check bool) "different id => different jitter" true (a <> c);
  List.iteri
    (fun i d ->
      let nominal = Float.min policy.Serve.Retry.cap (0.05 *. (2.0 ** float_of_int i)) in
      Alcotest.(check bool)
        (Printf.sprintf "delay %d in jitter band" i)
        true
        (d >= nominal *. 0.74 && d <= nominal *. 1.26))
    a

(* ------------------------------------------------------------------ *)
(* Queue ordering and persistence.                                     *)
(* ------------------------------------------------------------------ *)

let job_of_line line =
  match Protocol.parse line with
  | Ok (Protocol.Submit j) -> j
  | _ -> Alcotest.fail ("bad job line: " ^ line)

let test_jobq_order () =
  let q = Serve.Jobq.create () in
  let e1 = Serve.Jobq.submit q (job_of_line (submit ~priority:1 "low1")) in
  let _ = Serve.Jobq.submit q (job_of_line (submit ~priority:1 "low2")) in
  let _ = Serve.Jobq.submit q (job_of_line (submit ~priority:5 "high")) in
  let pop () =
    match Serve.Jobq.pop_runnable q ~now:100.0 with
    | Some e -> e.Serve.Jobq.job.Protocol.id
    | None -> "-"
  in
  Alcotest.(check string) "priority first" "high" (pop ());
  Alcotest.(check string) "FIFO within priority" "low1" (pop ());
  (* backoff: requeued with a future not_before is invisible now *)
  e1.Serve.Jobq.not_before <- 200.0;
  Serve.Jobq.requeue q e1;
  Alcotest.(check string) "backing-off entry skipped" "low2" (pop ());
  Alcotest.(check (option string)) "nothing runnable" None
    (Option.map
       (fun (e : Serve.Jobq.entry) -> e.Serve.Jobq.job.Protocol.id)
       (Serve.Jobq.pop_runnable q ~now:100.0));
  Alcotest.(check (option (float 1e-9))) "wakeup at not_before" (Some 200.0)
    (Serve.Jobq.next_wakeup q ~now:100.0);
  Alcotest.(check string) "runnable after backoff" "low1"
    (match Serve.Jobq.pop_runnable q ~now:200.5 with
    | Some e -> e.Serve.Jobq.job.Protocol.id
    | None -> "-")

let test_jobq_persistence () =
  let q = Serve.Jobq.create () in
  let e = Serve.Jobq.submit q (job_of_line (submit ~priority:3 "p1")) in
  e.Serve.Jobq.retries <- 2;
  e.Serve.Jobq.consumed <- 1.5;
  e.Serve.Jobq.resumable <- true;
  ignore (Serve.Jobq.submit q (job_of_line (submit "p2")));
  (* p1 has the higher priority, so it is popped ("running") *)
  (match Serve.Jobq.pop_runnable q ~now:0.0 with
  | Some e' when e' == e -> ()
  | _ -> Alcotest.fail "popped the wrong entry");
  (* persist the running entry alongside the queued one via ~extra *)
  let j = Serve.Jobq.to_json ~extra:[ e ] q in
  match Serve.Jobq.of_json j with
  | Error err -> Alcotest.fail (Protocol.error_detail err)
  | Ok q' ->
    Alcotest.(check int) "both entries survive" 2 (Serve.Jobq.length q');
    let es = Serve.Jobq.to_list q' in
    let find id =
      List.find
        (fun (x : Serve.Jobq.entry) -> x.Serve.Jobq.job.Protocol.id = id)
        es
    in
    let e' = find "p1" in
    Alcotest.(check int) "retries preserved" 2 e'.Serve.Jobq.retries;
    Alcotest.(check (float 1e-9)) "consumed preserved" 1.5
      e'.Serve.Jobq.consumed;
    Alcotest.(check bool) "resumable preserved" true e'.Serve.Jobq.resumable

(* ------------------------------------------------------------------ *)
(* Failure taxonomy.                                                   *)
(* ------------------------------------------------------------------ *)

let test_classification () =
  let check name expected e =
    Alcotest.(check string)
      name
      (Serve.Failure.klass_name expected)
      (Serve.Failure.klass_name (Serve.Failure.classify_exn e))
  in
  check "crash is transient" Serve.Failure.Transient
    (Serve.Failure.Crashed "boom");
  check "sys_error is transient" Serve.Failure.Transient
    (Sys_error "io hiccup");
  check "oom is fatal" Serve.Failure.Fatal Out_of_memory;
  check "stack overflow is fatal" Serve.Failure.Fatal Stack_overflow;
  check "tagged failure is fatal" Serve.Failure.Fatal
    (Failure "fatal: invariant");
  check "unknown is transient" Serve.Failure.Transient Not_found

(* ------------------------------------------------------------------ *)
(* Fleet status.                                                       *)
(* ------------------------------------------------------------------ *)

let test_fleet_quantiles () =
  let f = Obs.Fleet.create () in
  for i = 1 to 100 do
    Obs.Fleet.observe_latency f (float_of_int i)
  done;
  Alcotest.(check (float 1e-9)) "p50 exact" 50.0
    (Obs.Fleet.latency_quantile f 0.5);
  Alcotest.(check (float 1e-9)) "p99 exact" 99.0
    (Obs.Fleet.latency_quantile f 0.99);
  Alcotest.(check (float 1e-9)) "max" 100.0 (Obs.Fleet.latency_quantile f 1.0);
  Obs.Fleet.transition f ~id:"a" Obs.Fleet.Queued;
  Obs.Fleet.transition f ~id:"b" Obs.Fleet.Running;
  Obs.Fleet.transition f ~id:"a" Obs.Fleet.Retrying;
  Alcotest.(check int) "queue depth counts retrying" 1 (Obs.Fleet.queue_depth f);
  Alcotest.(check int) "total ids" 2 (Obs.Fleet.jobs_total f)

(* ------------------------------------------------------------------ *)
(* Supervisor end-to-end.                                              *)
(* ------------------------------------------------------------------ *)

let test_e2e_drain () =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let outcome, events =
    run_supervisor ~dir
      (list_source
         [
           submit ~priority:1 ~max_rounds:2 "e1";
           submit ~priority:2 ~max_rounds:2 ~circuit:"alu2" "e2";
           submit ~priority:0 ~max_rounds:2 ~circuit:"f51m" "e3";
         ])
  in
  Alcotest.(check int) "all complete" 3 outcome.Supervisor.completed;
  Alcotest.(check int) "none failed" 0 outcome.Supervisor.failed;
  Alcotest.(check bool) "clean exit" true outcome.Supervisor.clean_exit;
  Alcotest.(check string) "header first" "run_start"
    (event_name (List.hd events));
  let dones =
    List.filter (fun e -> event_name e = "job_done") events
  in
  Alcotest.(check int) "three job_done events" 3 (List.length dones);
  List.iter
    (fun id ->
      Alcotest.(check bool)
        (id ^ " report written") true
        (Sys.file_exists (Filename.concat dir ("results/" ^ id ^ ".json")));
      Alcotest.(check bool)
        (id ^ " blif written") true
        (Sys.file_exists (Filename.concat dir ("results/" ^ id ^ ".blif"))))
    [ "e1"; "e2"; "e3" ]

let test_server_survives_corpus () =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let corpus = Fuzz.Proto.corpus () in
  let dup_a, dup_b = Fuzz.Proto.duplicate_pair ~id:"dup" ~circuit:"rd84" in
  let lines =
    Array.to_list (Array.map snd corpus)
    @ [ submit ~max_rounds:1 "ok1"; dup_a; dup_b; submit ~max_rounds:1 ~circuit:"alu2" "ok2" ]
  in
  let outcome, events = run_supervisor ~dir (list_source lines) in
  (* dup_a is well-formed and runs; dup_b is the duplicate reject *)
  Alcotest.(check int) "well-formed jobs complete" 3
    outcome.Supervisor.completed;
  Alcotest.(check int)
    "every hostile line rejected"
    (Array.length corpus + 1)
    outcome.Supervisor.rejected;
  Alcotest.(check int) "no job failures" 0 outcome.Supervisor.failed;
  let dup_rejects =
    List.filter
      (fun e ->
        match e with
        | Obs.Json.Obj fs ->
          List.assoc_opt "error" fs = Some (Obs.Json.String "duplicate_id")
        | _ -> false)
      events
  in
  Alcotest.(check int) "duplicate drew duplicate_id" 1 (List.length dup_rejects)

let test_preemption () =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let outcome, events =
    run_supervisor ~dir
      (staged_source
         [
           Supervisor.Line (submit ~priority:0 ~max_rounds:6 "slow");
           Supervisor.Waiting (* one slice of [slow] runs *);
           Supervisor.Line (submit ~priority:9 ~max_rounds:1 ~circuit:"alu2" "urgent");
         ])
  in
  Alcotest.(check int) "both complete" 2 outcome.Supervisor.completed;
  let names = List.map event_name events in
  Alcotest.(check bool) "a preemption happened" true
    (List.mem "preempted" names);
  (* the urgent job must finish before the slow one *)
  let rec done_order acc = function
    | [] -> List.rev acc
    | e :: tl ->
      if event_name e = "job_done" then
        match e with
        | Obs.Json.Obj fs -> (
          match List.assoc_opt "id" fs with
          | Some (Obs.Json.String id) -> done_order (id :: acc) tl
          | _ -> done_order acc tl)
        | _ -> done_order acc tl
      else done_order acc tl
  in
  Alcotest.(check (list string))
    "urgent overtakes slow" [ "urgent"; "slow" ] (done_order [] events)

(* Chaos: under every fault class, well-formed jobs complete and the
   result files are byte-identical to an undisturbed run. *)
let chaos_case fault () =
  let jobs () =
    [
      submit ~priority:1 ~max_rounds:3 "c1";
      submit ~priority:2 ~max_rounds:2 ~circuit:"alu2" "c2";
    ]
  in
  let run ?chaos () =
    let dir = temp_dir () in
    let outcome, events = run_supervisor ~dir ?chaos (list_source (jobs ())) in
    let results =
      List.map
        (fun id ->
          ( id,
            read_file (Filename.concat dir ("results/" ^ id ^ ".blif")),
            read_file (Filename.concat dir ("results/" ^ id ^ ".json")) ))
        [ "c1"; "c2" ]
    in
    rm_rf dir;
    (outcome, events, results)
  in
  let _, _, clean = run () in
  let malformed = Array.map snd (Fuzz.Proto.corpus ()) in
  let chaos = Serve.Chaos.create ~malformed fault in
  let outcome, events, faulty = run ~chaos () in
  Alcotest.(check int) "all well-formed jobs complete" 2
    outcome.Supervisor.completed;
  Alcotest.(check int) "no failures" 0 outcome.Supervisor.failed;
  List.iter2
    (fun (id, blif, _) (id', blif', _) ->
      Alcotest.(check string) "same job" id id';
      Alcotest.(check bool) (id ^ " blif byte-identical") true (blif = blif'))
    clean faulty;
  (* reports match after stripping wall-clock noise *)
  List.iter2
    (fun (id, _, rep) (_, _, rep') ->
      let strip s =
        match Obs.Json.of_string s with
        | Ok (Obs.Json.Obj fs) ->
          Obs.Json.Obj
            (List.filter_map
               (fun (k, v) ->
                 if k = "cpu_seconds" || k = "phase_seconds" || k = "jobs"
                 then None
                 else if k = "run" then Some (k, Obs.Runinfo.strip_volatile v)
                 else Some (k, v))
               fs)
        | _ -> Alcotest.fail (id ^ ": report is not a JSON object")
      in
      Alcotest.(check bool)
        (id ^ " report identical modulo timing") true
        (strip rep = strip rep'))
    clean faulty;
  let names = List.map event_name events in
  match fault with
  | Serve.Chaos.Worker_crash ->
    Alcotest.(check bool) "crash produced a retry" true
      (List.mem "retry" names)
  | Serve.Chaos.Deadline_storm ->
    Alcotest.(check bool) "storm produced a retry" true
      (List.mem "retry" names)
  | Serve.Chaos.Checkpoint_corrupt ->
    Alcotest.(check bool) "corruption was detected" true
      (List.mem "checkpoint_corrupt" names)
  | Serve.Chaos.Malformed_job ->
    Alcotest.(check bool) "hostile lines were rejected" true
      (outcome.Supervisor.rejected >= Array.length malformed)

let test_restart_recovery () =
  let ref_dir = temp_dir () and kill_dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf ref_dir; rm_rf kill_dir)
  @@ fun () ->
  let jobs =
    [
      submit ~max_rounds:4 "r1";
      submit ~max_rounds:4 ~circuit:"alu2" "r2";
      submit ~max_rounds:4 ~circuit:"f51m" "r3";
    ]
  in
  let reference, _ = run_supervisor ~dir:ref_dir (list_source jobs) in
  Alcotest.(check int) "reference completes" 3 reference.Supervisor.completed;
  (* first run: stop as soon as one job is done (mid-queue kill) *)
  let stop = ref false in
  let config =
    {
      (Supervisor.default_config ~state_dir:kill_dir) with
      slice_rounds = 1;
    }
  in
  let emit j = if event_name j = "job_done" then stop := true in
  let first =
    Supervisor.run config ~source:(list_source jobs) ~emit
      ~should_stop:(fun () -> !stop)
      ()
  in
  Alcotest.(check bool) "stopped early" false first.Supervisor.clean_exit;
  Alcotest.(check bool) "work remained" true (first.Supervisor.completed < 3);
  (* restart: no new input, recover the queue, finish everything *)
  let second, _ =
    run_supervisor ~dir:kill_dir (fun () -> Supervisor.Eof)
  in
  Alcotest.(check bool) "recovered pending jobs" true
    (second.Supervisor.recovered > 0);
  Alcotest.(check int) "everything completes across the restart" 3
    (first.Supervisor.completed + second.Supervisor.completed);
  List.iter
    (fun id ->
      let p d = Filename.concat d ("results/" ^ id ^ ".blif") in
      Alcotest.(check bool)
        (id ^ " byte-identical across kill/restart")
        true
        (read_file (p ref_dir) = read_file (p kill_dir)))
    [ "r1"; "r2"; "r3" ]

let suite =
  [
    ( "serve",
      [
        Alcotest.test_case "hostile corpus all rejected" `Quick
          test_corpus_all_rejected;
        Alcotest.test_case "typed protocol errors" `Quick test_typed_errors;
        Alcotest.test_case "job json round-trip" `Quick
          test_job_json_roundtrip;
        Alcotest.test_case "retry deterministic and capped" `Quick
          test_retry_deterministic_and_capped;
        Alcotest.test_case "queue priority order" `Quick test_jobq_order;
        Alcotest.test_case "queue persistence" `Quick test_jobq_persistence;
        Alcotest.test_case "failure classification" `Quick test_classification;
        Alcotest.test_case "fleet quantiles" `Quick test_fleet_quantiles;
        Alcotest.test_case "end-to-end drain" `Quick test_e2e_drain;
        Alcotest.test_case "server survives hostile corpus" `Quick
          test_server_survives_corpus;
        Alcotest.test_case "preemption" `Quick test_preemption;
        Alcotest.test_case "chaos: worker-crash" `Quick
          (chaos_case Serve.Chaos.Worker_crash);
        Alcotest.test_case "chaos: malformed-job" `Quick
          (chaos_case Serve.Chaos.Malformed_job);
        Alcotest.test_case "chaos: deadline-storm" `Quick
          (chaos_case Serve.Chaos.Deadline_storm);
        Alcotest.test_case "chaos: checkpoint-corrupt" `Quick
          (chaos_case Serve.Chaos.Checkpoint_corrupt);
        Alcotest.test_case "kill and restart recovery" `Quick
          test_restart_recovery;
      ] );
  ]
