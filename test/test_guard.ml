(* Guard layer: transactional applies, fault injection, deadlines,
   degradation and checkpoint/resume. *)

module Circuit = Netlist.Circuit
module Engine = Sim.Engine
module Subst = Powder.Subst
module Check = Powder.Check
module Guard = Powder.Guard
module Checkpoint = Powder.Checkpoint
module Optimizer = Powder.Optimizer
module Equiv = Atpg.Equiv

let check_valid what c =
  match Circuit.validate c with
  | Ok () -> ()
  | Error e -> Alcotest.fail (what ^ ": validate failed: " ^ e)

let check_equiv what a b =
  Alcotest.(check bool) what true (Equiv.check a b = Equiv.Equivalent)

let fig2_is2 c =
  match (Circuit.find_by_name c "d", Circuit.find_by_name c "e") with
  | Some d, Some e ->
    { Subst.target = Subst.Branch { sink = d; pin = 0 }; source = Subst.Signal e }
  | _ -> Alcotest.fail "fig2 nodes missing"

let mapped name =
  match Circuits.Suite.find name with
  | Some spec -> Circuits.Suite.mapped spec
  | None -> Alcotest.fail (name ^ " missing from suite")

(* ------------------------------------------------------------------ *)
(* Journal.                                                            *)
(* ------------------------------------------------------------------ *)

let test_journal_rollback () =
  let c, _, _, _, _, _, _ = Build.fig2_a () in
  let before = Blif.Blif_io.circuit_to_string c in
  Circuit.journal_begin c;
  Alcotest.(check bool) "journal open" true (Circuit.journal_active c);
  (* a branch reconnection, a stem replacement through a fresh inverter
     (alloc + replace_stem), and a gate retype — every op kind *)
  ignore (Subst.apply c (fig2_is2 c));
  let f = Option.get (Circuit.find_by_name c "f") in
  let e = Option.get (Circuit.find_by_name c "e") in
  ignore (Subst.apply c { Subst.target = Subst.Stem f; source = Subst.Inverted e });
  Circuit.set_cell c e (Gatelib.Library.find Build.lib "or2");
  Circuit.journal_rollback c;
  Alcotest.(check bool) "journal closed" false (Circuit.journal_active c);
  check_valid "after rollback" c;
  Alcotest.(check string) "structure restored" before
    (Blif.Blif_io.circuit_to_string c)

let test_journal_commit () =
  let c, _, _, _, _, _, _ = Build.fig2_a () in
  let original = Circuit.clone c in
  Circuit.journal_begin c;
  ignore (Subst.apply c (fig2_is2 c));
  Circuit.journal_commit c;
  Alcotest.(check bool) "journal closed" false (Circuit.journal_active c);
  check_valid "after commit" c;
  check_equiv "IS2 kept and equivalent" original c

(* ------------------------------------------------------------------ *)
(* Transactional apply.                                                *)
(* ------------------------------------------------------------------ *)

let make_verifier c =
  Guard.make_verifier ~seed:42L ~input_probs:(fun _ -> 0.5) c

let test_transactional_apply_commits () =
  let c, _, _, _, _, _, _ = Build.fig2_a () in
  let original = Circuit.clone c in
  let v = make_verifier c in
  (match Guard.transactional_apply v c (fig2_is2 c) with
  | Guard.Applied _ -> ()
  | Guard.Rolled_back e ->
    Alcotest.fail ("unexpected rollback: " ^ Guard.error_name e));
  check_valid "after apply" c;
  check_equiv "permissible apply equivalent" original c;
  Alcotest.(check bool) "journal closed" false (Circuit.journal_active c)

let test_corrupt_apply_rolls_back () =
  let c, _, _, _, _, _, _ = Build.fig2_a () in
  let before = Blif.Blif_io.circuit_to_string c in
  let v = make_verifier c in
  Guard.inject Guard.Corrupt_apply;
  (match Guard.transactional_apply v c (fig2_is2 c) with
  | Guard.Rolled_back Guard.Apply_mismatch -> ()
  | Guard.Rolled_back e -> Alcotest.fail ("wrong error: " ^ Guard.error_name e)
  | Guard.Applied _ -> Alcotest.fail "corrupted apply was committed");
  Guard.clear_injection ();
  check_valid "after rollback" c;
  Alcotest.(check string) "pre-apply structure restored" before
    (Blif.Blif_io.circuit_to_string c);
  (* the verifier resynchronized: the same (uncorrupted) apply passes *)
  match Guard.transactional_apply v c (fig2_is2 c) with
  | Guard.Applied _ -> ()
  | Guard.Rolled_back e ->
    Alcotest.fail ("verifier out of sync: " ^ Guard.error_name e)

(* ------------------------------------------------------------------ *)
(* Fault injection through the whole optimizer.                        *)
(* ------------------------------------------------------------------ *)

let small_config =
  { Optimizer.default_config with words = 4; max_rounds = 3 }

let test_optimizer_survives_corrupt_apply () =
  let c = mapped "rd84" in
  let original = Circuit.clone c in
  Guard.inject Guard.Corrupt_apply;
  let report = Optimizer.optimize ~config:small_config c in
  Guard.clear_injection ();
  Alcotest.(check int) "one rollback" 1 report.Optimizer.rolled_back;
  check_valid "after run" c;
  check_equiv "final netlist equivalent" original c

let test_optimizer_catches_forged_verdict () =
  (* words = 1 leaves enough signature aliasing that at least one
     candidate is refuted by the exact check; the injection flips that
     refutation to Permissible and the guard must catch the bad apply. *)
  let c = mapped "rd84" in
  let original = Circuit.clone c in
  let config = { Optimizer.default_config with words = 1; max_rounds = 4 } in
  Guard.inject Guard.Forge_verdict;
  let report = Optimizer.optimize ~config c in
  Guard.clear_injection ();
  Alcotest.(check bool) "forged apply rolled back" true
    (report.Optimizer.rolled_back >= 1);
  check_valid "after run" c;
  check_equiv "final netlist equivalent" original c

let test_optimizer_survives_expired_deadline () =
  let c = mapped "rd84" in
  let original = Circuit.clone c in
  Guard.inject Guard.Expire_deadline;
  let report = Optimizer.optimize ~config:small_config c in
  Guard.clear_injection ();
  Alcotest.(check bool) "timeout counted" true
    (report.Optimizer.rejected_by_timeout >= 1);
  check_valid "after run" c;
  check_equiv "final netlist equivalent" original c

(* ------------------------------------------------------------------ *)
(* Deadlines and budgets.                                              *)
(* ------------------------------------------------------------------ *)

let test_check_deadline_rejects_cleanly () =
  let c, _, _, _, _, _, _ = Build.fig2_a () in
  let expired = Obs.Deadline.after ~seconds:(-1.0) in
  match Check.permissible ~deadline:expired c (fig2_is2 c) with
  | Check.Gave_up { engine = "check"; limit = "deadline" } -> ()
  | Check.Gave_up { engine; limit } ->
    Alcotest.fail (Printf.sprintf "wrong give-up: %s/%s" engine limit)
  | Check.Permissible | Check.Not_permissible _ ->
    Alcotest.fail "expired deadline produced a verdict"

let test_zero_check_budget_degrades () =
  let c = mapped "rd84" in
  let original = Circuit.clone c in
  let config =
    { Optimizer.default_config with
      words = 4;
      max_rounds = 50;
      check_seconds = Some 0.0;
    }
  in
  let report = Optimizer.optimize ~config c in
  Alcotest.(check string) "stopped by ladder" "degradation"
    report.Optimizer.stopped_by;
  Alcotest.(check int) "ladder exhausted" 3 report.Optimizer.degradation_level;
  Alcotest.(check int) "nothing applied" 0 report.Optimizer.substitutions;
  Alcotest.(check bool) "timeouts counted" true
    (report.Optimizer.rejected_by_timeout >= 3);
  check_valid "after run" c;
  check_equiv "netlist untouched" original c

let test_zero_run_budget_stops () =
  let c = mapped "alu2" in
  let original = Circuit.clone c in
  let config =
    { Optimizer.default_config with words = 4; run_seconds = Some 0.0 }
  in
  let report = Optimizer.optimize ~config c in
  Alcotest.(check string) "stopped by run budget" "run_budget"
    report.Optimizer.stopped_by;
  Alcotest.(check int) "nothing applied" 0 report.Optimizer.substitutions;
  check_valid "after run" c;
  check_equiv "netlist untouched" original c

let test_tiny_proof_budget_gives_up () =
  (* conflict/backtrack budgets so small that exact checks cannot
     conclude: the optimizer must degrade gracefully — give-ups counted
     per engine/limit, netlist valid and equivalent, run terminates. *)
  let c = mapped "rd84" in
  let original = Circuit.clone c in
  let config =
    { Optimizer.default_config with
      words = 1;
      max_rounds = 3;
      backtrack_limit = 1;
      exhaustive_limit = 0;
    }
  in
  let report = Optimizer.optimize ~config c in
  Alcotest.(check bool) "give-ups counted" true
    (report.Optimizer.rejected_by_giveup >= 1);
  List.iter
    (fun (key, n) ->
      Alcotest.(check bool) ("breakdown key " ^ key) true
        (String.contains key '/' && n > 0))
    report.Optimizer.giveup_breakdown;
  let breakdown_total =
    List.fold_left (fun acc (_, n) -> acc + n) 0 report.Optimizer.giveup_breakdown
  in
  Alcotest.(check int) "breakdown covers giveups and timeouts"
    (report.Optimizer.rejected_by_giveup + report.Optimizer.rejected_by_timeout)
    breakdown_total;
  check_valid "after run" c;
  check_equiv "final netlist equivalent" original c

(* ------------------------------------------------------------------ *)
(* Checkpoint / resume.                                                *)
(* ------------------------------------------------------------------ *)

let test_checkpoint_roundtrip () =
  let ck =
    {
      Checkpoint.round = 4;
      status = "running";
      substitutions = 7;
      seed = 0xC0FFEEL;
      blif = ".model mapped\n.inputs a\n.outputs f\n.end\n";
      cex = [ [ ("a", true) ]; [ ("a", false) ] ];
      cex_cursor = 2;
      candidates_generated = 93;
      checks_run = 14;
      rejected_by_delay = 1;
      rejected_by_atpg = 2;
      rejected_by_giveup = 3;
      rejected_by_timeout = 4;
      rejected_by_cex = 5;
      sig_hits = 120;
      sig_filtered = 4500;
      sig_resim_nodes = 321;
      is3_candidates = 2;
      rolled_back = 1;
      verified_applies = 6;
      window_checks = 9;
      window_proved = 5;
      window_escalated = 4;
      giveup_breakdown =
        [ ("sat/conflicts", 2); ("check/deadline", 4); ("window/overflow", 4) ];
      by_class = [ ("OS2", (1, 1.5, 32.0)); ("IS2", (6, 0.25, -3.0)) ];
      initial_power = 61.15178050994873;
      initial_area = 91408.0;
      initial_delay = 13.325999999999999;
      initial_glitch_power = None;
      degradation_level = 1;
    }
  in
  let file = Filename.temp_file "powder_ck" ".json" in
  Checkpoint.save file ck;
  (match Checkpoint.load file with
  | Ok ck' -> Alcotest.(check bool) "round-trips exactly" true (ck = ck')
  | Error e -> Alcotest.fail (Checkpoint.error_to_string e));
  Sys.remove file

let test_checkpoint_load_rejects_garbage () =
  let file = Filename.temp_file "powder_ck" ".json" in
  let oc = open_out file in
  output_string oc "{\"magic\": \"something-else\", \"version\": 1}\n";
  close_out oc;
  (match Checkpoint.load file with
  | Ok _ -> Alcotest.fail "bad magic accepted"
  | Error _ -> ());
  Sys.remove file

(* One sample checkpoint reused by every typed-error case below. *)
let sample_ck () =
  {
    Checkpoint.round = 1;
    status = "running";
    substitutions = 0;
    seed = 1L;
    blif = ".model m\n.inputs a\n.outputs f\n.end\n";
    cex = [];
    cex_cursor = 0;
    candidates_generated = 0;
    checks_run = 0;
    rejected_by_delay = 0;
    rejected_by_atpg = 0;
    rejected_by_giveup = 0;
    rejected_by_timeout = 0;
    rejected_by_cex = 0;
    sig_hits = 0;
    sig_filtered = 0;
    sig_resim_nodes = 0;
    is3_candidates = 0;
    rolled_back = 0;
    verified_applies = 0;
    window_checks = 0;
    window_proved = 0;
    window_escalated = 0;
    giveup_breakdown = [];
    by_class = [];
    initial_power = 1.0;
    initial_area = 1.0;
    initial_delay = 1.0;
    initial_glitch_power = None;
    degradation_level = 0;
  }

let expect_error name file check =
  match Checkpoint.load file with
  | Ok _ -> Alcotest.fail (name ^ ": damaged checkpoint accepted")
  | Error e ->
    if not (check e) then
      Alcotest.fail (name ^ ": wrong class: " ^ Checkpoint.error_to_string e)

let test_checkpoint_typed_errors () =
  let file = Filename.temp_file "powder_ck" ".json" in
  (* truncation: save a valid checkpoint, cut it in half *)
  Checkpoint.save file (sample_ck ());
  let size = (Unix.stat file).Unix.st_size in
  Unix.truncate file (size / 2);
  expect_error "truncated" file (function
    | Checkpoint.Corrupt _ -> true
    | _ -> false);
  (* empty file *)
  Unix.truncate file 0;
  expect_error "empty" file (function
    | Checkpoint.Corrupt _ -> true
    | _ -> false);
  (* single corrupted byte in the JSON skeleton *)
  Checkpoint.save file (sample_ck ());
  let fd = Unix.openfile file [ Unix.O_WRONLY ] 0 in
  ignore (Unix.write_substring fd "\x01" 0 1);
  Unix.close fd;
  expect_error "corrupt byte" file (function
    | Checkpoint.Corrupt _ -> true
    | _ -> false);
  (* schema version from the future *)
  let oc = open_out file in
  output_string oc
    (Printf.sprintf
       "{\"magic\":\"powder-checkpoint\",\"version\":%d}"
       (Checkpoint.version + 1));
  close_out oc;
  expect_error "future version" file (function
    | Checkpoint.Bad_version { found; expected } ->
      found = Checkpoint.version + 1 && expected = Checkpoint.version
    | _ -> false);
  Sys.remove file;
  (* missing file: an I/O error, not a crash *)
  expect_error "missing" file (function
    | Checkpoint.Io _ -> true
    | _ -> false)

let test_checkpoint_save_atomic () =
  let file = Filename.temp_file "powder_ck" ".json" in
  Checkpoint.save file (sample_ck ());
  (* overwrite with a different checkpoint; no .tmp must survive *)
  Checkpoint.save file { (sample_ck ()) with Checkpoint.round = 9 };
  Alcotest.(check bool) "no tmp litter" false (Sys.file_exists (file ^ ".tmp"));
  (match Checkpoint.load file with
  | Ok ck -> Alcotest.(check int) "newest version visible" 9 ck.Checkpoint.round
  | Error e -> Alcotest.fail (Checkpoint.error_to_string e));
  Sys.remove file

let resume_matches ?(half_jobs = 1) ?(resume_jobs = 1) name =
  let config =
    { Optimizer.default_config with
      words = 4;
      max_rounds = 4;
      checkpoint_every = 2;
    }
  in
  (* reference: one uninterrupted run that checkpoints (no file needed
     — the canonicalization barrier alone defines the trajectory) *)
  let c_ref = mapped name in
  let r_ref = Optimizer.optimize ~config c_ref in
  (* interrupted: stop at round 2 with a checkpoint file, then resume
     — possibly at a different job count than either other run *)
  let file = Filename.temp_file "powder_ck" ".json" in
  let c_half = mapped name in
  let _ =
    Optimizer.optimize
      ~config:
        { config with
          jobs = half_jobs;
          max_rounds = 2;
          checkpoint_file = Some file;
        }
      c_half
  in
  let ck =
    match Checkpoint.load file with
    | Ok ck -> ck
    | Error e -> Alcotest.fail (Checkpoint.error_to_string e)
  in
  Sys.remove file;
  let c_res = mapped name in
  let r_res =
    Optimizer.optimize ~config:{ config with jobs = resume_jobs } ~resume:ck c_res
  in
  Alcotest.(check int) "substitutions" r_ref.Optimizer.substitutions
    r_res.Optimizer.substitutions;
  Alcotest.(check int) "rounds" r_ref.Optimizer.rounds r_res.Optimizer.rounds;
  Alcotest.(check int) "candidates" r_ref.Optimizer.candidates_generated
    r_res.Optimizer.candidates_generated;
  Alcotest.(check int) "checks" r_ref.Optimizer.checks_run
    r_res.Optimizer.checks_run;
  Alcotest.(check string) "stopped_by" r_ref.Optimizer.stopped_by
    r_res.Optimizer.stopped_by;
  Alcotest.(check (float 0.0)) "final power" r_ref.Optimizer.final_power
    r_res.Optimizer.final_power;
  Alcotest.(check (float 0.0)) "final area" r_ref.Optimizer.final_area
    r_res.Optimizer.final_area;
  Alcotest.(check string) "identical netlist"
    (Blif.Blif_io.circuit_to_string c_ref)
    (Blif.Blif_io.circuit_to_string c_res)

let test_resume_rd84 () = resume_matches "rd84"
let test_resume_alu2 () = resume_matches "alu2"
let test_resume_z5xp1 () = resume_matches "Z5xp1"

(* Checkpoints carry no trace of the job count: interrupt a parallel
   run, resume at yet another width, still land on the sequential
   reference trajectory. *)
let test_resume_jobs_agnostic () =
  resume_matches ~half_jobs:8 ~resume_jobs:2 "alu2"

let suite =
  [
    ( "guard",
      [
        Alcotest.test_case "journal rollback" `Quick test_journal_rollback;
        Alcotest.test_case "journal commit" `Quick test_journal_commit;
        Alcotest.test_case "transactional apply" `Quick
          test_transactional_apply_commits;
        Alcotest.test_case "corrupt apply rolled back" `Quick
          test_corrupt_apply_rolls_back;
        Alcotest.test_case "optimizer survives corrupt apply" `Quick
          test_optimizer_survives_corrupt_apply;
        Alcotest.test_case "optimizer catches forged verdict" `Quick
          test_optimizer_catches_forged_verdict;
        Alcotest.test_case "optimizer survives expired deadline" `Quick
          test_optimizer_survives_expired_deadline;
        Alcotest.test_case "check deadline rejects cleanly" `Quick
          test_check_deadline_rejects_cleanly;
        Alcotest.test_case "zero check budget degrades" `Quick
          test_zero_check_budget_degrades;
        Alcotest.test_case "zero run budget stops" `Quick
          test_zero_run_budget_stops;
        Alcotest.test_case "tiny proof budget gives up" `Quick
          test_tiny_proof_budget_gives_up;
        Alcotest.test_case "checkpoint roundtrip" `Quick
          test_checkpoint_roundtrip;
        Alcotest.test_case "checkpoint rejects garbage" `Quick
          test_checkpoint_load_rejects_garbage;
        Alcotest.test_case "checkpoint typed load errors" `Quick
          test_checkpoint_typed_errors;
        Alcotest.test_case "checkpoint save is atomic" `Quick
          test_checkpoint_save_atomic;
        Alcotest.test_case "resume matches rd84" `Quick test_resume_rd84;
        Alcotest.test_case "resume matches alu2" `Quick test_resume_alu2;
        Alcotest.test_case "resume matches Z5xp1" `Quick test_resume_z5xp1;
        Alcotest.test_case "resume is jobs-agnostic" `Quick
          test_resume_jobs_agnostic;
      ] );
  ]
