module Circuit = Netlist.Circuit
module Engine = Sim.Engine
module Estimator = Power.Estimator
module Subst = Powder.Subst
module Candidates = Powder.Candidates
module Optimizer = Powder.Optimizer
module Equiv = Atpg.Equiv

let exhaustive_estimator c =
  let eng = Engine.create c ~words:1 in
  Engine.exhaustive eng;
  Estimator.create eng

let fig2_subst c =
  match (Circuit.find_by_name c "d", Circuit.find_by_name c "e") with
  | Some d, Some e ->
    { Subst.target = Subst.Branch { sink = d; pin = 0 }; source = Subst.Signal e }
  | _ -> Alcotest.fail "fig2 nodes missing"

let test_subst_klass () =
  let _c, _, _, _, d, e, f = Build.fig2_a () in
  let is2 = { Subst.target = Subst.Branch { sink = d; pin = 0 }; source = Subst.Signal e } in
  Alcotest.(check string) "is2" "IS2" (Subst.klass_name (Subst.klass is2));
  let os2 = { Subst.target = Subst.Stem d; source = Subst.Inverted e } in
  Alcotest.(check string) "os2" "OS2" (Subst.klass_name (Subst.klass os2));
  let and2 = Gatelib.Library.find Build.lib "and2" in
  let os3 = { Subst.target = Subst.Stem f; source = Subst.Gate2 (and2, d, e) } in
  Alcotest.(check string) "os3" "OS3" (Subst.klass_name (Subst.klass os3));
  let is3 = { Subst.target = Subst.Branch { sink = f; pin = 0 }; source = Subst.Gate2 (and2, d, e) } in
  Alcotest.(check string) "is3" "IS3" (Subst.klass_name (Subst.klass is3))

let test_apply_fig2 () =
  let c, _, _, _, _, _, _ = Build.fig2_a () in
  let original = Circuit.clone c in
  let s = fig2_subst c in
  Alcotest.(check bool) "no cycle" false (Subst.creates_cycle c s);
  ignore (Subst.apply c s);
  (match Circuit.validate c with Ok () -> () | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "still equivalent" true
    (Equiv.check original c = Equiv.Equivalent)

let test_gain_matches_measurement () =
  (* predicted total gain must equal the measured power delta on the
     same pattern set *)
  let c, _, _, _, _, _, _ = Build.fig2_a () in
  let est = exhaustive_estimator c in
  let s = fig2_subst c in
  let predicted = Subst.total_gain (Subst.gain_full est s) in
  let before = Estimator.total est in
  let src = Subst.apply c s in
  ignore (Estimator.update_after_edit est src);
  let measured = before -. Estimator.total est in
  Alcotest.(check (float 1e-9)) "gain prediction" measured predicted

let test_gain_components_signs () =
  let c, _, _, _, _, _, _ = Build.fig2_a () in
  let est = exhaustive_estimator c in
  let s = fig2_subst c in
  let g = Subst.gain_ab est s in
  Alcotest.(check bool) "pg_a >= 0" true (g.Subst.pg_a >= 0.0);
  Alcotest.(check bool) "pg_b <= 0" true (g.Subst.pg_b <= 0.0)

let test_candidates_contain_fig2 () =
  (* with biased input probabilities the classic Figure-2 rewiring must
     show up among the generated candidates *)
  let c, _, _, _, d, e, _ = Build.fig2_a () in
  let eng = Engine.create c ~words:8 in
  let probs pi = if Circuit.name c pi = "c" then 0.15 else 0.5 in
  Engine.randomize eng ~input_probs:probs (Sim.Rng.create 5L);
  let est = Estimator.create eng in
  let cands = Candidates.generate est in
  let found =
    List.exists
      (fun (s, _) ->
        match (s.Subst.target, s.Subst.source) with
        | Subst.Branch { sink; pin = 0 }, Subst.Signal src ->
          sink = d && src = e
        | _ -> false)
      cands
  in
  Alcotest.(check bool) "fig2 candidate found" true found

let test_optimize_fig2 () =
  let c, _, _, _, _, _, _ = Build.fig2_a () in
  let original = Circuit.clone c in
  let config =
    { Optimizer.default_config with
      words = 8;
      input_prob = (fun name -> if name = "c" then 0.15 else 0.5);
    }
  in
  let report = Optimizer.optimize ~config c in
  Alcotest.(check bool) "power reduced" true
    (report.Optimizer.final_power < report.Optimizer.initial_power);
  Alcotest.(check bool) "equivalent" true
    (Equiv.check original c = Equiv.Equivalent)

let test_optimize_respects_delay () =
  let c = Build.random_circuit ~seed:91 ~n_pis:7 ~n_gates:40 in
  let config =
    { Optimizer.default_config with words = 8; delay = Optimizer.Keep_initial }
  in
  let report = Optimizer.optimize ~config c in
  (match report.Optimizer.delay_constraint with
  | Some limit ->
    Alcotest.(check bool)
      (Printf.sprintf "final delay %.2f <= constraint %.2f"
         report.Optimizer.final_delay limit)
      true
      (report.Optimizer.final_delay <= limit +. 1e-6)
  | None -> Alcotest.fail "expected a constraint");
  Alcotest.(check bool) "power not increased" true
    (report.Optimizer.final_power <= report.Optimizer.initial_power +. 1e-9)

let test_class_restriction () =
  let c = Build.random_circuit ~seed:17 ~n_pis:7 ~n_gates:40 in
  let config =
    { Optimizer.default_config with words = 8; classes = [ Subst.Os2 ] }
  in
  let report = Optimizer.optimize ~config c in
  List.iter
    (fun (k, st) ->
      if k <> Subst.Os2 then
        Alcotest.(check int)
          (Subst.klass_name k ^ " disabled")
          0 st.Optimizer.accepted)
    report.Optimizer.by_class

let prop_optimize_preserves_function =
  QCheck.Test.make ~name:"optimize preserves function" ~count:8
    QCheck.(int_bound 9999)
    (fun seed ->
      let c = Build.random_circuit ~seed ~n_pis:7 ~n_gates:35 in
      let original = Circuit.clone c in
      let config = { Optimizer.default_config with words = 8 } in
      let report = Optimizer.optimize ~config c in
      (match Circuit.validate c with Ok () -> () | Error e -> failwith e);
      Equiv.check original c = Equiv.Equivalent
      && report.Optimizer.final_power <= report.Optimizer.initial_power +. 1e-9)

let prop_optimize_never_raises_power =
  QCheck.Test.make ~name:"optimize never raises power (exhaustive est)" ~count:5
    QCheck.(int_bound 9999)
    (fun seed ->
      let c = Build.random_circuit ~seed ~n_pis:6 ~n_gates:30 in
      (* measure real power exhaustively before and after *)
      let before = Estimator.total (exhaustive_estimator (Circuit.clone c)) in
      let config = { Optimizer.default_config with words = 8 } in
      ignore (Optimizer.optimize ~config c);
      let after = Estimator.total (exhaustive_estimator c) in
      (* Monte-Carlo vs exhaustive can disagree slightly; allow 5% slack *)
      after <= before *. 1.05 +. 1e-9)

let prop_gain_prediction_exact =
  (* for every permissible candidate: PG_A + PG_B + PG_C predicted on
     the pattern set must equal the measured power delta after applying
     the substitution (same patterns) *)
  QCheck.Test.make ~name:"gain prediction = measured delta" ~count:10
    QCheck.(int_bound 9999)
    (fun seed ->
      let c = Build.random_circuit ~seed ~n_pis:6 ~n_gates:28 in
      let eng = Engine.create c ~words:4 in
      Engine.randomize eng (Sim.Rng.create 9L);
      let est = Estimator.create eng in
      let cands = Candidates.generate est in
      (* take the first few provably permissible, apply each to a fresh
         clone-world: easiest is to re-generate after each apply; test
         only the first applicable candidate per circuit *)
      let rec try_first = function
        | [] -> true
        | (s, _) :: rest ->
          if
            Subst.creates_cycle c s
            || Powder.Check.permissible c s <> Powder.Check.Permissible
          then try_first rest
          else begin
            let predicted = Subst.total_gain (Subst.gain_full est s) in
            let before = Estimator.total est in
            let src = Subst.apply c s in
            ignore (Estimator.update_after_edit est src);
            let measured = before -. Estimator.total est in
            Float.abs (predicted -. measured) < 1e-6
          end
      in
      try_first cands)

let suite =
  [
    ( "powder",
      [
        Alcotest.test_case "subst classes" `Quick test_subst_klass;
        Alcotest.test_case "apply fig2" `Quick test_apply_fig2;
        Alcotest.test_case "gain = measured delta" `Quick test_gain_matches_measurement;
        Alcotest.test_case "gain component signs" `Quick test_gain_components_signs;
        Alcotest.test_case "fig2 candidate generated" `Quick test_candidates_contain_fig2;
        Alcotest.test_case "optimize fig2" `Quick test_optimize_fig2;
        Alcotest.test_case "delay constraint respected" `Quick test_optimize_respects_delay;
        Alcotest.test_case "class restriction" `Quick test_class_restriction;
        QCheck_alcotest.to_alcotest prop_gain_prediction_exact;
        QCheck_alcotest.to_alcotest prop_optimize_preserves_function;
        QCheck_alcotest.to_alcotest prop_optimize_never_raises_power;
      ] );
  ]

let test_optimizer_deterministic () =
  let run () =
    match Circuits.Suite.find "rd84" with
    | None -> Alcotest.fail "rd84"
    | Some spec ->
      let c = Circuits.Suite.mapped spec in
      Optimizer.optimize ~config:{ Optimizer.default_config with words = 8 } c
  in
  let r1 = run () and r2 = run () in
  Alcotest.(check (float 1e-12)) "same final power" r1.Optimizer.final_power
    r2.Optimizer.final_power;
  Alcotest.(check int) "same substitutions" r1.Optimizer.substitutions
    r2.Optimizer.substitutions;
  Alcotest.(check (float 1e-12)) "same area" r1.Optimizer.final_area
    r2.Optimizer.final_area

let deterministic_tests =
  [ Alcotest.test_case "optimizer deterministic" `Quick test_optimizer_deterministic ]

let suite = suite @ [ ("powder-determinism", deterministic_tests) ]

(* Satellite: the PG_A + PG_B + PG_C decomposition telescopes exactly
   over every accepted substitution of a run.  With
   [checkpoint_every = 0] one estimator survives the whole run, so the
   per-accept measured deltas bucketed by class must sum to the total
   power drop.  Collect at least 50 accepts across fuzzed netlists. *)
let test_gain_identity_on_fuzzed_accepts () =
  let accepts = ref 0 and seed = ref 0 in
  while !accepts < 50 && !seed < 40 do
    let case = Int64.of_int (900 + !seed) in
    let c = Fuzz.Gen.generate (Fuzz.Gen.spec_of_seed case) in
    let config =
      {
        Optimizer.default_config with
        words = 4;
        seed = Sim.Rng.derive case "test/gain";
        max_rounds = 4;
        max_substitutions = 50;
        checkpoint_every = 0;
        checkpoint_file = None;
        check_seconds = Some 2.0;
        run_seconds = Some 5.0;
      }
    in
    let r = Optimizer.optimize ~config c in
    let summed =
      List.fold_left
        (fun acc (_, st) -> acc +. st.Optimizer.power_gain)
        0.0 r.Optimizer.by_class
    in
    let delta = r.Optimizer.initial_power -. r.Optimizer.final_power in
    Alcotest.(check bool)
      (Printf.sprintf "seed %Ld: by-class gains telescope" case)
      true
      (Float.abs (summed -. delta)
      <= 1e-6 *. Float.max 1.0 (Float.abs r.Optimizer.initial_power));
    accepts := !accepts + r.Optimizer.substitutions;
    incr seed
  done;
  Alcotest.(check bool) "covered >= 50 accepted substitutions" true
    (!accepts >= 50)

let fuzzed_gain_tests =
  [
    Alcotest.test_case "gain telescopes on fuzzed accepts" `Quick
      test_gain_identity_on_fuzzed_accepts;
  ]

let suite = suite @ [ ("powder-fuzzed-gain", fuzzed_gain_tests) ]
