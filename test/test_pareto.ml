(* lib/pareto: frontier dominance, cost-model parsing, the sweep
   driver's determinism/constraint contracts, and per-point
   checkpoint/resume. *)

module Frontier = Pareto.Frontier
module Sweep = Pareto.Sweep
module Cost = Pareto.Cost
module Optimizer = Powder.Optimizer

let point ?(label = "p") ?delay_constraint ?glitch_power ~power ~delay () =
  {
    Frontier.label;
    delay_constraint;
    power;
    glitch_power;
    delay;
    area = 100.0;
    substitutions = 1;
  }

(* --- Frontier ---------------------------------------------------- *)

let test_dominates () =
  let a = point ~power:1.0 ~delay:1.0 () in
  let worse_power = point ~power:2.0 ~delay:1.0 () in
  let worse_delay = point ~power:1.0 ~delay:2.0 () in
  let equal = point ~power:1.0 ~delay:1.0 () in
  let tradeoff = point ~power:0.5 ~delay:2.0 () in
  Alcotest.(check bool) "strict power" true (Frontier.dominates a worse_power);
  Alcotest.(check bool) "strict delay" true (Frontier.dominates a worse_delay);
  Alcotest.(check bool) "equal dominates nothing" false
    (Frontier.dominates a equal);
  Alcotest.(check bool) "tradeoff incomparable" false
    (Frontier.dominates a tradeoff);
  Alcotest.(check bool) "tradeoff incomparable (sym)" false
    (Frontier.dominates tradeoff a)

let test_prune () =
  let p1 = point ~label:"a" ~power:5.0 ~delay:1.0 () in
  let p2 = point ~label:"b" ~power:3.0 ~delay:2.0 () in
  let dominated = point ~label:"c" ~power:4.0 ~delay:3.0 () in
  let duplicate = point ~label:"d" ~power:3.0 ~delay:2.0 () in
  let p3 = point ~label:"e" ~power:2.0 ~delay:4.0 () in
  let frontier, dropped = Frontier.prune [ p3; dominated; p2; duplicate; p1 ] in
  Alcotest.(check int) "dominated count" 2 dropped;
  Alcotest.(check (list string)) "frontier labels, delay order"
    [ "a"; "b"; "e" ]
    (List.map (fun p -> p.Frontier.label) frontier);
  (* structural invariant: no frontier point dominates another *)
  List.iter
    (fun x ->
      List.iter
        (fun y ->
          if x.Frontier.label <> y.Frontier.label then
            Alcotest.(check bool) "no dominance on the frontier" false
              (Frontier.dominates x y))
        frontier)
    frontier

let test_prune_single_and_empty () =
  let frontier, dropped = Frontier.prune [] in
  Alcotest.(check int) "empty in, empty out" 0 (List.length frontier);
  Alcotest.(check int) "nothing dominated" 0 dropped;
  let p = point ~power:1.0 ~delay:1.0 () in
  let frontier, dropped = Frontier.prune [ p ] in
  Alcotest.(check int) "singleton survives" 1 (List.length frontier);
  Alcotest.(check int) "singleton dominates nothing" 0 dropped

let test_point_json_roundtrip () =
  let check_roundtrip p =
    match Frontier.of_json (Frontier.to_json p) with
    | Ok p' -> Alcotest.(check bool) "round-trips" true (p = p')
    | Error e -> Alcotest.fail ("of_json failed: " ^ e)
  in
  check_roundtrip
    (point ~label:"1.10x" ~delay_constraint:13.5 ~glitch_power:48.2 ~power:40.0
       ~delay:12.0 ());
  check_roundtrip (point ~label:"unbounded" ~power:38.0 ~delay:17.0 ())

(* --- Cost -------------------------------------------------------- *)

let test_cost_parse () =
  let ok s = Result.get_ok (Cost.of_string s) in
  Alcotest.(check bool) "zero-delay" true (ok "zero-delay" = Cost.Zero_delay);
  Alcotest.(check bool) "zero_delay alias" true
    (ok "zero_delay" = Cost.Zero_delay);
  Alcotest.(check bool) "glitch default pairs" true
    (ok "glitch" = Cost.Glitch { pairs = Cost.default_glitch_pairs });
  Alcotest.(check bool) "glitch:16" true (ok "glitch:16" = Cost.Glitch { pairs = 16 });
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (Printf.sprintf "%S rejected" s)
        true
        (Result.is_error (Cost.of_string s)))
    [ "glitch:0"; "glitch:-3"; "glitch:x"; "bogus"; "" ];
  (* to_string round-trips through of_string *)
  List.iter
    (fun c ->
      Alcotest.(check bool)
        (Cost.to_string c ^ " round-trips")
        true
        (ok (Cost.to_string c) = c))
    [ Cost.Zero_delay; Cost.Glitch { pairs = Cost.default_glitch_pairs };
      Cost.Glitch { pairs = 7 } ]

let test_spec_parse () =
  let ok s = Result.get_ok (Sweep.spec_of_string s) in
  Alcotest.(check bool) "1.1" true (ok "1.1" = Sweep.Scale 1.1);
  Alcotest.(check bool) "1.25x" true (ok "1.25x" = Sweep.Scale 1.25);
  Alcotest.(check bool) "unbounded" true (ok "unbounded" = Sweep.Unbounded);
  Alcotest.(check bool) "inf" true (ok "inf" = Sweep.Unbounded);
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (Printf.sprintf "%S rejected" s)
        true
        (Result.is_error (Sweep.spec_of_string s)))
    [ "0.5"; "-1"; "x"; "" ];
  List.iter
    (fun sp ->
      Alcotest.(check bool)
        (Sweep.spec_to_string sp ^ " round-trips")
        true
        (ok (Sweep.spec_to_string sp) = sp))
    Sweep.default_specs

(* --- Sweep ------------------------------------------------------- *)

let test_config =
  {
    Optimizer.default_config with
    words = 4;
    seed = 99L;
    max_rounds = 2;
  }

let rd84 () =
  Circuits.Suite.mapped (Option.get (Circuits.Suite.find "rd84"))

let strip_volatile = function
  | Obs.Json.Obj fields ->
    Obs.Json.Obj
      (List.filter (fun (k, _) -> k <> "jobs" && k <> "cpu_seconds") fields)
  | j -> j

let test_sweep_structure () =
  let specs = [ Sweep.Scale 1.0; Sweep.Scale 1.25; Sweep.Unbounded ] in
  let r = Sweep.run ~config:test_config ~specs ~name:"rd84" rd84 in
  Alcotest.(check int) "one point per spec" (List.length specs)
    (List.length r.Sweep.points);
  Alcotest.(check (list string)) "points in constraint order"
    (List.map Sweep.spec_to_string specs)
    (List.map (fun p -> p.Frontier.label) r.Sweep.points);
  (* the frontier is the prune of the points and balances the count *)
  let frontier, dominated = Frontier.prune r.Sweep.points in
  Alcotest.(check bool) "frontier = prune points" true
    (frontier = r.Sweep.frontier);
  Alcotest.(check int) "dominated balances" dominated r.Sweep.dominated;
  Alcotest.(check bool) "frontier non-empty" true (r.Sweep.frontier <> []);
  (* every constrained point respects its constraint; unbounded has none *)
  List.iter
    (fun p ->
      match p.Frontier.delay_constraint with
      | Some c ->
        Alcotest.(check bool)
          (p.Frontier.label ^ " final delay within constraint")
          true
          (p.Frontier.delay <= c +. 1e-9)
      | None ->
        Alcotest.(check string) "only the unbounded point is unconstrained"
          "unbounded" p.Frontier.label)
    r.Sweep.points;
  (* zero-delay sweep: no glitch power anywhere *)
  List.iter
    (fun p ->
      Alcotest.(check bool) "no glitch power under zero-delay cost" true
        (p.Frontier.glitch_power = None))
    r.Sweep.points

let test_sweep_delay_rejections () =
  (* Section 3.4 satellite: at the keep-initial-delay constraint some
     candidates must die on the delay screen, and the surviving netlist
     must still meet the constraint *)
  let r =
    Sweep.run ~config:test_config ~specs:[ Sweep.Scale 1.0 ] ~name:"rd84" rd84
  in
  let _, rep = List.hd r.Sweep.reports in
  Alcotest.(check bool) "rejected_by_delay > 0" true
    (rep.Optimizer.rejected_by_delay > 0);
  (match rep.Optimizer.delay_constraint with
  | None -> Alcotest.fail "1.00x point lost its constraint"
  | Some c ->
    Alcotest.(check bool) "final arrival <= constraint" true
      (rep.Optimizer.final_delay <= c +. 1e-9);
    Alcotest.(check (float 1e-6)) "constraint = initial delay"
      rep.Optimizer.initial_delay c);
  Alcotest.(check bool) "still finds substitutions" true
    (rep.Optimizer.substitutions > 0)

let test_sweep_jobs_deterministic () =
  let specs = [ Sweep.Scale 1.0; Sweep.Unbounded ] in
  let run jobs =
    Sweep.run ~config:test_config ~specs ~jobs ~name:"rd84" rd84
  in
  let j1 = strip_volatile (Sweep.to_json (run 1)) in
  let j2 = strip_volatile (Sweep.to_json (run 2)) in
  Alcotest.(check string) "jobs 1 and 2 byte-identical"
    (Obs.Json.to_string j1) (Obs.Json.to_string j2)

let test_sweep_glitch_cost () =
  let config = Cost.apply (Cost.Glitch { pairs = 16 }) test_config in
  let r =
    Sweep.run ~config ~specs:[ Sweep.Scale 1.0; Sweep.Unbounded ] ~name:"rd84"
      rd84
  in
  List.iter
    (fun p ->
      match p.Frontier.glitch_power with
      | Some g ->
        Alcotest.(check bool)
          (p.Frontier.label ^ " glitch power sane")
          true
          (Float.is_finite g && g >= 0.0)
      | None -> Alcotest.fail (p.Frontier.label ^ ": glitch cost but no glitch power"))
    r.Sweep.points;
  List.iter
    (fun (lbl, rep) ->
      Alcotest.(check string) (lbl ^ " cost model recorded") "glitch"
        rep.Optimizer.cost_model;
      Alcotest.(check bool) (lbl ^ " glitch fields measured") true
        (rep.Optimizer.initial_glitch_power <> None
        && rep.Optimizer.final_glitch_power <> None))
    r.Sweep.reports

let test_is3_credit_smoke () =
  (* the experimental credit changes ranking inputs, never soundness:
     the run must complete with a coherent report *)
  let config = { test_config with Optimizer.is3_credit = true } in
  let r =
    Sweep.run ~config ~specs:[ Sweep.Unbounded ] ~name:"rd84" rd84
  in
  let _, rep = List.hd r.Sweep.reports in
  Alcotest.(check bool) "run completes with substitutions" true
    (rep.Optimizer.substitutions >= 0);
  Alcotest.(check bool) "power never increases" true
    (rep.Optimizer.final_power <= rep.Optimizer.initial_power +. 1e-9)

let with_temp_dir f =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "pareto_test_%d" (Unix.getpid ()))
  in
  let rec rm path =
    if Sys.file_exists path then
      if Sys.is_directory path then begin
        Array.iter (fun e -> rm (Filename.concat path e)) (Sys.readdir path);
        Sys.rmdir path
      end
      else Sys.remove path
  in
  rm dir;
  Fun.protect ~finally:(fun () -> rm dir) (fun () -> f dir)

let test_sweep_checkpoint_resume () =
  with_temp_dir (fun dir ->
      let specs = [ Sweep.Scale 1.0; Sweep.Unbounded ] in
      let run () =
        Sweep.run ~config:test_config ~specs ~checkpoint_dir:dir ~name:"rd84"
          rd84
      in
      let first = strip_volatile (Sweep.to_json (run ())) in
      (* every point leaves a checkpoint behind *)
      List.iter
        (fun sp ->
          let f =
            Filename.concat dir
              (Printf.sprintf "point-%s.json" (Sweep.spec_to_string sp))
          in
          Alcotest.(check bool) (f ^ " exists") true (Sys.file_exists f))
        specs;
      (* a re-run resumes from the finished checkpoints and reproduces
         the uninterrupted report byte-for-byte *)
      let second = strip_volatile (Sweep.to_json (run ())) in
      Alcotest.(check string) "resumed sweep identical"
        (Obs.Json.to_string first) (Obs.Json.to_string second))

let suite =
  [
    ( "pareto",
      [
        Alcotest.test_case "dominates" `Quick test_dominates;
        Alcotest.test_case "prune" `Quick test_prune;
        Alcotest.test_case "prune edge cases" `Quick test_prune_single_and_empty;
        Alcotest.test_case "point json round-trip" `Quick test_point_json_roundtrip;
        Alcotest.test_case "cost parsing" `Quick test_cost_parse;
        Alcotest.test_case "spec parsing" `Quick test_spec_parse;
        Alcotest.test_case "sweep structure" `Quick test_sweep_structure;
        Alcotest.test_case "delay constraint enforced" `Quick
          test_sweep_delay_rejections;
        Alcotest.test_case "jobs-deterministic" `Quick test_sweep_jobs_deterministic;
        Alcotest.test_case "glitch cost sweep" `Quick test_sweep_glitch_cost;
        Alcotest.test_case "is3 credit smoke" `Quick test_is3_credit_smoke;
        Alcotest.test_case "checkpoint resume" `Quick test_sweep_checkpoint_resume;
      ] );
  ]
