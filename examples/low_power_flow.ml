(* The complete synthesis flow on a real benchmark:

     BLIF logic network -> AIG -> power-aware technology mapping
        -> POWDER structural power optimization -> mapped BLIF out

   This mirrors the paper's experimental setup: the mapper plays the
   role of the POSE low-power starting point, POWDER adds value on top.

   Run with: dune exec examples/low_power_flow.exe *)

module Circuit = Netlist.Circuit
module Network = Aig.Network

let source_blif =
  {|
# 1-bit full adder plus a comparator slice, as a BLIF network
.model demo
.inputs a b cin x y
.outputs sum cout agtb
.names a b axb
10 1
01 1
.names axb cin sum
10 1
01 1
.names a b ab
11 1
.names cin axb cx
11 1
.names ab cx cout
1- 1
-1 1
.names x y agtb
10 1
.end
|}

let () =
  (* 1. read the technology-independent network *)
  let net =
    match Blif.Blif_io.network_of_string source_blif with
    | Ok net -> net
    | Error e -> failwith ("BLIF parse error: " ^ Blif.Blif_io.error_to_string e)
  in
  Format.printf "Network: %d nodes, %d SOP literals@."
    (Network.node_count net) (Network.literal_count net);

  (* 2. technology-independent optimization: two-level minimization of
     every node, elaboration into an AIG, depth balancing *)
  let net = Network.minimize net in
  let aig = Aig.Opt.balance (Network.to_aig net) in
  Format.printf "AIG: %a@." Aig.Graph.pp_stats aig;

  (* 3. power-aware technology mapping onto the lib2-style library *)
  let input_prob = function "cin" -> 0.2 | _ -> 0.5 in
  let circ =
    Mapper.Techmap.map ~objective:Mapper.Techmap.Power ~input_prob
      Gatelib.Library.lib2 aig
  in
  Format.printf "Mapped: %a@." Circuit.pp_stats circ;
  let original = Circuit.clone circ in

  (* 4. POWDER structural optimization.  First try keeping the mapped
     delay; if the circuit is too tight for that, show the
     unconstrained mode (the paper's first experiment). *)
  let run delay label =
    let trial = Circuit.clone circ in
    let config = { Powder.Optimizer.default_config with input_prob; delay } in
    let report = Powder.Optimizer.optimize ~config trial in
    Format.printf "@.[%s]@.%a@." label Powder.Optimizer.pp_report report;
    (trial, report)
  in
  let _ = run Powder.Optimizer.Keep_initial "delay-constrained" in
  let optimized, report = run Powder.Optimizer.Unconstrained "unconstrained" in
  let circ = optimized in
  ignore report;

  (* 5. verify and emit the final netlist *)
  (match Atpg.Equiv.check original circ with
  | Atpg.Equiv.Equivalent -> Format.printf "@.Equivalence verified.@."
  | Atpg.Equiv.Different _ | Atpg.Equiv.Unknown -> failwith "verification failed");
  print_string "\nFinal mapped netlist (BLIF):\n";
  print_string (Blif.Blif_io.circuit_to_string circ)
