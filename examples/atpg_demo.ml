(* The ATPG substrate on its own: stuck-at fault simulation, PODEM test
   generation and redundancy identification on a benchmark circuit.

   Run with: dune exec examples/atpg_demo.exe *)

module Circuit = Netlist.Circuit
module Fault = Atpg.Fault
module Podem = Atpg.Podem
module Faultsim = Atpg.Faultsim

let () =
  let spec = Option.get (Circuits.Suite.find "alu2") in
  let circ = Circuits.Suite.mapped spec in
  Format.printf "Circuit %s: %a@." spec.Circuits.Suite.name Circuit.pp_stats circ;

  (* 1. grade 256 random patterns against the full stuck-at fault list *)
  let cov = Faultsim.random_coverage circ ~patterns:256 ~seed:7L in
  Format.printf "Random-pattern fault coverage: %d / %d (%.1f%%)@."
    cov.Faultsim.detected cov.Faultsim.total
    (100.0 *. float_of_int cov.Faultsim.detected /. float_of_int cov.Faultsim.total);

  (* 2. chase the undetected faults with PODEM *)
  let tests = ref 0 and redundant = ref [] and aborted = ref 0 in
  List.iter
    (fun f ->
      match Podem.generate_test circ f with
      | Podem.Test _ -> incr tests
      | Podem.Untestable -> redundant := f :: !redundant
      | Podem.Aborted _ -> incr aborted)
    cov.Faultsim.undetected;
  Format.printf
    "PODEM on the %d undetected faults: %d new tests, %d proved redundant, %d aborted@."
    (List.length cov.Faultsim.undetected)
    !tests (List.length !redundant) !aborted;

  (* 3. redundant faults point at removable logic *)
  List.iter
    (fun f -> Format.printf "  redundant: %s@." (Fault.to_string circ f))
    !redundant;

  (* 4. the same machinery proves POWDER substitutions permissible:
     show one explicit example on this circuit *)
  let eng = Sim.Engine.create circ ~words:16 in
  Sim.Engine.randomize eng (Sim.Rng.create 3L);
  let est = Power.Estimator.create eng in
  match Powder.Candidates.generate est with
  | [] -> Format.printf "no candidate substitutions on this circuit@."
  | (s, g) :: _ ->
    Format.printf "@.best candidate: %s (estimated PG_A+PG_B = %.4f)@."
      (Powder.Subst.describe circ s) (Powder.Subst.total_gain g);
    let clone = Powder.Subst.apply_to_clone circ s in
    (match Atpg.Equiv.check circ clone with
    | Atpg.Equiv.Equivalent -> Format.printf "proved permissible by the exact check@."
    | Atpg.Equiv.Different _ -> Format.printf "rejected: a distinguishing test exists@."
    | Atpg.Equiv.Unknown -> Format.printf "check aborted (treated as not permissible)@.")
