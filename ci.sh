#!/bin/sh
# Staged CI pipeline.
#
#   ./ci.sh [STAGE ...]       with STAGE in:
#     build   compile everything
#     test    unit/property tests + fault-injection self-test
#     smoke   end-to-end runs: telemetry, profiling, checkpointing,
#             parallel determinism, signature-index determinism
#     fuzz    differential fuzz campaign + injected-fault catch
#     serve   batch service drain + crash/kill chaos legs
#     perf    bench self-consistency + committed-baseline perf gate
#     pareto  frontier sweep: jobs determinism, frontier invariants,
#             glitch cost model, bench gate vs the committed baseline
#     scale   synthetic large-netlist bench: windowed-vs-global check
#             agreement + throughput gate vs the committed baseline
#     all     every stage above, in that order (the default)
#
# Every leg runs under a hard wall-clock cap so a hang fails the build
# instead of wedging it.  Each stage is timed; a summary table is
# printed at exit (with the failing stage named when one fails).
set -eu
cd "$(dirname "$0")"

# timeout(1) wrapper; degrade to bare execution where coreutils is absent
if command -v timeout >/dev/null 2>&1; then
  hard_timeout() { t="$1"; shift; timeout "$t" "$@"; }
else
  hard_timeout() { shift; "$@"; }
fi

summary_file=$(mktemp /tmp/powder_ci_summary_XXXXXX)
current_stage=""
finish() {
  status=$?
  echo
  echo "== ci summary =="
  cat "$summary_file"
  if [ "$status" -ne 0 ] && [ -n "$current_stage" ]; then
    printf '%-8s %6s  FAILED\n' "$current_stage" "-"
    echo "CI FAILED (stage: $current_stage)"
  fi
  rm -f "$summary_file"
  exit "$status"
}
trap finish EXIT

run_stage() {
  current_stage="$1"
  echo "==== stage: $1 ===="
  t0=$(date +%s)
  "stage_$1"
  t1=$(date +%s)
  printf '%-8s %5ss  ok\n' "$1" "$((t1 - t0))" >> "$summary_file"
  current_stage=""
}

# ------------------------------------------------------------------ #
# build                                                              #
# ------------------------------------------------------------------ #
stage_build() {
  hard_timeout 600 dune build
}

# ------------------------------------------------------------------ #
# test                                                               #
# ------------------------------------------------------------------ #
stage_test() {
  hard_timeout 900 dune runtest

  echo "== fault injection =="
  hard_timeout 300 dune exec test/main.exe -- test guard
}

# ------------------------------------------------------------------ #
# smoke                                                              #
# ------------------------------------------------------------------ #
stage_smoke() {
  echo "== smoke: optimize rd84 with full telemetry =="
  tmp_json=$(mktemp /tmp/powder_ci_XXXXXX.json)
  tmp_trace=$(mktemp /tmp/powder_ci_XXXXXX.jsonl)
  hard_timeout 300 dune exec bin/powder_cli.exe -- optimize --circuit rd84 \
    --json "$tmp_json" --trace "$tmp_trace" --metrics
  dune exec bin/json_check.exe -- "$tmp_json"
  # funnel identities must hold in the degenerate (windowing off) case too
  dune exec bin/json_check.exe -- --check-report "$tmp_json"
  dune exec bin/json_check.exe -- --jsonl "$tmp_trace"
  rm -f "$tmp_json" "$tmp_trace"

  echo "== smoke: windowed check funnel is coherent =="
  # window_checks = proved + escalated, every escalation classified
  # under a window/* give-up key, and none of them counted as a
  # rejection — validated structurally from the emitted report
  win_json=$(mktemp /tmp/powder_ci_win_XXXXXX.json)
  hard_timeout 300 dune exec bin/powder_cli.exe -- optimize --circuit rd84 \
    --window 16 --json "$win_json" >/dev/null
  dune exec bin/json_check.exe -- --check-report "$win_json"
  rm -f "$win_json"

  echo "== smoke: deep profile (call tree, flamegraph, Chrome trace) =="
  prof_dir=$(mktemp -d /tmp/powder_ci_prof_XXXXXX)
  hard_timeout 300 dune exec bin/powder_cli.exe -- optimize --circuit rd84 \
    --profile "$prof_dir" --json "$prof_dir/report.json" >/dev/null
  dune exec bin/json_check.exe -- "$prof_dir/profile.json"
  dune exec bin/json_check.exe -- "$prof_dir/trace.chrome.json"
  dune exec bin/json_check.exe -- "$prof_dir/report.json"
  test -s "$prof_dir/profile.folded"
  dune exec bin/powder_cli.exe -- report "$prof_dir" --top 10
  rm -rf "$prof_dir"

  echo "== smoke: checkpoint round-trip (kill after 3 rounds, resume) =="
  ck=$(mktemp /tmp/powder_ci_ck_XXXXXX.json)
  full_json=$(mktemp /tmp/powder_ci_full_XXXXXX.json)
  resumed_json=$(mktemp /tmp/powder_ci_res_XXXXXX.json)
  # reference: uninterrupted 6-round run checkpointing every 3 rounds
  hard_timeout 300 dune exec bin/powder_cli.exe -- optimize --circuit alu2 \
    --max-rounds 6 --checkpoint-every 3 --json "$full_json" >/dev/null
  # interrupted: stop after 3 rounds (the checkpoint survives), resume to 6
  rm -f "$ck"
  hard_timeout 300 dune exec bin/powder_cli.exe -- optimize --circuit alu2 \
    --max-rounds 3 --checkpoint "$ck" --checkpoint-every 3 >/dev/null
  hard_timeout 300 dune exec bin/powder_cli.exe -- optimize --circuit alu2 \
    --max-rounds 6 --checkpoint "$ck" --checkpoint-every 3 --resume \
    --json "$resumed_json" >/dev/null
  dune exec bin/json_check.exe -- --compare-reports "$full_json" "$resumed_json"
  rm -f "$ck" "$full_json" "$resumed_json"

  echo "== smoke: parallel determinism (--jobs 4 == --jobs 1) =="
  # The hard invariant of the domain pool: report JSON (modulo timing
  # and the jobs field) and the emitted netlist are byte-identical at
  # any job count.
  seq_json=$(mktemp /tmp/powder_ci_j1_XXXXXX.json)
  par_json=$(mktemp /tmp/powder_ci_j4_XXXXXX.json)
  seq_blif=$(mktemp /tmp/powder_ci_j1_XXXXXX.blif)
  par_blif=$(mktemp /tmp/powder_ci_j4_XXXXXX.blif)
  hard_timeout 300 dune exec bin/powder_cli.exe -- optimize --circuit rd84 \
    --jobs 1 --json "$seq_json" -o "$seq_blif" >/dev/null
  hard_timeout 300 dune exec bin/powder_cli.exe -- optimize --circuit rd84 \
    --jobs 4 --json "$par_json" -o "$par_blif" >/dev/null
  dune exec bin/json_check.exe -- --compare-reports "$seq_json" "$par_json"
  cmp "$seq_blif" "$par_blif"
  rm -f "$seq_json" "$par_json" "$seq_blif" "$par_blif"

  echo "== smoke: signature determinism on cps (jobs, index mode) =="
  # The signature store's own invariant, on the circuit whose generate
  # phase motivated it: the hash index, the linear reference scan, and
  # any pool width must emit byte-identical netlists and matching
  # reports.  cps is the largest suite circuit, so this is also the leg
  # that would catch a store-maintenance bug only visible at scale.
  ref_json=$(mktemp /tmp/powder_ci_sig_ref_XXXXXX.json)
  ref_blif=$(mktemp /tmp/powder_ci_sig_ref_XXXXXX.blif)
  alt_json=$(mktemp /tmp/powder_ci_sig_alt_XXXXXX.json)
  alt_blif=$(mktemp /tmp/powder_ci_sig_alt_XXXXXX.blif)
  hard_timeout 300 dune exec bin/powder_cli.exe -- optimize --circuit cps \
    --jobs 1 --json "$ref_json" -o "$ref_blif" >/dev/null
  hard_timeout 300 dune exec bin/powder_cli.exe -- optimize --circuit cps \
    --jobs 4 --json "$alt_json" -o "$alt_blif" >/dev/null
  cmp "$ref_blif" "$alt_blif"
  dune exec bin/json_check.exe -- --compare-reports "$ref_json" "$alt_json"
  hard_timeout 300 dune exec bin/powder_cli.exe -- optimize --circuit cps \
    --jobs 1 --sig-index scan --json "$alt_json" -o "$alt_blif" >/dev/null
  cmp "$ref_blif" "$alt_blif"
  dune exec bin/json_check.exe -- --compare-reports "$ref_json" "$alt_json"
  rm -f "$ref_json" "$ref_blif" "$alt_json" "$alt_blif"
}

# ------------------------------------------------------------------ #
# fuzz                                                               #
# ------------------------------------------------------------------ #
stage_fuzz() {
  echo "== fuzz: differential campaign (fixed seed) =="
  # Clean campaign: any oracle split or unshrunk crash exits non-zero.
  fuzz_dir=$(mktemp -d /tmp/powder_ci_fuzz_XXXXXX)
  if ! hard_timeout 120 dune exec bin/powder_cli.exe -- fuzz --seed 1 \
    --budget 20 --out "$fuzz_dir"; then
    echo "fuzz smoke failed; shrunk repro bundles (replay with" \
      "powder_cli fuzz --replay <bundle>):" >&2
    ls -l "$fuzz_dir" >&2 || true
    exit 1
  fi

  echo "== fuzz: injected guard fault is caught, shrunk, replayable =="
  # The harness must catch a forged permissibility verdict, shrink the
  # witness, and the dumped bundle must reproduce the failure.
  if ! hard_timeout 120 dune exec bin/powder_cli.exe -- fuzz --seed 1 \
    --budget 20 --inject forge_verdict --out "$fuzz_dir"; then
    echo "injected-fault fuzz leg failed; bundles:" >&2
    ls -l "$fuzz_dir" >&2 || true
    exit 1
  fi
  bundle=$(ls "$fuzz_dir"/fuzz-*-injected_corruption.json | head -n 1)
  hard_timeout 120 dune exec bin/powder_cli.exe -- fuzz --replay "$bundle"
  rm -rf "$fuzz_dir"
}

# ------------------------------------------------------------------ #
# serve                                                              #
# ------------------------------------------------------------------ #
stage_serve() {
  echo "== serve: batch service drains a 3-job queue =="
  serve_dir=$(mktemp -d /tmp/powder_ci_serve_XXXXXX)
  cat > "$serve_dir/jobs.jsonl" <<'EOF'
{"op":"submit","id":"s1","circuit":"rd84","priority":1,"options":{"words":4,"max_rounds":2}}
{"op":"submit","id":"s2","circuit":"alu2","options":{"words":4,"max_rounds":2}}
{"op":"submit","id":"s3","circuit":"f51m","priority":-1,"options":{"words":4,"max_rounds":2}}
EOF
  hard_timeout 300 dune exec bin/powder_cli.exe -- serve \
    --input "$serve_dir/jobs.jsonl" --state "$serve_dir/state" \
    | grep -q 'drained  completed=3 failed=0 rejected=0'
  for id in s1 s2 s3; do
    dune exec bin/json_check.exe -- "$serve_dir/state/results/$id.json"
    test -s "$serve_dir/state/results/$id.blif"
  done
  dune exec bin/json_check.exe -- --jsonl "$serve_dir/state/results.jsonl"

  echo "== chaos: worker crashes leave results byte-identical =="
  # Same 3 jobs under worker-crash injection: the supervisor retries the
  # crashed slices from their checkpoints and must land on exactly the
  # outputs of the undisturbed run above.
  hard_timeout 300 dune exec bin/powder_cli.exe -- serve \
    --input "$serve_dir/jobs.jsonl" --state "$serve_dir/chaos" \
    --inject worker-crash --retry-base 0.01 --retry-cap 0.05 >/dev/null
  for id in s1 s2 s3; do
    cmp "$serve_dir/state/results/$id.blif" "$serve_dir/chaos/results/$id.blif"
    dune exec bin/json_check.exe -- --compare-reports \
      "$serve_dir/state/results/$id.json" "$serve_dir/chaos/results/$id.json"
  done
  grep -q '"ev":"retry"' "$serve_dir/chaos/results.jsonl"

  echo "== chaos: kill -TERM mid-run, restart recovers bit-identically =="
  cli=_build/default/bin/powder_cli.exe
  dune build bin/powder_cli.exe
  cat > "$serve_dir/big.jsonl" <<'EOF'
{"op":"submit","id":"k1","circuit":"rd84","options":{"words":4,"max_rounds":6}}
{"op":"submit","id":"k2","circuit":"alu2","options":{"words":4,"max_rounds":6}}
{"op":"submit","id":"k3","circuit":"f51m","options":{"words":4,"max_rounds":6}}
EOF
  # reference: the same queue run to completion undisturbed
  hard_timeout 300 "$cli" serve --input "$serve_dir/big.jsonl" \
    --state "$serve_dir/ref" >/dev/null
  # interrupted run: SIGTERM lands between slices, the queue is persisted
  "$cli" serve --input "$serve_dir/big.jsonl" --state "$serve_dir/kill" \
    >/dev/null &
  serve_pid=$!
  sleep 0.4
  kill -TERM "$serve_pid" 2>/dev/null || true
  wait "$serve_pid"
  # restart on the same state directory with no new input: pending jobs
  # recover (resuming mid-job from their checkpoints) and finish
  hard_timeout 300 "$cli" serve --input /dev/null --state "$serve_dir/kill" \
    >/dev/null
  for id in k1 k2 k3; do
    cmp "$serve_dir/ref/results/$id.blif" "$serve_dir/kill/results/$id.blif"
    dune exec bin/json_check.exe -- --compare-reports \
      "$serve_dir/ref/results/$id.json" "$serve_dir/kill/results/$id.json"
  done
  rm -rf "$serve_dir"
}

# ------------------------------------------------------------------ #
# perf                                                               #
# ------------------------------------------------------------------ #
stage_perf() {
  echo "== perf: bench self-compare passes, +50% perturbation fails =="
  bench_a=$(mktemp /tmp/powder_ci_bench_a_XXXXXX.json)
  bench_b=$(mktemp /tmp/powder_ci_bench_b_XXXXXX.json)
  hard_timeout 600 dune exec bench/main.exe -- quick guard \
    --out "$bench_a" >/dev/null
  # the quick bench finishes in well under a second per run, so the
  # absolute noise floor is scaled down to match
  dune exec bin/json_check.exe -- "$bench_a"
  dune exec bin/bench_diff.exe -- "$bench_a" "$bench_a" --abs-floor 0.005
  dune exec bin/bench_diff.exe -- --perturb "$bench_a" "$bench_b" --factor 1.5
  if dune exec bin/bench_diff.exe -- "$bench_a" "$bench_b" --abs-floor 0.005; then
    echo "bench_diff failed to flag a 50% regression" >&2
    exit 1
  fi
  rm -f "$bench_a" "$bench_b"

  echo "== perf: committed-baseline gate (BENCH_powder.json) =="
  # A fresh quick bench against the committed trajectory point.  The
  # quick table1 set includes cps, whose generate phase carries the
  # signature-store speedup: eroding it (or any other phase) past
  # rel-tol fails CI here instead of rotting silently.  The tolerance
  # is wide (50% + a 0.25s floor) because CI machines are noisy; the
  # regressions this gate exists for are order-of-magnitude.
  fresh=$(mktemp /tmp/powder_ci_bench_fresh_XXXXXX.json)
  hard_timeout 600 dune exec bench/main.exe -- quick table1 glitch guard \
    parallel serve --out "$fresh" >/dev/null
  dune exec bin/json_check.exe -- "$fresh"
  dune exec bin/bench_diff.exe -- BENCH_powder.json "$fresh" \
    --rel-tol 0.5 --abs-floor 0.25
  rm -f "$fresh"
}

# ------------------------------------------------------------------ #
# pareto                                                             #
# ------------------------------------------------------------------ #
stage_pareto() {
  echo "== pareto: cps sweep — determinism across --jobs, frontier invariants =="
  # The sweep's contract in one leg: the default 4-constraint sweep on
  # the largest suite circuit produces a dominance-pruned frontier
  # (validated structurally by json_check), rejects candidates on the
  # delay screen at the tightest constraint, and emits byte-identical
  # JSON at any job count.
  p1=$(mktemp /tmp/powder_ci_pareto_j1_XXXXXX.json)
  p4=$(mktemp /tmp/powder_ci_pareto_j4_XXXXXX.json)
  hard_timeout 600 dune exec bin/powder_cli.exe -- pareto --circuit cps \
    --words 4 --max-rounds 4 --jobs 1 --json "$p1" >/dev/null
  hard_timeout 600 dune exec bin/powder_cli.exe -- pareto --circuit cps \
    --words 4 --max-rounds 4 --jobs 4 --json "$p4" >/dev/null
  dune exec bin/json_check.exe -- --check-report "$p1"
  dune exec bin/json_check.exe -- --compare-reports "$p1" "$p4"
  # the tightest constraint must actually bite
  if ! grep -q '"rejected_by_delay":[1-9]' "$p1"; then
    echo "pareto: no point rejected anything on delay" >&2
    exit 1
  fi
  rm -f "$p1" "$p4"

  echo "== pareto: glitch cost model report validates =="
  pg=$(mktemp /tmp/powder_ci_pareto_gl_XXXXXX.json)
  hard_timeout 600 dune exec bin/powder_cli.exe -- pareto --circuit rd84 \
    --cost glitch --words 4 --max-rounds 4 --json "$pg" >/dev/null
  dune exec bin/json_check.exe -- --check-report "$pg"
  rm -f "$pg"

  echo "== pareto: bench section vs committed baseline =="
  fresh=$(mktemp /tmp/powder_ci_pareto_bench_XXXXXX.json)
  hard_timeout 600 dune exec bench/main.exe -- quick pareto \
    --out "$fresh" >/dev/null
  dune exec bin/json_check.exe -- "$fresh"
  dune exec bin/bench_diff.exe -- BENCH_powder.json "$fresh" \
    --rel-tol 0.5 --abs-floor 0.25
  rm -f "$fresh"
}

# ------------------------------------------------------------------ #
# scale                                                              #
# ------------------------------------------------------------------ #
stage_scale() {
  echo "== scale: synthetic netlist, windowed vs global checking =="
  # The bench itself fails if the windowed and global legs disagree on
  # the final power (windowing must never change the verdict, only the
  # cost of reaching it); bench_diff then gates throughput and phase
  # times against the committed trajectory point.  The baseline's scale
  # runs are recorded from a scale-only process to match this stage's
  # execution shape (see --merge in bench/main.ml); regenerate with
  #   dune exec bench/main.exe -- quick table1 glitch guard parallel serve
  #   dune exec bench/main.exe -- scale --merge
  # The 10k-gate circuit is the real target; the cap is generous
  # because single-core CI machines spend minutes in candidate
  # generation alone at this size.
  scale_json=$(mktemp /tmp/powder_ci_scale_XXXXXX.json)
  hard_timeout 900 dune exec bench/main.exe -- scale \
    --out "$scale_json"
  dune exec bin/json_check.exe -- "$scale_json"
  # Tolerance sized from measured cold-run variance on a single-core
  # box: the GC-bound generate/rank phases swing ~1.7x between
  # identical runs and CPU steal has produced ~3.5x outliers, so the
  # gate allows 3.5x and catches order-of-magnitude regressions —
  # losing the windowed check-phase win (>=18x here) still trips it.
  dune exec bin/bench_diff.exe -- BENCH_powder.json "$scale_json" \
    --rel-tol 2.5 --abs-floor 0.5
  rm -f "$scale_json"
}

# ------------------------------------------------------------------ #
# driver                                                             #
# ------------------------------------------------------------------ #
if [ "$#" -eq 0 ]; then
  set -- all
fi
for s in "$@"; do
  case "$s" in
    all)
      for t in build test smoke fuzz serve perf pareto scale; do run_stage "$t"; done ;;
    build|test|smoke|fuzz|serve|perf|pareto|scale)
      run_stage "$s" ;;
    *)
      echo "ci.sh: unknown stage '$s'" >&2
      echo "usage: ./ci.sh [build|test|smoke|fuzz|serve|perf|pareto|scale|all]..." >&2
      exit 2 ;;
  esac
done

echo "CI OK"
