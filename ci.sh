#!/bin/sh
# Minimal CI: build, test, then smoke-run the optimizer and validate
# that its machine-readable outputs actually parse.
set -eu
cd "$(dirname "$0")"

echo "== build =="
dune build

echo "== tests =="
dune runtest

echo "== smoke: optimize rd84 with full telemetry =="
tmp_json=$(mktemp /tmp/powder_ci_XXXXXX.json)
tmp_trace=$(mktemp /tmp/powder_ci_XXXXXX.jsonl)
dune exec bin/powder_cli.exe -- optimize --circuit rd84 \
  --json "$tmp_json" --trace "$tmp_trace" --metrics
dune exec bin/json_check.exe -- "$tmp_json"
dune exec bin/json_check.exe -- --jsonl "$tmp_trace"
rm -f "$tmp_json" "$tmp_trace"

echo "CI OK"
