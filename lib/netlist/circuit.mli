(** Mapped combinational netlists.

    A circuit is a DAG of nodes: primary inputs, constant drivers,
    library-cell instances, and primary outputs.  Every non-PO node
    drives a {e stem} signal named after the node; each connection of
    that stem to a sink pin is a {e branch} (identified by the sink node
    and its pin index — a PO counts as a 1-pin sink).

    The structure is mutable: the POWDER optimizer edits it in place
    ([set_fanin], [replace_stem], [add_cell], [sweep]).  Node ids are
    stable; deleted nodes stay allocated but [is_live] turns false. *)

type t
type node_id = int

type kind =
  | Pi
  | Const of bool
  | Cell of Gatelib.Cell.t * node_id array  (** fanins, by pin index *)
  | Po of node_id                           (** driver *)

type pin = { sink : node_id; pin_index : int }

(** {1 Construction} *)

val create : Gatelib.Library.t -> t
val library : t -> Gatelib.Library.t

val add_pi : t -> name:string -> node_id
val add_const : t -> ?name:string -> bool -> node_id
val add_cell : t -> ?name:string -> Gatelib.Cell.t -> node_id array -> node_id
val add_po : t -> name:string -> node_id -> node_id

val clone : t -> t
(** Deep copy sharing only the library and cells. *)

(** {1 Access} *)

val num_nodes : t -> int
(** Allocated node count (live and dead); valid ids are [0 .. num_nodes-1]. *)

val pis : t -> node_id list
val pos : t -> node_id list
val kind : t -> node_id -> kind
val name : t -> node_id -> string
val find_by_name : t -> string -> node_id option
val is_live : t -> node_id -> bool
val fanins : t -> node_id -> node_id array
(** Fanins of a cell ([[||]] for PI/Const, singleton for PO). *)

val fanouts : t -> node_id -> pin list
val num_fanouts : t -> node_id -> int
val cell_of : t -> node_id -> Gatelib.Cell.t
(** @raise Invalid_argument if the node is not a cell. *)

val po_driver : t -> node_id -> node_id
(** @raise Invalid_argument if the node is not a PO. *)

val is_po_node : t -> node_id -> bool
val drives_po : t -> node_id -> bool

val iter_live : t -> (node_id -> unit) -> unit
val live_gates : t -> node_id list
(** Live cell nodes only. *)

(** {1 Structure} *)

val topo_order : t -> node_id array
(** Live non-PO nodes in topological order (fanins first), PIs and
    constants included; POs excluded. *)

val tfo : t -> node_id -> bool array
(** [tfo c s] marks every live node in the transitive fanout of [s]
    (excluding [s] itself, including PO nodes). *)

val tfi : t -> node_id -> bool array
(** Transitive fanin of [s], excluding [s]. *)

val reaches : t -> node_id -> node_id -> bool
(** [reaches c a b]: is there a directed path from [a] to [b]? (true if
    [a = b]). *)

val dominated_region : t -> node_id -> bool array
(** [Dom(s)]: nodes all of whose paths to any PO pass through [s];
    includes [s].  Per the paper's Section 2. *)

val inputs_of_region : t -> bool array -> node_id list
(** Nodes outside the region with at least one fanout pin inside it. *)

(** {1 Edits} *)

val set_fanin : t -> node_id -> int -> node_id -> unit
(** [set_fanin c sink pin b] reconnects pin [pin] of [sink] to driver
    [b], updating fanout lists.  This is the IS2 edit.
    @raise Invalid_argument on arity violation or if it would create a
    cycle. *)

val replace_stem : t -> node_id -> node_id -> unit
(** [replace_stem c a b] moves every fanout of [a] to [b] (the OS2
    edit).  [a] keeps its fanins but loses all fanouts.
    @raise Invalid_argument if a cycle would result or [a = b]. *)

val set_cell : t -> node_id -> Gatelib.Cell.t -> unit
(** Swap the library cell of a gate for another of the same arity
    (fanins and fanouts are preserved) — the gate-resizing edit.
    @raise Invalid_argument on arity mismatch or non-cell nodes. *)

val sweep : t -> node_id list
(** Kill every non-PO-driving node with no fanouts, transitively;
    returns the list of killed node ids. *)

(** {1 Transactions}

    An undo journal turns a group of edits into a transaction: open it
    with {!journal_begin}, apply any sequence of [set_fanin] /
    [replace_stem] / [set_cell] / [add_cell] / [sweep] edits, then
    either {!journal_commit} (keep them, drop the journal) or
    {!journal_rollback} (replay inverse edits in reverse order).
    Rollback also restores the fresh-name counter, so a rolled-back
    transaction leaves no trace in future generated names.  One caveat:
    positions inside fanout pin lists are restored up to membership, not
    byte-identical order (order there is not semantically meaningful).
    Journals do not nest. *)

val journal_begin : t -> unit
(** @raise Invalid_argument if a journal is already open. *)

val journal_active : t -> bool

val journal_commit : t -> unit
(** Accept all edits since {!journal_begin} and close the journal.
    @raise Invalid_argument if no journal is open. *)

val journal_rollback : t -> unit
(** Undo all edits since {!journal_begin} and close the journal.
    @raise Invalid_argument if no journal is open. *)

val overwrite : t -> t -> unit
(** [overwrite dst src] makes [dst] structurally identical to [src] by
    blitting [src]'s state into [dst] in place, so existing handles on
    [dst] observe the new contents.  [src] must not be used afterwards
    (the two would share mutable state).  Both circuits must share the
    same library value.
    @raise Invalid_argument if [dst] has an open journal or the
    libraries differ. *)

(** {1 Edit log}

    Every structural mutation ([set_fanin], [replace_stem], [set_cell],
    [add_cell], [add_po], [sweep], journal rollback, …) appends to a
    per-circuit edit log the ids of the nodes whose {e local} derived
    quantities — fanins, fanout load, cell parameters, liveness — may
    have changed.  Incremental consumers (STA, the power estimator) hold
    a cursor and pull the suffix after each edit burst instead of
    rescanning the netlist.  The log is a conservative superset: an id
    may appear more than once, and a logged node whose values turn out
    unchanged is harmless. *)

type edit_cursor

val edit_cursor : t -> edit_cursor
(** Position at the current end of the edit log. *)

val edits_since : t -> edit_cursor -> node_id list option
(** Node ids logged since the cursor was taken (oldest first, possibly
    with duplicates; ids may be dead or — after a rolled-back alloc —
    out of range).  [None] means the log was invalidated by a wholesale
    {!overwrite}: the consumer must recompute from scratch and take a
    fresh cursor. *)

val would_cycle_stem : t -> node_id -> node_id -> bool
(** Would [replace_stem a b] create a cycle? *)

val would_cycle_pin : t -> node_id -> int -> node_id -> bool
(** Would [set_fanin sink pin b] create a cycle? *)

(** {1 Metrics and checks} *)

val area : t -> float
(** Total area of live cells. *)

val gate_count : t -> int

val load_of : t -> node_id -> float
(** Capacitive load on the stem of [s]: sum of sink pin capacitances,
    plus {!Gatelib.Library.default_po_load} per PO sink, plus the
    driver's own output capacitance. *)

val pin_cap : t -> pin -> float
(** Capacitance of one branch. *)

val validate : t -> (unit, string) result
(** Structural invariants: fanin/fanout consistency, acyclicity,
    arities, liveness of referenced nodes. *)

val pp : Format.formatter -> t -> unit
val pp_stats : Format.formatter -> t -> unit
