module Cell = Gatelib.Cell
module Library = Gatelib.Library

type node_id = int

type kind =
  | Pi
  | Const of bool
  | Cell of Gatelib.Cell.t * node_id array
  | Po of node_id

type pin = { sink : node_id; pin_index : int }

type node = {
  id : node_id;
  mutable name : string;
  mutable kind : kind;
  mutable fanouts : pin list;
  mutable live : bool;
}

(* Inverse edits recorded while a journal is open.  Replayed in reverse
   (most recent first) by [journal_rollback]. *)
type journal_op =
  | U_set_fanin of { sink : node_id; pin : int; old_driver : node_id }
  | U_replace_stem of { a : node_id; moved : pin list }
  | U_set_cell of { id : node_id; old_cell : Cell.t }
  | U_alloc of node_id
  | U_kill of node_id

type journal = { mutable ops : journal_op list; saved_fresh : int }

type t = {
  lib : Library.t;
  mutable nodes : node array;
  mutable count : int;
  mutable pis_rev : node_id list;
  mutable pos_rev : node_id list;
  names : (string, node_id) Hashtbl.t;
  mutable fresh : int;
  mutable version : int;
  mutable topo_cache : (int * node_id array) option;
  mutable journal : journal option;
  (* Edit log: every structural mutation appends the ids whose local
     timing/power inputs (fanins, fanout loads, cell, liveness) may have
     changed.  Consumers hold a cursor and pull the suffix; a wholesale
     [overwrite] bumps the generation, invalidating all cursors. *)
  mutable edits : node_id list;
  mutable edits_len : int;
  mutable edits_gen : int;
}

let dummy_node = { id = -1; name = ""; kind = Pi; fanouts = []; live = false }

let create lib =
  {
    lib;
    nodes = Array.make 64 dummy_node;
    count = 0;
    pis_rev = [];
    pos_rev = [];
    names = Hashtbl.create 64;
    fresh = 0;
    version = 0;
    topo_cache = None;
    journal = None;
    edits = [];
    edits_len = 0;
    edits_gen = 0;
  }

let record t op =
  match t.journal with None -> () | Some j -> j.ops <- op :: j.ops

let log_edit t id =
  t.edits <- id :: t.edits;
  t.edits_len <- t.edits_len + 1

type edit_cursor = { cur_gen : int; cur_len : int }

let edit_cursor t = { cur_gen = t.edits_gen; cur_len = t.edits_len }

let edits_since t cur =
  if cur.cur_gen <> t.edits_gen then None
  else begin
    let n = t.edits_len - cur.cur_len in
    let rec take acc k l =
      if k = 0 then acc
      else match l with [] -> acc | x :: rest -> take (x :: acc) (k - 1) rest
    in
    Some (take [] n t.edits)
  end

let library t = t.lib
let num_nodes t = t.count

let node t id =
  if id < 0 || id >= t.count then invalid_arg "Circuit: bad node id";
  t.nodes.(id)

let grow t =
  if t.count = Array.length t.nodes then begin
    let bigger = Array.make (2 * Array.length t.nodes) dummy_node in
    Array.blit t.nodes 0 bigger 0 t.count;
    t.nodes <- bigger
  end

let fresh_name t prefix =
  let rec try_next () =
    let candidate = Printf.sprintf "%s%d" prefix t.fresh in
    t.fresh <- t.fresh + 1;
    if Hashtbl.mem t.names candidate then try_next () else candidate
  in
  try_next ()

let register_name t name id =
  if Hashtbl.mem t.names name then
    invalid_arg ("Circuit: duplicate name " ^ name);
  Hashtbl.add t.names name id

let touch t =
  t.version <- t.version + 1;
  t.topo_cache <- None

let alloc t ~name kind =
  touch t;
  grow t;
  let id = t.count in
  register_name t name id;
  t.nodes.(id) <- { id; name; kind; fanouts = []; live = true };
  t.count <- t.count + 1;
  record t (U_alloc id);
  log_edit t id;
  id

let add_pi t ~name =
  let id = alloc t ~name Pi in
  t.pis_rev <- id :: t.pis_rev;
  id

let add_const t ?name b =
  let name =
    match name with
    | Some n -> n
    | None -> fresh_name t (if b then "const1_" else "const0_")
  in
  alloc t ~name (Const b)

let add_fanout t driver pin =
  let d = node t driver in
  log_edit t driver;
  d.fanouts <- pin :: d.fanouts

let remove_fanout t driver pin =
  let d = node t driver in
  log_edit t driver;
  let rec drop_one = function
    | [] -> invalid_arg "Circuit: fanout pin not found"
    | p :: rest ->
      if p.sink = pin.sink && p.pin_index = pin.pin_index then rest
      else p :: drop_one rest
  in
  d.fanouts <- drop_one d.fanouts

let add_cell t ?name cell fanins =
  if Array.length fanins <> Cell.arity cell then
    invalid_arg "Circuit.add_cell: arity mismatch";
  let name = match name with Some n -> n | None -> fresh_name t "n" in
  Array.iter (fun f -> if not (node t f).live then invalid_arg "Circuit.add_cell: dead fanin") fanins;
  let id = alloc t ~name (Cell (cell, Array.copy fanins)) in
  Array.iteri (fun i f -> add_fanout t f { sink = id; pin_index = i }) fanins;
  id

let add_po t ~name driver =
  ignore (node t driver);
  let id = alloc t ~name (Po driver) in
  add_fanout t driver { sink = id; pin_index = 0 };
  t.pos_rev <- id :: t.pos_rev;
  id

let pis t = List.rev t.pis_rev
let pos t = List.rev t.pos_rev
let kind t id = (node t id).kind
let name t id = (node t id).name
let find_by_name t n = Hashtbl.find_opt t.names n
let is_live t id = (node t id).live
let fanouts t id = (node t id).fanouts
let num_fanouts t id = List.length (node t id).fanouts

let fanins t id =
  match (node t id).kind with
  | Pi | Const _ -> [||]
  | Cell (_, fs) -> fs
  | Po d -> [| d |]

let cell_of t id =
  match (node t id).kind with
  | Cell (c, _) -> c
  | Pi | Const _ | Po _ -> invalid_arg "Circuit.cell_of: not a cell"

let po_driver t id =
  match (node t id).kind with
  | Po d -> d
  | Pi | Const _ | Cell _ -> invalid_arg "Circuit.po_driver: not a PO"

let is_po_node t id = match (node t id).kind with Po _ -> true | Pi | Const _ | Cell _ -> false

let drives_po t id =
  List.exists (fun p -> is_po_node t p.sink) (node t id).fanouts

let iter_live t f =
  for id = 0 to t.count - 1 do
    if t.nodes.(id).live then f id
  done

let live_gates t =
  let acc = ref [] in
  for id = t.count - 1 downto 0 do
    let n = t.nodes.(id) in
    match n.kind with
    | Cell _ when n.live -> acc := id :: !acc
    | Cell _ | Pi | Const _ | Po _ -> ()
  done;
  !acc

let clone t =
  let nodes =
    Array.map
      (fun n ->
        { n with
          kind =
            (match n.kind with
            | Cell (c, fs) -> Cell (c, Array.copy fs)
            | (Pi | Const _ | Po _) as k -> k);
          fanouts = n.fanouts })
      t.nodes
  in
  {
    t with
    nodes;
    names = Hashtbl.copy t.names;
    journal = None;
  }

(* ------------------------------------------------------------------ *)
(* Traversals                                                          *)
(* ------------------------------------------------------------------ *)

let rec topo_order t =
  match t.topo_cache with
  | Some (v, order) when v = t.version -> order
  | Some _ | None ->
    let order = compute_topo_order t in
    t.topo_cache <- Some (t.version, order);
    order

and compute_topo_order t =
  (* Kahn over live non-PO nodes. *)
  let indeg = Array.make t.count 0 in
  iter_live t (fun id ->
      match (node t id).kind with
      | Cell (_, fs) -> indeg.(id) <- Array.length fs
      | Pi | Const _ -> indeg.(id) <- 0
      | Po _ -> indeg.(id) <- -1 (* excluded *));
  let queue = Queue.create () in
  iter_live t (fun id -> if indeg.(id) = 0 then Queue.add id queue);
  let order = Array.make t.count 0 in
  let k = ref 0 in
  while not (Queue.is_empty queue) do
    let id = Queue.pop queue in
    order.(!k) <- id;
    incr k;
    List.iter
      (fun p ->
        if (node t p.sink).live && indeg.(p.sink) > 0 then begin
          indeg.(p.sink) <- indeg.(p.sink) - 1;
          if indeg.(p.sink) = 0 then Queue.add p.sink queue
        end)
      (node t id).fanouts
  done;
  Array.sub order 0 !k

let tfo t s =
  let marked = Array.make t.count false in
  let rec visit id =
    List.iter
      (fun p ->
        if (node t p.sink).live && not marked.(p.sink) then begin
          marked.(p.sink) <- true;
          visit p.sink
        end)
      (node t id).fanouts
  in
  visit s;
  marked

let tfi t s =
  let marked = Array.make t.count false in
  let rec visit id =
    Array.iter
      (fun f ->
        if not marked.(f) then begin
          marked.(f) <- true;
          visit f
        end)
      (fanins t id)
  in
  visit s;
  marked

let reaches t a b =
  if a = b then true
  else begin
    let seen = Array.make t.count false in
    let rec visit id =
      id = b
      || List.exists
           (fun p ->
             (node t p.sink).live && not seen.(p.sink)
             && begin
                  seen.(p.sink) <- true;
                  visit p.sink
                end)
           (node t id).fanouts
    in
    visit a
  end

let dominated_region t s =
  (* Process TFI(s) union {s} in reverse topological order; a node is
     dominated iff it has fanouts and every fanout sink is [s]-dominated
     (PO sinks are never dominated). *)
  let in_tfi = tfi t s in
  in_tfi.(s) <- true;
  let dom = Array.make t.count false in
  dom.(s) <- true;
  let order = topo_order t in
  for k = Array.length order - 1 downto 0 do
    let id = order.(k) in
    if in_tfi.(id) && id <> s then begin
      let fo = (node t id).fanouts in
      let all_dominated =
        fo <> []
        && List.for_all
             (fun p -> (not (is_po_node t p.sink)) && dom.(p.sink))
             fo
      in
      if all_dominated then dom.(id) <- true
    end
  done;
  dom

let inputs_of_region t region =
  let result = ref [] in
  for id = t.count - 1 downto 0 do
    let n = t.nodes.(id) in
    if n.live && not region.(id)
       && List.exists (fun p -> p.sink < t.count && region.(p.sink)) n.fanouts
    then result := id :: !result
  done;
  !result

(* ------------------------------------------------------------------ *)
(* Edits                                                               *)
(* ------------------------------------------------------------------ *)

let would_cycle_pin t sink _pin b =
  (* New edge b -> sink: cycle iff sink reaches b. *)
  (not (is_po_node t sink)) && reaches t sink b

let would_cycle_stem t a b =
  a = b
  || List.exists
       (fun p -> (not (is_po_node t p.sink)) && reaches t p.sink b)
       (node t a).fanouts

let set_fanin t sink pin b =
  touch t;
  let n = node t sink in
  if not (node t b).live then invalid_arg "Circuit.set_fanin: dead driver";
  match n.kind with
  | Cell (c, fs) ->
    if pin < 0 || pin >= Array.length fs then
      invalid_arg "Circuit.set_fanin: bad pin";
    if fs.(pin) = b then ()
    else begin
      if would_cycle_pin t sink pin b then
        invalid_arg "Circuit.set_fanin: would create a cycle";
      record t (U_set_fanin { sink; pin; old_driver = fs.(pin) });
      log_edit t sink;
      remove_fanout t fs.(pin) { sink; pin_index = pin };
      fs.(pin) <- b;
      n.kind <- Cell (c, fs);
      add_fanout t b { sink; pin_index = pin }
    end
  | Po d ->
    if pin <> 0 then invalid_arg "Circuit.set_fanin: bad PO pin";
    if d = b then ()
    else begin
      record t (U_set_fanin { sink; pin = 0; old_driver = d });
      log_edit t sink;
      remove_fanout t d { sink; pin_index = 0 };
      n.kind <- Po b;
      add_fanout t b { sink; pin_index = 0 }
    end
  | Pi | Const _ -> invalid_arg "Circuit.set_fanin: node has no fanins"

let replace_stem t a b =
  touch t;
  if a = b then invalid_arg "Circuit.replace_stem: a = b";
  if not (node t b).live then invalid_arg "Circuit.replace_stem: dead driver";
  if would_cycle_stem t a b then
    invalid_arg "Circuit.replace_stem: would create a cycle";
  let moved = (node t a).fanouts in
  record t (U_replace_stem { a; moved });
  log_edit t a;
  (node t a).fanouts <- [];
  List.iter
    (fun p ->
      let s = node t p.sink in
      log_edit t p.sink;
      (match s.kind with
      | Cell (c, fs) ->
        fs.(p.pin_index) <- b;
        s.kind <- Cell (c, fs)
      | Po _ -> s.kind <- Po b
      | Pi | Const _ -> assert false);
      add_fanout t b p)
    moved

let set_cell t id cell =
  touch t;
  let n = node t id in
  match n.kind with
  | Cell (old_cell, fs) ->
    if Cell.arity cell <> Cell.arity old_cell then
      invalid_arg "Circuit.set_cell: arity mismatch";
    record t (U_set_cell { id; old_cell });
    log_edit t id;
    Array.iter (fun f -> log_edit t f) fs;
    n.kind <- Cell (cell, fs)
  | Pi | Const _ | Po _ -> invalid_arg "Circuit.set_cell: not a cell"

let sweep t =
  touch t;
  let killed = ref [] in
  let rec kill id =
    let n = node t id in
    if n.live && n.fanouts = [] then
      match n.kind with
      | Cell (_, fs) ->
        n.live <- false;
        Hashtbl.remove t.names n.name;
        record t (U_kill id);
        log_edit t id;
        killed := id :: !killed;
        Array.iteri
          (fun i f ->
            remove_fanout t f { sink = id; pin_index = i };
            kill f)
          fs
      | Const _ ->
        n.live <- false;
        Hashtbl.remove t.names n.name;
        record t (U_kill id);
        log_edit t id;
        killed := id :: !killed
      | Pi | Po _ -> ()
  in
  for id = 0 to t.count - 1 do
    kill id
  done;
  !killed

(* ------------------------------------------------------------------ *)
(* Transactions                                                        *)
(* ------------------------------------------------------------------ *)

let journal_active t = t.journal <> None

let journal_begin t =
  if journal_active t then invalid_arg "Circuit.journal_begin: journal already open";
  t.journal <- Some { ops = []; saved_fresh = t.fresh }

let journal_commit t =
  match t.journal with
  | None -> invalid_arg "Circuit.journal_commit: no open journal"
  | Some _ -> t.journal <- None

(* Undo one alloc.  Allocations are undone strictly LIFO (every alloc in
   a transaction is journaled), so the node being removed is always the
   topmost slot and the id space shrinks back exactly. *)
let undo_alloc t id =
  if id <> t.count - 1 then
    invalid_arg "Circuit journal: alloc undo out of order";
  log_edit t id;
  let n = t.nodes.(id) in
  (match n.kind with
  | Cell (_, fs) ->
    Array.iteri (fun i f -> remove_fanout t f { sink = id; pin_index = i }) fs
  | Const _ -> ()
  | Pi -> t.pis_rev <- List.tl t.pis_rev
  | Po d ->
    remove_fanout t d { sink = id; pin_index = 0 };
    t.pos_rev <- List.tl t.pos_rev);
  Hashtbl.remove t.names n.name;
  t.nodes.(id) <- dummy_node;
  t.count <- t.count - 1

(* Resurrect a node removed by [sweep].  Its fanins are already live
   (kill records sinks before their fanins, so reverse replay restores
   fanins first).  Fanout-list positions within each fanin are not
   byte-identical to the pre-kill order — only membership is — which is
   fine for every consumer (validate, simulation, traversals). *)
let resurrect t id =
  let n = t.nodes.(id) in
  n.live <- true;
  log_edit t id;
  register_name t n.name id;
  match n.kind with
  | Cell (_, fs) ->
    Array.iteri (fun i f -> add_fanout t f { sink = id; pin_index = i }) fs
  | Const _ -> ()
  | Pi | Po _ -> assert false

let unreplace_stem t a moved =
  List.iter
    (fun p ->
      let s = node t p.sink in
      log_edit t p.sink;
      (match s.kind with
      | Cell (c, fs) ->
        remove_fanout t fs.(p.pin_index) p;
        fs.(p.pin_index) <- a;
        s.kind <- Cell (c, fs)
      | Po d ->
        remove_fanout t d p;
        s.kind <- Po a
      | Pi | Const _ -> assert false);
      add_fanout t a p)
    (List.rev moved)

let undo_op t = function
  | U_set_fanin { sink; pin; old_driver } -> set_fanin t sink pin old_driver
  | U_replace_stem { a; moved } -> unreplace_stem t a moved
  | U_set_cell { id; old_cell } -> set_cell t id old_cell
  | U_alloc id -> undo_alloc t id
  | U_kill id -> resurrect t id

let journal_rollback t =
  match t.journal with
  | None -> invalid_arg "Circuit.journal_rollback: no open journal"
  | Some j ->
    (* Disable recording before replay so inverse edits are not
       themselves journaled. *)
    t.journal <- None;
    List.iter (undo_op t) j.ops;
    t.fresh <- j.saved_fresh;
    touch t

let overwrite dst src =
  if journal_active dst then
    invalid_arg "Circuit.overwrite: destination has an open journal";
  if dst.lib != src.lib then
    invalid_arg "Circuit.overwrite: library mismatch";
  dst.nodes <- src.nodes;
  dst.count <- src.count;
  dst.pis_rev <- src.pis_rev;
  dst.pos_rev <- src.pos_rev;
  Hashtbl.reset dst.names;
  Hashtbl.iter (fun k v -> Hashtbl.add dst.names k v) src.names;
  dst.fresh <- src.fresh;
  dst.edits <- [];
  dst.edits_len <- 0;
  dst.edits_gen <- dst.edits_gen + 1;
  touch dst

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let area t =
  let total = ref 0.0 in
  iter_live t (fun id ->
      match (node t id).kind with
      | Cell (c, _) -> total := !total +. c.Cell.area
      | Pi | Const _ | Po _ -> ());
  !total

let gate_count t =
  let n = ref 0 in
  iter_live t (fun id ->
      match (node t id).kind with
      | Cell _ -> incr n
      | Pi | Const _ | Po _ -> ());
  !n

let pin_cap t p =
  match (node t p.sink).kind with
  | Cell (c, _) -> c.Cell.pin_caps.(p.pin_index)
  | Po _ -> Library.default_po_load
  | Pi | Const _ -> 0.0

let load_of t id =
  let own =
    match (node t id).kind with
    | Cell (c, _) -> c.Cell.out_cap
    | Pi | Const _ | Po _ -> 0.0
  in
  List.fold_left (fun acc p -> acc +. pin_cap t p) own (node t id).fanouts

(* ------------------------------------------------------------------ *)
(* Validation and printing                                             *)
(* ------------------------------------------------------------------ *)

let validate t =
  let error fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let check_node id =
    let n = t.nodes.(id) in
    if not n.live then Ok ()
    else begin
      (* every fanin edge has a matching fanout entry *)
      let fanin_ok =
        Array.to_list (fanins t id)
        |> List.for_all (fun f ->
               (t.nodes.(f)).live
               && List.exists
                    (fun p -> p.sink = id)
                    (t.nodes.(f)).fanouts)
      in
      if not fanin_ok then error "node %s: fanin/fanout inconsistency" n.name
      else begin
        (* every fanout entry points back via the right pin *)
        let fanout_ok =
          List.for_all
            (fun p ->
              (t.nodes.(p.sink)).live
              &&
              match (t.nodes.(p.sink)).kind with
              | Cell (_, fs) ->
                p.pin_index >= 0
                && p.pin_index < Array.length fs
                && fs.(p.pin_index) = id
              | Po d -> p.pin_index = 0 && d = id
              | Pi | Const _ -> false)
            n.fanouts
        in
        if not fanout_ok then error "node %s: dangling fanout" n.name
        else Ok ()
      end
    end
  in
  let rec check_all id =
    if id >= t.count then Ok ()
    else match check_node id with Ok () -> check_all (id + 1) | Error e -> Error e
  in
  match check_all 0 with
  | Error e -> Error e
  | Ok () ->
    (* acyclicity: topo order must reach all live non-PO nodes *)
    let live_non_po = ref 0 in
    iter_live t (fun id -> if not (is_po_node t id) then incr live_non_po);
    if Array.length (topo_order t) <> !live_non_po then
      Error "cycle detected: topological order is incomplete"
    else Ok ()

let pp fmt t =
  Format.fprintf fmt "@[<v>";
  iter_live t (fun id ->
      let n = t.nodes.(id) in
      match n.kind with
      | Pi -> Format.fprintf fmt "input %s@," n.name
      | Const b -> Format.fprintf fmt "const %s = %b@," n.name b
      | Po d -> Format.fprintf fmt "output %s <- %s@," n.name (t.nodes.(d)).name
      | Cell (c, fs) ->
        Format.fprintf fmt "%s = %s(%s)@," n.name c.Cell.name
          (String.concat ", "
             (Array.to_list (Array.map (fun f -> (t.nodes.(f)).name) fs))));
  Format.fprintf fmt "@]"

let pp_stats fmt t =
  Format.fprintf fmt "gates=%d area=%.0f pis=%d pos=%d" (gate_count t)
    (area t) (List.length t.pis_rev) (List.length t.pos_rev)
