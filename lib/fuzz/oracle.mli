(** Differential oracle for permissibility verdicts.

    Runs the same substitution through the three independent proof
    backends — exhaustive simulation (when the circuit has at most
    {!exhaustive_pi_limit} PIs), the BDD engine ({!Atpg.Bddcheck}) and
    the SAT miter — and compares.  On a correct engine the decided
    verdicts always agree; any disagreement is a {e split}, counted in
    the [fuzz/oracle_split] metric and resolved, when the circuit is
    narrow enough, by forcing the exhaustive path as tie-breaker
    (ground truth by enumeration).  Counterexamples returned by a [No]
    verdict are additionally replayed on the concrete netlist: a vector
    that fails to distinguish the two sides marks the verdict as
    suspect ([bad_cex]) and is treated as a split. *)

type backend = Exhaustive | Sat | Bdd

val backend_name : backend -> string

type verdict =
  | Yes      (** proven permissible *)
  | No       (** refuted with a counterexample *)
  | Abstain  (** backend gave up (budget, or circuit too wide) *)

type result = {
  verdicts : (backend * verdict) list;  (** one entry per backend, in
                                            [Exhaustive; Sat; Bdd] order *)
  split : bool;             (** decided backends disagreed, or a
                                counterexample failed to replay *)
  resolved_by : backend option;
      (** [Some Exhaustive] when the tie-breaker settled a split *)
  final : verdict;          (** consensus, or the tie-breaker's answer;
                                [No] (conservative) for an unresolved
                                split; [Abstain] when nobody decided *)
  bad_cex : bool;
}

val exhaustive_pi_limit : int
(** PI count up to which the exhaustive backend participates (13). *)

val tiebreak_pi_limit : int
(** Hard cap up to which a split forces the exhaustive path even though
    the normal oracle run abstained (16). *)

val inject_flip : backend -> unit
(** Test-only, one-shot: the next decided verdict from this backend is
    inverted, manufacturing a split so the tie-breaker path and the
    [fuzz/oracle_split] accounting can be exercised. *)

val clear_injection : unit -> unit

val check :
  ?deadline:Obs.Deadline.t -> Netlist.Circuit.t -> Powder.Subst.t -> result
(** Cross-check one substitution.  Increments [fuzz/oracle_checks],
    [fuzz/oracle_split], [fuzz/oracle_tiebreak] and
    [fuzz/oracle_bad_cex] as appropriate.  The circuit is left
    untouched. *)
