module Circuit = Netlist.Circuit
module Check = Powder.Check
module Subst = Powder.Subst
module Metrics = Obs.Metrics

type backend = Exhaustive | Sat | Bdd

let backend_name = function
  | Exhaustive -> "exhaustive"
  | Sat -> "sat"
  | Bdd -> "bdd"

type verdict = Yes | No | Abstain

type result = {
  verdicts : (backend * verdict) list;
  split : bool;
  resolved_by : backend option;
  final : verdict;
  bad_cex : bool;
}

let exhaustive_pi_limit = 13
let tiebreak_pi_limit = 16

let checks_c = Metrics.counter "fuzz/oracle_checks"
let split_c = Metrics.counter "fuzz/oracle_split"
let tiebreak_c = Metrics.counter "fuzz/oracle_tiebreak"
let bad_cex_c = Metrics.counter "fuzz/oracle_bad_cex"

let injected : backend option ref = ref None
let inject_flip b = injected := Some b
let clear_injection () = injected := None

let take_flip b =
  match !injected with
  | Some b' when b' = b ->
    injected := None;
    true
  | _ -> false

(* Replay a counterexample on the concrete netlist: the vector must
   flip at least one PO between the original and the substituted
   circuit, else the refutation is bogus.  Missing PIs are don't-care
   and default to false. *)
let cex_distinguishes c s vec =
  let assignment =
    List.map
      (fun pi ->
        match List.assoc_opt (Circuit.name c pi) vec with
        | Some v -> v
        | None -> false)
      (Circuit.pis c)
  in
  match Subst.apply_to_clone c s with
  | exception Invalid_argument _ -> false
  | clone ->
    let before = Sim.Engine.eval_single c assignment in
    let after = Sim.Engine.eval_single clone assignment in
    List.exists
      (fun (name, v) ->
        match List.assoc_opt name after with
        | Some v' -> v <> v'
        | None -> true)
      before

let run_backend ?deadline c s backend =
  let npis = List.length (Circuit.pis c) in
  let raw =
    match backend with
    | Sat -> Some (Check.permissible ~exhaustive_limit:0 ~engine:`Sat ?deadline c s)
    | Bdd -> Some (Check.permissible ~exhaustive_limit:0 ~engine:`Bdd ?deadline c s)
    | Exhaustive ->
      if npis <= exhaustive_pi_limit then
        Some (Check.permissible ~exhaustive_limit:exhaustive_pi_limit ?deadline c s)
      else None
  in
  let verdict, bad =
    match raw with
    | None | Some (Check.Gave_up _) -> (Abstain, false)
    | Some Check.Permissible -> (Yes, false)
    | Some (Check.Not_permissible vec) ->
      if cex_distinguishes c s vec then (No, false) else (No, true)
  in
  let verdict =
    if verdict <> Abstain && take_flip backend then
      match verdict with Yes -> No | No -> Yes | Abstain -> Abstain
    else verdict
  in
  (verdict, bad)

let check ?deadline c s =
  Metrics.incr checks_c;
  let backends = [ Exhaustive; Sat; Bdd ] in
  let runs = List.map (fun b -> (b, run_backend ?deadline c s b)) backends in
  let verdicts = List.map (fun (b, (v, _)) -> (b, v)) runs in
  let bad_cex = List.exists (fun (_, (_, bad)) -> bad) runs in
  let decided = List.filter (fun (_, v) -> v <> Abstain) verdicts in
  let disagree =
    match decided with
    | [] | [ _ ] -> false
    | (_, v0) :: rest -> List.exists (fun (_, v) -> v <> v0) rest
  in
  let split = disagree || bad_cex in
  if bad_cex then Metrics.incr bad_cex_c;
  if split then Metrics.incr split_c;
  if not split then
    let final = match decided with (_, v) :: _ -> v | [] -> Abstain in
    { verdicts; split; resolved_by = None; final; bad_cex }
  else begin
    (* tie-break by enumeration: ground truth whenever the circuit is
       narrow enough, even past the oracle's normal exhaustive cutoff *)
    let npis = List.length (Circuit.pis c) in
    if npis <= tiebreak_pi_limit then begin
      Metrics.incr tiebreak_c;
      let final =
        match Check.permissible ~exhaustive_limit:tiebreak_pi_limit ?deadline c s with
        | Check.Permissible -> Yes
        | Check.Not_permissible _ -> No
        | Check.Gave_up _ -> No
      in
      { verdicts; split; resolved_by = Some Exhaustive; final; bad_cex }
    end
    else { verdicts; split; resolved_by = None; final = No; bad_cex }
  end
