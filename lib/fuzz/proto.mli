(** Malformed-job corpus for the [powder_serve] JSONL protocol.

    A deterministic battery of hostile input lines — truncated JSON,
    unknown operations and fields, mistyped and absurd option values,
    bad circuit payloads — plus seeded random truncations/corruptions
    of a valid submit line.  The contract under test (see
    [Serve.Protocol] and the serve chaos harness): the server answers
    {e every} one of these with a typed error event and keeps serving;
    none of them may kill the process or poison the queue. *)

val valid_submit : ?id:string -> ?circuit:string -> unit -> string
(** A well-formed submit line, used as the mutation base and as the
    well-formed traffic interleaved between corpus lines in tests. *)

val corpus : ?seed:int64 -> unit -> (string * string) array
(** [(label, line)] pairs: the fixed battery followed by seeded random
    truncations and single-byte corruptions of {!valid_submit}.  The
    same seed always yields the same corpus.  Labels are unique. *)

val duplicate_pair : id:string -> circuit:string -> string * string
(** Two well-formed submit lines sharing one job id — the first must be
    accepted, the second rejected with [duplicate_id]. *)
