module Circuit = Netlist.Circuit
module Engine = Sim.Engine
module Rng = Sim.Rng
module Guard = Powder.Guard
module Optimizer = Powder.Optimizer
module Metrics = Obs.Metrics
module Json = Obs.Json

type config = {
  seed : int64;
  cases : int;
  budget_seconds : float option;
  max_ins : int;
  candidates_per_case : int;
  words : int;
  out_dir : string option;
  inject : Guard.fault option;
  forge_window : bool;
  shrink_max_steps : int;
  jobs : int;
}

let default_config =
  {
    seed = 1L;
    cases = 0;
    budget_seconds = Some 20.0;
    max_ins = 10;
    candidates_per_case = 6;
    words = 4;
    out_dir = None;
    inject = None;
    forge_window = false;
    shrink_max_steps = 400;
    jobs = 1;
  }

type failure = {
  case : int;
  kind : string;
  detail : string;
  gates : int;
  shrink_steps : int;
  bundle_path : string option;
}

type report = {
  cases_run : int;
  checks : int;
  oracle_splits : int;
  window_checks : int;
  accepts : int;
  failures : failure list;
  shrink_steps : int;
  injected_caught : bool;
  jobs : int;
  elapsed_seconds : float;
}

let cases_c = Metrics.counter "fuzz/cases"
let failures_c = Metrics.counter "fuzz/failures"

(* Shrink predicates must reproduce identically at replay time, so they
   depend only on the case seed and these fixed constants — never on
   the campaign config. *)
let pred_words = 4
let pred_candidates = 6
let pred_window_cut = 8

(* PO equivalence of two same-interface circuits: exhaustive whenever
   the pattern set can enumerate the input space, Monte-Carlo with a
   shared derived stream otherwise. *)
let equivalent ?(words = 16) ~seed a b =
  let npis = List.length (Circuit.pis a) in
  let ea = Engine.create a ~words and eb = Engine.create b ~words in
  if npis <= 20 && 1 lsl npis <= 64 * words then begin
    Engine.exhaustive ea;
    Engine.exhaustive eb
  end
  else begin
    Engine.randomize ea (Rng.stream seed "fuzz/equiv");
    Engine.randomize eb (Rng.stream seed "fuzz/equiv")
  end;
  Engine.equivalent_on_patterns ea eb

(* Matches the shape known to exercise the full accept/reject funnel
   (cf. the guard fault-injection tests): default candidate knobs, a
   few rounds, bounded wall clock.  [words = 1] deliberately leaves
   signature aliasing so some candidates reach the exact check and get
   refuted there — that is the path the forged-verdict fault rides. *)
let opt_config ~case_seed ~words ~verify =
  {
    Optimizer.default_config with
    words;
    seed = Rng.derive case_seed "fuzz/opt";
    max_rounds = 4;
    max_substitutions = 50;
    check_engine = `Sat;
    verify_applies = verify;
    checkpoint_every = 0;
    checkpoint_file = None;
    check_seconds = Some 2.0;
    round_seconds = None;
    run_seconds = Some 10.0;
  }

let gain_identity_holds (r : Optimizer.report) =
  let summed =
    List.fold_left
      (fun acc (_, st) -> acc +. st.Optimizer.power_gain)
      0.0 r.Optimizer.by_class
  in
  let delta = r.Optimizer.initial_power -. r.Optimizer.final_power in
  Float.abs (summed -. delta)
  <= 1e-6 *. Float.max 1.0 (Float.abs r.Optimizer.initial_power)

let candidates_of ~case_seed ~words c k =
  let eng = Engine.create c ~words in
  Engine.randomize eng (Rng.stream case_seed "fuzz/pat");
  let est = Power.Estimator.create eng in
  let cfg =
    {
      Powder.Candidates.classes = Powder.Subst.all_klasses;
      per_target = 2;
      pool_limit = 30;
      require_positive = false;
      credit_downstream = false;
      index = Powder.Candidates.Hash;
    }
  in
  let all = Powder.Candidates.generate ~config:cfg est in
  (* metamorphic: the class-indexed path and the per-signal reference
     scan must emit the identical candidate list *)
  let all_scan =
    Powder.Candidates.generate
      ~config:{ cfg with Powder.Candidates.index = Powder.Candidates.Scan }
      est
  in
  if
    not
      (List.length all = List.length all_scan
      && List.for_all2
           (fun (s1, g1) (s2, g2) ->
             s1 = s2
             && Float.equal (Powder.Subst.total_gain g1)
                  (Powder.Subst.total_gain g2))
           all all_scan)
  then failwith "candidates: hash/scan index modes disagree";
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: rest -> x :: take (n - 1) rest
  in
  (eng, take k all)

(* ------------------------------------------------------------------ *)
(* Failure predicates (shared between shrinking and bundle replay).    *)
(* ------------------------------------------------------------------ *)

(* One bounded optimizer run on a private clone; reports whether the
   run broke validity or I/O equivalence.  [inject] re-arms the guard
   fault for every evaluation, which is what lets the shrinker hunt for
   the smallest circuit on which the forged apply still corrupts. *)
let optimizer_breaks ?inject ~case_seed ~words c =
  let pre = Circuit.clone c in
  let cl = Circuit.clone c in
  let verify = inject = None in
  (match inject with Some f -> Guard.inject f | None -> ());
  let outcome =
    match Optimizer.optimize ~config:(opt_config ~case_seed ~words ~verify) cl with
    | (_ : Optimizer.report) -> `Finished
    | exception e -> `Crashed (Printexc.to_string e)
  in
  Guard.clear_injection ();
  match outcome with
  | `Crashed _ -> true
  | `Finished -> (
    match Circuit.validate cl with
    | Error _ -> true
    | Ok () -> not (equivalent ~seed:case_seed pre cl))

let injected_fails ~case_seed ~fault c =
  optimizer_breaks ~inject:fault ~case_seed ~words:1 c

let gain_identity_fails ~case_seed c =
  let cl = Circuit.clone c in
  match
    Optimizer.optimize
      ~config:(opt_config ~case_seed ~words:pred_words ~verify:true)
      cl
  with
  | r -> not (gain_identity_holds r)
  | exception _ -> false

let oracle_split_fails ~case_seed c =
  let _, cands = candidates_of ~case_seed ~words:pred_words c pred_candidates in
  List.exists
    (fun (s, _) ->
      (not (Powder.Subst.creates_cycle c s)) && (Oracle.check c s).Oracle.split)
    cands

(* The windowed-vs-global differential: a window proof claims global
   soundness, so it must never contradict a decided global refutation
   (the oracle's three-backend consensus).  With [forge] the window
   prover is armed to lie once — the same comparison must then catch
   the forged proof. *)
let window_differs ~case_seed ?(forge = false) c =
  let _, cands = candidates_of ~case_seed ~words:pred_words c pred_candidates in
  if forge then Atpg.Window.inject_forge ();
  let hit =
    List.exists
      (fun (s, _) ->
        (not (Powder.Subst.creates_cycle c s))
        &&
        match Powder.Check.windowed ~max_cut:pred_window_cut c s with
        | Powder.Check.W_proved ->
          let r = Oracle.check c s in
          r.Oracle.final = Oracle.No && not r.Oracle.split
        | Powder.Check.W_escalated _ -> false
        | exception _ -> false)
      cands
  in
  Atpg.Window.clear_forge ();
  hit

let predicate_for ~case_seed ~kind ~injected =
  match (kind, injected) with
  | "injected_corruption", Some fault -> Some (injected_fails ~case_seed ~fault)
  | ("optimizer_broke_equivalence" | "optimizer_crash"), _ ->
    Some (optimizer_breaks ~case_seed ~words:pred_words)
  | "gain_identity", _ -> Some (gain_identity_fails ~case_seed)
  | "oracle_split", _ -> Some (oracle_split_fails ~case_seed)
  | "window_vs_global", _ -> Some (window_differs ~case_seed)
  | "window_forge", _ -> Some (window_differs ~case_seed ~forge:true)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Campaign                                                            *)
(* ------------------------------------------------------------------ *)

type case_outcome = {
  co_failures : failure list;
  co_checks : int;
  co_splits : int;
  co_window_checks : int;
  co_accepts : int;
  co_shrink_steps : int;
  co_consumed : bool;  (** the armed fault was consumed by this case *)
  co_detected : bool;  (** ... and the corruption was caught *)
}

let record_failure ~config ~case_seed ~case ~kind ~detail ~injected circ =
  Metrics.incr failures_c;
  let shrunk, (st : Shrink.stats) =
    match predicate_for ~case_seed ~kind ~injected with
    | Some failing ->
      Shrink.minimize ~max_steps:config.shrink_max_steps
        ~deadline:(Obs.Deadline.after ~seconds:15.0)
        ~failing circ
    | None ->
      let g = Circuit.gate_count circ in
      (circ, { Shrink.steps = 0; tried = 0; initial_gates = g; final_gates = g })
  in
  let bundle_path =
    match config.out_dir with
    | None -> None
    | Some dir ->
      let b =
        {
          Bundle.campaign_seed = config.seed;
          case_seed;
          case;
          kind;
          detail;
          injected = Option.map Bundle.fault_name injected;
          blif = Blif.Blif_io.circuit_to_string shrunk;
          original_gates = st.initial_gates;
          shrunk_gates = st.final_gates;
          shrink_steps = st.steps;
        }
      in
      Some (Bundle.save ~dir b)
  in
  {
    case;
    kind;
    detail;
    gates = st.final_gates;
    shrink_steps = st.steps;
    bundle_path;
  }

let run_case ~config ~deadline ~inject ~forge i =
  let case_seed = Rng.derive config.seed (Printf.sprintf "case-%d" i) in
  let spec = Gen.spec_of_seed ~max_ins:config.max_ins case_seed in
  let base = Gen.base spec in
  let circ = Gen.generate spec in
  let failures = ref [] in
  let fail ?injected kind detail =
    failures :=
      record_failure ~config ~case_seed ~case:i ~kind ~detail ~injected circ
      :: !failures
  in
  (* generator properties *)
  (match Circuit.validate circ with
  | Error e -> fail "generator_invalid" e
  | Ok () ->
    if not (equivalent ~seed:case_seed base circ) then
      fail "mutation_changed_function"
        (Printf.sprintf "mutations [%s] changed the I/O function"
           (String.concat "; " (List.map Gen.mutation_name spec.mutations))));
  (* differential oracle *)
  let checks = ref 0 and splits = ref 0 and wchecks = ref 0 in
  let detected = ref false in
  let eng, cands =
    candidates_of ~case_seed ~words:pred_words circ config.candidates_per_case
  in
  (* armed once per case: the forge fires on the first windowed check
     whose honest verdict is a refutation *)
  if forge then Atpg.Window.inject_forge ();
  List.iter
    (fun (s, _) ->
      if not (Powder.Subst.creates_cycle circ s) then begin
        let r = Oracle.check ~deadline circ s in
        incr checks;
        if r.Oracle.split then begin
          incr splits;
          fail "oracle_split"
            (Printf.sprintf "backends disagreed on %s%s"
               (Powder.Subst.describe circ s)
               (match r.Oracle.resolved_by with
               | Some b -> "; resolved by " ^ Oracle.backend_name b
               | None -> "; unresolved"))
        end;
        if r.Oracle.final = Oracle.Yes && Powder.Check.refuted_on_patterns eng s
        then
          fail "proof_vs_patterns"
            (Printf.sprintf "proven permissible yet refuted on patterns: %s"
               (Powder.Subst.describe circ s));
        (* windowed-vs-global differential: a window proof must never
           contradict a decided global refutation; escalations carry no
           claim, so there is nothing to compare *)
        match
          Powder.Check.windowed ~deadline ~max_cut:pred_window_cut circ s
        with
        | Powder.Check.W_escalated _ -> incr wchecks
        | Powder.Check.W_proved ->
          incr wchecks;
          if r.Oracle.final = Oracle.No && not r.Oracle.split then
            if forge then begin
              detected := true;
              fail "window_forge"
                (Printf.sprintf "forged window proof caught on %s"
                   (Powder.Subst.describe circ s))
            end
            else
              fail "window_vs_global"
                (Printf.sprintf "window proved but global refuted: %s"
                   (Powder.Subst.describe circ s))
        | exception e ->
          fail "window_crash"
            (Printf.sprintf "windowed check raised %s on %s"
               (Printexc.to_string e)
               (Powder.Subst.describe circ s))
      end)
    cands;
  let forge_consumed = forge && not (Atpg.Window.forge_armed ()) in
  Atpg.Window.clear_forge ();
  (* optimizer metamorphic run *)
  let pre = Circuit.clone circ in
  let opt = Circuit.clone circ in
  let ocfg =
    opt_config ~case_seed
      ~words:(if inject <> None then 1 else config.words)
      ~verify:(inject = None)
  in
  (match inject with Some f -> Guard.inject f | None -> ());
  let opt_result =
    match Optimizer.optimize ~config:ocfg opt with
    | r -> Ok r
    | exception e -> Error (Printexc.to_string e)
  in
  let consumed =
    match inject with None -> false | Some f -> not (Guard.take_fault f)
  in
  Guard.clear_injection ();
  let accepts = ref 0 in
  (match opt_result with
  | Error msg -> fail "optimizer_crash" ("optimizer raised: " ^ msg)
  | Ok r -> (
    accepts := r.Optimizer.substitutions;
    let invalid =
      match Circuit.validate opt with Error e -> Some e | Ok () -> None
    in
    let equiv = equivalent ~seed:case_seed pre opt in
    match (invalid, equiv) with
    | None, true ->
      if inject = None && not (gain_identity_holds r) then
        fail "gain_identity"
          (Printf.sprintf "class gains sum to %g but power delta is %g"
             (List.fold_left
                (fun a (_, st) -> a +. st.Optimizer.power_gain)
                0.0 r.Optimizer.by_class)
             (r.Optimizer.initial_power -. r.Optimizer.final_power))
    | invalid, equiv -> (
      let why =
        match invalid with
        | Some e -> "validate failed: " ^ e
        | None -> if equiv then "" else "PO signatures changed"
      in
      match inject with
      | Some f when consumed ->
        detected := true;
        fail ~injected:f "injected_corruption"
          (Printf.sprintf "fault %s slipped past the disabled guard (%s)"
             (Bundle.fault_name f) why)
      | _ -> fail "optimizer_broke_equivalence" why)));
  (* an armed fault that was consumed without breaking anything the
     harness can see is itself a finding: the detection net has a hole *)
  if inject <> None && consumed && not !detected then
    fail "missed_injection"
      "fault consumed but the corruption was not observable";
  {
    co_failures = List.rev !failures;
    co_checks = !checks;
    co_splits = !splits;
    co_window_checks = !wchecks;
    co_accepts = !accepts;
    co_shrink_steps =
      List.fold_left (fun a (f : failure) -> a + f.shrink_steps) 0 !failures;
    co_consumed = consumed || forge_consumed;
    co_detected = !detected;
  }

let run config =
  let t0 = Obs.Clock.now () in
  let deadline = Obs.Deadline.of_option config.budget_seconds in
  (* a campaign needs some bound: cap cases when both dials are open *)
  let case_cap =
    if config.cases > 0 then config.cases
    else if config.budget_seconds <> None then max_int
    else 50
  in
  let pending = ref config.inject in
  (* a forged window verdict can be consumed harmlessly (the lie lands
     on a spurious window cex whose candidate was globally permissible
     anyway), so the forge re-arms until the differential actually
     catches it *)
  let pending_forge = ref config.forge_window in
  let caught = ref false in
  let failures = ref [] in
  let cases_run = ref 0 in
  let checks = ref 0 and splits = ref 0 and accepts = ref 0 in
  let window_checks = ref 0 in
  let shrink_steps = ref 0 in
  (* Injection campaigns race on the process-global one-shot faults in
     [Guard] / [Atpg.Window], so they stay sequential; so does a
     harness nested inside a pool task (the pool rejects nested
     submission). *)
  let jobs =
    if config.inject <> None || config.forge_window || Par.Pool.in_task () then
      1
    else max 1 config.jobs
  in
  let consume o =
    Metrics.incr cases_c;
    incr cases_run;
    failures := !failures @ o.co_failures;
    checks := !checks + o.co_checks;
    splits := !splits + o.co_splits;
    window_checks := !window_checks + o.co_window_checks;
    accepts := !accepts + o.co_accepts;
    shrink_steps := !shrink_steps + o.co_shrink_steps;
    if o.co_consumed then
      if config.forge_window then begin
        if o.co_detected then begin
          caught := true;
          pending_forge := false
        end
      end
      else begin
        pending := None;
        if o.co_detected then caught := true
      end
  in
  (if jobs = 1 then (
     let i = ref 0 in
     while !i < case_cap && not (Obs.Deadline.expired deadline) do
       consume
         (run_case ~config ~deadline ~inject:!pending ~forge:!pending_forge !i);
       incr i
     done)
   else
     (* One case per domain, in waves of [jobs].  Cases are mutually
        independent (each builds its own circuits and engines and
        writes its own bundle files), so outcomes are simply consumed
        in case order — same aggregation, same report, any job count.
        A case whose task was cancelled by the budget deadline never
        ran; consumption stops at the first one, like the sequential
        loop stops at expiry. *)
     Par.Pool.with_pool ~jobs (fun pool ->
         let i = ref 0 in
         let stop = ref false in
         while (not !stop) && !i < case_cap && not (Obs.Deadline.expired deadline)
         do
           let wave = min jobs (case_cap - !i) in
           let base = !i in
           let outs =
             Par.Pool.map pool ~deadline
               ~f:(fun idx ->
                 run_case ~config ~deadline ~inject:None ~forge:false idx)
               (Array.init wave (fun k -> base + k))
           in
           Array.iter
             (fun o ->
               match o with
               | Some o when not !stop -> consume o
               | _ -> stop := true)
             outs;
           i := base + wave
         done));
  {
    cases_run = !cases_run;
    checks = !checks;
    oracle_splits = !splits;
    window_checks = !window_checks;
    accepts = !accepts;
    failures = !failures;
    shrink_steps = !shrink_steps;
    injected_caught = !caught;
    jobs;
    elapsed_seconds = Obs.Clock.now () -. t0;
  }

let pp_report fmt r =
  Format.fprintf fmt
    "@[<v>fuzz: %d cases in %.1fs (jobs %d)@,\
     oracle: %d checks, %d splits@,\
     window: %d differential checks@,\
     optimizer: %d accepted substitutions@,\
     failures: %d (shrink steps %d)@,"
    r.cases_run r.elapsed_seconds r.jobs r.checks r.oracle_splits
    r.window_checks r.accepts (List.length r.failures) r.shrink_steps;
  List.iter
    (fun f ->
      Format.fprintf fmt "  case %d: %s (%d gates%s)%s@," f.case f.kind f.gates
        (if f.shrink_steps > 0 then
           Printf.sprintf ", %d shrink steps" f.shrink_steps
         else "")
        (match f.bundle_path with Some p -> " -> " ^ p | None -> ""))
    r.failures;
  Format.fprintf fmt "@]"

let report_to_json r =
  Json.Obj
    [
      ("cases_run", Json.Int r.cases_run);
      ("checks", Json.Int r.checks);
      ("oracle_splits", Json.Int r.oracle_splits);
      ("window_checks", Json.Int r.window_checks);
      ("accepts", Json.Int r.accepts);
      ("shrink_steps", Json.Int r.shrink_steps);
      ("injected_caught", Json.Bool r.injected_caught);
      ("jobs", Json.Int r.jobs);
      ("elapsed_seconds", Json.Float r.elapsed_seconds);
      ( "failures",
        Json.List
          (List.map
             (fun f ->
               Json.Obj
                 [
                   ("case", Json.Int f.case);
                   ("kind", Json.String f.kind);
                   ("detail", Json.String f.detail);
                   ("gates", Json.Int f.gates);
                   ("shrink_steps", Json.Int f.shrink_steps);
                   ( "bundle",
                     match f.bundle_path with
                     | Some p -> Json.String p
                     | None -> Json.Null );
                 ])
             r.failures) );
    ]

let replay path =
  match Bundle.load path with
  | Error e -> Error ("cannot load bundle: " ^ e)
  | Ok b -> (
    match Bundle.circuit b with
    | Error e -> Error ("cannot parse bundled BLIF: " ^ e)
    | Ok c -> (
      let injected = Option.bind b.Bundle.injected Bundle.fault_of_name in
      match predicate_for ~case_seed:b.Bundle.case_seed ~kind:b.Bundle.kind ~injected with
      | None -> Error (Printf.sprintf "kind %S is not replayable" b.Bundle.kind)
      | Some failing ->
        if failing c then
          Ok
            (Printf.sprintf "failure %s reproduced on %d gates" b.Bundle.kind
               (Circuit.gate_count c))
        else
          Error
            (Printf.sprintf "failure %s did not reproduce" b.Bundle.kind)))
