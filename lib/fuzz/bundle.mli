(** Replayable failure bundles.

    Everything needed to reproduce a fuzz failure offline lives in one
    JSON file: the campaign seed and case index (so the whole case can
    be re-derived), the failure kind, the optional injected fault, and
    the shrunk circuit embedded as BLIF text.  Saves are atomic
    (temp file + rename) so a crashing campaign never leaves a
    half-written repro behind. *)

type t = {
  campaign_seed : int64;
  case_seed : int64;   (** the derived per-case seed; replay re-derives
                           the optimizer config from it *)
  case : int;
  kind : string;       (** failure kind, e.g. ["injected_corruption"] *)
  detail : string;
  injected : string option;  (** armed {!Powder.Guard} fault, if any *)
  blif : string;             (** shrunk circuit, BLIF text *)
  original_gates : int;
  shrunk_gates : int;
  shrink_steps : int;
}

val to_json : t -> Obs.Json.t
val of_json : Obs.Json.t -> (t, string) result

val save : dir:string -> t -> string
(** Write atomically under [dir] (created if missing); returns the
    path, which encodes seed, case and kind. *)

val load : string -> (t, string) result

val circuit : t -> (Netlist.Circuit.t, string) result
(** Parse the embedded BLIF against {!Gatelib.Library.lib2}. *)

val fault_of_name : string -> Powder.Guard.fault option
val fault_name : Powder.Guard.fault -> string
