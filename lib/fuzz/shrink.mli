(** Greedy failure-preserving shrinking of a mapped netlist.

    Given a predicate that reproduces a failure, repeatedly try
    structural reductions — drop a primary output (re-extracting the
    remaining cones), collapse a gate onto one of its fanins, replace a
    gate by a constant — and keep each reduction whose result is still
    a valid circuit on which the predicate still fails.  Reductions are
    enumerated in a fixed order and applied first-fit, so shrinking is
    deterministic; each accepted step strictly shrinks
    [gates + POs + PIs], so termination is guaranteed. *)

type stats = {
  steps : int;          (** accepted reductions *)
  tried : int;          (** candidate reductions evaluated *)
  initial_gates : int;
  final_gates : int;
}

val restrict_pos : Netlist.Circuit.t -> string list -> Netlist.Circuit.t
(** Rebuild the circuit keeping only the named primary outputs (and the
    logic and PIs their cones need).  PI, gate and PO names carry over.
    @raise Invalid_argument if no named PO exists. *)

val minimize :
  ?max_steps:int ->
  ?deadline:Obs.Deadline.t ->
  failing:(Netlist.Circuit.t -> bool) ->
  Netlist.Circuit.t ->
  Netlist.Circuit.t * stats
(** Shrink while [failing] holds.  The predicate receives a private
    clone each time and must be deterministic; the input circuit is
    never mutated.  If the input does not fail, it is returned
    unchanged with [steps = 0].  Accepted steps are mirrored into the
    [fuzz/shrink_steps] metric.  Defaults: [max_steps = 1000],
    no deadline. *)
