module Circuit = Netlist.Circuit
module Metrics = Obs.Metrics

type stats = {
  steps : int;
  tried : int;
  initial_gates : int;
  final_gates : int;
}

let steps_c = Metrics.counter "fuzz/shrink_steps"

let po_names c = List.map (Circuit.name c) (Circuit.pos c)

let restrict_pos c keep =
  let keep_ids =
    List.filter (fun po -> List.mem (Circuit.name c po) keep) (Circuit.pos c)
  in
  if keep_ids = [] then invalid_arg "Shrink.restrict_pos: no such PO";
  (* needed = the kept POs' drivers and their transitive fanins *)
  let needed = Array.make (Circuit.num_nodes c) false in
  List.iter
    (fun po ->
      let d = Circuit.po_driver c po in
      needed.(d) <- true;
      Array.iteri (fun i b -> if b then needed.(i) <- true) (Circuit.tfi c d))
    keep_ids;
  let out = Circuit.create (Circuit.library c) in
  let map = Hashtbl.create 64 in
  Array.iter
    (fun id ->
      if needed.(id) then
        let nid =
          match Circuit.kind c id with
          | Circuit.Pi -> Circuit.add_pi out ~name:(Circuit.name c id)
          | Circuit.Const b -> Circuit.add_const out b
          | Circuit.Cell (cell, fanins) ->
            Circuit.add_cell out ~name:(Circuit.name c id) cell
              (Array.map (Hashtbl.find map) fanins)
          | Circuit.Po _ -> assert false
        in
        Hashtbl.add map id nid)
    (Circuit.topo_order c);
  List.iter
    (fun po ->
      ignore
        (Circuit.add_po out ~name:(Circuit.name c po)
           (Hashtbl.find map (Circuit.po_driver c po))))
    keep_ids;
  out

let size c =
  Circuit.gate_count c
  + List.length (Circuit.pos c)
  + List.length (Circuit.pis c)

(* All candidate reductions of [c], lazily, in a fixed order. *)
let reductions c =
  let drop_po () =
    let names = po_names c in
    if List.length names <= 1 then []
    else
      List.map
        (fun dropped () ->
          Some (restrict_pos c (List.filter (fun n -> n <> dropped) names)))
        names
  in
  let collapse_gate () =
    List.concat_map
      (fun g ->
        Array.to_list (Circuit.fanins c g)
        |> List.sort_uniq compare
        |> List.map (fun f () ->
               let cl = Circuit.clone c in
               if Circuit.would_cycle_stem cl g f then None
               else begin
                 Circuit.replace_stem cl g f;
                 ignore (Circuit.sweep cl);
                 Some cl
               end))
      (Circuit.live_gates c)
  in
  let gate_to_const () =
    List.concat_map
      (fun g ->
        List.map
          (fun b () ->
            let cl = Circuit.clone c in
            let k = Circuit.add_const cl b in
            if Circuit.would_cycle_stem cl g k then None
            else begin
              Circuit.replace_stem cl g k;
              ignore (Circuit.sweep cl);
              Some cl
            end)
          [ false; true ])
      (Circuit.live_gates c)
  in
  drop_po () @ collapse_gate () @ gate_to_const ()

let minimize ?(max_steps = 1000) ?(deadline = Obs.Deadline.never) ~failing c =
  let initial_gates = Circuit.gate_count c in
  let fails cand =
    match Circuit.validate cand with
    | Error _ -> false
    | Ok () -> failing (Circuit.clone cand)
  in
  let tried = ref 0 in
  if not (fails c) then
    (c, { steps = 0; tried = 1; initial_gates; final_gates = initial_gates })
  else begin
    let current = ref c in
    let steps = ref 0 in
    let progress = ref true in
    while !progress && !steps < max_steps && not (Obs.Deadline.expired deadline) do
      progress := false;
      let cands = reductions !current in
      (try
         List.iter
           (fun thunk ->
             if Obs.Deadline.expired deadline then raise Exit;
             match thunk () with
             | None -> ()
             | Some cand ->
               incr tried;
               if size cand < size !current && fails cand then begin
                 current := cand;
                 incr steps;
                 Metrics.incr steps_c;
                 progress := true;
                 raise Exit
               end)
           cands
       with Exit -> ())
    done;
    ( !current,
      {
        steps = !steps;
        tried = !tried;
        initial_gates;
        final_gates = Circuit.gate_count !current;
      } )
  end
