(** The fuzz campaign driver.

    Each case derives a private seed from the campaign seed
    ([Sim.Rng.derive seed "case-<i>"]), generates a mutated mapped
    netlist ({!Gen}), and checks four property groups:

    - {b generator}: the netlist validates and is I/O-equivalent to its
      unmutated base (mutations are function-preserving by
      construction);
    - {b oracle}: the three proof backends agree on every candidate
      substitution's verdict ({!Oracle}), and no proven-permissible
      candidate is refuted by the simulated pattern set;
    - {b window}: a windowed permissibility proof ({!Powder.Check.windowed})
      never contradicts a decided global refutation — window proofs
      claim global soundness, so the comparison is a hard equality on
      the [Proved] side (escalations carry no claim);
    - {b optimizer}: a bounded POWDER run preserves PO signatures and
      [Circuit.validate], and the per-class measured power gains sum to
      the estimator's total delta (the [PG_A+PG_B+PG_C] telescoping
      identity);
    - {b resilience} (when a {!Powder.Guard} fault is injected): the
      corruption is detected, shrunk ({!Shrink}) and dumped as a
      replayable bundle ({!Bundle}).

    Failures are shrunk and, when [out_dir] is set, saved.  Counters:
    [fuzz/cases], [fuzz/failures], [fuzz/oracle_*], [fuzz/shrink_steps]. *)

type config = {
  seed : int64;
  cases : int;  (** max cases; [0] means run until the budget expires *)
  budget_seconds : float option;
  max_ins : int;
  candidates_per_case : int;  (** substitutions cross-checked per case *)
  words : int;                (** simulation words for equivalence runs *)
  out_dir : string option;
  inject : Powder.Guard.fault option;
      (** arm this fault during one case's optimizer run (retrying on
          later cases until it is actually consumed), with the guard
          disabled, so the end-to-end properties must catch it *)
  forge_window : bool;
      (** arm {!Atpg.Window.inject_forge} so the window prover lies
          once (a forged [Proved] on a real window refutation); the
          windowed-vs-global differential must catch the lie.  A forge
          consumed on a spurious window counterexample is harmless by
          luck, so it re-arms every case until caught. *)
  shrink_max_steps : int;
  jobs : int;
      (** run cases on a [Par.Pool], one case per domain, consumed in
          case order — reports are identical at any job count.  Forced
          to 1 when [inject] is set (the one-shot fault is
          process-global) or when nested inside a pool task. *)
}

val default_config : config
(** seed 1, unbounded cases, 20 s budget, [max_ins] 10, 6 candidates,
    4 words, no out dir, no injection, 400 shrink steps, 1 job. *)

type failure = {
  case : int;
  kind : string;
  detail : string;
  gates : int;            (** gate count after shrinking *)
  shrink_steps : int;
  bundle_path : string option;
}

type report = {
  cases_run : int;
  checks : int;           (** oracle cross-checks performed *)
  oracle_splits : int;
  window_checks : int;    (** windowed-vs-global differential checks *)
  accepts : int;          (** substitutions applied across optimizer runs *)
  failures : failure list;
  shrink_steps : int;
  injected_caught : bool; (** the armed fault was consumed and detected *)
  jobs : int;             (** executors actually used *)
  elapsed_seconds : float;
}

val run : config -> report

val pp_report : Format.formatter -> report -> unit

val report_to_json : report -> Obs.Json.t

val replay : string -> (string, string) result
(** Re-execute a saved bundle's failure predicate on its embedded
    circuit.  [Ok msg] when the failure reproduces; [Error msg] when it
    does not (or the bundle cannot be read). *)
