let valid_submit ?(id = "job-ok") ?(circuit = "rd84") () =
  Printf.sprintf
    "{\"op\":\"submit\",\"id\":%S,\"circuit\":%S,\"priority\":1,\"options\":{\"words\":4,\"max_rounds\":2}}"
    id circuit

let duplicate_pair ~id ~circuit =
  (valid_submit ~id ~circuit (), valid_submit ~id ~circuit ())

(* The fixed battery.  Every line must draw a typed error from
   [Serve.Protocol.parse] (or, for [dup-second], from the server's
   duplicate-id check) — keep labels stable, tests key on them. *)
let fixed : (string * string) list =
  [
    ("garbage", "this is not json at all");
    ("truncated-object", "{\"op\":\"submit\",\"id\":");
    ("truncated-string", "{\"op\":\"submit\",\"id\":\"jo");
    ("non-object", "[\"op\",\"submit\"]");
    ("bare-scalar", "42");
    ("missing-op", "{\"id\":\"j1\",\"circuit\":\"rd84\"}");
    ("mistyped-op", "{\"op\":17,\"id\":\"j1\"}");
    ("unknown-op", "{\"op\":\"launch_missiles\",\"id\":\"j1\"}");
    ("missing-id", "{\"op\":\"submit\",\"circuit\":\"rd84\"}");
    ("mistyped-id", "{\"op\":\"submit\",\"id\":12,\"circuit\":\"rd84\"}");
    ("empty-id", "{\"op\":\"submit\",\"id\":\"\",\"circuit\":\"rd84\"}");
    ( "slash-id",
      "{\"op\":\"submit\",\"id\":\"../etc/passwd\",\"circuit\":\"rd84\"}" );
    ( "unknown-field",
      "{\"op\":\"submit\",\"id\":\"j1\",\"circuit\":\"rd84\",\"prority\":3}" );
    ( "unknown-option",
      "{\"op\":\"submit\",\"id\":\"j1\",\"circuit\":\"rd84\",\"options\":{\"wrds\":4}}"
    );
    ( "mistyped-options",
      "{\"op\":\"submit\",\"id\":\"j1\",\"circuit\":\"rd84\",\"options\":[4]}" );
    ( "absurd-words-zero",
      "{\"op\":\"submit\",\"id\":\"j1\",\"circuit\":\"rd84\",\"options\":{\"words\":0}}"
    );
    ( "absurd-words-huge",
      "{\"op\":\"submit\",\"id\":\"j1\",\"circuit\":\"rd84\",\"options\":{\"words\":1000000000}}"
    );
    ( "absurd-rounds-negative",
      "{\"op\":\"submit\",\"id\":\"j1\",\"circuit\":\"rd84\",\"options\":{\"max_rounds\":-3}}"
    );
    ( "absurd-budget-negative",
      "{\"op\":\"submit\",\"id\":\"j1\",\"circuit\":\"rd84\",\"options\":{\"budget_seconds\":-1.0}}"
    );
    ( "absurd-budget-huge",
      "{\"op\":\"submit\",\"id\":\"j1\",\"circuit\":\"rd84\",\"options\":{\"budget_seconds\":1e300}}"
    );
    ( "absurd-priority",
      "{\"op\":\"submit\",\"id\":\"j1\",\"circuit\":\"rd84\",\"priority\":1000000}" );
    ( "mistyped-priority",
      "{\"op\":\"submit\",\"id\":\"j1\",\"circuit\":\"rd84\",\"priority\":\"high\"}"
    );
    ("unknown-circuit", "{\"op\":\"submit\",\"id\":\"j1\",\"circuit\":\"no_such\"}");
    ( "both-sources",
      "{\"op\":\"submit\",\"id\":\"j1\",\"circuit\":\"rd84\",\"blif\":\".model m\\n.end\"}"
    );
    ("no-source", "{\"op\":\"submit\",\"id\":\"j1\"}");
    ( "bad-blif",
      "{\"op\":\"submit\",\"id\":\"j1\",\"blif\":\".model broken\\n.gate nand2 a=x\"}"
    );
    ( "trailing-junk",
      "{\"op\":\"submit\",\"id\":\"j1\",\"circuit\":\"rd84\"} and then some" );
  ]

let corpus ?(seed = 0xBADF00DL) () =
  let base = valid_submit () in
  let n = String.length base in
  let rng = Sim.Rng.stream seed "fuzz/proto-corpus" in
  let rand_below bound =
    Int64.to_int (Int64.rem (Int64.logand (Sim.Rng.next rng) Int64.max_int)
                    (Int64.of_int bound))
  in
  (* seeded truncations: cutting a valid line anywhere before its last
     byte must never parse (the object brace is unbalanced) *)
  let truncations =
    List.init 6 (fun i ->
        let cut = 1 + rand_below (n - 2) in
        ( Printf.sprintf "truncate-%d-at-%d" i cut,
          String.sub base 0 cut ))
  in
  (* seeded corruptions: overwrite one structural byte with junk; a
     corruption may still parse as JSON, so aim at the quote/brace
     skeleton which cannot survive *)
  let corruptions =
    List.init 4 (fun i ->
        let b = Bytes.of_string base in
        let structural =
          List.filter
            (fun p ->
              match Bytes.get b p with
              | '{' | '}' | '"' | ':' -> true
              | _ -> false)
            (List.init n Fun.id)
        in
        let p = List.nth structural (rand_below (List.length structural)) in
        Bytes.set b p '\x01';
        (Printf.sprintf "corrupt-%d-at-%d" i p, Bytes.to_string b))
  in
  Array.of_list (fixed @ truncations @ corruptions)
