module Json = Obs.Json

type t = {
  campaign_seed : int64;
  case_seed : int64;
  case : int;
  kind : string;
  detail : string;
  injected : string option;
  blif : string;
  original_gates : int;
  shrunk_gates : int;
  shrink_steps : int;
}

let fault_name = function
  | Powder.Guard.Forge_verdict -> "forge_verdict"
  | Powder.Guard.Corrupt_apply -> "corrupt_apply"
  | Powder.Guard.Expire_deadline -> "expire_deadline"

let fault_of_name = function
  | "forge_verdict" -> Some Powder.Guard.Forge_verdict
  | "corrupt_apply" -> Some Powder.Guard.Corrupt_apply
  | "expire_deadline" -> Some Powder.Guard.Expire_deadline
  | _ -> None

let to_json b =
  Json.Obj
    [
      ("campaign_seed", Json.String (Int64.to_string b.campaign_seed));
      ("case_seed", Json.String (Int64.to_string b.case_seed));
      ("case", Json.Int b.case);
      ("kind", Json.String b.kind);
      ("detail", Json.String b.detail);
      ( "injected",
        match b.injected with None -> Json.Null | Some f -> Json.String f );
      ("blif", Json.String b.blif);
      ("original_gates", Json.Int b.original_gates);
      ("shrunk_gates", Json.Int b.shrunk_gates);
      ("shrink_steps", Json.Int b.shrink_steps);
    ]

let of_json j =
  let str key =
    match Option.bind (Json.member key j) Json.get_string with
    | Some s -> Ok s
    | None -> Error (Printf.sprintf "bundle: missing string field %S" key)
  in
  let int key =
    match Option.bind (Json.member key j) Json.get_int with
    | Some i -> Ok i
    | None -> Error (Printf.sprintf "bundle: missing int field %S" key)
  in
  let i64 key =
    match str key with
    | Error _ as e -> e |> Result.map (fun _ -> 0L)
    | Ok s -> (
      match Int64.of_string_opt s with
      | Some v -> Ok v
      | None -> Error (Printf.sprintf "bundle: field %S is not an int64" key))
  in
  let ( let* ) = Result.bind in
  let* campaign_seed = i64 "campaign_seed" in
  let* case_seed = i64 "case_seed" in
  let* case = int "case" in
  let* kind = str "kind" in
  let* detail = str "detail" in
  let injected =
    match Json.member "injected" j with
    | Some (Json.String s) -> Some s
    | _ -> None
  in
  let* blif = str "blif" in
  let* original_gates = int "original_gates" in
  let* shrunk_gates = int "shrunk_gates" in
  let* shrink_steps = int "shrink_steps" in
  Ok
    {
      campaign_seed;
      case_seed;
      case;
      kind;
      detail;
      injected;
      blif;
      original_gates;
      shrunk_gates;
      shrink_steps;
    }

let ensure_dir dir = if not (Sys.file_exists dir) then Sys.mkdir dir 0o755

let save ~dir b =
  ensure_dir dir;
  let path =
    Filename.concat dir
      (Printf.sprintf "fuzz-seed%Ld-case%d-%s.json" b.campaign_seed b.case
         b.kind)
  in
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  output_string oc (Json.to_string (to_json b));
  output_char oc '\n';
  close_out oc;
  Sys.rename tmp path;
  path

let load path =
  match
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  with
  | exception Sys_error e -> Error e
  | text -> Result.bind (Json.of_string text) of_json

let circuit b =
  match Blif.Blif_io.circuit_of_string Gatelib.Library.lib2 b.blif with
  | Ok c -> Ok c
  | Error e -> Error (Blif.Blif_io.error_to_string e)
