module Circuit = Netlist.Circuit
module Rng = Sim.Rng

type mutation = Fanout_split | Inverter_chain | Constant_cone | High_fanout_stem

let all_mutations = [ Fanout_split; Inverter_chain; Constant_cone; High_fanout_stem ]

let mutation_name = function
  | Fanout_split -> "fanout_split"
  | Inverter_chain -> "inverter_chain"
  | Constant_cone -> "constant_cone"
  | High_fanout_stem -> "high_fanout_stem"

type family = Multilevel | Two_level | Symmetric | Arithmetic

let family_name = function
  | Multilevel -> "multilevel"
  | Two_level -> "two_level"
  | Symmetric -> "symmetric"
  | Arithmetic -> "arithmetic"

type spec = {
  seed : int64;
  family : family;
  ins : int;
  outs : int;
  layers : int;
  per_layer : int;
  fanin : int;
  objective : Mapper.Techmap.objective;
  mutations : mutation list;
}

(* uniform int in [lo, hi]; the top 31 bits of a splitmix draw are
   unbiased enough for ranges this small *)
let pick rng lo hi =
  let span = hi - lo + 1 in
  lo + (Int64.to_int (Int64.shift_right_logical (Rng.next rng) 33) mod span)

let pick_elt rng = function
  | [] -> None
  | l -> Some (List.nth l (pick rng 0 (List.length l - 1)))

let spec_of_seed ?(max_ins = 10) seed =
  let max_ins = max 4 max_ins in
  let rng = Rng.stream seed "fuzz/spec" in
  let family =
    (* weight the symmetric family up: its dense signature aliasing is
       what gives the exact check real refutation work *)
    match pick rng 0 5 with
    | 0 | 1 -> Multilevel
    | 2 -> Two_level
    | 3 | 4 -> Symmetric
    | _ -> Arithmetic
  in
  let ins = pick rng 4 max_ins in
  let outs = pick rng 1 4 in
  let layers = pick rng 2 4 in
  let per_layer = pick rng 3 8 in
  let fanin = pick rng 2 3 in
  let objective =
    if Int64.logand (Rng.next rng) 1L = 0L then Mapper.Techmap.Power
    else Mapper.Techmap.Area
  in
  let n_mut = pick rng 1 6 in
  let mutations =
    List.init n_mut (fun _ ->
        List.nth all_mutations (pick rng 0 (List.length all_mutations - 1)))
  in
  { seed; family; ins; outs; layers; per_layer; fanin; objective; mutations }

let base spec =
  (* the AIG generators take a plain int seed; fold the 64-bit case
     seed down through the same derive chain so cases stay distinct *)
  let aig_seed =
    Int64.to_int (Int64.logand (Rng.derive spec.seed "fuzz/aig") 0x3FFFFFFFL)
  in
  let aig =
    match spec.family with
    | Multilevel ->
      Circuits.Generators.multilevel ~seed:aig_seed ~ins:spec.ins
        ~outs:spec.outs ~layers:spec.layers ~per_layer:spec.per_layer
        ~fanin:spec.fanin
    | Two_level ->
      Circuits.Generators.pla ~seed:aig_seed ~ins:spec.ins ~outs:spec.outs
        ~cubes:(3 * spec.per_layer) ~lit_lo:2 ~lit_hi:(min spec.ins 5)
    | Symmetric ->
      if spec.ins >= 9 && aig_seed land 1 = 0 then Circuits.Generators.sym9 ()
      else Circuits.Generators.rd ~inputs:(max 5 (min spec.ins 9))
    | Arithmetic ->
      if aig_seed land 1 = 0 then
        Circuits.Generators.comparator ~width:(max 2 (spec.ins / 2))
      else Circuits.Generators.multiplier ~width:(max 2 (spec.ins / 3))
  in
  Mapper.Techmap.map ~objective:spec.objective Gatelib.Library.lib2 aig

(* Live non-PO nodes whose stem has at least one fanout. *)
let stems_with_fanout c =
  let acc = ref [] in
  Circuit.iter_live c (fun id ->
      if (not (Circuit.is_po_node c id)) && Circuit.num_fanouts c id > 0 then
        acc := id :: !acc);
  List.rev !acc

let find_cell c name = Gatelib.Library.find_opt (Circuit.library c) name

(* Duplicate a multi-fanout gate and move every other fanout pin to the
   copy.  The copy computes the same function over the same fanins, so
   no sink can tell the difference. *)
let fanout_split rng c =
  let cands =
    List.filter
      (fun id ->
        (match Circuit.kind c id with Circuit.Cell _ -> true | _ -> false)
        && Circuit.num_fanouts c id >= 2)
      (stems_with_fanout c)
  in
  match pick_elt rng cands with
  | None -> false
  | Some g ->
    let dup = Circuit.add_cell c (Circuit.cell_of c g) (Circuit.fanins c g) in
    let moved = ref false in
    List.iteri
      (fun i (p : Circuit.pin) ->
        if i mod 2 = 1 && not (Circuit.would_cycle_pin c p.sink p.pin_index dup)
        then begin
          Circuit.set_fanin c p.sink p.pin_index dup;
          moved := true
        end)
      (Circuit.fanouts c g);
    ignore (Circuit.sweep c);
    !moved

(* Reroute one branch of a stem through a double inversion. *)
let inverter_chain rng c =
  match find_cell c "inv" with
  | None -> false
  | Some inv -> (
    match pick_elt rng (stems_with_fanout c) with
    | None -> false
    | Some s ->
      let pins = Circuit.fanouts c s in
      let i1 = Circuit.add_cell c inv [| s |] in
      let i2 = Circuit.add_cell c inv [| i1 |] in
      let ok = ref false in
      (match pick_elt rng pins with
      | Some p when not (Circuit.would_cycle_pin c p.sink p.pin_index i2) ->
        Circuit.set_fanin c p.sink p.pin_index i2;
        ok := true
      | _ -> ());
      ignore (Circuit.sweep c);
      !ok)

(* Grow a small cone over constant drivers, then merge its (constant)
   output into one branch through an identity gate: [or2(s, 0) = s],
   [and2(s, 1) = s]. *)
let constant_cone rng c =
  match (find_cell c "or2", find_cell c "and2") with
  | Some or2, Some and2 -> (
    let two_in = Gatelib.Library.two_input_cells (Circuit.library c) in
    if two_in = [] then false
    else
      let k0 = Circuit.add_const c false in
      let k1 = Circuit.add_const c true in
      let pool = ref [ (k0, false); (k1, true) ] in
      for _ = 1 to pick rng 2 4 do
        match pick_elt rng two_in with
        | None -> ()
        | Some cell ->
          let a, va = Option.get (pick_elt rng !pool) in
          let b, vb = Option.get (pick_elt rng !pool) in
          let g = Circuit.add_cell c cell [| a; b |] in
          pool := (g, Gatelib.Cell.eval cell [| va; vb |]) :: !pool
      done;
      let cone, value = List.hd !pool in
      let cands =
        List.filter (fun id -> id <> cone) (stems_with_fanout c)
      in
      let ok = ref false in
      (match pick_elt rng cands with
      | None -> ()
      | Some s -> (
        let cell = if value then and2 else or2 in
        let merged = Circuit.add_cell c cell [| s; cone |] in
        match pick_elt rng (List.filter (fun (p : Circuit.pin) -> p.sink <> merged) (Circuit.fanouts c s)) with
        | Some p when not (Circuit.would_cycle_pin c p.sink p.pin_index merged) ->
          Circuit.set_fanin c p.sink p.pin_index merged;
          ok := true
        | _ -> ()));
      ignore (Circuit.sweep c);
      !ok)
  | _ -> false

(* Manufacture a wide stem: [t = or2(s, inv s)] is a tautology, so
   ANDing it into a branch of any signal [x] leaves [x]'s function
   unchanged while [t] collects one fanout per rerouted branch. *)
let high_fanout_stem rng c =
  match (find_cell c "inv", find_cell c "or2", find_cell c "and2") with
  | Some inv, Some or2, Some and2 -> (
    match pick_elt rng (stems_with_fanout c) with
    | None -> false
    | Some s ->
      let i = Circuit.add_cell c inv [| s |] in
      let taut = Circuit.add_cell c or2 [| s; i |] in
      let helpers = [ i; taut ] in
      let ok = ref false in
      let stems =
        List.filter (fun id -> not (List.mem id helpers)) (stems_with_fanout c)
      in
      for _ = 1 to pick rng 2 4 do
        match pick_elt rng stems with
        | None -> ()
        | Some x -> (
          let pins =
            List.filter
              (fun (p : Circuit.pin) -> not (List.mem p.sink helpers))
              (Circuit.fanouts c x)
          in
          match pick_elt rng pins with
          | Some p ->
            let g = Circuit.add_cell c and2 [| x; taut |] in
            if
              p.sink <> g
              && not (Circuit.would_cycle_pin c p.sink p.pin_index g)
            then begin
              Circuit.set_fanin c p.sink p.pin_index g;
              ok := true
            end
            (* a failed reroute leaves [g] dangling; the final sweep
               removes it (sweeping here would kill [taut] for the
               remaining iterations) *)
          | None -> ())
      done;
      ignore (Circuit.sweep c);
      !ok)
  | _ -> false

let mutate rng c = function
  | Fanout_split -> fanout_split rng c
  | Inverter_chain -> inverter_chain rng c
  | Constant_cone -> constant_cone rng c
  | High_fanout_stem -> high_fanout_stem rng c

let generate spec =
  let c = base spec in
  let rng = Rng.stream spec.seed "fuzz/mutate" in
  List.iter (fun m -> ignore (mutate rng c m)) spec.mutations;
  ignore (Circuit.sweep c);
  c
