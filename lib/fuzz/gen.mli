(** Seeded random mapped-netlist generation for the fuzz harness.

    A case starts from a {!Circuits.Generators.multilevel} AIG mapped
    through {!Mapper.Techmap}, then applies a seeded sequence of
    {e function-preserving} structural mutations that push the netlist
    into shapes the benchmark suite never produces: split fanouts,
    double-inverter chains, constant cones merged through identity
    gates, and artificial high-fanout stems.  Because every mutation
    preserves the I/O function, [generate spec] must stay equivalent to
    [base spec] — itself a checked property of the harness. *)

type mutation =
  | Fanout_split      (** duplicate a gate and move half its fanout pins *)
  | Inverter_chain    (** reroute one branch through [inv (inv s)] *)
  | Constant_cone     (** grow a cone over constants, merge via an
                          identity gate ([or2(s,0)] / [and2(s,1)]) *)
  | High_fanout_stem  (** AND a tautology [or2(s, inv s)] into several
                          branches, manufacturing a wide stem *)

val all_mutations : mutation list
val mutation_name : mutation -> string

type family =
  | Multilevel   (** random multi-level SOP network *)
  | Two_level    (** random PLA (shared cube pool) *)
  | Symmetric    (** rd-style weight counters — heavily aliasing-prone
                     under short signatures, which is what flushes out
                     wrong permissibility verdicts *)
  | Arithmetic   (** comparator / multiplier *)

val family_name : family -> string

type spec = {
  seed : int64;       (** the case seed every other field derives from *)
  family : family;
  ins : int;
  outs : int;
  layers : int;
  per_layer : int;
  fanin : int;
  objective : Mapper.Techmap.objective;
  mutations : mutation list;  (** applied in order *)
}

val spec_of_seed : ?max_ins:int -> int64 -> spec
(** Derive a full case description from one seed (via domain-separated
    {!Sim.Rng.derive} streams).  [max_ins] (default 10) bounds the PI
    count so exhaustive equivalence stays affordable; the floor is 4. *)

val base : spec -> Netlist.Circuit.t
(** The mapped circuit before any mutation.  Deterministic. *)

val mutate : Sim.Rng.t -> Netlist.Circuit.t -> mutation -> bool
(** Apply one mutation in place, drawing choices from the generator.
    Returns [false] when the circuit offers no applicable site (the
    circuit is then unchanged). *)

val generate : spec -> Netlist.Circuit.t
(** [base spec] plus the spec's mutation sequence and a final sweep.
    Deterministic: equal specs give structurally identical circuits. *)
