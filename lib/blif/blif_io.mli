(** BLIF-subset reader/writer.

    Logic networks use [.model/.inputs/.outputs/.names/.end] with
    PLA-style rows (['0' '1' '-'] columns, output column ['1'] for
    on-set rows or ['0'] for off-set rows — a node mixes only one kind).
    Mapped netlists use [.gate <cell> <pin>=<net> ... O=<net>] lines,
    where cell pins are positionally named [a b c d e f] and the output
    pin is [O].  Line continuations with [\ ] are handled; [#] starts a
    comment. *)

type parse_error = {
  line : int;      (** 1-based physical line where the logical line began;
                       0 when the error has no single source line (e.g.
                       network validation, gate ordering) *)
  context : string;  (** the offending logical line (clipped) or signal *)
  message : string;
}

val error_to_string : parse_error -> string
(** ["line N: <message> (in <context>)"], omitting absent parts. *)

val pp_parse_error : Format.formatter -> parse_error -> unit

val network_of_string : string -> (Aig.Network.t, parse_error) result
val network_of_file : string -> (Aig.Network.t, parse_error) result
val network_to_string : Aig.Network.t -> string
val network_to_file : string -> Aig.Network.t -> unit

val circuit_of_string :
  Gatelib.Library.t -> string -> (Netlist.Circuit.t, parse_error) result
val circuit_of_file :
  Gatelib.Library.t -> string -> (Netlist.Circuit.t, parse_error) result
val circuit_to_string : Netlist.Circuit.t -> string
val circuit_to_file : string -> Netlist.Circuit.t -> unit

val pin_name : int -> string
(** Positional pin naming used in [.gate] lines: 0 -> "a", 1 -> "b", … *)
