module Network = Aig.Network
module Sop = Logic.Sop
module Cube = Logic.Cube
module Circuit = Netlist.Circuit
module Library = Gatelib.Library
module Cell = Gatelib.Cell

let pin_name i =
  if i < 26 then String.make 1 (Char.chr (Char.code 'a' + i))
  else Printf.sprintf "p%d" i

type parse_error = { line : int; context : string; message : string }

let error_to_string e =
  if e.line = 0 then
    if e.context = "" then e.message
    else Printf.sprintf "%s (in %S)" e.message e.context
  else if e.context = "" then Printf.sprintf "line %d: %s" e.line e.message
  else Printf.sprintf "line %d: %s (in %S)" e.line e.message e.context

let pp_parse_error fmt e = Format.pp_print_string fmt (error_to_string e)

let clip s = if String.length s <= 60 then s else String.sub s 0 57 ^ "..."

(* ------------------------------------------------------------------ *)
(* Tokenizing: strip comments, join continuations, split lines.        *)
(* ------------------------------------------------------------------ *)

(* Each logical line carries the 1-based physical line number where it
   started, so parse errors point at the source even across [\]
   continuations. *)
let logical_lines text =
  let raw = String.split_on_char '\n' text in
  let strip_comment line =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  let rec join acc pending pending_start no = function
    | [] -> List.rev (if pending = "" then acc else (pending_start, pending) :: acc)
    | line :: rest ->
      let line = strip_comment line in
      let line = String.trim line in
      if line = "" then join acc pending pending_start (no + 1) rest
      else begin
        let start = if pending = "" then no else pending_start in
        if String.length line > 0 && line.[String.length line - 1] = '\\' then
          join acc
            (pending ^ String.sub line 0 (String.length line - 1) ^ " ")
            start (no + 1) rest
        else join ((start, pending ^ line) :: acc) "" 0 (no + 1) rest
      end
  in
  join [] "" 0 1 raw

let words line =
  String.split_on_char ' ' line
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun w -> w <> "")

(* ------------------------------------------------------------------ *)
(* Network reading.                                                    *)
(* ------------------------------------------------------------------ *)

type parse_state = {
  mutable model : string option;
  mutable inputs : string list;
  mutable outputs : string list;
  mutable nodes : Network.node list;
  mutable current : (string * string list * (string * char) list * int) option;
      (* output name, fanins, rows (pattern, output char), start line *)
}

let finish_node st =
  match st.current with
  | None -> Ok ()
  | Some (name, fanins, rows_rev, start_line) ->
    st.current <- None;
    let n = List.length fanins in
    let rows = List.rev rows_rev in
    let on_rows = List.filter (fun (_, o) -> o = '1') rows in
    let off_rows = List.filter (fun (_, o) -> o = '0') rows in
    if on_rows <> [] && off_rows <> [] then
      Error
        {
          line = start_line;
          context = name;
          message = "node mixes on-set and off-set rows";
        }
    else begin
      let to_cubes rows = List.map (fun (p, _) -> Cube.of_string p) rows in
      let sop =
        if off_rows <> [] then
          Sop.complement_naive (Sop.create n (to_cubes off_rows))
        else if rows = [] then Sop.const_false n
        else Sop.create n (to_cubes on_rows)
      in
      st.nodes <- { Network.name; fanins; sop } :: st.nodes;
      Ok ()
    end

let network_of_string text =
  let st = { model = None; inputs = []; outputs = []; nodes = []; current = None } in
  let ( let* ) = Result.bind in
  let rec process = function
    | [] ->
      let* () = finish_node st in
      Ok
        {
          Network.model = Option.value st.model ~default:"top";
          inputs = List.rev st.inputs;
          outputs = List.rev st.outputs;
          nodes = List.rev st.nodes;
        }
    | (no, line) :: rest -> (
      let err message = Error { line = no; context = clip line; message } in
      match words line with
      | [] -> process rest
      | ".model" :: name ->
        let* () = finish_node st in
        if st.model <> None then err "duplicate .model directive"
        else begin
          st.model <- Some (match name with n :: _ -> n | [] -> "top");
          process rest
        end
      | ".inputs" :: ins ->
        let* () = finish_node st in
        st.inputs <- List.rev_append ins st.inputs;
        process rest
      | ".outputs" :: outs ->
        let* () = finish_node st in
        st.outputs <- List.rev_append outs st.outputs;
        process rest
      | [ ".end" ] -> process []
      | ".names" :: signals -> (
        let* () = finish_node st in
        match List.rev signals with
        | out :: fanins_rev ->
          st.current <- Some (out, List.rev fanins_rev, [], no);
          process rest
        | [] -> err ".names without signals")
      | ".gate" :: _ -> err "mapped .gate found; use circuit_of_string"
      | [ pattern; out ]
        when st.current <> None
             && String.for_all (fun c -> c = '0' || c = '1' || c = '-') pattern
             && (out = "0" || out = "1") -> (
        match st.current with
        | Some (name, fanins, rows, start) ->
          if String.length pattern <> List.length fanins then
            err (Printf.sprintf "node %s: row width mismatch" name)
          else begin
            st.current <- Some (name, fanins, (pattern, out.[0]) :: rows, start);
            process rest
          end
        | None -> assert false)
      | [ out ] when st.current <> None && (out = "0" || out = "1") -> (
        (* constant node: row with no inputs *)
        match st.current with
        | Some (name, fanins, rows, start) ->
          st.current <- Some (name, fanins, ("", out.[0]) :: rows, start);
          process rest
        | None -> assert false)
      | directive :: _ when String.length directive > 0 && directive.[0] = '.' ->
        err ("unsupported BLIF directive " ^ directive)
      | w :: _ -> err ("unexpected token " ^ w))
  in
  match process (logical_lines text) with
  | Ok net -> (
    match Network.validate net with
    | Ok () -> Ok net
    | Error e -> Error { line = 0; context = ""; message = e })
  | Error e -> Error e

let read_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

let network_of_file path = network_of_string (read_file path)

let network_to_string net =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (".model " ^ net.Network.model ^ "\n");
  Buffer.add_string buf (".inputs " ^ String.concat " " net.Network.inputs ^ "\n");
  Buffer.add_string buf (".outputs " ^ String.concat " " net.Network.outputs ^ "\n");
  List.iter
    (fun n ->
      Buffer.add_string buf
        (".names " ^ String.concat " " (n.Network.fanins @ [ n.Network.name ]) ^ "\n");
      let nv = Sop.num_vars n.Network.sop in
      List.iter
        (fun c -> Buffer.add_string buf (Cube.to_string nv c ^ " 1\n"))
        (Sop.cubes n.Network.sop))
    net.Network.nodes;
  Buffer.add_string buf ".end\n";
  Buffer.contents buf

let network_to_file path net =
  let oc = open_out path in
  output_string oc (network_to_string net);
  close_out oc

(* ------------------------------------------------------------------ *)
(* Mapped circuits.                                                    *)
(* ------------------------------------------------------------------ *)

(* Gates in a canonical order: Kahn's topological sort that always
   draws the ready node with the smallest name.  The order depends only
   on the named structure, never on internal node ids, so a parse/emit
   round trip reproduces the file byte for byte. *)
let emit_order circ =
  let emittable id =
    match Circuit.kind circ id with
    | Circuit.Const _ | Circuit.Cell _ -> true
    | _ -> false
  in
  let module S = Set.Make (struct
    type t = string * Circuit.node_id

    let compare = Stdlib.compare
  end) in
  let deps = Hashtbl.create 64 in
  let ready = ref S.empty in
  Circuit.iter_live circ (fun id ->
      if emittable id then begin
        let n =
          match Circuit.kind circ id with
          | Circuit.Cell (_, fs) ->
            Array.fold_left (fun a f -> if emittable f then a + 1 else a) 0 fs
          | _ -> 0
        in
        Hashtbl.replace deps id n;
        if n = 0 then ready := S.add (Circuit.name circ id, id) !ready
      end);
  let out = ref [] in
  while not (S.is_empty !ready) do
    let ((_, id) as elt) = S.min_elt !ready in
    ready := S.remove elt !ready;
    Hashtbl.remove deps id;
    out := id :: !out;
    List.iter
      (fun (p : Circuit.pin) ->
        match Hashtbl.find_opt deps p.sink with
        | Some n ->
          let n = n - 1 in
          Hashtbl.replace deps p.sink n;
          if n = 0 then
            ready := S.add (Circuit.name circ p.sink, p.sink) !ready
        | None -> ())
      (Circuit.fanouts circ id)
  done;
  List.rev !out

let circuit_to_string circ =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf ".model mapped\n";
  Buffer.add_string buf
    (".inputs "
    ^ String.concat " " (List.map (Circuit.name circ) (Circuit.pis circ))
    ^ "\n");
  Buffer.add_string buf
    (".outputs "
    ^ String.concat " " (List.map (Circuit.name circ) (Circuit.pos circ))
    ^ "\n");
  List.iter
    (fun id ->
      match Circuit.kind circ id with
      | Circuit.Pi | Circuit.Po _ -> ()
      | Circuit.Const b ->
        Buffer.add_string buf
          (Printf.sprintf ".names %s\n%s" (Circuit.name circ id)
             (if b then "1\n" else ""))
      | Circuit.Cell (c, fs) ->
        Buffer.add_string buf (".gate " ^ c.Cell.name);
        Array.iteri
          (fun i f ->
            Buffer.add_string buf
              (Printf.sprintf " %s=%s" (pin_name i) (Circuit.name circ f)))
          fs;
        Buffer.add_string buf (Printf.sprintf " O=%s\n" (Circuit.name circ id)))
    (emit_order circ);
  (* PO connections: emit a buffer-free alias only when names differ *)
  List.iter
    (fun po ->
      let d = Circuit.po_driver circ po in
      if Circuit.name circ po <> Circuit.name circ d then
        Buffer.add_string buf
          (Printf.sprintf ".names %s %s\n1 1\n" (Circuit.name circ d)
             (Circuit.name circ po)))
    (Circuit.pos circ);
  Buffer.add_string buf ".end\n";
  Buffer.contents buf

let circuit_to_file path circ =
  let oc = open_out path in
  output_string oc (circuit_to_string circ);
  close_out oc

let circuit_of_string lib text =
  let ( let* ) = Result.bind in
  let inputs = ref [] and outputs = ref [] in
  let gates = ref [] (* (cell, [(pin_idx, net)], out_net) *) in
  let aliases = ref [] (* (src, dst) from 2-signal identity .names *) in
  let consts = ref [] (* (net, value) *) in
  let pending_names = ref None in
  let seen_model = ref false in
  let err0 message = Error { line = 0; context = ""; message } in
  let rec process = function
    | [] -> Ok ()
    | (no, line) :: rest -> (
      let err message = Error { line = no; context = clip line; message } in
      match words line with
      | [] -> process rest
      | ".model" :: _ ->
        if !seen_model then err "duplicate .model directive"
        else begin
          seen_model := true;
          process rest
        end
      | ".inputs" :: ins ->
        inputs := !inputs @ ins;
        process rest
      | ".outputs" :: outs ->
        outputs := !outputs @ outs;
        process rest
      | [ ".end" ] -> Ok ()
      | [ ".gate" ] | [ ".gate"; _ ] -> err "truncated .gate line"
      | ".gate" :: cell_name :: conns -> (
        match Library.find_opt lib cell_name with
        | None -> err ("unknown cell " ^ cell_name)
        | Some cell ->
          let* pins, out =
            List.fold_left
              (fun acc conn ->
                let* pins, out = acc in
                match String.index_opt conn '=' with
                | None -> err ("bad connection " ^ conn)
                | Some i ->
                  let formal = String.sub conn 0 i in
                  let actual =
                    String.sub conn (i + 1) (String.length conn - i - 1)
                  in
                  if formal = "O" then Ok (pins, Some actual)
                  else
                    let rec find_pin j =
                      if j >= Cell.arity cell then None
                      else if pin_name j = formal then Some j
                      else find_pin (j + 1)
                    in
                    (match find_pin 0 with
                    | Some j -> Ok ((j, actual) :: pins, out)
                    | None -> err ("unknown pin " ^ formal)))
              (Ok ([], None))
              conns
          in
          (match out with
          | None -> err ("gate without output: " ^ cell_name)
          | Some out ->
            if List.length pins <> Cell.arity cell then
              err ("gate pin count mismatch: " ^ cell_name)
            else begin
              gates := (cell, pins, out) :: !gates;
              process rest
            end))
      | [ ".names"; src; dst ] ->
        pending_names := Some (`Alias (src, dst));
        process rest
      | [ ".names"; net ] ->
        pending_names := Some (`Const net);
        consts := (net, false) :: !consts;
        process rest
      | [ "1"; "1" ] -> (
        match !pending_names with
        | Some (`Alias (src, dst)) ->
          aliases := (src, dst) :: !aliases;
          pending_names := None;
          process rest
        | Some (`Const _) | None -> err "unexpected 1 1 row")
      | [ "1" ] -> (
        match !pending_names with
        | Some (`Const net) ->
          (* flip the value in place: constants must keep their file
             order, or a round trip would renumber them *)
          consts :=
            List.map (fun (n, v) -> if n = net then (n, true) else (n, v)) !consts;
          pending_names := None;
          process rest
        | Some (`Alias _) | None -> err "unexpected 1 row")
      | w :: _ -> err ("unexpected token in mapped blif: " ^ w))
  in
  let* () = process (logical_lines text) in
  (* elaborate *)
  let circ = Circuit.create lib in
  let ids = Hashtbl.create 64 in
  List.iter (fun i -> Hashtbl.add ids i (Circuit.add_pi circ ~name:i)) !inputs;
  List.iter
    (fun (net, v) ->
      let id = Circuit.add_const circ ~name:net v in
      Hashtbl.add ids net id)
    (List.rev !consts);
  let gates = List.rev !gates in
  (* iterate to fixpoint: create gates whose fanins are ready *)
  let remaining = ref gates in
  let progress = ref true in
  while !remaining <> [] && !progress do
    progress := false;
    let still = ref [] in
    List.iter
      (fun ((cell, pins, out) as gate) ->
        let ready =
          List.for_all (fun (_, net) -> Hashtbl.mem ids net) pins
        in
        if ready then begin
          let fanins = Array.make (Cell.arity cell) (-1) in
          List.iter (fun (j, net) -> fanins.(j) <- Hashtbl.find ids net) pins;
          Hashtbl.add ids out (Circuit.add_cell circ ~name:out cell fanins);
          progress := true
        end
        else still := gate :: !still)
      !remaining;
    remaining := List.rev !still
  done;
  if !remaining <> [] then err0 "could not order gates (cycle or missing net)"
  else begin
    let resolve net =
      match Hashtbl.find_opt ids net with
      | Some id -> Ok id
      | None -> (
        match List.find_opt (fun (_, dst) -> dst = net) !aliases with
        | Some (src, _) -> (
          match Hashtbl.find_opt ids src with
          | Some id -> Ok id
          | None -> err0 ("undefined net " ^ net))
        | None -> err0 ("undefined net " ^ net))
    in
    let rec attach = function
      | [] -> Ok circ
      | o :: rest ->
        let* d = resolve o in
        let name = if Hashtbl.mem ids o && Circuit.name circ d = o then o ^ "$po" else o in
        ignore (Circuit.add_po circ ~name d);
        attach rest
    in
    attach !outputs
  end

let circuit_of_file lib path = circuit_of_string lib (read_file path)
