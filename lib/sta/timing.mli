(** Static timing analysis with the paper's linear delay model:
    [D(s) = tau(s) + C(s) * R(s)] per gate, arrival/required times per
    signal, circuit delay = latest primary-output arrival.

    An analysis is a snapshot; re-run {!analyze} after structural
    edits.  The POWDER delay-legality check for a candidate
    substitution uses the snapshot plus the incremental load rules of
    Section 3.4 (see {!Powder}). *)

type t

val gate_delay : Netlist.Circuit.t -> Netlist.Circuit.node_id -> float
(** Delay through a node with its current load (0 for PI/Const/PO). *)

val delay_with_load : Netlist.Circuit.t -> Netlist.Circuit.node_id -> float -> float
(** Delay through a node if its load were the given value. *)

val analyze : ?required_time:float -> Netlist.Circuit.t -> t
(** Compute arrival times; [required_time] (default: the computed
    circuit delay) is imposed on every primary output and propagated
    backwards. *)

val update :
  ?required_time:float -> t -> dirty:Netlist.Circuit.node_id list -> t
(** [update ?required_time t ~dirty] re-analyzes incrementally after
    structural edits: [dirty] must cover every node id the circuit's
    edit log recorded since [t] was produced
    (see {!Netlist.Circuit.edits_since}), and [required_time] must be
    the same constraint option passed to the original {!analyze}.  Only
    the affected cone is recomputed (change-pruned forward and backward
    sweeps); the result is bit-equal over live nodes to a from-scratch
    [analyze ?required_time] on the edited circuit.  In unconstrained
    mode a bitwise change of the circuit delay moves the implicit PO
    deadline, forcing one full (but cheap) backward pass.  Dead nodes
    retain stale entries. *)

val circuit : t -> Netlist.Circuit.t
val arrival : t -> Netlist.Circuit.node_id -> float
val required : t -> Netlist.Circuit.node_id -> float
(** [infinity] for nodes with no path to a PO. *)

val slack : t -> Netlist.Circuit.node_id -> float
val circuit_delay : t -> float
val required_time : t -> float

val critical_path : t -> Netlist.Circuit.node_id list
(** One latest-arrival path, inputs first, ending at a PO driver. *)

val pp_summary : Format.formatter -> t -> unit
