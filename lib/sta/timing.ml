module Circuit = Netlist.Circuit
module Cell = Gatelib.Cell

type t = {
  circ : Circuit.t;
  arrival : float array;
  required : float array;
  delay : float;
  req_time : float;
}

let delay_with_load circ id load =
  match Circuit.kind circ id with
  | Circuit.Cell (c, _) -> c.Cell.tau +. (c.Cell.drive_res *. load)
  | Circuit.Pi | Circuit.Const _ | Circuit.Po _ -> 0.0

let gate_delay circ id = delay_with_load circ id (Circuit.load_of circ id)

let m_analyses = Obs.Metrics.counter "sta.analyses"

let analyze ?required_time circ =
  Obs.Metrics.incr m_analyses;
  let n = Circuit.num_nodes circ in
  let arrival = Array.make n 0.0 in
  let order = Circuit.topo_order circ in
  Array.iter
    (fun id ->
      match Circuit.kind circ id with
      | Circuit.Pi | Circuit.Const _ -> arrival.(id) <- 0.0
      | Circuit.Po d -> arrival.(id) <- arrival.(d)
      | Circuit.Cell (_, fs) ->
        let inputs_ready =
          Array.fold_left (fun acc f -> Float.max acc arrival.(f)) 0.0 fs
        in
        arrival.(id) <- inputs_ready +. gate_delay circ id)
    order;
  let delay =
    List.fold_left
      (fun acc po -> Float.max acc arrival.(Circuit.po_driver circ po))
      0.0 (Circuit.pos circ)
  in
  let req_time = match required_time with Some r -> r | None -> delay in
  let required = Array.make n infinity in
  List.iter
    (fun po ->
      let d = Circuit.po_driver circ po in
      required.(d) <- Float.min required.(d) req_time;
      required.(po) <- req_time)
    (Circuit.pos circ);
  for k = Array.length order - 1 downto 0 do
    let id = order.(k) in
    List.iter
      (fun p ->
        let s = p.Circuit.sink in
        if Circuit.is_live circ s && not (Circuit.is_po_node circ s) then
          required.(id) <-
            Float.min required.(id) (required.(s) -. gate_delay circ s))
      (Circuit.fanouts circ id)
  done;
  { circ; arrival; required; delay; req_time }

let m_updates = Obs.Metrics.counter "sta.incremental_updates"

(* Incremental re-analysis after structural edits.  [dirty] is the
   circuit edit-log suffix covering every mutation since this snapshot
   was produced; the update recomputes arrival/required only from those
   seeds outward, stopping wherever a recomputed value is bitwise equal
   to the stored one.  Because max/min folds over non-NaN floats are
   order-independent and every node's value is a pure function of its
   neighbours' values plus its own load, the result is bit-equal, over
   live nodes, to a fresh [analyze ?required_time] — the property
   test_sta.ml asserts.  Dead nodes keep stale entries. *)
let update ?required_time t ~dirty =
  Obs.Metrics.incr m_updates;
  let circ = t.circ in
  let n = Circuit.num_nodes circ in
  let grow default a =
    if Array.length a >= n then a
    else begin
      let b = Array.make (max n (2 * Array.length a)) default in
      Array.blit a 0 b 0 (Array.length a);
      b
    end
  in
  let arrival = grow 0.0 t.arrival in
  let required = grow infinity t.required in
  let order = Circuit.topo_order circ in
  let fwd = Array.make n false in
  let bwd = Array.make n false in
  List.iter
    (fun id ->
      (* ids can be dead or (after a rolled-back alloc) out of range *)
      if id >= 0 && id < n then begin
        fwd.(id) <- true;
        bwd.(id) <- true;
        (* a logged node's load (hence gate delay) may have changed,
           which shifts the required times of its fanins *)
        match Circuit.kind circ id with
        | Circuit.Cell (_, fs) -> Array.iter (fun f -> bwd.(f) <- true) fs
        | Circuit.Po d -> bwd.(d) <- true
        | Circuit.Pi | Circuit.Const _ -> ()
      end)
    dirty;
  (* forward pass: arrival times, change-pruned along the TFO *)
  Array.iter
    (fun id ->
      if fwd.(id) then begin
        let a =
          match Circuit.kind circ id with
          | Circuit.Pi | Circuit.Const _ -> 0.0
          | Circuit.Po d -> arrival.(d)
          | Circuit.Cell (_, fs) ->
            Array.fold_left (fun acc f -> Float.max acc arrival.(f)) 0.0 fs
            +. gate_delay circ id
        in
        if a <> arrival.(id) then begin
          arrival.(id) <- a;
          List.iter
            (fun p ->
              let s = p.Circuit.sink in
              if Circuit.is_live circ s && not (Circuit.is_po_node circ s)
              then fwd.(s) <- true)
            (Circuit.fanouts circ id)
        end
      end)
    order;
  let delay =
    List.fold_left
      (fun acc po -> Float.max acc arrival.(Circuit.po_driver circ po))
      0.0 (Circuit.pos circ)
  in
  let req_time = match required_time with Some r -> r | None -> delay in
  if req_time <> t.req_time then begin
    (* the PO deadline itself moved (unconstrained mode after a delay
       change): every required time shifts, so redo the backward pass *)
    Array.fill required 0 (Array.length required) infinity;
    List.iter
      (fun po ->
        let d = Circuit.po_driver circ po in
        required.(d) <- Float.min required.(d) req_time;
        required.(po) <- req_time)
      (Circuit.pos circ);
    for k = Array.length order - 1 downto 0 do
      let id = order.(k) in
      List.iter
        (fun p ->
          let s = p.Circuit.sink in
          if Circuit.is_live circ s && not (Circuit.is_po_node circ s) then
            required.(id) <-
              Float.min required.(id) (required.(s) -. gate_delay circ s))
        (Circuit.fanouts circ id)
    done
  end
  else begin
    (* deadline unchanged: required times move only under changed sink
       loads / fanout sets; walk reverse-topologically, change-pruned *)
    for k = Array.length order - 1 downto 0 do
      let id = order.(k) in
      if bwd.(id) then begin
        let r =
          List.fold_left
            (fun acc p ->
              let s = p.Circuit.sink in
              if Circuit.is_po_node circ s then Float.min acc req_time
              else if Circuit.is_live circ s then
                Float.min acc (required.(s) -. gate_delay circ s)
              else acc)
            infinity
            (Circuit.fanouts circ id)
        in
        if r <> required.(id) then begin
          required.(id) <- r;
          match Circuit.kind circ id with
          | Circuit.Cell (_, fs) -> Array.iter (fun f -> bwd.(f) <- true) fs
          | Circuit.Pi | Circuit.Const _ | Circuit.Po _ -> ()
        end
      end
    done;
    (* PO nodes carry the deadline directly (fresh POs start at inf) *)
    List.iter
      (fun id ->
        if id >= 0 && id < n && Circuit.is_po_node circ id then
          required.(id) <- req_time)
      dirty
  end;
  { t with arrival; required; delay; req_time }

let circuit t = t.circ
let arrival t id = t.arrival.(id)
let required t id = t.required.(id)
let slack t id = t.required.(id) -. t.arrival.(id)
let circuit_delay t = t.delay
let required_time t = t.req_time

let critical_path t =
  let circ = t.circ in
  let worst_po =
    List.fold_left
      (fun acc po ->
        let d = Circuit.po_driver circ po in
        match acc with
        | None -> Some d
        | Some best -> if t.arrival.(d) > t.arrival.(best) then Some d else acc)
      None (Circuit.pos circ)
  in
  let rec walk id acc =
    let acc = id :: acc in
    let fs = Circuit.fanins circ id in
    if Array.length fs = 0 then acc
    else begin
      let eps = 1e-9 in
      let target = t.arrival.(id) -. gate_delay circ id in
      let pred =
        Array.fold_left
          (fun best f ->
            match best with
            | Some _ -> best
            | None ->
              if Float.abs (t.arrival.(f) -. target) < eps then Some f else None)
          None fs
      in
      match pred with
      | Some f -> walk f acc
      | None ->
        (* numeric fallback: take the latest fanin *)
        let f =
          Array.fold_left
            (fun best f ->
              match best with
              | None -> Some f
              | Some b -> if t.arrival.(f) > t.arrival.(b) then Some f else best)
            None fs
        in
        (match f with Some f -> walk f acc | None -> acc)
    end
  in
  match worst_po with None -> [] | Some d -> walk d []

let pp_summary fmt t =
  Format.fprintf fmt "delay=%.2f required=%.2f" t.delay t.req_time
