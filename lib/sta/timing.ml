module Circuit = Netlist.Circuit
module Cell = Gatelib.Cell

type t = {
  circ : Circuit.t;
  arrival : float array;
  required : float array;
  delay : float;
  req_time : float;
}

let delay_with_load circ id load =
  match Circuit.kind circ id with
  | Circuit.Cell (c, _) -> c.Cell.tau +. (c.Cell.drive_res *. load)
  | Circuit.Pi | Circuit.Const _ | Circuit.Po _ -> 0.0

let gate_delay circ id = delay_with_load circ id (Circuit.load_of circ id)

let m_analyses = Obs.Metrics.counter "sta.analyses"

let analyze ?required_time circ =
  Obs.Metrics.incr m_analyses;
  let n = Circuit.num_nodes circ in
  let arrival = Array.make n 0.0 in
  let order = Circuit.topo_order circ in
  Array.iter
    (fun id ->
      match Circuit.kind circ id with
      | Circuit.Pi | Circuit.Const _ -> arrival.(id) <- 0.0
      | Circuit.Po d -> arrival.(id) <- arrival.(d)
      | Circuit.Cell (_, fs) ->
        let inputs_ready =
          Array.fold_left (fun acc f -> Float.max acc arrival.(f)) 0.0 fs
        in
        arrival.(id) <- inputs_ready +. gate_delay circ id)
    order;
  let delay =
    List.fold_left
      (fun acc po -> Float.max acc arrival.(Circuit.po_driver circ po))
      0.0 (Circuit.pos circ)
  in
  let req_time = match required_time with Some r -> r | None -> delay in
  let required = Array.make n infinity in
  List.iter
    (fun po ->
      let d = Circuit.po_driver circ po in
      required.(d) <- Float.min required.(d) req_time;
      required.(po) <- req_time)
    (Circuit.pos circ);
  for k = Array.length order - 1 downto 0 do
    let id = order.(k) in
    List.iter
      (fun p ->
        let s = p.Circuit.sink in
        if Circuit.is_live circ s && not (Circuit.is_po_node circ s) then
          required.(id) <-
            Float.min required.(id) (required.(s) -. gate_delay circ s))
      (Circuit.fanouts circ id)
  done;
  { circ; arrival; required; delay; req_time }

let circuit t = t.circ
let arrival t id = t.arrival.(id)
let required t id = t.required.(id)
let slack t id = t.required.(id) -. t.arrival.(id)
let circuit_delay t = t.delay
let required_time t = t.req_time

let critical_path t =
  let circ = t.circ in
  let worst_po =
    List.fold_left
      (fun acc po ->
        let d = Circuit.po_driver circ po in
        match acc with
        | None -> Some d
        | Some best -> if t.arrival.(d) > t.arrival.(best) then Some d else acc)
      None (Circuit.pos circ)
  in
  let rec walk id acc =
    let acc = id :: acc in
    let fs = Circuit.fanins circ id in
    if Array.length fs = 0 then acc
    else begin
      let eps = 1e-9 in
      let target = t.arrival.(id) -. gate_delay circ id in
      let pred =
        Array.fold_left
          (fun best f ->
            match best with
            | Some _ -> best
            | None ->
              if Float.abs (t.arrival.(f) -. target) < eps then Some f else None)
          None fs
      in
      match pred with
      | Some f -> walk f acc
      | None ->
        (* numeric fallback: take the latest fanin *)
        let f =
          Array.fold_left
            (fun best f ->
              match best with
              | None -> Some f
              | Some b -> if t.arrival.(f) > t.arrival.(b) then Some f else best)
            None fs
        in
        (match f with Some f -> walk f acc | None -> acc)
    end
  in
  match worst_po with None -> [] | Some d -> walk d []

let pp_summary fmt t =
  Format.fprintf fmt "delay=%.2f required=%.2f" t.delay t.req_time
