module G = Aig.Graph
module Bv = Aig.Bitvec

let comparator ~width =
  let g = G.create () in
  let a = Bv.input g "a" width in
  let b = Bv.input g "b" width in
  let lt = Bv.lt g a b in
  let eq = Bv.eq g a b in
  G.add_po g "lt" lt;
  G.add_po g "eq" eq;
  G.add_po g "gt" (G.and_ g (G.compl_ lt) (G.compl_ eq));
  g

let square_plus ~width =
  let g = G.create () in
  let x = Bv.input g "x" width in
  (* x*x via shift-and-add, truncated to [width] bits *)
  let acc = ref (Bv.const g 0 ~width) in
  for i = 0 to width - 1 do
    let partial =
      Array.init width (fun j ->
          if j < i then G.lit_false else G.and_ g x.(i) x.(j - i))
    in
    let sum, _ = Bv.add g !acc partial in
    acc := sum
  done;
  let result, _ = Bv.add g !acc x in
  Bv.outputs g "f" result;
  g

let clip ~in_bits ~out_bits =
  let g = G.create () in
  let x = Bv.input g "x" in_bits in
  let high = Array.sub x out_bits (in_bits - out_bits) in
  let saturate = Bv.reduce_or g high in
  let out =
    Array.init out_bits (fun i -> G.or_ g saturate x.(i))
  in
  Bv.outputs g "y" out;
  g

let rd ~inputs =
  let g = G.create () in
  let x = Bv.input g "x" inputs in
  let count = Bv.popcount g x in
  Bv.outputs g "cnt" count;
  g

let sym9 () =
  let g = G.create () in
  let x = Bv.input g "x" 9 in
  let count = Bv.popcount g x in
  let pad = Array.init 4 (fun i -> if i < Array.length count then count.(i) else G.lit_false) in
  let ge3 = G.compl_ (Bv.lt g pad (Bv.const g 3 ~width:4)) in
  let le6 = Bv.lt g pad (Bv.const g 7 ~width:4) in
  G.add_po g "f" (G.and_ g ge3 le6);
  g

let sym9_twolevel () =
  (* same symmetric function, built from the union of the elementary
     symmetric "exactly k" terms for k = 3..6, each an OR over
     cardinality comparisons of the two input halves *)
  let g = G.create () in
  let x = Bv.input g "x" 9 in
  let lo = Bv.popcount g (Array.sub x 0 4) in
  let hi = Bv.popcount g (Array.sub x 4 5) in
  let pad v = Array.init 4 (fun i -> if i < Array.length v then v.(i) else G.lit_false) in
  let lo = pad lo and hi = pad hi in
  let eq_const v k = Bv.eq g v (Bv.const g k ~width:4) in
  let terms = ref [] in
  for total = 3 to 6 do
    for in_lo = 0 to min 4 total do
      let in_hi = total - in_lo in
      if in_hi >= 0 && in_hi <= 5 then
        terms := G.and_ g (eq_const lo in_lo) (eq_const hi in_hi) :: !terms
    done
  done;
  G.add_po g "f" (G.or_list g !terms);
  g

let sym9_chain () =
  (* same symmetric function again, counting serially bit-by-bit — a
     third structure for the same truth table (9symml stand-in) *)
  let g = G.create () in
  let x = Bv.input g "x" 9 in
  let acc = ref (Bv.const g 0 ~width:4) in
  Array.iter
    (fun bit ->
      let one = [| bit; G.lit_false; G.lit_false; G.lit_false |] in
      let sum, _ = Bv.add g !acc one in
      acc := sum)
    x;
  let ge3 = G.compl_ (Bv.lt g !acc (Bv.const g 3 ~width:4)) in
  let le6 = Bv.lt g !acc (Bv.const g 7 ~width:4) in
  G.add_po g "f" (G.and_ g ge3 le6);
  g

(* the t481-style core function over 16 literals (lits may be inputs or
   constants, enabling Shannon expansion); [variant] selects a
   structurally different but equivalent XOR decomposition so that
   copies do not merge in the strashed AIG *)
let t481_core g ~variant lits =
  let xor_v a b =
    match variant land 3 with
    | 0 -> G.xor g a b
    | 1 -> G.and_ g (G.or_ g a b) (G.compl_ (G.and_ g a b))
    | 2 -> G.compl_ (G.or_ g (G.and_ g a b) (G.and_ g (G.compl_ a) (G.compl_ b)))
    | _ -> G.or_ g (G.and_ g a (G.compl_ b)) (G.and_ g (G.compl_ a) b)
  in
  let pair i = xor_v lits.(2 * i) lits.(2 * i + 1) in
  let p = Array.init 8 pair in
  let q = Array.init 4 (fun j -> G.or_ g p.(2 * j) p.(2 * j + 1)) in
  let r0 = G.and_ g q.(0) q.(1) in
  let r1 = xor_v q.(2) q.(3) in
  xor_v r0 (G.compl_ r1)

let t481_like () =
  let g = G.create () in
  let x = Bv.input g "x" 16 in
  G.add_po g "f" (t481_core g ~variant:0 x);
  g

let t481_bloated () =
  (* Shannon-expand on x0 and x1: four structurally distinct cofactor
     copies glued by a mux tree — the redundant starting point the
     paper's t481 row begins from (its huge reduction comes from
     removing exactly this kind of redundancy) *)
  let g = G.create () in
  let x = Bv.input g "x" 16 in
  let cofactor v0 v1 variant =
    let lits = Array.copy x in
    lits.(0) <- (if v0 then G.lit_true else G.lit_false);
    lits.(1) <- (if v1 then G.lit_true else G.lit_false);
    t481_core g ~variant lits
  in
  let f00 = cofactor false false 1 in
  let f01 = cofactor false true 2 in
  let f10 = cofactor true false 3 in
  let f11 = cofactor true true 1 in
  let lo = G.mux g ~sel:x.(1) ~t1:f01 ~e0:f00 in
  let hi = G.mux g ~sel:x.(1) ~t1:f11 ~e0:f10 in
  G.add_po g "f" (G.mux g ~sel:x.(0) ~t1:hi ~e0:lo);
  g

(* The 74181 in active-high logic.  Internal terms per bit i:
   gi = ai + bi*s0 + !bi*s1   (actually classic equations below) *)
let alu181 () =
  let g = G.create () in
  let a = Bv.input g "a" 4 in
  let b = Bv.input g "b" 4 in
  let s = Bv.input g "s" 4 in
  let m = G.add_pi g "m" in
  let cn = G.add_pi g "cn" in
  (* classic internal generate/propagate terms *)
  let gi = Array.init 4 (fun i ->
      G.compl_
        (G.or_list g
           [ a.(i);
             G.and_ g b.(i) s.(0);
             G.and_ g (G.compl_ b.(i)) s.(1) ]))
  in
  let pi_ = Array.init 4 (fun i ->
      G.compl_
        (G.or_list g
           [ G.and_list g [ G.compl_ b.(i) ; s.(2); a.(i) ];
             G.and_list g [ b.(i); s.(3); a.(i) ] ]))
  in
  (* carry chain, suppressed in logic mode (m = 1) *)
  let mbar = G.compl_ m in
  let carries = Array.make 5 G.lit_false in
  carries.(0) <- cn;
  for i = 0 to 3 do
    (* c_{i+1} = g_i' + p_i' c_i  in the active-high reformulation:
       generate when NOT gi, propagate when NOT pi *)
    carries.(i + 1) <-
      G.or_ g (G.compl_ gi.(i)) (G.and_ g (G.compl_ pi_.(i)) carries.(i))
  done;
  (* f_i = (g_i xor p_i) xor (m' & c_i): carries only act in arithmetic
     mode *)
  let f =
    Array.init 4 (fun i ->
        G.xor g (G.xor g gi.(i) pi_.(i)) (G.and_ g mbar carries.(i)))
  in
  Bv.outputs g "f" f;
  G.add_po g "cout" carries.(4);
  G.add_po g "aeqb" (Bv.reduce_and g f);
  G.add_po g "px" (Bv.reduce_and g (Array.map G.compl_ pi_));
  G.add_po g "gx" (Bv.reduce_or g (Array.map G.compl_ gi));
  g

let alu_small () =
  let g = G.create () in
  let a = Bv.input g "a" 4 in
  let b = Bv.input g "b" 4 in
  let op = Bv.input g "op" 2 in
  let sum, cout = Bv.add g a b in
  let and_v = Bv.and_ g a b in
  let or_v = Bv.or_ g a b in
  let xor_v = Bv.xor g a b in
  let sel01 = Bv.mux g op.(0) and_v sum in
  let sel23 = Bv.mux g op.(0) xor_v or_v in
  let f = Bv.mux g op.(1) sel23 sel01 in
  Bv.outputs g "f" f;
  G.add_po g "cout" (G.and_ g cout (G.and_ g (G.compl_ op.(0)) (G.compl_ op.(1))));
  G.add_po g "zero" (G.compl_ (Bv.reduce_or g f));
  g

let priority_interrupt () =
  let g = G.create () in
  let req = Bv.input g "req" 27 in
  let en = Bv.input g "en" 9 in
  let active =
    Array.init 3 (fun grp ->
        Array.init 9 (fun i -> G.and_ g req.((grp * 9) + i) en.(i)))
  in
  let group_any = Array.map (fun a -> Bv.reduce_or g a) active in
  (* group priority: 0 beats 1 beats 2 *)
  let grant =
    [|
      group_any.(0);
      G.and_ g group_any.(1) (G.compl_ group_any.(0));
      G.and_list g [ group_any.(2); G.compl_ group_any.(0); G.compl_ group_any.(1) ];
    |]
  in
  Array.iteri (fun i l -> G.add_po g (Printf.sprintf "grant_%d" i) l) grant;
  (* encoded line of the highest-priority active channel in the chosen
     group: channel priority 0 beats 1 ... *)
  let encode grp =
    let sel = Array.make 9 G.lit_false in
    let blocked = ref G.lit_false in
    for i = 0 to 8 do
      sel.(i) <- G.and_ g active.(grp).(i) (G.compl_ !blocked);
      blocked := G.or_ g !blocked active.(grp).(i)
    done;
    Array.init 4 (fun bit ->
        G.or_list g
          (List.filter_map
             (fun i -> if i land (1 lsl bit) <> 0 then Some sel.(i) else None)
             (List.init 9 (fun i -> i))))
  in
  let e0 = encode 0 and e1 = encode 1 and e2 = encode 2 in
  let enc = Bv.mux g grant.(0) e0 (Bv.mux g grant.(1) e1 e2) in
  Bv.outputs g "line" enc;
  g

let alu8 () =
  let g = G.create () in
  let a = Bv.input g "a" 8 in
  let b = Bv.input g "b" 8 in
  let op = Bv.input g "op" 3 in
  let cin = G.add_pi g "cin" in
  let sum, cadd = Bv.add g ~carry_in:cin a b in
  let diff, csub = Bv.sub g a b in
  let rot = Bv.rotate_left_var g a (Array.sub b 0 3) in
  let shl =
    Array.init 8 (fun i -> if i = 0 then cin else a.(i - 1))
  in
  let f01 = Bv.mux g op.(0) diff sum in
  let f23 = Bv.mux g op.(0) (Bv.or_ g a b) (Bv.and_ g a b) in
  let f45 = Bv.mux g op.(0) shl (Bv.xor g a b) in
  let f67 = Bv.mux g op.(0) a rot in
  let lo = Bv.mux g op.(1) f23 f01 in
  let hi = Bv.mux g op.(1) f67 f45 in
  let f = Bv.mux g op.(2) hi lo in
  Bv.outputs g "f" f;
  G.add_po g "cout" (G.mux g ~sel:op.(0) ~t1:csub ~e0:cadd);
  g

let hamming () =
  (* received word: d0..d15 data + c0..c4 checks; compute the syndrome
     over a fixed parity matrix and correct single-bit data errors *)
  let g = G.create () in
  let d = Bv.input g "d" 16 in
  let c = Bv.input g "c" 5 in
  let parity_sets =
    (* data bit i participates in check j iff bit j of (i+1) pattern *)
    Array.init 5 (fun j ->
        List.filter (fun i -> (i + 3) land (1 lsl j) <> 0) (List.init 16 (fun i -> i)))
  in
  let syndrome =
    Array.init 5 (fun j ->
        let data_par = G.xor_list g (List.map (fun i -> d.(i)) parity_sets.(j)) in
        G.xor g data_par c.(j))
  in
  let corrected =
    Array.init 16 (fun i ->
        (* flip data bit i when the syndrome equals its signature *)
        let signature = i + 3 in
        let match_ =
          G.and_list g
            (List.init 5 (fun j ->
                 if signature land (1 lsl j) <> 0 then syndrome.(j)
                 else G.compl_ syndrome.(j)))
        in
        G.xor g d.(i) match_)
  in
  Bv.outputs g "q" corrected;
  G.add_po g "err" (Bv.reduce_or g syndrome);
  g

let rotator ~width =
  let g = G.create () in
  let v = Bv.input g "v" width in
  let bits_needed =
    let rec bits acc = if 1 lsl acc >= width then acc else bits (acc + 1) in
    bits 0
  in
  let amt = Bv.input g "amt" bits_needed in
  Bv.outputs g "r" (Bv.rotate_left_var g v amt);
  g

let dual_alu () =
  let g = G.create () in
  let a = Bv.input g "a" 8 in
  let b = Bv.input g "b" 8 in
  let op = Bv.input g "op" 2 in
  let sum, _ = Bv.add g a b in
  let lane0 = Bv.mux g op.(0) (Bv.and_ g a b) sum in
  let lane1 = Bv.mux g op.(0) (Bv.xor g a b) (Bv.or_ g a b) in
  let f = Bv.mux g op.(1) lane1 lane0 in
  Bv.outputs g "f" f;
  G.add_po g "eq" (Bv.eq g lane0 lane1);
  g

let multiplier ~width =
  let g = G.create () in
  let a = Bv.input g "a" width in
  let b = Bv.input g "b" width in
  let w2 = 2 * width in
  let acc = ref (Bv.const g 0 ~width:w2) in
  for i = 0 to width - 1 do
    let partial =
      Array.init w2 (fun j ->
          if j < i || j - i >= width then G.lit_false
          else G.and_ g b.(i) a.(j - i))
    in
    let sum, _ = Bv.add g !acc partial in
    acc := sum
  done;
  Bv.outputs g "p" !acc;
  g

let adder_pair ~width =
  let g = G.create () in
  let a = Bv.input g "a" width in
  let b = Bv.input g "b" width in
  let c = Bv.input g "c" width in
  let d = Bv.input g "d" width in
  let s1, c1 = Bv.add g a b in
  let s2, c2 = Bv.add g c d in
  Bv.outputs g "s1" s1;
  Bv.outputs g "s2" s2;
  G.add_po g "carry1" c1;
  G.add_po g "carry2" c2;
  G.add_po g "chk" (Bv.reduce_xor g (Bv.xor g s1 s2));
  g

(* deterministic pseudo-random helper *)
let make_rand seed =
  let state = ref (Int64.of_int (seed * 2 + 1)) in
  fun bound ->
    state := Int64.add (Int64.mul !state 6364136223846793005L) 1442695040888963407L;
    Int64.to_int (Int64.rem (Int64.shift_right_logical !state 17) (Int64.of_int bound))

let feistel () =
  let g = G.create () in
  let l = Bv.input g "l" 16 in
  let r = Bv.input g "r" 16 in
  let k = Bv.input g "k" 16 in
  let rand = make_rand 1977 in
  (* four fixed 4->4 S-boxes *)
  let sboxes =
    Array.init 4 (fun _ -> Array.init 16 (fun _ -> rand 16))
  in
  let apply_sbox box (nibble : G.lit array) =
    Array.init 4 (fun bit ->
        let minterms =
          List.filter (fun m -> sboxes.(box).(m) land (1 lsl bit) <> 0)
            (List.init 16 (fun m -> m))
        in
        G.or_list g
          (List.map
             (fun m ->
               G.and_list g
                 (List.init 4 (fun j ->
                      if m land (1 lsl j) <> 0 then nibble.(j)
                      else G.compl_ nibble.(j))))
             minterms))
  in
  let round l r subkey =
    let x = Bv.xor g r subkey in
    let f =
      Array.concat
        (List.init 4 (fun nib -> apply_sbox nib (Array.sub x (nib * 4) 4)))
    in
    (r, Bv.xor g l f)
  in
  let l1, r1 = round l r k in
  let k2 = Array.init 16 (fun i -> k.((i + 5) mod 16)) in
  let l2, r2 = round l1 r1 k2 in
  Bv.outputs g "lo" l2;
  Bv.outputs g "ro" r2;
  g

let pla ~seed ~ins ~outs ~cubes ~lit_lo ~lit_hi =
  let rand = make_rand seed in
  let g = G.create () in
  let x = Bv.input g "x" ins in
  let cube_lits =
    Array.init cubes (fun _ ->
        let n_lits = lit_lo + rand (max 1 (lit_hi - lit_lo + 1)) in
        let chosen = Array.make ins false in
        let lits = ref [] in
        let added = ref 0 in
        while !added < n_lits do
          let v = rand ins in
          if not chosen.(v) then begin
            chosen.(v) <- true;
            let lit = if rand 2 = 0 then x.(v) else G.compl_ x.(v) in
            lits := lit :: !lits;
            incr added
          end
        done;
        G.and_list g !lits)
  in
  let terms_per_out = Array.make outs [] in
  Array.iter
    (fun cube ->
      let n_sinks = 1 + rand 3 in
      for _ = 1 to n_sinks do
        let o = rand outs in
        terms_per_out.(o) <- cube :: terms_per_out.(o)
      done)
    cube_lits;
  Array.iteri
    (fun o terms -> G.add_po g (Printf.sprintf "o_%d" o) (G.or_list g terms))
    terms_per_out;
  g

(* Synthetic mapped circuits for scale benchmarking: built directly on
   [lib2] (no AIG or tech-mapping pass, which would dominate setup time
   at 100k gates).  Locality-biased fanin selection keeps cones shaped
   like real netlists; deliberate duplicate gates and re-derived
   AND/OR-vs-NAND/NOR pairs seed the functional redundancy POWDER's
   signature matching hunts for; dangling signals are folded into
   OR-reduction trees so the whole netlist is live. *)
let synth ~seed ~gates =
  let module Circuit = Netlist.Circuit in
  let module Library = Gatelib.Library in
  let lib = Library.lib2 in
  let cell n = Library.find lib n in
  let base = [| cell "nand2"; cell "nor2"; cell "and2"; cell "or2" |] in
  let xor2 = cell "xor2" in
  let inv = cell "inv1" in
  let rand = make_rand (seed * 37 + gates) in
  let c = Circuit.create lib in
  let n_pis = max 32 (gates / 25) in
  let signals = ref [] in
  let push id = signals := id :: !signals in
  let pis =
    Array.init n_pis (fun i ->
        let id = Circuit.add_pi c ~name:(Printf.sprintf "pi%d" i) in
        push id;
        id)
  in
  (* Layered, like a mapped combinational benchmark: logic depth stays
     roughly constant as [gates] grows.  A depth-proportional circuit
     (e.g. locality-chained construction) drives internal observability
     — and with it the care bits of the optimizer's signature masks —
     exponentially towards zero, which collapses most signals into a
     few giant compatibility classes and makes candidate generation
     quadratic in circuit size.  Wide-and-shallow keeps the candidate
     funnel realistic at 100k gates. *)
  let n_layers = 12 in
  let per_layer = max 8 (gates / n_layers) in
  let prev1 = ref pis and prev2 = ref [||] in
  let pick () =
    (* mostly the previous layer, sometimes the one before, and a
       steady trickle of PIs to keep support sets overlapping *)
    match rand 8 with
    | 0 -> pis.(rand (Array.length pis))
    | 1 | 2 when Array.length !prev2 > 0 -> !prev2.(rand (Array.length !prev2))
    | _ -> !prev1.(rand (Array.length !prev1))
  in
  (* Functional-alias tracking.  Replayed duplicates and inverter
     chains make some signals provably equal (or complementary) to
     older ones; a 2-input gate fed two aliases of one signal collapses
     to a constant or a buffer, and constants cascade (and2(0,x) = 0,
     xor2(0,x) = x) into huge constant cones whose zero observability
     empties the optimizer's signature care masks — every such target
     then "matches" the entire store and candidate generation drowns.
     Requiring distinct representatives keeps every gate
     non-degenerate. *)
  let alias = Hashtbl.create 64 in
  let rep id =
    match Hashtbl.find_opt alias id with Some r -> r | None -> id
  in
  (* Structural hashing (phase-insensitive): replayed duplicates AND
     chance duplicates — two gates independently drawing the same cell
     and fanin pair, which at layer widths of hundreds happens
     constantly — map to one representative, so the distinctness check
     below also catches xor2(a,b) meeting xor2(b,a) three layers
     later. *)
  let struct_tbl = Hashtbl.create 256 in
  let register id (cl : Gatelib.Cell.t) fs =
    let k =
      if Array.length fs = 1 then (cl.Gatelib.Cell.name, rep fs.(0), -1)
      else begin
        let ra = rep fs.(0) and rb = rep fs.(1) in
        (cl.Gatelib.Cell.name, min ra rb, max ra rb)
      end
    in
    match Hashtbl.find_opt struct_tbl k with
    | Some r -> Hashtbl.replace alias id r
    | None -> Hashtbl.replace struct_tbl k (rep id)
  in
  (* Output taps: a sample of every layer feeds the final xor fold
     directly, the way real mapped benchmarks have primary outputs at
     every logic depth.  Without them observability decays
     multiplicatively over the layers, and the heavy tail of
     near-zero-care signals matches most of the signature store by
     chance — quadratic candidate generation again. *)
  let taps = Hashtbl.create 64 in
  let budget = ref gates in
  while !budget > 0 do
    let width = min per_layer !budget in
    let recent = ref [] in
    let layer =
      Array.init width (fun _ ->
          let f1 = pick () in
          let f2 =
            let rec distinct tries =
              let f = pick () in
              if rep f <> rep f1 || tries > 16 then f else distinct (tries + 1)
            in
            distinct 0
          in
          let id =
            (* xor-dominated mix, for two scale-bench reasons: and/or
               gates drift signal probabilities towards 0/1 (saturating
               signatures into huge compatibility classes) AND
               attenuate observability along every path (draining the
               care masks, so unrelated signals match by chance); both
               effects make candidate generation quadratic with a large
               constant.  xor/inv propagate unconditionally, keeping
               probabilities centred and care masks dense, so the
               signature hits are dominated by the deliberately
               replayed duplicates. *)
            match rand 16 with
            | 0 | 1 -> Circuit.add_cell c inv [| f1 |]
            | 2 | 3 | 4 | 5 | 6 | 7 -> Circuit.add_cell c xor2 [| f1; f2 |]
            | 8 | 9 -> (
              (* replay a recent gate verbatim: a guaranteed
                 equivalent pair for signature matching to find *)
              match !recent with
              | (cl, fs) :: _ -> Circuit.add_cell c cl (Array.copy fs)
              | [] -> Circuit.add_cell c base.(rand 4) [| f1; f2 |])
            | _ -> Circuit.add_cell c base.(rand 4) [| f1; f2 |]
          in
          (match Circuit.kind c id with
          | Circuit.Cell (cl, fs) ->
            (* an inverter is a pure phase change: same representative *)
            if Array.length fs = 1 then Hashtbl.replace alias id (rep fs.(0));
            register id cl fs;
            recent := (cl, fs) :: (if rand 4 = 0 then [] else !recent);
            if List.length !recent > 8 then
              recent := List.filteri (fun i _ -> i < 8) !recent
          | _ -> ());
          if rand 8 = 0 then Hashtbl.replace taps id ();
          push id;
          decr budget;
          id)
    in
    prev2 := !prev1;
    prev1 := layer
  done;
  (* fold every dangling signal, plus the per-layer taps, into XOR
     trees and emit them as POs; xor (not or) so the fold neither
     saturates signatures nor creates provably-equivalent wide cones a
     single substitution could kill *)
  (* one fold leaf per representative: folding two aliases (equal or
     complementary signals) into the same xor tree would cancel them
     into a constant cone *)
  let folded = Hashtbl.create 64 in
  let dangling =
    List.filter
      (fun id ->
        (Circuit.num_fanouts c id = 0 || Hashtbl.mem taps id)
        && (match Circuit.kind c id with
           | Circuit.Cell _ -> true
           | Circuit.Pi | Circuit.Const _ | Circuit.Po _ -> false)
        &&
        let r = rep id in
        if Hashtbl.mem folded r then false
        else begin
          Hashtbl.replace folded r ();
          true
        end)
      (List.rev !signals)
  in
  let n_pos = max 8 (gates / 200) in
  let rec reduce = function
    | [] -> []
    | [ x ] -> [ x ]
    | l when List.length l <= n_pos -> l
    | l ->
      let rec pair = function
        | x :: y :: rest -> Circuit.add_cell c xor2 [| x; y |] :: pair rest
        | tail -> tail
      in
      reduce (pair l)
  in
  List.iteri
    (fun i root -> ignore (Circuit.add_po c ~name:(Printf.sprintf "po%d" i) root))
    (reduce dangling);
  c

let multilevel ~seed ~ins ~outs ~layers ~per_layer ~fanin =
  let rand = make_rand seed in
  let g = G.create () in
  let x = Bv.input g "x" ins in
  let pool = ref (Array.to_list x) in
  let last_layers = ref [] in
  for _ = 1 to layers do
    let arr = Array.of_list !pool in
    let fresh =
      List.init per_layer (fun _ ->
          (* pick [k] distinct signals, biased towards recent layers *)
          let pick () =
            let n = Array.length arr in
            let idx = min (rand n) (rand n) in
            let l = arr.(idx) in
            if rand 2 = 0 then l else G.compl_ l
          in
          let k = 2 + rand (max 1 (fanin - 1)) in
          let rec distinct acc tries =
            if List.length acc >= k || tries > 4 * k then acc
            else
              let l = pick () in
              if List.exists (fun m -> G.node_of m = G.node_of l) acc then
                distinct acc (tries + 1)
              else distinct (l :: acc) (tries + 1)
          in
          let inputs = distinct [] 0 in
          let n_terms = 2 + rand 2 in
          let terms =
            List.init n_terms (fun _ ->
                let subset = List.filter (fun _ -> rand 3 > 0) inputs in
                let subset = if subset = [] then inputs else subset in
                G.and_list g subset)
          in
          G.or_list g terms)
    in
    last_layers := fresh @ !last_layers;
    pool := fresh @ !pool
  done;
  (* outputs drawn from the generated layers (most recent first) so the
     cones stay deep *)
  let candidates = Array.of_list !last_layers in
  for o = 0 to outs - 1 do
    let pickable = max 1 (min (2 * per_layer) (Array.length candidates)) in
    G.add_po g (Printf.sprintf "o_%d" o) candidates.(rand pickable)
  done;
  g
