(** Benchmark-circuit function generators.

    Where an MCNC circuit's function is public knowledge (comparators,
    symmetric rd/sym functions, the 74181 ALU, rotators, parity/Hamming
    networks), the generator reproduces that function; otherwise a
    deterministic seeded two-level (PLA) or multi-level network of
    comparable dimensions stands in.  All generators are pure and
    deterministic. *)

val comparator : width:int -> Aig.Graph.t
(** [gt]/[eq]/[lt] of two unsigned words. *)

val square_plus : width:int -> Aig.Graph.t
(** Arithmetic: low bits of [x*x + x] (z5xp1-style). *)

val clip : in_bits:int -> out_bits:int -> Aig.Graph.t
(** Saturate an unsigned value to [2^out_bits - 1]. *)

val rd : inputs:int -> Aig.Graph.t
(** Symmetric "rate detector": outputs = binary weight of the input
    (rd73, rd84). *)

val sym9 : unit -> Aig.Graph.t
(** 9 inputs; 1 iff between 3 and 6 inputs are high (9sym). *)

val sym9_twolevel : unit -> Aig.Graph.t
(** Same function from its minterm-interval expansion (9symml-style
    alternative structure). *)

val t481_like : unit -> Aig.Graph.t
(** 16-input function with a tiny multi-level form hidden behind a wide
    two-level representation, in the spirit of t481. *)

val alu181 : unit -> Aig.Graph.t
(** The 74181 4-bit ALU: inputs a0-3, b0-3, s0-3, m, cn; outputs f0-3,
    cout, aeqb, px, gx (alu4's function). *)

val alu_small : unit -> Aig.Graph.t
(** 4-bit ALU with 2 op-select bits: add/and/or/xor (alu2-scale). *)

val priority_interrupt : unit -> Aig.Graph.t
(** 27 request lines gated by 9 enables, grouped 3x9, with group
    priority and an encoded grant (C432-style). *)

val alu8 : unit -> Aig.Graph.t
(** 8-bit ALU with 3 op bits: add/sub/and/or/xor/shl/rot/pass
    (C880-scale). *)

val hamming : unit -> Aig.Graph.t
(** 21-bit received word (16 data + 5 checks): syndrome computation and
    single-error correction (C1355-style XOR-rich network). *)

val rotator : width:int -> Aig.Graph.t
(** Barrel rotator (rot-style). *)

val dual_alu : unit -> Aig.Graph.t
(** Two 8-bit lanes sharing op-select, combined by a final comparator
    (dalu-flavoured). *)

val multiplier : width:int -> Aig.Graph.t
(** Low [2*width] bits of an unsigned multiply (f51m-scale at 4). *)

val adder_pair : width:int -> Aig.Graph.t
(** Two independent adders plus a cross-checksum (pair-flavoured). *)

val feistel : unit -> Aig.Graph.t
(** Two toy Feistel rounds with seeded 4->4 S-boxes over 16+16 data and
    16 key bits (des-flavoured). *)

val pla :
  seed:int -> ins:int -> outs:int -> cubes:int -> lit_lo:int -> lit_hi:int ->
  Aig.Graph.t
(** Seeded random two-level network: shared cube pool, each cube feeds
    one to three outputs. *)

val synth : seed:int -> gates:int -> Netlist.Circuit.t
(** Synthetic mapped circuit of roughly [gates] live cells, built
    directly on {!Gatelib.Library.lib2} (no tech-mapping pass): layered
    two-input gates with locality-biased fanins, deliberately seeded
    duplicate gates (so POWDER's signature matching finds work), and
    OR-reduction trees folding every dangling signal into the primary
    outputs.  Pure and deterministic in [(seed, gates)].  This is the
    10k/100k-gate scale-benchmark family. *)

val multilevel :
  seed:int -> ins:int -> outs:int -> layers:int -> per_layer:int -> fanin:int ->
  Aig.Graph.t
(** Seeded random multi-level network of small SOP nodes. *)

val sym9_chain : unit -> Aig.Graph.t
(** Third structure of the 9sym function: serial bit-by-bit counting
    (9symml stand-in). *)

val t481_bloated : unit -> Aig.Graph.t
(** The same t481-style function Shannon-expanded into four structurally
    distinct cofactor copies behind a mux tree: a deliberately redundant
    starting point mirroring how the paper's t481 row collapses. *)
