(** Timed (transport-delay) power estimation — the effect the paper's
    zero-delay model deliberately ignores (it cites glitching at
    roughly 20% of total power but hard to model before layout).

    Random vector pairs are applied to the circuit; an event-driven
    simulation under the linear gate-delay model counts {e every}
    output transition, hazards included.  Comparing against the
    zero-delay count of the same vector pairs isolates the glitch
    contribution, letting the benchmark report how POWDER's
    optimizations affect it — and letting the optimizer's glitch-aware
    cost model ({!Powder.Optimizer}, [--cost glitch]) weight each
    node's estimated activity by its hazard multiplier. *)

type report = {
  zero_delay_switched_cap : float;
      (** [sum C(i) * E(i)] over the vector pairs, functional
          transitions only *)
  timed_switched_cap : float;  (** same, counting every timed event *)
  glitch_fraction : float;
      (** [(timed - zero_delay) / timed], 0 when no glitches *)
  pairs : int;
}

val estimate :
  ?pairs:int ->
  ?seed:int64 ->
  ?input_prob:(string -> float) ->
  Netlist.Circuit.t ->
  report
(** Default 256 vector pairs. *)

val count_pair :
  Netlist.Circuit.t ->
  before:bool list ->
  after:bool list ->
  int array * int array
(** [(timed, zero_delay)] transition counts per node id for the single
    input transition [before -> after] (vectors in {!Netlist.Circuit.pis}
    order).  [timed] counts every transport-delay event the node emits,
    [zero_delay] is 0 or 1 per node.  This is the unit the differential
    tests check against an independent waveform-algebra reference. *)

val node_factors :
  ?pairs:int ->
  ?seed:int64 ->
  ?input_prob:(string -> float) ->
  Netlist.Circuit.t ->
  float array
(** Per-node hazard multiplier [timed / zero_delay] transition counts
    over [pairs] random vector pairs (default 64), indexed by node id
    and clamped to [>= 1.0]; nodes that never switch functionally get
    1.0.  Multiplying a node's zero-delay activity by its factor gives
    a glitch-inclusive activity estimate — the basis of the optimizer's
    [--cost glitch] ranking. *)

val pp_report : Format.formatter -> report -> unit
