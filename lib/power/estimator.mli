(** Zero-delay power estimation (Section 2 of the paper).

    The cost is the switched capacitance [sum_i C(i) * E(i)] over all
    stem signals [i], with [E(i) = 2 p(i) (1 - p(i))] under temporal
    independence of the primary inputs.  Signal probabilities come from
    the attached simulation engine's current pattern set (Monte-Carlo
    with a deterministic seed, or exhaustive patterns for exactness).
    The physical constant [1/2 Vdd^2 f] is a fixed scale factor and is
    exposed separately. *)

type t

val create : Sim.Engine.t -> t
(** Snapshot transition probabilities from the engine's current values.
    The engine must have been simulated. *)

val engine : t -> Sim.Engine.t
val circuit : t -> Netlist.Circuit.t

val signal_prob : t -> Netlist.Circuit.node_id -> float
val transition_prob : t -> Netlist.Circuit.node_id -> float

val node_power : t -> Netlist.Circuit.node_id -> float
(** [C(i) * E(i)] of one stem; 0 for PO nodes and dead nodes. *)

val total : t -> float
(** Circuit switched capacitance (the paper's "power" column).

    Maintained incrementally: the per-node terms are summed by a
    fixed-association pairwise tree, and each call first folds the
    circuit's edit-log suffix (see {!Netlist.Circuit.edits_since}) into
    the affected leaves, so the cost is O(edits since the last call),
    not O(netlist).  The fixed association makes the result bit-equal
    to a from-scratch estimator on the same engine state, regardless of
    the edit history. *)

val watts : ?vdd:float -> ?freq:float -> t -> float
(** [1/2 Vdd^2 f * total]; defaults Vdd = 3.3, f = 20 MHz. *)

val refresh_all : t -> unit
(** Recompute all probabilities from current engine values. *)

val update_after_edit : t -> Netlist.Circuit.node_id -> int
(** After a structural edit whose functional effect starts at node [s]:
    incrementally re-simulate from [s] (levelized, change-pruned — see
    {!Sim.Engine.resim_after_edit}) and refresh the probabilities of
    the nodes whose words changed (the paper's
    [power_estimate_update]).  Returns the number of nodes the engine
    re-evaluated. *)

val transition_of_words : int64 array -> total_patterns:int -> float
(** Transition probability a signature implies. *)

val region_power : t -> bool array -> float
(** Summed [C * E] of the stems inside a node mask — the first term of
    [PG_A] (Equation 3). *)

val region_input_relief : t -> bool array -> float
(** Second term of [PG_A]: [sum_{i in inputs(Dom)} C'(i) * E(i)], where
    [C'(i)] is the part of [i]'s load presented by pins inside the
    region. *)

val region_power_members : t -> bool array -> int array -> float
(** {!region_power} over an explicit member list instead of a
    full-circuit sweep.  [members] must include every node of the mask,
    in ascending id order; the result (including float rounding) is
    identical to {!region_power}. *)

val region_input_relief_members : t -> bool array -> int array -> float
(** {!region_input_relief} driven from the region's member list: the
    region's inputs are recovered from the members' fanins instead of a
    full-circuit sweep.  Same result, including float rounding. *)
