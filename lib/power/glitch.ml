module Circuit = Netlist.Circuit

type report = {
  zero_delay_switched_cap : float;
  timed_switched_cap : float;
  glitch_fraction : float;
  pairs : int;
}

(* a tiny time-ordered event queue: map from time to pending gate
   evaluations scheduled at that instant *)
module Queue_ = Map.Make (Float)

let steady_state circ values vector =
  List.iteri (fun i pi -> values.(pi) <- List.nth vector i) (Circuit.pis circ);
  Array.iter
    (fun id ->
      match Circuit.kind circ id with
      | Circuit.Pi -> ()
      | Circuit.Const b -> values.(id) <- b
      | Circuit.Po d -> values.(id) <- values.(d)
      | Circuit.Cell (c, fs) ->
        values.(id) <- Gatelib.Cell.eval c (Array.map (fun f -> values.(f)) fs))
    (Circuit.topo_order circ)

(* Transport-delay event simulation of one input transition; returns
   the number of output transitions per node. *)
let simulate_transition circ values new_vector transitions =
  let queue = ref Queue_.empty in
  let schedule t node v =
    queue :=
      Queue_.update t
        (function None -> Some [ (node, v) ] | Some l -> Some ((node, v) :: l))
        !queue
  in
  let eval_gate id =
    match Circuit.kind circ id with
    | Circuit.Cell (c, fs) ->
      Gatelib.Cell.eval c (Array.map (fun f -> values.(f)) fs)
    | Circuit.Pi | Circuit.Const _ -> values.(id)
    | Circuit.Po d -> values.(d)
  in
  let propagate_from id t =
    List.iter
      (fun p ->
        let sink = p.Circuit.sink in
        if Circuit.is_live circ sink && not (Circuit.is_po_node circ sink) then begin
          let v = eval_gate sink in
          schedule (t +. Sta.Timing.gate_delay circ sink) sink v
        end)
      (Circuit.fanouts circ id)
  in
  (* apply the new primary-input vector at t = 0 *)
  List.iteri
    (fun i pi ->
      let v = List.nth new_vector i in
      if values.(pi) <> v then begin
        values.(pi) <- v;
        transitions.(pi) <- transitions.(pi) + 1;
        propagate_from pi 0.0
      end)
    (Circuit.pis circ);
  (* drain the event queue in time order *)
  let guard = ref 0 in
  let budget = 200 * Circuit.num_nodes circ in
  while (not (Queue_.is_empty !queue)) && !guard < budget do
    let t, events = Queue_.min_binding !queue in
    queue := Queue_.remove t !queue;
    List.iter
      (fun (node, v) ->
        incr guard;
        (* re-evaluate at fire time: later input changes may have
           cancelled the event *)
        let v_now = eval_gate node in
        ignore v;
        if values.(node) <> v_now then begin
          values.(node) <- v_now;
          transitions.(node) <- transitions.(node) + 1;
          propagate_from node t
        end)
      (List.rev events)
  done

let count_pair circ ~before ~after =
  let n = Circuit.num_nodes circ in
  let values = Array.make n false in
  let timed = Array.make n 0 in
  let zero_delay = Array.make n 0 in
  steady_state circ values before;
  let previous = Array.copy values in
  simulate_transition circ values after timed;
  steady_state circ values after;
  Circuit.iter_live circ (fun id ->
      if values.(id) <> previous.(id) then zero_delay.(id) <- 1);
  (timed, zero_delay)

(* Shared sampling loop: apply [pairs] random vector transitions and
   accumulate per-node timed and zero-delay transition counts. *)
let sample_counts ~pairs ~seed ~input_prob circ =
  let n = Circuit.num_nodes circ in
  let rng = Sim.Rng.create seed in
  let values = Array.make n false in
  let timed = Array.make n 0 in
  let zero_delay = Array.make n 0 in
  let random_vector () =
    List.map
      (fun pi -> Sim.Rng.next_float rng < input_prob (Circuit.name circ pi))
      (Circuit.pis circ)
  in
  let previous = Array.make n false in
  for _ = 1 to pairs do
    let v1 = random_vector () and v2 = random_vector () in
    steady_state circ values v1;
    Array.blit values 0 previous 0 n;
    simulate_transition circ values v2 timed;
    (* functional (zero-delay) transition count for the same pair *)
    steady_state circ values v2;
    Circuit.iter_live circ (fun id ->
        if values.(id) <> previous.(id) then
          zero_delay.(id) <- zero_delay.(id) + 1)
  done;
  (timed, zero_delay)

let estimate ?(pairs = 256) ?(seed = 42L) ?(input_prob = fun _ -> 0.5) circ =
  let timed, zero_delay = sample_counts ~pairs ~seed ~input_prob circ in
  let cap_weighted counts =
    let acc = ref 0.0 in
    Circuit.iter_live circ (fun id ->
        if not (Circuit.is_po_node circ id) then
          acc :=
            !acc
            +. Circuit.load_of circ id
               *. (float_of_int counts.(id) /. float_of_int pairs));
    !acc
  in
  let zd = cap_weighted zero_delay in
  let td = cap_weighted timed in
  {
    zero_delay_switched_cap = zd;
    timed_switched_cap = td;
    glitch_fraction = (if td > 0.0 then (td -. zd) /. td else 0.0);
    pairs;
  }

let node_factors ?(pairs = 64) ?(seed = 42L) ?(input_prob = fun _ -> 0.5) circ =
  let timed, zero_delay = sample_counts ~pairs ~seed ~input_prob circ in
  Array.init (Circuit.num_nodes circ) (fun id ->
      (* a node that never switched functionally carries no zero-delay
         power, so there is nothing to scale: weight 1.  Timed counts
         can only exceed the functional ones (a functional flip is at
         least one timed event), so the ratio is clamped at 1 purely
         against event-budget truncation on pathological netlists. *)
      if zero_delay.(id) = 0 then 1.0
      else
        Float.max 1.0
          (float_of_int timed.(id) /. float_of_int zero_delay.(id)))

let pp_report fmt r =
  Format.fprintf fmt
    "switched cap: %.3f zero-delay vs %.3f timed over %d pairs (glitches = \
     %.1f%% of timed activity)"
    r.zero_delay_switched_cap r.timed_switched_cap r.pairs
    (100.0 *. r.glitch_fraction)
