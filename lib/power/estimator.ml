module Circuit = Netlist.Circuit
module Engine = Sim.Engine

type t = {
  eng : Engine.t;
  mutable p : float array; (* signal probability per node id *)
}

let signal_prob_of_node eng id = Engine.prob_one eng id

let create eng =
  let circ = Engine.circuit eng in
  let p = Array.make (Circuit.num_nodes circ) 0.0 in
  Circuit.iter_live circ (fun id -> p.(id) <- signal_prob_of_node eng id);
  { eng; p }

let engine t = t.eng
let circuit t = Engine.circuit t.eng

let ensure_capacity t =
  let n = Circuit.num_nodes (circuit t) in
  if n > Array.length t.p then begin
    let bigger = Array.make (max n (2 * Array.length t.p)) 0.0 in
    Array.blit t.p 0 bigger 0 (Array.length t.p);
    t.p <- bigger
  end

let signal_prob t id = t.p.(id)
let transition_prob t id = 2.0 *. t.p.(id) *. (1.0 -. t.p.(id))

let node_power t id =
  let circ = circuit t in
  if not (Circuit.is_live circ id) then 0.0
  else
    match Circuit.kind circ id with
    | Circuit.Po _ -> 0.0
    | Circuit.Pi | Circuit.Const _ | Circuit.Cell _ ->
      Circuit.load_of circ id *. transition_prob t id

let total t =
  let circ = circuit t in
  let acc = ref 0.0 in
  Circuit.iter_live circ (fun id -> acc := !acc +. node_power t id);
  !acc

let watts ?(vdd = 3.3) ?(freq = 20.0e6) t =
  0.5 *. vdd *. vdd *. freq *. total t

let refresh_all t =
  ensure_capacity t;
  let circ = circuit t in
  Circuit.iter_live circ (fun id -> t.p.(id) <- signal_prob_of_node t.eng id)

let m_update_calls = Obs.Metrics.counter "power.update.calls"
let m_update_nodes = Obs.Metrics.counter "power.update.nodes"

(* Incremental: the levelized engine update reports exactly the nodes
   whose words changed, and a node's probability is a pure function of
   its words — so refreshing only those (plus the seed) leaves [p]
   identical to a full refresh.  A brand-new node whose simulated
   words happen to be all zero reports unchanged, but its default
   [p = 0.0] already equals the probability of an all-zero signature. *)
let update_after_edit t s =
  ensure_capacity t;
  let refreshed = ref 1 in
  let evaluated =
    Engine.resim_after_edit t.eng s ~on_change:(fun id ->
        t.p.(id) <- signal_prob_of_node t.eng id;
        incr refreshed)
  in
  t.p.(s) <- signal_prob_of_node t.eng s;
  Obs.Metrics.incr m_update_calls;
  Obs.Metrics.add m_update_nodes !refreshed;
  evaluated

let transition_of_words words ~total_patterns =
  let ones = Logic.Bits.popcount_words words in
  let p = float_of_int ones /. float_of_int total_patterns in
  2.0 *. p *. (1.0 -. p)

let region_power t region =
  let circ = circuit t in
  let acc = ref 0.0 in
  Circuit.iter_live circ (fun id -> if region.(id) then acc := !acc +. node_power t id);
  !acc

let region_input_relief t region =
  let circ = circuit t in
  let acc = ref 0.0 in
  List.iter
    (fun id ->
      let inside_cap =
        List.fold_left
          (fun c pin ->
            if region.(pin.Circuit.sink) then c +. Circuit.pin_cap circ pin
            else c)
          0.0 (Circuit.fanouts circ id)
      in
      acc := !acc +. (inside_cap *. transition_prob t id))
    (Circuit.inputs_of_region circ region);
  !acc

(* Member-list variants: [members] must cover every node of [region]
   (a superset is fine — extra ids are filtered by the mask) in
   ascending id order, so the float accumulation order is identical to
   the full-circuit scans above. *)

let region_power_members t region members =
  let acc = ref 0.0 in
  Array.iter (fun id -> if region.(id) then acc := !acc +. node_power t id) members;
  !acc

let region_input_relief_members t region members =
  let circ = circuit t in
  let inputs = ref [] in
  Array.iter
    (fun m ->
      if region.(m) then
        Array.iter
          (fun f -> if not region.(f) then inputs := f :: !inputs)
          (Circuit.fanins circ m))
    members;
  let inputs = List.sort_uniq compare !inputs in
  let acc = ref 0.0 in
  List.iter
    (fun id ->
      let inside_cap =
        List.fold_left
          (fun c pin ->
            if region.(pin.Circuit.sink) then c +. Circuit.pin_cap circ pin
            else c)
          0.0 (Circuit.fanouts circ id)
      in
      acc := !acc +. (inside_cap *. transition_prob t id))
    inputs;
  !acc
