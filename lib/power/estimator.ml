module Circuit = Netlist.Circuit
module Engine = Sim.Engine

type t = {
  eng : Engine.t;
  mutable p : float array; (* signal probability per node id *)
  (* The running total lives in a power-of-two segment tree over
     per-node [node_power] leaves (1-indexed heap layout; leaves at
     [cap + id], root at 1, unused leaves 0.0).  A fixed pairwise
     association makes the root a pure function of the leaf multiset's
     positions — independent of which leaves were updated in what order
     and of the capacity (padding zeros are exact under [+.]) — so an
     incrementally maintained total is bit-equal to a from-scratch
     rebuild, which test_power.ml asserts. *)
  mutable tree : float array;
  mutable cap : int;
  mutable cursor : Circuit.edit_cursor;
}

let signal_prob_of_node eng id = Engine.prob_one eng id

let signal_prob t id = t.p.(id)
let transition_prob t id = 2.0 *. t.p.(id) *. (1.0 -. t.p.(id))

let engine t = t.eng
let circuit t = Engine.circuit t.eng

let node_power t id =
  let circ = circuit t in
  if not (Circuit.is_live circ id) then 0.0
  else
    match Circuit.kind circ id with
    | Circuit.Po _ -> 0.0
    | Circuit.Pi | Circuit.Const _ | Circuit.Cell _ ->
      Circuit.load_of circ id *. transition_prob t id

let rec pow2_at_least k n = if k >= n then k else pow2_at_least (2 * k) n

let rebuild_tree t =
  let circ = circuit t in
  let n = Circuit.num_nodes circ in
  let cap = pow2_at_least 1 (max 1 n) in
  let tree = Array.make (2 * cap) 0.0 in
  t.cap <- cap;
  t.tree <- tree;
  Circuit.iter_live circ (fun id -> tree.(cap + id) <- node_power t id);
  for i = cap - 1 downto 1 do
    tree.(i) <- tree.(2 * i) +. tree.((2 * i) + 1)
  done;
  t.cursor <- Circuit.edit_cursor circ

let set_leaf t id v =
  let i0 = t.cap + id in
  if t.tree.(i0) <> v then begin
    t.tree.(i0) <- v;
    let i = ref (i0 lsr 1) in
    while !i >= 1 do
      t.tree.(!i) <- t.tree.(2 * !i) +. t.tree.((2 * !i) + 1);
      i := !i lsr 1
    done
  end

let refresh_leaf t id =
  if id >= 0 && id < t.cap then
    set_leaf t id
      (if id < Circuit.num_nodes (circuit t) then node_power t id else 0.0)

(* Fold the circuit's edit-log suffix into the tree: structural edits
   (load changes, kills, resurrections, new nodes) reach the total here
   even when they lie outside the re-simulated cone. *)
let sync t =
  let circ = circuit t in
  if Circuit.num_nodes circ > t.cap then rebuild_tree t
  else begin
    (match Circuit.edits_since circ t.cursor with
    | None -> rebuild_tree t
    | Some ids -> List.iter (refresh_leaf t) ids);
    t.cursor <- Circuit.edit_cursor circ
  end

let create eng =
  let circ = Engine.circuit eng in
  let p = Array.make (Circuit.num_nodes circ) 0.0 in
  Circuit.iter_live circ (fun id -> p.(id) <- signal_prob_of_node eng id);
  let t =
    { eng; p; tree = [| 0.0; 0.0 |]; cap = 1;
      cursor = Circuit.edit_cursor circ }
  in
  rebuild_tree t;
  t

let ensure_capacity t =
  let n = Circuit.num_nodes (circuit t) in
  if n > Array.length t.p then begin
    let bigger = Array.make (max n (2 * Array.length t.p)) 0.0 in
    Array.blit t.p 0 bigger 0 (Array.length t.p);
    t.p <- bigger
  end

let total t =
  sync t;
  t.tree.(1)

let watts ?(vdd = 3.3) ?(freq = 20.0e6) t =
  0.5 *. vdd *. vdd *. freq *. total t

let refresh_all t =
  ensure_capacity t;
  let circ = circuit t in
  Circuit.iter_live circ (fun id -> t.p.(id) <- signal_prob_of_node t.eng id);
  rebuild_tree t

let m_update_calls = Obs.Metrics.counter "power.update.calls"
let m_update_nodes = Obs.Metrics.counter "power.update.nodes"

(* Incremental: the levelized engine update reports exactly the nodes
   whose words changed, and a node's probability is a pure function of
   its words — so refreshing only those (plus the seed) leaves [p]
   identical to a full refresh.  A brand-new node whose simulated
   words happen to be all zero reports unchanged, but its default
   [p = 0.0] already equals the probability of an all-zero signature. *)
let update_after_edit t s =
  ensure_capacity t;
  if Circuit.num_nodes (circuit t) > t.cap then rebuild_tree t;
  let refreshed = ref 1 in
  let evaluated =
    Engine.resim_after_edit t.eng s ~on_change:(fun id ->
        t.p.(id) <- signal_prob_of_node t.eng id;
        refresh_leaf t id;
        incr refreshed)
  in
  t.p.(s) <- signal_prob_of_node t.eng s;
  refresh_leaf t s;
  Obs.Metrics.incr m_update_calls;
  Obs.Metrics.add m_update_nodes !refreshed;
  evaluated

let transition_of_words words ~total_patterns =
  let ones = Logic.Bits.popcount_words words in
  let p = float_of_int ones /. float_of_int total_patterns in
  2.0 *. p *. (1.0 -. p)

let region_power t region =
  let circ = circuit t in
  let acc = ref 0.0 in
  Circuit.iter_live circ (fun id -> if region.(id) then acc := !acc +. node_power t id);
  !acc

let region_input_relief t region =
  let circ = circuit t in
  let acc = ref 0.0 in
  List.iter
    (fun id ->
      let inside_cap =
        List.fold_left
          (fun c pin ->
            if region.(pin.Circuit.sink) then c +. Circuit.pin_cap circ pin
            else c)
          0.0 (Circuit.fanouts circ id)
      in
      acc := !acc +. (inside_cap *. transition_prob t id))
    (Circuit.inputs_of_region circ region);
  !acc

(* Member-list variants: [members] must cover every node of [region]
   (a superset is fine — extra ids are filtered by the mask) in
   ascending id order, so the float accumulation order is identical to
   the full-circuit scans above. *)

let region_power_members t region members =
  let acc = ref 0.0 in
  Array.iter (fun id -> if region.(id) then acc := !acc +. node_power t id) members;
  !acc

let region_input_relief_members t region members =
  let circ = circuit t in
  let inputs = ref [] in
  Array.iter
    (fun m ->
      if region.(m) then
        Array.iter
          (fun f -> if not region.(f) then inputs := f :: !inputs)
          (Circuit.fanins circ m))
    members;
  let inputs = List.sort_uniq compare !inputs in
  let acc = ref 0.0 in
  List.iter
    (fun id ->
      let inside_cap =
        List.fold_left
          (fun c pin ->
            if region.(pin.Circuit.sink) then c +. Circuit.pin_cap circ pin
            else c)
          0.0 (Circuit.fanouts circ id)
      in
      acc := !acc +. (inside_cap *. transition_prob t id))
    inputs;
  !acc
