(* A fixed-size domain pool with deterministic fan-out.

   Design:

   - [create ~jobs] spawns [jobs - 1] worker domains; the submitting
     (main) domain helps drain the queue, so [jobs] bounds total
     parallelism and [jobs = 1] degenerates to inline sequential
     execution with no domains spawned.

   - The only submission primitive is [speculate]: a full barrier that
     runs an array of closures and returns their outcomes.  Every task
     body executes under a private [Obs.Collector] (metrics shard +
     trace buffer), so workers never touch the global registry or the
     sink.  Results are then walked on the main domain in index order:
     [commit] merges the task's collector and yields its value (or
     re-raises its exception with the original backtrace); [discard]
     drops both.  Committing in index order is what makes parallel
     observable state byte-identical to a sequential run.

   - Cancellation is cooperative and conservative: a task that has not
     started when its [Obs.Deadline] expires is marked [Cancelled] and
     never runs.  Tasks already running are not interrupted — the task
     body is expected to poll the same deadline itself (the checkers
     do, via their own budget plumbing).

   - Nested submission is rejected: a task body calling back into any
     pool would deadlock under caller-help and break the determinism
     story, so it raises [Invalid_argument] immediately. *)

module Deadline = Obs.Deadline

type task_cell = { run : unit -> unit }

type t = {
  jobs : int;
  lock : Mutex.t;
  nonempty : Condition.t;
  queue : task_cell Queue.t;
  mutable alive : bool;
  mutable workers : unit Domain.t list;
}

let jobs t = t.jobs

let default_jobs_cap = 8
let default_jobs () = max 1 (min default_jobs_cap (Domain.recommended_domain_count ()))

let in_task_key : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)
let in_task () = Domain.DLS.get in_task_key

let worker_loop t =
  let rec loop () =
    Mutex.lock t.lock;
    let rec await () =
      match Queue.take_opt t.queue with
      | Some task -> Some task
      | None ->
        if not t.alive then None
        else begin
          Condition.wait t.nonempty t.lock;
          await ()
        end
    in
    let task = await () in
    Mutex.unlock t.lock;
    match task with
    | None -> ()
    | Some task ->
      task.run ();
      loop ()
  in
  loop ()

let create ?jobs () =
  let jobs =
    match jobs with Some j -> max 1 j | None -> default_jobs ()
  in
  let t =
    {
      jobs;
      lock = Mutex.create ();
      nonempty = Condition.create ();
      queue = Queue.create ();
      alive = true;
      workers = [];
    }
  in
  if jobs > 1 then
    t.workers <- List.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let shutdown t =
  Mutex.lock t.lock;
  t.alive <- false;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.lock;
  List.iter Domain.join t.workers;
  t.workers <- []

let with_pool ?jobs f =
  let t = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

type 'b outcome =
  | Done of 'b * Obs.Collector.t
  | Raised of exn * Printexc.raw_backtrace * Obs.Collector.t
  | Cancelled

type 'b speculation = {
  mutable outcome : 'b outcome option; (* None = pending *)
  mutable consumed : bool;
      (* set by commit/commit_result/discard: each speculation's
         collector is merged or dropped exactly once, so cleanup
         finalizers can blanket-[discard] without double-counting *)
}

let run_collected f =
  let coll = Obs.Collector.create () in
  let saved = Obs.Collector.activate coll in
  Domain.DLS.set in_task_key true;
  let r =
    match f () with
    | v -> Done (v, coll)
    | exception e -> Raised (e, Printexc.get_raw_backtrace (), coll)
  in
  Domain.DLS.set in_task_key false;
  Obs.Collector.deactivate saved;
  r

let speculate t ?(deadline = Deadline.never) (fs : (unit -> 'b) array) :
    'b speculation array =
  if in_task () then
    invalid_arg "Par.Pool.speculate: nested submission from inside a pool task";
  if not t.alive then invalid_arg "Par.Pool.speculate: pool is shut down";
  let n = Array.length fs in
  let slots = Array.init n (fun _ -> { outcome = None; consumed = false }) in
  let exec i =
    let slot = slots.(i) in
    if Deadline.expired deadline then slot.outcome <- Some Cancelled
    else slot.outcome <- Some (run_collected fs.(i))
  in
  if n = 0 then slots
  else if t.jobs = 1 then begin
    for i = 0 to n - 1 do
      exec i
    done;
    slots
  end
  else begin
    let remaining = ref n in
    let batch_done = Condition.create () in
    let task i =
      {
        run =
          (fun () ->
            exec i;
            Mutex.lock t.lock;
            decr remaining;
            if !remaining = 0 then Condition.broadcast batch_done;
            Mutex.unlock t.lock);
      }
    in
    Mutex.lock t.lock;
    for i = 0 to n - 1 do
      Queue.add (task i) t.queue
    done;
    Condition.broadcast t.nonempty;
    (* the caller helps until the queue is empty, then waits for
       in-flight tasks to finish *)
    let rec drive () =
      match Queue.take_opt t.queue with
      | Some cell ->
        Mutex.unlock t.lock;
        cell.run ();
        Mutex.lock t.lock;
        drive ()
      | None -> if !remaining > 0 then begin
          Condition.wait batch_done t.lock;
          drive ()
        end
    in
    drive ();
    Mutex.unlock t.lock;
    slots
  end

let cancelled s =
  match s.outcome with Some Cancelled -> true | _ -> false

(* Speculation accounting.  Both [commit] and [discard] only ever run
   on the main domain, so plain registry counters are safe; the values
   are a parallelism diagnostic (how much speculative work was thrown
   away) and are deliberately NOT part of any report compared across
   job counts. *)
let m_committed = Obs.Metrics.counter "par.speculations.committed"
let m_discarded = Obs.Metrics.counter "par.speculations.discarded"
let m_cancelled = Obs.Metrics.counter "par.speculations.cancelled"

let take what (s : 'b speculation) : 'b outcome =
  match s.outcome with
  | None -> invalid_arg ("Par.Pool." ^ what ^ ": speculation still pending")
  | Some o ->
    if s.consumed then
      invalid_arg ("Par.Pool." ^ what ^ ": speculation already consumed");
    s.consumed <- true;
    o

let commit_result (s : 'b speculation) :
    ('b, exn * Printexc.raw_backtrace) result option =
  match take "commit_result" s with
  | Cancelled ->
    Obs.Metrics.incr m_cancelled;
    None
  | Done (v, coll) ->
    Obs.Collector.commit coll;
    Obs.Metrics.incr m_committed;
    Some (Ok v)
  | Raised (e, bt, coll) ->
    Obs.Collector.commit coll;
    Obs.Metrics.incr m_committed;
    Some (Error (e, bt))

let commit (s : 'b speculation) : 'b option =
  match take "commit" s with
  | Cancelled ->
    Obs.Metrics.incr m_cancelled;
    None
  | Done (v, coll) ->
    Obs.Collector.commit coll;
    Obs.Metrics.incr m_committed;
    Some v
  | Raised (e, bt, coll) ->
    Obs.Collector.commit coll;
    Obs.Metrics.incr m_committed;
    Printexc.raise_with_backtrace e bt

let discard (s : _ speculation) =
  if not s.consumed then
    match s.outcome with
    | Some (Done (_, coll)) | Some (Raised (_, _, coll)) ->
      s.consumed <- true;
      Obs.Collector.discard coll;
      Obs.Metrics.incr m_discarded
    | Some Cancelled -> s.consumed <- true
    | None -> ()

(* Every combinator below blanket-discards the batch in a finalizer:
   if a commit re-raises a task's exception mid-walk, the collectors
   of the not-yet-consumed speculations are dropped instead of
   stranded (consume-once makes the blanket pass a no-op for the
   already-committed prefix). *)

let map t ?deadline ~f xs =
  let specs = speculate t ?deadline (Array.map (fun x () -> f x) xs) in
  let out = Array.make (Array.length specs) None in
  Fun.protect
    ~finally:(fun () -> Array.iter discard specs)
    (fun () ->
      for i = 0 to Array.length specs - 1 do
        out.(i) <- commit specs.(i)
      done);
  out

let map_result t ?deadline ~f xs =
  let specs = speculate t ?deadline (Array.map (fun x () -> f x) xs) in
  let out = Array.make (Array.length specs) None in
  for i = 0 to Array.length specs - 1 do
    out.(i) <- Option.map (Result.map_error fst) (commit_result specs.(i))
  done;
  out

let map_reduce t ?deadline ~map:f ~reduce ~init xs =
  let specs = speculate t ?deadline (Array.map (fun x () -> f x) xs) in
  let acc = ref init in
  Fun.protect
    ~finally:(fun () -> Array.iter discard specs)
    (fun () ->
      for i = 0 to Array.length specs - 1 do
        match commit specs.(i) with
        | None -> ()
        | Some v -> acc := reduce !acc v
      done);
  !acc

let find_first_accept t ?chunk ?deadline ~check ~screen ~commit:commitf xs =
  let n = Array.length xs in
  let chunk = match chunk with Some c -> max 1 c | None -> t.jobs in
  let result = ref None in
  let lo = ref 0 in
  while !result = None && !lo < n do
    let hi = min n (!lo + chunk) in
    let m = hi - !lo in
    let tasks = Array.make m (fun () -> assert false) in
    for k = 0 to m - 1 do
      let idx = !lo + k in
      tasks.(k) <- (fun () -> check idx xs.(idx))
    done;
    let specs = speculate t ?deadline tasks in
    (* the finalizer rolls back whatever the walk did not consume: the
       tail of a chunk invalidated by an accept, or — if a committed
       task re-raises — everything after the raising index *)
    Fun.protect
      ~finally:(fun () -> Array.iter discard specs)
      (fun () ->
        let k = ref 0 in
        while !result = None && !k < m do
          let idx = !lo + !k in
          if screen idx xs.(idx) then begin
            match commit specs.(!k) with
            | None -> ()
            | Some v -> (
              match commitf idx xs.(idx) v with
              | Some r -> result := Some r
              | None -> ())
          end
          else discard specs.(!k);
          incr k
        done);
    lo := hi
  done;
  !result
