(** A fixed-size domain pool with {b deterministic} fan-out.

    The contract that everything downstream (optimizer, simulator,
    fuzzer, bench) relies on: for the same inputs, a run at any
    [jobs] produces byte-identical observable state — return values,
    metric counters and sums, trace events, and therefore report JSON
    and emitted BLIF — as [jobs = 1].  The pool delivers this with a
    speculate/commit protocol:

    - {!speculate} runs an array of closures in parallel (a barrier);
      each body executes in a worker domain under a private
      [Obs.Collector], so no global observability state is touched
      concurrently.
    - The caller then walks the outcomes {e in index order} and either
      {!commit}s one (merge collector, take the value or re-raise the
      task's exception) or {!discard}s it (speculation invalidated —
      e.g. a lower-ranked candidate was accepted first, or the item
      was screened out).  Work the sequential algorithm would never
      have performed leaves no observable trace.

    [jobs = 1] spawns no domains and runs everything inline; it is the
    reference semantics. *)

type t

val create : ?jobs:int -> unit -> t
(** Spawn a pool of [jobs] executors: [jobs - 1] worker domains plus
    the submitting domain, which helps drain the queue during a
    barrier.  [jobs] defaults to {!default_jobs} and is clamped to at
    least 1. *)

val jobs : t -> int

val default_jobs : unit -> int
(** [min 8 (Domain.recommended_domain_count ())]. *)

val shutdown : t -> unit
(** Stop and join all worker domains.  Idempotent.  Submitting to a
    shut-down pool raises [Invalid_argument]. *)

val with_pool : ?jobs:int -> (t -> 'a) -> 'a
(** [create] / run / [shutdown], exception safe. *)

val in_task : unit -> bool
(** True while executing inside a pool task (in any domain).  Code
    that may run both standalone and inside a task — the optimizer
    invoked by a fuzz case, say — uses this to force [jobs = 1] and
    avoid nested submission. *)

(** {2 Speculation} *)

type 'b speculation

val speculate :
  t -> ?deadline:Obs.Deadline.t -> (unit -> 'b) array -> 'b speculation array
(** Run every closure, in parallel, to completion (a barrier), each
    under a private [Obs.Collector].  A task not yet started when
    [deadline] expires is cancelled and never runs; running tasks are
    not interrupted (cancellation is cooperative — poll the deadline
    in the body).  @raise Invalid_argument from inside a pool task
    (nested submission) or after {!shutdown}. *)

val commit : 'b speculation -> 'b option
(** Consume one outcome on the main domain: merge its collector into
    the global metrics/trace state, then return [Some value], re-raise
    the task's exception (original backtrace preserved), or return
    [None] if it was cancelled.  Call in index order for determinism.
    Each speculation is consumed exactly once: a second
    commit/commit_result raises [Invalid_argument], and {!discard}
    after a commit is a no-op. *)

val commit_result :
  'b speculation -> ('b, exn * Printexc.raw_backtrace) result option
(** Like {!commit}, but a task that raised surfaces as [Some (Error
    (exn, backtrace))] instead of re-raising — the containment
    primitive for supervisors that must keep running when one task
    fails.  The raising task's collector is still merged (sequential
    parity: the work up to the raise happened and is observable).
    [None] marks a cancelled task. *)

val discard : _ speculation -> unit
(** Drop an outcome without merging its collector.  No-op on a
    speculation that was already committed or discarded, so cleanup
    paths may blanket-discard a whole batch. *)

val cancelled : _ speculation -> bool

(** {2 Deterministic combinators} *)

val map : t -> ?deadline:Obs.Deadline.t -> f:('a -> 'b) -> 'a array -> 'b option array
(** Parallel map; outcomes committed left-to-right.  [None] marks a
    cancelled element.  If a task raised, the exception surfaces at
    its index position and the later elements' collectors are
    discarded (never stranded half-merged). *)

val map_result :
  t ->
  ?deadline:Obs.Deadline.t ->
  f:('a -> 'b) ->
  'a array ->
  ('b, exn) result option array
(** Parallel map with per-element containment: element [i] is
    [Some (Ok y)], [Some (Error exn)] if [f xs.(i)] raised, or [None]
    if it was cancelled by the deadline.  A raising element never
    aborts the walk or poisons the pool — every other element's result
    (and observability) is still delivered. *)

val map_reduce :
  t ->
  ?deadline:Obs.Deadline.t ->
  map:('a -> 'b) ->
  reduce:('acc -> 'b -> 'acc) ->
  init:'acc ->
  'a array ->
  'acc
(** Parallel map, sequential left-to-right reduce on the caller —
    the fold order (and any floating-point accumulation) equals the
    sequential one.  Cancelled elements are skipped. *)

val find_first_accept :
  t ->
  ?chunk:int ->
  ?deadline:Obs.Deadline.t ->
  check:(int -> 'a -> 'b) ->
  screen:(int -> 'a -> bool) ->
  commit:(int -> 'a -> 'b -> 'c option) ->
  'a array ->
  'c option
(** The optimizer's accept pattern, generalized: speculatively [check]
    items in chunks of [chunk] (default [jobs t]), then walk each
    chunk in index order — items failing [screen] are skipped (their
    check result discarded), otherwise [commit] consumes the check's
    result and may accept.  The first accept wins; remaining
    speculation in the chunk is rolled back and no later item is
    checked.  Equivalent to the sequential
    [screen → check → commit] loop over the array. *)
