type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Serialization.                                                      *)
(* ------------------------------------------------------------------ *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  if not (Float.is_finite f) then "null"
  else
    (* shortest representation that round-trips exactly — checkpoints
       must restore floats bit-identically *)
    let s = Printf.sprintf "%.12g" f in
    let s = if float_of_string s = f then s else Printf.sprintf "%.17g" f in
    (* guarantee the token reparses as a JSON number, not an int *)
    if String.contains s '.' || String.contains s 'e' then s else s ^ ".0"

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s -> escape_to buf s
  | List xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        to_buffer buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj kvs ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_to buf k;
        Buffer.add_char buf ':';
        to_buffer buf v)
      kvs;
    Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  to_buffer buf j;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing.                                                            *)
(* ------------------------------------------------------------------ *)

exception Parse_error of int * string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
          advance ();
          (if !pos >= n then fail "unterminated escape"
           else
             match s.[!pos] with
             | '"' -> Buffer.add_char buf '"'; advance ()
             | '\\' -> Buffer.add_char buf '\\'; advance ()
             | '/' -> Buffer.add_char buf '/'; advance ()
             | 'n' -> Buffer.add_char buf '\n'; advance ()
             | 'r' -> Buffer.add_char buf '\r'; advance ()
             | 't' -> Buffer.add_char buf '\t'; advance ()
             | 'b' -> Buffer.add_char buf '\b'; advance ()
             | 'f' -> Buffer.add_char buf '\012'; advance ()
             | 'u' ->
               advance ();
               if !pos + 4 > n then fail "truncated \\u escape";
               let hex = String.sub s !pos 4 in
               let code =
                 try int_of_string ("0x" ^ hex)
                 with _ -> fail "bad \\u escape"
               in
               pos := !pos + 4;
               (* encode as UTF-8 *)
               if code < 0x80 then Buffer.add_char buf (Char.chr code)
               else if code < 0x800 then begin
                 Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                 Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
               end
               else begin
                 Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                 Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                 Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
               end
             | c -> fail (Printf.sprintf "bad escape '\\%c'" c));
          go ()
        | c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    let is_float =
      String.contains tok '.' || String.contains tok 'e'
      || String.contains tok 'E'
    in
    if is_float then
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail ("bad number " ^ tok)
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> (
        match float_of_string_opt tok with
        | Some f -> Float f
        | None -> fail ("bad number " ^ tok))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((k, v) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((k, v) :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        Obj (members [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        List (elements [])
      end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected '%c'" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error (at, msg) ->
    Error (Printf.sprintf "JSON parse error at byte %d: %s" at msg)

(* ------------------------------------------------------------------ *)
(* Accessors.                                                          *)
(* ------------------------------------------------------------------ *)

let member key = function
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> None

let get_int = function
  | Int i -> Some i
  | Float f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let get_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let get_string = function String s -> Some s | _ -> None
let get_bool = function Bool b -> Some b | _ -> None
let get_list = function List xs -> Some xs | _ -> None
