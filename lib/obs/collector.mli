(** Per-task observability context: a {!Metrics.shard} paired with a
    {!Trace.buffer}.

    [Par.Pool] creates one collector per speculative task, activates
    it in the worker domain for the duration of the task body, and —
    on the main domain, in commit order — either {!commit}s it when
    the task's result is consumed or {!discard}s it when speculation
    was invalidated.  This makes every metric counter, histogram sum
    and trace event of a [--jobs N] run identical to the sequential
    run. *)

type t

val create : unit -> t

type saved

val activate : t -> saved
(** Install in the current domain (metric writes → shard, events →
    buffer, fresh span stack); returns the previous state. *)

val deactivate : saved -> unit

val commit : t -> unit
(** Merge the shard into the global registry (name-sorted) and flush
    buffered events to the sink.  Main domain only, collector not
    active anywhere. *)

val discard : t -> unit
(** Drop the collector's contents without merging. *)
