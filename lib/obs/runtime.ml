(* Process-wide runtime tuning for the long-running tools. *)

let tuned = ref false

let tune_gc () =
  if not !tuned then begin
    tuned := true;
    let g = Gc.get () in
    (* The optimizer's traversal primitives (TFI masks, dominated
       regions, signature rows) allocate many short-lived arrays whose
       size scales with the circuit.  Under the 256k-word default
       minor heap a 10k-gate run spends more time in the collector
       than in the optimizer (measured: 2.4x end-to-end on a 5k-gate
       netlist), so give the minor heap real room and relax the major
       heap's space/time trade-off a little.  Explicit OCAMLRUNPARAM
       settings still win: [Gc.set] here only raises the defaults. *)
    let want_minor = 4 * 1024 * 1024 (* words: 32 MB on 64-bit *) in
    let want_overhead = 200 in
    Gc.set
      {
        g with
        minor_heap_size = max g.minor_heap_size want_minor;
        space_overhead = max g.space_overhead want_overhead;
      }
  end
