(** Structured tracing: hierarchical timed spans and typed events,
    fanned out to a pluggable sink (null by default, pretty console, or
    a JSONL file).

    Design constraints, in order:

    - {b Zero overhead when off.}  With the null sink installed (the
      default), {!event} is a single branch and {!with_span} costs two
      clock reads plus one histogram update.  Field lists that are
      expensive to build should go through {!event_f}, whose closure is
      only called when a sink is active.
    - {b Always-on span accounting.}  Span durations are accumulated
      into the {!Metrics} registry (histogram [span.<name>]) whether or
      not a sink is attached, so phase breakdowns (generate / rank /
      exact-check / apply / sta) are available in every run, not just
      traced ones.

    JSONL event schema, one object per line:
    {v
    {"ts":<seconds>,"ev":"<name>","path":"a/b/c",<field>:<value>,...}
    v}
    where [ts] is seconds since process start, [ev] is the event name
    ([span_begin]/[span_end] for spans, anything else for point
    events), [path] is the enclosing span stack outermost-first, and
    span ends carry ["dur_s"] (seconds) and ["alloc_b"] (bytes
    allocated by this domain while the span was open, via
    [Gc.allocated_bytes]) fields. *)

type value = Bool of bool | Int of int | Float of float | String of string

type event = {
  ts : float;  (** seconds since process start ({!Clock.since_start}) *)
  name : string;
  path : string list;  (** enclosing spans, outermost first *)
  fields : (string * value) list;
}

type sink

val make_sink : emit:(event -> unit) -> close:(unit -> unit) -> sink
(** Custom sink (used by tests to capture events in memory). *)

val null_sink : sink

val tee_sink : sink list -> sink
(** Fan every event out to each sink in order; closing the tee closes
    them all.  Used to feed a JSONL file, the profiler and the Chrome
    exporter from one run. *)

val console_sink : Format.formatter -> sink
val jsonl_sink : string -> sink
(** Opens [file] for writing; one JSON object per event per line.
    Buffered — events are guaranteed on disk only after
    {!close_sink}. *)

val set_sink : sink -> unit
(** Replaces (and closes) the previous sink. *)

val close_sink : unit -> unit
(** Flush and close the current sink and restore the null sink. *)

val active : unit -> bool
(** True iff a non-null sink is installed.  Guard expensive field
    construction with this (or use {!event_f}). *)

val event : string -> (string * value) list -> unit
(** Emit a point event at the current span path.  No-op (single
    branch) when the null sink is installed — but note the argument
    list is still built by the caller; hot paths should prefer
    {!event_f}. *)

val event_f : string -> (unit -> (string * value) list) -> unit
(** Like {!event} but the fields thunk only runs when a sink is
    active. *)

val with_span : ?fields:(string * value) list -> string -> (unit -> 'a) -> 'a
(** Run the thunk inside a named span: push it on the span stack, time
    it, accumulate the duration into histogram [span.<name>], and (when
    a sink is active) emit [span_begin]/[span_end] events.  Exception
    safe: the span is closed and accounted even if the thunk raises. *)

val current_path : unit -> string list
(** Enclosing spans, outermost first. *)

val span_seconds : string -> float
(** Cumulative seconds spent in spans of this name since the last
    {!Metrics.reset} (sum of histogram [span.<name>]). *)

val span_count : string -> int

val json_of_event : event -> Json.t
(** The JSONL encoding, exposed so consumers can re-serialize. *)

val json_of_value : value -> Json.t

(** {2 Per-task buffers}

    Sinks are owned by the main domain and are not thread-safe.  A
    [Par.Pool] task therefore runs with a {!buffer} activated in
    domain-local storage: its events (and a fresh, empty span stack)
    are captured in memory and only reach the sink when the pool
    flushes the buffer — on the main domain, in deterministic commit
    order.  Application code never needs this API directly; it is the
    [Obs.Collector] half that pairs with {!Metrics.shard}s. *)

type buffer

val create_buffer : unit -> buffer

type saved_context

val activate_buffer : buffer -> saved_context
(** Route this domain's events into [b] and swap in an empty span
    stack; returns the previous state for {!deactivate_buffer}. *)

val deactivate_buffer : saved_context -> unit

val flush_buffer : buffer -> unit
(** Replay buffered events (oldest first) into the current sink and
    empty the buffer.  Call on the main domain only. *)
