(* A collector is the observability context of one pool task: a
   metrics shard plus a trace buffer.  The pool activates it in the
   worker domain around the task body, then either commits it (merge +
   flush, on the main domain, in deterministic order) or discards it
   when the task's result is never consumed — e.g. speculation
   invalidated by an earlier accept.  Discarding is what keeps a
   parallel run's registry identical to the sequential run's: work the
   sequential optimizer would never have done leaves no trace. *)

type t = { metrics : Metrics.shard; trace : Trace.buffer }

let create () = { metrics = Metrics.create_shard (); trace = Trace.create_buffer () }

type saved = {
  prev_shard : Metrics.shard option;
  prev_trace : Trace.saved_context;
}

let activate t =
  { prev_shard = Metrics.install_shard t.metrics;
    prev_trace = Trace.activate_buffer t.trace }

let deactivate saved =
  Metrics.restore_shard saved.prev_shard;
  Trace.deactivate_buffer saved.prev_trace

let commit t =
  Metrics.merge_shard t.metrics;
  Trace.flush_buffer t.trace

let discard (_ : t) = ()
