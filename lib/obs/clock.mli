(** One clock source for every telemetry measurement, so that span
    durations, proof latencies and the optimizer's [cpu_seconds] are
    directly comparable (mixing [Sys.time] CPU seconds with wall-clock
    timestamps makes phase breakdowns impossible to reconcile). *)

val now : unit -> float
(** Wall-clock seconds with microsecond resolution
    ([Unix.gettimeofday]). *)

val since_start : unit -> float
(** Seconds elapsed since this module was initialized — used as the
    timestamp of trace events so traces start near 0. *)
