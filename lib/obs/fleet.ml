type state = Queued | Running | Retrying | Preempted | Done | Failed

let state_name = function
  | Queued -> "queued"
  | Running -> "running"
  | Retrying -> "retrying"
  | Preempted -> "preempted"
  | Done -> "done"
  | Failed -> "failed"

let all_states = [ Queued; Running; Retrying; Preempted; Done; Failed ]

type t = {
  states : (string, state) Hashtbl.t;
  counters : (string, int ref) Hashtbl.t;
  mutable latencies : float list;  (* unordered; sorted on demand *)
  mutable latency_count : int;
  mutable latency_sum : float;
}

let create () =
  {
    states = Hashtbl.create 64;
    counters = Hashtbl.create 16;
    latencies = [];
    latency_count = 0;
    latency_sum = 0.0;
  }

let transition t ~id state = Hashtbl.replace t.states id state
let state_of t ~id = Hashtbl.find_opt t.states id

let state_count t s =
  Hashtbl.fold (fun _ s' n -> if s = s' then n + 1 else n) t.states 0

let queue_depth t =
  state_count t Queued + state_count t Retrying + state_count t Preempted

let jobs_total t = Hashtbl.length t.states

let counter_ref t name =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r
  | None ->
    let r = ref 0 in
    Hashtbl.add t.counters name r;
    r

let count t name = incr (counter_ref t name)
let add t name n = counter_ref t name := !(counter_ref t name) + n

let counter_value t name =
  match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

let observe_latency t secs =
  t.latencies <- secs :: t.latencies;
  t.latency_count <- t.latency_count + 1;
  t.latency_sum <- t.latency_sum +. secs

let latency_count t = t.latency_count

let sorted_latencies t = List.sort Float.compare t.latencies

let latency_quantile t q =
  if t.latency_count = 0 then 0.0
  else
    let xs = Array.of_list (sorted_latencies t) in
    let n = Array.length xs in
    (* nearest-rank: the smallest observation covering a q fraction *)
    let rank = int_of_float (ceil (q *. float_of_int n)) in
    xs.(max 0 (min (n - 1) (rank - 1)))

let to_json t =
  let jobs =
    Json.Obj
      (("total", Json.Int (jobs_total t))
      :: ("queue_depth", Json.Int (queue_depth t))
      :: List.map
           (fun s -> (state_name s, Json.Int (state_count t s)))
           all_states)
  in
  let counters =
    Hashtbl.fold (fun k r acc -> (k, Json.Int !r) :: acc) t.counters []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  let latency =
    Json.Obj
      [
        ("count", Json.Int t.latency_count);
        ( "mean_s",
          Json.Float
            (if t.latency_count = 0 then 0.0
             else t.latency_sum /. float_of_int t.latency_count) );
        ("p50_s", Json.Float (latency_quantile t 0.5));
        ("p90_s", Json.Float (latency_quantile t 0.9));
        ("p99_s", Json.Float (latency_quantile t 0.99));
        ("max_s", Json.Float (latency_quantile t 1.0));
      ]
  in
  Json.Obj
    [ ("jobs", jobs); ("counters", Json.Obj counters); ("latency", latency) ]
