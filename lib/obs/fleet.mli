(** Fleet-level job telemetry for long-running services.

    A {!t} tracks a population of keyed jobs through a small state
    machine (queued → running → retrying/preempted → done/failed),
    a set of named event counters (retries, preemptions, rollbacks,
    ...), and the exact distribution of per-job latencies.  Unlike
    {!Metrics} — a process-global registry of hot-path instruments —
    a fleet is a plain value owned by one supervisor, sized for
    hundreds-to-thousands of jobs, and reports {e exact} latency
    quantiles (it keeps every observation) rather than log-bucket
    estimates.

    {!to_json} is the service's [status] report: queue depth, per-state
    job counts, every counter, and p50/p90/p99/max latency. *)

type state = Queued | Running | Retrying | Preempted | Done | Failed

val state_name : state -> string
(** Stable snake_case name ([queued], [running], ...). *)

val all_states : state list
(** In lifecycle order; [to_json] reports every state, zero or not. *)

type t

val create : unit -> t

val transition : t -> id:string -> state -> unit
(** Move job [id] to [state] (first transition registers the job). *)

val state_of : t -> id:string -> state option

val state_count : t -> state -> int

val queue_depth : t -> int
(** Jobs still owed work: [Queued + Retrying + Preempted]. *)

val jobs_total : t -> int

val count : t -> string -> unit
(** Increment the named event counter (created on first use). *)

val add : t -> string -> int -> unit

val counter_value : t -> string -> int
(** 0 when the counter was never touched. *)

val observe_latency : t -> float -> unit
(** Record one completed job's submit-to-done latency, in seconds. *)

val latency_count : t -> int

val latency_quantile : t -> float -> float
(** Exact [q]-quantile (q in [0,1]) of the observed latencies by
    nearest-rank; 0 when none were observed. *)

val to_json : t -> Json.t
(** [{ "jobs": {total, queue_depth, per-state counts},
       "counters": {name: n, ...},
       "latency": {count, mean_s, p50_s, p90_s, p99_s, max_s} }] —
    counters name-sorted, so two identically-driven fleets serialize
    byte-identically. *)
