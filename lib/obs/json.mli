(** A small self-contained JSON tree: enough to serialize telemetry
    (JSONL traces, metric dumps, machine-readable reports) and to parse
    them back in tests and CI smoke checks, without pulling an external
    dependency into the build. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_buffer : Buffer.t -> t -> unit
val to_string : t -> string
(** Compact (single-line) serialization.  Non-finite floats are
    emitted as [null], which is what every JSON consumer expects. *)

val of_string : string -> (t, string) result
(** Strict recursive-descent parser; the error string carries the
    offending byte offset.  Numbers without [.], [e] or [E] parse as
    [Int], everything else as [Float]. *)

(** {2 Accessors} (for tests and report consumers) *)

val member : string -> t -> t option
(** First binding of a key in an [Obj]. *)

val get_int : t -> int option
(** [Int] directly, or a [Float] with integral value. *)

val get_float : t -> float option
val get_string : t -> string option
val get_bool : t -> bool option
val get_list : t -> t list option
