(** A process-global metrics registry: counters, gauges and
    log-bucketed latency histograms.

    Metrics are get-or-create by name, so instrumentation sites can
    hoist the lookup ([let m = Metrics.counter "sim.resim.nodes"] at
    module init) and pay only a field update on the hot path.  The
    registry survives {!reset} — handles stay valid, values return to
    zero — which lets the optimizer delta-measure a single run without
    invalidating cached handles elsewhere.

    {b Domain safety.}  The global registry is owned by the main
    domain and is never written concurrently.  Code running inside a
    [Par.Pool] task executes with a {!shard} installed in domain-local
    storage: every write ({!incr}, {!add}, {!set_gauge}, {!observe})
    and every get-or-create resolves against that shard instead of the
    registry.  Shards are merged back into the registry on the main
    domain — deterministically, name-sorted — when the task's result
    is consumed, so a parallel run's registry is identical to the
    sequential run's. *)

type counter
type gauge
type histogram

(** {2 Counters} *)

val counter : string -> counter
(** Get or create.  @raise Invalid_argument if the name is already
    registered as a different metric kind. *)

val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

(** {2 Gauges} *)

val gauge : string -> gauge
val set_gauge : gauge -> float -> unit
val gauge_value : gauge -> float

(** {2 Histograms}

    Log-bucketed: bucket [i] holds observations in
    [(1us * 2^(i-1), 1us * 2^i]], bucket 0 holds everything at or
    below 1us.  64 buckets cover 1us .. ~585 years, so durations never
    overflow. *)

val histogram : string -> histogram
val observe : histogram -> float -> unit
val histogram_count : histogram -> int
val histogram_sum : histogram -> float

val histogram_max : histogram -> float
(** Exact largest observation since the last {!reset} (0 when empty);
    merged across shards with [max]. *)

val histogram_quantile : histogram -> float -> float
(** [histogram_quantile h q] estimates the [q]-quantile (q in [0,1])
    as the upper bound of the log bucket holding the q-th observation,
    clamped by {!histogram_max} — at most one power of two above the
    true value.  0 when the histogram is empty.  Dumps and
    {!to_json} report p50/p90/p99/max from this. *)

val quantile_points : (string * float) list
(** The standard summary points: [p50], [p90], [p99]. *)

val histogram_buckets : histogram -> (float * int) list
(** Non-empty buckets only, as [(upper_bound_seconds, count)] in
    increasing bound order. *)

(** {2 Registry} *)

val reset : unit -> unit
(** Zero every registered metric in place (handles stay valid). *)

val find :
  string ->
  [ `Counter of int | `Gauge of float | `Histogram of int * float ] option
(** Current value by name; histograms report [(count, sum)]. *)

val names : unit -> string list
(** All registered names, sorted. *)

val dump : Format.formatter -> unit -> unit
(** Human-readable dump of every registered metric, sorted by name.
    Histograms print count / sum / mean and their non-empty buckets. *)

val to_json : unit -> Json.t
(** The whole registry as one JSON object keyed by metric name. *)

(** {2 Shards}

    Per-task collectors for worker domains.  A worker installs a shard
    before running user code and restores the previous state after;
    while installed, all metric writes in that domain land in the
    shard.  [Par.Pool] owns this protocol (via [Obs.Collector]) —
    application code never needs it directly. *)

type shard

val create_shard : unit -> shard

val install_shard : shard -> shard option
(** Install in the current domain; returns the previously installed
    shard (to be passed back to {!restore_shard}). *)

val restore_shard : shard option -> unit

val merge_shard : shard -> unit
(** Fold a shard into the global registry: counters and histograms
    add, gauges take the shard's last value, names the shard created
    are registered.  Iteration is name-sorted so merge results are
    independent of hash layout.  Must be called with no shard
    installed (i.e. on the main domain, outside any task).
    @raise Invalid_argument otherwise. *)
