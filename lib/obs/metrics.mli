(** A process-global metrics registry: counters, gauges and
    log-bucketed latency histograms.

    Metrics are get-or-create by name, so instrumentation sites can
    hoist the lookup ([let m = Metrics.counter "sim.resim.nodes"] at
    module init) and pay only a field update on the hot path.  The
    registry survives {!reset} — handles stay valid, values return to
    zero — which lets the optimizer delta-measure a single run without
    invalidating cached handles elsewhere.

    Everything here is single-threaded, like the rest of the code
    base. *)

type counter
type gauge
type histogram

(** {2 Counters} *)

val counter : string -> counter
(** Get or create.  @raise Invalid_argument if the name is already
    registered as a different metric kind. *)

val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

(** {2 Gauges} *)

val gauge : string -> gauge
val set_gauge : gauge -> float -> unit
val gauge_value : gauge -> float

(** {2 Histograms}

    Log-bucketed: bucket [i] holds observations in
    [(1us * 2^(i-1), 1us * 2^i]], bucket 0 holds everything at or
    below 1us.  64 buckets cover 1us .. ~585 years, so durations never
    overflow. *)

val histogram : string -> histogram
val observe : histogram -> float -> unit
val histogram_count : histogram -> int
val histogram_sum : histogram -> float

val histogram_buckets : histogram -> (float * int) list
(** Non-empty buckets only, as [(upper_bound_seconds, count)] in
    increasing bound order. *)

(** {2 Registry} *)

val reset : unit -> unit
(** Zero every registered metric in place (handles stay valid). *)

val find :
  string ->
  [ `Counter of int | `Gauge of float | `Histogram of int * float ] option
(** Current value by name; histograms report [(count, sum)]. *)

val names : unit -> string list
(** All registered names, sorted. *)

val dump : Format.formatter -> unit -> unit
(** Human-readable dump of every registered metric, sorted by name.
    Histograms print count / sum / mean and their non-empty buckets. *)

val to_json : unit -> Json.t
(** The whole registry as one JSON object keyed by metric name. *)
