(** The run manifest: host, toolchain and configuration identity
    embedded in every report, trace and bench record so runs are
    comparable across machines and PRs.

    A manifest answers "may these two artifacts be diffed?": same
    [tool], [seed], [circuit] and [options_hash] means the runs did the
    same deterministic work, and everything else ({!volatile_fields})
    is allowed to differ — machine, moment, and [--jobs] width. *)

val schema_version : int
(** Version of the manifest/profile/bench schema; bumped on breaking
    shape changes so downstream diff tools can refuse mismatches. *)

type t = {
  tool : string;
  hostname : string;
  pid : int;
  cores : int;  (** [Domain.recommended_domain_count] at run time *)
  ocaml_version : string;
  word_size : int;
  os_type : string;
  timestamp : float;  (** unix seconds at manifest creation *)
  jobs : int;
  seed : int64;
  circuit : string;  (** circuit name, input file, or suite label *)
  options : (string * string) list;  (** canonical (name-sorted) options *)
  options_hash : string;  (** md5 hex of the canonical options *)
}

val create :
  ?tool:string ->
  jobs:int ->
  seed:int64 ->
  circuit:string ->
  options:(string * string) list ->
  unit ->
  t
(** Snapshot the current host and the given run configuration.
    [options] is sorted and hashed; pass every knob that changes the
    deterministic result (words, delay mode, classes, engine, ...). *)

val volatile_fields : string list
(** Manifest fields that may differ between two comparable runs
    (hostname, pid, cores, ocaml_version, word_size, os_type,
    timestamp, jobs).  [json_check --compare-reports] and the profile
    identity tests strip exactly these. *)

val to_json : t -> Json.t
val strip_volatile : Json.t -> Json.t
(** Drop {!volatile_fields} from a manifest JSON object. *)

val to_fields : t -> (string * Trace.value) list
(** The manifest as flat trace-event fields. *)

val emit_run_start : t -> unit
(** Emit the [run_start] header event carrying {!to_fields}.  Call
    immediately after installing a trace sink so the header is the
    first record of the stream. *)
