let now () = Unix.gettimeofday ()
let start = now ()
let since_start () = now () -. start
