(* The run manifest: everything needed to decide whether two profiles,
   traces or bench records are comparable.  Embedded as the first JSONL
   record of every trace ([run_start]), as the ["run"] field of report
   and profile JSON, and at the top of BENCH_powder.json. *)

let schema_version = 1

type t = {
  tool : string;
  hostname : string;
  pid : int;
  cores : int;
  ocaml_version : string;
  word_size : int;
  os_type : string;
  timestamp : float;  (* unix seconds at manifest creation *)
  jobs : int;
  seed : int64;
  circuit : string;
  options : (string * string) list;  (* canonical, name-sorted *)
  options_hash : string;             (* md5 hex of the canonical options *)
}

let hash_options options =
  Digest.to_hex
    (Digest.string
       (String.concat ";" (List.map (fun (k, v) -> k ^ "=" ^ v) options)))

let create ?(tool = "powder") ~jobs ~seed ~circuit ~options () =
  let options = List.sort compare options in
  {
    tool;
    hostname = Unix.gethostname ();
    pid = Unix.getpid ();
    cores = Domain.recommended_domain_count ();
    ocaml_version = Sys.ocaml_version;
    word_size = Sys.word_size;
    os_type = Sys.os_type;
    timestamp = Unix.gettimeofday ();
    jobs;
    seed;
    circuit;
    options;
    options_hash = hash_options options;
  }

(* Fields that legitimately differ between two runs of the same
   experiment: the machine, the moment, and the parallelism width.
   [json_check --compare-reports] and the profile identity tests strip
   exactly this list, so keep it in one place. *)
let volatile_fields =
  [
    "hostname"; "pid"; "cores"; "ocaml_version"; "word_size"; "os_type";
    "timestamp"; "jobs";
  ]

let to_json m =
  Json.Obj
    [
      ("schema_version", Json.Int schema_version);
      ("tool", Json.String m.tool);
      ("hostname", Json.String m.hostname);
      ("pid", Json.Int m.pid);
      ("cores", Json.Int m.cores);
      ("ocaml_version", Json.String m.ocaml_version);
      ("word_size", Json.Int m.word_size);
      ("os_type", Json.String m.os_type);
      ("timestamp", Json.Float m.timestamp);
      ("jobs", Json.Int m.jobs);
      ("seed", Json.String (Int64.to_string m.seed));
      ("circuit", Json.String m.circuit);
      ("options", Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) m.options));
      ("options_hash", Json.String m.options_hash);
    ]

(* The [run_start] trace header: the manifest flattened to event
   fields (options as one canonical string, so the event stays a flat
   record like every other trace line). *)
let to_fields m =
  [
    ("schema_version", Trace.Int schema_version);
    ("tool", Trace.String m.tool);
    ("hostname", Trace.String m.hostname);
    ("pid", Trace.Int m.pid);
    ("cores", Trace.Int m.cores);
    ("ocaml_version", Trace.String m.ocaml_version);
    ("word_size", Trace.Int m.word_size);
    ("os_type", Trace.String m.os_type);
    ("timestamp", Trace.Float m.timestamp);
    ("jobs", Trace.Int m.jobs);
    ("seed", Trace.String (Int64.to_string m.seed));
    ("circuit", Trace.String m.circuit);
    ( "options",
      Trace.String
        (String.concat ";" (List.map (fun (k, v) -> k ^ "=" ^ v) m.options)) );
    ("options_hash", Trace.String m.options_hash);
  ]

let emit_run_start m = Trace.event "run_start" (to_fields m)

(* Strip the machine/moment/width fields from a manifest JSON object,
   leaving the comparable identity (tool, seed, circuit, options). *)
let strip_volatile = function
  | Json.Obj fields ->
    Json.Obj
      (List.filter (fun (k, _) -> not (List.mem k volatile_fields)) fields)
  | other -> other
