type counter = { mutable count : int }
type gauge = { mutable gvalue : float }

let num_buckets = 64
let bucket_base = 1e-6 (* 1 microsecond *)

type histogram = {
  mutable obs_count : int;
  mutable obs_sum : float;
  bins : int array;
}

type metric = Counter of counter | Gauge of gauge | Histogram of histogram

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64

let counter name =
  match Hashtbl.find_opt registry name with
  | Some (Counter c) -> c
  | Some _ ->
    invalid_arg ("Obs.Metrics: " ^ name ^ " already registered, not a counter")
  | None ->
    let c = { count = 0 } in
    Hashtbl.add registry name (Counter c);
    c

let incr c = c.count <- c.count + 1
let add c n = c.count <- c.count + n
let counter_value c = c.count

let gauge name =
  match Hashtbl.find_opt registry name with
  | Some (Gauge g) -> g
  | Some _ ->
    invalid_arg ("Obs.Metrics: " ^ name ^ " already registered, not a gauge")
  | None ->
    let g = { gvalue = 0.0 } in
    Hashtbl.add registry name (Gauge g);
    g

let set_gauge g v = g.gvalue <- v
let gauge_value g = g.gvalue

let histogram name =
  match Hashtbl.find_opt registry name with
  | Some (Histogram h) -> h
  | Some _ ->
    invalid_arg ("Obs.Metrics: " ^ name ^ " already registered, not a histogram")
  | None ->
    let h = { obs_count = 0; obs_sum = 0.0; bins = Array.make num_buckets 0 } in
    Hashtbl.add registry name (Histogram h);
    h

let bucket_of v =
  if v <= bucket_base then 0
  else
    let i = int_of_float (Float.ceil (Float.log2 (v /. bucket_base))) in
    if i >= num_buckets then num_buckets - 1 else if i < 0 then 0 else i

let bucket_upper i = bucket_base *. Float.pow 2.0 (float_of_int i)

let observe h v =
  h.obs_count <- h.obs_count + 1;
  h.obs_sum <- h.obs_sum +. v;
  let i = bucket_of v in
  h.bins.(i) <- h.bins.(i) + 1

let histogram_count h = h.obs_count
let histogram_sum h = h.obs_sum

let histogram_buckets h =
  let acc = ref [] in
  for i = num_buckets - 1 downto 0 do
    if h.bins.(i) > 0 then acc := (bucket_upper i, h.bins.(i)) :: !acc
  done;
  !acc

let reset () =
  Hashtbl.iter
    (fun _ m ->
      match m with
      | Counter c -> c.count <- 0
      | Gauge g -> g.gvalue <- 0.0
      | Histogram h ->
        h.obs_count <- 0;
        h.obs_sum <- 0.0;
        Array.fill h.bins 0 num_buckets 0)
    registry

let find name =
  match Hashtbl.find_opt registry name with
  | Some (Counter c) -> Some (`Counter c.count)
  | Some (Gauge g) -> Some (`Gauge g.gvalue)
  | Some (Histogram h) -> Some (`Histogram (h.obs_count, h.obs_sum))
  | None -> None

let names () =
  Hashtbl.fold (fun k _ acc -> k :: acc) registry [] |> List.sort compare

let pp_duration fmt s =
  if s < 1e-3 then Format.fprintf fmt "%.1fus" (s *. 1e6)
  else if s < 1.0 then Format.fprintf fmt "%.2fms" (s *. 1e3)
  else Format.fprintf fmt "%.3fs" s

let dump fmt () =
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun name ->
      match Hashtbl.find registry name with
      | Counter c -> Format.fprintf fmt "%-40s %d@," name c.count
      | Gauge g -> Format.fprintf fmt "%-40s %g@," name g.gvalue
      | Histogram h ->
        let mean =
          if h.obs_count = 0 then 0.0
          else h.obs_sum /. float_of_int h.obs_count
        in
        Format.fprintf fmt "%-40s count=%d sum=%a mean=%a@," name h.obs_count
          pp_duration h.obs_sum pp_duration mean;
        if h.obs_count > 0 then begin
          Format.fprintf fmt "%-40s " "";
          List.iter
            (fun (ub, n) -> Format.fprintf fmt "le(%a)=%d " pp_duration ub n)
            (histogram_buckets h);
          Format.fprintf fmt "@,"
        end)
    (names ());
  Format.fprintf fmt "@]"

let to_json () =
  Json.Obj
    (List.map
       (fun name ->
         let v =
           match Hashtbl.find registry name with
           | Counter c ->
             Json.Obj [ ("type", Json.String "counter"); ("value", Json.Int c.count) ]
           | Gauge g ->
             Json.Obj [ ("type", Json.String "gauge"); ("value", Json.Float g.gvalue) ]
           | Histogram h ->
             Json.Obj
               [
                 ("type", Json.String "histogram");
                 ("count", Json.Int h.obs_count);
                 ("sum", Json.Float h.obs_sum);
                 ( "buckets",
                   Json.List
                     (List.map
                        (fun (ub, n) ->
                          Json.Obj [ ("le", Json.Float ub); ("count", Json.Int n) ])
                        (histogram_buckets h)) );
               ]
         in
         (name, v))
       (names ()))
