type counter = { cname : string; mutable count : int }
type gauge = { gname : string; mutable gvalue : float }

let num_buckets = 64
let bucket_base = 1e-6 (* 1 microsecond *)

type histogram = {
  hname : string;
  mutable obs_count : int;
  mutable obs_sum : float;
  mutable obs_max : float;
  bins : int array;
}

type metric = Counter of counter | Gauge of gauge | Histogram of histogram

(* The process-global registry.  Only ever touched from the domain that
   owns the run (the "main" domain): worker domains spawned by
   [Par.Pool] write through a shard installed in domain-local storage
   instead, and shards are merged back on the main domain at commit
   points.  That discipline — not a lock — is what makes the registry
   domain-safe. *)
let registry : (string, metric) Hashtbl.t = Hashtbl.create 64

(* ------------------------------------------------------------------ *)
(* Shards: domain-local collectors for worker domains.                 *)
(* ------------------------------------------------------------------ *)

type shard = (string, metric) Hashtbl.t

let shard_key : shard option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let create_shard () : shard = Hashtbl.create 16
let current_shard () = Domain.DLS.get shard_key

let install_shard sh =
  let prev = Domain.DLS.get shard_key in
  Domain.DLS.set shard_key (Some sh);
  prev

let restore_shard prev = Domain.DLS.set shard_key prev

let kind_error name what =
  invalid_arg ("Obs.Metrics: " ^ name ^ " already registered, not a " ^ what)

let counter_in tbl name =
  match Hashtbl.find_opt tbl name with
  | Some (Counter c) -> c
  | Some _ -> kind_error name "counter"
  | None ->
    let c = { cname = name; count = 0 } in
    Hashtbl.add tbl name (Counter c);
    c

let gauge_in tbl name =
  match Hashtbl.find_opt tbl name with
  | Some (Gauge g) -> g
  | Some _ -> kind_error name "gauge"
  | None ->
    let g = { gname = name; gvalue = 0.0 } in
    Hashtbl.add tbl name (Gauge g);
    g

let histogram_in tbl name =
  match Hashtbl.find_opt tbl name with
  | Some (Histogram h) -> h
  | Some _ -> kind_error name "histogram"
  | None ->
    let h =
      {
        hname = name;
        obs_count = 0;
        obs_sum = 0.0;
        obs_max = 0.0;
        bins = Array.make num_buckets 0;
      }
    in
    Hashtbl.add tbl name (Histogram h);
    h

(* Get-or-create resolves against the installed shard when there is
   one, so instrumentation running inside a pool task never writes the
   global Hashtbl. *)
let counter name =
  match current_shard () with
  | Some sh -> counter_in sh name
  | None -> counter_in registry name

let gauge name =
  match current_shard () with
  | Some sh -> gauge_in sh name
  | None -> gauge_in registry name

let histogram name =
  match current_shard () with
  | Some sh -> histogram_in sh name
  | None -> histogram_in registry name

(* Write paths re-resolve by name when a shard is installed: handles
   are hoisted at module init on the main domain, but the update must
   land in the current domain's collector. *)
let incr c =
  match current_shard () with
  | None -> c.count <- c.count + 1
  | Some sh ->
    let c' = counter_in sh c.cname in
    c'.count <- c'.count + 1

let add c n =
  match current_shard () with
  | None -> c.count <- c.count + n
  | Some sh ->
    let c' = counter_in sh c.cname in
    c'.count <- c'.count + n

let counter_value c = c.count

let set_gauge g v =
  match current_shard () with
  | None -> g.gvalue <- v
  | Some sh ->
    let g' = gauge_in sh g.gname in
    g'.gvalue <- v

let gauge_value g = g.gvalue

let bucket_of v =
  if v <= bucket_base then 0
  else
    let i = int_of_float (Float.ceil (Float.log2 (v /. bucket_base))) in
    if i >= num_buckets then num_buckets - 1 else if i < 0 then 0 else i

let bucket_upper i = bucket_base *. Float.pow 2.0 (float_of_int i)

let observe_in h v =
  h.obs_count <- h.obs_count + 1;
  h.obs_sum <- h.obs_sum +. v;
  if v > h.obs_max then h.obs_max <- v;
  let i = bucket_of v in
  h.bins.(i) <- h.bins.(i) + 1

let observe h v =
  match current_shard () with
  | None -> observe_in h v
  | Some sh -> observe_in (histogram_in sh h.hname) v

let histogram_count h = h.obs_count
let histogram_sum h = h.obs_sum
let histogram_max h = h.obs_max

(* Quantile estimate from the log buckets: the upper bound of the
   bucket holding the q-th observation, clamped by the exact maximum.
   One power-of-two bucket of relative error — plenty for "is p99 a
   millisecond or a second" questions without storing samples. *)
let histogram_quantile h q =
  if h.obs_count = 0 then 0.0
  else begin
    let q = Float.min 1.0 (Float.max 0.0 q) in
    let target = max 1 (int_of_float (Float.ceil (q *. float_of_int h.obs_count))) in
    let rec walk i cum =
      if i >= num_buckets then h.obs_max
      else
        let cum = cum + h.bins.(i) in
        if cum >= target then Float.min (bucket_upper i) h.obs_max
        else walk (i + 1) cum
    in
    walk 0 0
  end

let quantile_points = [ ("p50", 0.5); ("p90", 0.9); ("p99", 0.99) ]

let histogram_buckets h =
  let acc = ref [] in
  for i = num_buckets - 1 downto 0 do
    if h.bins.(i) > 0 then acc := (bucket_upper i, h.bins.(i)) :: !acc
  done;
  !acc

let sorted_names tbl =
  Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] |> List.sort compare

(* Merge is additive for counters and histograms, last-write for
   gauges, and registers any name the shard created.  Iterating
   name-sorted makes the merge order — and therefore the global
   floating-point sums — independent of Hashtbl layout. *)
let merge_shard (sh : shard) =
  (match current_shard () with
  | Some _ -> invalid_arg "Obs.Metrics.merge_shard: a shard is installed"
  | None -> ());
  List.iter
    (fun name ->
      match Hashtbl.find sh name with
      | Counter c ->
        let g = counter_in registry name in
        g.count <- g.count + c.count
      | Gauge gv ->
        let g = gauge_in registry name in
        g.gvalue <- gv.gvalue
      | Histogram h ->
        let g = histogram_in registry name in
        g.obs_count <- g.obs_count + h.obs_count;
        g.obs_sum <- g.obs_sum +. h.obs_sum;
        if h.obs_max > g.obs_max then g.obs_max <- h.obs_max;
        Array.iteri (fun i n -> g.bins.(i) <- g.bins.(i) + n) h.bins)
    (sorted_names sh)

let reset () =
  Hashtbl.iter
    (fun _ m ->
      match m with
      | Counter c -> c.count <- 0
      | Gauge g -> g.gvalue <- 0.0
      | Histogram h ->
        h.obs_count <- 0;
        h.obs_sum <- 0.0;
        h.obs_max <- 0.0;
        Array.fill h.bins 0 num_buckets 0)
    registry

let find name =
  match Hashtbl.find_opt registry name with
  | Some (Counter c) -> Some (`Counter c.count)
  | Some (Gauge g) -> Some (`Gauge g.gvalue)
  | Some (Histogram h) -> Some (`Histogram (h.obs_count, h.obs_sum))
  | None -> None

let names () = sorted_names registry

let pp_duration fmt s =
  if s < 1e-3 then Format.fprintf fmt "%.1fus" (s *. 1e6)
  else if s < 1.0 then Format.fprintf fmt "%.2fms" (s *. 1e3)
  else Format.fprintf fmt "%.3fs" s

let dump fmt () =
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun name ->
      match Hashtbl.find registry name with
      | Counter c -> Format.fprintf fmt "%-40s %d@," name c.count
      | Gauge g -> Format.fprintf fmt "%-40s %g@," name g.gvalue
      | Histogram h ->
        let mean =
          if h.obs_count = 0 then 0.0
          else h.obs_sum /. float_of_int h.obs_count
        in
        Format.fprintf fmt "%-40s count=%d sum=%a mean=%a@," name h.obs_count
          pp_duration h.obs_sum pp_duration mean;
        if h.obs_count > 0 then begin
          Format.fprintf fmt "%-40s " "";
          List.iter
            (fun (label, q) ->
              Format.fprintf fmt "%s=%a " label pp_duration
                (histogram_quantile h q))
            quantile_points;
          Format.fprintf fmt "max=%a@," pp_duration h.obs_max;
          Format.fprintf fmt "%-40s " "";
          List.iter
            (fun (ub, n) -> Format.fprintf fmt "le(%a)=%d " pp_duration ub n)
            (histogram_buckets h);
          Format.fprintf fmt "@,"
        end)
    (names ());
  Format.fprintf fmt "@]"

let to_json () =
  Json.Obj
    (List.map
       (fun name ->
         let v =
           match Hashtbl.find registry name with
           | Counter c ->
             Json.Obj [ ("type", Json.String "counter"); ("value", Json.Int c.count) ]
           | Gauge g ->
             Json.Obj [ ("type", Json.String "gauge"); ("value", Json.Float g.gvalue) ]
           | Histogram h ->
             Json.Obj
               [
                 ("type", Json.String "histogram");
                 ("count", Json.Int h.obs_count);
                 ("sum", Json.Float h.obs_sum);
                 ("p50", Json.Float (histogram_quantile h 0.5));
                 ("p90", Json.Float (histogram_quantile h 0.9));
                 ("p99", Json.Float (histogram_quantile h 0.99));
                 ("max", Json.Float h.obs_max);
                 ( "buckets",
                   Json.List
                     (List.map
                        (fun (ub, n) ->
                          Json.Obj [ ("le", Json.Float ub); ("count", Json.Int n) ])
                        (histogram_buckets h)) );
               ]
         in
         (name, v))
       (names ()))
