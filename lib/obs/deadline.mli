(** Cooperative wall-clock deadlines.

    A deadline is an absolute expiry instant.  Long-running engines
    (SAT, PODEM, the exact permissibility check) accept one and poll
    {!expired} at coarse intervals — every few hundred conflicts or
    backtracks — so a stuck instance gives up cleanly instead of
    stalling the whole run.  [never] is free to poll and never fires. *)

type t

val never : t
(** A deadline that never expires. *)

val after : seconds:float -> t
(** Expires [seconds] from now.  Wall-clock, not CPU time. *)

val of_option : float option -> t
(** [of_option None] is {!never}; [of_option (Some s)] is [after ~seconds:s]. *)

val is_finite : t -> bool
(** [false] exactly for {!never}. *)

val expired : t -> bool
(** Has the instant passed?  Always [false] for {!never}. *)

val remaining : t -> float
(** Seconds until expiry (negative once expired; [infinity] for {!never}). *)

val earliest : t -> t -> t
(** The tighter of two deadlines. *)
