type value = Bool of bool | Int of int | Float of float | String of string

type event = {
  ts : float;
  name : string;
  path : string list;
  fields : (string * value) list;
}

type sink = { emit : event -> unit; close : unit -> unit; is_null : bool }

let make_sink ~emit ~close = { emit; close; is_null = false }
let null_sink = { emit = (fun _ -> ()); close = (fun () -> ()); is_null = true }

let tee_sink sinks =
  make_sink
    ~emit:(fun e -> List.iter (fun s -> s.emit e) sinks)
    ~close:(fun () -> List.iter (fun s -> s.close ()) sinks)

let json_of_value = function
  | Bool b -> Json.Bool b
  | Int i -> Json.Int i
  | Float f -> Json.Float f
  | String s -> Json.String s

let json_of_event e =
  Json.Obj
    (("ts", Json.Float e.ts)
     :: ("ev", Json.String e.name)
     :: ("path", Json.String (String.concat "/" e.path))
     :: List.map (fun (k, v) -> (k, json_of_value v)) e.fields)

let console_sink fmt =
  let pp_value ppf = function
    | Bool b -> Format.pp_print_bool ppf b
    | Int i -> Format.pp_print_int ppf i
    | Float f -> Format.fprintf ppf "%.4g" f
    | String s -> Format.pp_print_string ppf s
  in
  make_sink
    ~emit:(fun e ->
      Format.fprintf fmt "[%10.6f] %-12s %s" e.ts e.name
        (String.concat "/" e.path);
      List.iter (fun (k, v) -> Format.fprintf fmt " %s=%a" k pp_value v) e.fields;
      Format.fprintf fmt "@.")
    ~close:(fun () -> Format.pp_print_flush fmt ())

let jsonl_sink file =
  let oc = open_out file in
  let buf = Buffer.create 256 in
  make_sink
    ~emit:(fun e ->
      Buffer.clear buf;
      Json.to_buffer buf (json_of_event e);
      Buffer.add_char buf '\n';
      Buffer.output_buffer oc buf)
    ~close:(fun () -> close_out oc)

let current_sink = ref null_sink

let set_sink s =
  let old = !current_sink in
  current_sink := s;
  old.close ()

let close_sink () = set_sink null_sink
let active () = not !current_sink.is_null

(* innermost-first; reversed when an event captures its path.  Kept in
   domain-local storage so worker domains never share a stack; within a
   domain, pool tasks additionally swap in a fresh stack (see
   [activate_buffer]) so a caller-helping main domain does not leak its
   own span path into the task's events. *)
let stack_key : string list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let span_stack () = Domain.DLS.get stack_key
let current_path () = List.rev !(span_stack ())

(* Per-task event buffer.  While installed, events queue up in memory
   instead of reaching the (main-domain-owned, not thread-safe) sink;
   the pool flushes them on the main domain when the task's result is
   consumed, in commit order. *)
type buffer = { mutable events : event list (* newest first *) }

let buffer_key : buffer option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let create_buffer () = { events = [] }

type saved_context = { prev_stack : string list ref; prev_buffer : buffer option }

let activate_buffer b =
  let saved =
    { prev_stack = Domain.DLS.get stack_key; prev_buffer = Domain.DLS.get buffer_key }
  in
  Domain.DLS.set stack_key (ref []);
  Domain.DLS.set buffer_key (Some b);
  saved

let deactivate_buffer saved =
  Domain.DLS.set stack_key saved.prev_stack;
  Domain.DLS.set buffer_key saved.prev_buffer

let flush_buffer b =
  List.iter (fun e -> !current_sink.emit e) (List.rev b.events);
  b.events <- []

let emit name fields =
  let e = { ts = Clock.since_start (); name; path = current_path (); fields } in
  match Domain.DLS.get buffer_key with
  | Some b -> b.events <- e :: b.events
  | None -> !current_sink.emit e

let event name fields = if active () then emit name fields
let event_f name mk_fields = if active () then emit name (mk_fields ())

let span_histogram name = Metrics.histogram ("span." ^ name)

let with_span ?(fields = []) name f =
  let h = span_histogram name in
  let t0 = Clock.now () in
  (* allocation delta is only sampled when a sink is recording, so the
     null-sink fast path keeps its two-clock-reads cost; a sink
     installed mid-span yields one meaningless delta, nothing worse *)
  let a0 = if active () then Gc.allocated_bytes () else Float.nan in
  (* capture the ref: the finally-pop must hit the same stack even if a
     pool task swaps the domain's stack while [f] runs (caller help) *)
  let st = span_stack () in
  st := name :: !st;
  if active () then emit "span_begin" fields;
  Fun.protect
    ~finally:(fun () ->
      let dt = Clock.now () -. t0 in
      Metrics.observe h dt;
      if active () then begin
        let da =
          if Float.is_nan a0 then 0.0 else Gc.allocated_bytes () -. a0
        in
        emit "span_end" (("dur_s", Float dt) :: ("alloc_b", Float da) :: fields)
      end;
      st := List.tl !st)
    f

let span_seconds name = Metrics.histogram_sum (span_histogram name)
let span_count name = Metrics.histogram_count (span_histogram name)
