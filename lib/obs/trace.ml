type value = Bool of bool | Int of int | Float of float | String of string

type event = {
  ts : float;
  name : string;
  path : string list;
  fields : (string * value) list;
}

type sink = { emit : event -> unit; close : unit -> unit; is_null : bool }

let make_sink ~emit ~close = { emit; close; is_null = false }
let null_sink = { emit = (fun _ -> ()); close = (fun () -> ()); is_null = true }

let json_of_value = function
  | Bool b -> Json.Bool b
  | Int i -> Json.Int i
  | Float f -> Json.Float f
  | String s -> Json.String s

let json_of_event e =
  Json.Obj
    (("ts", Json.Float e.ts)
     :: ("ev", Json.String e.name)
     :: ("path", Json.String (String.concat "/" e.path))
     :: List.map (fun (k, v) -> (k, json_of_value v)) e.fields)

let console_sink fmt =
  let pp_value ppf = function
    | Bool b -> Format.pp_print_bool ppf b
    | Int i -> Format.pp_print_int ppf i
    | Float f -> Format.fprintf ppf "%.4g" f
    | String s -> Format.pp_print_string ppf s
  in
  make_sink
    ~emit:(fun e ->
      Format.fprintf fmt "[%10.6f] %-12s %s" e.ts e.name
        (String.concat "/" e.path);
      List.iter (fun (k, v) -> Format.fprintf fmt " %s=%a" k pp_value v) e.fields;
      Format.fprintf fmt "@.")
    ~close:(fun () -> Format.pp_print_flush fmt ())

let jsonl_sink file =
  let oc = open_out file in
  let buf = Buffer.create 256 in
  make_sink
    ~emit:(fun e ->
      Buffer.clear buf;
      Json.to_buffer buf (json_of_event e);
      Buffer.add_char buf '\n';
      Buffer.output_buffer oc buf)
    ~close:(fun () -> close_out oc)

let current_sink = ref null_sink

let set_sink s =
  let old = !current_sink in
  current_sink := s;
  old.close ()

let close_sink () = set_sink null_sink
let active () = not !current_sink.is_null

(* innermost-first; reversed when an event captures its path *)
let span_stack : string list ref = ref []

let current_path () = List.rev !span_stack

let emit name fields =
  !current_sink.emit
    { ts = Clock.since_start (); name; path = current_path (); fields }

let event name fields = if active () then emit name fields
let event_f name mk_fields = if active () then emit name (mk_fields ())

let span_histogram name = Metrics.histogram ("span." ^ name)

let with_span ?(fields = []) name f =
  let h = span_histogram name in
  let t0 = Clock.now () in
  span_stack := name :: !span_stack;
  if active () then emit "span_begin" fields;
  Fun.protect
    ~finally:(fun () ->
      let dt = Clock.now () -. t0 in
      Metrics.observe h dt;
      if active () then emit "span_end" (("dur_s", Float dt) :: fields);
      span_stack := List.tl !span_stack)
    f

let span_seconds name = Metrics.histogram_sum (span_histogram name)
let span_count name = Metrics.histogram_count (span_histogram name)
