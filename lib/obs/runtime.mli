val tune_gc : unit -> unit
(** Raise the minor-heap size and major-heap space overhead to values
    suited to circuit-scale allocation (traversal masks and signature
    rows are short-lived but large, and the 256k-word default minor
    heap forces constant promotion).  Never lowers a value the user
    already raised via [OCAMLRUNPARAM]; idempotent.  Call once at
    binary startup — libraries must not call it. *)
