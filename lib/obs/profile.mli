(** Self-profiler: aggregates the {!Trace} span stream into an
    attributed call-tree profile (inclusive/exclusive seconds, call
    counts, per-span allocation deltas), exportable as flamegraph
    collapsed stacks and Chrome trace-event JSON.

    The profiler consumes the same deterministic event stream a JSONL
    trace records — [Par.Pool] flushes task buffers in commit order —
    so a [--jobs N] profile equals the [--jobs 1] profile after
    {!strip_volatile}.  Attach it with {!sink} (usually inside a
    {!Trace.tee_sink} next to a JSONL file and {!chrome_sink}). *)

type t

val create : unit -> t

val add_event : t -> Trace.event -> unit
(** Fold one event in: [span_end] grows the call tree (keyed by the
    event's full path), [round]/[accept]/[reject] build the per-round
    candidate funnel, [gc] events are collected as per-round GC
    samples, everything else is only counted. *)

val sink : t -> Trace.sink
(** A sink feeding {!add_event}; closing it is a no-op, so the
    accumulated profile survives {!Trace.close_sink}. *)

val iter_nodes :
  t ->
  (path:string list ->
  count:int ->
  inclusive_s:float ->
  exclusive_s:float ->
  alloc_bytes:float ->
  children_inclusive_s:float ->
  unit) ->
  unit
(** Visit every tree node (parents before children, siblings
    name-sorted); [path] is outermost-first and ends with the node's
    own span name.  Used by tests to check the exclusive-time
    invariant (children inclusive sum ≤ parent inclusive). *)

val total_seconds : t -> float
(** Sum of the top-level spans' inclusive time. *)

val to_json : ?run:Json.t -> t -> Json.t
(** The full profile: manifest (when given), call tree (nodes carry
    [name], [count], [inclusive_s], [exclusive_s], [alloc_bytes] and
    name-sorted [children]), per-round funnel, GC samples. *)

val strip_volatile : Json.t -> Json.t
(** Recursively drop the timing/allocation/environment keys
    ([inclusive_s], [exclusive_s], [alloc_bytes], [total_seconds],
    [run], [gc]) and the span counts ([count], [events], [spans] —
    the parallel walk batches "exact-check" spans per speculation
    barrier, so counts vary with the jobs width); what remains — tree
    shape and candidate funnel — must be identical across [--jobs]
    widths. *)

val to_folded : t -> string
(** Flamegraph-compatible collapsed stacks: one
    ["outer;inner <exclusive-microseconds>"] line per tree node,
    lexicographically sorted, newline-terminated. *)

val chrome_event : Trace.event -> Json.t option
(** One trace event as a Chrome trace-event object: [span_end] becomes
    a complete ("X") slice reconstructed from its duration,
    point events become instants ("i"), [span_begin] is dropped
    (the matching "X" covers it). *)

val chrome_sink : out_channel -> Trace.sink
(** Stream the event stream to [oc] as
    [{"traceEvents":[...],"displayTimeUnit":"ms"}] (the format
    [chrome://tracing] / Perfetto load directly).  Closing the sink
    writes the suffix and closes the channel. *)
