type t = float

let never = infinity
let after ~seconds = Clock.now () +. seconds
let of_option = function None -> never | Some s -> after ~seconds:s
let is_finite t = t <> infinity
let expired t = is_finite t && Clock.now () >= t
let remaining t = if is_finite t then t -. Clock.now () else infinity
let earliest a b = if a <= b then a else b
