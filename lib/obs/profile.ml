(* Self-profiler: aggregates the [Trace] span stream into an
   attributed call-tree profile.

   The profiler is just another sink consumer — it sees exactly the
   events a JSONL trace would record, in the same deterministic order
   ([Par.Pool] flushes task buffers in commit order), so a [--jobs N]
   profile is identical to [--jobs 1] modulo the timing/allocation
   fields.  Every [span_end] event carries its full path, duration and
   allocation delta; the tree is keyed by path, inclusive time and
   counts accumulate per node, and exclusive time falls out at export
   as inclusive minus the children's inclusive.

   Point events feed two side tables: the per-round candidate funnel
   (round / accept / reject events) and the per-round GC samples. *)

type node = {
  name : string;
  mutable count : int;
  mutable inclusive_s : float;
  mutable alloc_bytes : float;
  children : (string, node) Hashtbl.t;
}

let make_node name =
  { name; count = 0; inclusive_s = 0.0; alloc_bytes = 0.0; children = Hashtbl.create 4 }

type round_row = {
  round : int;
  pool : int;
  mutable accepted : int;
  mutable rejects : (string * int) list;  (* reason -> count, unsorted *)
}

type t = {
  root : node;  (* synthetic root; its children are the top-level spans *)
  mutable events : int;
  mutable spans : int;
  mutable rounds : round_row list;  (* newest first *)
  mutable gc : (string * Json.t) list list;  (* newest first *)
}

let create () =
  { root = make_node ""; events = 0; spans = 0; rounds = []; gc = [] }

let child_of parent name =
  match Hashtbl.find_opt parent.children name with
  | Some n -> n
  | None ->
    let n = make_node name in
    Hashtbl.add parent.children name n;
    n

let float_field fields k =
  match List.assoc_opt k fields with
  | Some (Trace.Float f) -> Some f
  | Some (Trace.Int i) -> Some (float_of_int i)
  | _ -> None

let int_field fields k =
  match List.assoc_opt k fields with Some (Trace.Int i) -> Some i | _ -> None

let string_field fields k =
  match List.assoc_opt k fields with Some (Trace.String s) -> Some s | _ -> None

let add_event t (e : Trace.event) =
  t.events <- t.events + 1;
  match e.Trace.name with
  | "span_begin" -> ()
  | "span_end" ->
    t.spans <- t.spans + 1;
    (* the path includes the span itself as its last element *)
    let node = List.fold_left child_of t.root e.Trace.path in
    node.count <- node.count + 1;
    node.inclusive_s <-
      node.inclusive_s
      +. Option.value ~default:0.0 (float_field e.Trace.fields "dur_s");
    node.alloc_bytes <-
      node.alloc_bytes
      +. Option.value ~default:0.0 (float_field e.Trace.fields "alloc_b")
  | "round" ->
    let round = Option.value ~default:0 (int_field e.Trace.fields "round") in
    let pool = Option.value ~default:0 (int_field e.Trace.fields "pool") in
    t.rounds <- { round; pool; accepted = 0; rejects = [] } :: t.rounds
  | "accept" -> (
    match t.rounds with
    | row :: _ -> row.accepted <- row.accepted + 1
    | [] -> ())
  | "reject" -> (
    match t.rounds with
    | row :: _ ->
      let reason =
        Option.value ~default:"other" (string_field e.Trace.fields "reason")
      in
      let n = Option.value ~default:0 (List.assoc_opt reason row.rejects) in
      row.rejects <- (reason, n + 1) :: List.remove_assoc reason row.rejects
    | [] -> ())
  | "gc" ->
    t.gc <-
      List.map (fun (k, v) -> (k, Trace.json_of_value v)) e.Trace.fields :: t.gc
  | _ -> ()

let sink t = Trace.make_sink ~emit:(add_event t) ~close:(fun () -> ())

(* ------------------------------------------------------------------ *)
(* Tree traversal and exports.                                         *)
(* ------------------------------------------------------------------ *)

let sorted_children n =
  Hashtbl.fold (fun _ c acc -> c :: acc) n.children []
  |> List.sort (fun a b -> compare a.name b.name)

let children_inclusive n =
  Hashtbl.fold (fun _ c acc -> acc +. c.inclusive_s) n.children 0.0

let exclusive_s n = n.inclusive_s -. children_inclusive n

(* Depth-first fold over real nodes, parents before children, siblings
   name-sorted; [path] is outermost-first and includes the node. *)
let fold f init t =
  let rec go acc path n =
    List.fold_left
      (fun acc c ->
        let path = path @ [ c.name ] in
        go (f acc ~path c) path c)
      acc (sorted_children n)
  in
  go init [] t.root

let total_seconds t = children_inclusive t.root

let iter_nodes t f =
  fold
    (fun () ~path n ->
      f ~path ~count:n.count ~inclusive_s:n.inclusive_s
        ~exclusive_s:(exclusive_s n) ~alloc_bytes:n.alloc_bytes
        ~children_inclusive_s:(children_inclusive n))
    () t

let rec node_to_json n =
  Json.Obj
    [
      ("name", Json.String n.name);
      ("count", Json.Int n.count);
      ("inclusive_s", Json.Float n.inclusive_s);
      ("exclusive_s", Json.Float (exclusive_s n));
      ("alloc_bytes", Json.Float n.alloc_bytes);
      ("children", Json.List (List.map node_to_json (sorted_children n)));
    ]

let rounds_to_json t =
  Json.List
    (List.rev_map
       (fun r ->
         Json.Obj
           [
             ("round", Json.Int r.round);
             ("pool", Json.Int r.pool);
             ("accepted", Json.Int r.accepted);
             ( "rejected",
               Json.Obj
                 (List.map (fun (k, n) -> (k, Json.Int n))
                    (List.sort compare r.rejects)) );
           ])
       t.rounds)

let to_json ?run t =
  Json.Obj
    ((("schema_version", Json.Int Runinfo.schema_version)
      ::
      (match run with Some r -> [ ("run", r) ] | None -> []))
    @ [
        ("events", Json.Int t.events);
        ("spans", Json.Int t.spans);
        ("total_seconds", Json.Float (total_seconds t));
        ("tree", Json.List (List.map node_to_json (sorted_children t.root)));
        ("rounds", rounds_to_json t);
        ("gc", Json.List (List.rev_map (fun fs -> Json.Obj fs) t.gc));
      ])

(* Timing, allocation and environment keys: everything allowed to
   differ between two runs of the same deterministic work.  Stripping
   these (recursively) must make a [--jobs 4] profile byte-identical
   to [--jobs 1].  Span counts are volatile too — deliberately: the
   parallel walk records one "exact-check" span per speculation
   barrier where the sequential walk records one per check, so counts
   (and the event/span totals derived from them) vary with the jobs
   width even though the tree shape and the funnel do not. *)
let volatile_keys =
  [
    "inclusive_s"; "exclusive_s"; "alloc_bytes"; "total_seconds"; "run"; "gc";
    "count"; "events"; "spans";
  ]

let rec strip_volatile = function
  | Json.Obj fields ->
    Json.Obj
      (List.filter_map
         (fun (k, v) ->
           if List.mem k volatile_keys then None else Some (k, strip_volatile v))
         fields)
  | Json.List xs -> Json.List (List.map strip_volatile xs)
  | other -> other

(* Flamegraph-compatible collapsed stacks: one "a;b;c <value>" line per
   node, value = exclusive time in integer microseconds (clamped at 0:
   clock steps can make a leaf-heavy parent marginally negative). *)
let to_folded t =
  let buf = Buffer.create 1024 in
  let lines =
    fold
      (fun acc ~path n ->
        let us = int_of_float (Float.max 0.0 (exclusive_s n) *. 1e6 +. 0.5) in
        (String.concat ";" path ^ " " ^ string_of_int us) :: acc)
      [] t
  in
  List.iter
    (fun l ->
      Buffer.add_string buf l;
      Buffer.add_char buf '\n')
    (List.sort compare lines);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Chrome trace-event export.                                          *)
(* ------------------------------------------------------------------ *)

(* Complete ("X") events reconstruct the span from its end record:
   start = ts - dur.  Using X instead of B/E pairs keeps the export
   correct even for events replayed from [Par.Pool] task buffers,
   whose timestamps interleave non-monotonically with the main
   domain's. *)
let chrome_event (e : Trace.event) =
  let us f = Json.Float (f *. 1e6) in
  let base ph ts =
    [
      ("name", Json.String e.Trace.name);
      ("ph", Json.String ph);
      ("ts", us ts);
      ("pid", Json.Int 0);
      ("tid", Json.Int 0);
    ]
  in
  let args extra =
    ( "args",
      Json.Obj
        (extra
        @ List.map
            (fun (k, v) -> (k, Trace.json_of_value v))
            e.Trace.fields) )
  in
  match e.Trace.name with
  | "span_begin" -> None
  | "span_end" ->
    let dur =
      Option.value ~default:0.0 (float_field e.Trace.fields "dur_s")
    in
    let name =
      match List.rev e.Trace.path with last :: _ -> last | [] -> "span"
    in
    Some
      (Json.Obj
         ([
            ("name", Json.String name);
            ("cat", Json.String "span");
            ("ph", Json.String "X");
            ("ts", us (e.Trace.ts -. dur));
            ("dur", us dur);
            ("pid", Json.Int 0);
            ("tid", Json.Int 0);
          ]
         @ [ args [ ("path", Json.String (String.concat "/" e.Trace.path)) ] ]))
  | name ->
    Some
      (Json.Obj
         (base "i" e.Trace.ts
         @ [
             ("s", Json.String "t");
             ("cat", Json.String (if name = "run_start" then "meta" else "event"));
             args [ ("path", Json.String (String.concat "/" e.Trace.path)) ];
           ]))

(* Streaming writer: events are serialized as they arrive, so the
   export costs no memory proportional to the trace. *)
type chrome_writer = {
  oc : out_channel;
  buf : Buffer.t;
  mutable first : bool;
  mutable closed : bool;
}

let chrome_writer oc =
  output_string oc "{\"traceEvents\":[";
  { oc; buf = Buffer.create 256; first = true; closed = false }

let chrome_emit w e =
  match chrome_event e with
  | None -> ()
  | Some j ->
    if w.first then w.first <- false else output_char w.oc ',';
    Buffer.clear w.buf;
    Json.to_buffer w.buf j;
    Buffer.output_buffer w.oc w.buf

let chrome_close w =
  if not w.closed then begin
    w.closed <- true;
    output_string w.oc "],\"displayTimeUnit\":\"ms\"}\n";
    close_out w.oc
  end

let chrome_sink oc =
  let w = chrome_writer oc in
  Trace.make_sink ~emit:(chrome_emit w) ~close:(fun () -> chrome_close w)
