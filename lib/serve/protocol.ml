module J = Obs.Json

type source = Suite of string | Blif of string
type kind = Optimize | Pareto

let kind_name = function Optimize -> "optimize" | Pareto -> "pareto"

type options = {
  words : int;
  seed : int;
  max_rounds : int;
  budget_seconds : float option;
  cost : Pareto.Cost.t;
  constraints : Pareto.Sweep.spec list option;
}

let default_options =
  {
    words = 8;
    seed = 0xC0FFEE;
    max_rounds = 32;
    budget_seconds = None;
    cost = Pareto.Cost.Zero_delay;
    constraints = None;
  }

type job = {
  id : string;
  priority : int;
  kind : kind;
  source : source;
  options : options;
}
type request = Submit of job | Status | Drain | Shutdown

type error =
  | Invalid_json of string
  | Not_an_object
  | Unknown_op of string
  | Missing_field of string
  | Unknown_field of string
  | Bad_field of string * string
  | Absurd_value of string * string
  | Unknown_circuit of string
  | Bad_blif of string
  | Ambiguous_source
  | Duplicate_id of string

let error_name = function
  | Invalid_json _ -> "invalid_json"
  | Not_an_object -> "not_an_object"
  | Unknown_op _ -> "unknown_op"
  | Missing_field _ -> "missing_field"
  | Unknown_field _ -> "unknown_field"
  | Bad_field _ -> "bad_field"
  | Absurd_value _ -> "absurd_value"
  | Unknown_circuit _ -> "unknown_circuit"
  | Bad_blif _ -> "bad_blif"
  | Ambiguous_source -> "ambiguous_source"
  | Duplicate_id _ -> "duplicate_id"

let error_detail = function
  | Invalid_json m -> m
  | Not_an_object -> "a request is a JSON object"
  | Unknown_op op -> Printf.sprintf "unknown op %S" op
  | Missing_field f -> Printf.sprintf "missing required field %S" f
  | Unknown_field f -> Printf.sprintf "unknown field %S" f
  | Bad_field (f, why) -> Printf.sprintf "field %S: %s" f why
  | Absurd_value (f, why) -> Printf.sprintf "field %S: %s" f why
  | Unknown_circuit c -> Printf.sprintf "unknown suite circuit %S" c
  | Bad_blif m -> "embedded BLIF does not parse: " ^ m
  | Ambiguous_source -> "exactly one of \"circuit\" or \"blif\" is required"
  | Duplicate_id id -> Printf.sprintf "job id %S already exists" id

let ( let* ) = Result.bind

(* Resource bounds: requests outside these are answered with
   [absurd_value] instead of being allowed to starve the fleet. *)
let max_words = 256
let max_rounds_limit = 10_000
let max_budget_seconds = 3600.0
let priority_limit = 100
let max_constraints = 16

let id_ok id =
  let n = String.length id in
  n >= 1 && n <= 64
  && String.for_all
       (function
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '_' | '-' -> true
         | _ -> false)
       id

let parse_options fields =
  List.fold_left
    (fun acc (k, v) ->
      let* o = acc in
      match k with
      | "words" -> (
        match J.get_int v with
        | None -> Error (Bad_field ("options.words", "must be an integer"))
        | Some w when w < 1 || w > max_words ->
          Error
            (Absurd_value
               ( "options.words",
                 Printf.sprintf "%d outside 1..%d" w max_words ))
        | Some w -> Ok { o with words = w })
      | "seed" -> (
        match J.get_int v with
        | None -> Error (Bad_field ("options.seed", "must be an integer"))
        | Some s -> Ok { o with seed = s })
      | "max_rounds" -> (
        match J.get_int v with
        | None -> Error (Bad_field ("options.max_rounds", "must be an integer"))
        | Some r when r < 1 || r > max_rounds_limit ->
          Error
            (Absurd_value
               ( "options.max_rounds",
                 Printf.sprintf "%d outside 1..%d" r max_rounds_limit ))
        | Some r -> Ok { o with max_rounds = r })
      | "budget_seconds" -> (
        match J.get_float v with
        | None ->
          Error (Bad_field ("options.budget_seconds", "must be a number"))
        | Some b
          when (not (Float.is_finite b)) || b <= 0.0 || b > max_budget_seconds
          ->
          Error
            (Absurd_value
               ( "options.budget_seconds",
                 Printf.sprintf "%g outside (0, %g]" b max_budget_seconds ))
        | Some b -> Ok { o with budget_seconds = Some b })
      | "cost" -> (
        match J.get_string v with
        | None -> Error (Bad_field ("options.cost", "must be a string"))
        | Some s -> (
          match Pareto.Cost.of_string s with
          | Ok c -> Ok { o with cost = c }
          | Error m -> Error (Bad_field ("options.cost", m))))
      | "constraints" -> (
        match J.get_list v with
        | None ->
          Error (Bad_field ("options.constraints", "must be a list of strings"))
        | Some [] ->
          Error (Bad_field ("options.constraints", "must not be empty"))
        | Some items when List.length items > max_constraints ->
          Error
            (Absurd_value
               ( "options.constraints",
                 Printf.sprintf "more than %d points" max_constraints ))
        | Some items ->
          let* specs =
            List.fold_left
              (fun acc item ->
                let* acc = acc in
                match J.get_string item with
                | None ->
                  Error
                    (Bad_field
                       ("options.constraints", "must be a list of strings"))
                | Some s -> (
                  match Pareto.Sweep.spec_of_string s with
                  | Ok sp -> Ok (sp :: acc)
                  | Error m -> Error (Bad_field ("options.constraints", m))))
              (Ok []) items
          in
          Ok { o with constraints = Some (List.rev specs) })
      | other -> Error (Unknown_field ("options." ^ other)))
    (Ok default_options) fields

let validate_source circuit blif =
  match (circuit, blif) with
  | Some _, Some _ | None, None -> Error Ambiguous_source
  | Some name, None -> (
    match Circuits.Suite.find name with
    | Some _ -> Ok (Suite name)
    | None -> Error (Unknown_circuit name))
  | None, Some text -> (
    match Blif.Blif_io.circuit_of_string Gatelib.Library.lib2 text with
    | Ok _ -> Ok (Blif text)
    | Error e -> Error (Bad_blif (Blif.Blif_io.error_to_string e)))

(* Shared by the wire parser (fields include "op") and the persistence
   rehydrator (fields do not). *)
let job_of_fields ~with_op fields =
  let* () =
    List.fold_left
      (fun acc (k, _) ->
        let* () = acc in
        match k with
        | "id" | "priority" | "kind" | "circuit" | "blif" | "options" -> Ok ()
        | "op" when with_op -> Ok ()
        | other -> Error (Unknown_field other))
      (Ok ()) fields
  in
  let mem k = List.assoc_opt k fields in
  let* id =
    match mem "id" with
    | None -> Error (Missing_field "id")
    | Some v -> (
      match J.get_string v with
      | None -> Error (Bad_field ("id", "must be a string"))
      | Some id when not (id_ok id) ->
        Error
          (Bad_field
             ("id", "must match [A-Za-z0-9._-]{1,64} (it names result files)"))
      | Some id -> Ok id)
  in
  let* priority =
    match mem "priority" with
    | None -> Ok 0
    | Some v -> (
      match J.get_int v with
      | None -> Error (Bad_field ("priority", "must be an integer"))
      | Some p when p < -priority_limit || p > priority_limit ->
        Error
          (Absurd_value
             ( "priority",
               Printf.sprintf "%d outside -%d..%d" p priority_limit
                 priority_limit ))
      | Some p -> Ok p)
  in
  let* source =
    validate_source
      (Option.bind (mem "circuit") J.get_string)
      (Option.bind (mem "blif") J.get_string)
  in
  (* a present-but-mistyped source field must not read as absent *)
  let* () =
    match mem "circuit" with
    | Some v when J.get_string v = None ->
      Error (Bad_field ("circuit", "must be a string"))
    | _ -> Ok ()
  in
  let* () =
    match mem "blif" with
    | Some v when J.get_string v = None ->
      Error (Bad_field ("blif", "must be a string"))
    | _ -> Ok ()
  in
  let* kind =
    match mem "kind" with
    | None -> Ok Optimize
    | Some v -> (
      match J.get_string v with
      | Some "optimize" -> Ok Optimize
      | Some "pareto" -> Ok Pareto
      | Some k -> Error (Bad_field ("kind", Printf.sprintf "unknown kind %S" k))
      | None -> Error (Bad_field ("kind", "must be a string")))
  in
  let* options =
    match mem "options" with
    | None -> Ok default_options
    | Some (J.Obj ofields) -> parse_options ofields
    | Some _ -> Error (Bad_field ("options", "must be an object"))
  in
  (* a constraint list on a plain optimize job is a contradiction the
     submitter should hear about, not a field to silently ignore *)
  let* () =
    match (kind, options.constraints) with
    | Optimize, Some _ ->
      Error
        (Bad_field ("options.constraints", "only valid on \"kind\":\"pareto\""))
    | _ -> Ok ()
  in
  Ok { id; priority; kind; source; options }

let parse line =
  match J.of_string line with
  | Error e -> Error (Invalid_json e)
  | Ok (J.Obj fields) -> (
    match List.assoc_opt "op" fields with
    | None -> Error (Missing_field "op")
    | Some v -> (
      match J.get_string v with
      | None -> Error (Bad_field ("op", "must be a string"))
      | Some "submit" ->
        let* job = job_of_fields ~with_op:true fields in
        Ok (Submit job)
      | Some "status" -> Ok Status
      | Some "drain" -> Ok Drain
      | Some "shutdown" -> Ok Shutdown
      | Some op -> Error (Unknown_op op)))
  | Ok _ -> Error Not_an_object

let job_to_json j =
  let source_field =
    match j.source with
    | Suite name -> ("circuit", J.String name)
    | Blif text -> ("blif", J.String text)
  in
  let opt_fields =
    [
      ("words", J.Int j.options.words);
      ("seed", J.Int j.options.seed);
      ("max_rounds", J.Int j.options.max_rounds);
    ]
    @ (match j.options.budget_seconds with
      | None -> []
      | Some b -> [ ("budget_seconds", J.Float b) ])
    @ (match j.options.cost with
      | Pareto.Cost.Zero_delay -> []
      | c -> [ ("cost", J.String (Pareto.Cost.to_string c)) ])
    @
    match j.options.constraints with
    | None -> []
    | Some specs ->
      [
        ( "constraints",
          J.List
            (List.map
               (fun sp -> J.String (Pareto.Sweep.spec_to_string sp))
               specs) );
      ]
  in
  J.Obj
    [
      ("id", J.String j.id);
      ("priority", J.Int j.priority);
      ("kind", J.String (kind_name j.kind));
      source_field;
      ("options", J.Obj opt_fields);
    ]

let job_of_json = function
  | J.Obj fields -> job_of_fields ~with_op:false fields
  | _ -> Error Not_an_object
