(** The [powder_serve] wire protocol: newline-delimited JSON requests.

    One JSON object per line.  [op] selects the request:

    {v
    {"op":"submit","id":"j1","priority":2,"circuit":"rd84",
     "options":{"words":8,"seed":7,"max_rounds":16,"budget_seconds":30.0}}
    {"op":"submit","id":"j2","blif":".model m\n..."}
    {"op":"status"}
    {"op":"drain"}
    {"op":"shutdown"}
    v}

    Parsing is {b strict}: unknown operations, unknown fields (top
    level and inside [options]), mistyped values, and absurd resource
    requests are all rejected with a typed {!error} — the server
    answers an [error] event and keeps serving.  Jobs carry either a
    built-in suite circuit name or an embedded mapped BLIF; both are
    resolved/validated at submit time so a malformed payload can never
    reach a worker. *)

type source =
  | Suite of string  (** a [Circuits.Suite] benchmark name *)
  | Blif of string   (** an embedded mapped-BLIF payload *)

type options = {
  words : int;                    (** simulation words, 1..256 *)
  seed : int;                     (** optimizer pattern seed *)
  max_rounds : int;               (** total optimization rounds, 1..10000 *)
  budget_seconds : float option;  (** total job wall-clock budget *)
}

val default_options : options
(** words 8, seed 0xC0FFEE, max_rounds 32, no budget. *)

type job = {
  id : string;       (** [A-Za-z0-9._-]{1,64} — doubles as a file stem *)
  priority : int;    (** higher runs first; -100..100, default 0 *)
  source : source;
  options : options;
}

type request = Submit of job | Status | Drain | Shutdown

(** The failure taxonomy for protocol-level rejects.  [error_name] is
    the stable snake_case wire label. *)
type error =
  | Invalid_json of string
  | Not_an_object
  | Unknown_op of string
  | Missing_field of string
  | Unknown_field of string
  | Bad_field of string * string     (** field, reason *)
  | Absurd_value of string * string  (** field, reason *)
  | Unknown_circuit of string
  | Bad_blif of string
  | Ambiguous_source
      (** exactly one of [circuit] / [blif] is required *)
  | Duplicate_id of string
      (** raised by the server, not the parser: the id is already
          queued, running, or completed *)

val error_name : error -> string
val error_detail : error -> string

val parse : string -> (request, error) result
(** Parse and validate one protocol line.  Suite names are resolved
    and embedded BLIF payloads are parsed against the standard cell
    library here, at the door. *)

val job_to_json : job -> Obs.Json.t
(** Canonical job serialization, used for queue persistence. *)

val job_of_json : Obs.Json.t -> (job, error) result
