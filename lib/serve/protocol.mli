(** The [powder_serve] wire protocol: newline-delimited JSON requests.

    One JSON object per line.  [op] selects the request:

    {v
    {"op":"submit","id":"j1","priority":2,"circuit":"rd84",
     "options":{"words":8,"seed":7,"max_rounds":16,"budget_seconds":30.0}}
    {"op":"submit","id":"j2","blif":".model m\n..."}
    {"op":"submit","id":"j3","kind":"pareto","circuit":"rd84",
     "options":{"constraints":["1.0","1.25","unbounded"],"cost":"glitch"}}
    {"op":"status"}
    {"op":"drain"}
    {"op":"shutdown"}
    v}

    Parsing is {b strict}: unknown operations, unknown fields (top
    level and inside [options]), mistyped values, and absurd resource
    requests are all rejected with a typed {!error} — the server
    answers an [error] event and keeps serving.  Jobs carry either a
    built-in suite circuit name or an embedded mapped BLIF; both are
    resolved/validated at submit time so a malformed payload can never
    reach a worker. *)

type source =
  | Suite of string  (** a [Circuits.Suite] benchmark name *)
  | Blif of string   (** an embedded mapped-BLIF payload *)

(** What a job computes.  [Optimize] is the classic single POWDER run;
    [Pareto] runs a {!Pareto.Sweep} over the job's delay-constraint
    list and returns the frontier report instead of an optimizer
    report (its result carries no BLIF — each frontier point is a
    different netlist). *)
type kind = Optimize | Pareto

val kind_name : kind -> string
(** ["optimize"] / ["pareto"] — the wire and event-log label. *)

type options = {
  words : int;                    (** simulation words, 1..256 *)
  seed : int;                     (** optimizer pattern seed *)
  max_rounds : int;               (** total optimization rounds, 1..10000
                                      (per point for pareto jobs) *)
  budget_seconds : float option;  (** total job wall-clock budget *)
  cost : Pareto.Cost.t;
      (** acceptance cost model, ["zero-delay"] (default) or
          ["glitch[:N]"] on the wire *)
  constraints : Pareto.Sweep.spec list option;
      (** pareto jobs only: the delay-constraint list, each entry a
          scale string (["1.25"]) or ["unbounded"]; at most 16 points,
          [None] means {!Pareto.Sweep.default_specs}.  Rejected on
          optimize jobs. *)
}

val default_options : options
(** words 8, seed 0xC0FFEE, max_rounds 32, no budget, zero-delay cost,
    default constraint list. *)

type job = {
  id : string;       (** [A-Za-z0-9._-]{1,64} — doubles as a file stem *)
  priority : int;    (** higher runs first; -100..100, default 0 *)
  kind : kind;       (** default [Optimize] when absent on the wire *)
  source : source;
  options : options;
}

type request = Submit of job | Status | Drain | Shutdown

(** The failure taxonomy for protocol-level rejects.  [error_name] is
    the stable snake_case wire label. *)
type error =
  | Invalid_json of string
  | Not_an_object
  | Unknown_op of string
  | Missing_field of string
  | Unknown_field of string
  | Bad_field of string * string     (** field, reason *)
  | Absurd_value of string * string  (** field, reason *)
  | Unknown_circuit of string
  | Bad_blif of string
  | Ambiguous_source
      (** exactly one of [circuit] / [blif] is required *)
  | Duplicate_id of string
      (** raised by the server, not the parser: the id is already
          queued, running, or completed *)

val error_name : error -> string
val error_detail : error -> string

val parse : string -> (request, error) result
(** Parse and validate one protocol line.  Suite names are resolved
    and embedded BLIF payloads are parsed against the standard cell
    library here, at the door. *)

val job_to_json : job -> Obs.Json.t
(** Canonical job serialization, used for queue persistence. *)

val job_of_json : Obs.Json.t -> (job, error) result
