module J = Obs.Json

type config = {
  state_dir : string;
  jobs : int;
  slice_rounds : int;
  retry : Retry.policy;
  seed : int64;
  chaos : Chaos.t option;
  poll_seconds : float;
}

let default_config ~state_dir =
  {
    state_dir;
    jobs = 1;
    slice_rounds = 2;
    retry = Retry.default;
    seed = 0xC0FFEEL;
    chaos = None;
    poll_seconds = 0.05;
  }

type pull = Line of string | Waiting | Eof

let file_source path =
  let fd =
    if path = "-" then Unix.stdin
    else Unix.openfile path [ Unix.O_RDONLY ] 0
  in
  let buf = Buffer.create 256 in
  let pending = Queue.create () in
  let eof = ref false in
  let chunk = Bytes.create 4096 in
  fun () ->
    if not (Queue.is_empty pending) then Line (Queue.pop pending)
    else if !eof then Eof
    else
      let readable =
        match Unix.select [ fd ] [] [] 0.05 with
        | rs, _, _ -> rs <> []
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> false
      in
      if not readable then Waiting
      else
        let n =
          match Unix.read fd chunk 0 (Bytes.length chunk) with
          | n -> n
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> -1
        in
        if n < 0 then Waiting
        else if n = 0 then begin
          eof := true;
          if Buffer.length buf > 0 then begin
            Queue.push (Buffer.contents buf) pending;
            Buffer.clear buf
          end;
          if Queue.is_empty pending then Eof else Line (Queue.pop pending)
        end
        else begin
          for i = 0 to n - 1 do
            match Bytes.get chunk i with
            | '\n' ->
              Queue.push (Buffer.contents buf) pending;
              Buffer.clear buf
            | c -> Buffer.add_char buf c
          done;
          if Queue.is_empty pending then Waiting else Line (Queue.pop pending)
        end

type outcome = {
  completed : int;
  failed : int;
  rejected : int;
  recovered : int;
  status : J.t;
  clean_exit : bool;
}

(* ---- state directory layout ---- *)

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let queue_file c = Filename.concat c.state_dir "queue.json"
let ck_dir c = Filename.concat c.state_dir "ck"
let ck_file c id = Filename.concat (ck_dir c) (id ^ ".json")

(* pareto jobs checkpoint per frontier point, into a directory *)
let ck_pareto_dir c id = Filename.concat (ck_dir c) (id ^ ".pareto")
let results_dir c = Filename.concat c.state_dir "results"
let result_json c id = Filename.concat (results_dir c) (id ^ ".json")
let result_blif c id = Filename.concat (results_dir c) (id ^ ".blif")

(* ---- supervisor state ---- *)

type st = {
  config : config;
  queue : Jobq.t;
  fleet : Obs.Fleet.t;
  emit : J.t -> unit;
  pool : Par.Pool.t;
  retries : (string, Retry.t) Hashtbl.t;
  submit_time : (string, float) Hashtbl.t;
  mutable draining : bool;
  mutable eof : bool;
  mutable stop : bool;
  mutable completed : int;
  mutable failed : int;
  mutable rejected : int;
  mutable recovered : int;
}

(* the same stream convention as [Obs.Trace]: every record carries an
   ["ev"] tag and the first one is a [run_start] header, so
   [json_check --jsonl] validates serve event logs unchanged *)
let event st name fields = st.emit (J.Obj (("ev", J.String name) :: fields))

let persist_queue ?extra st =
  Persist.write_atomic (queue_file st.config)
    (J.to_string (Jobq.to_json ?extra st.queue) ^ "\n")

let remove_quiet file = try Sys.remove file with Sys_error _ -> ()

let rec rm_rf path =
  match Sys.is_directory path with
  | true ->
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    (try Sys.rmdir path with Sys_error _ -> ())
  | false -> remove_quiet path
  | exception Sys_error _ -> ()

let line_prefix line =
  if String.length line <= 80 then line else String.sub line 0 80 ^ "..."

(* ---- request handling ---- *)

let known st id =
  Obs.Fleet.state_of st.fleet ~id <> None
  || Sys.file_exists (result_json st.config id)

let reject st ~injected e line =
  st.rejected <- st.rejected + 1;
  Obs.Fleet.count st.fleet "rejected";
  event st "rejected"
    ([
       ("error", J.String (Protocol.error_name e));
       ("detail", J.String (Protocol.error_detail e));
       ("line", J.String (line_prefix line));
     ]
    @ if injected then [ ("injected", J.Bool true) ] else [])

let handle_line st ?(injected = false) raw =
  let line = String.trim raw in
  if line = "" then ()
  else
    match Protocol.parse line with
    | Error e -> reject st ~injected e line
    | Ok (Protocol.Submit job) ->
      let id = job.Protocol.id in
      if known st id then reject st ~injected (Protocol.Duplicate_id id) line
      else begin
        ignore (Jobq.submit st.queue job);
        Hashtbl.replace st.submit_time id (Obs.Clock.now ());
        Obs.Fleet.transition st.fleet ~id Obs.Fleet.Queued;
        Obs.Fleet.count st.fleet "submitted";
        event st "ack"
          [
            ("id", J.String id);
            ("priority", J.Int job.Protocol.priority);
            ("queue_depth", J.Int (Jobq.length st.queue));
          ];
        persist_queue st
      end
    | Ok Protocol.Status ->
      event st "status" [ ("fleet", Obs.Fleet.to_json st.fleet) ]
    | Ok Protocol.Drain ->
      st.draining <- true;
      event st "draining" []
    | Ok Protocol.Shutdown ->
      st.stop <- true;
      event st "shutdown_requested" []

(* ---- job execution ---- *)

let circuit_of_job (job : Protocol.job) =
  match job.Protocol.source with
  | Protocol.Suite name -> (
    match Circuits.Suite.find name with
    | Some spec -> Circuits.Suite.mapped spec
    | None -> failwith ("fatal: suite circuit vanished: " ^ name))
  | Protocol.Blif text -> (
    match Blif.Blif_io.circuit_of_string Gatelib.Library.lib2 text with
    | Ok c -> c
    | Error e ->
      failwith ("fatal: blif re-parse: " ^ Blif.Blif_io.error_to_string e))

let manifest st (job : Protocol.job) =
  let o = job.Protocol.options in
  Obs.Runinfo.create ~tool:"powder_serve" ~jobs:st.config.jobs
    ~seed:(Int64.of_int o.Protocol.seed)
    ~circuit:
      (match job.Protocol.source with
      | Protocol.Suite n -> n
      | Protocol.Blif _ -> "blif:" ^ job.Protocol.id)
    ~options:
      ([
         ("kind", Protocol.kind_name job.Protocol.kind);
         ("words", string_of_int o.Protocol.words);
         ("max_rounds", string_of_int o.Protocol.max_rounds);
         ( "budget_seconds",
           match o.Protocol.budget_seconds with
           | None -> "-"
           | Some b -> string_of_float b );
         ("cost", Pareto.Cost.to_string o.Protocol.cost);
         ("priority", string_of_int job.Protocol.priority);
       ]
      @
      match job.Protocol.kind with
      | Protocol.Optimize -> []
      | Protocol.Pareto ->
        [
          ( "constraints",
            String.concat ","
              (List.map Pareto.Sweep.spec_to_string
                 (Option.value o.Protocol.constraints
                    ~default:Pareto.Sweep.default_specs)) );
        ])
    ()

(* What a slice returns: a classic optimizer slice (report + final
   BLIF) or a whole frontier sweep (pareto jobs run in one slice —
   their preemption granularity is the per-point checkpoint, not the
   round). *)
type payload =
  | Optimized of Powder.Optimizer.report * string
  | Swept of Pareto.Sweep.report

type prepared = { entry : Jobq.entry; task : unit -> payload * float }

let has_checkpoint c (job : Protocol.job) =
  match job.Protocol.kind with
  | Protocol.Optimize -> Sys.file_exists (ck_file c job.Protocol.id)
  | Protocol.Pareto -> Sys.file_exists (ck_pareto_dir c job.Protocol.id)

let remove_checkpoint c (job : Protocol.job) =
  match job.Protocol.kind with
  | Protocol.Optimize -> remove_quiet (ck_file c job.Protocol.id)
  | Protocol.Pareto -> rm_rf (ck_pareto_dir c job.Protocol.id)

(* Resolve the checkpoint (surfacing corruption as a typed event and a
   rollback) and build the slice closure.  Chaos decisions are made
   here, on the main domain — the task body must not touch shared
   mutable state. *)
let prepare_optimize st (entry : Jobq.entry) =
  let job = entry.Jobq.job in
  let id = job.Protocol.id in
  let file = ck_file st.config id in
  let resume =
    if entry.Jobq.resumable && Sys.file_exists file then
      match Powder.Checkpoint.load file with
      | Ok ck -> Some ck
      | Error e ->
        event st "checkpoint_corrupt"
          [
            ("id", J.String id);
            ("error", J.String (Powder.Checkpoint.error_to_string e));
          ];
        Obs.Fleet.count st.fleet "rollbacks";
        remove_quiet file;
        entry.Jobq.resumable <- false;
        None
    else None
  in
  let o = job.Protocol.options in
  let base_round =
    match resume with Some ck -> ck.Powder.Checkpoint.round | None -> 0
  in
  let slice_max =
    min o.Protocol.max_rounds (base_round + st.config.slice_rounds)
  in
  let budget_left =
    match o.Protocol.budget_seconds with
    | None -> None
    | Some b -> Some (Float.max 0.0 (b -. entry.Jobq.consumed))
  in
  let stormed =
    match st.config.chaos with
    | Some c -> Chaos.storm_now c ~id
    | None -> false
  in
  let crash =
    match st.config.chaos with
    | Some c -> Chaos.crash_now c ~id
    | None -> false
  in
  let run_seconds = if stormed then Some 0.0 else budget_left in
  let opt_config =
    {
      Powder.Optimizer.default_config with
      words = o.Protocol.words;
      seed =
        (match resume with
        | Some ck -> ck.Powder.Checkpoint.seed
        | None -> Int64.of_int o.Protocol.seed);
      max_rounds = slice_max;
      run_seconds;
      checkpoint_every = 1;
      checkpoint_file = Some file;
      jobs = 1;
    }
  in
  let task () =
    let t0 = Obs.Clock.now () in
    let circ = circuit_of_job job in
    let report = Powder.Optimizer.optimize ~config:opt_config ?resume circ in
    let blif = Blif.Blif_io.circuit_to_string circ in
    let elapsed = Obs.Clock.now () -. t0 in
    (* injected crash fires after the slice's checkpoint is on disk:
       the retry must resume mid-job, the hardest recovery path *)
    if crash then raise (Failure.Crashed "injected worker crash");
    (Optimized (report, blif), elapsed)
  in
  { entry; task }

(* A pareto job is one slice: the sweep runs every constraint point to
   completion, checkpointing each point to the job's .pareto directory
   so a crashed or stormed slice retries by re-running only the
   unfinished points (finished ones resume to their final report
   instantly). *)
let prepare_pareto st (entry : Jobq.entry) =
  let job = entry.Jobq.job in
  let id = job.Protocol.id in
  let o = job.Protocol.options in
  let dir = ck_pareto_dir st.config id in
  let budget_left =
    match o.Protocol.budget_seconds with
    | None -> None
    | Some b -> Some (Float.max 0.0 (b -. entry.Jobq.consumed))
  in
  let stormed =
    match st.config.chaos with
    | Some c -> Chaos.storm_now c ~id
    | None -> false
  in
  let crash =
    match st.config.chaos with
    | Some c -> Chaos.crash_now c ~id
    | None -> false
  in
  (* the budget is per point: each point's optimizer stops cleanly on
     expiry, and handle_outcome decides timeout vs. spurious storm *)
  let run_seconds = if stormed then Some 0.0 else budget_left in
  let opt_config =
    {
      Powder.Optimizer.default_config with
      words = o.Protocol.words;
      seed = Int64.of_int o.Protocol.seed;
      max_rounds = o.Protocol.max_rounds;
      run_seconds;
      cost = o.Protocol.cost;
      jobs = 1;
    }
  in
  let specs =
    Option.value o.Protocol.constraints ~default:Pareto.Sweep.default_specs
  in
  let name =
    match job.Protocol.source with
    | Protocol.Suite n -> n
    | Protocol.Blif _ -> "blif:" ^ id
  in
  let task () =
    let t0 = Obs.Clock.now () in
    let sweep =
      Pareto.Sweep.run ~config:opt_config ~specs ~jobs:1 ~checkpoint_dir:dir
        ~name
        (fun () -> circuit_of_job job)
    in
    let elapsed = Obs.Clock.now () -. t0 in
    if crash then raise (Failure.Crashed "injected worker crash");
    (Swept sweep, elapsed)
  in
  { entry; task }

let prepare st (entry : Jobq.entry) =
  match entry.Jobq.job.Protocol.kind with
  | Protocol.Optimize -> prepare_optimize st entry
  | Protocol.Pareto -> prepare_pareto st entry

let fail_job st (entry : Jobq.entry) ~klass ~why =
  let id = entry.Jobq.job.Protocol.id in
  st.failed <- st.failed + 1;
  Obs.Fleet.transition st.fleet ~id Obs.Fleet.Failed;
  Obs.Fleet.count st.fleet "failed";
  remove_checkpoint st.config entry.Jobq.job;
  Hashtbl.remove st.retries id;
  event st "job_failed"
    [
      ("id", J.String id);
      ("class", J.String (Failure.klass_name klass));
      ("error", J.String why);
    ]

let transient st (entry : Jobq.entry) ~now ~why =
  let id = entry.Jobq.job.Protocol.id in
  let r =
    match Hashtbl.find_opt st.retries id with
    | Some r -> r
    | None ->
      let r = Retry.create st.config.retry ~seed:st.config.seed ~job_id:id in
      Hashtbl.add st.retries id r;
      r
  in
  match Retry.next_delay r with
  | None -> fail_job st entry ~klass:Failure.Transient ~why:("retries exhausted: " ^ why)
  | Some delay ->
    entry.Jobq.retries <- entry.Jobq.retries + 1;
    entry.Jobq.not_before <- now +. delay;
    entry.Jobq.resumable <- has_checkpoint st.config entry.Jobq.job;
    Obs.Fleet.count st.fleet "retries";
    Obs.Fleet.transition st.fleet ~id Obs.Fleet.Retrying;
    event st "retry"
      [
        ("id", J.String id);
        ("attempt", J.Int (Retry.attempts r));
        ("delay_s", J.Float delay);
        ("error", J.String why);
      ];
    Jobq.requeue st.queue entry

let finalize_common st (entry : Jobq.entry) ~report_json ~done_fields =
  let job = entry.Jobq.job in
  let id = job.Protocol.id in
  let report_json =
    match report_json with
    | J.Obj fields ->
      J.Obj (("run", Obs.Runinfo.to_json (manifest st job)) :: fields)
    | other -> other
  in
  Persist.write_atomic (result_json st.config id)
    (J.to_string report_json ^ "\n");
  remove_checkpoint st.config job;
  Hashtbl.remove st.retries id;
  st.completed <- st.completed + 1;
  Obs.Fleet.transition st.fleet ~id Obs.Fleet.Done;
  Obs.Fleet.count st.fleet "completed";
  let latency =
    match Hashtbl.find_opt st.submit_time id with
    | Some t0 -> Obs.Clock.now () -. t0
    | None -> entry.Jobq.consumed
  in
  Obs.Fleet.observe_latency st.fleet latency;
  event st "job_done"
    ([ ("id", J.String id); ("kind", J.String (Protocol.kind_name job.Protocol.kind)) ]
    @ done_fields
    @ [
        ("latency_s", J.Float latency);
        ("retries", J.Int entry.Jobq.retries);
        ("preemptions", J.Int entry.Jobq.preemptions);
      ])

let finalize st (entry : Jobq.entry) (report : Powder.Optimizer.report) blif =
  Persist.write_atomic
    (result_blif st.config entry.Jobq.job.Protocol.id)
    blif;
  finalize_common st entry
    ~report_json:(Powder.Optimizer.report_to_json report)
    ~done_fields:
      [
        ("rounds", J.Int report.Powder.Optimizer.rounds);
        ("substitutions", J.Int report.Powder.Optimizer.substitutions);
        ("stopped_by", J.String report.Powder.Optimizer.stopped_by);
        ( "power_reduction_percent",
          J.Float (Powder.Optimizer.power_reduction_percent report) );
      ]

(* No result BLIF for a sweep: every frontier point is a different
   netlist; the per-point reports live inside the result JSON. *)
let finalize_pareto st (entry : Jobq.entry) (sweep : Pareto.Sweep.report) =
  finalize_common st entry
    ~report_json:(Pareto.Sweep.to_json sweep)
    ~done_fields:
      [
        ("points", J.Int (List.length sweep.Pareto.Sweep.points));
        ("frontier", J.Int (List.length sweep.Pareto.Sweep.frontier));
        ("dominated", J.Int sweep.Pareto.Sweep.dominated);
        ( "substitutions",
          J.Int
            (List.fold_left
               (fun acc (p : Pareto.Frontier.point) ->
                 acc + p.Pareto.Frontier.substitutions)
               0 sweep.Pareto.Sweep.points) );
      ]

(* corrupt half the checkpoint: enough to garble the JSON, with the
   file still present so the load path (not a missing-file path) runs *)
let truncate_ck file =
  match Unix.stat file with
  | { Unix.st_size; _ } when st_size > 1 ->
    Unix.truncate file (st_size / 2)
  | _ -> ()
  | exception Unix.Unix_error _ -> ()

let handle_outcome st prep result =
  let entry = prep.entry in
  let job = entry.Jobq.job in
  let id = job.Protocol.id in
  let o = job.Protocol.options in
  let now = Obs.Clock.now () in
  match result with
  | None -> transient st entry ~now ~why:"slice cancelled before start"
  | Some (Error ((e : exn), _bt)) -> (
    let why = Printexc.to_string e in
    match Failure.classify_exn e with
    | Failure.Transient -> transient st entry ~now ~why
    | (Failure.Fatal | Failure.Malformed | Failure.Timeout) as k ->
      fail_job st entry ~klass:k ~why)
  | Some (Ok (Swept sweep, elapsed)) ->
    entry.Jobq.consumed <- entry.Jobq.consumed +. elapsed;
    let hit_budget =
      List.exists
        (fun (_, (r : Powder.Optimizer.report)) ->
          String.equal r.Powder.Optimizer.stopped_by "run_budget")
        sweep.Pareto.Sweep.reports
    in
    if hit_budget then begin
      (* same spurious-timeout rule as optimize slices: a stormed
         deadline with budget to spare is transient, a genuinely
         exhausted budget is a timeout *)
      let spurious =
        match o.Protocol.budget_seconds with
        | None -> true
        | Some b -> b -. entry.Jobq.consumed > 1e-6
      in
      if spurious then transient st entry ~now ~why:"spurious deadline expiry"
      else
        fail_job st entry ~klass:Failure.Timeout
          ~why:
            (Printf.sprintf "wall-clock budget (%.3fs) exhausted"
               (Option.value o.Protocol.budget_seconds ~default:0.0))
    end
    else finalize_pareto st entry sweep
  | Some (Ok (Optimized (report, blif), elapsed)) ->
    entry.Jobq.consumed <- entry.Jobq.consumed +. elapsed;
    if String.equal report.Powder.Optimizer.stopped_by "run_budget" then begin
      (* Spurious-timeout rule: the optimizer's deadline fired, but is
         the job's own budget really gone?  A deadline storm expires
         the slice deadline while the job has budget to spare — that
         is a transient fault, not a timeout. *)
      let spurious =
        match o.Protocol.budget_seconds with
        | None -> true
        | Some b -> b -. entry.Jobq.consumed > 1e-6
      in
      if spurious then transient st entry ~now ~why:"spurious deadline expiry"
      else
        fail_job st entry ~klass:Failure.Timeout
          ~why:
            (Printf.sprintf "wall-clock budget (%.3fs) exhausted"
               (Option.value o.Protocol.budget_seconds ~default:0.0))
    end
    else begin
      let finished =
        (not (String.equal report.Powder.Optimizer.stopped_by "max_rounds"))
        || report.Powder.Optimizer.rounds >= o.Protocol.max_rounds
      in
      (* Job-level stop reason: a retried {e final} slice resumes a
         checkpoint that already sits at the round cap, so the
         optimizer has nothing left to do and reports [converged] —
         but an undisturbed run of the same job stops with
         [max_rounds].  Normalize so disturbed and clean runs emit
         identical reports. *)
      let report =
        if
          finished
          && String.equal report.Powder.Optimizer.stopped_by "converged"
          && report.Powder.Optimizer.rounds >= o.Protocol.max_rounds
        then { report with Powder.Optimizer.stopped_by = "max_rounds" }
        else report
      in
      if finished then finalize st entry report blif
      else begin
        (* mid-job slice boundary *)
        entry.Jobq.resumable <- true;
        (match st.config.chaos with
        | Some c when Chaos.corrupt_now c ~id ->
          truncate_ck (ck_file st.config id)
        | _ -> ());
        Obs.Fleet.transition st.fleet ~id Obs.Fleet.Queued;
        Jobq.requeue st.queue entry
      end
    end

(* A mid-job entry (it holds a checkpoint) that is runnable right now
   but was passed over because every batch slot went to higher
   priorities has been {e preempted}: it sits suspended at a slice
   boundary while more urgent work runs, and will resume from its
   checkpoint bit-identically.  Marked once per suspension — the
   Preempted state clears when the entry next runs. *)
let note_preemptions st batch ~now =
  let top =
    List.fold_left
      (fun m (e : Jobq.entry) -> max m e.Jobq.job.Protocol.priority)
      min_int batch
  in
  List.iter
    (fun (e : Jobq.entry) ->
      let id = e.Jobq.job.Protocol.id in
      if
        e.Jobq.resumable
        && e.Jobq.not_before <= now
        && e.Jobq.job.Protocol.priority < top
        && Obs.Fleet.state_of st.fleet ~id <> Some Obs.Fleet.Preempted
      then begin
        e.Jobq.preemptions <- e.Jobq.preemptions + 1;
        Obs.Fleet.count st.fleet "preemptions";
        Obs.Fleet.transition st.fleet ~id Obs.Fleet.Preempted;
        event st "preempted"
          [
            ("id", J.String id);
            ("priority", J.Int e.Jobq.job.Protocol.priority);
            ("by_priority", J.Int top);
          ]
      end)
    (Jobq.to_list st.queue)

let run_batch st entries =
  let now = Obs.Clock.now () in
  note_preemptions st entries ~now;
  List.iter
    (fun (e : Jobq.entry) ->
      e.Jobq.attempts <- e.Jobq.attempts + 1;
      Obs.Fleet.transition st.fleet ~id:e.Jobq.job.Protocol.id
        Obs.Fleet.Running)
    entries;
  (* snapshot with the running entries included: a hard kill during
     the slice must not lose them *)
  persist_queue ~extra:entries st;
  let preps = List.map (prepare st) entries in
  let specs =
    Par.Pool.speculate st.pool
      (Array.of_list (List.map (fun p () -> p.task ()) preps))
  in
  List.iteri
    (fun i prep -> handle_outcome st prep (Par.Pool.commit_result specs.(i)))
    preps;
  persist_queue st

(* ---- startup recovery ---- *)

let recover st =
  let qf = queue_file st.config in
  if Sys.file_exists qf then begin
    let parsed =
      match Persist.read_file qf with
      | Error e -> Error e
      | Ok s -> (
        match J.of_string s with
        | Error e -> Error e
        | Ok j -> (
          match Jobq.of_json j with
          | Error e -> Error (Protocol.error_detail e)
          | Ok q -> Ok q))
    in
    match parsed with
    | Error e ->
      (* a corrupt queue snapshot must not kill the server: start
         empty, but say so loudly *)
      event st "recover_failed" [ ("error", J.String e) ]
    | Ok old ->
      let requeued = ref [] and done_ = ref [] in
      List.iter
        (fun (e : Jobq.entry) ->
          let id = e.Jobq.job.Protocol.id in
          if Sys.file_exists (result_json st.config id) then
            done_ := id :: !done_
          else begin
            let e' = Jobq.submit st.queue e.Jobq.job in
            e'.Jobq.attempts <- e.Jobq.attempts;
            e'.Jobq.retries <- e.Jobq.retries;
            e'.Jobq.preemptions <- e.Jobq.preemptions;
            e'.Jobq.consumed <- e.Jobq.consumed;
            e'.Jobq.resumable <- has_checkpoint st.config e.Jobq.job;
            Hashtbl.replace st.submit_time id (Obs.Clock.now ());
            Obs.Fleet.transition st.fleet ~id Obs.Fleet.Queued;
            st.recovered <- st.recovered + 1;
            Obs.Fleet.count st.fleet "recovered";
            requeued := id :: !requeued
          end)
        (Jobq.to_list old);
      if !requeued <> [] || !done_ <> [] then
        event st "recovered"
          [
            ( "requeued",
              J.List (List.rev_map (fun s -> J.String s) !requeued) );
            ( "already_done",
              J.List (List.rev_map (fun s -> J.String s) !done_) );
          ]
  end

(* ---- the event loop ---- *)

let sleepf s =
  if s > 0.0 then
    try Unix.sleepf s with Unix.Unix_error (Unix.EINTR, _, _) -> ()

let run config ~source ~emit ?(should_stop = fun () -> false) () =
  mkdir_p config.state_dir;
  mkdir_p (ck_dir config);
  mkdir_p (results_dir config);
  let st =
    {
      config;
      queue = Jobq.create ();
      fleet = Obs.Fleet.create ();
      emit;
      pool = Par.Pool.create ~jobs:config.jobs ();
      retries = Hashtbl.create 16;
      submit_time = Hashtbl.create 16;
      draining = false;
      eof = false;
      stop = false;
      completed = 0;
      failed = 0;
      rejected = 0;
      recovered = 0;
    }
  in
  Fun.protect ~finally:(fun () -> Par.Pool.shutdown st.pool) @@ fun () ->
  event st "run_start"
    [
      ("tool", J.String "powder_serve");
      ("state_dir", J.String config.state_dir);
      ("jobs", J.Int config.jobs);
      ("slice_rounds", J.Int config.slice_rounds);
      ("seed", J.String (Int64.to_string config.seed));
      ( "chaos",
        match config.chaos with
        | None -> J.Null
        | Some c -> J.String (Chaos.fault_name (Chaos.fault c)) );
    ];
  recover st;
  (match config.chaos with
  | Some c ->
    List.iter (fun l -> handle_line st ~injected:true l) (Chaos.malformed_lines c)
  | None -> ());
  let outcome clean_exit =
    {
      completed = st.completed;
      failed = st.failed;
      rejected = st.rejected;
      recovered = st.recovered;
      status = Obs.Fleet.to_json st.fleet;
      clean_exit;
    }
  in
  let finish_drained () =
    persist_queue st;
    event st "drained"
      [
        ("completed", J.Int st.completed);
        ("failed", J.Int st.failed);
        ("rejected", J.Int st.rejected);
        ("fleet", Obs.Fleet.to_json st.fleet);
      ];
    outcome true
  in
  let finish_stopped () =
    persist_queue st;
    event st "shutdown"
      [
        ("pending", J.Int (Jobq.length st.queue));
        ("fleet", Obs.Fleet.to_json st.fleet);
      ];
    outcome false
  in
  let rec loop () =
    if st.stop || should_stop () then finish_stopped ()
    else begin
      (* drain whatever input is ready, without starving the queue *)
      let rec read_avail n =
        if n > 0 && not (st.eof || st.draining || st.stop) then
          match source () with
          | Line l ->
            handle_line st l;
            read_avail (n - 1)
          | Waiting -> ()
          | Eof ->
            st.eof <- true;
            event st "input_eof" []
      in
      read_avail 64;
      if st.stop || should_stop () then finish_stopped ()
      else begin
        let now = Obs.Clock.now () in
        let rec take k acc =
          if k = 0 then List.rev acc
          else
            match Jobq.pop_runnable st.queue ~now with
            | Some e -> take (k - 1) (e :: acc)
            | None -> List.rev acc
        in
        let batch = take config.jobs [] in
        (* jobs whose own budget is gone before the slice even starts *)
        let runnable, exhausted =
          List.partition
            (fun (e : Jobq.entry) ->
              match e.Jobq.job.Protocol.options.Protocol.budget_seconds with
              | Some b -> b -. e.Jobq.consumed > 1e-6
              | None -> true)
            batch
        in
        List.iter
          (fun (e : Jobq.entry) ->
            fail_job st e ~klass:Failure.Timeout
              ~why:"wall-clock budget exhausted before slice")
          exhausted;
        if exhausted <> [] then persist_queue st;
        (match runnable with
        | [] ->
          if (st.eof || st.draining) && Jobq.is_empty st.queue then ()
          else begin
            (match Jobq.next_wakeup st.queue ~now with
            | Some w ->
              sleepf (Float.min config.poll_seconds (Float.max 0.0 (w -. now)))
            | None ->
              (* nothing queued: the source's select already paced us
                 unless input is closed *)
              if st.eof || st.draining then sleepf config.poll_seconds)
          end
        | runnable -> run_batch st runnable);
        if (st.eof || st.draining) && Jobq.is_empty st.queue then
          finish_drained ()
        else loop ()
      end
    end
  in
  loop ()
