(** The batch-optimization supervisor: a single-threaded event loop
    that accepts JSONL requests, schedules jobs by priority, runs
    optimizer {e slices} on a [Par.Pool], and survives worker crashes,
    malformed input, spurious deadlines, corrupt checkpoints and
    process kills without losing a well-formed job.

    {2 Slicing and determinism}

    A job is never run to completion in one go.  Each scheduling turn
    advances it by [slice_rounds] optimizer rounds with
    [checkpoint_every = 1] and a per-job checkpoint file — so every
    round is a canonicalization barrier and the job can be preempted,
    retried, or killed at any slice boundary and resumed
    {e bit-identically} (the [Powder.Checkpoint] resume contract).
    Because {b every} run is sliced this way, a run disturbed by chaos
    injection converges to byte-identical result files.

    Each slice runs under its own wall-clock deadline: the job's
    remaining [budget_seconds] threaded as the optimizer's
    [run_seconds] cooperative deadline.

    {2 Failure handling}

    A slice that raises is contained by [Par.Pool.commit_result] and
    classified by {!Failure.classify_exn}: transient failures are
    retried with {!Retry} backoff (resuming from the last checkpoint),
    fatal ones fail the job, and the fleet keeps serving either way.
    A [run_budget] stop is a real [timeout] only when the job's own
    budget is actually exhausted; a spurious expiry (deadline storm)
    is retried as transient.  A corrupt checkpoint is surfaced as a
    typed event, rolled back, and the job restarts from scratch —
    landing on the same final answer.

    {2 State directory}

    {v
    state/queue.json        pending + running jobs (atomic snapshot)
    state/ck/<id>.json      per-job optimizer checkpoint
    state/results/<id>.json final report (with embedded run manifest)
    state/results/<id>.blif optimized netlist
    v}

    On startup the supervisor recovers [queue.json]: jobs whose result
    files already exist are skipped, the rest re-enter the queue
    (resuming from their checkpoints when present). *)

type config = {
  state_dir : string;
  jobs : int;            (** parallel worker slots ([Par.Pool] size) *)
  slice_rounds : int;    (** optimizer rounds per scheduling turn *)
  retry : Retry.policy;
  seed : int64;          (** server seed (retry jitter streams) *)
  chaos : Chaos.t option;
  poll_seconds : float;  (** input poll / idle sleep granularity *)
}

val default_config : state_dir:string -> config
(** jobs 1, slice_rounds 2, default retry, seed 0xC0FFEE, no chaos,
    50ms poll. *)

(** One input-source read: a complete line, nothing available yet, or
    end of input (which starts a drain, like an explicit [drain]
    request). *)
type pull = Line of string | Waiting | Eof

val file_source : string -> unit -> pull
(** Non-blocking line reader over a file, FIFO, or ["-"] (stdin). *)

type outcome = {
  completed : int;
  failed : int;
  rejected : int;   (** protocol lines answered with a typed error *)
  recovered : int;  (** jobs re-queued from a previous run's state *)
  status : Obs.Json.t;  (** final {!Obs.Fleet} snapshot *)
  clean_exit : bool;
      (** [true]: drained (explicit request or input EOF) with an
          empty queue; [false]: stopped early, queue persisted *)
}

val run :
  config ->
  source:(unit -> pull) ->
  emit:(Obs.Json.t -> unit) ->
  ?should_stop:(unit -> bool) ->
  unit ->
  outcome
(** Run the event loop until drained or [should_stop] fires.  [emit]
    receives the JSONL event stream; the first event is always a
    [run_start] header.  Events: [run_start], [recovered], [ack],
    [rejected], [status], [draining], [input_eof], [retry],
    [preempted], [checkpoint_corrupt], [job_done], [job_failed],
    [drained], [shutdown]. *)
