(** Capped exponential backoff with deterministic jitter.

    A transient job failure is retried after
    [min cap (base * 2^(attempt-1))], scaled by a jitter factor drawn
    from a per-job [Sim.Rng] stream — so two servers started with the
    same seed schedule byte-identical retries, while distinct jobs
    don't thundering-herd onto the same instant. *)

type policy = {
  base : float;        (** first-retry delay, seconds *)
  cap : float;         (** backoff ceiling, seconds *)
  max_attempts : int;  (** total tries, including the first *)
  jitter : float;      (** +/- fraction of the delay, in [0, 1] *)
}

val default : policy
(** base 0.05s, cap 2.0s, 5 attempts, 0.5 jitter. *)

type t

val create : policy -> seed:int64 -> job_id:string -> t
(** Jitter stream is [Sim.Rng.stream seed ("serve/retry/" ^ job_id)] —
    per-job, domain-separated, reproducible. *)

val attempts : t -> int
(** Attempts consumed so far. *)

val next_delay : t -> float option
(** Consume one attempt.  [Some delay] if a retry is allowed (the
    caller should wait [delay] seconds), [None] once [max_attempts]
    tries have been consumed. *)
