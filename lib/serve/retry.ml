type policy = {
  base : float;
  cap : float;
  max_attempts : int;
  jitter : float;
}

let default = { base = 0.05; cap = 2.0; max_attempts = 5; jitter = 0.5 }

type t = { policy : policy; rng : Sim.Rng.t; mutable attempts : int }

let create policy ~seed ~job_id =
  { policy; rng = Sim.Rng.stream seed ("serve/retry/" ^ job_id); attempts = 0 }

let attempts t = t.attempts

let next_delay t =
  t.attempts <- t.attempts + 1;
  if t.attempts >= t.policy.max_attempts then None
  else
    let raw =
      Float.min t.policy.cap
        (t.policy.base *. Float.pow 2.0 (float_of_int (t.attempts - 1)))
    in
    let u = Sim.Rng.next_float t.rng in
    (* scale by 1 +/- jitter/2 around the nominal delay *)
    Some (Float.max 0.0 (raw *. (1.0 +. (t.policy.jitter *. (u -. 0.5)))))
