(** The worker-failure taxonomy.

    Every job attempt ends in exactly one class, and the class alone
    decides the supervisor's move:

    - [Transient] — worker crash, I/O hiccup, spurious timeout.
      Retried with backoff up to the policy's attempt budget.
    - [Malformed] — the job itself is invalid (protocol rejects land
      here).  Never retried; answered with a typed error.
    - [Fatal] — the process cannot safely continue this job
      (out-of-memory, stack overflow, invariant violation).  Never
      retried; the job fails, the fleet keeps serving.
    - [Timeout] — the job's own wall-clock budget is exhausted.
      Never retried. *)

type klass = Transient | Malformed | Fatal | Timeout

val klass_name : klass -> string
(** Stable snake_case wire label. *)

exception Crashed of string
(** Raised by chaos injection (and usable by workers) to model an
    abrupt worker death mid-slice. *)

val classify_exn : exn -> klass
(** [Crashed] and [Sys_error] are [Transient]; [Out_of_memory],
    [Stack_overflow], [Assert_failure] and [Failure] messages tagged
    ["fatal:"] are [Fatal]; anything else is [Transient] (retrying an
    unknown exception is safe — the attempt budget bounds it). *)
