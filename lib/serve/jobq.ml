module J = Obs.Json

type entry = {
  job : Protocol.job;
  mutable attempts : int;
  mutable retries : int;
  mutable preemptions : int;
  mutable consumed : float;
  mutable not_before : float;
  mutable resumable : bool;
  seq : int;
}

type t = { mutable entries : entry list; mutable next_seq : int }

let create () = { entries = []; next_seq = 0 }
let length t = List.length t.entries
let is_empty t = t.entries = []
let mem t id = List.exists (fun e -> e.job.Protocol.id = id) t.entries

let submit t job =
  let e =
    {
      job;
      attempts = 0;
      retries = 0;
      preemptions = 0;
      consumed = 0.0;
      not_before = 0.0;
      resumable = false;
      seq = t.next_seq;
    }
  in
  t.next_seq <- t.next_seq + 1;
  t.entries <- t.entries @ [ e ];
  e

let better a b =
  a.job.Protocol.priority > b.job.Protocol.priority
  || (a.job.Protocol.priority = b.job.Protocol.priority && a.seq < b.seq)

let find_best t ~now =
  List.fold_left
    (fun best e ->
      if e.not_before > now then best
      else
        match best with
        | Some b when better b e -> best
        | _ -> Some e)
    None t.entries

let pop_runnable t ~now =
  match find_best t ~now with
  | None -> None
  | Some e ->
    t.entries <- List.filter (fun e' -> e' != e) t.entries;
    Some e

let requeue t e = t.entries <- t.entries @ [ e ]

let best_priority t ~now =
  Option.map (fun e -> e.job.Protocol.priority) (find_best t ~now)

let next_wakeup t ~now =
  match find_best t ~now with
  | Some _ -> None
  | None ->
    List.fold_left
      (fun acc e ->
        if e.not_before <= now then acc
        else
          match acc with
          | Some w when w <= e.not_before -> acc
          | _ -> Some e.not_before)
      None t.entries

let entry_to_json e =
  J.Obj
    [
      ("job", Protocol.job_to_json e.job);
      ("attempts", J.Int e.attempts);
      ("retries", J.Int e.retries);
      ("preemptions", J.Int e.preemptions);
      ("consumed_s", J.Float e.consumed);
      ("resumable", J.Bool e.resumable);
    ]

let to_list t = List.sort (fun a b -> compare a.seq b.seq) t.entries

let to_json ?(extra = []) t =
  (* seq order = submission order; of_json re-numbers from zero *)
  let es =
    List.sort (fun a b -> compare a.seq b.seq) (extra @ t.entries)
  in
  J.Obj [ ("pending", J.List (List.map entry_to_json es)) ]

let ( let* ) = Result.bind

let entry_of_json t j =
  match j with
  | J.Obj fields ->
    let mem k = List.assoc_opt k fields in
    let* job =
      match mem "job" with
      | None -> Error (Protocol.Missing_field "job")
      | Some v -> Protocol.job_of_json v
    in
    let int_field k =
      match Option.bind (mem k) J.get_int with Some n -> n | None -> 0
    in
    let e = submit t job in
    e.attempts <- int_field "attempts";
    e.retries <- int_field "retries";
    e.preemptions <- int_field "preemptions";
    (e.consumed <-
       (match Option.bind (mem "consumed_s") J.get_float with
       | Some c -> c
       | None -> 0.0));
    (e.resumable <-
       (match Option.bind (mem "resumable") J.get_bool with
       | Some b -> b
       | None -> false));
    Ok ()
  | _ -> Error Protocol.Not_an_object

let of_json j =
  match j with
  | J.Obj fields -> (
    match List.assoc_opt "pending" fields with
    | Some (J.List items) ->
      let t = create () in
      let* () =
        List.fold_left
          (fun acc item ->
            let* () = acc in
            entry_of_json t item)
          (Ok ()) items
      in
      Ok t
    | Some _ -> Error (Protocol.Bad_field ("pending", "must be a list"))
    | None -> Error (Protocol.Missing_field "pending"))
  | _ -> Error Protocol.Not_an_object
