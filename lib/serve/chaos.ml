type fault = Worker_crash | Malformed_job | Deadline_storm | Checkpoint_corrupt

let fault_name = function
  | Worker_crash -> "worker-crash"
  | Malformed_job -> "malformed-job"
  | Deadline_storm -> "deadline-storm"
  | Checkpoint_corrupt -> "checkpoint-corrupt"

let all_faults =
  [ Worker_crash; Malformed_job; Deadline_storm; Checkpoint_corrupt ]

let fault_of_name name =
  List.find_opt (fun f -> fault_name f = name) all_faults

type t = {
  fault : fault;
  malformed : string array;
  fired : (string, unit) Hashtbl.t;  (* hook-qualified job ids *)
  mutable spliced : bool;
}

let create ?(malformed = [||]) fault =
  { fault; malformed; fired = Hashtbl.create 16; spliced = false }

let fault t = t.fault

let once t key =
  if Hashtbl.mem t.fired key then false
  else begin
    Hashtbl.add t.fired key ();
    true
  end

let crash_now t ~id = t.fault = Worker_crash && once t ("crash/" ^ id)
let storm_now t ~id = t.fault = Deadline_storm && once t ("storm/" ^ id)

let corrupt_now t ~id =
  t.fault = Checkpoint_corrupt && once t ("corrupt/" ^ id)

let malformed_lines t =
  if t.fault = Malformed_job && not t.spliced then begin
    t.spliced <- true;
    Array.to_list t.malformed
  end
  else []
