let write_atomic path contents =
  let tmp = path ^ ".tmp" in
  let fd = Unix.openfile tmp [ O_WRONLY; O_CREAT; O_TRUNC; O_CLOEXEC ] 0o644 in
  let closed = ref false in
  Fun.protect
    ~finally:(fun () -> if not !closed then try Unix.close fd with _ -> ())
    (fun () ->
      let n = String.length contents in
      let written = ref 0 in
      while !written < n do
        written :=
          !written + Unix.write_substring fd contents !written (n - !written)
      done;
      Unix.fsync fd;
      Unix.close fd;
      closed := true);
  Sys.rename tmp path;
  (* durability of the rename itself is best-effort: some filesystems
     refuse to fsync a directory fd *)
  match Unix.openfile (Filename.dirname path) [ O_RDONLY ] 0 with
  | dirfd ->
    (try Unix.fsync dirfd with Unix.Unix_error _ -> ());
    (try Unix.close dirfd with Unix.Unix_error _ -> ())
  | exception Unix.Unix_error _ -> ()

let read_file path =
  match open_in_bin path with
  | exception Sys_error e -> Error e
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        match really_input_string ic (in_channel_length ic) with
        | s -> Ok s
        | exception End_of_file -> Error (path ^ ": truncated read"))
