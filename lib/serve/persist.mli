(** Crash-atomic durable file writes for the serve state directory —
    the same tmp + fsync + rename discipline as [Powder.Checkpoint],
    for arbitrary payloads (queue snapshots, result reports, BLIFs). *)

val write_atomic : string -> string -> unit
(** [write_atomic path contents]: write [path ^ ".tmp"], fsync, rename
    over [path], then best-effort fsync the directory.  A kill at any
    instant leaves either the old complete file or the new one. *)

val read_file : string -> (string, string) result
(** Whole-file read; [Error] carries the system message. *)
