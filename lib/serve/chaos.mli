(** Fault injection for the serve harness.

    Styled after [Powder.Guard]'s one-shot injection: a chaos handle
    carries one fault class and fires each hook at most once per job
    id, on the earliest opportunity — so a chaotic run is exactly as
    deterministic as a clean one, and the acceptance bar ("all
    well-formed jobs complete with byte-identical outputs under every
    fault") is a reproducible test, not a flake lottery.

    - [Worker_crash]: the worker raises [Failure.Crashed] mid-slice on
      the job's first attempt.  The supervisor must classify it
      transient, retry with backoff, and resume from the checkpoint.
    - [Malformed_job]: hostile protocol lines (the [Fuzz.Proto]
      corpus, supplied by the caller) are spliced between real
      submissions.  Every one must draw a typed error event.
    - [Deadline_storm]: the job's first attempt runs under an
      already-expired deadline.  The supervisor must recognize the
      spurious timeout (the job's own budget is untouched) and retry.
    - [Checkpoint_corrupt]: the job's checkpoint file is truncated
      after its first completed slice.  The supervisor must surface
      the typed [Powder.Checkpoint] error, roll back, and restart the
      job from scratch. *)

type fault = Worker_crash | Malformed_job | Deadline_storm | Checkpoint_corrupt

val fault_name : fault -> string
val fault_of_name : string -> fault option
val all_faults : fault list

type t

val create : ?malformed:string array -> fault -> t
(** [malformed] supplies the hostile lines for [Malformed_job]
    (typically [Fuzz.Proto.corpus] lines); ignored for other faults. *)

val fault : t -> fault

val crash_now : t -> id:string -> bool
(** [Worker_crash] only: fires once per job id. *)

val storm_now : t -> id:string -> bool
(** [Deadline_storm] only: fires once per job id. *)

val corrupt_now : t -> id:string -> bool
(** [Checkpoint_corrupt] only: fires once per job id (call it after a
    non-final slice has written a checkpoint). *)

val malformed_lines : t -> string list
(** [Malformed_job] only: the lines to splice into the input, once. *)
