type klass = Transient | Malformed | Fatal | Timeout

let klass_name = function
  | Transient -> "transient"
  | Malformed -> "malformed"
  | Fatal -> "fatal"
  | Timeout -> "timeout"

exception Crashed of string

let classify_exn = function
  | Crashed _ -> Transient
  | Sys_error _ -> Transient
  | Out_of_memory | Stack_overflow -> Fatal
  | Assert_failure _ -> Fatal
  | Failure m when String.length m >= 6 && String.sub m 0 6 = "fatal:" -> Fatal
  | _ -> Transient
