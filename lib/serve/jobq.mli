(** The pending-job queue: priority order, FIFO within a priority,
    backoff-aware, persistable.

    Entries carry their scheduling state (attempt/retry/preemption
    counters, consumed budget, earliest-runnable instant, whether a
    checkpoint exists to resume from).  [pop_runnable] removes the
    highest-priority entry whose backoff has elapsed; ties break by
    submission order, so scheduling is deterministic given the same
    submissions and clock readings.

    [to_json]/[of_json] round-trip the whole queue so a drained or
    killed server can persist pending work and a restart can recover
    it.  Backoff instants are deliberately {e not} persisted — after a
    restart every pending job is immediately runnable. *)

type entry = {
  job : Protocol.job;
  mutable attempts : int;     (** run attempts started *)
  mutable retries : int;      (** transient failures retried *)
  mutable preemptions : int;  (** times preempted by a higher priority *)
  mutable consumed : float;   (** wall-clock seconds of completed slices *)
  mutable not_before : float; (** runnable once [now >= not_before] *)
  mutable resumable : bool;   (** a checkpoint exists; resume, don't restart *)
  seq : int;                  (** submission order, the FIFO tiebreak *)
}

type t

val create : unit -> t
val length : t -> int
val is_empty : t -> bool

val mem : t -> string -> bool
(** Is a job with this id currently queued? *)

val submit : t -> Protocol.job -> entry
(** Append a fresh entry (immediately runnable). *)

val pop_runnable : t -> now:float -> entry option
(** Remove and return the best runnable entry: maximum priority, then
    minimum [seq], among entries with [not_before <= now]. *)

val requeue : t -> entry -> unit
(** Put a popped entry back (after a retry delay was set on it, or a
    preemption).  Its [seq] is preserved, so it keeps its FIFO slot. *)

val best_priority : t -> now:float -> int option
(** Priority of the entry [pop_runnable] would return, without
    removing it — the preemption test. *)

val next_wakeup : t -> now:float -> float option
(** Earliest [not_before] strictly in the future, if no entry is
    runnable now: how long a drain loop may sleep.  [None] when the
    queue is empty or something is already runnable. *)

val to_list : t -> entry list
(** All entries in submission ([seq]) order. *)

val to_json : ?extra:entry list -> t -> Obs.Json.t
(** [extra] entries (typically the ones popped and currently running)
    are persisted alongside the queued ones, so a hard kill mid-slice
    cannot lose a job. *)

val of_json : Obs.Json.t -> (t, Protocol.error) result
