(** Bit-parallel (64 patterns per word) logic simulation on mapped
    netlists.

    An engine holds one word-vector per circuit node.  Pattern sources:
    weighted random vectors (Monte-Carlo power estimation, candidate
    signatures) or exhaustive enumeration (exact equivalence and
    probabilities on small circuits).  After the circuit is edited, call
    {!resim_tfo} (cheap, the POWDER inner loop) or {!resim_all}. *)

type t

val create : Netlist.Circuit.t -> words:int -> t
(** [words] 64-bit words per signal, i.e. [64 * words] patterns. *)

val circuit : t -> Netlist.Circuit.t
val words : t -> int
val num_patterns : t -> int

val randomize : t -> ?input_probs:(Netlist.Circuit.node_id -> float) -> Rng.t -> unit
(** Draw fresh PI patterns (default probability 0.5 per input) and
    simulate the whole circuit. *)

val randomize_sharded :
  ?input_probs:(Netlist.Circuit.node_id -> float) ->
  ?pool:Par.Pool.t ->
  seed:int64 ->
  t ->
  unit
(** Like {!randomize}, but PI words are drawn in fixed-size shards,
    each from its own stream derived as
    [Rng.stream seed "sim/words-<k>"], and the shards (plus the
    subsequent full resimulation) may be computed in parallel on
    [pool].  Because the shard size is a constant independent of the
    pool's job count, the resulting signatures are {b bit-identical}
    for any [jobs], including no pool at all.  Note the patterns
    differ from [randomize t (Rng.create seed)] — pick one scheme per
    call site and stay with it. *)

val exhaustive : t -> unit
(** Assign all [2^n] input combinations (requires
    [words * 64 >= 2^n] where [n] is the PI count; excess patterns
    repeat the enumeration) and simulate.
    @raise Invalid_argument if the pattern set cannot hold [2^n]. *)

val resim_all : ?pool:Par.Pool.t -> t -> unit
(** Recompute every node.  With [pool], pattern words are sharded
    across domains (disjoint word slices, whole topo order per slice);
    the resulting values are identical to the sequential sweep. *)

val resim_tfo : t -> Netlist.Circuit.node_id -> unit
(** Recompute only the transitive fanout of a node (the node itself is
    re-evaluated too). *)

val resim_after_edit :
  ?on_change:(Netlist.Circuit.node_id -> unit) -> t -> Netlist.Circuit.node_id -> int
(** Incremental re-simulation after a structural edit at the given
    node: a levelized update queue seeded with the node and its direct
    fanout sinks, draining in topological order and propagating only
    through nodes whose words actually changed.  Produces exactly the
    values of {!resim_tfo} (and hence of a full {!resim_all}) but
    touches only the changed cone.  [on_change] fires once per
    changed node, in topological order.  Returns the number of nodes
    re-evaluated (counted on the ["sig/resim_nodes"] metric). *)

val value : t -> Netlist.Circuit.node_id -> int64 array
(** Current signature of a node (shared array; do not mutate). *)

val count_ones : t -> Netlist.Circuit.node_id -> int
val prob_one : t -> Netlist.Circuit.node_id -> float

val equal_signature : t -> Netlist.Circuit.node_id -> Netlist.Circuit.node_id -> bool
val complement_signature : t -> Netlist.Circuit.node_id -> Netlist.Circuit.node_id -> bool

val stem_observability : t -> Netlist.Circuit.node_id -> int64 array
(** Mask of patterns on which complementing the stem changes at least
    one primary output.  Leaves the engine state unchanged. *)

val branch_observability : t -> sink:Netlist.Circuit.node_id -> pin:int -> int64 array
(** Same for a single branch (one fanout pin). *)

val with_perturbation :
  t ->
  first:Netlist.Circuit.node_id ->
  perturb:(t -> unit) ->
  measure:(t -> 'a) ->
  'a
(** Save the values of [first] and its transitive fanout, run [perturb]
    (which may overwrite node values), re-simulate the fanout, run
    [measure], then restore all saved values.  The circuit structure
    must not be modified by the callbacks. *)

val set_value : t -> Netlist.Circuit.node_id -> int64 array -> unit
(** Overwrite a node's words (copied). *)

val apply_gate_words : Logic.Tt.t -> int64 array array -> int64 array
(** Bit-parallel evaluation of a cell function over signature words. *)

val recompute_with_pin_override :
  t -> sink:Netlist.Circuit.node_id -> pin:int -> int64 array -> unit
(** Recompute [sink]'s words as if pin [pin] carried the given words
    instead of its driver's. *)

val po_signatures : t -> (string * int64 array) list
(** Signatures of all primary outputs, by PO name. *)

val equivalent_on_patterns : t -> t -> bool
(** Compare PO signatures of two engines over the same PO names (both
    must have equal [words]); true when every PO matches on every
    pattern. *)

val eval_single : Netlist.Circuit.t -> bool list -> (string * bool) list
(** Convenience single-pattern evaluation: PI values in [pis] order;
    returns PO name/value pairs. *)
