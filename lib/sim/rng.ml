type t = { mutable state : int64 }

let create seed = { state = seed }

let golden = 0x9E3779B97F4A7C15L

let next t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_float t =
  let bits = Int64.shift_right_logical (next t) 11 in
  Int64.to_float bits /. 9007199254740992.0

let bits_with_prob t p =
  if p <= 0.0 then 0L
  else if p >= 1.0 then -1L
  else begin
    let w = ref 0L in
    for i = 0 to 63 do
      if next_float t < p then w := Int64.logor !w (Int64.shift_left 1L i)
    done;
    !w
  end

let split t = create (next t)

let derive base label =
  let t = create base in
  (* absorb the label one byte per splitmix step, then finalize with
     one more step so even a trailing byte diffuses through the state *)
  String.iter
    (fun ch -> t.state <- Int64.logxor (next t) (Int64.of_int (Char.code ch)))
    label;
  next t

let stream base label = create (derive base label)
