module Circuit = Netlist.Circuit
module Tt = Logic.Tt
module Cell = Gatelib.Cell

type t = {
  circ : Circuit.t;
  w : int;
  mutable values : int64 array array; (* per node id *)
  (* persistent scratch for perturb-and-restore observability: saved
     rows are pooled per node (no per-call copies), [obs_changed] is
     cleared on exit by walking the touched list *)
  mutable obs_saved : int64 array array;
  mutable obs_changed : Bytes.t;
  (* rank-ordered worklist scratch: topo rank per node (rebuilt when
     the memoized order changes identity), a binary min-heap of node
     ids keyed by rank, and its membership flags *)
  mutable obs_rank : int array;
  mutable obs_rank_key : Circuit.node_id array;
  mutable obs_heap : int array;
  mutable obs_inq : Bytes.t;
}

let create circ ~words =
  if words <= 0 then invalid_arg "Engine.create";
  {
    circ;
    w = words;
    values = Array.init (Circuit.num_nodes circ) (fun _ -> Array.make words 0L);
    obs_saved = [||];
    obs_changed = Bytes.empty;
    obs_rank = [||];
    obs_rank_key = [||];
    obs_heap = [||];
    obs_inq = Bytes.empty;
  }

let circuit t = t.circ
let words t = t.w
let num_patterns t = 64 * t.w

let ensure_capacity t =
  let n = Circuit.num_nodes t.circ in
  if n > Array.length t.values then begin
    let bigger =
      Array.init (max n (2 * Array.length t.values)) (fun i ->
          if i < Array.length t.values then t.values.(i) else Array.make t.w 0L)
    in
    t.values <- bigger
  end

let value t id = t.values.(id)

(* Evaluate one cell output word-vector from its fanin word-vectors,
   over the word range [lo, hi).  One- and two-input cells (the vast
   majority of instances) get direct bitwise implementations; larger
   cells fall back to an OR over the function's ON-minterms.  Every
   word is computed independently of the others, which is what lets
   [resim_all] shard the word range across domains. *)
let eval_cell_words_range func (ins : int64 array array) (out : int64 array) lo hi =
  let k = Tt.num_vars func in
  let generic () =
    let ons = Array.of_list (Tt.minterms func) in
    for j = lo to hi - 1 do
      let acc = ref 0L in
      for mi = 0 to Array.length ons - 1 do
        let m = ons.(mi) in
        let conj = ref (-1L) in
        for i = 0 to k - 1 do
          let v = ins.(i).(j) in
          conj :=
            Int64.logand !conj
              (if m land (1 lsl i) <> 0 then v else Int64.lognot v)
        done;
        acc := Int64.logor !acc !conj
      done;
      out.(j) <- !acc
    done
  in
  match k with
  | 0 -> Array.fill out lo (hi - lo) (if Tt.is_const_true func then -1L else 0L)
  | 1 -> (
    let a = ins.(0) in
    match Int64.to_int (Tt.word func) land 3 with
    | 0b01 -> for j = lo to hi - 1 do out.(j) <- Int64.lognot a.(j) done
    | 0b10 -> Array.blit a lo out lo (hi - lo)
    | 0b00 -> Array.fill out lo (hi - lo) 0L
    | _ -> Array.fill out lo (hi - lo) (-1L))
  | 2 -> (
    let a = ins.(0) and b = ins.(1) in
    let ( &&& ) = Int64.logand and ( ||| ) = Int64.logor in
    let ( ^^^ ) = Int64.logxor and nt = Int64.lognot in
    match Int64.to_int (Tt.word func) land 0xF with
    | 0x8 -> for j = lo to hi - 1 do out.(j) <- a.(j) &&& b.(j) done
    | 0xE -> for j = lo to hi - 1 do out.(j) <- a.(j) ||| b.(j) done
    | 0x6 -> for j = lo to hi - 1 do out.(j) <- a.(j) ^^^ b.(j) done
    | 0x7 -> for j = lo to hi - 1 do out.(j) <- nt (a.(j) &&& b.(j)) done
    | 0x1 -> for j = lo to hi - 1 do out.(j) <- nt (a.(j) ||| b.(j)) done
    | 0x9 -> for j = lo to hi - 1 do out.(j) <- nt (a.(j) ^^^ b.(j)) done
    | 0x2 -> for j = lo to hi - 1 do out.(j) <- a.(j) &&& nt b.(j) done
    | 0x4 -> for j = lo to hi - 1 do out.(j) <- nt a.(j) &&& b.(j) done
    | 0xB -> for j = lo to hi - 1 do out.(j) <- a.(j) ||| nt b.(j) done
    | 0xD -> for j = lo to hi - 1 do out.(j) <- nt a.(j) ||| b.(j) done
    | _ -> generic ())
  | _ -> generic ()

let eval_cell_words func ins out w = eval_cell_words_range func ins out 0 w

let eval_node_range t id lo hi =
  match Circuit.kind t.circ id with
  | Circuit.Pi -> ()
  | Circuit.Const b ->
    Array.fill t.values.(id) lo (hi - lo) (if b then -1L else 0L)
  | Circuit.Po d -> Array.blit t.values.(d) lo t.values.(id) lo (hi - lo)
  | Circuit.Cell (c, fs) ->
    let ins = Array.map (fun f -> t.values.(f)) fs in
    eval_cell_words_range c.Cell.func ins t.values.(id) lo hi

let eval_node t id = eval_node_range t id 0 t.w

(* telemetry: how much node re-evaluation each update costs, so the
   TFO-resim share of the optimizer's budget is visible *)
let m_resim_all_calls = Obs.Metrics.counter "sim.resim_all.calls"
let m_resim_tfo_calls = Obs.Metrics.counter "sim.resim_tfo.calls"
let m_resim_nodes = Obs.Metrics.counter "sim.resim.nodes"
let m_obs_stem_calls = Obs.Metrics.counter "sim.observability.stem.calls"
let m_obs_branch_calls = Obs.Metrics.counter "sim.observability.branch.calls"

(* Full resimulation.  With a pool, the word range is cut into one
   contiguous slice per executor and each domain sweeps the whole topo
   order over its slice: every word of every node is computed exactly
   as in the sequential sweep (per-word independence of
   [eval_cell_words_range]), writes from different domains land on
   disjoint array indices, and the speculate barrier publishes them
   back to the caller.  Metric accounting happens once, on the caller,
   so counters match the sequential run. *)
let resim_all ?pool t =
  ensure_capacity t;
  let order = Circuit.topo_order t.circ in
  let pos = Circuit.pos t.circ in
  let sweep lo hi =
    Array.iter (fun id -> eval_node_range t id lo hi) order;
    List.iter (fun po -> eval_node_range t po lo hi) pos
  in
  (match pool with
  | Some p when Par.Pool.jobs p > 1 && t.w > 1 && not (Par.Pool.in_task ()) ->
    let slices = min (Par.Pool.jobs p) t.w in
    let base = t.w / slices and extra = t.w mod slices in
    let ranges =
      Array.init slices (fun k ->
          let lo = (k * base) + min k extra in
          let hi = lo + base + (if k < extra then 1 else 0) in
          (lo, hi))
    in
    ignore (Par.Pool.map p ~f:(fun (lo, hi) -> sweep lo hi) ranges)
  | _ -> sweep 0 t.w);
  Obs.Metrics.incr m_resim_all_calls;
  Obs.Metrics.add m_resim_nodes (Array.length order + List.length pos)

let m_resim_edit_calls = Obs.Metrics.counter "sim.resim_edit.calls"
let m_sig_resim_nodes = Obs.Metrics.counter "sig/resim_nodes"

(* Incremental re-simulation after a structural edit at [s]: a levelized
   update queue seeded with [s] and its direct fanout sinks (the nodes
   whose fanins a substitution rewires), draining in topological order
   and enqueueing a node's fanouts only when its words actually changed.
   Equivalent to [resim_tfo] word for word — the pruning only skips
   nodes whose inputs are provably unchanged — but touches the changed
   cone instead of the whole transitive fanout, which is what makes
   per-accept signature maintenance cheap.  [on_change] fires once per
   node whose words changed, in topological order. *)
let resim_after_edit ?on_change t s =
  ensure_capacity t;
  let order = Circuit.topo_order t.circ in
  let n_order = Array.length order in
  let pos_list = Circuit.pos t.circ in
  let level = Array.make (Array.length t.values) (-1) in
  Array.iteri (fun i id -> level.(id) <- i) order;
  List.iteri (fun i po -> level.(po) <- n_order + i) pos_list;
  (* binary min-heap of node ids keyed by topological position *)
  let heap = ref (Array.make 64 (-1)) in
  let hn = ref 0 in
  let queued = Array.make (Array.length t.values) false in
  let swap i j =
    let h = !heap in
    let tmp = h.(i) in
    h.(i) <- h.(j);
    h.(j) <- tmp
  in
  let push id =
    if level.(id) >= 0 && not queued.(id) then begin
      queued.(id) <- true;
      if !hn >= Array.length !heap then begin
        let bigger = Array.make (2 * Array.length !heap) (-1) in
        Array.blit !heap 0 bigger 0 !hn;
        heap := bigger
      end;
      !heap.(!hn) <- id;
      incr hn;
      let i = ref (!hn - 1) in
      while !i > 0 && level.(!heap.((!i - 1) / 2)) > level.(!heap.(!i)) do
        swap ((!i - 1) / 2) !i;
        i := (!i - 1) / 2
      done
    end
  in
  let pop () =
    let h = !heap in
    let top = h.(0) in
    decr hn;
    h.(0) <- h.(!hn);
    let i = ref 0 in
    let continue_ = ref true in
    while !continue_ do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let m = ref !i in
      if l < !hn && level.(h.(l)) < level.(h.(!m)) then m := l;
      if r < !hn && level.(h.(r)) < level.(h.(!m)) then m := r;
      if !m <> !i then begin
        swap !i !m;
        i := !m
      end
      else continue_ := false
    done;
    top
  in
  push s;
  List.iter (fun p -> push p.Circuit.sink) (Circuit.fanouts t.circ s);
  let scratch = Array.make t.w 0L in
  let evaluated = ref 0 in
  while !hn > 0 do
    let id = pop () in
    Array.blit t.values.(id) 0 scratch 0 t.w;
    eval_node t id;
    incr evaluated;
    let changed =
      let v = t.values.(id) in
      let rec differs j =
        j < t.w && (not (Int64.equal v.(j) scratch.(j)) || differs (j + 1))
      in
      differs 0
    in
    if changed then begin
      (match on_change with None -> () | Some f -> f id);
      List.iter (fun p -> push p.Circuit.sink) (Circuit.fanouts t.circ id)
    end
  done;
  Obs.Metrics.incr m_resim_edit_calls;
  Obs.Metrics.add m_resim_nodes !evaluated;
  Obs.Metrics.add m_sig_resim_nodes !evaluated;
  !evaluated

let resim_tfo t s =
  ensure_capacity t;
  let tfo = Circuit.tfo t.circ s in
  eval_node t s;
  let evaluated = ref 1 in
  let order = Circuit.topo_order t.circ in
  Array.iter
    (fun id ->
      if tfo.(id) then begin
        eval_node t id;
        incr evaluated
      end)
    order;
  List.iter
    (fun po ->
      if tfo.(po) then begin
        eval_node t po;
        incr evaluated
      end)
    (Circuit.pos t.circ);
  Obs.Metrics.incr m_resim_tfo_calls;
  Obs.Metrics.add m_resim_nodes !evaluated

let randomize t ?input_probs rng =
  ensure_capacity t;
  let prob =
    match input_probs with Some f -> f | None -> fun _ -> 0.5
  in
  List.iter
    (fun pi ->
      let p = prob pi in
      let v = t.values.(pi) in
      for j = 0 to t.w - 1 do
        v.(j) <- Rng.bits_with_prob rng p
      done)
    (Circuit.pis t.circ);
  resim_all t

(* Word-sharded randomization.  PI words are drawn in fixed-size shards
   of [shard_words] words, each shard from its own derived stream
   [Rng.stream seed "sim/words-<k>"].  The shard size is a constant —
   deliberately NOT a function of the job count — so the bits assigned
   to word [j] depend only on [(seed, j)]: any [--jobs N] produces
   signatures bit-identical to [--jobs 1], which in turn anchors the
   byte-identical-report invariant of the whole parallel subsystem. *)
let shard_words = 2

let randomize_sharded ?input_probs ?pool ~seed t =
  (* spanned on the caller's domain only — [fill_shard] bodies stay
     span-free so a pool run's trace has the same tree as a sequential
     one *)
  Obs.Trace.with_span "sim/randomize" @@ fun () ->
  ensure_capacity t;
  let prob = match input_probs with Some f -> f | None -> fun _ -> 0.5 in
  let pis = Circuit.pis t.circ in
  let nshards = (t.w + shard_words - 1) / shard_words in
  let fill_shard k =
    let rng = Rng.stream seed (Printf.sprintf "sim/words-%d" k) in
    let lo = k * shard_words in
    let hi = min t.w (lo + shard_words) in
    (* word-major within the shard: the draw order is part of the
       stream contract, keep it fixed *)
    for j = lo to hi - 1 do
      List.iter
        (fun pi -> t.values.(pi).(j) <- Rng.bits_with_prob rng (prob pi))
        pis
    done
  in
  (match pool with
  | Some p when Par.Pool.jobs p > 1 && nshards > 1 && not (Par.Pool.in_task ()) ->
    ignore (Par.Pool.map p ~f:fill_shard (Array.init nshards (fun k -> k)))
  | _ ->
    for k = 0 to nshards - 1 do
      fill_shard k
    done);
  resim_all ?pool t

let exhaustive t =
  ensure_capacity t;
  let pis = Circuit.pis t.circ in
  let n = List.length pis in
  if n > 6 && 64 * t.w < 1 lsl n then
    invalid_arg "Engine.exhaustive: not enough patterns";
  List.iteri
    (fun i pi ->
      let v = t.values.(pi) in
      if i < 6 then begin
        let m = Tt.word (Tt.var 6 i) in
        Array.fill v 0 t.w m
      end
      else
        for j = 0 to t.w - 1 do
          v.(j) <- (if (j lsr (i - 6)) land 1 = 1 then -1L else 0L)
        done)
    pis;
  resim_all t

let count_ones t id = Logic.Bits.popcount_words t.values.(id)

let prob_one t id = float_of_int (count_ones t id) /. float_of_int (num_patterns t)

let equal_signature t a b =
  let va = t.values.(a) and vb = t.values.(b) in
  let rec go j = j >= t.w || (Int64.equal va.(j) vb.(j) && go (j + 1)) in
  go 0

let complement_signature t a b =
  let va = t.values.(a) and vb = t.values.(b) in
  let rec go j =
    j >= t.w || (Int64.equal va.(j) (Int64.lognot vb.(j)) && go (j + 1))
  in
  go 0

(* Flip-and-resimulate machinery for observability masks.  Saves the
   affected slice, perturbs, replays, diffs the POs, restores. *)
(* Event-driven perturb-diff-restore: after perturbing [first], a node
   is re-evaluated only when one of its direct fanins actually changed
   — unchanged fanins reproduce the old words exactly, so the wave
   dies where the perturbation is logically masked.  The frontier is a
   binary min-heap on topo rank: a node is pushed when a fanin
   changes, and popping in rank order guarantees every fanin is final
   before the node re-evaluates, exactly like the topo sweep it
   replaces — without visiting the untouched rest of the circuit.
   Saved rows come from a per-engine pool and all flags are cleared on
   exit by walking the touched list, so a call allocates nothing
   proportional to the circuit. *)
let observability_core t ~first ~perturb =
  let circ = t.circ in
  let n = Circuit.num_nodes circ in
  if Array.length t.obs_saved < n then begin
    let bigger = Array.make (max n (2 * Array.length t.obs_saved)) [||] in
    Array.blit t.obs_saved 0 bigger 0 (Array.length t.obs_saved);
    t.obs_saved <- bigger
  end;
  if Bytes.length t.obs_changed < n then begin
    let bigger = Bytes.make (max n (2 * Bytes.length t.obs_changed)) '\000' in
    Bytes.blit t.obs_changed 0 bigger 0 (Bytes.length t.obs_changed);
    t.obs_changed <- bigger
  end;
  if Array.length t.obs_heap < n then t.obs_heap <- Array.make n 0;
  if Bytes.length t.obs_inq < n then begin
    let bigger = Bytes.make n '\000' in
    Bytes.blit t.obs_inq 0 bigger 0 (Bytes.length t.obs_inq);
    t.obs_inq <- bigger
  end;
  let order = Circuit.topo_order t.circ in
  if not (t.obs_rank_key == order) then begin
    let rank = Array.make n max_int in
    Array.iteri (fun r id -> rank.(id) <- r) order;
    t.obs_rank <- rank;
    t.obs_rank_key <- order
  end;
  let rank = t.obs_rank in
  let heap = t.obs_heap in
  let inq = t.obs_inq in
  let hn = ref 0 in
  let push id =
    if Bytes.unsafe_get inq id = '\000' then begin
      Bytes.unsafe_set inq id '\001';
      let i = ref !hn in
      incr hn;
      Array.unsafe_set heap !i id;
      let continue_ = ref true in
      while !continue_ && !i > 0 do
        let p = (!i - 1) / 2 in
        if rank.(Array.unsafe_get heap p) > rank.(Array.unsafe_get heap !i)
        then begin
          let tmp = Array.unsafe_get heap p in
          Array.unsafe_set heap p (Array.unsafe_get heap !i);
          Array.unsafe_set heap !i tmp;
          i := p
        end
        else continue_ := false
      done
    end
  in
  let pop () =
    let top = Array.unsafe_get heap 0 in
    decr hn;
    Array.unsafe_set heap 0 (Array.unsafe_get heap !hn);
    let i = ref 0 in
    let continue_ = ref true in
    while !continue_ do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let m = ref !i in
      if l < !hn
         && rank.(Array.unsafe_get heap l) < rank.(Array.unsafe_get heap !m)
      then m := l;
      if r < !hn
         && rank.(Array.unsafe_get heap r) < rank.(Array.unsafe_get heap !m)
      then m := r;
      if !m = !i then continue_ := false
      else begin
        let tmp = Array.unsafe_get heap !m in
        Array.unsafe_set heap !m (Array.unsafe_get heap !i);
        Array.unsafe_set heap !i tmp;
        i := !m
      end
    done;
    Bytes.unsafe_set inq top '\000';
    top
  in
  let changed = t.obs_changed in
  let save id =
    let row =
      let r = t.obs_saved.(id) in
      if Array.length r < t.w then begin
        let r = Array.make t.w 0L in
        t.obs_saved.(id) <- r;
        r
      end
      else r
    in
    Array.blit t.values.(id) 0 row 0 t.w
  in
  let differs id =
    let old = t.obs_saved.(id) and v = t.values.(id) in
    let rec go j =
      j < t.w && ((not (Int64.equal v.(j) old.(j))) || go (j + 1))
    in
    go 0
  in
  let touched = ref [] in
  let push_fanouts id =
    List.iter
      (fun p ->
        if Circuit.is_live circ p.Circuit.sink then push p.Circuit.sink)
      (Circuit.fanouts circ id)
  in
  save first;
  touched := first :: !touched;
  perturb ();
  if differs first then begin
    Bytes.unsafe_set changed first '\001';
    push_fanouts first
  end;
  while !hn > 0 do
    let id = pop () in
    save id;
    touched := id :: !touched;
    eval_node t id;
    if differs id then begin
      Bytes.unsafe_set changed id '\001';
      push_fanouts id
    end
  done;
  let diff = Array.make t.w 0L in
  List.iter
    (fun po ->
      let d = Circuit.po_driver circ po in
      if Bytes.unsafe_get changed d = '\001' then begin
        let old = t.obs_saved.(d) and v = t.values.(d) in
        for j = 0 to t.w - 1 do
          diff.(j) <- Int64.logor diff.(j) (Int64.logxor v.(j) old.(j))
        done
      end)
    (Circuit.pos circ);
  List.iter
    (fun id ->
      Array.blit t.obs_saved.(id) 0 t.values.(id) 0 t.w;
      Bytes.unsafe_set changed id '\000')
    !touched;
  diff

let stem_observability t s =
  ensure_capacity t;
  Obs.Metrics.incr m_obs_stem_calls;
  let flip () =
    let v = t.values.(s) in
    for j = 0 to t.w - 1 do
      v.(j) <- Int64.lognot v.(j)
    done
  in
  observability_core t ~first:s ~perturb:flip

let branch_observability t ~sink ~pin =
  ensure_capacity t;
  Obs.Metrics.incr m_obs_branch_calls;
  match Circuit.kind t.circ sink with
  | Circuit.Po _ -> Array.make t.w (-1L) (* an output branch is always observed *)
  | Circuit.Cell (c, fs) ->
    let recompute_with_flipped_pin () =
      let ins =
        Array.mapi
          (fun i f ->
            if i = pin then Array.map Int64.lognot t.values.(f)
            else t.values.(f))
          fs
      in
      eval_cell_words c.Cell.func ins t.values.(sink) t.w
    in
    observability_core t ~first:sink ~perturb:recompute_with_flipped_pin
  | Circuit.Pi | Circuit.Const _ ->
    invalid_arg "Engine.branch_observability: sink has no pins"

let with_perturbation t ~first ~perturb ~measure =
  ensure_capacity t;
  let tfo = Circuit.tfo t.circ first in
  let order = Circuit.topo_order t.circ in
  let affected =
    first
    :: (Array.to_list order |> List.filter (fun id -> tfo.(id) && id <> first))
  in
  let affected =
    affected
    @ List.filter (fun po -> tfo.(po)) (Circuit.pos t.circ)
  in
  let saved = List.map (fun id -> (id, Array.copy t.values.(id))) affected in
  perturb t;
  List.iter (fun id -> if id <> first then eval_node t id) affected;
  let result = measure t in
  List.iter (fun (id, v) -> Array.blit v 0 t.values.(id) 0 t.w) saved;
  result

let set_value t id v =
  ensure_capacity t;
  if Array.length v <> t.w then invalid_arg "Engine.set_value";
  Array.blit v 0 t.values.(id) 0 t.w

let apply_gate_words func ins =
  match ins with
  | [||] -> invalid_arg "Engine.apply_gate_words: no inputs"
  | _ ->
    let w = Array.length ins.(0) in
    let out = Array.make w 0L in
    eval_cell_words func ins out w;
    out

let recompute_with_pin_override t ~sink ~pin v =
  match Circuit.kind t.circ sink with
  | Circuit.Cell (c, fs) ->
    let ins =
      Array.mapi (fun i f -> if i = pin then v else t.values.(f)) fs
    in
    eval_cell_words c.Cell.func ins t.values.(sink) t.w
  | Circuit.Po _ ->
    if pin <> 0 then invalid_arg "Engine.recompute_with_pin_override";
    Array.blit v 0 t.values.(sink) 0 t.w
  | Circuit.Pi | Circuit.Const _ ->
    invalid_arg "Engine.recompute_with_pin_override: no pins"

let po_signatures t =
  List.map
    (fun po -> (Circuit.name t.circ po, Array.copy t.values.(po)))
    (Circuit.pos t.circ)

let equivalent_on_patterns ta tb =
  if ta.w <> tb.w then invalid_arg "Engine.equivalent_on_patterns";
  let sb = po_signatures tb in
  List.for_all
    (fun (name, va) ->
      match List.assoc_opt name sb with
      | None -> false
      | Some vb ->
        let rec go j = j >= ta.w || (Int64.equal va.(j) vb.(j) && go (j + 1)) in
        go 0)
    (po_signatures ta)

let eval_single circ pi_values =
  let memo = Hashtbl.create 64 in
  let pis = Circuit.pis circ in
  if List.length pis <> List.length pi_values then
    invalid_arg "Engine.eval_single: PI count mismatch";
  List.iter2 (fun pi v -> Hashtbl.add memo pi v) pis pi_values;
  let rec ev id =
    match Hashtbl.find_opt memo id with
    | Some v -> v
    | None ->
      let v =
        match Circuit.kind circ id with
        | Circuit.Pi -> invalid_arg "Engine.eval_single: unset PI"
        | Circuit.Const b -> b
        | Circuit.Po d -> ev d
        | Circuit.Cell (c, fs) -> Cell.eval c (Array.map ev fs)
      in
      Hashtbl.add memo id v;
      v
  in
  List.map (fun po -> (Circuit.name circ po, ev po)) (Circuit.pos circ)
