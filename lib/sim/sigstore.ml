module Circuit = Netlist.Circuit
module Bits = Logic.Bits

(* A class groups the live signals whose signatures are equal up to
   complement.  [canon] is the polarity-canonical signature (lowest bit
   of word 0 forced to 0); a member whose signature is the complement
   of [canon] carries [compl = true]. *)
type cls = {
  canon : int64 array;
  icanon : int array; (* canon packed as 62-bit limbs (Bits.pack_words) *)
  mutable members : int list; (* positions, descending while building *)
  mutable member_arr : int array; (* ascending, frozen after build *)
  mutable has_plus : bool; (* some member carries canon's polarity *)
  mutable has_minus : bool; (* some member is complemented wrt canon *)
}

type t = {
  base : Engine.t;
  cex : Engine.t option;
  mutable dirty : bool;
  mutable signals : Circuit.node_id array;
  mutable pos_of : int array; (* node id -> position in [signals], -1 *)
  mutable rows : int64 array array; (* per position: base words @ cex words *)
  mutable irows : int array array; (* rows packed as 62-bit limbs *)
  mutable compl_ : bool array; (* per position: complemented wrt canon *)
  mutable cls_of : int array; (* per position -> class index *)
  mutable classes : cls array;
  (* all class canons side by side ([icanon_stride] limbs each): the
     per-target class sweep reads them contiguously instead of chasing
     one small array per class *)
  mutable icanon_flat : int array;
  mutable icanon_stride : int;
  index : (int, int list ref) Hashtbl.t; (* signature hash -> class ids *)
}

let m_rebuilds = Obs.Metrics.counter "sig/store.rebuilds"
let m_refreshed = Obs.Metrics.counter "sig/store.refreshed_rows"

let base_words t = Engine.words t.base

let words t =
  base_words t + match t.cex with None -> 0 | Some e -> Engine.words e

let base_engine t = t.base
let cex_engine t = t.cex

let create ?cex ~base () =
  if
    match cex with
    | Some e -> Engine.circuit e != Engine.circuit base
    | None -> false
  then invalid_arg "Sigstore.create: engines simulate different circuits";
  {
    base;
    cex;
    dirty = true;
    signals = [||];
    pos_of = [||];
    rows = [||];
    irows = [||];
    compl_ = [||];
    cls_of = [||];
    classes = [||];
    icanon_flat = [||];
    icanon_stride = 0;
    index = Hashtbl.create 1024;
  }

let circuit t = Engine.circuit t.base

let is_signal_node circ id =
  Circuit.is_live circ id
  &&
  match Circuit.kind circ id with
  | Circuit.Pi | Circuit.Cell _ -> true
  | Circuit.Const _ | Circuit.Po _ -> false

(* signature row of a node: base engine words then cex engine words,
   copied out so later engine updates cannot mutate a frozen snapshot *)
let snapshot_row t id =
  let bw = base_words t in
  let row = Array.make (words t) 0L in
  Array.blit (Engine.value t.base id) 0 row 0 bw;
  (match t.cex with
  | None -> ()
  | Some e -> Array.blit (Engine.value e id) 0 row bw (Engine.words e));
  row

let hash_words (a : int64 array) =
  let h = ref 0x9E3779B97F4A7C15L in
  for j = 0 to Array.length a - 1 do
    h :=
      Int64.mul
        (Int64.logxor !h
           (Int64.add (Array.unsafe_get a j)
              (Int64.shift_left !h 6)))
        0xFF51AFD7ED558CCDL
  done;
  Int64.to_int !h land max_int

let complemented_canon (row : int64 array) =
  Int64.equal (Int64.logand row.(0) 1L) 1L

let canon_of row =
  if complemented_canon row then Array.map Int64.lognot row
  else Array.copy row

(* Find (or create) the class of [row]; returns (class id, complemented). *)
let intern t nclasses_ref row =
  let comp = complemented_canon row in
  let canon = if comp then Array.map Int64.lognot row else row in
  let h = hash_words canon in
  let bucket =
    match Hashtbl.find_opt t.index h with
    | Some b -> b
    | None ->
      let b = ref [] in
      Hashtbl.add t.index h b;
      b
  in
  let rec find = function
    | [] ->
      let id = !nclasses_ref in
      incr nclasses_ref;
      let c =
        { canon; icanon = Bits.pack_words canon; members = [];
          member_arr = [||]; has_plus = false; has_minus = false }
      in
      if id >= Array.length t.classes then begin
        let bigger =
          Array.make (max 64 (2 * Array.length t.classes)) c
        in
        Array.blit t.classes 0 bigger 0 id;
        t.classes <- bigger
      end;
      t.classes.(id) <- c;
      bucket := id :: !bucket;
      (id, comp)
    | id :: rest ->
      if Bits.equal_words t.classes.(id).canon canon then (id, comp)
      else find rest
  in
  find !bucket

(* Rebuild membership, rows and the class index from the engines.
   [refresh] decides, per node, whether its previous row snapshot can
   be reused (membership is recomputed either way — the circuit may
   have grown or swept nodes). *)
let resync t ~refresh =
  let circ = circuit t in
  let acc = ref [] in
  Circuit.iter_live circ (fun id ->
      if is_signal_node circ id then acc := id :: !acc);
  let signals = Array.of_list (List.rev !acc) in
  let n = Array.length signals in
  let old_pos_of = t.pos_of and old_rows = t.rows and old_irows = t.irows in
  let rows = Array.make n [||] in
  let irows = Array.make n [||] in
  let refreshed = ref 0 in
  Array.iteri
    (fun p id ->
      let old =
        if id < Array.length old_pos_of && old_pos_of.(id) >= 0 then
          Some (old_pos_of.(id))
        else None
      in
      match old with
      | Some op when not (refresh id) ->
        rows.(p) <- old_rows.(op);
        irows.(p) <- old_irows.(op)
      | _ ->
        rows.(p) <- snapshot_row t id;
        irows.(p) <- Bits.pack_words rows.(p);
        incr refreshed)
    signals;
  let pos_of = Array.make (Circuit.num_nodes circ) (-1) in
  Array.iteri (fun p id -> pos_of.(id) <- p) signals;
  Hashtbl.reset t.index;
  t.classes <- [||];
  let nclasses = ref 0 in
  let cls_of = Array.make n (-1) in
  let compl_ = Array.make n false in
  for p = 0 to n - 1 do
    let id, comp = intern t nclasses rows.(p) in
    cls_of.(p) <- id;
    compl_.(p) <- comp;
    let c = t.classes.(id) in
    if comp then c.has_minus <- true else c.has_plus <- true;
    c.members <- p :: c.members
  done;
  let classes = Array.sub t.classes 0 !nclasses in
  Array.iter
    (fun c -> c.member_arr <- Array.of_list (List.rev c.members))
    classes;
  let stride =
    if !nclasses = 0 then 0 else Array.length classes.(0).icanon
  in
  let flat = Array.make (!nclasses * stride) 0 in
  Array.iteri (fun c cl -> Array.blit cl.icanon 0 flat (c * stride) stride)
    classes;
  t.icanon_flat <- flat;
  t.icanon_stride <- stride;
  t.signals <- signals;
  t.pos_of <- pos_of;
  t.rows <- rows;
  t.irows <- irows;
  t.compl_ <- compl_;
  t.cls_of <- cls_of;
  t.classes <- classes;
  t.dirty <- false;
  Obs.Metrics.add m_refreshed !refreshed

let rebuild t =
  Obs.Metrics.incr m_rebuilds;
  resync t ~refresh:(fun _ -> true)

let invalidate t = t.dirty <- true
let sync t = if t.dirty then rebuild t

(* After an accepted substitution rooted at [src], only [src] and its
   transitive fanout can have changed words (both engines were already
   re-simulated by the caller); every other row snapshot is still
   valid and is carried over. *)
let update_after_edit t src =
  if t.dirty then rebuild t
  else begin
    let circ = circuit t in
    let tfo = Circuit.tfo circ src in
    resync t ~refresh:(fun id ->
        id = src
        || (id < Array.length tfo && tfo.(id))
        || id >= Array.length t.pos_of
        || t.pos_of.(id) < 0)
  end

let signals t = t.signals
let num_signals t = Array.length t.signals
let position t id = if id < Array.length t.pos_of then t.pos_of.(id) else -1
let row t p = t.rows.(p)
let irow t p = t.irows.(p)
let num_classes t = Array.length t.classes
let class_canon t c = t.classes.(c).canon
let class_icanon t c = t.classes.(c).icanon
let icanon_flat t = t.icanon_flat
let icanon_stride t = t.icanon_stride
let class_has_plus t c = t.classes.(c).has_plus
let class_has_minus t c = t.classes.(c).has_minus
let class_members t c = t.classes.(c).member_arr
let member_complemented t p = t.compl_.(p)
let class_of t p = t.cls_of.(p)

let lookup t sig_ =
  if Array.length sig_ <> words t then invalid_arg "Sigstore.lookup";
  let comp = complemented_canon sig_ in
  let canon = canon_of sig_ in
  let h = hash_words canon in
  match Hashtbl.find_opt t.index h with
  | None -> None
  | Some bucket ->
    let rec find = function
      | [] -> None
      | id :: rest ->
        if Bits.equal_words t.classes.(id).canon canon then Some (id, comp)
        else find rest
    in
    find !bucket

(* Care masks extended over the folded words: observability computed
   pattern-by-pattern on each engine independently (each pattern column
   is independent), concatenated in row order.  Mutates and restores
   engine state, so these must be called sequentially. *)
let stem_care t id =
  let base = Engine.stem_observability t.base id in
  match t.cex with
  | None -> base
  | Some e -> Array.append base (Engine.stem_observability e id)

let branch_care t ~sink ~pin =
  let base = Engine.branch_observability t.base ~sink ~pin in
  match t.cex with
  | None -> base
  | Some e -> Array.append base (Engine.branch_observability e ~sink ~pin)
