(** Deterministic splitmix64 generator; every stochastic component of
    the library threads one of these explicitly so runs are
    reproducible. *)

type t

val create : int64 -> t
val next : t -> int64
val next_float : t -> float
(** Uniform in [0, 1). *)

val bits_with_prob : t -> float -> int64
(** A 64-bit word whose bits are independently 1 with probability [p]. *)

val split : t -> t
(** A statistically independent child generator. *)

val derive : int64 -> string -> int64
(** [derive base label] is a domain-separated child seed: a splitmix
    hash of [base] and the stream label.  Every subsystem that needs
    its own pattern stream (optimizer, counterexample screen, guard
    re-verification, benchmarks, fuzzing) derives it this way from one
    user-visible seed, so streams are uncorrelated but reproducible —
    no ad-hoc [Int64.add seed 77L] offsets.  Distinct labels give
    distinct seeds; the same [(base, label)] pair always gives the
    same seed. *)

val stream : int64 -> string -> t
(** [create (derive base label)]. *)
