(** Signature store: per-node simulation signatures with a hash index
    of complement-canonical compatibility classes.

    The store snapshots, for every live signal node, a row of
    signature words: the base engine's Monte-Carlo pattern words
    followed by the counterexample engine's words — so every
    counterexample the exact checker ever produced is folded into the
    signature a candidate must match on, and a refuted pair can never
    re-enter the funnel (its distinguishing pattern now splits the
    signatures).  Rows are grouped into {e classes} of signals whose
    signatures are equal up to complement, via a hash index keyed on
    the polarity-canonical signature: class lookup is O(1) amortized,
    and a candidate scan that decides per class instead of per signal
    skips every duplicate/inverter-image signal for free.

    {b Maintenance.} The store is a snapshot: engine updates do not
    flow in automatically.  After an accepted substitution (both
    engines already re-simulated) call {!update_after_edit} — only the
    rows of the edit's transitive fanout are re-copied and the class
    index is re-interned.  After a counterexample injection (which
    rewrites pattern columns globally) call {!invalidate}; the next
    {!sync} rebuilds every row.  {!sync} is cheap when clean.

    {b Determinism.} All orders are structural: signals ascend by node
    id, class members ascend by position, and class identity is a pure
    function of signature content — so any two stores built over equal
    engine states are observably identical, independent of job count. *)

type t

val create : ?cex:Engine.t -> base:Engine.t -> unit -> t
(** A new (dirty) store over the given engines; call {!sync} before
    reading.  Both engines must simulate the same circuit.
    @raise Invalid_argument otherwise. *)

val base_engine : t -> Engine.t
val cex_engine : t -> Engine.t option
val circuit : t -> Netlist.Circuit.t

val words : t -> int
(** Row width: base words + counterexample words. *)

val rebuild : t -> unit
(** Re-snapshot every row and re-intern all classes. *)

val invalidate : t -> unit
(** Mark stale (e.g. after counterexample injection); the next {!sync}
    rebuilds. *)

val sync : t -> unit
(** Rebuild if stale; no-op otherwise. *)

val update_after_edit : t -> Netlist.Circuit.node_id -> unit
(** Incremental maintenance after an accepted substitution rooted at
    the given node: membership is recomputed, but only rows in the
    node's transitive fanout (plus any new nodes) are re-snapshot. *)

(** {2 Read side} — valid only between maintenance calls. *)

val signals : t -> Netlist.Circuit.node_id array
(** Live signal nodes (PIs and cells), ascending by id.  Positions
    into this array index {!row}, {!class_of}, {!member_complemented}. *)

val num_signals : t -> int

val position : t -> Netlist.Circuit.node_id -> int
(** Position of a node in {!signals}, or -1. *)

val row : t -> int -> int64 array
(** Signature row by position (shared array; do not mutate). *)

val irow : t -> int -> int array
(** {!row} packed into 62-bit limbs ({!Logic.Bits.pack_words}):
    unboxed-int mirror for the scan hot loops. *)

val num_classes : t -> int

val class_canon : t -> int -> int64 array
(** Polarity-canonical signature of a class (bit 0 of word 0 is 0). *)

val class_icanon : t -> int -> int array
(** {!class_canon} packed into 62-bit limbs. *)

val icanon_flat : t -> int array
(** Every class's packed canon side by side, {!icanon_stride} limbs
    per class: class [c]'s limbs live at [c * stride .. ] — contiguous
    reads for the per-target class sweeps. *)

val icanon_stride : t -> int

val class_has_plus : t -> int -> bool
(** Some member carries the canon's polarity (membership only — the
    caller still filters member eligibility). *)

val class_has_minus : t -> int -> bool
(** Some member is complemented with respect to the canon. *)

val class_members : t -> int -> int array
(** Member positions, ascending. *)

val member_complemented : t -> int -> bool
(** Whether the signal at this position is the complement of its
    class canon. *)

val class_of : t -> int -> int

val lookup : t -> int64 array -> (int * bool) option
(** O(1) amortized compatibility-class lookup of an arbitrary
    signature: [(class id, complemented wrt canon)] if some live
    signal carries this signature up to complement.
    @raise Invalid_argument on a width mismatch. *)

(** {2 Care masks} — computed on the engines (perturb-and-restore), so
    call sequentially, never from a pool task. *)

val stem_care : t -> Netlist.Circuit.node_id -> int64 array
(** Stem observability over the folded words: base-engine mask followed
    by counterexample-engine mask. *)

val branch_care : t -> sink:Netlist.Circuit.node_id -> pin:int -> int64 array
