(** The pluggable acceptance cost model, as a command-line-facing
    wrapper around {!Powder.Optimizer.cost_model}.

    [zero-delay] is the paper's model (rank by raw switched-capacitance
    gain); [glitch] weights each candidate's PG_A / PG_B terms by the
    involved nodes' hazard multipliers ({!Power.Glitch.node_factors}),
    steering the loop toward nodes whose activity the zero-delay model
    under-counts.  Because the model changes which substitutions are
    accepted, it is part of a run's manifest, never a tuning detail. *)

type t = Powder.Optimizer.cost_model =
  | Zero_delay
  | Glitch of { pairs : int }

val default_glitch_pairs : int
(** Vector pairs sampled per hazard-factor estimate (64). *)

val of_string : string -> (t, string) result
(** Accepts ["zero-delay"], ["glitch"] (default pair budget) and
    ["glitch:N"] (explicit budget, [N >= 1]). *)

val to_string : t -> string
(** Round-trips through {!of_string}; ["glitch"] when the pair budget
    is the default, ["glitch:N"] otherwise. *)

val name : t -> string
(** ["zero-delay"] / ["glitch"] — the report-field form, without the
    pair budget ({!Powder.Optimizer.cost_model_name}). *)

val apply : t -> Powder.Optimizer.config -> Powder.Optimizer.config
(** Set the model on an optimizer config. *)
