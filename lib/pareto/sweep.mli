(** The frontier sweep driver: run the optimizer once per delay
    constraint over fresh copies of the same mapped netlist and collect
    the resulting (power, delay) points into a dominance-pruned
    {!Frontier}.

    Determinism contract (same as the optimizer's): for the same
    inputs, a sweep at any [jobs] produces byte-identical points,
    frontier and JSON as [jobs = 1] — every per-point optimizer run is
    forced to [jobs = 1] and points fan out over a {!Par.Pool} whose
    speculate/commit protocol merges observability in constraint-list
    order, and the embedded per-point reports are stripped of their
    timing fields at serialization.  Only the sweep's own top-level
    [jobs] / [cpu_seconds] fields are volatile (the same fields
    [json_check --compare-reports] already ignores on optimizer
    reports). *)

type spec =
  | Scale of float
      (** constraint = scale x the mapped netlist's initial critical
          path; [Scale 1.0] is the paper's keep-initial-delay regime *)
  | Unbounded  (** no delay constraint — the pure power endpoint *)

val default_specs : spec list
(** [1.00x, 1.10x, 1.25x, unbounded]. *)

val spec_of_string : string -> (spec, string) result
(** ["1.1"] or ["1.1x"] parse as [Scale 1.1] (must be [>= 1.0]);
    ["unbounded"] / ["inf"] / ["none"] as [Unbounded]. *)

val spec_to_string : spec -> string
(** ["1.10x"] / ["unbounded"]; round-trips through
    {!spec_of_string} and labels the sweep's points. *)

type report = {
  name : string;  (** circuit name, echoed into the JSON *)
  cost : Cost.t;
  points : Frontier.point list;  (** one per spec, constraint-list order *)
  frontier : Frontier.point list;  (** {!Frontier.prune} of [points] *)
  dominated : int;
  reports : (string * Powder.Optimizer.report) list;
      (** label -> the point's full optimizer report *)
  jobs : int;
  cpu_seconds : float;
}

val run :
  ?config:Powder.Optimizer.config ->
  ?specs:spec list ->
  ?jobs:int ->
  ?checkpoint_dir:string ->
  name:string ->
  (unit -> Netlist.Circuit.t) ->
  report
(** Run one optimizer per spec on a fresh circuit from the builder.
    [config] seeds every point's optimizer config; its [delay],
    [checkpoint_file] and [jobs] fields are overridden per point (the
    cost model, seed, budgets etc. are shared).  [jobs] (default 1)
    fans the points out over a {!Par.Pool}.

    [checkpoint_dir] makes each point crash-resumable: point [s]
    checkpoints to [dir/point-<label>.json] (created eagerly;
    [checkpoint_every] defaults to 1 if the config left it at 0), and
    an existing loadable checkpoint there is resumed — so re-running an
    interrupted sweep redoes only the unfinished points and produces
    the same report as an uninterrupted run.  A corrupt or
    version-mismatched checkpoint is ignored and the point restarts.

    Telemetry: the sweep runs inside a [pareto.sweep] span with one
    [pareto.point] child span per constraint; counters
    [pareto.points] / [pareto.dominated] and gauges
    [pareto.frontier_size] / [pareto.glitch_delta] (total timed-power
    reduction over all points, 0 under zero-delay cost) land in the
    {!Obs.Metrics} registry.

    @raise Invalid_argument on an empty [specs] list. *)

val to_json : report -> Obs.Json.t
(** Stable machine-readable form: [circuit], [cost_model], [cost],
    [jobs], [constraints] (the spec labels), [points], [frontier],
    [dominated], [reports] (per-point optimizer reports {e minus} their
    volatile [cpu_seconds] / [phase_seconds] / [jobs] fields) and
    [cpu_seconds].  Byte-identical across [jobs] values except the
    top-level [jobs] / [cpu_seconds] fields. *)

val pp : Format.formatter -> report -> unit
