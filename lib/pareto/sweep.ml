module Optimizer = Powder.Optimizer
module Checkpoint = Powder.Checkpoint

type spec = Scale of float | Unbounded

let default_specs = [ Scale 1.0; Scale 1.1; Scale 1.25; Unbounded ]

let spec_to_string = function
  | Scale s -> Printf.sprintf "%.2fx" s
  | Unbounded -> "unbounded"

let spec_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "unbounded" | "inf" | "none" -> Ok Unbounded
  | s -> (
    let s =
      if String.length s > 0 && s.[String.length s - 1] = 'x' then
        String.sub s 0 (String.length s - 1)
      else s
    in
    match float_of_string_opt s with
    | Some f when f >= 1.0 && Float.is_finite f -> Ok (Scale f)
    | Some _ -> Error (Printf.sprintf "delay scale %s must be >= 1.0" s)
    | None ->
      Error
        (Printf.sprintf "bad constraint %S (expected a scale like 1.25 or unbounded)"
           s))

type report = {
  name : string;
  cost : Cost.t;
  points : Frontier.point list;
  frontier : Frontier.point list;
  dominated : int;
  reports : (string * Optimizer.report) list;
  jobs : int;
  cpu_seconds : float;
}

let m_points = Obs.Metrics.counter "pareto.points"
let m_dominated = Obs.Metrics.counter "pareto.dominated"
let g_frontier = Obs.Metrics.gauge "pareto.frontier_size"
let g_glitch_delta = Obs.Metrics.gauge "pareto.glitch_delta"

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    (try Sys.mkdir dir 0o755 with Sys_error _ when Sys.file_exists dir -> ())
  end

let point_of spec (r : Optimizer.report) =
  {
    Frontier.label = spec_to_string spec;
    delay_constraint = r.Optimizer.delay_constraint;
    power = r.Optimizer.final_power;
    glitch_power = r.Optimizer.final_glitch_power;
    delay = r.Optimizer.final_delay;
    area = r.Optimizer.final_area;
    substitutions = r.Optimizer.substitutions;
  }

let run ?(config = Optimizer.default_config) ?(specs = default_specs) ?(jobs = 1)
    ?checkpoint_dir ~name build =
  if specs = [] then invalid_arg "Pareto.Sweep.run: empty constraint list";
  Option.iter mkdir_p checkpoint_dir;
  let t0 = Obs.Clock.now () in
  let run_point spec =
    let label = spec_to_string spec in
    Obs.Trace.with_span
      ~fields:[ ("point", Obs.Trace.String label) ]
      "pareto.point"
    @@ fun () ->
    let circ = build () in
    let delay =
      match spec with
      | Scale s -> Optimizer.Ratio (s -. 1.0)
      | Unbounded -> Optimizer.Unconstrained
    in
    let ck_file =
      Option.map
        (fun dir -> Filename.concat dir ("point-" ^ label ^ ".json"))
        checkpoint_dir
    in
    let resume =
      match ck_file with
      | Some f when Sys.file_exists f -> (
        match Checkpoint.load f with Ok ck -> Some ck | Error _ -> None)
      | _ -> None
    in
    let cfg =
      {
        config with
        Optimizer.delay;
        jobs = 1;
        checkpoint_file = ck_file;
        checkpoint_every =
          (match ck_file with
          | Some _ when config.Optimizer.checkpoint_every <= 0 -> 1
          | _ -> config.Optimizer.checkpoint_every);
      }
    in
    let r = Optimizer.optimize ~config:cfg ?resume circ in
    Obs.Metrics.incr m_points;
    (label, r, point_of spec r)
  in
  let results =
    Obs.Trace.with_span "pareto.sweep" @@ fun () ->
    let arr = Array.of_list specs in
    let jobs = max 1 jobs in
    if jobs = 1 || Par.Pool.in_task () then Array.map run_point arr
    else
      Par.Pool.with_pool ~jobs (fun pool ->
          Par.Pool.map pool ~f:run_point arr |> Array.map Option.get)
  in
  let results = Array.to_list results in
  let points = List.map (fun (_, _, p) -> p) results in
  let reports = List.map (fun (l, r, _) -> (l, r)) results in
  let frontier, dominated = Frontier.prune points in
  Obs.Metrics.add m_dominated dominated;
  Obs.Metrics.set_gauge g_frontier (float_of_int (List.length frontier));
  let glitch_delta =
    List.fold_left
      (fun acc (_, (r : Optimizer.report)) ->
        match (r.Optimizer.initial_glitch_power, r.Optimizer.final_glitch_power)
        with
        | Some gi, Some gf -> acc +. (gi -. gf)
        | _ -> acc)
      0.0 reports
  in
  Obs.Metrics.set_gauge g_glitch_delta glitch_delta;
  {
    name;
    cost = config.Optimizer.cost;
    points;
    frontier;
    dominated;
    reports;
    jobs;
    cpu_seconds = Obs.Clock.now () -. t0;
  }

(* The embedded per-point reports carry the optimizer's volatile timing
   fields; dropping them here is what makes the sweep JSON (minus its
   own top-level jobs/cpu_seconds) byte-identical across job counts. *)
let volatile_fields = [ "cpu_seconds"; "phase_seconds"; "jobs" ]

let strip_report_json = function
  | Obs.Json.Obj fields ->
    Obs.Json.Obj
      (List.filter (fun (k, _) -> not (List.mem k volatile_fields)) fields)
  | j -> j

let to_json r =
  let open Obs.Json in
  Obj
    [
      ("circuit", String r.name);
      ("cost_model", String (Cost.name r.cost));
      ("cost", String (Cost.to_string r.cost));
      ("jobs", Int r.jobs);
      ( "constraints",
        List (List.map (fun (l, _) -> String l) r.reports) );
      ("points", List (List.map Frontier.to_json r.points));
      ("frontier", List (List.map Frontier.to_json r.frontier));
      ("dominated", Int r.dominated);
      ( "reports",
        Obj
          (List.map
             (fun (l, rep) -> (l, strip_report_json (Optimizer.report_to_json rep)))
             r.reports) );
      ("cpu_seconds", Float r.cpu_seconds);
    ]

let pp fmt r =
  Format.fprintf fmt "@[<v>pareto sweep: %s (%s cost, %d point%s, %d dominated)@,"
    r.name (Cost.to_string r.cost) (List.length r.points)
    (if List.length r.points = 1 then "" else "s")
    r.dominated;
  Format.fprintf fmt "frontier:@,%a@]" Frontier.pp r.frontier
