type point = {
  label : string;
  delay_constraint : float option;
  power : float;
  glitch_power : float option;
  delay : float;
  area : float;
  substitutions : int;
}

let dominates a b =
  a.power <= b.power && a.delay <= b.delay
  && (a.power < b.power || a.delay < b.delay)

(* Stable total order: delay, then power, then label — so pruning (and
   therefore frontier JSON) is independent of the sweep's run order. *)
let compare_points a b =
  match Float.compare a.delay b.delay with
  | 0 -> (
    match Float.compare a.power b.power with
    | 0 -> String.compare a.label b.label
    | c -> c)
  | c -> c

let prune points =
  let sorted = List.stable_sort compare_points points in
  let frontier =
    List.fold_left
      (fun kept p ->
        match kept with
        | best :: _ when p.power >= best.power -> kept
        | _ -> p :: kept)
      [] sorted
  in
  let frontier = List.rev frontier in
  (frontier, List.length points - List.length frontier)

let to_json p =
  let open Obs.Json in
  Obj
    [
      ("label", String p.label);
      ( "delay_constraint",
        match p.delay_constraint with None -> Null | Some d -> Float d );
      ("power", Float p.power);
      ( "glitch_power",
        match p.glitch_power with None -> Null | Some g -> Float g );
      ("delay", Float p.delay);
      ("area", Float p.area);
      ("substitutions", Int p.substitutions);
    ]

let of_json j =
  let module J = Obs.Json in
  let ( let* ) = Result.bind in
  let field name = Option.to_result ~none:("missing " ^ name) (J.member name j) in
  let num name =
    let* v = field name in
    Option.to_result ~none:("bad " ^ name) (J.get_float v)
  in
  let opt_num name =
    match J.member name j with
    | None -> Error ("missing " ^ name)
    | Some J.Null -> Ok None
    | Some v ->
      let* f = Option.to_result ~none:("bad " ^ name) (J.get_float v) in
      Ok (Some f)
  in
  let* label = field "label" in
  let* label = Option.to_result ~none:"bad label" (J.get_string label) in
  let* delay_constraint = opt_num "delay_constraint" in
  let* power = num "power" in
  let* glitch_power = opt_num "glitch_power" in
  let* delay = num "delay" in
  let* area = num "area" in
  let* subst = field "substitutions" in
  let* substitutions = Option.to_result ~none:"bad substitutions" (J.get_int subst) in
  Ok { label; delay_constraint; power; glitch_power; delay; area; substitutions }

let pp fmt points =
  Format.fprintf fmt "@[<v>%-12s | %10s | %8s | %10s | %9s | %6s@," "point"
    "constraint" "delay" "power" "area" "substs";
  List.iter
    (fun p ->
      let c =
        match p.delay_constraint with
        | None -> "-"
        | Some d -> Printf.sprintf "%.3f" d
      in
      Format.fprintf fmt "%-12s | %10s | %8.3f | %10.1f | %9.1f | %6d@,"
        p.label c p.delay p.power p.area p.substitutions)
    points;
  Format.fprintf fmt "@]"
