(** Dominance-pruned power/delay frontiers.

    A sweep over delay constraints yields one (power, delay) point per
    constraint; the frontier is the subset no other point dominates.
    Point [a] dominates [b] iff [a.power <= b.power] and
    [a.delay <= b.delay] with at least one strict — the usual Pareto
    order on (minimize power, minimize delay).  Area and substitution
    counts ride along as annotations and play no part in dominance. *)

type point = {
  label : string;  (** the constraint spec that produced the point *)
  delay_constraint : float option;  (** [None] for the unbounded point *)
  power : float;  (** final zero-delay switched capacitance *)
  glitch_power : float option;
      (** final timed switched capacitance; present iff the sweep ran
          under the glitch cost model *)
  delay : float;  (** final critical-path delay *)
  area : float;
  substitutions : int;
}

val dominates : point -> point -> bool
(** [dominates a b]: [a] is at least as good on both axes and strictly
    better on one. *)

val prune : point list -> point list * int
(** [(frontier, dominated)]: the non-dominated subset sorted by delay
    ascending (therefore power strictly descending), and the number of
    input points that were dropped.  Duplicate (power, delay) pairs
    collapse to the first in the stable (delay, power, label) order, and
    count as dominated. *)

val to_json : point -> Obs.Json.t
(** Stable field order: [label], [delay_constraint], [power],
    [glitch_power], [delay], [area], [substitutions]. *)

val of_json : Obs.Json.t -> (point, string) result

val pp : Format.formatter -> point list -> unit
(** One row per point: label, constraint, delay, power, area, substs. *)
