type t = Powder.Optimizer.cost_model =
  | Zero_delay
  | Glitch of { pairs : int }

let default_glitch_pairs = 64

let of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "zero-delay" | "zero_delay" | "zero" -> Ok Zero_delay
  | "glitch" -> Ok (Glitch { pairs = default_glitch_pairs })
  | s when String.length s > 7 && String.sub s 0 7 = "glitch:" -> (
    let rest = String.sub s 7 (String.length s - 7) in
    match int_of_string_opt rest with
    | Some pairs when pairs >= 1 -> Ok (Glitch { pairs })
    | _ -> Error (Printf.sprintf "bad glitch pair budget %S" rest))
  | _ ->
    Error
      (Printf.sprintf "unknown cost model %S (expected zero-delay|glitch[:N])" s)

let to_string = function
  | Zero_delay -> "zero-delay"
  | Glitch { pairs } when pairs = default_glitch_pairs -> "glitch"
  | Glitch { pairs } -> Printf.sprintf "glitch:%d" pairs

let name = Powder.Optimizer.cost_model_name

let apply t config = { config with Powder.Optimizer.cost = t }
