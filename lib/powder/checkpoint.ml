module J = Obs.Json

(* Bump when the schema changes; load refuses other versions. *)
let version = 4

let magic = "powder-checkpoint"

type t = {
  round : int;
  status : string;
      (** ["running"] while the loop was still live at save time;
          otherwise the final [stopped_by] label — resume returns the
          finished report instead of re-running an empty round *)
  substitutions : int;
  seed : int64;
  blif : string;
  cex : (string * bool) list list;  (** oldest first, for in-order replay *)
  cex_cursor : int;
  candidates_generated : int;
  checks_run : int;
  rejected_by_delay : int;
  rejected_by_atpg : int;
  rejected_by_giveup : int;
  rejected_by_timeout : int;
  rejected_by_cex : int;
  sig_hits : int;
  sig_filtered : int;
  sig_resim_nodes : int;
  is3_candidates : int;
  rolled_back : int;
  verified_applies : int;
  window_checks : int;
  window_proved : int;
  window_escalated : int;
  giveup_breakdown : (string * int) list;
  by_class : (string * (int * float * float)) list;
      (** class name -> (accepted, power_gain, area_gain) *)
  initial_power : float;
  initial_area : float;
  initial_delay : float;
  initial_glitch_power : float option;
      (** measured at the original run start under [--cost glitch];
          [None] under the zero-delay cost model *)
  degradation_level : int;
}

let to_json c =
  J.Obj
    [
      ("magic", J.String magic);
      ("version", J.Int version);
      ("round", J.Int c.round);
      ("status", J.String c.status);
      ("substitutions", J.Int c.substitutions);
      ("seed", J.String (Int64.to_string c.seed));
      ("blif", J.String c.blif);
      ( "cex",
        J.List
          (List.map
             (fun assignment ->
               J.Obj
                 (List.map (fun (name, v) -> (name, J.Bool v)) assignment))
             c.cex) );
      ("cex_cursor", J.Int c.cex_cursor);
      ("candidates_generated", J.Int c.candidates_generated);
      ("checks_run", J.Int c.checks_run);
      ("rejected_by_delay", J.Int c.rejected_by_delay);
      ("rejected_by_atpg", J.Int c.rejected_by_atpg);
      ("rejected_by_giveup", J.Int c.rejected_by_giveup);
      ("rejected_by_timeout", J.Int c.rejected_by_timeout);
      ("rejected_by_cex", J.Int c.rejected_by_cex);
      ("sig_hits", J.Int c.sig_hits);
      ("sig_filtered", J.Int c.sig_filtered);
      ("sig_resim_nodes", J.Int c.sig_resim_nodes);
      ("is3_candidates", J.Int c.is3_candidates);
      ("rolled_back", J.Int c.rolled_back);
      ("verified_applies", J.Int c.verified_applies);
      ("window_checks", J.Int c.window_checks);
      ("window_proved", J.Int c.window_proved);
      ("window_escalated", J.Int c.window_escalated);
      ( "giveup_breakdown",
        J.Obj (List.map (fun (k, n) -> (k, J.Int n)) c.giveup_breakdown) );
      ( "by_class",
        J.Obj
          (List.map
             (fun (k, (acc, pg, ag)) ->
               ( k,
                 J.Obj
                   [
                     ("accepted", J.Int acc);
                     ("power_gain", J.Float pg);
                     ("area_gain", J.Float ag);
                   ] ))
             c.by_class) );
      ("initial_power", J.Float c.initial_power);
      ("initial_area", J.Float c.initial_area);
      ("initial_delay", J.Float c.initial_delay);
      ( "initial_glitch_power",
        match c.initial_glitch_power with None -> J.Null | Some g -> J.Float g
      );
      ("degradation_level", J.Int c.degradation_level);
    ]

type error =
  | Io of string
  | Corrupt of string
  | Bad_version of { found : int; expected : int }

let error_to_string = function
  | Io m -> "checkpoint: " ^ m
  | Corrupt m -> "checkpoint: corrupt: " ^ m
  | Bad_version { found; expected } ->
    Printf.sprintf "checkpoint: version %d, expected %d" found expected

(* Crash-atomic and durable: the payload is written to a sibling tmp
   file, fsync'd, then renamed over the target; finally the directory
   entry itself is fsync'd.  A kill or power cut at any instant leaves
   either the complete old checkpoint or the complete new one — and
   [load] rejects anything else with a typed error. *)
let save file c =
  let payload = J.to_string (to_json c) ^ "\n" in
  let tmp = file ^ ".tmp" in
  let fd = Unix.openfile tmp [ O_WRONLY; O_CREAT; O_TRUNC; O_CLOEXEC ] 0o644 in
  let closed = ref false in
  Fun.protect
    ~finally:(fun () -> if not !closed then Unix.close fd)
    (fun () ->
      let n = String.length payload in
      let off = ref 0 in
      while !off < n do
        off := !off + Unix.write_substring fd payload !off (n - !off)
      done;
      Unix.fsync fd;
      Unix.close fd;
      closed := true);
  Sys.rename tmp file;
  match Unix.openfile (Filename.dirname file) [ O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | dfd ->
    (* directory fsync is best-effort: not every filesystem allows it *)
    (try Unix.fsync dfd with Unix.Unix_error _ -> ());
    (try Unix.close dfd with Unix.Unix_error _ -> ())

let ( let* ) = Result.bind

let field name conv j =
  match Option.bind (J.member name j) conv with
  | Some v -> Ok v
  | None ->
    Error (Corrupt (Printf.sprintf "missing or invalid field %S" name))

let of_json j =
  let* m = field "magic" J.get_string j in
  if m <> magic then Error (Corrupt "bad magic")
  else
    let* v = field "version" J.get_int j in
    if v <> version then Error (Bad_version { found = v; expected = version })
    else
      let* round = field "round" J.get_int j in
      let* status = field "status" J.get_string j in
      let* substitutions = field "substitutions" J.get_int j in
      let* seed_s = field "seed" J.get_string j in
      let* seed =
        match Int64.of_string_opt seed_s with
        | Some s -> Ok s
        | None -> Error (Corrupt "bad seed")
      in
      let* blif = field "blif" J.get_string j in
      let* cex_json = field "cex" J.get_list j in
      let* cex =
        List.fold_left
          (fun acc entry ->
            let* acc = acc in
            match entry with
            | J.Obj fields ->
              let* assignment =
                List.fold_left
                  (fun acc (name, v) ->
                    let* acc = acc in
                    match J.get_bool v with
                    | Some b -> Ok ((name, b) :: acc)
                    | None -> Error (Corrupt "non-bool cex value"))
                  (Ok []) fields
              in
              Ok (List.rev assignment :: acc)
            | _ -> Error (Corrupt "cex entry is not an object"))
          (Ok []) cex_json
      in
      let cex = List.rev cex in
      let* cex_cursor = field "cex_cursor" J.get_int j in
      let* candidates_generated = field "candidates_generated" J.get_int j in
      let* checks_run = field "checks_run" J.get_int j in
      let* rejected_by_delay = field "rejected_by_delay" J.get_int j in
      let* rejected_by_atpg = field "rejected_by_atpg" J.get_int j in
      let* rejected_by_giveup = field "rejected_by_giveup" J.get_int j in
      let* rejected_by_timeout = field "rejected_by_timeout" J.get_int j in
      let* rejected_by_cex = field "rejected_by_cex" J.get_int j in
      let* sig_hits = field "sig_hits" J.get_int j in
      let* sig_filtered = field "sig_filtered" J.get_int j in
      let* sig_resim_nodes = field "sig_resim_nodes" J.get_int j in
      let* is3_candidates = field "is3_candidates" J.get_int j in
      let* rolled_back = field "rolled_back" J.get_int j in
      let* verified_applies = field "verified_applies" J.get_int j in
      let* window_checks = field "window_checks" J.get_int j in
      let* window_proved = field "window_proved" J.get_int j in
      let* window_escalated = field "window_escalated" J.get_int j in
      let* giveup_breakdown =
        match J.member "giveup_breakdown" j with
        | Some (J.Obj fields) ->
          List.fold_left
            (fun acc (k, v) ->
              let* acc = acc in
              match J.get_int v with
              | Some n -> Ok ((k, n) :: acc)
              | None -> Error (Corrupt "bad giveup_breakdown"))
            (Ok []) fields
          |> Result.map List.rev
        | _ -> Error (Corrupt "missing giveup_breakdown")
      in
      let* by_class =
        match J.member "by_class" j with
        | Some (J.Obj fields) ->
          List.fold_left
            (fun acc (k, v) ->
              let* acc = acc in
              let* accepted = field "accepted" J.get_int v in
              let* pg = field "power_gain" J.get_float v in
              let* ag = field "area_gain" J.get_float v in
              Ok ((k, (accepted, pg, ag)) :: acc))
            (Ok []) fields
          |> Result.map List.rev
        | _ -> Error (Corrupt "missing by_class")
      in
      let* initial_power = field "initial_power" J.get_float j in
      let* initial_area = field "initial_area" J.get_float j in
      let* initial_delay = field "initial_delay" J.get_float j in
      let* initial_glitch_power =
        match J.member "initial_glitch_power" j with
        | Some J.Null -> Ok None
        | Some v -> (
          match J.get_float v with
          | Some g -> Ok (Some g)
          | None -> Error (Corrupt "bad initial_glitch_power"))
        | None -> Error (Corrupt "missing initial_glitch_power")
      in
      let* degradation_level = field "degradation_level" J.get_int j in
      Ok
        {
          round;
          status;
          substitutions;
          seed;
          blif;
          cex;
          cex_cursor;
          candidates_generated;
          checks_run;
          rejected_by_delay;
          rejected_by_atpg;
          rejected_by_giveup;
          rejected_by_timeout;
          rejected_by_cex;
          sig_hits;
          sig_filtered;
          sig_resim_nodes;
          is3_candidates;
          rolled_back;
          verified_applies;
          window_checks;
          window_proved;
          window_escalated;
          giveup_breakdown;
          by_class;
          initial_power;
          initial_area;
          initial_delay;
          initial_glitch_power;
          degradation_level;
        }

let load file =
  match
    let ic = open_in_bin file in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error e -> Error (Io e)
  | exception End_of_file -> Error (Corrupt "truncated file")
  | "" -> Error (Corrupt "empty file")
  | text -> (
    match J.of_string (String.trim text) with
    | Error e -> Error (Corrupt ("invalid JSON: " ^ e))
    | Ok j -> of_json j)
