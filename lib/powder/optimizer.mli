(** The POWDER optimization loop (Figure 5 of the paper).

    Repeatedly: generate candidate substitutions by signature matching,
    pre-select by [PG_A + PG_B], re-estimate [PG_C] for the pre-selected
    few, and try them best-first — discarding any that would violate the
    delay constraint (Section 3.4) or that the exact ATPG/equivalence
    check cannot prove permissible.  Every accepted substitution is
    applied in place, the transition probabilities of the affected
    transitive fanout are updated incrementally, and timing is
    re-analyzed.  The inner loop performs up to [repeat] substitutions
    per candidate-set generation. *)

type delay_mode =
  | Unconstrained
  | Keep_initial                (** constraint = the initial circuit delay *)
  | Ratio of float              (** constraint = initial delay * (1 + r) *)
  | Absolute of float
      (** an absolute required time; if tighter than the initial delay,
          every substitution that touches negative-slack paths is
          rejected — POWDER reduces power under a constraint, it does
          not repair timing *)

type cost_model =
  | Zero_delay
      (** the paper's model: rank candidates by raw zero-delay
          switched-capacitance gain *)
  | Glitch of { pairs : int }
      (** glitch-aware ranking: per-node hazard multipliers from
          {!Power.Glitch.node_factors} (sampled over [pairs] random
          vector pairs on a derived seed stream) weight the PG_A / PG_B
          terms, steering the loop toward nodes whose activity the
          zero-delay model under-counts.  Factors are resampled at
          every canonicalization barrier; nodes created between
          barriers score with factor 1.0.  The report additionally
          carries timed power measured before and after the run. *)

val cost_model_name : cost_model -> string
(** ["zero-delay"] / ["glitch"] — the [cost_model] field of reports and
    the values accepted by [powder_cli --cost]. *)

type config = {
  words : int;                  (** simulation words; patterns = 64 * words *)
  seed : int64;
  input_prob : string -> float; (** PI signal probabilities, by name *)
  repeat : int;                 (** inner-loop batch size (Figure 5) *)
  preselect : int;              (** candidates re-estimated with PG_C per pick *)
  delay : delay_mode;
  classes : Subst.klass list;
  per_target : int;
  pool_limit : int;
  backtrack_limit : int;        (** PODEM/SAT abort threshold *)
  exhaustive_limit : int;       (** max PI count for exhaustive equivalence *)
  check_engine : [ `Sat | `Podem | `Bdd ];
      (** exact-check engine above the exhaustive cutoff *)
  max_substitutions : int;
  max_rounds : int;             (** outer-loop safety bound *)
  check_seconds : float option;
      (** wall-clock budget per exact permissibility check *)
  round_seconds : float option;
      (** wall-clock budget per outer-loop round; expiry escalates the
          degradation ladder *)
  run_seconds : float option;
      (** wall-clock budget for the whole run; expiry stops cleanly *)
  verify_applies : bool;
      (** wrap every apply in a {!Guard} transaction (journal +
          independent re-simulation + [Circuit.validate]) *)
  verify_words : int;           (** guard verifier pattern words *)
  checkpoint_every : int;
      (** canonicalize and (if a file is set) checkpoint every N
          rounds; 0 disables both *)
  checkpoint_file : string option;
  jobs : int;
      (** parallel executors for the exact-check phase and signature
          simulation (a {!Par.Pool} of [jobs - 1] worker domains plus
          the main domain).  1 (the default) runs fully sequentially
          and spawns nothing.  Any value produces byte-identical
          reports, substitutions and final BLIF — see the determinism
          contract in [Par.Pool]. *)
  sig_index : Candidates.index_mode;
      (** how candidate generation matches signatures: [Hash] scans the
          store's compatibility classes (fast path), [Scan] tests every
          signal row (auditable reference).  Both emit byte-identical
          results. *)
  window : int option;
      (** [Some k]: try a windowed permissibility check (cut budget [k],
          see {!Check.windowed}) before the global miter; window proofs
          are globally sound, anything inconclusive escalates to the
          global check, so final verdicts stay exact.  [None] (default)
          always uses the global miter.  NOTE: unlike [jobs] /
          [sig_index], windowing can change results — a window can
          prove a candidate the global engine gives up on — so the
          window size belongs in a run's manifest. *)
  cost : cost_model;
      (** acceptance/ranking cost model (default [Zero_delay]).  NOTE:
          like [window], the cost model changes which substitutions are
          accepted, so it belongs in a run's manifest. *)
  is3_credit : bool;
      (** experimental: pass [~credit_downstream:true] to
          {!Subst.gain_ab} during generation and ranking, crediting IS3
          candidates with the sink's first-order activity drop so they
          survive the positive-gain filter (see [--is3-credit]). *)
}

val default_config : config

type class_stats = {
  accepted : int;
  power_gain : float;   (** measured switched-capacitance reduction *)
  area_gain : float;    (** measured area reduction (negative = growth) *)
}

type report = {
  initial_power : float;
  final_power : float;
  initial_area : float;
  final_area : float;
  initial_delay : float;
  final_delay : float;
  delay_constraint : float option;
  cost_model : string;  (** {!cost_model_name} of the run's cost model *)
  initial_glitch_power : float option;
      (** timed switched capacitance ({!Power.Glitch.estimate}) before
          the run; [None] under [Zero_delay] cost *)
  final_glitch_power : float option;
      (** same measurement after the run, on the same derived seed *)
  substitutions : int;
  by_class : (Subst.klass * class_stats) list;
  candidates_generated : int;
  checks_run : int;
  rejected_by_delay : int;
  rejected_by_atpg : int;
      (** proven wrong: the exact check found a distinguishing vector *)
  rejected_by_giveup : int;
      (** inconclusive: the proof engine hit its conflict/backtrack/node
          budget; the candidate may well have been permissible *)
  rejected_by_timeout : int;
      (** inconclusive: the per-check wall-clock deadline expired
          (disjoint from [rejected_by_giveup]) *)
  rejected_by_cex : int;
      (** screened out by accumulated counterexample patterns before
          any exact proof was attempted *)
  sig_hits : int;
      (** 2-signal signature matches emitted by the store scans
          (pre-gain-filter), summed over rounds *)
  sig_filtered : int;
      (** 2-signal pairs the signature comparison ruled out — the work
          the funnel's downstream never sees *)
  sig_resim_nodes : int;
      (** nodes re-evaluated by incremental (levelized, change-pruned)
          re-simulation on the accept path, both engines *)
  is3_candidates : int;
      (** 3-signal candidates generated on branch targets, before gain
          filtering — diagnoses the IS3 leg of Table 2 *)
  rolled_back : int;
      (** applies reverted by the {!Guard} transaction (verification
          mismatch or validation failure) *)
  verified_applies : int;
      (** applies that passed independent re-verification *)
  window_checks : int;
      (** candidates that went through the windowed check ([--window K]);
          0 with windowing off *)
  window_proved : int;
      (** proved permissible inside the window — the global miter was
          skipped entirely *)
  window_escalated : int;
      (** windowed checks that escalated to the global miter
          ([window_checks = window_proved + window_escalated]); the
          reasons are in [giveup_breakdown] under [window/overflow],
          [window/cex] and [window/giveup], and do NOT count toward
          [rejected_by_giveup] — the escalated candidate got a full
          global verdict *)
  giveup_breakdown : (string * int) list;
      (** give-up counts keyed ["engine/limit"], e.g. ["sat/conflicts"],
          ["podem/deadline"]; covers both giveup and timeout buckets,
          plus the [window/*] escalation reasons (which are not
          rejections) *)
  degradation_level : int;
      (** final ladder level: 0 full effort, 1 shrunk proof budgets,
          2 also OS3/IS3 skipped, 3 stopped *)
  stopped_by : string;
      (** ["converged"], ["max_rounds"], ["max_substitutions"],
          ["run_budget"] or ["degradation"] *)
  rounds : int;
  jobs : int;
      (** executors actually used (1 when nested inside a pool task) *)
  phase_seconds : (string * float) list;
      (** cumulative wall-clock per phase, keyed by {!phase_names} *)
  cpu_seconds : float;
      (** wall-clock of the whole run, same clock as [phase_seconds] *)
}

val phase_names : string list
(** The instrumented phases of the loop, in execution order:
    [generate], [rank], [refine-pgc], [exact-check], [apply], [sta]. *)

val power_reduction_percent : report -> float
val area_reduction_percent : report -> float

val optimize : ?config:config -> ?resume:Checkpoint.t -> Netlist.Circuit.t -> report
(** Optimizes the circuit in place.

    Guard semantics: with [verify_applies] on, every accepted
    substitution runs inside a {!Netlist.Circuit} journal and is
    re-verified by a guard-private simulation engine; mismatches are
    rolled back and counted in [rolled_back] instead of corrupting the
    run.  Wall-clock budgets ([check_seconds] / [round_seconds] /
    [run_seconds]) are threaded as cooperative deadlines into the
    SAT/PODEM engines; repeated per-check expiry or a blown round
    budget escalates the degradation ladder (shrink proof budgets →
    skip OS3/IS3 → stop), and a blown run budget stops cleanly with
    [stopped_by = "run_budget"].

    Checkpointing: with [checkpoint_every = n > 0] the optimizer
    canonicalizes its state every [n] rounds (BLIF round-trip +
    engine rebuild + counterexample replay) and, when
    [checkpoint_file] is set, saves a {!Checkpoint.t}.  Passing
    [?resume] continues such a run: the caller's circuit is
    overwritten in place from the checkpointed BLIF, counters and
    counterexamples are restored, and the run proceeds exactly as the
    uninterrupted checkpointing run would have.

    Parallelism: with [jobs > 1] the ranked candidates of each pick are
    proved permissible speculatively, [jobs] at a time, on a
    [Par.Pool]; verdicts are consumed in rank order replicating the
    sequential walk exactly, and speculation invalidated by an accept
    is discarded together with its observability.  Signature
    generation uses {!Sim.Engine.randomize_sharded}, whose patterns
    are independent of the job count.  The resulting report (modulo
    timing fields), accepted substitutions and final netlist are
    byte-identical to a [jobs = 1] run; in parallel mode the
    [exact-check] entry of [phase_seconds] measures the phase's wall
    clock (one span per speculation barrier instead of one per check).

    Telemetry: the run is wrapped in {!Obs.Trace} spans (one per entry
    of {!phase_names}); when a trace sink is installed it emits a
    [round] event per candidate-pool generation (fields [round],
    [pool]), a [reject] event per discarded candidate (fields [reason]
    in [delay]/[cex]/[atpg]/[giveup], [rank], [cand]) and an [accept]
    event per applied substitution (fields [class], [rank],
    [est_gain], [realized_gain], [area_delta], [cand]).  Funnel
    counters are also mirrored into the {!Obs.Metrics} registry under
    [powder.*]. *)

val pp_report : Format.formatter -> report -> unit

val report_to_json : report -> Obs.Json.t
(** Machine-readable report: every field of {!report} plus the derived
    reduction percentages, with [by_class] and [phase_seconds] as
    nested objects. *)
