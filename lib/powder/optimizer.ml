module Circuit = Netlist.Circuit
module Engine = Sim.Engine
module Estimator = Power.Estimator
module Timing = Sta.Timing
module Equiv = Atpg.Equiv
module Deadline = Obs.Deadline

type delay_mode = Unconstrained | Keep_initial | Ratio of float | Absolute of float

type cost_model = Zero_delay | Glitch of { pairs : int }

let cost_model_name = function
  | Zero_delay -> "zero-delay"
  | Glitch _ -> "glitch"

type config = {
  words : int;
  seed : int64;
  input_prob : string -> float;
  repeat : int;
  preselect : int;
  delay : delay_mode;
  classes : Subst.klass list;
  per_target : int;
  pool_limit : int;
  backtrack_limit : int;
  exhaustive_limit : int;
  check_engine : [ `Sat | `Podem | `Bdd ];
  max_substitutions : int;
  max_rounds : int;
  check_seconds : float option;
  round_seconds : float option;
  run_seconds : float option;
  verify_applies : bool;
  verify_words : int;
  checkpoint_every : int;
  checkpoint_file : string option;
  jobs : int;
  sig_index : Candidates.index_mode;
  window : int option;
  cost : cost_model;
  is3_credit : bool;
}

let default_config =
  {
    words = 16;
    seed = 0xC0FFEEL;
    input_prob = (fun _ -> 0.5);
    repeat = 8;
    preselect = 12;
    delay = Unconstrained;
    classes = Subst.all_klasses;
    per_target = 4;
    pool_limit = 16;
    backtrack_limit = 10_000;
    exhaustive_limit = 12;
    check_engine = `Sat;
    max_substitutions = 10_000;
    max_rounds = 200;
    check_seconds = None;
    round_seconds = None;
    run_seconds = None;
    verify_applies = true;
    verify_words = 8;
    checkpoint_every = 0;
    checkpoint_file = None;
    jobs = 1;
    sig_index = Candidates.Hash;
    window = None;
    cost = Zero_delay;
    is3_credit = false;
  }

module Trace = Obs.Trace
module Metrics = Obs.Metrics

type class_stats = { accepted : int; power_gain : float; area_gain : float }

type report = {
  initial_power : float;
  final_power : float;
  initial_area : float;
  final_area : float;
  initial_delay : float;
  final_delay : float;
  delay_constraint : float option;
  cost_model : string;
  initial_glitch_power : float option;
  final_glitch_power : float option;
  substitutions : int;
  by_class : (Subst.klass * class_stats) list;
  candidates_generated : int;
  checks_run : int;
  rejected_by_delay : int;
  rejected_by_atpg : int;
  rejected_by_giveup : int;
  rejected_by_timeout : int;
  rejected_by_cex : int;
      (** screened out by accumulated counterexample patterns, without
          running an exact proof *)
  sig_hits : int;
      (** 2-signal signature matches emitted by the store scans *)
  sig_filtered : int;
      (** 2-signal pairs the signature comparison ruled out *)
  sig_resim_nodes : int;
      (** nodes re-evaluated by incremental TFO re-simulation on accepts *)
  is3_candidates : int;
      (** 3-signal candidates generated on branch targets (IS3 funnel) *)
  rolled_back : int;
  verified_applies : int;
  window_checks : int;
      (** candidates sent through the windowed check (--window K) *)
  window_proved : int;
      (** proved permissible inside the window, no global miter needed *)
  window_escalated : int;
      (** escalated to the global miter; reasons appear in
          [giveup_breakdown] under [window/overflow], [window/cex],
          [window/giveup] without touching [rejected_by_giveup] *)
  giveup_breakdown : (string * int) list;
  degradation_level : int;
  stopped_by : string;
  rounds : int;
  jobs : int;
  phase_seconds : (string * float) list;
  cpu_seconds : float;
}

let phase_names = [ "generate"; "rank"; "refine-pgc"; "exact-check"; "apply"; "sta" ]

(* registry mirrors of the funnel counters, for [--metrics] dumps *)
let m_candidates = Metrics.counter "powder.candidates.generated"
let m_checks = Metrics.counter "powder.checks"
let m_accepted = Metrics.counter "powder.accepted"
let m_rej_delay = Metrics.counter "powder.rejected.delay"
let m_rej_atpg = Metrics.counter "powder.rejected.atpg"
let m_rej_giveup = Metrics.counter "powder.rejected.giveup"
let m_rej_timeout = Metrics.counter "powder.rejected.timeout"
let m_rej_cex = Metrics.counter "powder.rejected.cex"
let m_rolled_back = Metrics.counter "powder.rolled_back"
let m_rounds = Metrics.counter "powder.rounds"
let m_window_checks = Metrics.counter "powder.window.checks"
let m_window_proved = Metrics.counter "powder.window.proved"
let m_window_escalated = Metrics.counter "powder.window.escalated"

(* Per-round GC telemetry.  [Gc.quick_stat] reads counters without
   walking the heap, so sampling every round is free.  Gauges keep the
   latest sample in the always-on registry; when a trace sink is
   installed the sample is also emitted as a ["gc"] point event, which
   the profiler collects into its per-round GC table.  Sampled on the
   main domain only, after the round's commits — the sample COUNT is
   therefore identical across [--jobs] widths, while the values are
   volatile and stripped by profile comparison. *)
let g_gc_live = Metrics.gauge "gc.live_words"
let g_gc_heap = Metrics.gauge "gc.heap_words"
let g_gc_major = Metrics.gauge "gc.major_collections"
let g_gc_minor = Metrics.gauge "gc.minor_collections"
let g_gc_top_heap = Metrics.gauge "gc.top_heap_words"

let sample_gc ~round =
  let s = Gc.quick_stat () in
  Metrics.set_gauge g_gc_live (float_of_int s.Gc.live_words);
  Metrics.set_gauge g_gc_heap (float_of_int s.Gc.heap_words);
  Metrics.set_gauge g_gc_major (float_of_int s.Gc.major_collections);
  Metrics.set_gauge g_gc_minor (float_of_int s.Gc.minor_collections);
  Metrics.set_gauge g_gc_top_heap (float_of_int s.Gc.top_heap_words);
  Trace.event "gc"
    [
      ("round", Trace.Int round);
      ("live_words", Trace.Int s.Gc.live_words);
      ("heap_words", Trace.Int s.Gc.heap_words);
      ("major_collections", Trace.Int s.Gc.major_collections);
      ("minor_collections", Trace.Int s.Gc.minor_collections);
      ("top_heap_words", Trace.Int s.Gc.top_heap_words);
    ]

let power_reduction_percent r =
  if r.initial_power <= 0.0 then 0.0
  else 100.0 *. (r.initial_power -. r.final_power) /. r.initial_power

let area_reduction_percent r =
  if r.initial_area <= 0.0 then 0.0
  else 100.0 *. (r.initial_area -. r.final_area) /. r.initial_area

(* a candidate is stale once any node it references died *)
let still_valid circ (s : Subst.t) =
  let node_ok id = Circuit.is_live circ id in
  let target_ok =
    match s.Subst.target with
    | Subst.Stem a -> node_ok a && Circuit.num_fanouts circ a > 0
    | Subst.Branch { sink; pin } ->
      node_ok sink
      &&
      (match Circuit.kind circ sink with
      | Circuit.Cell (_, fs) -> pin >= 0 && pin < Array.length fs
      | Circuit.Po _ -> pin = 0
      | Circuit.Pi | Circuit.Const _ -> false)
  in
  let source_ok =
    match s.Subst.source with
    | Subst.Signal b | Subst.Inverted b -> node_ok b
    | Subst.Gate2 (_, b, c) -> node_ok b && node_ok c
  in
  target_ok && source_ok

let klass_of_name name =
  List.find_opt (fun k -> String.equal (Subst.klass_name k) name) Subst.all_klasses

(* Consecutive per-check deadline expiries before the degradation
   ladder escalates one level. *)
let escalate_after_timeouts = 3

let optimize_with ~pool:dom_pool ~jobs ~config ?resume circ =
  let t0 = Obs.Clock.now () in
  (* span histograms are process-global; remember their current sums so
     this run's phase breakdown is a delta, not a lifetime total *)
  let phase_base = List.map (fun n -> (n, Trace.span_seconds n)) phase_names in
  let analyze_timed ?required_time c =
    Trace.with_span "sta" (fun () -> Timing.analyze ?required_time c)
  in
  let log = Logs.debug in
  (* Resume: swap in the checkpointed netlist before any engine sees the
     circuit.  [overwrite] keeps the caller's handle valid. *)
  (match resume with
  | None -> ()
  | Some (ck : Checkpoint.t) -> (
    match Blif.Blif_io.circuit_of_string (Circuit.library circ) ck.blif with
    | Ok c2 -> Circuit.overwrite circ c2
    | Error e ->
      invalid_arg
        ("Optimizer.optimize: cannot resume: " ^ Blif.Blif_io.error_to_string e)));
  let prob_of pi = config.input_prob (Circuit.name circ pi) in
  let eng = ref (Engine.create circ ~words:config.words) in
  Engine.randomize_sharded ~input_probs:prob_of ?pool:dom_pool
    ~seed:config.seed !eng;
  let est = ref (Estimator.create !eng) in
  let initial_power =
    match resume with
    | Some ck -> ck.Checkpoint.initial_power
    | None -> Estimator.total !est
  in
  let initial_area =
    match resume with
    | Some ck -> ck.Checkpoint.initial_area
    | None -> Circuit.area circ
  in
  let initial_delay =
    match resume with
    | Some ck -> ck.Checkpoint.initial_delay
    | None -> Timing.circuit_delay (analyze_timed circ)
  in
  let constraint_ =
    match config.delay with
    | Unconstrained -> None
    | Keep_initial -> Some initial_delay
    | Ratio r -> Some (initial_delay *. (1.0 +. r))
    | Absolute d -> Some d
  in
  (* Glitch-aware costing (--cost glitch): the timed estimator runs on
     its own derived seed stream, so turning it on perturbs nothing in
     the zero-delay engines, and both the total measurements and the
     per-node hazard factors are deterministic for a given seed. *)
  let glitch_seed = Sim.Rng.derive config.seed "powder/glitch" in
  let measure_glitch () =
    match config.cost with
    | Zero_delay -> None
    | Glitch { pairs } ->
      Some
        (Power.Glitch.estimate ~pairs ~seed:glitch_seed
           ~input_prob:config.input_prob circ)
          .Power.Glitch.timed_switched_cap
  in
  let glitch_factors () =
    match config.cost with
    | Zero_delay -> None
    | Glitch { pairs } ->
      Some
        (Power.Glitch.node_factors ~pairs ~seed:glitch_seed
           ~input_prob:config.input_prob circ)
  in
  let factors = ref (glitch_factors ()) in
  let initial_glitch_power =
    match resume with
    | Some ck -> ck.Checkpoint.initial_glitch_power
    | None -> measure_glitch ()
  in
  let sta = ref (analyze_timed ?required_time:constraint_ circ) in
  (* Incremental STA: the cursor marks the edit-log position the current
     [!sta] snapshot reflects; each accept pulls the suffix and updates
     only the affected cone.  Rolled-back applies leave unchanged-value
     edits in the log — harmless, the update prunes them. *)
  let sta_cursor = ref (Circuit.edit_cursor circ) in
  let update_sta () =
    Trace.with_span "sta" (fun () ->
        (match Circuit.edits_since circ !sta_cursor with
        | Some dirty ->
          sta := Timing.update ?required_time:constraint_ !sta ~dirty
        | None -> sta := Timing.analyze ?required_time:constraint_ circ);
        sta_cursor := Circuit.edit_cursor circ)
  in
  let stats = Hashtbl.create 4 in
  List.iter
    (fun k -> Hashtbl.add stats k { accepted = 0; power_gain = 0.0; area_gain = 0.0 })
    Subst.all_klasses;
  let candidates_generated = ref 0 in
  let checks = ref 0 in
  let rej_delay = ref 0 in
  let rej_atpg = ref 0 in
  let rej_giveup = ref 0 in
  let rej_timeout = ref 0 in
  let rej_cex = ref 0 in
  let sig_hits = ref 0 in
  let sig_filtered = ref 0 in
  let sig_resim_nodes = ref 0 in
  let is3_cands = ref 0 in
  let rolled_back = ref 0 in
  let verified_applies = ref 0 in
  let window_checks = ref 0 in
  let window_proved = ref 0 in
  let window_escalated = ref 0 in
  let substitutions = ref 0 in
  let rounds = ref 0 in
  let giveups : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let bump_giveup key =
    Hashtbl.replace giveups key
      (1 + Option.value ~default:0 (Hashtbl.find_opt giveups key))
  in
  (* Counterexample pattern set: every refuted candidate contributes its
     distinguishing vector, which then screens future candidates for
     free (classic simulation/SAT refinement).  The full history is kept
     (newest first) so checkpoints can replay it. *)
  let cex_words = 4 in
  let cex_eng = ref (Engine.create circ ~words:cex_words) in
  Engine.randomize !cex_eng ~input_probs:prob_of
    (Sim.Rng.stream config.seed "powder/cex");
  let cex_cursor = ref 0 in
  let cex_log = ref [] in
  let write_cex_bits assignment =
    let k = !cex_cursor mod (64 * cex_words) in
    incr cex_cursor;
    let word = k / 64 and bit = k mod 64 in
    List.iter
      (fun pi ->
        match List.assoc_opt (Circuit.name circ pi) assignment with
        | None -> ()
        | Some v ->
          let values = Array.copy (Engine.value !cex_eng pi) in
          let mask = Int64.shift_left 1L bit in
          values.(word) <-
            (if v then Int64.logor values.(word) mask
             else Int64.logand values.(word) (Int64.lognot mask));
          Engine.set_value !cex_eng pi values)
      (Circuit.pis circ)
  in
  (* Signature store over both engines: candidate generation reads it,
     the accept path maintains it incrementally, and counterexample
     injection invalidates it (a new cex rewrites one pattern column in
     EVERY row, so the next generate rebuilds).  Recreated whenever the
     engines themselves are recreated. *)
  let sigstore = ref (Sim.Sigstore.create ~cex:!cex_eng ~base:!eng ()) in
  let inject_cex assignment =
    cex_log := assignment :: !cex_log;
    write_cex_bits assignment;
    Engine.resim_all !cex_eng;
    Sim.Sigstore.invalidate !sigstore
  in
  let verify_seed = Sim.Rng.derive config.seed "powder/guard" in
  let guard =
    ref
      (if config.verify_applies then
         Some
           (Guard.make_verifier ~words:config.verify_words ~seed:verify_seed
              ~input_probs:prob_of circ)
       else None)
  in
  (* Rebuild every engine from the (canonicalized or resumed) circuit,
     re-deriving all simulation state from seeds and the counterexample
     log.  This is what makes resume deterministic: both an
     uninterrupted checkpointing run and a resumed one pass through the
     identical rebuild at every barrier. *)
  let rebuild_engines () =
    eng := Engine.create circ ~words:config.words;
    Engine.randomize_sharded ~input_probs:prob_of ?pool:dom_pool
      ~seed:config.seed !eng;
    est := Estimator.create !eng;
    cex_eng := Engine.create circ ~words:cex_words;
    Engine.randomize !cex_eng ~input_probs:prob_of
      (Sim.Rng.stream config.seed "powder/cex");
    cex_cursor := 0;
    List.iter write_cex_bits (List.rev !cex_log);
    Engine.resim_all !cex_eng;
    (match !guard with
    | None -> ()
    | Some _ ->
      guard :=
        Some
          (Guard.make_verifier ~words:config.verify_words ~seed:verify_seed
             ~input_probs:prob_of circ));
    sigstore := Sim.Sigstore.create ~cex:!cex_eng ~base:!eng ();
    factors := glitch_factors ();
    sta := analyze_timed ?required_time:constraint_ circ;
    sta_cursor := Circuit.edit_cursor circ
  in
  (* Canonicalization barrier: serialize, reparse, and continue on the
     reparsed circuit.  A BLIF round trip renumbers nodes, and candidate
     generation iterates in node-id order — so the checkpointed BLIF
     must BE the state the run continues from, or resume would diverge. *)
  let canonicalize () =
    let blif = Blif.Blif_io.circuit_to_string circ in
    (match Blif.Blif_io.circuit_of_string (Circuit.library circ) blif with
    | Ok c2 -> Circuit.overwrite circ c2
    | Error e ->
      failwith
        ("Optimizer: checkpoint canonicalization failed: "
        ^ Blif.Blif_io.error_to_string e));
    rebuild_engines ();
    blif
  in
  (* Restore counters and accumulated state from the checkpoint. *)
  (match resume with
  | None -> ()
  | Some ck ->
    rounds := ck.Checkpoint.round;
    substitutions := ck.Checkpoint.substitutions;
    candidates_generated := ck.Checkpoint.candidates_generated;
    checks := ck.Checkpoint.checks_run;
    rej_delay := ck.Checkpoint.rejected_by_delay;
    rej_atpg := ck.Checkpoint.rejected_by_atpg;
    rej_giveup := ck.Checkpoint.rejected_by_giveup;
    rej_timeout := ck.Checkpoint.rejected_by_timeout;
    rej_cex := ck.Checkpoint.rejected_by_cex;
    sig_hits := ck.Checkpoint.sig_hits;
    sig_filtered := ck.Checkpoint.sig_filtered;
    sig_resim_nodes := ck.Checkpoint.sig_resim_nodes;
    is3_cands := ck.Checkpoint.is3_candidates;
    rolled_back := ck.Checkpoint.rolled_back;
    verified_applies := ck.Checkpoint.verified_applies;
    window_checks := ck.Checkpoint.window_checks;
    window_proved := ck.Checkpoint.window_proved;
    window_escalated := ck.Checkpoint.window_escalated;
    List.iter (fun (k, n) -> Hashtbl.replace giveups k n)
      ck.Checkpoint.giveup_breakdown;
    List.iter
      (fun (name, (accepted, power_gain, area_gain)) ->
        match klass_of_name name with
        | Some k -> Hashtbl.replace stats k { accepted; power_gain; area_gain }
        | None -> ())
      ck.Checkpoint.by_class;
    cex_log := List.rev ck.Checkpoint.cex;
    cex_cursor := 0;
    List.iter write_cex_bits ck.Checkpoint.cex;
    Engine.resim_all !cex_eng;
    (match !guard with
    | None -> ()
    | Some v -> Guard.refresh v));
  let degradation =
    ref (match resume with Some ck -> ck.Checkpoint.degradation_level | None -> 0)
  in
  let consecutive_timeouts = ref 0 in
  let continue_ = ref true in
  let stopped_by = ref "converged" in
  (* A checkpoint taken after the loop decided to stop marks the run
     finished; resuming it must reproduce the finished report, not run
     one more (empty) round that the uninterrupted run never saw. *)
  (match resume with
  | Some ck when not (String.equal ck.Checkpoint.status "running") ->
    continue_ := false;
    stopped_by := ck.Checkpoint.status
  | _ -> ());
  let escalate reason =
    if !degradation < 3 then begin
      incr degradation;
      Trace.event "degrade"
        [ ("level", Trace.Int !degradation); ("reason", Trace.String reason) ];
      log (fun m -> m "degradation level %d (%s)" !degradation reason)
    end;
    if !degradation >= 3 then begin
      stopped_by := "degradation";
      continue_ := false
    end
  in
  let effective_backtrack_limit () =
    if !degradation >= 1 then max 100 (config.backtrack_limit / 8)
    else config.backtrack_limit
  in
  let effective_classes () =
    if !degradation >= 2 then
      List.filter
        (fun k -> match k with Subst.Os3 | Subst.Is3 -> false | _ -> true)
        config.classes
    else config.classes
  in
  let run_deadline = Deadline.of_option config.run_seconds in
  let round_deadline = ref Deadline.never in
  let check_deadline () =
    let d =
      if Guard.take_fault Guard.Expire_deadline then Deadline.after ~seconds:(-1.0)
      else Deadline.of_option config.check_seconds
    in
    Deadline.earliest d (Deadline.earliest !round_deadline run_deadline)
  in
  (* Attempt the best pre-selected candidate from the pool.  All tried
     or discarded candidates are marked used, so progress is guaranteed.
     Returns [`Accepted], [`Tried] (pool consumed but nothing accepted
     yet), [`Exhausted], [`Round_over] (round budget expired) or
     [`Stop] (run budget expired or the ladder topped out). *)
  (* Glitch-aware scoring: scale the estimated gain components by the
     hazard multipliers of the signals whose activity they price — PG_A
     removes activity at (or behind) the substituted signal, PG_B adds
     load driven at the source's density; PG_C stays zero-delay (the
     exact re-simulation has no hazard model).  Factors are sampled
     from the canonical circuit at every rebuild barrier; nodes created
     since (new inverters/gates) default to 1. *)
  let node_factor id =
    match !factors with
    | None -> 1.0
    | Some f -> if id < Array.length f then f.(id) else 1.0
  in
  let scored s (g : Subst.gain) =
    match !factors with
    | None -> Subst.total_gain g
    | Some _ ->
      let tgt = node_factor (Subst.substituted_signal circ s) in
      let src =
        match s.Subst.source with
        | Subst.Signal b | Subst.Inverted b -> node_factor b
        | Subst.Gate2 (_, b, d) -> Float.max (node_factor b) (node_factor d)
      in
      (g.Subst.pg_a *. tgt) +. (g.Subst.pg_b *. src) +. g.Subst.pg_c
  in
  let try_pick pool used ranked_cache =
    let compute_ranked () =
      (* rank the still-valid unused candidates by fresh PG_A+PG_B;
         pool entries against the same stem share one dominated-region
         mask (the pool holds up to [per_target] candidates per
         target, so recomputing it per entry multiplies the O(circuit)
         traversal cost for nothing) *)
      let doms = Hashtbl.create 64 in
      let dom_for s =
        match s.Subst.target with
        | Subst.Branch _ -> None
        | Subst.Stem a ->
          Some
            (match Hashtbl.find_opt doms a with
            | Some d -> d
            | None ->
              let d = Circuit.dominated_region circ a in
              let m = ref [] in
              Array.iteri (fun i inside -> if inside then m := i :: !m) d;
              let v = (d, Array.of_list (List.rev !m)) in
              Hashtbl.add doms a v;
              v)
      in
      Trace.with_span "rank" (fun () ->
          let ranked = ref [] in
          Array.iteri
            (fun i (s, _) ->
              if (not used.(i)) && still_valid circ s
                 && not (Subst.creates_cycle circ s)
              then begin
                let g =
                  match dom_for s with
                  | Some d ->
                    Subst.gain_ab ~dom:d ~credit_downstream:config.is3_credit
                      !est s
                  | None ->
                    Subst.gain_ab ~credit_downstream:config.is3_credit !est s
                in
                if scored s g > 0.0 then ranked := (i, s, g) :: !ranked
                else used.(i) <- true
              end
              else used.(i) <- true)
            pool;
          List.sort
            (fun (_, s1, g1) (_, s2, g2) ->
              Float.compare (scored s2 g2) (scored s1 g1))
            !ranked)
    in
    let ranked =
      match ranked_cache with
      | Some r -> List.filter (fun (i, _, _) -> not used.(i)) r
      | None -> compute_ranked ()
    in
    match ranked with
    | [] -> `Exhausted
    | _ ->
      let top = List.filteri (fun k _ -> k < config.preselect) ranked in
      (* re-estimate PG_C for the pre-selected candidates (Section 3.5) *)
      let refined =
        Trace.with_span "refine-pgc" (fun () ->
            List.filter_map
              (fun (i, s, _) ->
                let g = Subst.gain_full !est s in
                if scored s g > 0.0 then Some (i, s, g)
                else begin
                  used.(i) <- true;
                  None
                end)
              top)
      in
      let class_rank s =
        match Subst.klass s with
        | Subst.Is2 -> 0
        | Subst.Os2 -> 1
        | Subst.Os3 -> 2
        | Subst.Is3 -> 3
      in
      let refined =
        List.sort
          (fun (_, s1, g1) (_, s2, g2) ->
            let c = Float.compare (scored s2 g2) (scored s1 g1) in
            if c <> 0 then c else Int.compare (class_rank s1) (class_rank s2))
          refined
      in
      (* rank = position in the refined best-first order, recorded on
         every accept/reject event so the trace shows how deep into the
         pre-selection each verdict happened *)
      let refined = List.mapi (fun rank (i, s, g) -> (rank, i, s, g)) refined in
      let reject rank s reason =
        Trace.event_f "reject" (fun () ->
            [
              ("reason", Trace.String reason);
              ("rank", Trace.Int rank);
              ("cand", Trace.String (Subst.describe circ s));
            ])
      in
      (* The budget/ladder guards checked before every candidate, in
         this exact order, by both the sequential and the speculative
         walk. *)
      let walk_status () =
        if Deadline.expired run_deadline then begin
          Guard.count_error Guard.Budget_exhausted;
          stopped_by := "run_budget";
          `Stop
        end
        else if Deadline.expired !round_deadline then begin
          Guard.count_error Guard.Budget_exhausted;
          `Round_over
        end
        else if not !continue_ then `Stop
        else `Go
      in
      (* Cheap screens before the exact proof; marks the candidate used
         either way and counts the check when it survives. *)
      let screened_out rank i s =
        used.(i) <- true;
        let delay_fine =
          match constraint_ with
          | None -> true
          | Some _ -> Subst.delay_ok !sta s
        in
        if not delay_fine then begin
          incr rej_delay;
          reject rank s "delay";
          true
        end
        else if Check.refuted_on_patterns !cex_eng s then begin
          incr rej_cex;
          reject rank s "cex";
          true
        end
        else begin
          incr checks;
          false
        end
      in
      (* The exact proof itself: reads the (frozen) circuit only, so it
         is safe to run speculatively in a worker domain.  With --window
         the windowed check runs first; a window proof is globally sound
         and skips the global miter, anything inconclusive escalates to
         it.  Counter updates are deferred to [consume_verdict] (main
         domain), so the returned value carries the window outcome. *)
      let run_check ~backtrack_limit ~deadline s =
        let global () =
          match
            Check.permissible ~backtrack_limit
              ~exhaustive_limit:config.exhaustive_limit
              ~engine:config.check_engine ~deadline circ s
          with
          | v -> v
          | exception Invalid_argument _ ->
            Check.Gave_up { engine = "check"; limit = "invalid" }
        in
        match config.window with
        | None -> (global (), `Window_off)
        | Some k -> (
          match
            Check.windowed ~exhaustive_limit:config.exhaustive_limit
              ~deadline ~max_cut:k circ s
          with
          | Check.W_proved -> (Check.Permissible, `Window_proved)
          | Check.W_escalated r ->
            (global (), `Window_escalated (Check.escalation_name r))
          | exception Invalid_argument _ ->
            (global (), `Window_escalated "invalid"))
      in
      (* Everything downstream of a verdict — apply, stats, cex
         injection, ladder — runs on the main domain at consumption
         time. *)
      let consume_verdict rank s g (verdict, window_outcome) =
        (* window funnel accounting, on the main domain in rank order;
           escalations are classified under window/* in the give-up
           breakdown but are NOT give-up rejections — the candidate was
           re-checked globally and its global verdict is what counts *)
        (match window_outcome with
        | `Window_off -> ()
        | `Window_proved ->
          incr window_checks;
          incr window_proved
        | `Window_escalated r ->
          incr window_checks;
          incr window_escalated;
          bump_giveup ("window/" ^ r));
        (* test-only fault: report a refuted candidate as permissible
           so the transactional apply must catch it downstream *)
        let verdict =
          match verdict with
          | Check.Not_permissible _ when Guard.take_fault Guard.Forge_verdict ->
            Check.Permissible
          | v -> v
        in
        match verdict with
        | Check.Permissible -> (
          consecutive_timeouts := 0;
          let power_before = Estimator.total !est in
          let area_before = Circuit.area circ in
          let desc = if Trace.active () then Subst.describe circ s else "" in
          let outcome =
            Trace.with_span "apply" (fun () ->
                match !guard with
                | Some v -> (
                  match Guard.transactional_apply v circ s with
                  | Guard.Applied src ->
                    incr verified_applies;
                    sig_resim_nodes :=
                      !sig_resim_nodes
                      + Estimator.update_after_edit !est src
                      + Engine.resim_after_edit !cex_eng src;
                    Sim.Sigstore.update_after_edit !sigstore src;
                    `Ok src
                  | Guard.Rolled_back err -> `Rolled_back err)
                | None ->
                  let src = Subst.apply circ s in
                  sig_resim_nodes :=
                    !sig_resim_nodes
                    + Estimator.update_after_edit !est src
                    + Engine.resim_after_edit !cex_eng src;
                  Sim.Sigstore.update_after_edit !sigstore src;
                  `Ok src)
          in
          match outcome with
          | `Rolled_back err ->
            incr rolled_back;
            Trace.event_f "rollback" (fun () ->
                [
                  ("error", Trace.String (Guard.error_name err));
                  ("rank", Trace.Int rank);
                  ("cand", Trace.String (Subst.describe circ s));
                ]);
            log (fun m ->
                m "rolled back %s (%s)" (Subst.describe circ s)
                  (Guard.error_name err));
            `Continue
          | `Ok _src ->
            update_sta ();
            incr substitutions;
            let realized = power_before -. Estimator.total !est in
            let area_delta = area_before -. Circuit.area circ in
            let k = Subst.klass s in
            let st = Hashtbl.find stats k in
            Hashtbl.replace stats k
              {
                accepted = st.accepted + 1;
                power_gain = st.power_gain +. realized;
                area_gain = st.area_gain +. area_delta;
              };
            Trace.event_f "accept" (fun () ->
                [
                  ("class", Trace.String (Subst.klass_name k));
                  ("rank", Trace.Int rank);
                  ("est_gain", Trace.Float (Subst.total_gain g));
                  ("realized_gain", Trace.Float realized);
                  ("area_delta", Trace.Float area_delta);
                  ("cand", Trace.String desc);
                ]);
            log (fun m ->
                m "accepted %s (gain %.4f)" (Subst.describe circ s)
                  (Subst.total_gain g));
            `Accepted)
        | Check.Not_permissible cex ->
          consecutive_timeouts := 0;
          incr rej_atpg;
          reject rank s "atpg";
          inject_cex cex;
          `Continue
        | Check.Gave_up { engine; limit } ->
          bump_giveup (engine ^ "/" ^ limit);
          if String.equal limit "deadline" then begin
            incr rej_timeout;
            Guard.count_error Guard.Check_timeout;
            reject rank s "timeout";
            incr consecutive_timeouts;
            if !consecutive_timeouts >= escalate_after_timeouts then begin
              consecutive_timeouts := 0;
              escalate "check-deadline"
            end;
            `Continue
          end
          else begin
            consecutive_timeouts := 0;
            incr rej_giveup;
            reject rank s "giveup";
            `Continue
          end
      in
      let attempt_seq refined =
        let rec attempt = function
          | [] -> `Tried ranked
          | (rank, i, s, g) :: rest -> (
            match walk_status () with
            | (`Stop | `Round_over) as st -> st
            | `Go -> (
              if screened_out rank i s then attempt rest
              else
                let verdict =
                  Trace.with_span "exact-check" (fun () ->
                      run_check
                        ~backtrack_limit:(effective_backtrack_limit ())
                        ~deadline:(check_deadline ()) s)
                in
                match consume_verdict rank s g verdict with
                | `Accepted -> `Accepted
                | `Continue -> attempt rest))
        in
        attempt refined
      in
      (* Speculative parallel walk.  A side-effect-free copy of the
         cheap screens selects, in rank order, the next [jobs]
         candidates the sequential walk would actually exact-check —
         without it the pool would burn a full check on every candidate
         the counterexample screens kill for free, hundreds per accept
         on the larger circuits.  Those are checked in parallel against
         the frozen circuit, each under a private collector; the commit
         walk then replays the exact sequential protocol over {e every}
         candidate in the scanned window — budget guards, [used]
         marking, the authoritative counting screens, counterexample
         injection, accept short-circuit — consuming each speculation
         (merging its collector, taking its verdict) only where the
         sequential run would have checked it.  A refutation mid-chunk
         tightens the cex screen, so a later speculated candidate may
         now be screened: its speculation is discarded unmerged, like
         everything behind an accept — the parallel run leaves exactly
         the observable state of the sequential one.  The barrier-level
         "exact-check" span is recorded on the main domain, so
         [phase_seconds] measures the phase's wall clock — that is
         where the [--jobs] speedup shows up. *)
      let attempt_par p refined =
        let items = Array.of_list refined in
        let n = Array.length items in
        let chunk = Par.Pool.jobs p in
        (* pre-warm the lazy topo cache: speculative checkers clone the
           circuit and must not race on its memoized traversal *)
        ignore (Circuit.topo_order circ);
        let prescreen s =
          (match constraint_ with
          | None -> true
          | Some _ -> Subst.delay_ok !sta s)
          && not (Check.refuted_on_patterns !cex_eng s)
        in
        let result = ref None in
        let pos = ref 0 in
        while !result = None && !pos < n do
          (* select the next [chunk] candidates passing the current
             screens; the window [pos, scan) still gets walked in full
             rank order below *)
          let sel = ref [] and nsel = ref 0 and scan = ref !pos in
          while !nsel < chunk && !scan < n do
            let _, _, s, _ = items.(!scan) in
            if prescreen s then begin
              sel := !scan :: !sel;
              incr nsel
            end;
            incr scan
          done;
          let sel = Array.of_list (List.rev !sel) in
          (* ladder state and per-check deadlines are sampled at
             submission, on the main domain, in rank order *)
          let bl = effective_backtrack_limit () in
          let tasks =
            Array.map
              (fun idx ->
                let _, _, s, _ = items.(idx) in
                let deadline = check_deadline () in
                fun () -> run_check ~backtrack_limit:bl ~deadline s)
              sel
          in
          let specs =
            if Array.length tasks = 0 then [||]
            else
              Trace.with_span "exact-check" (fun () ->
                  Par.Pool.speculate p tasks)
          in
          let k = ref 0 in
          let i = ref !pos in
          while !result = None && !i < !scan do
            let rank, ci, s, g = items.(!i) in
            let speculated = !k < Array.length sel && sel.(!k) = !i in
            (match walk_status () with
            | (`Stop | `Round_over) as st -> result := Some st
            | `Go ->
              if screened_out rank ci s then begin
                if speculated then begin
                  Par.Pool.discard specs.(!k);
                  incr k
                end
              end
              else
                let verdict =
                  if speculated then begin
                    let v =
                      match Par.Pool.commit specs.(!k) with
                      | Some v -> v
                      | None ->
                        (* unreachable — [speculate] gets no deadline —
                           but degrade to an inline check, not assert *)
                        run_check ~backtrack_limit:bl
                          ~deadline:(check_deadline ()) s
                    in
                    incr k;
                    v
                  end
                  else
                    (* pre-screened out, yet the authoritative screen
                       passed (screens only tighten, so this is dead
                       code today): fall back to the sequential walk's
                       inline check *)
                    Trace.with_span "exact-check" (fun () ->
                        run_check
                          ~backtrack_limit:(effective_backtrack_limit ())
                          ~deadline:(check_deadline ()) s)
                in
                (match consume_verdict rank s g verdict with
                | `Accepted -> result := Some `Accepted
                | `Continue -> ()));
            incr i
          done;
          (* roll back whatever the walk did not consume — everything
             behind an accept, a budget stop, or a tightened screen *)
          while !k < Array.length sel do
            Par.Pool.discard specs.(!k);
            incr k
          done;
          pos := !scan
        done;
        match !result with Some st -> st | None -> `Tried ranked
      in
      (match dom_pool with
      | Some p when List.compare_length_with refined 1 > 0 ->
        attempt_par p refined
      | _ -> attempt_seq refined)
  in
  while
    !continue_ && !rounds < config.max_rounds
    && !substitutions < config.max_substitutions
  do
    if Deadline.expired run_deadline then begin
      Guard.count_error Guard.Budget_exhausted;
      stopped_by := "run_budget";
      continue_ := false
    end
    else begin
      incr rounds;
      round_deadline := Deadline.of_option config.round_seconds;
      let cand_config =
        {
          Candidates.classes = effective_classes ();
          per_target = config.per_target;
          pool_limit = config.pool_limit;
          require_positive = true;
          credit_downstream = config.is3_credit;
          index = config.sig_index;
        }
      in
      let pool, gen_stats =
        Trace.with_span "generate" (fun () ->
            let cands, st =
              Candidates.generate_stats ~config:cand_config ?pool:dom_pool
                ~store:!sigstore !est
            in
            (Array.of_list cands, st))
      in
      sig_hits := !sig_hits + gen_stats.Candidates.pairs_hit;
      sig_filtered := !sig_filtered + gen_stats.Candidates.pairs_filtered;
      is3_cands := !is3_cands + gen_stats.Candidates.is3_candidates;
      candidates_generated := !candidates_generated + Array.length pool;
      Trace.event "round"
        [ ("round", Trace.Int !rounds); ("pool", Trace.Int (Array.length pool)) ];
      if Array.length pool = 0 then continue_ := false
      else begin
        let used = Array.make (Array.length pool) false in
        let accepted_this_round = ref 0 in
        let batch_active = ref true in
        let round_expired = ref false in
        let ranked_cache = ref None in
        while
          !batch_active
          && !accepted_this_round < config.repeat
          && !substitutions < config.max_substitutions
        do
          match try_pick pool used !ranked_cache with
          | `Accepted ->
            incr accepted_this_round;
            ranked_cache := None (* circuit changed; re-rank *)
          | `Tried ranked -> ranked_cache := Some ranked
          | `Exhausted -> batch_active := false
          | `Round_over ->
            batch_active := false;
            round_expired := true;
            escalate "round-budget"
          | `Stop ->
            batch_active := false;
            continue_ := false
        done;
        (* An expired round budget is not convergence: the next round
           runs with the escalated ladder instead of giving up. *)
        if !accepted_this_round = 0 && not !round_expired then
          continue_ := false
      end;
      sample_gc ~round:!rounds;
      (* Checkpoint barrier (also taken with no file configured, so a
         checkpointing run and a resumed one share identical state). *)
      if config.checkpoint_every > 0 && !rounds mod config.checkpoint_every = 0
      then begin
        let blif = canonicalize () in
        match config.checkpoint_file with
        | None -> ()
        | Some file ->
          (* The checkpoint carries the raw stop reason, never the
             promoted one: "converged" at a round cap means different
             things to different resumers (a slice driver's per-slice
             cap is not the job's), so the promotion into
             max_substitutions / max_rounds happens at report time
             against the resuming config's own bounds. *)
          let status = if !continue_ then "running" else !stopped_by in
          Checkpoint.save file
            {
              Checkpoint.round = !rounds;
              status;
              substitutions = !substitutions;
              seed = config.seed;
              blif;
              cex = List.rev !cex_log;
              cex_cursor = !cex_cursor;
              candidates_generated = !candidates_generated;
              checks_run = !checks;
              rejected_by_delay = !rej_delay;
              rejected_by_atpg = !rej_atpg;
              rejected_by_giveup = !rej_giveup;
              rejected_by_timeout = !rej_timeout;
              rejected_by_cex = !rej_cex;
              sig_hits = !sig_hits;
              sig_filtered = !sig_filtered;
              sig_resim_nodes = !sig_resim_nodes;
              is3_candidates = !is3_cands;
              rolled_back = !rolled_back;
              verified_applies = !verified_applies;
              window_checks = !window_checks;
              window_proved = !window_proved;
              window_escalated = !window_escalated;
              giveup_breakdown =
                List.sort compare
                  (Hashtbl.fold (fun k v acc -> (k, v) :: acc) giveups []);
              by_class =
                List.map
                  (fun k ->
                    let st = Hashtbl.find stats k in
                    ( Subst.klass_name k,
                      (st.accepted, st.power_gain, st.area_gain) ))
                  Subst.all_klasses;
              initial_power;
              initial_area;
              initial_delay;
              initial_glitch_power;
              degradation_level = !degradation;
            }
      end
    end
  done;
  (* Promote "converged" into the bound that actually stopped the run.
     This applies to finished resumes too: a run that converged exactly
     in its last allowed round checkpoints the raw "converged", and the
     resumed report must repeat the promoted reason the uninterrupted
     run printed.  [!rounds] / [!substitutions] come from the
     checkpoint on resume, so the comparison is against the same
     counters either way. *)
  if String.equal !stopped_by "converged" then begin
    if !substitutions >= config.max_substitutions then
      stopped_by := "max_substitutions"
    else if !rounds >= config.max_rounds then stopped_by := "max_rounds"
  end;
  let final_sta = analyze_timed circ in
  Metrics.add m_candidates !candidates_generated;
  Metrics.add m_checks !checks;
  Metrics.add m_accepted !substitutions;
  Metrics.add m_rej_delay !rej_delay;
  Metrics.add m_rej_atpg !rej_atpg;
  Metrics.add m_rej_giveup !rej_giveup;
  Metrics.add m_rej_timeout !rej_timeout;
  Metrics.add m_rej_cex !rej_cex;
  Metrics.add m_rolled_back !rolled_back;
  Metrics.add m_rounds !rounds;
  Metrics.add m_window_checks !window_checks;
  Metrics.add m_window_proved !window_proved;
  Metrics.add m_window_escalated !window_escalated;
  let phase_seconds =
    List.map (fun (n, base) -> (n, Trace.span_seconds n -. base)) phase_base
  in
  {
    initial_power;
    final_power = Estimator.total !est;
    initial_area;
    final_area = Circuit.area circ;
    initial_delay;
    final_delay = Timing.circuit_delay final_sta;
    delay_constraint = constraint_;
    cost_model = cost_model_name config.cost;
    initial_glitch_power;
    final_glitch_power = measure_glitch ();
    substitutions = !substitutions;
    by_class = List.map (fun k -> (k, Hashtbl.find stats k)) Subst.all_klasses;
    candidates_generated = !candidates_generated;
    checks_run = !checks;
    rejected_by_delay = !rej_delay;
    rejected_by_atpg = !rej_atpg;
    rejected_by_giveup = !rej_giveup;
    rejected_by_timeout = !rej_timeout;
    rejected_by_cex = !rej_cex;
    sig_hits = !sig_hits;
    sig_filtered = !sig_filtered;
    sig_resim_nodes = !sig_resim_nodes;
    is3_candidates = !is3_cands;
    rolled_back = !rolled_back;
    verified_applies = !verified_applies;
    window_checks = !window_checks;
    window_proved = !window_proved;
    window_escalated = !window_escalated;
    giveup_breakdown =
      List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) giveups []);
    degradation_level = !degradation;
    stopped_by = !stopped_by;
    rounds = !rounds;
    jobs;
    phase_seconds;
    cpu_seconds = Obs.Clock.now () -. t0;
  }

(* The pool is created here (not in [optimize_with]) so its lifetime
   brackets the whole run and it is joined even when the run raises.
   Inside a pool task — the optimizer invoked by a parallel fuzz case —
   nested submission is illegal, so the run is forced sequential. *)
let optimize ?(config = default_config) ?resume circ =
  let jobs = if Par.Pool.in_task () then 1 else max 1 config.jobs in
  let pool = if jobs > 1 then Some (Par.Pool.create ~jobs ()) else None in
  Fun.protect
    ~finally:(fun () -> Option.iter Par.Pool.shutdown pool)
    (fun () -> optimize_with ~pool ~jobs ~config ?resume circ)

let pp_report fmt r =
  Format.fprintf fmt
    "@[<v>power: %.4f -> %.4f (%.1f%%)@,area: %.0f -> %.0f (%.1f%%)@,\
     delay: %.2f -> %.2f%s@,funnel: %d generated -> %d checked -> %d accepted@,\
     substitutions: %d (checks %d, rej delay %d, rej atpg %d, rej giveup %d, \
     rej timeout %d, rej cex %d, rolled back %d, rounds %d)@,\
     signatures: %d hits, %d filtered, %d is3 candidates, %d resim nodes@,\
     window: %d checks, %d proved, %d escalated@,\
     guard: %d verified applies, degradation level %d, stopped by %s@,"
    r.initial_power r.final_power (power_reduction_percent r) r.initial_area
    r.final_area (area_reduction_percent r) r.initial_delay r.final_delay
    (match r.delay_constraint with
    | None -> ""
    | Some d -> Printf.sprintf " (constraint %.2f)" d)
    r.candidates_generated r.checks_run r.substitutions r.substitutions
    r.checks_run r.rejected_by_delay r.rejected_by_atpg r.rejected_by_giveup
    r.rejected_by_timeout r.rejected_by_cex r.rolled_back r.rounds
    r.sig_hits r.sig_filtered r.is3_candidates r.sig_resim_nodes
    r.window_checks r.window_proved r.window_escalated
    r.verified_applies r.degradation_level r.stopped_by;
  (match (r.initial_glitch_power, r.final_glitch_power) with
  | Some gi, Some gf ->
    Format.fprintf fmt "glitch power (timed, %s cost): %.4f -> %.4f@,"
      r.cost_model gi gf
  | _ -> ());
  (match r.giveup_breakdown with
  | [] -> ()
  | breakdown ->
    Format.fprintf fmt "giveups:";
    List.iter (fun (k, n) -> Format.fprintf fmt " %s=%d" k n) breakdown;
    Format.fprintf fmt "@,");
  List.iter
    (fun (k, st) ->
      Format.fprintf fmt "  %s: %d accepted, power %.4f, area %.0f@,"
        (Subst.klass_name k) st.accepted st.power_gain st.area_gain)
    r.by_class;
  Format.fprintf fmt "phases:";
  List.iter
    (fun (n, s) -> Format.fprintf fmt " %s %.3fs" n s)
    r.phase_seconds;
  Format.fprintf fmt "@,jobs: %d, cpu: %.2fs@]" r.jobs r.cpu_seconds

let report_to_json r =
  let open Obs.Json in
  Obj
    [
      ("initial_power", Float r.initial_power);
      ("final_power", Float r.final_power);
      ("power_reduction_percent", Float (power_reduction_percent r));
      ("initial_area", Float r.initial_area);
      ("final_area", Float r.final_area);
      ("area_reduction_percent", Float (area_reduction_percent r));
      ("initial_delay", Float r.initial_delay);
      ("final_delay", Float r.final_delay);
      ( "delay_constraint",
        match r.delay_constraint with None -> Null | Some d -> Float d );
      ("cost_model", String r.cost_model);
      ( "initial_glitch_power",
        match r.initial_glitch_power with None -> Null | Some g -> Float g );
      ( "final_glitch_power",
        match r.final_glitch_power with None -> Null | Some g -> Float g );
      ("substitutions", Int r.substitutions);
      ( "by_class",
        Obj
          (List.map
             (fun (k, st) ->
               ( Subst.klass_name k,
                 Obj
                   [
                     ("accepted", Int st.accepted);
                     ("power_gain", Float st.power_gain);
                     ("area_gain", Float st.area_gain);
                   ] ))
             r.by_class) );
      ( "funnel",
        Obj
          [
            ("candidates_generated", Int r.candidates_generated);
            ("checks_run", Int r.checks_run);
            ("accepted", Int r.substitutions);
            ("rejected_by_delay", Int r.rejected_by_delay);
            ("rejected_by_atpg", Int r.rejected_by_atpg);
            ("rejected_by_giveup", Int r.rejected_by_giveup);
            ("rejected_by_timeout", Int r.rejected_by_timeout);
            ("rejected_by_cex", Int r.rejected_by_cex);
            ("sig_hits", Int r.sig_hits);
            ("sig_filtered", Int r.sig_filtered);
            ("sig_resim_nodes", Int r.sig_resim_nodes);
            ("is3_candidates", Int r.is3_candidates);
            ("rolled_back", Int r.rolled_back);
            ("window_checks", Int r.window_checks);
            ("window_proved", Int r.window_proved);
            ("window_escalated", Int r.window_escalated);
          ] );
      ( "guard",
        Obj
          [
            ("verified_applies", Int r.verified_applies);
            ("rolled_back", Int r.rolled_back);
            ("degradation_level", Int r.degradation_level);
            ("stopped_by", String r.stopped_by);
            ( "giveup_breakdown",
              Obj (List.map (fun (k, n) -> (k, Int n)) r.giveup_breakdown) );
          ] );
      ("rounds", Int r.rounds);
      ("jobs", Int r.jobs);
      ( "phase_seconds",
        Obj (List.map (fun (n, s) -> (n, Float s)) r.phase_seconds) );
      ("cpu_seconds", Float r.cpu_seconds);
    ]
