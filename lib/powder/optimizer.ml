module Circuit = Netlist.Circuit
module Engine = Sim.Engine
module Estimator = Power.Estimator
module Timing = Sta.Timing
module Equiv = Atpg.Equiv

type delay_mode = Unconstrained | Keep_initial | Ratio of float | Absolute of float

type config = {
  words : int;
  seed : int64;
  input_prob : string -> float;
  repeat : int;
  preselect : int;
  delay : delay_mode;
  classes : Subst.klass list;
  per_target : int;
  pool_limit : int;
  backtrack_limit : int;
  exhaustive_limit : int;
  check_engine : [ `Sat | `Podem | `Bdd ];
  max_substitutions : int;
  max_rounds : int;
}

let default_config =
  {
    words = 16;
    seed = 0xC0FFEEL;
    input_prob = (fun _ -> 0.5);
    repeat = 8;
    preselect = 12;
    delay = Unconstrained;
    classes = Subst.all_klasses;
    per_target = 4;
    pool_limit = 16;
    backtrack_limit = 10_000;
    exhaustive_limit = 12;
    check_engine = `Sat;
    max_substitutions = 10_000;
    max_rounds = 200;
  }

module Trace = Obs.Trace
module Metrics = Obs.Metrics

type class_stats = { accepted : int; power_gain : float; area_gain : float }

type report = {
  initial_power : float;
  final_power : float;
  initial_area : float;
  final_area : float;
  initial_delay : float;
  final_delay : float;
  delay_constraint : float option;
  substitutions : int;
  by_class : (Subst.klass * class_stats) list;
  candidates_generated : int;
  checks_run : int;
  rejected_by_delay : int;
  rejected_by_atpg : int;
  rejected_by_giveup : int;
  rejected_by_cex : int;
      (** screened out by accumulated counterexample patterns, without
          running an exact proof *)
  rounds : int;
  phase_seconds : (string * float) list;
  cpu_seconds : float;
}

let phase_names = [ "generate"; "rank"; "refine-pgc"; "exact-check"; "apply"; "sta" ]

(* registry mirrors of the funnel counters, for [--metrics] dumps *)
let m_candidates = Metrics.counter "powder.candidates.generated"
let m_checks = Metrics.counter "powder.checks"
let m_accepted = Metrics.counter "powder.accepted"
let m_rej_delay = Metrics.counter "powder.rejected.delay"
let m_rej_atpg = Metrics.counter "powder.rejected.atpg"
let m_rej_giveup = Metrics.counter "powder.rejected.giveup"
let m_rej_cex = Metrics.counter "powder.rejected.cex"
let m_rounds = Metrics.counter "powder.rounds"

let power_reduction_percent r =
  if r.initial_power <= 0.0 then 0.0
  else 100.0 *. (r.initial_power -. r.final_power) /. r.initial_power

let area_reduction_percent r =
  if r.initial_area <= 0.0 then 0.0
  else 100.0 *. (r.initial_area -. r.final_area) /. r.initial_area

(* a candidate is stale once any node it references died *)
let still_valid circ (s : Subst.t) =
  let node_ok id = Circuit.is_live circ id in
  let target_ok =
    match s.Subst.target with
    | Subst.Stem a -> node_ok a && Circuit.num_fanouts circ a > 0
    | Subst.Branch { sink; pin } ->
      node_ok sink
      &&
      (match Circuit.kind circ sink with
      | Circuit.Cell (_, fs) -> pin >= 0 && pin < Array.length fs
      | Circuit.Po _ -> pin = 0
      | Circuit.Pi | Circuit.Const _ -> false)
  in
  let source_ok =
    match s.Subst.source with
    | Subst.Signal b | Subst.Inverted b -> node_ok b
    | Subst.Gate2 (_, b, c) -> node_ok b && node_ok c
  in
  target_ok && source_ok

let optimize ?(config = default_config) circ =
  let t0 = Obs.Clock.now () in
  (* span histograms are process-global; remember their current sums so
     this run's phase breakdown is a delta, not a lifetime total *)
  let phase_base = List.map (fun n -> (n, Trace.span_seconds n)) phase_names in
  let analyze_timed ?required_time c =
    Trace.with_span "sta" (fun () -> Timing.analyze ?required_time c)
  in
  let log = Logs.debug in
  let eng = Engine.create circ ~words:config.words in
  let prob_of pi = config.input_prob (Circuit.name circ pi) in
  Engine.randomize eng ~input_probs:prob_of (Sim.Rng.create config.seed);
  let est = Estimator.create eng in
  let initial_power = Estimator.total est in
  let initial_area = Circuit.area circ in
  let initial_delay = Timing.circuit_delay (analyze_timed circ) in
  let constraint_ =
    match config.delay with
    | Unconstrained -> None
    | Keep_initial -> Some initial_delay
    | Ratio r -> Some (initial_delay *. (1.0 +. r))
    | Absolute d -> Some d
  in
  let sta = ref (analyze_timed ?required_time:constraint_ circ) in
  let stats = Hashtbl.create 4 in
  List.iter
    (fun k -> Hashtbl.add stats k { accepted = 0; power_gain = 0.0; area_gain = 0.0 })
    Subst.all_klasses;
  let candidates_generated = ref 0 in
  let checks = ref 0 in
  let rej_delay = ref 0 in
  let rej_atpg = ref 0 in
  let rej_giveup = ref 0 in
  let rej_cex = ref 0 in
  let substitutions = ref 0 in
  let rounds = ref 0 in
  (* Counterexample pattern set: every refuted candidate contributes its
     distinguishing vector, which then screens future candidates for
     free (classic simulation/SAT refinement). *)
  let cex_words = 4 in
  let cex_eng = Engine.create circ ~words:cex_words in
  Engine.randomize cex_eng ~input_probs:prob_of
    (Sim.Rng.create (Int64.add config.seed 77L));
  let cex_cursor = ref 0 in
  let inject_cex assignment =
    let k = !cex_cursor mod (64 * cex_words) in
    incr cex_cursor;
    let word = k / 64 and bit = k mod 64 in
    List.iter
      (fun pi ->
        match List.assoc_opt (Circuit.name circ pi) assignment with
        | None -> ()
        | Some v ->
          let values = Array.copy (Engine.value cex_eng pi) in
          let mask = Int64.shift_left 1L bit in
          values.(word) <-
            (if v then Int64.logor values.(word) mask
             else Int64.logand values.(word) (Int64.lognot mask));
          Engine.set_value cex_eng pi values)
      (Circuit.pis circ);
    Engine.resim_all cex_eng
  in
  let cand_config =
    {
      Candidates.classes = config.classes;
      per_target = config.per_target;
      pool_limit = config.pool_limit;
      require_positive = true;
    }
  in
  (* Attempt the best pre-selected candidate from the pool.  All tried
     or discarded candidates are marked used, so progress is guaranteed.
     Returns [`Accepted], [`Tried] (pool consumed but nothing accepted
     yet) or [`Exhausted]. *)
  let try_pick pool used ranked_cache =
    let compute_ranked () =
      (* rank the still-valid unused candidates by fresh PG_A+PG_B *)
      Trace.with_span "rank" (fun () ->
          let ranked = ref [] in
          Array.iteri
            (fun i (s, _) ->
              if (not used.(i)) && still_valid circ s
                 && not (Subst.creates_cycle circ s)
              then begin
                let g = Subst.gain_ab est s in
                if Subst.total_gain g > 0.0 then ranked := (i, s, g) :: !ranked
                else used.(i) <- true
              end
              else used.(i) <- true)
            pool;
          List.sort
            (fun (_, _, g1) (_, _, g2) ->
              Float.compare (Subst.total_gain g2) (Subst.total_gain g1))
            !ranked)
    in
    let ranked =
      match ranked_cache with
      | Some r -> List.filter (fun (i, _, _) -> not used.(i)) r
      | None -> compute_ranked ()
    in
    match ranked with
    | [] -> `Exhausted
    | _ ->
      let top = List.filteri (fun k _ -> k < config.preselect) ranked in
      (* re-estimate PG_C for the pre-selected candidates (Section 3.5) *)
      let refined =
        Trace.with_span "refine-pgc" (fun () ->
            List.filter_map
              (fun (i, s, _) ->
                let g = Subst.gain_full est s in
                if Subst.total_gain g > 0.0 then Some (i, s, g)
                else begin
                  used.(i) <- true;
                  None
                end)
              top)
      in
      let class_rank s =
        match Subst.klass s with
        | Subst.Is2 -> 0
        | Subst.Os2 -> 1
        | Subst.Os3 -> 2
        | Subst.Is3 -> 3
      in
      let refined =
        List.sort
          (fun (_, s1, g1) (_, s2, g2) ->
            let c = Float.compare (Subst.total_gain g2) (Subst.total_gain g1) in
            if c <> 0 then c else Int.compare (class_rank s1) (class_rank s2))
          refined
      in
      (* rank = position in the refined best-first order, recorded on
         every accept/reject event so the trace shows how deep into the
         pre-selection each verdict happened *)
      let refined = List.mapi (fun rank (i, s, g) -> (rank, i, s, g)) refined in
      let reject rank s reason =
        Trace.event_f "reject" (fun () ->
            [
              ("reason", Trace.String reason);
              ("rank", Trace.Int rank);
              ("cand", Trace.String (Subst.describe circ s));
            ])
      in
      let rec attempt = function
        | [] -> `Tried ranked
        | (rank, i, s, g) :: rest ->
          used.(i) <- true;
          let delay_fine =
            match constraint_ with
            | None -> true
            | Some _ -> Subst.delay_ok !sta s
          in
          if not delay_fine then begin
            incr rej_delay;
            reject rank s "delay";
            attempt rest
          end
          else if Check.refuted_on_patterns cex_eng s then begin
            incr rej_cex;
            reject rank s "cex";
            attempt rest
          end
          else begin
            incr checks;
            let verdict =
              Trace.with_span "exact-check" (fun () ->
                  match
                    Check.permissible ~backtrack_limit:config.backtrack_limit
                      ~exhaustive_limit:config.exhaustive_limit
                      ~engine:config.check_engine circ s
                  with
                  | v -> v
                  | exception Invalid_argument _ -> Check.Gave_up)
            in
            match verdict with
            | Check.Permissible ->
              let power_before = Estimator.total est in
              let area_before = Circuit.area circ in
              let desc = if Trace.active () then Subst.describe circ s else "" in
              Trace.with_span "apply" (fun () ->
                  let src = Subst.apply circ s in
                  Estimator.update_after_edit est src;
                  Engine.resim_tfo cex_eng src);
              sta := analyze_timed ?required_time:constraint_ circ;
              incr substitutions;
              let realized = power_before -. Estimator.total est in
              let area_delta = area_before -. Circuit.area circ in
              let k = Subst.klass s in
              let st = Hashtbl.find stats k in
              Hashtbl.replace stats k
                {
                  accepted = st.accepted + 1;
                  power_gain = st.power_gain +. realized;
                  area_gain = st.area_gain +. area_delta;
                };
              Trace.event_f "accept" (fun () ->
                  [
                    ("class", Trace.String (Subst.klass_name k));
                    ("rank", Trace.Int rank);
                    ("est_gain", Trace.Float (Subst.total_gain g));
                    ("realized_gain", Trace.Float realized);
                    ("area_delta", Trace.Float area_delta);
                    ("cand", Trace.String desc);
                  ]);
              log (fun m ->
                  m "accepted %s (gain %.4f)" (Subst.describe circ s)
                    (Subst.total_gain g));
              `Accepted
            | Check.Not_permissible cex ->
              incr rej_atpg;
              reject rank s "atpg";
              inject_cex cex;
              attempt rest
            | Check.Gave_up ->
              incr rej_giveup;
              reject rank s "giveup";
              attempt rest
          end
      in
      attempt refined
  in
  let continue_ = ref true in
  while
    !continue_ && !rounds < config.max_rounds
    && !substitutions < config.max_substitutions
  do
    incr rounds;
    let pool =
      Trace.with_span "generate" (fun () ->
          Array.of_list (Candidates.generate ~config:cand_config est))
    in
    candidates_generated := !candidates_generated + Array.length pool;
    Trace.event "round"
      [ ("round", Trace.Int !rounds); ("pool", Trace.Int (Array.length pool)) ];
    if Array.length pool = 0 then continue_ := false
    else begin
      let used = Array.make (Array.length pool) false in
      let accepted_this_round = ref 0 in
      let batch_active = ref true in
      let ranked_cache = ref None in
      while
        !batch_active
        && !accepted_this_round < config.repeat
        && !substitutions < config.max_substitutions
      do
        match try_pick pool used !ranked_cache with
        | `Accepted ->
          incr accepted_this_round;
          ranked_cache := None (* circuit changed; re-rank *)
        | `Tried ranked -> ranked_cache := Some ranked
        | `Exhausted -> batch_active := false
      done;
      if !accepted_this_round = 0 then continue_ := false
    end
  done;
  let final_sta = analyze_timed circ in
  Metrics.add m_candidates !candidates_generated;
  Metrics.add m_checks !checks;
  Metrics.add m_accepted !substitutions;
  Metrics.add m_rej_delay !rej_delay;
  Metrics.add m_rej_atpg !rej_atpg;
  Metrics.add m_rej_giveup !rej_giveup;
  Metrics.add m_rej_cex !rej_cex;
  Metrics.add m_rounds !rounds;
  let phase_seconds =
    List.map (fun (n, base) -> (n, Trace.span_seconds n -. base)) phase_base
  in
  {
    initial_power;
    final_power = Estimator.total est;
    initial_area;
    final_area = Circuit.area circ;
    initial_delay;
    final_delay = Timing.circuit_delay final_sta;
    delay_constraint = constraint_;
    substitutions = !substitutions;
    by_class = List.map (fun k -> (k, Hashtbl.find stats k)) Subst.all_klasses;
    candidates_generated = !candidates_generated;
    checks_run = !checks;
    rejected_by_delay = !rej_delay;
    rejected_by_atpg = !rej_atpg;
    rejected_by_giveup = !rej_giveup;
    rejected_by_cex = !rej_cex;
    rounds = !rounds;
    phase_seconds;
    cpu_seconds = Obs.Clock.now () -. t0;
  }

let pp_report fmt r =
  Format.fprintf fmt
    "@[<v>power: %.4f -> %.4f (%.1f%%)@,area: %.0f -> %.0f (%.1f%%)@,\
     delay: %.2f -> %.2f%s@,funnel: %d generated -> %d checked -> %d accepted@,\
     substitutions: %d (checks %d, rej delay %d, rej atpg %d, rej giveup %d, \
     rej cex %d, rounds %d)@,"
    r.initial_power r.final_power (power_reduction_percent r) r.initial_area
    r.final_area (area_reduction_percent r) r.initial_delay r.final_delay
    (match r.delay_constraint with
    | None -> ""
    | Some d -> Printf.sprintf " (constraint %.2f)" d)
    r.candidates_generated r.checks_run r.substitutions r.substitutions
    r.checks_run r.rejected_by_delay r.rejected_by_atpg r.rejected_by_giveup
    r.rejected_by_cex r.rounds;
  List.iter
    (fun (k, st) ->
      Format.fprintf fmt "  %s: %d accepted, power %.4f, area %.0f@,"
        (Subst.klass_name k) st.accepted st.power_gain st.area_gain)
    r.by_class;
  Format.fprintf fmt "phases:";
  List.iter
    (fun (n, s) -> Format.fprintf fmt " %s %.3fs" n s)
    r.phase_seconds;
  Format.fprintf fmt "@,cpu: %.2fs@]" r.cpu_seconds

let report_to_json r =
  let open Obs.Json in
  Obj
    [
      ("initial_power", Float r.initial_power);
      ("final_power", Float r.final_power);
      ("power_reduction_percent", Float (power_reduction_percent r));
      ("initial_area", Float r.initial_area);
      ("final_area", Float r.final_area);
      ("area_reduction_percent", Float (area_reduction_percent r));
      ("initial_delay", Float r.initial_delay);
      ("final_delay", Float r.final_delay);
      ( "delay_constraint",
        match r.delay_constraint with None -> Null | Some d -> Float d );
      ("substitutions", Int r.substitutions);
      ( "by_class",
        Obj
          (List.map
             (fun (k, st) ->
               ( Subst.klass_name k,
                 Obj
                   [
                     ("accepted", Int st.accepted);
                     ("power_gain", Float st.power_gain);
                     ("area_gain", Float st.area_gain);
                   ] ))
             r.by_class) );
      ( "funnel",
        Obj
          [
            ("candidates_generated", Int r.candidates_generated);
            ("checks_run", Int r.checks_run);
            ("accepted", Int r.substitutions);
            ("rejected_by_delay", Int r.rejected_by_delay);
            ("rejected_by_atpg", Int r.rejected_by_atpg);
            ("rejected_by_giveup", Int r.rejected_by_giveup);
            ("rejected_by_cex", Int r.rejected_by_cex);
          ] );
      ("rounds", Int r.rounds);
      ( "phase_seconds",
        Obj (List.map (fun (n, s) -> (n, Float s)) r.phase_seconds) );
      ("cpu_seconds", Float r.cpu_seconds);
    ]
