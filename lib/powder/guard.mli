(** Resilience layer around the POWDER optimizer.

    The optimizer mutates the one live netlist in place and trusts every
    accepted substitution forever; a single wrong apply (or a forged
    permissibility verdict) silently corrupts the circuit and every
    later result.  The guard wraps each apply in a transaction: the
    substitution is applied under a {!Netlist.Circuit} undo journal,
    independently re-verified by a guard-private bit-parallel simulation
    engine (fresh seed, so its patterns are uncorrelated with the
    optimizer's) plus [Circuit.validate], and rolled back on any
    mismatch instead of poisoning the run.

    The error taxonomy below also covers the deadline and budget
    machinery threaded through {!Check}, [Atpg.Sat] and [Atpg.Podem];
    each error increments a [powder.guard.*] counter in
    {!Obs.Metrics}. *)

type error =
  | Check_timeout       (** an exact check's wall-clock deadline expired *)
  | Apply_mismatch      (** post-apply PO signatures differ from pre-apply *)
  | Validation_failure  (** [Circuit.validate] failed after an apply *)
  | Budget_exhausted    (** a round- or run-scope time budget ran out *)

val error_name : error -> string
(** Stable snake_case name, used as metric suffix and in reports. *)

val pp_error : Format.formatter -> error -> unit

val count_error : error -> unit
(** Increment the matching [powder.guard.errors.*] counter. *)

(** {1 Fault injection (test-only)}

    A one-shot hook: {!inject} arms a fault, and the first code path
    that reaches the matching {!take_fault} consumes it.  [Forge_verdict]
    is taken by the optimizer's check wrapper (a refuted candidate is
    reported permissible, so the guard must catch the bad apply);
    [Corrupt_apply] is taken inside {!transactional_apply} (the first
    PO's driver is inverted after the apply); [Expire_deadline] is taken
    where the optimizer mints a per-check deadline (it gets one that is
    already expired). *)

type fault = Forge_verdict | Corrupt_apply | Expire_deadline

val inject : fault -> unit
val clear_injection : unit -> unit
val take_fault : fault -> bool
(** True iff this exact fault is armed; consumes it. *)

(** {1 Transactional apply} *)

type verifier
(** A guard-private simulation engine over the optimizer's circuit,
    holding the PO signatures expected before the next apply. *)

val make_verifier :
  ?words:int ->
  seed:int64 ->
  input_probs:(Netlist.Circuit.node_id -> float) ->
  Netlist.Circuit.t ->
  verifier

val refresh : verifier -> unit
(** Re-simulate and re-cache expected signatures; call after any
    circuit change made outside {!transactional_apply} (e.g. the
    checkpoint canonicalization barrier). *)

type apply_outcome =
  | Applied of Netlist.Circuit.node_id
      (** committed; the payload is the substitution's source node,
          exactly as [Subst.apply] returns it *)
  | Rolled_back of error

val transactional_apply :
  verifier -> Netlist.Circuit.t -> Subst.t -> apply_outcome
(** Apply [s] under a journal, re-verify, and commit or roll back.
    Verification compares PO signatures on the verifier's pattern set —
    exact on those patterns (a permissible substitution can never
    change them), probabilistic against an adversarially wrong verdict
    whose distinguishing vectors lie outside the pattern set.  On
    rollback the circuit passes [Circuit.validate] and is
    PO-equivalent to its pre-apply state, and the verifier is
    re-synchronized. *)
