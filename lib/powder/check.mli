(** Exact permissibility check for one substitution (the paper's
    [check_candidate]).

    Instead of comparing two full circuit copies, an {e incremental
    miter} duplicates only the cone the substitution actually changes —
    the target's transitive fanout — and XORs the affected primary
    outputs against their originals; every untouched gate is shared
    between the two sides.  The miter output is then proved constant 0
    (permissible) by exhaustive simulation when the circuit is narrow,
    or by the CDCL SAT solver (or classic PODEM, for ablation). *)

type verdict =
  | Permissible
  | Not_permissible of (string * bool) list
      (** a distinguishing input vector, as PI-name/value pairs
          (missing PIs are don't-care) — fed back into the optimizer's
          counterexample pattern set *)
  | Gave_up of { engine : string; limit : string }
      (** no answer: [engine] ("sat", "podem", "bdd", or "check" when
          the deadline was already expired on entry) and [limit]
          ("conflicts", "backtracks", "nodes", "deadline") say exactly
          which budget fired *)

val permissible :
  ?backtrack_limit:int ->
  ?exhaustive_limit:int ->
  ?engine:[ `Sat | `Podem | `Bdd ] ->
  ?deadline:Obs.Deadline.t ->
  Netlist.Circuit.t ->
  Subst.t ->
  verdict
(** Engine state and circuit are left untouched.  An already-expired
    [deadline] rejects immediately with [Gave_up] before building the
    miter; otherwise it is threaded into the SAT/PODEM search. *)

val refuted_on_patterns : Sim.Engine.t -> Subst.t -> bool
(** Cheap exact refutation on an engine's current pattern set: true iff
    applying the substitution would flip some primary output on at
    least one simulated pattern.  Used to screen candidates against
    accumulated counterexamples before paying for a full proof. *)
