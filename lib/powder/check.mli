(** Exact permissibility check for one substitution (the paper's
    [check_candidate]).

    Instead of comparing two full circuit copies, an {e incremental
    miter} duplicates only the cone the substitution actually changes —
    the target's transitive fanout — and XORs the affected primary
    outputs against their originals; every untouched gate is shared
    between the two sides.  The miter output is then proved constant 0
    (permissible) by exhaustive simulation when the circuit is narrow,
    or by the CDCL SAT solver (or classic PODEM, for ablation). *)

type verdict =
  | Permissible
  | Not_permissible of (string * bool) list
      (** a distinguishing input vector, as PI-name/value pairs
          (missing PIs are don't-care) — fed back into the optimizer's
          counterexample pattern set *)
  | Gave_up of { engine : string; limit : string }
      (** no answer: [engine] ("sat", "podem", "bdd", or "check" when
          the deadline was already expired on entry) and [limit]
          ("conflicts", "backtracks", "nodes", "deadline") say exactly
          which budget fired *)

val permissible :
  ?backtrack_limit:int ->
  ?exhaustive_limit:int ->
  ?engine:[ `Sat | `Podem | `Bdd ] ->
  ?deadline:Obs.Deadline.t ->
  Netlist.Circuit.t ->
  Subst.t ->
  verdict
(** Engine state and circuit are left untouched.  An already-expired
    [deadline] rejects immediately with [Gave_up] before building the
    miter; otherwise it is threaded into the SAT/PODEM search. *)

type window_verdict =
  | W_proved
      (** proved inside the window — globally sound, no global check
          needed *)
  | W_escalated of [ `Overflow | `Cex | `Gave_up ]
      (** inconclusive: the window overflowed its bounds, found a
          window-local counterexample (possibly spurious), or its
          engine gave up — re-check with {!permissible} *)

val escalation_name : [ `Overflow | `Cex | `Gave_up ] -> string

val windowed :
  ?exhaustive_limit:int ->
  ?deadline:Obs.Deadline.t ->
  max_cut:int ->
  Netlist.Circuit.t ->
  Subst.t ->
  window_verdict
(** Windowed permissibility check: build a window-sized miter around
    the substitution (see {!Atpg.Window}) instead of cloning the whole
    circuit.  [max_cut] is the --window K knob: the window's free-input
    budget.  [W_proved] implies the substitution is globally
    permissible; any [W_escalated] verdict says nothing either way. *)

val refuted_on_patterns : Sim.Engine.t -> Subst.t -> bool
(** Cheap exact refutation on an engine's current pattern set: true iff
    applying the substitution would flip some primary output on at
    least one simulated pattern.  Used to screen candidates against
    accumulated counterexamples before paying for a full proof. *)
