module Circuit = Netlist.Circuit
module Library = Gatelib.Library
module Equiv = Atpg.Equiv

type verdict =
  | Permissible
  | Not_permissible of (string * bool) list
  | Gave_up of { engine : string; limit : string }

let gave_up_sat = function
  | Atpg.Sat.Conflicts -> Gave_up { engine = "sat"; limit = "conflicts" }
  | Atpg.Sat.Deadline -> Gave_up { engine = "sat"; limit = "deadline" }

let gave_up_podem = function
  | Atpg.Podem.Backtracks -> Gave_up { engine = "podem"; limit = "backtracks" }
  | Atpg.Podem.Deadline -> Gave_up { engine = "podem"; limit = "deadline" }

(* Build the incremental miter inside a clone: duplicate the changed
   cone with the substitution applied, XOR affected PO drivers with
   their originals, OR the differences.  Returns the clone and the
   miter-output node, or None when no primary output is affected (the
   substitution is then vacuously permissible). *)
let build circ s =
  let m = Circuit.clone circ in
  let inv = Library.inverter (Circuit.library m) in
  let src =
    match Subst.plan_of m s with
    | Subst.P_existing v -> v
    | Subst.P_new_inv b -> Circuit.add_cell m inv [| b |]
    | Subst.P_new_gate (c, b, d) -> Circuit.add_cell m c [| b; d |]
  in
  let changed =
    match s.Subst.target with
    | Subst.Stem a -> Circuit.tfo m a
    | Subst.Branch { sink; _ } ->
      let t = Circuit.tfo m sink in
      t.(sink) <- true;
      t
  in
  let dup = Hashtbl.create 64 in
  let remap_stem_target =
    match s.Subst.target with Subst.Stem a -> Some a | Subst.Branch _ -> None
  in
  let branch_target =
    match s.Subst.target with
    | Subst.Branch { sink; pin } -> Some (sink, pin)
    | Subst.Stem _ -> None
  in
  Array.iter
    (fun id ->
      if changed.(id) then
        match Circuit.kind m id with
        | Circuit.Cell (c, fs) ->
          let fs' =
            Array.mapi
              (fun pin f ->
                let substituted =
                  (match remap_stem_target with Some a -> f = a | None -> false)
                  ||
                  match branch_target with
                  | Some (sink, p) -> id = sink && pin = p
                  | None -> false
                in
                if substituted then src
                else match Hashtbl.find_opt dup f with Some d -> d | None -> f)
              fs
          in
          Hashtbl.add dup id (Circuit.add_cell m c fs')
        | Circuit.Pi | Circuit.Const _ | Circuit.Po _ -> ())
    (Circuit.topo_order m);
  let diffs =
    List.filter_map
      (fun po ->
        let d = Circuit.po_driver m po in
        (* the PO's driver in the modified circuit: the source when the
           substitution retargets this PO itself, a duplicate when the
           driver lies in the changed cone, otherwise unchanged *)
        let new_driver =
          let directly_retargeted =
            (match remap_stem_target with Some a -> d = a | None -> false)
            ||
            match branch_target with
            | Some (sink, _) -> sink = po
            | None -> false
          in
          if directly_retargeted then Some src
          else Hashtbl.find_opt dup d
        in
        match new_driver with
        | Some d' when d' <> d ->
          Some (Circuit.add_cell m Equiv.xor_cell [| d; d' |])
        | Some _ | None -> None)
      (Circuit.pos m)
  in
  match diffs with
  | [] -> None
  | _ ->
    let rec or_tree = function
      | [ x ] -> x
      | x :: y :: rest -> or_tree (Circuit.add_cell m Equiv.or_cell [| x; y |] :: rest)
      | [] -> assert false
    in
    let out = or_tree diffs in
    ignore (Circuit.add_po m ~name:"incr_miter_out" out);
    Some (m, out)

let check_exhaustive m out =
  let pis = Circuit.pis m in
  let n = List.length pis in
  let words = max 1 ((1 lsl n) / 64) in
  let eng = Sim.Engine.create m ~words in
  Sim.Engine.exhaustive eng;
  let v = Sim.Engine.value eng out in
  let rec first_one j =
    if j >= Array.length v then None
    else if Int64.equal v.(j) 0L then first_one (j + 1)
    else begin
      let bit = ref 0 in
      while
        Int64.equal (Int64.logand (Int64.shift_right_logical v.(j) !bit) 1L) 0L
      do
        incr bit
      done;
      Some ((j * 64) + !bit)
    end
  in
  match first_one 0 with
  | None -> Permissible
  | Some pattern ->
    let pattern = pattern land ((1 lsl n) - 1) in
    Not_permissible
      (List.mapi
         (fun i pi -> (Circuit.name m pi, pattern land (1 lsl i) <> 0))
         pis)

let permissible ?(backtrack_limit = 20_000) ?(exhaustive_limit = 12)
    ?(engine = `Sat) ?(deadline = Obs.Deadline.never) circ s =
  if Obs.Deadline.expired deadline then
    (* Refuse before paying for the miter: an expired budget must reject
       cleanly, never hang inside an engine. *)
    Gave_up { engine = "check"; limit = "deadline" }
  else
    match build circ s with
    | None -> Permissible
    | Some (m, out) ->
      if List.length (Circuit.pis m) <= exhaustive_limit then
        check_exhaustive m out
      else begin
        let assignment_names pairs =
          List.map (fun (pi, v) -> (Circuit.name m pi, v)) pairs
        in
        match engine with
        | `Sat -> (
          match
            Atpg.Cnf.justify_one ~conflict_limit:(10 * backtrack_limit)
              ~deadline m out
          with
          | Atpg.Cnf.Impossible -> Permissible
          | Atpg.Cnf.Justified a -> Not_permissible (assignment_names a)
          | Atpg.Cnf.Gave_up why -> gave_up_sat why)
        | `Podem -> (
          match Atpg.Podem.justify_one ~backtrack_limit ~deadline m out with
          | Atpg.Podem.Untestable -> Permissible
          | Atpg.Podem.Test a -> Not_permissible (assignment_names a)
          | Atpg.Podem.Aborted why -> gave_up_podem why)
        | `Bdd -> (
          match Atpg.Bddcheck.justify_one m out with
          | Atpg.Bddcheck.Impossible -> Permissible
          | Atpg.Bddcheck.Justified a -> Not_permissible (assignment_names a)
          | Atpg.Bddcheck.Gave_up _ -> Gave_up { engine = "bdd"; limit = "nodes" })
      end

type window_verdict =
  | W_proved
  | W_escalated of [ `Overflow | `Cex | `Gave_up ]

let escalation_name = function
  | `Overflow -> "overflow"
  | `Cex -> "cex"
  | `Gave_up -> "giveup"

(* Windowed permissibility (the --window K path).  Instead of cloning
   the whole circuit, build a fresh window-sized miter: cut signals
   become free PIs, the shared slice is copied once, the changed cone is
   duplicated with the substitution applied, and every escape is XORed
   old-vs-new.  Window-UNSAT is globally sound (free cut inputs
   over-approximate reachable behaviour; silent escapes mean nothing
   outside the window can change); window-SAT or give-up is
   inconclusive and must escalate to the global miter. *)
let windowed ?(exhaustive_limit = 12) ?(deadline = Obs.Deadline.never)
    ~max_cut circ s =
  if Obs.Deadline.expired deadline then W_escalated `Gave_up
  else begin
    let module W = Atpg.Window in
    let a = Subst.substituted_signal circ s in
    let plan = Subst.plan_of circ s in
    let support =
      a
      ::
      (match plan with
      | Subst.P_existing v -> [ v ]
      | Subst.P_new_inv b -> [ b ]
      | Subst.P_new_gate (_, b, d) -> [ b; d ])
    in
    let roots =
      match s.Subst.target with
      | Subst.Stem t ->
        List.filter_map
          (fun p ->
            let sk = p.Circuit.sink in
            if Circuit.is_po_node circ sk then None else Some sk)
          (Circuit.fanouts circ t)
        |> List.sort_uniq compare
      | Subst.Branch { sink; _ } ->
        if Circuit.is_po_node circ sink then [] else [ sink ]
    in
    match
      W.extract circ ~roots ~support ~max_cut ~max_volume:(16 * max_cut)
    with
    | None -> W_escalated `Overflow
    | Some w ->
      let lib = Circuit.library circ in
      let m = Circuit.create lib in
      let map = Hashtbl.create 64 in
      let img id = Hashtbl.find map id in
      Array.iter
        (fun id ->
          let n =
            match Circuit.kind circ id with
            | Circuit.Const b ->
              Circuit.add_const m ~name:("w_" ^ Circuit.name circ id) b
            | _ -> Circuit.add_pi m ~name:("w_" ^ Circuit.name circ id)
          in
          Hashtbl.replace map id n)
        w.W.cut;
      Array.iter
        (fun id ->
          match Circuit.kind circ id with
          | Circuit.Cell (c, fs) ->
            Hashtbl.replace map id (Circuit.add_cell m c (Array.map img fs))
          | Circuit.Pi | Circuit.Const _ | Circuit.Po _ -> ())
        w.W.order;
      let src =
        match plan with
        | Subst.P_existing v -> img v
        | Subst.P_new_inv b ->
          Circuit.add_cell m (Library.inverter lib) [| img b |]
        | Subst.P_new_gate (c, b, d) -> Circuit.add_cell m c [| img b; img d |]
      in
      let stem_target =
        match s.Subst.target with Subst.Stem t -> Some t | Subst.Branch _ -> None
      in
      let branch_target =
        match s.Subst.target with
        | Subst.Branch { sink; pin } -> Some (sink, pin)
        | Subst.Stem _ -> None
      in
      let dup = Hashtbl.create 64 in
      Array.iter
        (fun id ->
          if W.is_changed w id then
            match Circuit.kind circ id with
            | Circuit.Cell (c, fs) ->
              let fs' =
                Array.mapi
                  (fun pin f ->
                    let substituted =
                      (match stem_target with
                      | Some t -> f = t
                      | None -> false)
                      ||
                      match branch_target with
                      | Some (sk, p) -> id = sk && pin = p
                      | None -> false
                    in
                    if substituted then src
                    else
                      match Hashtbl.find_opt dup f with
                      | Some d -> d
                      | None -> img f)
                  fs
              in
              Hashtbl.replace dup id (Circuit.add_cell m c fs')
            | Circuit.Pi | Circuit.Const _ | Circuit.Po _ -> ())
        w.W.order;
      let diffs = ref [] in
      Array.iter
        (fun e ->
          match Hashtbl.find_opt dup e with
          | Some d ->
            diffs := Circuit.add_cell m Equiv.xor_cell [| img e; d |] :: !diffs
          | None -> ())
        w.W.escapes;
      (* the target signal itself escaping: a retargeted use outside the
         window (truncated stem fanout, or a PO) sees a -> src directly *)
      let target_escapes =
        match s.Subst.target with
        | Subst.Stem t ->
          List.exists
            (fun p ->
              let sk = p.Circuit.sink in
              Circuit.is_po_node circ sk || not (W.is_internal w sk))
            (Circuit.fanouts circ t)
        | Subst.Branch { sink; _ } -> Circuit.is_po_node circ sink
      in
      if target_escapes then
        diffs := Circuit.add_cell m Equiv.xor_cell [| img a; src |] :: !diffs;
      (match List.rev !diffs with
      | [] -> W_proved
      | ds ->
        let rec or_tree = function
          | [ x ] -> x
          | x :: y :: rest ->
            or_tree (Circuit.add_cell m Equiv.or_cell [| x; y |] :: rest)
          | [] -> assert false
        in
        let out = or_tree ds in
        ignore (Circuit.add_po m ~name:"window_miter_out" out);
        (match Atpg.Window.prove ~exhaustive_limit ~deadline m out with
        | Atpg.Window.Proved -> W_proved
        | Atpg.Window.Refuted _ -> W_escalated `Cex
        | Atpg.Window.Gave_up _ -> W_escalated `Gave_up))
  end

(* Exact refutation on the engine's pattern set: perturb the target to
   carry the source's values, re-simulate the fanout, and look for any
   primary-output difference. *)
let refuted_on_patterns eng s =
  let circ = Sim.Engine.circuit eng in
  let words = Subst.source_words_on eng s in
  let before = Sim.Engine.po_signatures eng in
  let first, perturb =
    match s.Subst.target with
    | Subst.Stem a -> (a, fun e -> Sim.Engine.set_value e a words)
    | Subst.Branch { sink; pin } ->
      (sink, fun e -> Sim.Engine.recompute_with_pin_override e ~sink ~pin words)
  in
  Sim.Engine.with_perturbation eng ~first ~perturb ~measure:(fun eng ->
      List.exists
        (fun (name, old_sig) ->
          match Circuit.find_by_name circ name with
          | None -> false
          | Some po ->
            let now = Sim.Engine.value eng po in
            let rec differs j =
              j < Array.length now
              && ((not (Int64.equal now.(j) old_sig.(j))) || differs (j + 1))
            in
            differs 0)
        before)
