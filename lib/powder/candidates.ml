module Circuit = Netlist.Circuit
module Cell = Gatelib.Cell
module Library = Gatelib.Library
module Engine = Sim.Engine
module Estimator = Power.Estimator

type config = {
  classes : Subst.klass list;
  per_target : int;
  pool_limit : int;
  require_positive : bool;
}

let default_config =
  {
    classes = Subst.all_klasses;
    per_target = 4;
    pool_limit = 16;
    require_positive = true;
  }

let popcount64 x =
  let rec go x acc =
    if Int64.equal x 0L then acc else go (Int64.logand x (Int64.sub x 1L)) (acc + 1)
  in
  go x 0

(* number of care-patterns where the signatures disagree *)
let disagreement sig_a sig_b care =
  let acc = ref 0 in
  for j = 0 to Array.length sig_a - 1 do
    acc :=
      !acc
      + popcount64 (Int64.logand (Int64.logxor sig_a.(j) sig_b.(j)) care.(j))
  done;
  !acc

let matches_on_care sig_a sig_b care =
  let rec go j =
    j >= Array.length sig_a
    || (Int64.equal
          (Int64.logand (Int64.logxor sig_a.(j) sig_b.(j)) care.(j))
          0L
       && go (j + 1))
  in
  go 0

let matches_compl_on_care sig_a sig_b care =
  let rec go j =
    j >= Array.length sig_a
    || (Int64.equal
          (Int64.logand
             (Int64.logxor sig_a.(j) (Int64.lognot sig_b.(j)))
             care.(j))
          0L
       && go (j + 1))
  in
  go 0

let is_signal_node circ id =
  Circuit.is_live circ id
  &&
  match Circuit.kind circ id with
  | Circuit.Pi | Circuit.Cell _ -> true
  | Circuit.Const _ | Circuit.Po _ -> false

type target_info = {
  target : Subst.target;
  a : Circuit.node_id;         (* substituted signal *)
  care : int64 array;
  forbidden : bool array;      (* source base signals that risk a cycle *)
}

let stem_targets circ eng =
  List.filter_map
    (fun id ->
      if Circuit.num_fanouts circ id = 0 then None
      else begin
        let care = Engine.stem_observability eng id in
        let forbidden = Circuit.tfo circ id in
        forbidden.(id) <- true;
        Some { target = Subst.Stem id; a = id; care; forbidden }
      end)
    (Circuit.live_gates circ)

let branch_targets circ eng =
  let out = ref [] in
  Circuit.iter_live circ (fun id ->
      if is_signal_node circ id && Circuit.num_fanouts circ id >= 2 then
        List.iter
          (fun p ->
            let sink = p.Circuit.sink and pin = p.Circuit.pin_index in
            let care = Engine.branch_observability eng ~sink ~pin in
            let forbidden =
              if Circuit.is_po_node circ sink then
                Array.make (Circuit.num_nodes circ) false
              else begin
                let f = Circuit.tfo circ sink in
                f.(sink) <- true;
                f
              end
            in
            out :=
              { target = Subst.Branch { sink; pin }; a = id; care; forbidden }
              :: !out)
          (Circuit.fanouts circ id));
  List.rev !out

(* Sub-span names: the generate phase is the optimizer's dominant cost
   (91% of CPU on the larger circuits), so its interior is attributed
   to named spans a profile can diff — target/observability
   enumeration, the 2-signal signature scan, the 3-signal pair scan,
   and per-target selection. *)
let span_targets = "generate/targets"
let span_targets_stem = "targets/stem-obs"
let span_targets_branch = "targets/branch-obs"
let span_scan2 = "generate/scan2"
let span_scan3 = "generate/scan3"
let span_select = "generate/select"

let generate ?(config = default_config) est =
  let circ = Estimator.circuit est in
  let eng = Estimator.engine est in
  let want k = List.mem k config.classes in
  let signals =
    let acc = ref [] in
    Circuit.iter_live circ (fun id ->
        if is_signal_node circ id then acc := id :: !acc);
    Array.of_list (List.rev !acc)
  in
  let sigs = Array.map (fun id -> Engine.value eng id) signals in
  let gates2 = Library.two_input_cells (Circuit.library circ) in
  let targets =
    Obs.Trace.with_span span_targets (fun () ->
        (if want Subst.Os2 || want Subst.Os3 then
           Obs.Trace.with_span span_targets_stem (fun () ->
               stem_targets circ eng)
         else [])
        @
        if want Subst.Is2 || want Subst.Is3 then
          Obs.Trace.with_span span_targets_branch (fun () ->
              branch_targets circ eng)
        else [])
  in
  let margin = 1e-12 in
  let results = ref [] in
  let consider acc subst =
    let g = Subst.gain_ab est subst in
    if (not config.require_positive) || Subst.total_gain g > margin then
      acc := (subst, g) :: !acc
  in
  List.iter
    (fun ti ->
      let sig_a = Engine.value eng ti.a in
      let acc = ref [] in
      let two_signal_wanted =
        match ti.target with
        | Subst.Stem _ -> want Subst.Os2
        | Subst.Branch _ -> want Subst.Is2
      in
      let three_signal_wanted =
        match ti.target with
        | Subst.Stem _ -> want Subst.Os3
        | Subst.Branch _ -> want Subst.Is3
      in
      if two_signal_wanted then
        Obs.Trace.with_span span_scan2 (fun () ->
            Array.iteri
              (fun i b ->
                if b <> ti.a && not ti.forbidden.(b) then begin
                  if matches_on_care sig_a sigs.(i) ti.care then
                    consider acc
                      { Subst.target = ti.target; source = Subst.Signal b };
                  if matches_compl_on_care sig_a sigs.(i) ti.care then
                    consider acc
                      { Subst.target = ti.target; source = Subst.Inverted b }
                end)
              signals);
      if three_signal_wanted && gates2 <> [] then
        Obs.Trace.with_span span_scan3 (fun () ->
            (* pool: the signals closest to [a] on the care set *)
            let scored = ref [] in
            Array.iteri
              (fun i b ->
                if b <> ti.a && not ti.forbidden.(b) then
                  scored := (disagreement sig_a sigs.(i) ti.care, i) :: !scored)
              signals;
            let pool =
              List.sort compare !scored
              |> List.filteri (fun k _ -> k < config.pool_limit)
              |> List.map snd |> Array.of_list
            in
            Array.iter
              (fun i ->
                Array.iter
                  (fun j ->
                    if i <> j then
                      List.iter
                        (fun (cell : Cell.t) ->
                          let g_words =
                            Engine.apply_gate_words cell.Cell.func
                              [| sigs.(i); sigs.(j) |]
                          in
                          if
                            matches_on_care sig_a g_words ti.care
                            (* skip pairs a plain 2-substitution already
                               covers *)
                            && not (matches_on_care sig_a sigs.(i) ti.care)
                            && not (matches_on_care sig_a sigs.(j) ti.care)
                          then
                            consider acc
                              {
                                Subst.target = ti.target;
                                source =
                                  Subst.Gate2 (cell, signals.(i), signals.(j));
                              })
                        gates2)
                  pool)
              pool);
      (* keep the best per_target candidates for this target *)
      let best =
        Obs.Trace.with_span span_select (fun () ->
            List.sort
              (fun (_, g1) (_, g2) ->
                Float.compare (Subst.total_gain g2) (Subst.total_gain g1))
              !acc
            |> List.filteri (fun k _ -> k < config.per_target))
      in
      results := best @ !results)
    targets;
  Obs.Trace.with_span span_select (fun () ->
      List.sort
        (fun (_, g1) (_, g2) ->
          Float.compare (Subst.total_gain g2) (Subst.total_gain g1))
        !results)
