module Circuit = Netlist.Circuit
module Cell = Gatelib.Cell
module Library = Gatelib.Library
module Engine = Sim.Engine
module Sigstore = Sim.Sigstore
module Estimator = Power.Estimator
module Bits = Logic.Bits

type index_mode = Hash | Scan

type config = {
  classes : Subst.klass list;
  per_target : int;
  pool_limit : int;
  require_positive : bool;
  credit_downstream : bool;
  index : index_mode;
}

let default_config =
  {
    classes = Subst.all_klasses;
    per_target = 4;
    pool_limit = 16;
    require_positive = true;
    credit_downstream = false;
    index = Hash;
  }

(* Number of care positions the 3-signal pool ranks on (see
   [scan_target]); exact when a target's care set is smaller. *)
let pool_rank_bits = 128

type stats = { pairs_hit : int; pairs_filtered : int; is3_candidates : int }

let zero_stats = { pairs_hit = 0; pairs_filtered = 0; is3_candidates = 0 }

let add_stats a b =
  {
    pairs_hit = a.pairs_hit + b.pairs_hit;
    pairs_filtered = a.pairs_filtered + b.pairs_filtered;
    is3_candidates = a.is3_candidates + b.is3_candidates;
  }

(* registry mirrors, merged deterministically from pool tasks *)
let m_sig_hits = Obs.Metrics.counter "sig/hits"
let m_sig_filtered = Obs.Metrics.counter "sig/filtered"
let m_is3_candidates = Obs.Metrics.counter "is3/candidates"

type target_info = {
  target : Subst.target;
  a : Circuit.node_id;         (* substituted signal *)
  care : int64 array;          (* folded: base words @ cex words *)
  forbidden : bool array;      (* source base signals that risk a cycle *)
  forbidden_signals : int;     (* store signals inside [forbidden] *)
}

(* [Circuit.tfo] plus the number of store signals inside the mask:
   counting during the walk keeps the eligible-signal count (needed
   for the [sig/filtered] statistic) O(|TFO|) instead of a per-target
   sweep over the whole store. *)
let tfo_with_signal_count circ store s =
  let marked = Array.make (Circuit.num_nodes circ) false in
  let cnt = ref 0 in
  let rec visit id =
    List.iter
      (fun p ->
        let s' = p.Circuit.sink in
        if Circuit.is_live circ s' && not marked.(s') then begin
          marked.(s') <- true;
          if Sigstore.position store s' >= 0 then incr cnt;
          visit s'
        end)
      (Circuit.fanouts circ id)
  in
  visit s;
  (marked, !cnt)

let mark_self store marked cnt id =
  if not marked.(id) then begin
    marked.(id) <- true;
    if Sigstore.position store id >= 0 then cnt + 1 else cnt
  end
  else cnt

let stem_targets circ store =
  List.filter_map
    (fun id ->
      if Circuit.num_fanouts circ id = 0 then None
      else begin
        let care = Sigstore.stem_care store id in
        let forbidden, cnt = tfo_with_signal_count circ store id in
        let cnt = mark_self store forbidden cnt id in
        Some
          { target = Subst.Stem id; a = id; care; forbidden;
            forbidden_signals = cnt }
      end)
    (Circuit.live_gates circ)

let is_signal_node circ id =
  Circuit.is_live circ id
  &&
  match Circuit.kind circ id with
  | Circuit.Pi | Circuit.Cell _ -> true
  | Circuit.Const _ | Circuit.Po _ -> false

let branch_targets circ store =
  let out = ref [] in
  Circuit.iter_live circ (fun id ->
      if is_signal_node circ id && Circuit.num_fanouts circ id >= 2 then
        List.iter
          (fun p ->
            let sink = p.Circuit.sink and pin = p.Circuit.pin_index in
            let care = Sigstore.branch_care store ~sink ~pin in
            let forbidden, forbidden_signals =
              if Circuit.is_po_node circ sink then
                (Array.make (Circuit.num_nodes circ) false, 0)
              else begin
                let f, cnt = tfo_with_signal_count circ store sink in
                let cnt = mark_self store f cnt sink in
                (f, cnt)
              end
            in
            out :=
              { target = Subst.Branch { sink; pin }; a = id; care; forbidden;
                forbidden_signals }
              :: !out)
          (Circuit.fanouts circ id));
  List.rev !out

(* Total candidate order: gain descending, then purely structural keys.
   Both index modes and every chunking of the parallel fan-out emit the
   same candidate SET; this order makes the emitted LIST identical too,
   so reports and netlists stay byte-identical across [--sig-index] and
   [--jobs]. *)
let target_key = function
  | Subst.Stem a -> (0, a, 0)
  | Subst.Branch { sink; pin } -> (1, sink, pin)

let source_key = function
  | Subst.Signal b -> (0, b, -1, "")
  | Subst.Inverted b -> (1, b, -1, "")
  | Subst.Gate2 (c, x, y) -> (2, x, y, c.Cell.name)

let cand_compare (s1, g1) (s2, g2) =
  let c = Float.compare (Subst.total_gain g2) (Subst.total_gain g1) in
  if c <> 0 then c
  else
    let c = compare (target_key s1.Subst.target) (target_key s2.Subst.target) in
    if c <> 0 then c
    else compare (source_key s1.Subst.source) (source_key s2.Subst.source)

(* Sub-span names: the generate phase is the optimizer's dominant cost,
   so its interior is attributed to named spans a profile can diff —
   target/observability enumeration, the (possibly parallel) signature
   scans, and final selection.  The scan span wraps the whole fan-out
   on the main domain: spans opened inside pool tasks would merge at
   the root and make the profile tree depend on [--jobs]. *)
let span_targets = "generate/targets"
let span_targets_stem = "targets/stem-obs"
let span_targets_branch = "targets/branch-obs"
let span_scan = "generate/scan"
let span_select = "generate/select"

(* Runs a scan stage inline, without a span: [scan_target] may execute
   in a pool task, where an opened span would surface at the root of
   the merged profile tree and make it depend on [--jobs]. *)
let unspanned f = f ()

(* ------------------------------------------------------------------ *)
(* Per-target scans over a frozen store.  Pure reads of store/circuit/
   estimator, so safe to fan out across pool tasks.                    *)
(* ------------------------------------------------------------------ *)

(* Bounded min-[limit] pool of (disagreement, position), lexicographic.
   [limit] is small (default 16), so sorted-array insertion wins over
   anything clever. *)
type minpool = {
  ds : int array;
  ps : int array;
  limit : int;
  mutable n : int;
}

let minpool_create limit =
  { ds = Array.make limit max_int; ps = Array.make limit max_int; limit;
    n = 0 }

(* worst disagreement still admissible (inclusive: position breaks ties) *)
let minpool_threshold mp = if mp.n < mp.limit then max_int else mp.ds.(mp.limit - 1)

let minpool_insert mp d p =
  let enters =
    mp.n < mp.limit
    || d < mp.ds.(mp.limit - 1)
    || (d = mp.ds.(mp.limit - 1) && p < mp.ps.(mp.limit - 1))
  in
  if enters then begin
    let i = ref (min mp.n (mp.limit - 1)) in
    while !i > 0 && (mp.ds.(!i - 1) > d || (mp.ds.(!i - 1) = d && mp.ps.(!i - 1) > p))
    do
      mp.ds.(!i) <- mp.ds.(!i - 1);
      mp.ps.(!i) <- mp.ps.(!i - 1);
      decr i
    done;
    mp.ds.(!i) <- d;
    mp.ps.(!i) <- p;
    if mp.n < mp.limit then mp.n <- mp.n + 1
  end

let scan_target ~config ~store ~est ~gates2 ti =
  let want k = List.mem k config.classes in
  let signals = Sigstore.signals store in
  let nsig = Array.length signals in
  let p_a = Sigstore.position store ti.a in
  assert (p_a >= 0);
  let care = ti.care in
  (* All hot loops below run on the store's packed rows ([Sigstore.irow]
     / [class_icanon]): 62-bit limbs in native ints, so xor / and /
     popcount never box.  They walk [nzh] — the limb indices whose care
     limb is nonzero, densest care first.  Zero-care limbs cannot
     affect masked equality or Hamming distance, and visiting the
     densest limbs first makes the partial distances (and with them
     the pool's abort bounds) grow as fast as possible.  Any fixed
     order yields the same results, so this is pure speed. *)
  let isig = Sigstore.irow store p_a in
  let icare = Bits.pack_words care in
  let nzh =
    let idx = ref [] in
    for h = Array.length icare - 1 downto 0 do
      if icare.(h) <> 0 then idx := h :: !idx
    done;
    let a = Array.of_list !idx in
    (* densest care first, index ascending on ties; the arrays are
       ~20 limbs, so insertion sort on plain ints beats a polymorphic
       sort on key tuples *)
    let pc = Array.map (fun h -> Bits.popcount62 icare.(h)) a in
    for i = 1 to Array.length a - 1 do
      let h = a.(i) and w = pc.(i) in
      let j = ref i in
      while !j > 0 && (pc.(!j - 1) < w || (pc.(!j - 1) = w && a.(!j - 1) > h))
      do
        a.(!j) <- a.(!j - 1);
        pc.(!j) <- pc.(!j - 1);
        decr j
      done;
      a.(!j) <- h;
      pc.(!j) <- w
    done;
    a
  in
  let nh = Array.length nzh in
  (* single pass deciding both polarities: eq ⟺ rows agree on every
     care position, cq ⟺ they disagree on every care position.  [off]
     lets the row live inside a flat concatenation
     ({!Sigstore.icanon_flat}). *)
  let eq_and_compl irow off =
    let eq = ref true and cq = ref true in
    let k = ref 0 in
    while (!eq || !cq) && !k < nh do
      let i = Array.unsafe_get nzh !k in
      let m = Array.unsafe_get icare i in
      let x =
        (Array.unsafe_get isig i lxor Array.unsafe_get irow (off + i))
        land m
      in
      if x <> 0 then eq := false;
      if x <> m then cq := false;
      incr k
    done;
    (!eq, !cq)
  in
  let eq_only irow =
    let rec go k =
      k >= nh
      ||
      let i = Array.unsafe_get nzh k in
      (Array.unsafe_get isig i lxor Array.unsafe_get irow i)
      land Array.unsafe_get icare i
      = 0
      && go (k + 1)
    in
    go 0
  in
  let hamming_prefix lp irow =
    let d = ref 0 in
    for k = 0 to lp - 1 do
      let i = Array.unsafe_get nzh k in
      d :=
        !d
        + Bits.popcount62
            ((Array.unsafe_get isig i lxor Array.unsafe_get irow i)
            land Array.unsafe_get icare i)
    done;
    !d
  in
  let eligible p =
    p <> p_a && not ti.forbidden.(Array.unsafe_get signals p)
  in
  (* Every substitution against the same stem shares Dom(a); compute it
     at most once per target; [gain_ab] mutates the mask in place and
     restores it before returning. *)
  let dom =
    match ti.target with
    | Subst.Stem _ ->
      Some
        (lazy
          (let d = Circuit.dominated_region (Estimator.circuit est) ti.a in
           let m = ref [] in
           Array.iteri (fun i inside -> if inside then m := i :: !m) d;
           (d, Array.of_list (List.rev !m))))
    | Subst.Branch _ -> None
  in
  let margin = 1e-12 in
  (* Upper bound on any candidate's gain against this target, used to
     skip the full [gain_ab] region walk for 1-signal sources that
     positive-gain filtering would discard anyway.  PG_A for a stem is
     the power of Dom(a) minus the kept source cones plus the boundary
     relief; every subtracted term is non-negative, so full-region
     power plus a relief over-count (every fanin edge into the region,
     whatever drives it) bounds PG_A from above.  For a branch PG_A is
     exactly [moved * E(old fanin)], source-independent.  PG_B is at
     most [-moved * E(b)] for a [Signal]/[Inverted] source over [b]
     (a new inverter only adds pin and output load; an existing one
     has the same transition density as [b] up to rounding, absorbed
     by the relative slack below).  So a hit can clear the positive-
     gain margin only when [moved * E(b) < bound] — one cached
     multiply-compare per hit.  Unobservable targets match the whole
     store, and without this test each of those floods pays a region
     walk per hit, which is what made generation quadratic on large
     netlists.  [Gate2] sources keep the exact path (their source
     density is not a cached lookup), and the fast path is off when
     [require_positive] is, since only the final filter makes the
     skip sound. *)
  let circ = Estimator.circuit est in
  let pos_bound =
    lazy
      (let dummy = { Subst.target = ti.target; source = Subst.Signal ti.a } in
       let moved = Subst.moved_load circ dummy in
       let pa =
         match ti.target with
         | Subst.Branch _ ->
           moved
           *. Estimator.transition_prob est
                (Subst.substituted_signal circ dummy)
         | Subst.Stem _ ->
           let d, m =
             match dom with Some l -> Lazy.force l | None -> assert false
           in
           let relief_over = ref 0.0 in
           Array.iter
             (fun v ->
               Array.iteri
                 (fun j f ->
                   relief_over :=
                     !relief_over
                     +. Circuit.pin_cap circ
                          { Circuit.sink = v; pin_index = j }
                        *. Estimator.transition_prob est f)
                 (Circuit.fanins circ v))
             m;
           Estimator.region_power_members est d m +. !relief_over
       in
       (moved, (pa *. (1.0 +. 1e-9)) +. 1e-9))
  in
  let acc = ref [] in
  let consider subst =
    let skip =
      config.require_positive
      && (match subst.Subst.source with
         | Subst.Signal b | Subst.Inverted b ->
           let moved, bound = Lazy.force pos_bound in
           moved *. Estimator.transition_prob est b >= bound
         | Subst.Gate2 _ -> false)
    in
    if not skip then begin
      let credit_downstream = config.credit_downstream in
      let g =
        match dom with
        | Some d -> Subst.gain_ab ~dom:(Lazy.force d) ~credit_downstream est subst
        | None -> Subst.gain_ab ~credit_downstream est subst
      in
      if (not config.require_positive) || Subst.total_gain g > margin then
        acc := (subst, g) :: !acc
    end
  in
  let two_signal_wanted =
    match ti.target with
    | Subst.Stem _ -> want Subst.Os2
    | Subst.Branch _ -> want Subst.Is2
  in
  let three_signal_wanted =
    match ti.target with
    | Subst.Stem _ -> want Subst.Os3
    | Subst.Branch _ -> want Subst.Is3
  in
  (* #{p <> p_a : not forbidden}: every store signal, minus the ones in
     the forbidden set, minus [a] itself when it is not already there
     (stems mark themselves forbidden; branch drivers never are). *)
  let n_eligible =
    nsig - ti.forbidden_signals - (if ti.forbidden.(ti.a) then 0 else 1)
  in
  let ti_is3 = ref 0 in
  let hits2 = ref 0 in
  if two_signal_wanted then
    unspanned (fun () ->
        let emit p ~direct ~inv =
          let b = Array.unsafe_get signals p in
          if direct then begin
            incr hits2;
            consider { Subst.target = ti.target; source = Subst.Signal b }
          end;
          if inv then begin
            incr hits2;
            consider { Subst.target = ti.target; source = Subst.Inverted b }
          end
        in
        match config.index with
        | Scan ->
          (* reference path: test every signal row individually *)
          for p = 0 to nsig - 1 do
            if eligible p then begin
              let direct, inv = eq_and_compl (Sigstore.irow store p) 0 in
              emit p ~direct ~inv
            end
          done
        | Hash ->
          let care_pop =
            Array.fold_left (fun a w -> a + Bits.popcount62 w) 0 icare
          in
          if care_pop = 64 * Sigstore.words store then begin
            (* full care: masked equality is exact row equality, so
               the only class that can match (either polarity —
               classes unify complements) is the target's own.  Every
               other class is decided without a row test, which is
               what keeps fully observable targets O(|class|). *)
            let tf = Sigstore.member_complemented store p_a in
            Array.iter
              (fun p ->
                if eligible p then begin
                  let f = Sigstore.member_complemented store p in
                  emit p ~direct:(f = tf) ~inv:(f <> tf)
                end)
              (Sigstore.class_members store (Sigstore.class_of store p_a))
          end
          else begin
            (* class path: one (eq, compl-eq) test per compatibility
               class decides for every member at once *)
            let flat = Sigstore.icanon_flat store in
            let stride = Sigstore.icanon_stride store in
            for c = 0 to Sigstore.num_classes store - 1 do
              let eq, cq = eq_and_compl flat (c * stride) in
              if eq || cq then
                Array.iter
                  (fun p ->
                    if eligible p then
                      let f = Sigstore.member_complemented store p in
                      emit p
                        ~direct:(if f then cq else eq)
                        ~inv:(if f then eq else cq))
                  (Sigstore.class_members store c)
            done
          end);
  if three_signal_wanted && gates2 <> [] then
    unspanned (fun () ->
        (* pool: the signals closest to [a], by (masked disagreement,
           position).  Disagreement is counted on a deterministic
           prefix of the care set: the densest care limbs covering at
           least [pool_rank_bits] care positions (all of them when the
           care set is smaller).  Preselection is heuristic — exact
           compatibility is still decided on the full care set by the
           pair conflict scan and the ATPG check — and the prefix is a
           pure function of the target, so both index modes and every
           chunking rank identically. *)
        let mp = minpool_create config.pool_limit in
        let suffix = Array.make (nh + 1) 0 in
        for k = nh - 1 downto 0 do
          suffix.(k) <- suffix.(k + 1) + Bits.popcount62 icare.(nzh.(k))
        done;
        let care_pop = suffix.(0) in
        let lp =
          let want = min pool_rank_bits care_pop in
          let l = ref 0 in
          while care_pop - suffix.(!l) < want do incr l done;
          !l
        in
        let covered = care_pop - suffix.(lp) in
        (match config.index with
        | Scan ->
          for p = 0 to nsig - 1 do
            if eligible p then
              minpool_insert mp (hamming_prefix lp (Sigstore.irow store p)) p
          done
        | Hash ->
          (* Score once per class; a complemented member\'s disagreement
             is [covered - d].  The partial sum is monotone, so a class
             aborts as soon as neither polarity can still reach the
             pool: the plus side needs [d <= threshold], the minus side
             needs its tight lower bound [prefix_care(k) - d] to stay
             within it.  The polarity flags come from the store
             (membership only); scoring a class whose relevant members
             all turn out ineligible wastes a few limbs but inserts
             nothing, so the pool is unchanged. *)
          let flat = Sigstore.icanon_flat store in
          let stride = Sigstore.icanon_stride store in
          (* target rows gathered into prefix order once per target:
             the scoring loops then walk three small contiguous arrays
             plus one strided read of [flat] *)
          let gidx = Array.sub nzh 0 lp in
          let gsig = Array.map (fun i -> isig.(i)) gidx in
          let gcare = Array.map (fun i -> icare.(i)) gidx in
          for c = 0 to Sigstore.num_classes store - 1 do
            let has_plus = Sigstore.class_has_plus store c in
            let has_minus = Sigstore.class_has_minus store c in
            if has_plus || has_minus then begin
              let off = c * stride in
              let thr = minpool_threshold mp in
              let d = ref 0 in
              let viable = ref true in
              (if has_minus then begin
                 (* two-sided abort; the minus side's tight lower bound
                    is [prefix_care(k) - d] *)
                 let k = ref 0 in
                 while !viable && !k < lp do
                   let i = Array.unsafe_get gidx !k in
                   d :=
                     !d
                     + Bits.popcount62
                         ((Array.unsafe_get gsig !k
                          lxor Array.unsafe_get flat (off + i))
                         land Array.unsafe_get gcare !k);
                   incr k;
                   let plus_ok = has_plus && !d <= thr in
                   let minus_ok = care_pop - (!d + suffix.(!k)) <= thr in
                   viable := plus_ok || minus_ok
                 done
               end
               else begin
                 (* plus-only class (the common case): the partial
                    distance is monotone, so abort purely on
                    [d > threshold] *)
                 let k = ref 0 in
                 while !d <= thr && !k < lp do
                   let i = Array.unsafe_get gidx !k in
                   d :=
                     !d
                     + Bits.popcount62
                         ((Array.unsafe_get gsig !k
                          lxor Array.unsafe_get flat (off + i))
                         land Array.unsafe_get gcare !k);
                   incr k
                 done;
                 viable := !d <= thr
               end);
              if !viable then
                Array.iter
                  (fun p ->
                    if eligible p then
                      let dm =
                        if Sigstore.member_complemented store p then
                          covered - !d
                        else !d
                      in
                      minpool_insert mp dm p)
                  (Sigstore.class_members store c)
            end
          done);
        let pool = Array.sub mp.ps 0 mp.n in
        (* rows compressed to the nonzero-care halves, plus the
           target\'s required output per care position: f1 = care
           positions where [a] is 1, f0 = where it is 0 *)
        let compress src = Array.map (fun i -> Array.unsafe_get src i) nzh in
        let crows = Array.map (fun p -> compress (Sigstore.irow store p)) pool in
        let self2 = Array.map (fun p -> eq_only (Sigstore.irow store p)) pool in
        let ones = Bits.limb_mask in
        let f1 = Array.map (fun i -> isig.(i) land icare.(i)) nzh in
        let f0 = Array.map (fun i -> (isig.(i) lxor ones) land icare.(i)) nzh in
        let cells =
          Array.of_list
            (List.map
               (fun (cell : Cell.t) ->
                 (cell, Int64.to_int (Logic.Tt.word cell.Cell.func) land 0xF))
               gates2)
        in
        let is_branch =
          match ti.target with Subst.Branch _ -> true | Subst.Stem _ -> false
        in
        let is3 = ref 0 in
        (* Conflict scan: a pair (x, y) partitions the care positions
           into the four input classes k = x + 2y.  [seen1]/[seen0]
           record which classes contain a care position where [a] is
           1/0.  A class present on both sides rules out EVERY cell at
           once (no single output bit fits), so the word loop aborts on
           the first conflict; otherwise cell [code] matches exactly
           when it outputs 1 on the seen-1 classes and 0 on the seen-0
           ones: [code land (seen1 lor seen0) = seen1].  This decides
           all [gates2] in one pass over the pair\'s words and emits, in
           [gates2] order, the same matches as evaluating each cell. *)
        for i = 0 to Array.length pool - 1 do
          if not self2.(i) then
            for j = 0 to Array.length pool - 1 do
              if j <> i && not self2.(j) then begin
                let ri = crows.(i) and rj = crows.(j) in
                let seen1 = ref 0 and seen0 = ref 0 in
                let k = ref 0 in
                while !seen1 land !seen0 = 0 && !k < nh do
                  let x = Array.unsafe_get ri !k
                  and y = Array.unsafe_get rj !k in
                  let f1w = Array.unsafe_get f1 !k
                  and f0w = Array.unsafe_get f0 !k in
                  let nx = x lxor ones and ny = y lxor ones in
                  let c0 = nx land ny
                  and c1 = x land ny
                  and c2 = nx land y
                  and c3 = x land y in
                  let nonz m = if m = 0 then 0 else 1 in
                  seen1 :=
                    !seen1
                    lor nonz (c0 land f1w)
                    lor (nonz (c1 land f1w) lsl 1)
                    lor (nonz (c2 land f1w) lsl 2)
                    lor (nonz (c3 land f1w) lsl 3);
                  seen0 :=
                    !seen0
                    lor nonz (c0 land f0w)
                    lor (nonz (c1 land f0w) lsl 1)
                    lor (nonz (c2 land f0w) lsl 2)
                    lor (nonz (c3 land f0w) lsl 3);
                  incr k
                done;
                if !seen1 land !seen0 = 0 then begin
                  let pinned = !seen1 lor !seen0 in
                  Array.iter
                    (fun (cell, code) ->
                      if code land pinned = !seen1 then begin
                        if is_branch then incr is3;
                        consider
                          {
                            Subst.target = ti.target;
                            source =
                              Subst.Gate2 (cell, signals.(pool.(i)),
                                           signals.(pool.(j)));
                          }
                      end)
                    cells
                end
              end
            done
        done;
        Obs.Metrics.add m_is3_candidates !is3;
        ti_is3 := !is3);
  let best =
    List.sort cand_compare !acc
    |> List.filteri (fun k _ -> k < config.per_target)
  in
  let filtered =
    if two_signal_wanted then max 0 ((2 * n_eligible) - !hits2) else 0
  in
  Obs.Metrics.add m_sig_hits !hits2;
  Obs.Metrics.add m_sig_filtered filtered;
  ( best,
    { pairs_hit = !hits2; pairs_filtered = filtered; is3_candidates = !ti_is3 } )

let generate_stats ?(config = default_config) ?pool ?store est =
  let circ = Estimator.circuit est in
  let eng = Estimator.engine est in
  let store =
    match store with
    | Some s ->
      Sigstore.sync s;
      s
    | None ->
      (* transient store over the estimator's engine only: same scan
         semantics, no counterexample folding *)
      let s = Sigstore.create ~base:eng () in
      Sigstore.rebuild s;
      s
  in
  let want k = List.mem k config.classes in
  let gates2 = Library.two_input_cells (Circuit.library circ) in
  let targets =
    Obs.Trace.with_span span_targets (fun () ->
        (if want Subst.Os2 || want Subst.Os3 then
           Obs.Trace.with_span span_targets_stem (fun () ->
               stem_targets circ store)
         else [])
        @
        if want Subst.Is2 || want Subst.Is3 then
          Obs.Trace.with_span span_targets_branch (fun () ->
              branch_targets circ store)
        else [])
  in
  let targets = Array.of_list targets in
  let scan ti = scan_target ~config ~store ~est ~gates2 ti in
  let results =
    Obs.Trace.with_span span_scan (fun () ->
    match pool with
    | Some p
      when Par.Pool.jobs p > 1
           && Array.length targets > 1
           && not (Par.Pool.in_task ()) ->
      (* pre-warm the lazily memoized traversal order: worker tasks
         read the circuit concurrently and must not race on the cache *)
      ignore (Circuit.topo_order circ);
      let jobs = Par.Pool.jobs p in
      let chunk = max 1 (Array.length targets / (4 * jobs)) in
      let nchunks = (Array.length targets + chunk - 1) / chunk in
      let chunks =
        Array.init nchunks (fun k ->
            let lo = k * chunk in
            Array.sub targets lo (min chunk (Array.length targets - lo)))
      in
      let per_chunk =
        Par.Pool.map p ~f:(fun c -> Array.map scan c) chunks
      in
      Array.concat
        (Array.to_list
           (Array.map (function Some r -> r | None -> [||]) per_chunk))
    | _ -> Array.map scan targets)
  in
  let stats =
    Array.fold_left (fun s (_, st) -> add_stats s st) zero_stats results
  in
  let all =
    Array.fold_left (fun l (best, _) -> List.rev_append best l) [] results
  in
  let sorted =
    Obs.Trace.with_span span_select (fun () -> List.sort cand_compare all)
  in
  (sorted, stats)

let generate ?config ?pool ?store est = fst (generate_stats ?config ?pool ?store est)
