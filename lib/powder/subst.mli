(** Permissible-substitution descriptions (Definitions 1 and 2 of the
    paper), their power-gain analysis (Section 3.3), their delay
    legality (Section 3.4) and their application to the netlist.

    A substitution replaces a {e target} — a stem (all fanouts of a
    signal, OS-class) or a single branch (one fanout pin, IS-class) —
    by a {e source}: an existing signal (2-signal classes), an existing
    signal inverted through a new/reused inverter (still 2-signal per
    Definition 1), or the output of a new two-input library gate
    (3-signal classes, Definition 2). *)

type target =
  | Stem of Netlist.Circuit.node_id
  | Branch of { sink : Netlist.Circuit.node_id; pin : int }

type source =
  | Signal of Netlist.Circuit.node_id
  | Inverted of Netlist.Circuit.node_id
  | Gate2 of Gatelib.Cell.t * Netlist.Circuit.node_id * Netlist.Circuit.node_id

type t = { target : target; source : source }

type klass = Os2 | Is2 | Os3 | Is3

val klass : t -> klass
val klass_name : klass -> string
val all_klasses : klass list

val substituted_signal : Netlist.Circuit.t -> t -> Netlist.Circuit.node_id
(** The signal being replaced: the stem itself, or the driver of the
    branch pin. *)

val moved_load : Netlist.Circuit.t -> t -> float
(** Capacitance that changes driver: full stem fanout load (without the
    driver's own output capacitance) for OS, one pin for IS. *)

val describe : Netlist.Circuit.t -> t -> string

(** {1 Source realization}

    How the source side will actually be built: an existing signal
    (including a reused inverter already hanging off the signal), a new
    inverter, or a new two-input gate. *)

type plan =
  | P_existing of Netlist.Circuit.node_id
  | P_new_inv of Netlist.Circuit.node_id
  | P_new_gate of Gatelib.Cell.t * Netlist.Circuit.node_id * Netlist.Circuit.node_id

val plan_of : Netlist.Circuit.t -> t -> plan

val source_words_on : Sim.Engine.t -> t -> int64 array
(** Bit-parallel values the source would carry under the engine's
    current patterns. *)

(** {1 Power gain (Section 3.3)} *)

type gain = {
  pg_a : float;  (** removal of the dominated region; always >= 0 *)
  pg_b : float;  (** new fanout load on the source; always <= 0 *)
  pg_c : float;  (** transition-probability change in the TFO *)
}

val total_gain : gain -> float

val gain_ab :
  ?dom:bool array * int array ->
  ?credit_downstream:bool ->
  Power.Estimator.t ->
  t ->
  gain
(** The cheap part: [pg_a] and [pg_b] only ([pg_c = 0]); no
    re-estimation (the paper's pre-selection metric).  [?dom], when
    given for a stem target, must be [Circuit.dominated_region] of the
    target stem together with its member ids in ascending order —
    callers scoring many substitutions against the same stem compute
    both once and pass them here; the function copies the mask before
    carving out the surviving source cones.

    [?credit_downstream] (default false, the experimental
    [--is3-credit] knob): for IS3 candidates (branch target, [Gate2]
    source) also fill [pg_c] with the first-order downstream credit —
    the sink's own activity drop under the overridden pin, re-evaluated
    bit-parallel and clamped to [>= 0].  PG_B's charge for the new
    gate structurally out-weighs the one-pin PG_A relief, so without
    this credit the positive-gain filter starves the IS3 class; the
    exact PG_C of {!gain_full} supersedes the credit at refinement. *)

val gain_full : Power.Estimator.t -> t -> gain
(** Adds [pg_c] by re-simulating the target's transitive fanout under
    the substituted values (engine state is restored). *)

(** {1 Delay legality (Section 3.4)} *)

val delay_ok : Sta.Timing.t -> t -> bool
(** True when the substitution provably cannot push any path beyond the
    analysis' required time: source arrival (including a new gate's
    delay and the extra load placed on its inputs) must meet the
    target's required time, and every loaded signal must have enough
    slack for its load increase. *)

(** {1 Structure} *)

val creates_cycle : Netlist.Circuit.t -> t -> bool

val apply : Netlist.Circuit.t -> t -> Netlist.Circuit.node_id
(** Perform the substitution (inserting inverter/gate as needed), sweep
    the dead logic, and return the node from which simulation values
    must be refreshed (the source signal's node).
    @raise Invalid_argument if the edit would create a cycle. *)

val apply_to_clone : Netlist.Circuit.t -> t -> Netlist.Circuit.t
(** Clone the circuit and apply there — used for the ATPG check. *)
