(** Candidate-substitution generation (the paper's
    [get_candidate_substitutions], built on fault-simulation machinery).

    A substitution can only be permissible if the source agrees with the
    substituted signal on every simulated pattern where that signal is
    observable at some primary output.  We therefore compare bit-parallel
    signatures under the target's observability mask: survivors are
    {e potentially} permissible and are later proven or rejected by the
    exact ATPG check.

    Signatures come from a {!Sim.Sigstore}: per-node rows that fold the
    Monte-Carlo words together with every counterexample the exact
    checker has produced, grouped into complement-canonical
    compatibility classes.  With [index = Hash] the scans decide once
    per class (duplicates and inverter images ride along for free, and
    whole classes are ruled out by an early-abort distance bound); with
    [index = Scan] every signal row is tested individually.  Both modes
    emit the identical candidate list — [Scan] is the auditable
    reference the CI determinism leg compares against.

    2-signal candidates scan all signals; 3-signal candidates (new
    2-input gate) scan ordered pairs from a bounded pool of the closest
    signatures, for every 2-input cell of the library. *)

type index_mode =
  | Hash  (** class-indexed scans over the signature store (fast path) *)
  | Scan  (** per-signal reference scans over the same store *)

type config = {
  classes : Subst.klass list;  (** which substitution classes to emit *)
  per_target : int;            (** keep the best k per target (by PG_A+PG_B) *)
  pool_limit : int;            (** pool size for 3-signal pair enumeration *)
  require_positive : bool;     (** drop candidates with PG_A+PG_B+margin <= 0 *)
  credit_downstream : bool;
      (** score IS3 candidates with the first-order downstream credit
          of {!Subst.gain_ab} ([--is3-credit]); off by default *)
  index : index_mode;          (** how signatures are matched *)
}

val default_config : config

type stats = {
  pairs_hit : int;
      (** 2-signal (target, source, polarity) signature matches, before
          gain filtering — the [sig/hits] funnel counter *)
  pairs_filtered : int;
      (** 2-signal pairs ruled out by signature comparison —
          [sig/filtered]; identical across index modes by construction *)
  is3_candidates : int;
      (** 3-signal matches emitted on branch targets — [is3/candidates] *)
}

val zero_stats : stats
val add_stats : stats -> stats -> stats

val generate :
  ?config:config ->
  ?pool:Par.Pool.t ->
  ?store:Sim.Sigstore.t ->
  Power.Estimator.t ->
  (Subst.t * Subst.gain) list
(** Candidates in a total order — decreasing [PG_A + PG_B], ties broken
    on structural keys — so the list is byte-reproducible across index
    modes and job counts; gains are the cheap [Subst.gain_ab] estimates.
    The estimator's engine state is left unchanged (observability masks
    perturb and restore it).

    [store] supplies the signature rows; when omitted a transient store
    is built over the estimator's engine (no counterexample folding).
    When given, it is {!Sim.Sigstore.sync}ed first and must be built
    over the estimator's engine.  [pool] shards the per-target scans
    across domains; target enumeration (which mutates engine state for
    observability) always stays sequential. *)

val generate_stats :
  ?config:config ->
  ?pool:Par.Pool.t ->
  ?store:Sim.Sigstore.t ->
  Power.Estimator.t ->
  (Subst.t * Subst.gain) list * stats
(** Like {!generate}, returning the funnel stats of this scan.  Stats
    are also mirrored into the metrics registry ([sig/hits],
    [sig/filtered], [is3/candidates]); the explicit return is what the
    optimizer folds into its report, so concurrent registry writers
    (e.g. parallel fuzz cases) cannot skew it. *)
