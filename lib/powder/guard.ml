module Circuit = Netlist.Circuit
module Engine = Sim.Engine
module Library = Gatelib.Library
module Metrics = Obs.Metrics

type error =
  | Check_timeout
  | Apply_mismatch
  | Validation_failure
  | Budget_exhausted

let error_name = function
  | Check_timeout -> "check_timeout"
  | Apply_mismatch -> "apply_mismatch"
  | Validation_failure -> "validation_failure"
  | Budget_exhausted -> "budget_exhausted"

let pp_error fmt e = Format.pp_print_string fmt (error_name e)

let m_rollbacks = Metrics.counter "powder.guard.rollbacks"
let m_verified = Metrics.counter "powder.guard.verified_applies"
let m_check_timeout = Metrics.counter "powder.guard.errors.check_timeout"
let m_apply_mismatch = Metrics.counter "powder.guard.errors.apply_mismatch"
let m_validation_failure = Metrics.counter "powder.guard.errors.validation_failure"
let m_budget_exhausted = Metrics.counter "powder.guard.errors.budget_exhausted"

let count_error = function
  | Check_timeout -> Metrics.incr m_check_timeout
  | Apply_mismatch -> Metrics.incr m_apply_mismatch
  | Validation_failure -> Metrics.incr m_validation_failure
  | Budget_exhausted -> Metrics.incr m_budget_exhausted

(* ------------------------------------------------------------------ *)
(* Fault injection (test-only).                                        *)
(* ------------------------------------------------------------------ *)

type fault = Forge_verdict | Corrupt_apply | Expire_deadline

let injected : fault option ref = ref None
let inject f = injected := Some f
let clear_injection () = injected := None

let take_fault f =
  if !injected = Some f then begin
    injected := None;
    true
  end
  else false

(* Guaranteed-detectable corruption: invert the first primary output's
   driver.  The verifier's PO signatures then differ on every pattern,
   so detection does not depend on which random patterns the verifier
   happens to hold. *)
let corrupt circ =
  match Circuit.pos circ with
  | [] -> ()
  | po :: _ ->
    let d = Circuit.po_driver circ po in
    let inv = Library.inverter (Circuit.library circ) in
    let n = Circuit.add_cell circ inv [| d |] in
    Circuit.set_fanin circ po 0 n

(* ------------------------------------------------------------------ *)
(* Transactional apply.                                                *)
(* ------------------------------------------------------------------ *)

type verifier = {
  eng : Engine.t;
  mutable expected : (string * int64 array) list;
}

let make_verifier ?(words = 8) ~seed ~input_probs circ =
  let eng = Engine.create circ ~words in
  Engine.randomize eng ~input_probs (Sim.Rng.create seed);
  { eng; expected = Engine.po_signatures eng }

let refresh v =
  Engine.resim_all v.eng;
  v.expected <- Engine.po_signatures v.eng

let same_signatures a b =
  List.length a = List.length b
  && List.for_all2
       (fun (na, sa) (nb, sb) ->
         String.equal na nb
         && Array.length sa = Array.length sb
         && Array.for_all2 Int64.equal sa sb)
       a b

type apply_outcome = Applied of Circuit.node_id | Rolled_back of error

let rolled_back v circ err =
  Circuit.journal_rollback circ;
  (* Re-simulate so the verifier's state matches the restored netlist
     (the rolled-back edit may have touched nodes it simulated). *)
  Engine.resim_all v.eng;
  Metrics.incr m_rollbacks;
  count_error err;
  Rolled_back err

let transactional_apply v circ s =
  Circuit.journal_begin circ;
  match Subst.apply circ s with
  | exception Invalid_argument _ ->
    (* The apply itself refused (e.g. a cycle slipped past screening):
       nothing or only part of it happened; undo whatever did. *)
    rolled_back v circ Validation_failure
  | src -> (
    if take_fault Corrupt_apply then corrupt circ;
    match Circuit.validate circ with
    | Error _ -> rolled_back v circ Validation_failure
    | Ok () ->
      Engine.resim_all v.eng;
      let now = Engine.po_signatures v.eng in
      if same_signatures v.expected now then begin
        Circuit.journal_commit circ;
        v.expected <- now;
        Metrics.incr m_verified;
        Applied src
      end
      else rolled_back v circ Apply_mismatch)
