module Circuit = Netlist.Circuit
module Cell = Gatelib.Cell
module Library = Gatelib.Library
module Engine = Sim.Engine
module Estimator = Power.Estimator
module Timing = Sta.Timing

type target =
  | Stem of Circuit.node_id
  | Branch of { sink : Circuit.node_id; pin : int }

type source =
  | Signal of Circuit.node_id
  | Inverted of Circuit.node_id
  | Gate2 of Cell.t * Circuit.node_id * Circuit.node_id

type t = { target : target; source : source }

type klass = Os2 | Is2 | Os3 | Is3

let klass s =
  match (s.target, s.source) with
  | Stem _, (Signal _ | Inverted _) -> Os2
  | Stem _, Gate2 _ -> Os3
  | Branch _, (Signal _ | Inverted _) -> Is2
  | Branch _, Gate2 _ -> Is3

let klass_name = function
  | Os2 -> "OS2"
  | Is2 -> "IS2"
  | Os3 -> "OS3"
  | Is3 -> "IS3"

let all_klasses = [ Os2; Is2; Os3; Is3 ]

let substituted_signal circ s =
  match s.target with
  | Stem a -> a
  | Branch { sink; pin } -> (Circuit.fanins circ sink).(pin)

let out_cap_of circ id =
  match Circuit.kind circ id with
  | Circuit.Cell (c, _) -> c.Cell.out_cap
  | Circuit.Pi | Circuit.Const _ | Circuit.Po _ -> 0.0

let moved_load circ s =
  match s.target with
  | Stem a -> Circuit.load_of circ a -. out_cap_of circ a
  | Branch { sink; pin } -> Circuit.pin_cap circ { Circuit.sink; pin_index = pin }

let describe circ s =
  let source_str =
    match s.source with
    | Signal b -> Circuit.name circ b
    | Inverted b -> "!" ^ Circuit.name circ b
    | Gate2 (c, b, d) ->
      Printf.sprintf "%s(%s,%s)" c.Cell.name (Circuit.name circ b)
        (Circuit.name circ d)
  in
  match s.target with
  | Stem a ->
    Printf.sprintf "%s(%s <- %s)"
      (klass_name (klass s))
      (Circuit.name circ a) source_str
  | Branch { sink; pin } ->
    Printf.sprintf "%s(%s.pin%d <- %s)"
      (klass_name (klass s))
      (Circuit.name circ sink) pin source_str

(* ------------------------------------------------------------------ *)
(* Source realization plan (shared by apply / gain / delay / cycle).   *)
(* ------------------------------------------------------------------ *)

(* An Inverted source reuses an existing inverter on the signal when one
   is present (no new gate, no new pin load on the signal). *)
let existing_inverter circ b ~avoid =
  let inv_tt = Logic.Tt.not_ (Logic.Tt.var 1 0) in
  List.find_map
    (fun p ->
      let sink = p.Circuit.sink in
      if sink = avoid then None
      else
        match Circuit.kind circ sink with
        | Circuit.Cell (c, _) when Logic.Tt.equal c.Cell.func inv_tt -> Some sink
        | Circuit.Cell _ | Circuit.Pi | Circuit.Const _ | Circuit.Po _ -> None)
    (Circuit.fanouts circ b)

type plan =
  | P_existing of Circuit.node_id
  | P_new_inv of Circuit.node_id            (* inverter cell on this signal *)
  | P_new_gate of Cell.t * Circuit.node_id * Circuit.node_id

let plan_of circ s =
  let avoid = match s.target with Stem a -> a | Branch { sink; _ } -> sink in
  match s.source with
  | Signal b -> P_existing b
  | Inverted b -> (
    match existing_inverter circ b ~avoid with
    | Some v -> P_existing v
    | None -> P_new_inv b)
  | Gate2 (c, b, d) -> P_new_gate (c, b, d)

(* ------------------------------------------------------------------ *)
(* Cycle legality.                                                     *)
(* ------------------------------------------------------------------ *)

let creates_cycle circ s =
  let reaches_from_target node =
    match s.target with
    | Stem a ->
      a = node
      || List.exists
           (fun p ->
             (not (Circuit.is_po_node circ p.Circuit.sink))
             && Circuit.reaches circ p.Circuit.sink node)
           (Circuit.fanouts circ a)
    | Branch { sink; _ } ->
      (not (Circuit.is_po_node circ sink)) && Circuit.reaches circ sink node
  in
  match plan_of circ s with
  | P_existing v -> reaches_from_target v
  | P_new_inv b -> reaches_from_target b
  | P_new_gate (_, b, d) -> reaches_from_target b || reaches_from_target d

(* ------------------------------------------------------------------ *)
(* Application.                                                        *)
(* ------------------------------------------------------------------ *)

let apply circ s =
  if creates_cycle circ s then
    invalid_arg ("Subst.apply: cycle: " ^ describe circ s);
  let inv = Library.inverter (Circuit.library circ) in
  let src =
    match plan_of circ s with
    | P_existing v -> v
    | P_new_inv b -> Circuit.add_cell circ inv [| b |]
    | P_new_gate (c, b, d) -> Circuit.add_cell circ c [| b; d |]
  in
  (match s.target with
  | Stem a -> Circuit.replace_stem circ a src
  | Branch { sink; pin } -> Circuit.set_fanin circ sink pin src);
  ignore (Circuit.sweep circ);
  src

let apply_to_clone circ s =
  let cl = Circuit.clone circ in
  ignore (apply cl s);
  cl

(* ------------------------------------------------------------------ *)
(* Power gain.                                                         *)
(* ------------------------------------------------------------------ *)

type gain = { pg_a : float; pg_b : float; pg_c : float }

let total_gain g = g.pg_a +. g.pg_b +. g.pg_c

let source_words_on eng s =
  match s.source with
  | Signal b -> Array.copy (Engine.value eng b)
  | Inverted b -> Array.map Int64.lognot (Engine.value eng b)
  | Gate2 (c, b, d) ->
    Engine.apply_gate_words c.Cell.func
      [| Engine.value eng b; Engine.value eng d |]

let source_words est s = source_words_on (Estimator.engine est) s

let gain_ab ?dom ?(credit_downstream = false) est s =
  let circ = Estimator.circuit est in
  let eng = Estimator.engine est in
  let moved = moved_load circ s in
  let pg_a =
    match s.target with
    | Stem a ->
      (* The removed region is Dom(a) minus whatever still feeds the
         substituting signal(s): those cones survive the sweep.  A
         shared [dom] mask is mutated in place and restored afterwards
         — [keep_cone] clears at most |TFI(root) ∩ Dom(a)| entries, so
         the undo list keeps the per-candidate cost proportional to
         the region instead of the whole circuit (copying the mask per
         candidate made generation quadratic on large netlists). *)
      let dom, members, shared =
        match dom with
        | Some (d, m) -> (d, m, true)
        | None ->
          let d = Circuit.dominated_region circ a in
          let m = ref [] in
          Array.iteri (fun i inside -> if inside then m := i :: !m) d;
          (d, Array.of_list (List.rev !m), false)
      in
      let cleared = ref [] in
      (* Strip TFI(root) ∩ Dom(a) by a backward walk restricted to the
         region: any region node with a path to [root] has all the
         path's intermediate nodes in the region too (an intermediate
         escaping to a PO without passing [a] would give the ancestor
         the same escape), so the restricted walk reaches exactly
         TFI(root) ∩ Dom(a).  Overlapping cones compose: a node cleared
         by an earlier cone was reached through fanins that were also
         cleared, so nothing a later walk is blocked from was kept. *)
      let keep_cone root =
        if dom.(root) then begin
          dom.(root) <- false;
          cleared := root :: !cleared;
          let rec strip id =
            Array.iter
              (fun f ->
                if dom.(f) then begin
                  dom.(f) <- false;
                  cleared := f :: !cleared;
                  strip f
                end)
              (Circuit.fanins circ id)
          in
          strip root
        end
      in
      (match plan_of circ s with
      | P_existing v -> keep_cone v
      | P_new_inv b -> keep_cone b
      | P_new_gate (_, b, d) ->
        keep_cone b;
        keep_cone d);
      let pg =
        Estimator.region_power_members est dom members
        +. Estimator.region_input_relief_members est dom members
      in
      if shared then List.iter (fun id -> dom.(id) <- true) !cleared;
      pg
    | Branch _ ->
      moved *. Estimator.transition_prob est (substituted_signal circ s)
  in
  let pg_b =
    match plan_of circ s with
    | P_existing v -> -.(moved *. Estimator.transition_prob est v)
    | P_new_inv b ->
      let inv = Library.inverter (Circuit.library circ) in
      let eb = Estimator.transition_prob est b in
      (* the inverter's input pin loads b; its output (activity = E(b))
         drives the moved load plus its own output capacitance *)
      -.((inv.Cell.pin_caps.(0) *. eb) +. ((moved +. inv.Cell.out_cap) *. eb))
    | P_new_gate (c, b, d) ->
      let e_g =
        Estimator.transition_of_words (source_words est s)
          ~total_patterns:(Engine.num_patterns eng)
      in
      -.((c.Cell.pin_caps.(0) *. Estimator.transition_prob est b)
         +. (c.Cell.pin_caps.(1) *. Estimator.transition_prob est d)
         +. ((moved +. c.Cell.out_cap) *. e_g))
  in
  (* Experimental IS3 credit (--is3-credit): PG_B charges the new gate's
     pins plus the moved load at the gate's own density, which
     structurally out-charges the single-pin PG_A relief of a branch
     target — IS3 candidates rarely survive the positive-gain filter
     even though the paper's Table 2 accepts them.  The credit is the
     first-order term of PG_C restricted to the sink itself: re-evaluate
     the sink's output words with the pin overridden by the source and
     credit the sink-load activity drop.  One bit-parallel gate
     evaluation per candidate, credit-only (never a charge), and
     superseded by the exact PG_C during refinement. *)
  let pg_c =
    if not credit_downstream then 0.0
    else
      match (s.target, s.source) with
      | Branch { sink; pin }, Gate2 _ -> (
        match Circuit.kind circ sink with
        | Circuit.Cell (c, fs) ->
          let src = source_words est s in
          let inputs =
            Array.mapi
              (fun i f -> if i = pin then src else Engine.value eng f)
              fs
          in
          let w = Engine.apply_gate_words c.Cell.func inputs in
          let e_new =
            Estimator.transition_of_words w
              ~total_patterns:(Engine.num_patterns eng)
          in
          let e_old = Estimator.transition_prob est sink in
          Float.max 0.0 (Circuit.load_of circ sink *. (e_old -. e_new))
        | Circuit.Pi | Circuit.Const _ | Circuit.Po _ -> 0.0)
      | _ -> 0.0
  in
  { pg_a; pg_b; pg_c }

let gain_full est s =
  let base = gain_ab est s in
  let circ = Estimator.circuit est in
  let eng = Estimator.engine est in
  let words = source_words est s in
  let first, perturb =
    match s.target with
    | Stem a -> (a, fun eng -> Engine.set_value eng a words)
    | Branch { sink; pin } ->
      (sink, fun eng -> Engine.recompute_with_pin_override eng ~sink ~pin words)
  in
  let tfo = Circuit.tfo circ first in
  (* For a stem target the stem itself vanishes (accounted in PG_A and
     PG_B); for a branch target the sink's own activity changes too. *)
  (match s.target with
  | Stem _ -> ()
  | Branch { sink; _ } -> tfo.(sink) <- true);
  let measure eng =
    let acc = ref 0.0 in
    Circuit.iter_live circ (fun id ->
        if tfo.(id) && not (Circuit.is_po_node circ id) then begin
          let e_old = Estimator.transition_prob est id in
          let p_new = Engine.prob_one eng id in
          let e_new = 2.0 *. p_new *. (1.0 -. p_new) in
          acc := !acc +. (Circuit.load_of circ id *. (e_old -. e_new))
        end);
    !acc
  in
  let pg_c = Engine.with_perturbation eng ~first ~perturb ~measure in
  { base with pg_c }

(* ------------------------------------------------------------------ *)
(* Delay legality.                                                     *)
(* ------------------------------------------------------------------ *)

let delay_ok sta s =
  let eps = 1e-9 in
  let circ = Timing.circuit sta in
  let moved = moved_load circ s in
  let req_target =
    match s.target with
    | Stem a -> Timing.required sta a
    | Branch { sink; pin = _ } ->
      Timing.required sta sink -. Timing.gate_delay circ sink
  in
  (* delay increase of signal [b] when its load grows by [delta] *)
  let load_increase_ok b delta =
    let cur = Circuit.load_of circ b in
    let inc = Timing.delay_with_load circ b (cur +. delta) -. Timing.delay_with_load circ b cur in
    (inc, Timing.slack sta b +. eps >= inc)
  in
  let lib = Circuit.library circ in
  match plan_of circ s with
  | P_existing v ->
    let inc, ok = load_increase_ok v moved in
    ok && Timing.arrival sta v +. inc <= req_target +. eps
  | P_new_inv b ->
    let inv = Library.inverter lib in
    let inc, ok = load_increase_ok b inv.Cell.pin_caps.(0) in
    let inv_delay = inv.Cell.tau +. (inv.Cell.drive_res *. (moved +. inv.Cell.out_cap)) in
    ok && Timing.arrival sta b +. inc +. inv_delay <= req_target +. eps
  | P_new_gate (c, b, d) ->
    let inc_b, ok_b = load_increase_ok b c.Cell.pin_caps.(0) in
    let inc_d, ok_d = load_increase_ok d c.Cell.pin_caps.(1) in
    let gate_delay = c.Cell.tau +. (c.Cell.drive_res *. (moved +. c.Cell.out_cap)) in
    let arr =
      Float.max
        (Timing.arrival sta b +. inc_b)
        (Timing.arrival sta d +. inc_d)
      +. gate_delay
    in
    ok_b && ok_d && arr <= req_target +. eps
