(** Optimizer checkpoints: everything needed to continue an interrupted
    run, serialized as a single JSON object (the netlist rides along as
    an embedded BLIF string).

    Determinism contract: the optimizer re-canonicalizes its own state
    (serialize -> reparse -> rebuild engines -> replay counterexamples)
    at every checkpoint boundary, because a BLIF round-trip renumbers
    nodes and candidate generation iterates in node-id order.  A run
    resumed from a checkpoint therefore continues exactly like an
    uninterrupted run that checkpoints at the same cadence. *)

type t = {
  round : int;
  status : string;
      (** ["running"] while the loop was still live at save time;
          otherwise the final [stopped_by] label ([converged],
          [max_substitutions], [degradation], ...) — resuming such a
          checkpoint returns the finished report without extra rounds *)
  substitutions : int;
  seed : int64;
  blif : string;
  cex : (string * bool) list list;  (** oldest first, for in-order replay *)
  cex_cursor : int;
  candidates_generated : int;
  checks_run : int;
  rejected_by_delay : int;
  rejected_by_atpg : int;
  rejected_by_giveup : int;
  rejected_by_timeout : int;
  rejected_by_cex : int;
  sig_hits : int;
  sig_filtered : int;
  sig_resim_nodes : int;
  is3_candidates : int;
  rolled_back : int;
  verified_applies : int;
  window_checks : int;
  window_proved : int;
  window_escalated : int;
  giveup_breakdown : (string * int) list;
  by_class : (string * (int * float * float)) list;
      (** class name -> (accepted, power_gain, area_gain) *)
  initial_power : float;
  initial_area : float;
  initial_delay : float;
  initial_glitch_power : float option;
      (** measured at the original run start under the glitch cost
          model; [None] under zero-delay cost.  Restored on resume so
          the resumed report's glitch accounting matches the
          uninterrupted run byte for byte. *)
  degradation_level : int;
}

val version : int

val to_json : t -> Obs.Json.t

type error =
  | Io of string
      (** the file cannot be opened or read (missing, permissions, ...) *)
  | Corrupt of string
      (** truncated or garbled contents: invalid JSON, bad magic,
          missing or mistyped fields *)
  | Bad_version of { found : int; expected : int }

val error_to_string : error -> string

val save : string -> t -> unit
(** Crash-atomic and durable: write to [file ^ ".tmp"], fsync, rename
    over [file], fsync the directory.  A kill or power cut at any
    instant leaves either the previous complete checkpoint or the new
    one — never a torn write.  Raises [Unix.Unix_error] / [Sys_error]
    only on real I/O failure (disk full, bad path). *)

val load : string -> (t, error) result
(** Never raises: unreadable files come back as [Io], truncated or
    garbled ones as [Corrupt], schema mismatches as [Bad_version]. *)
