(* Allocation-free bit kernels for the simulation hot paths.

   OCaml boxes every [Int64] intermediate, so the trick throughout is
   to drop to native [int] arithmetic as early as possible: an [int64]
   is split into two 32-bit halves (each fits a 63-bit native int) and
   all the SWAR reduction happens in registers.  [popcount64] replaces
   the Kernighan clear-lowest-bit loop that used to burn ~91% of the
   optimizer's candidate-generation budget in [disagreement] scoring. *)

(* popcount of a value known to fit in 32 bits *)
let popcount32 x =
  let x = x - ((x lsr 1) land 0x55555555) in
  let x = (x land 0x33333333) + ((x lsr 2) land 0x33333333) in
  let x = (x + (x lsr 4)) land 0x0F0F0F0F in
  (x * 0x01010101) lsr 24 land 0xFF

let popcount64 (x : int64) =
  let lo = Int64.to_int x land 0xFFFFFFFF in
  let hi = Int64.to_int (Int64.shift_right_logical x 32) land 0xFFFFFFFF in
  popcount32 lo + popcount32 hi

(* popcount of an array of words *)
let popcount_words (a : int64 array) =
  let acc = ref 0 in
  for j = 0 to Array.length a - 1 do
    acc := !acc + popcount64 (Array.unsafe_get a j)
  done;
  !acc

(* number of care positions where [a] and [b] disagree *)
let masked_hamming (a : int64 array) (b : int64 array) (care : int64 array) =
  let acc = ref 0 in
  for j = 0 to Array.length a - 1 do
    let d =
      Int64.logand
        (Int64.logxor (Array.unsafe_get a j) (Array.unsafe_get b j))
        (Array.unsafe_get care j)
    in
    if not (Int64.equal d 0L) then acc := !acc + popcount64 d
  done;
  !acc

(* [a] equals [b] on every care position (early exit on first mismatch) *)
let masked_equal (a : int64 array) (b : int64 array) (care : int64 array) =
  let n = Array.length a in
  let rec go j =
    j >= n
    || Int64.equal
         (Int64.logand
            (Int64.logxor (Array.unsafe_get a j) (Array.unsafe_get b j))
            (Array.unsafe_get care j))
         0L
       && go (j + 1)
  in
  go 0

(* [a] equals [lognot b] on every care position *)
let masked_equal_compl (a : int64 array) (b : int64 array) (care : int64 array)
    =
  let n = Array.length a in
  let rec go j =
    j >= n
    || Int64.equal
         (Int64.logand
            (Int64.logxor (Array.unsafe_get a j)
               (Int64.lognot (Array.unsafe_get b j)))
            (Array.unsafe_get care j))
         0L
       && go (j + 1)
  in
  go 0

let equal_words (a : int64 array) (b : int64 array) =
  let n = Array.length a in
  let rec go j =
    j >= n || (Int64.equal (Array.unsafe_get a j) (Array.unsafe_get b j) && go (j + 1))
  in
  n = Array.length b && go 0

(* popcount of a value known to fit in 62 bits (a packed limb).  The
   usual 64-bit SWAR with masks truncated to OCaml's 63-bit ints; the
   multiply accumulates the byte sums mod 2^63, which preserves the
   top byte for any count < 128. *)
let popcount62 x =
  let x = x - ((x lsr 1) land 0x1555555555555555) in
  let x = (x land 0x3333333333333333) + ((x lsr 2) land 0x3333333333333333) in
  let x = (x + (x lsr 4)) land 0x0F0F0F0F0F0F0F0F in
  (x * 0x0101010101010101) lsr 56 land 0x7F

let limb_mask = 0x3FFFFFFFFFFFFFFF (* 62 set bits *)

(* int64 words repacked as a stream of 62-bit limbs living in native
   ints.  Pattern positions are redistributed but the bijection is the
   same for every row, so bitwise combination and popcount of packed
   rows are exactly the word-level results — and all the hot-loop
   arithmetic runs on unboxed ints. *)
let pack_words (a : int64 array) =
  let nbits = 64 * Array.length a in
  let nlimbs = (nbits + 61) / 62 in
  let out = Array.make nlimbs 0 in
  let li = ref 0 and fill = ref 0 in
  for j = 0 to Array.length a - 1 do
    let w = ref (Array.unsafe_get a j) in
    let left = ref 64 in
    while !left > 0 do
      let t = min (62 - !fill) !left in
      let chunk =
        Int64.to_int
          (Int64.logand !w (Int64.sub (Int64.shift_left 1L t) 1L))
      in
      out.(!li) <- out.(!li) lor (chunk lsl !fill);
      fill := !fill + t;
      w := Int64.shift_right_logical !w t;
      left := !left - t;
      if !fill = 62 then begin
        incr li;
        fill := 0
      end
    done
  done;
  out
