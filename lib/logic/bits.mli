(** Allocation-free bit kernels for simulation signatures.

    All word-vector operations assume the operands have equal length
    (the signature word count is uniform across a store); none of them
    allocate on the OCaml heap beyond the boxed [Int64] reads, which is
    what makes them fit the candidate-generation hot loop. *)

val popcount32 : int -> int
(** Population count of a native int known to fit in 32 bits. *)

val popcount64 : int64 -> int

val popcount_words : int64 array -> int
(** Total set bits across all words. *)

val masked_hamming : int64 array -> int64 array -> int64 array -> int
(** [masked_hamming a b care] counts care positions where [a] and [b]
    disagree. *)

val masked_equal : int64 array -> int64 array -> int64 array -> bool
(** [masked_equal a b care]: [a] and [b] agree on every care position.
    Early-exits on the first disagreeing word. *)

val masked_equal_compl : int64 array -> int64 array -> int64 array -> bool
(** [masked_equal_compl a b care]: [a] agrees with the complement of
    [b] on every care position. *)

val equal_words : int64 array -> int64 array -> bool
(** Exact word-for-word equality (lengths must match too). *)

val popcount62 : int -> int
(** Population count of a value known to fit in 62 bits (a packed
    limb). *)

val limb_mask : int
(** 62 set bits — the all-ones limb. *)

val pack_words : int64 array -> int array
(** Repacks the words as a stream of 62-bit limbs in native ints
    (lowest pattern bits first).  The position bijection is uniform
    across rows, so xor/and/popcount of packed rows equal the
    word-level results; it lets hot loops run entirely on unboxed
    ints. *)
