module Circuit = Netlist.Circuit
module Cell = Gatelib.Cell
open Tval

type give_up = Backtracks | Deadline

type result =
  | Test of (Circuit.node_id * bool) list
  | Untestable
  | Aborted of give_up

let pp_give_up fmt = function
  | Backtracks -> Format.pp_print_string fmt "backtracks"
  | Deadline -> Format.pp_print_string fmt "deadline"

type mode = Fault_mode of Fault.t | Justify of Circuit.node_id

type state = {
  circ : Circuit.t;
  order : Circuit.node_id array;
  pi_ids : Circuit.node_id list;
  assign : v3 array; (* per node id; meaningful for PIs *)
  values : Tval.t array;
  mode : mode;
  limit : int;
  deadline : Obs.Deadline.t;
  mutable backtracks : int;
  mutable steps : int;
}

exception Abort_search of give_up

let last_backtracks = ref 0
let backtracks_of_last_call () = !last_backtracks

let fault_of_mode = function Fault_mode f -> Some f | Justify _ -> None

(* ------------------------------------------------------------------ *)
(* Implication: three-valued forward simulation of both machines.      *)
(* ------------------------------------------------------------------ *)

let eval_composite st id =
  match Circuit.kind st.circ id with
  | Circuit.Pi ->
    let g = st.assign.(id) in
    { good = g; faulty = g }
  | Circuit.Const b -> of_bool b
  | Circuit.Po d -> st.values.(d)
  | Circuit.Cell (c, fs) ->
    let goods = Array.map (fun f -> st.values.(f).good) fs in
    let faults = Array.map (fun f -> st.values.(f).faulty) fs in
    (match fault_of_mode st.mode with
    | Some { Fault.site = Fault.Branch (sink, pin); stuck_at }
      when sink = id ->
      faults.(pin) <- v3_of_bool stuck_at
    | Some _ | None -> ());
    {
      good = Tval.eval_cell c.Cell.func goods;
      faulty = Tval.eval_cell c.Cell.func faults;
    }

let apply_stem_fault st id v =
  match fault_of_mode st.mode with
  | Some { Fault.site = Fault.Stem s; stuck_at } when s = id ->
    { v with faulty = v3_of_bool stuck_at }
  | Some _ | None -> v

let imply st =
  Array.iter
    (fun id -> st.values.(id) <- apply_stem_fault st id (eval_composite st id))
    st.order;
  List.iter
    (fun po -> st.values.(po) <- eval_composite st po)
    (Circuit.pos st.circ)

(* ------------------------------------------------------------------ *)
(* Status checks.                                                      *)
(* ------------------------------------------------------------------ *)

type status = Success | Conflict | Open_search

let fault_site_node circ = function
  | { Fault.site = Fault.Stem s; _ } -> s
  | { Fault.site = Fault.Branch (sink, pin); _ } ->
    (Circuit.fanins circ sink).(pin)

let d_frontier st =
  (* Cells with a D/D' input whose output could still differ.  For a
     branch fault the effect enters the circuit at the faulted sink (the
     driver stem itself carries no D), so the sink joins the frontier
     while its output is open. *)
  let frontier = ref [] in
  (match st.mode with
  | Fault_mode { Fault.site = Fault.Branch (sink, _); _ } ->
    let v = st.values.(sink) in
    if v.good = VX || v.faulty = VX then frontier := [ sink ]
  | Fault_mode { Fault.site = Fault.Stem _; _ } | Justify _ -> ());
  Circuit.iter_live st.circ (fun id ->
      match Circuit.kind st.circ id with
      | Circuit.Cell (_, fs) ->
        let v = st.values.(id) in
        let output_open = v.good = VX || v.faulty = VX in
        if output_open
           && Array.exists (fun f -> is_d_or_dbar st.values.(f)) fs
           && not (List.mem id !frontier)
        then frontier := id :: !frontier
      | Circuit.Pi | Circuit.Const _ | Circuit.Po _ -> ());
  !frontier

(* Is there a path from [id] to a PO along nodes whose value is still
   open (X in either machine) or already carrying the fault effect? *)
let x_path_to_po st id =
  let seen = Array.make (Circuit.num_nodes st.circ) false in
  let open_node n =
    let v = st.values.(n) in
    v.good = VX || v.faulty = VX || is_d_or_dbar v
  in
  let rec dfs n =
    List.exists
      (fun p ->
        let s = p.Circuit.sink in
        Circuit.is_live st.circ s
        &&
        if Circuit.is_po_node st.circ s then true
        else if seen.(s) || not (open_node s) then false
        else begin
          seen.(s) <- true;
          dfs s
        end)
      (Circuit.fanouts st.circ n)
  in
  dfs id

let status st =
  match st.mode with
  | Justify target -> (
    match st.values.(target).good with
    | V1 -> Success
    | V0 -> Conflict
    | VX -> Open_search)
  | Fault_mode f ->
    let detected =
      List.exists
        (fun po -> is_d_or_dbar st.values.(po))
        (Circuit.pos st.circ)
    in
    if detected then Success
    else begin
      let site = fault_site_node st.circ f in
      let site_good =
        match f.Fault.site with
        | Fault.Stem s -> st.values.(s).good
        | Fault.Branch _ -> st.values.(site).good
      in
      let stuck = v3_of_bool f.Fault.stuck_at in
      let effect_entry =
        match f.Fault.site with
        | Fault.Stem s -> s
        | Fault.Branch (sink, _) -> sink
      in
      if site_good = stuck then Conflict (* can never be excited *)
      else if site_good = VX then
        (* excitation still pending; keep searching if the effect could
           still reach an output *)
        if x_path_to_po st effect_entry then Open_search else Conflict
      else begin
        (* excited: need a frontier gate with an open path to a PO *)
        let frontier = d_frontier st in
        if List.exists (fun g -> x_path_to_po st g) frontier then Open_search
        else Conflict
      end
    end

(* ------------------------------------------------------------------ *)
(* Objective and backtrace.                                            *)
(* ------------------------------------------------------------------ *)

(* Walk from an objective node down to an unassigned PI, choosing at
   each cell an input that is still open.  Returns the PI and a value
   guess. *)
let backtrace st start want =
  let rec walk id want =
    match Circuit.kind st.circ id with
    | Circuit.Pi ->
      if st.assign.(id) = VX then
        Some (id, match want with V0 -> false | V1 | VX -> true)
      else None
    | Circuit.Const _ -> None
    | Circuit.Po d -> walk d want
    | Circuit.Cell (c, fs) ->
      let open_inputs =
        Array.to_list fs
        |> List.filter (fun f ->
               let v = st.values.(f) in
               v.good = VX || v.faulty = VX)
      in
      let rec try_inputs = function
        | [] -> None
        | f :: rest -> (
          (* Guess the phase for input f: prefer a value that could
             force the wanted output. *)
          let guess =
            match want with
            | VX -> V1
            | w -> (
              let probe b =
                let goods =
                  Array.map
                    (fun g -> if g = f then v3_of_bool b else st.values.(g).good)
                    fs
                in
                Tval.eval_cell c.Cell.func goods
              in
              if probe true = w then V1
              else if probe false = w then V0
              else if probe true = VX then V1
              else V0)
          in
          match walk f guess with Some r -> Some r | None -> try_inputs rest)
      in
      try_inputs open_inputs
  in
  walk start want

let objective st =
  match st.mode with
  | Justify target -> Some (target, V1)
  | Fault_mode f ->
    let site = fault_site_node st.circ f in
    let site_good =
      match f.Fault.site with
      | Fault.Stem s -> st.values.(s).good
      | Fault.Branch _ -> st.values.(site).good
    in
    if site_good = VX then
      Some (site, v3_of_bool (not f.Fault.stuck_at))
    else begin
      match d_frontier st with
      | [] -> None
      | g :: _ -> Some (g, VX)
    end

(* ------------------------------------------------------------------ *)
(* Search.                                                             *)
(* ------------------------------------------------------------------ *)

let rec search st =
  (* Each search step runs a whole-circuit implication, so polling the
     deadline every few hundred steps keeps overhead invisible while
     bounding the reaction latency. *)
  st.steps <- st.steps + 1;
  if st.steps land 255 = 0 && Obs.Deadline.expired st.deadline then
    raise (Abort_search Deadline);
  imply st;
  match status st with
  | Success -> true
  | Conflict -> false
  | Open_search -> (
    match objective st with
    | None -> false
    | Some (node, want) -> (
      match backtrace st node want with
      | None -> false
      | Some (pi, first_guess) ->
        let try_value b =
          st.assign.(pi) <- v3_of_bool b;
          search st
        in
        if try_value first_guess then true
        else begin
          st.backtracks <- st.backtracks + 1;
          if st.backtracks > st.limit then raise (Abort_search Backtracks);
          if try_value (not first_guess) then true
          else begin
            st.assign.(pi) <- VX;
            false
          end
        end))

let make_state ?(backtrack_limit = 20_000) ?(deadline = Obs.Deadline.never)
    circ mode =
  let n = Circuit.num_nodes circ in
  {
    circ;
    order = Circuit.topo_order circ;
    pi_ids = Circuit.pis circ;
    assign = Array.make n VX;
    values = Array.make n Tval.x;
    mode;
    limit = backtrack_limit;
    deadline;
    backtracks = 0;
    steps = 0;
  }

let extract_test st =
  List.filter_map
    (fun pi ->
      match st.assign.(pi) with
      | V0 -> Some (pi, false)
      | V1 -> Some (pi, true)
      | VX -> None)
    st.pi_ids

let m_search_seconds = Obs.Metrics.histogram "atpg.podem.search_seconds"
let m_searches = Obs.Metrics.counter "atpg.podem.searches"
let m_backtracks = Obs.Metrics.counter "atpg.podem.backtracks"
let m_giveups = Obs.Metrics.counter "atpg.podem.giveups"

let run st =
  let t0 = Obs.Clock.now () in
  let res =
    try if search st then Test (extract_test st) else Untestable
    with Abort_search why -> Aborted why
  in
  last_backtracks := st.backtracks;
  Obs.Metrics.observe m_search_seconds (Obs.Clock.now () -. t0);
  Obs.Metrics.incr m_searches;
  Obs.Metrics.add m_backtracks st.backtracks;
  (match res with
  | Aborted _ -> Obs.Metrics.incr m_giveups
  | Test _ | Untestable -> ());
  res

let generate_test ?backtrack_limit ?deadline circ fault =
  let st = make_state ?backtrack_limit ?deadline circ (Fault_mode fault) in
  run st

let justify_one ?backtrack_limit ?deadline circ target =
  let st = make_state ?backtrack_limit ?deadline circ (Justify target) in
  run st
