module Circuit = Netlist.Circuit
module Cell = Gatelib.Cell
module Tt = Logic.Tt

type verdict =
  | Equivalent
  | Different of (string * bool) list
  | Unknown

(* Virtual comparison cells; they never enter power/timing accounting
   because miters are throw-away reasoning structures. *)
let vcell name func =
  Cell.make ~name ~func ~area:0.0
    ~pin_caps:(Array.make (Tt.num_vars func) 0.0)
    ~tau:0.0 ~drive_res:0.0 ()

let vxor2 = vcell "miter_xor2" (Tt.xor (Tt.var 2 0) (Tt.var 2 1))
let vor2 = vcell "miter_or2" (Tt.or_ (Tt.var 2 0) (Tt.var 2 1))
let xor_cell = vxor2
let or_cell = vor2

let sorted_names of_list circ = List.sort String.compare (List.map (Circuit.name circ) (of_list circ))

let copy_into dst src ~pi_map ~prefix =
  (* Copy all live logic of [src] into [dst]; returns a map giving, for
     each PO name of [src], the id of its driver in [dst]. *)
  let map = Hashtbl.create 64 in
  List.iter
    (fun pi -> Hashtbl.add map pi (Hashtbl.find pi_map (Circuit.name src pi)))
    (Circuit.pis src);
  Array.iter
    (fun id ->
      match Circuit.kind src id with
      | Circuit.Pi -> ()
      | Circuit.Const b -> Hashtbl.add map id (Circuit.add_const dst b)
      | Circuit.Po _ -> ()
      | Circuit.Cell (c, fs) ->
        let fs' = Array.map (Hashtbl.find map) fs in
        Hashtbl.add map id
          (Circuit.add_cell dst
             ~name:(prefix ^ Circuit.name src id)
             c fs'))
    (Circuit.topo_order src);
  List.map
    (fun po -> (Circuit.name src po, Hashtbl.find map (Circuit.po_driver src po)))
    (Circuit.pos src)

let miter ca cb =
  let pis_a = sorted_names Circuit.pis ca and pis_b = sorted_names Circuit.pis cb in
  let pos_a = sorted_names Circuit.pos ca and pos_b = sorted_names Circuit.pos cb in
  if pis_a <> pis_b then invalid_arg "Equiv.miter: PI name mismatch";
  if pos_a <> pos_b then invalid_arg "Equiv.miter: PO name mismatch";
  let m = Circuit.create (Circuit.library ca) in
  let pi_map = Hashtbl.create 32 in
  List.iter
    (fun name -> Hashtbl.add pi_map name (Circuit.add_pi m ~name))
    pis_a;
  let drv_a = copy_into m ca ~pi_map ~prefix:"a$" in
  let drv_b = copy_into m cb ~pi_map ~prefix:"b$" in
  let diffs =
    List.map
      (fun (name, da) ->
        let db = List.assoc name drv_b in
        Circuit.add_cell m vxor2 [| da; db |])
      drv_a
  in
  let rec or_tree = function
    | [] -> Circuit.add_const m false
    | [ x ] -> x
    | x :: y :: rest -> or_tree (Circuit.add_cell m vor2 [| x; y |] :: rest)
  in
  let out = or_tree diffs in
  let _po = Circuit.add_po m ~name:"miter_out" out in
  (m, out)

let check_exhaustive ca cb =
  let n = List.length (Circuit.pis ca) in
  let words = max 1 ((1 lsl n) / 64) in
  let ea = Sim.Engine.create ca ~words and eb = Sim.Engine.create cb ~words in
  Sim.Engine.exhaustive ea;
  Sim.Engine.exhaustive eb;
  let sb = Sim.Engine.po_signatures eb in
  let mismatch =
    List.find_map
      (fun (name, va) ->
        match List.assoc_opt name sb with
        | None -> Some 0 (* should not happen: PO sets were checked *)
        | Some vb ->
          let rec scan j =
            if j >= Array.length va then None
            else
              let d = Int64.logxor va.(j) vb.(j) in
              if Int64.equal d 0L then scan (j + 1)
              else begin
                let bit = ref 0 in
                while
                  Int64.equal (Int64.logand (Int64.shift_right_logical d !bit) 1L) 0L
                do
                  incr bit
                done;
                Some ((j * 64) + !bit)
              end
          in
          scan 0)
      (Sim.Engine.po_signatures ea)
  in
  match mismatch with
  | None -> Equivalent
  | Some pattern ->
    let assignment =
      List.mapi
        (fun i pi -> (Circuit.name ca pi, (pattern lsr i) land 1 = 1))
        (Circuit.pis ca)
    in
    Different assignment

let check ?(backtrack_limit = 20_000) ?(exhaustive_limit = 14)
    ?(engine = `Sat) ca cb =
  let pis_a = sorted_names Circuit.pis ca and pis_b = sorted_names Circuit.pis cb in
  if pis_a <> pis_b then invalid_arg "Equiv.check: PI name mismatch";
  if sorted_names Circuit.pos ca <> sorted_names Circuit.pos cb then
    invalid_arg "Equiv.check: PO name mismatch";
  if List.length pis_a <= exhaustive_limit then check_exhaustive ca cb
  else begin
    let m, out = miter ca cb in
    match engine with
    | `Podem -> (
      match Podem.justify_one ~backtrack_limit m out with
      | Podem.Untestable -> Equivalent
      | Podem.Aborted _ -> Unknown
      | Podem.Test assignment ->
        Different
          (List.map (fun (pi, v) -> (Circuit.name m pi, v)) assignment))
    | `Sat -> (
      match Cnf.justify_one ~conflict_limit:(10 * backtrack_limit) m out with
      | Cnf.Impossible -> Equivalent
      | Cnf.Gave_up _ -> Unknown
      | Cnf.Justified assignment ->
        Different
          (List.map (fun (pi, v) -> (Circuit.name m pi, v)) assignment))
  end
