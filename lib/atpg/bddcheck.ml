module Circuit = Netlist.Circuit
module Bdd = Logic.Bdd
module Tt = Logic.Tt

type outcome =
  | Justified of (Circuit.node_id * bool) list
  | Impossible
  | Gave_up of int

(* Build the global BDD of [target] over the PIs of its cone. *)
let build ?(node_limit = 500_000) circ target =
  let m = Bdd.manager ~node_limit () in
  let cone = Circuit.tfi circ target in
  cone.(target) <- true;
  let pi_vars = Hashtbl.create 32 in
  List.iteri
    (fun i pi -> if cone.(pi) then Hashtbl.add pi_vars pi i)
    (Circuit.pis circ);
  let node_bdd = Hashtbl.create 256 in
  let of_node id =
    match Hashtbl.find_opt node_bdd id with
    | Some b -> b
    | None -> invalid_arg "Bddcheck: fanin out of order"
  in
  Array.iter
    (fun id ->
      if cone.(id) then
        let b =
          match Circuit.kind circ id with
          | Circuit.Pi -> Bdd.var m (Hashtbl.find pi_vars id)
          | Circuit.Const v -> if v then Bdd.bdd_true m else Bdd.bdd_false m
          | Circuit.Po d -> of_node d
          | Circuit.Cell (c, fs) ->
            (* Shannon-expand the cell truth table over its fanin BDDs *)
            let ins = Array.map of_node fs in
            let k = Array.length fs in
            let rec expand i minterm_prefix =
              if i = k then
                if Tt.eval_int c.Gatelib.Cell.func minterm_prefix then
                  Bdd.bdd_true m
                else Bdd.bdd_false m
              else
                let low = expand (i + 1) minterm_prefix in
                let high = expand (i + 1) (minterm_prefix lor (1 lsl i)) in
                Bdd.ite m ins.(i) high low
            in
            expand 0 0
        in
        Hashtbl.add node_bdd id b)
    (Circuit.topo_order circ);
  (m, Hashtbl.find node_bdd target, pi_vars)

let m_justify_seconds = Obs.Metrics.histogram "atpg.bdd.justify_seconds"
let m_justifies = Obs.Metrics.counter "atpg.bdd.justifies"
let m_giveups = Obs.Metrics.counter "atpg.bdd.giveups"

let justify_one ?node_limit circ target =
  let t0 = Obs.Clock.now () in
  let finish res =
    Obs.Metrics.observe m_justify_seconds (Obs.Clock.now () -. t0);
    Obs.Metrics.incr m_justifies;
    (match res with
    | Gave_up _ -> Obs.Metrics.incr m_giveups
    | Justified _ | Impossible -> ());
    res
  in
  match build ?node_limit circ target with
  | exception Bdd.Node_limit_exceeded -> finish (Gave_up 0)
  | m, b, pi_vars ->
    finish
      (if Bdd.is_false m b then Impossible
       else
         match Bdd.any_sat m b with
         | None -> Impossible
         | Some assignment ->
           let by_var = Hashtbl.create 16 in
           List.iter (fun (v, value) -> Hashtbl.replace by_var v value) assignment;
           Justified
             (Hashtbl.fold
                (fun pi v acc ->
                  match Hashtbl.find_opt by_var v with
                  | Some value -> (pi, value) :: acc
                  | None -> acc)
                pi_vars []))

let bdd_size_of_cone ?node_limit circ target =
  match build ?node_limit circ target with
  | exception Bdd.Node_limit_exceeded -> None
  | m, b, _ -> Some (Bdd.size m b)

let signal_probability ?node_limit circ target =
  match build ?node_limit circ target with
  | exception Bdd.Node_limit_exceeded -> None
  | m, b, pi_vars ->
    Some (Bdd.sat_fraction m b ~num_vars:(Hashtbl.length pi_vars))
