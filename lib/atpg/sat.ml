type give_up = Conflicts | Deadline

type result = Sat of bool array | Unsat | Timeout of give_up

let pp_give_up fmt = function
  | Conflicts -> Format.pp_print_string fmt "conflicts"
  | Deadline -> Format.pp_print_string fmt "deadline"

let lit_of v sign = (2 * v) lor (if sign then 0 else 1)
let var_of l = l lsr 1
let neg l = l lxor 1

(* values: 0 unassigned, 1 true, 2 false (for the literal's variable) *)

type clause = { mutable lits : int array; mutable activity : float }

type solver = {
  nvars : int;
  mutable clauses : clause array;
  mutable n_clauses : int;
  watches : clause list array; (* indexed by literal *)
  assign : int array;          (* per var: 0 / 1 (true) / 2 (false) *)
  level : int array;
  reason : clause option array;
  trail : int array;           (* assigned literals in order *)
  mutable trail_len : int;
  trail_lim : int array;       (* trail length at each decision level *)
  mutable decision_level : int;
  activity : float array;
  mutable var_inc : float;
  mutable conflicts : int;
  seen : bool array;
}

let value s l =
  let v = s.assign.(var_of l) in
  if v = 0 then 0 else if (v = 1) = (l land 1 = 0) then 1 else 2

let watch s l c = s.watches.(l) <- c :: s.watches.(l)

let enqueue s l reason =
  let v = var_of l in
  s.assign.(v) <- (if l land 1 = 0 then 1 else 2);
  s.level.(v) <- s.decision_level;
  s.reason.(v) <- reason;
  s.trail.(s.trail_len) <- l;
  s.trail_len <- s.trail_len + 1

exception Conflict_found of clause

(* propagate all pending assignments; raises Conflict_found *)
let propagate s qhead_start =
  let qhead = ref qhead_start in
  while !qhead < s.trail_len do
    let l = s.trail.(!qhead) in
    incr qhead;
    let falsified = neg l in
    let old_watch = s.watches.(falsified) in
    s.watches.(falsified) <- [];
    let rec go = function
      | [] -> ()
      | c :: rest -> (
        (* ensure falsified is at position 1 *)
        let lits = c.lits in
        if Array.length lits >= 2 && lits.(0) = falsified then begin
          lits.(0) <- lits.(1);
          lits.(1) <- falsified
        end;
        if Array.length lits >= 1 && value s lits.(0) = 1 then begin
          (* clause already satisfied; keep watching *)
          watch s falsified c;
          go rest
        end
        else begin
          (* look for a new literal to watch *)
          let found = ref false in
          let i = ref 2 in
          let n = Array.length lits in
          while (not !found) && !i < n do
            if value s lits.(!i) <> 2 then begin
              let tmp = lits.(1) in
              lits.(1) <- lits.(!i);
              lits.(!i) <- tmp;
              watch s lits.(1) c;
              found := true
            end;
            incr i
          done;
          if !found then go rest
          else begin
            (* unit or conflicting *)
            watch s falsified c;
            if n = 0 || value s lits.(0) = 2 then begin
              (* conflict: restore remaining watches first *)
              List.iter (fun c' -> watch s falsified c') rest;
              raise (Conflict_found c)
            end
            else begin
              enqueue s lits.(0) (Some c);
              go rest
            end
          end
        end)
    in
    go old_watch
  done

let bump s v =
  s.activity.(v) <- s.activity.(v) +. s.var_inc;
  if s.activity.(v) > 1e100 then begin
    for i = 0 to s.nvars - 1 do
      s.activity.(i) <- s.activity.(i) *. 1e-100
    done;
    s.var_inc <- s.var_inc *. 1e-100
  end

(* first-UIP learning *)
let analyze s conflict =
  let learnt = ref [] in
  let counter = ref 0 in
  let p = ref (-1) in
  let backtrack_level = ref 0 in
  let index = ref (s.trail_len - 1) in
  let reason_lits c p =
    (* all literals except p *)
    Array.to_list c.lits |> List.filter (fun l -> l <> p)
  in
  let process_clause c pivot =
    List.iter
      (fun q ->
        let v = var_of q in
        if (not s.seen.(v)) && s.level.(v) > 0 then begin
          s.seen.(v) <- true;
          bump s v;
          if s.level.(v) >= s.decision_level then incr counter
          else begin
            learnt := q :: !learnt;
            if s.level.(v) > !backtrack_level then backtrack_level := s.level.(v)
          end
        end)
      (reason_lits c pivot)
  in
  process_clause conflict (-1);
  let uip = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    (* find next seen literal on the trail *)
    while not s.seen.(var_of s.trail.(!index)) do
      decr index
    done;
    p := s.trail.(!index);
    let v = var_of !p in
    s.seen.(v) <- false;
    decr counter;
    decr index;
    if !counter = 0 then begin
      uip := neg !p;
      continue_ := false
    end
    else begin
      match s.reason.(v) with
      | Some c -> process_clause c !p
      | None -> (* decision reached with counter > 0: shouldn't happen *) ()
    end
  done;
  List.iter (fun q -> s.seen.(var_of q) <- false) !learnt;
  (!uip :: !learnt, !backtrack_level)

let backtrack s lvl =
  let target = if lvl < Array.length s.trail_lim then s.trail_lim.(lvl) else s.trail_len in
  for i = s.trail_len - 1 downto target do
    let v = var_of s.trail.(i) in
    s.assign.(v) <- 0;
    s.reason.(v) <- None
  done;
  s.trail_len <- target;
  s.decision_level <- lvl

let add_clause s lits =
  let c = { lits = Array.of_list lits; activity = 0.0 } in
  (match c.lits with
  | [||] -> ()
  | [| l |] -> watch s l c (* degenerate; handled at solve start *)
  | _ ->
    watch s c.lits.(0) c;
    watch s c.lits.(1) c);
  if s.n_clauses = Array.length s.clauses then begin
    let bigger = Array.make (max 16 (2 * Array.length s.clauses)) c in
    Array.blit s.clauses 0 bigger 0 s.n_clauses;
    s.clauses <- bigger
  end;
  s.clauses.(s.n_clauses) <- c;
  s.n_clauses <- s.n_clauses + 1;
  c

let pick_branch s =
  let best = ref (-1) in
  let best_act = ref neg_infinity in
  for v = 0 to s.nvars - 1 do
    if s.assign.(v) = 0 && s.activity.(v) > !best_act then begin
      best := v;
      best_act := s.activity.(v)
    end
  done;
  !best

let m_solve_seconds = Obs.Metrics.histogram "atpg.sat.solve_seconds"
let m_conflicts = Obs.Metrics.counter "atpg.sat.conflicts"
let m_solves = Obs.Metrics.counter "atpg.sat.solves"
let m_giveups = Obs.Metrics.counter "atpg.sat.giveups"

(* Poll the wall-clock deadline only every [deadline_stride] conflicts:
   a gettimeofday per conflict would dominate easy instances. *)
let deadline_stride = 64

let solve ?(conflict_limit = 200_000) ?(deadline = Obs.Deadline.never)
    ~num_vars clauses =
  let t0 = Obs.Clock.now () in
  let s =
    {
      nvars = num_vars;
      clauses = Array.make 16 { lits = [||]; activity = 0.0 };
      n_clauses = 0;
      watches = Array.make (2 * num_vars) [];
      assign = Array.make num_vars 0;
      level = Array.make num_vars 0;
      reason = Array.make num_vars None;
      trail = Array.make (num_vars + 1) 0;
      trail_len = 0;
      trail_lim = Array.make (num_vars + 1) 0;
      decision_level = 0;
      activity = Array.make num_vars 0.0;
      var_inc = 1.0;
      conflicts = 0;
      seen = Array.make num_vars false;
    }
  in
  (* load clauses; handle trivial cases *)
  let trivially_unsat = ref false in
  let units = ref [] in
  List.iter
    (fun lits ->
      let lits = Array.to_list lits |> List.sort_uniq compare in
      let tautology =
        List.exists (fun l -> List.mem (neg l) lits) lits
      in
      if not tautology then
        match lits with
        | [] -> trivially_unsat := true
        | [ l ] -> units := l :: !units
        | _ -> ignore (add_clause s lits))
    clauses;
  let result =
    if !trivially_unsat then Unsat
    else begin
    (* assert unit clauses at level 0 *)
    let conflict0 =
      List.exists
        (fun l ->
          match value s l with
          | 1 -> false
          | 2 -> true
          | _ ->
            enqueue s l None;
            false)
        !units
    in
    if conflict0 then Unsat
    else begin
      let qhead = ref 0 in
      let restart_interval = ref 100 in
      let conflicts_since_restart = ref 0 in
      let rec loop () =
        match propagate s !qhead with
        | () ->
          qhead := s.trail_len;
          let finish () =
            let model = Array.init s.nvars (fun v -> s.assign.(v) = 1) in
            (* belt and braces: a model must satisfy every clause *)
            for i = 0 to s.n_clauses - 1 do
              let c = s.clauses.(i) in
              let sat =
                Array.exists
                  (fun l -> model.(var_of l) = (l land 1 = 0))
                  c.lits
              in
              if not sat then failwith "Sat.solve: internal model check failed"
            done;
            Sat model
          in
          if s.trail_len = s.nvars then finish ()
          else begin
            let v = pick_branch s in
            if v < 0 then finish ()
            else begin
              s.trail_lim.(s.decision_level) <- s.trail_len;
              s.decision_level <- s.decision_level + 1;
              (* phase saving would go here; default to false first *)
              enqueue s (lit_of v false) None;
              loop ()
            end
          end
        | exception Conflict_found c ->
          s.conflicts <- s.conflicts + 1;
          incr conflicts_since_restart;
          if s.conflicts > conflict_limit then Timeout Conflicts
          else if
            s.conflicts mod deadline_stride = 0 && Obs.Deadline.expired deadline
          then Timeout Deadline
          else if s.decision_level = 0 then Unsat
          else begin
            let learnt, back_lvl = analyze s c in
            backtrack s back_lvl;
            qhead := s.trail_len;
            (match learnt with
            | [] -> ()
            | [ l ] ->
              if value s l = 0 then enqueue s l None
            | l :: rest ->
              (* watch the asserting literal and a max-level literal so
                 both watches unassign together on future backtracks *)
              let rest =
                List.sort
                  (fun a b ->
                    Int.compare s.level.(var_of b) s.level.(var_of a))
                  rest
              in
              let cl = add_clause s (l :: rest) in
              if value s l = 0 then enqueue s l (Some cl));
            s.var_inc <- s.var_inc *. 1.05;
            if !conflicts_since_restart > !restart_interval then begin
              conflicts_since_restart := 0;
              restart_interval := !restart_interval * 3 / 2;
              backtrack s 0;
              qhead := s.trail_len
            end;
            loop ()
          end
      in
      loop ()
    end
  end
  in
  Obs.Metrics.observe m_solve_seconds (Obs.Clock.now () -. t0);
  Obs.Metrics.incr m_solves;
  Obs.Metrics.add m_conflicts s.conflicts;
  (match result with
  | Timeout _ -> Obs.Metrics.incr m_giveups
  | Sat _ | Unsat -> ());
  result
