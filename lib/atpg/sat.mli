(** A compact CDCL SAT solver used for the exact permissibility check
    on circuits too wide for exhaustive simulation.

    Features: two-watched-literal propagation, first-UIP clause
    learning with backjumping, VSIDS-style activities, geometric
    restarts, and a conflict budget (exceeding it reports [Timeout],
    which POWDER maps to "not proven permissible" just as the paper
    maps ATPG aborts).

    Literal encoding: variable [v >= 0], literal [2*v] (positive) or
    [2*v + 1] (negated). *)

type give_up =
  | Conflicts  (** the conflict budget ran out *)
  | Deadline   (** the wall-clock deadline expired *)

type result =
  | Sat of bool array  (** model indexed by variable *)
  | Unsat
  | Timeout of give_up
      (** gave up without an answer; the payload says which limit fired *)

val pp_give_up : Format.formatter -> give_up -> unit

val lit_of : int -> bool -> int

val solve :
  ?conflict_limit:int ->
  ?deadline:Obs.Deadline.t ->
  num_vars:int ->
  int array list ->
  result
(** Clauses are arrays of literals.  An empty clause makes the problem
    trivially UNSAT.  [deadline] is polled every few dozen conflicts, so
    expiry is detected within one propagation burst, not instantly. *)
