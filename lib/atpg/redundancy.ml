module Circuit = Netlist.Circuit

type stats = {
  wires_replaced : int;
  cells_rewritten : int;
  passes : int;
  aborted_faults : int;
}

(* Try to prove one connection redundant and replace it by a constant.
   Returns true if the circuit changed. *)
let try_connection ~backtrack_limit ~aborted circ ~sink ~pin =
  let try_value v =
    let fault = Fault.branch ~sink ~pin v in
    match Podem.generate_test ~backtrack_limit circ fault with
    | Podem.Untestable ->
      let konst = Circuit.add_const circ v in
      Circuit.set_fanin circ sink pin konst;
      true
    | Podem.Aborted _ ->
      incr aborted;
      false
    | Podem.Test _ -> false
  in
  try_value false || try_value true

let remove ?(backtrack_limit = 5_000) ?(max_passes = 4) circ =
  let wires = ref 0 in
  let rewritten = ref 0 in
  let aborted = ref 0 in
  let passes = ref 0 in
  let progress = ref true in
  while !progress && !passes < max_passes do
    incr passes;
    progress := false;
    (* snapshot the connections up front; the circuit mutates under us *)
    let connections = ref [] in
    Circuit.iter_live circ (fun id ->
        match Circuit.kind circ id with
        | Circuit.Cell (_, fs) ->
          Array.iteri (fun pin _ -> connections := (id, pin) :: !connections) fs
        | Circuit.Pi | Circuit.Const _ | Circuit.Po _ -> ());
    List.iter
      (fun (sink, pin) ->
        if Circuit.is_live circ sink then begin
          let fs = Circuit.fanins circ sink in
          if pin < Array.length fs then begin
            let driver = fs.(pin) in
            let already_const =
              match Circuit.kind circ driver with
              | Circuit.Const _ -> true
              | Circuit.Pi | Circuit.Cell _ | Circuit.Po _ -> false
            in
            if (not already_const)
               && try_connection ~backtrack_limit ~aborted circ ~sink ~pin
            then begin
              incr wires;
              progress := true
            end
          end
        end)
      !connections;
    let changed = Netlist.Simplify.propagate_constants circ in
    rewritten := !rewritten + changed;
    ignore (Circuit.sweep circ)
  done;
  {
    wires_replaced = !wires;
    cells_rewritten = !rewritten;
    passes = !passes;
    aborted_faults = !aborted;
  }
