(** PODEM test generation on mapped netlists.

    Decisions are made on primary inputs only, guided by backtrace from
    the current objective; implication is three-valued forward
    simulation; a backtrack limit bounds the search (exceeding it
    yields [Aborted], which POWDER treats as "not permissible", exactly
    as the paper's [check_candidate] does). *)

type give_up =
  | Backtracks  (** the backtrack budget ran out *)
  | Deadline    (** the wall-clock deadline expired *)

type result =
  | Test of (Netlist.Circuit.node_id * bool) list
      (** Assigned PIs (unlisted PIs are don't-care). *)
  | Untestable
  | Aborted of give_up
      (** gave up without an answer; the payload says which limit fired *)

val pp_give_up : Format.formatter -> give_up -> unit

val generate_test :
  ?backtrack_limit:int ->
  ?deadline:Obs.Deadline.t ->
  Netlist.Circuit.t ->
  Fault.t ->
  result
(** Find a test for a single stuck-at fault.  [Untestable] proves the
    fault redundant. *)

val justify_one :
  ?backtrack_limit:int ->
  ?deadline:Obs.Deadline.t ->
  Netlist.Circuit.t ->
  Netlist.Circuit.node_id ->
  result
(** Find a PI assignment setting the given signal to 1; [Untestable]
    proves the signal is constant 0.  Used on miter outputs for the
    permissibility check. *)

val backtracks_of_last_call : unit -> int
(** Diagnostic: backtracks consumed by the most recent call. *)
