module Circuit = Netlist.Circuit
module Cell = Gatelib.Cell
module Tt = Logic.Tt

type outcome =
  | Justified of (Circuit.node_id * bool) list
  | Impossible
  | Gave_up of Sat.give_up

let clauses_of_circuit circ =
  let var = Array.make (Circuit.num_nodes circ) (-1) in
  let next = ref 0 in
  Circuit.iter_live circ (fun id ->
      var.(id) <- !next;
      incr next);
  let clauses = ref [] in
  let add c = clauses := c :: !clauses in
  Circuit.iter_live circ (fun id ->
      match Circuit.kind circ id with
      | Circuit.Pi -> ()
      | Circuit.Const b -> add [| Sat.lit_of var.(id) b |]
      | Circuit.Po d ->
        (* po var equals driver var *)
        add [| Sat.lit_of var.(id) true; Sat.lit_of var.(d) false |];
        add [| Sat.lit_of var.(id) false; Sat.lit_of var.(d) true |]
      | Circuit.Cell (c, fs) ->
        let k = Array.length fs in
        (* for every input minterm m: (inputs = m) -> (z = f(m)) *)
        for m = 0 to (1 lsl k) - 1 do
          let clause = Array.make (k + 1) 0 in
          for i = 0 to k - 1 do
            (* negation of "input i has its value in m" *)
            clause.(i) <- Sat.lit_of var.(fs.(i)) (m land (1 lsl i) = 0)
          done;
          clause.(k) <- Sat.lit_of var.(id) (Tt.eval_int c.Cell.func m);
          add clause
        done);
  (!clauses, (fun id -> var.(id)), !next)

(* Encode only the fanin cone of the target: on large netlists most of
   the circuit is irrelevant to one justification query. *)
let clauses_of_cone circ target =
  let cone = Circuit.tfi circ target in
  cone.(target) <- true;
  let var = Array.make (Circuit.num_nodes circ) (-1) in
  let next = ref 0 in
  Circuit.iter_live circ (fun id ->
      if cone.(id) then begin
        var.(id) <- !next;
        incr next
      end);
  let clauses = ref [] in
  let add c = clauses := c :: !clauses in
  Circuit.iter_live circ (fun id ->
      if cone.(id) then
        match Circuit.kind circ id with
        | Circuit.Pi -> ()
        | Circuit.Const b -> add [| Sat.lit_of var.(id) b |]
        | Circuit.Po d ->
          add [| Sat.lit_of var.(id) true; Sat.lit_of var.(d) false |];
          add [| Sat.lit_of var.(id) false; Sat.lit_of var.(d) true |]
        | Circuit.Cell (c, fs) ->
          let k = Array.length fs in
          for m = 0 to (1 lsl k) - 1 do
            let clause = Array.make (k + 1) 0 in
            for i = 0 to k - 1 do
              clause.(i) <- Sat.lit_of var.(fs.(i)) (m land (1 lsl i) = 0)
            done;
            clause.(k) <- Sat.lit_of var.(id) (Tt.eval_int c.Cell.func m);
            add clause
          done);
  (!clauses, (fun id -> var.(id)), !next)

let justify_one ?(conflict_limit = 200_000) ?(deadline = Obs.Deadline.never)
    circ target =
  let clauses, var_of, num_vars = clauses_of_cone circ target in
  let clauses = [| Sat.lit_of (var_of target) true |] :: clauses in
  match Sat.solve ~conflict_limit ~deadline ~num_vars clauses with
  | Sat.Unsat -> Impossible
  | Sat.Timeout why -> Gave_up why
  | Sat.Sat model ->
    Justified
      (List.filter_map
         (fun pi ->
           let v = var_of pi in
           if v >= 0 then Some (pi, model.(v)) else None)
         (Circuit.pis circ))
