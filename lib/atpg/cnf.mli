(** Tseitin encoding of mapped netlists into CNF, and SAT-backed
    justification — the engine behind the permissibility check for
    circuits too wide for exhaustive simulation. *)

type outcome =
  | Justified of (Netlist.Circuit.node_id * bool) list
      (** PI assignment setting the target to 1 *)
  | Impossible  (** the target is constant 0 *)
  | Gave_up of Sat.give_up  (** which SAT limit fired *)

val justify_one :
  ?conflict_limit:int ->
  ?deadline:Obs.Deadline.t ->
  Netlist.Circuit.t ->
  Netlist.Circuit.node_id ->
  outcome

val clauses_of_circuit :
  Netlist.Circuit.t -> int array list * (Netlist.Circuit.node_id -> int) * int
(** [(clauses, var_of_node, num_vars)]: one SAT variable per live
    node. *)
