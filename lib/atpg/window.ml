module Circuit = Netlist.Circuit

type t = {
  internal : (Circuit.node_id, unit) Hashtbl.t;
  changed : (Circuit.node_id, unit) Hashtbl.t;
  order : Circuit.node_id array;
  cut : Circuit.node_id array;
  escapes : Circuit.node_id array;
}

let is_internal w id = Hashtbl.mem w.internal id
let is_changed w id = Hashtbl.mem w.changed id
let cut_size w = Array.length w.cut
let volume w = Array.length w.order

let m_extracted = Obs.Metrics.counter "window.extracted"
let m_overflow = Obs.Metrics.counter "window.overflow"

let extract circ ~roots ~support ~max_cut ~max_volume =
  let is_cell id =
    match Circuit.kind circ id with Circuit.Cell _ -> true | _ -> false
  in
  let internal = Hashtbl.create 64 in
  (* phase 1: the truncated TFO of the roots.  Roots always go in (a
     branch retarget must see its sink); deeper fanout is admitted
     breadth-first until the volume budget runs out.  Truncation is
     sound: a changed node whose fanout leaves the window becomes an
     escape, compared old-vs-new at the boundary. *)
  let q = Queue.create () in
  List.iter
    (fun r ->
      if Circuit.is_live circ r && is_cell r && not (Hashtbl.mem internal r)
      then begin
        Hashtbl.replace internal r ();
        Queue.add r q
      end)
    roots;
  let vol = ref (Hashtbl.length internal) in
  while not (Queue.is_empty q) do
    let id = Queue.pop q in
    List.iter
      (fun p ->
        let s = p.Circuit.sink in
        if
          !vol < max_volume && Circuit.is_live circ s && is_cell s
          && not (Hashtbl.mem internal s)
        then begin
          Hashtbl.replace internal s ();
          incr vol;
          Queue.add s q
        end)
      (Circuit.fanouts circ id)
  done;
  (* phase 2: initial cut = the support signals plus every fanin of an
     internal node that is not itself internal *)
  let cut = Hashtbl.create 64 in
  let add_cut id =
    if not (Hashtbl.mem internal id) && not (Hashtbl.mem cut id) then
      Hashtbl.replace cut id ()
  in
  List.iter add_cut support;
  Hashtbl.iter
    (fun id () -> Array.iter add_cut (Circuit.fanins circ id))
    internal;
  (* phase 3: greedy TFI growth, lowest id first.  Internalizing a cut
     cell replaces one cut signal by its not-yet-seen fanins, buying the
     proof structural context upstream of the change; a cut node in the
     target's truncated fanout is still sound as a shared free input,
     because every difference reaching it must cross an escape that the
     miter proves silent. *)
  let grew = ref true in
  while !grew do
    grew := false;
    let cands =
      List.sort compare (Hashtbl.fold (fun id () acc -> id :: acc) cut [])
    in
    List.iter
      (fun c ->
        if Hashtbl.mem cut c && is_cell c && Circuit.is_live circ c then begin
          let fresh =
            Array.fold_left
              (fun n f ->
                if Hashtbl.mem internal f || Hashtbl.mem cut f then n
                else n + 1)
              0 (Circuit.fanins circ c)
          in
          if
            !vol + 1 <= max_volume
            && Hashtbl.length cut - 1 + fresh <= max_cut
          then begin
            Hashtbl.remove cut c;
            Hashtbl.replace internal c ();
            incr vol;
            Array.iter add_cut (Circuit.fanins circ c);
            grew := true
          end
        end)
      cands
  done;
  if Hashtbl.length cut > 2 * max_cut then begin
    Obs.Metrics.incr m_overflow;
    None
  end
  else begin
    (* phase 4: changed = nodes reachable from the roots inside the
       window (the part that gets duplicated with the substitution) *)
    let changed = Hashtbl.create 64 in
    let q = Queue.create () in
    List.iter
      (fun r ->
        if Hashtbl.mem internal r && not (Hashtbl.mem changed r) then begin
          Hashtbl.replace changed r ();
          Queue.add r q
        end)
      roots;
    while not (Queue.is_empty q) do
      let id = Queue.pop q in
      List.iter
        (fun p ->
          let s = p.Circuit.sink in
          if Hashtbl.mem internal s && not (Hashtbl.mem changed s) then begin
            Hashtbl.replace changed s ();
            Queue.add s q
          end)
        (Circuit.fanouts circ id)
    done;
    (* phase 5: escapes = changed nodes observable outside the window
       (a fanout pin to a non-internal sink, which includes POs) *)
    let escapes =
      Hashtbl.fold
        (fun id () acc ->
          if
            List.exists
              (fun p -> not (Hashtbl.mem internal p.Circuit.sink))
              (Circuit.fanouts circ id)
          then id :: acc
          else acc)
        changed []
      |> List.sort compare |> Array.of_list
    in
    (* phase 6: topological order of the internal nodes (fanins first),
       by DFS restricted to the window *)
    let order = ref [] in
    let seen = Hashtbl.create 64 in
    let rec visit id =
      if Hashtbl.mem internal id && not (Hashtbl.mem seen id) then begin
        Hashtbl.replace seen id ();
        Array.iter visit (Circuit.fanins circ id);
        order := id :: !order
      end
    in
    List.iter visit
      (List.sort compare (Hashtbl.fold (fun id () acc -> id :: acc) internal []));
    let order = Array.of_list (List.rev !order) in
    let cut =
      List.sort compare (Hashtbl.fold (fun id () acc -> id :: acc) cut [])
      |> Array.of_list
    in
    Obs.Metrics.incr m_extracted;
    Some { internal; changed; order; cut; escapes }
  end

type verdict =
  | Proved
  | Refuted of (Circuit.node_id * bool) list
  | Gave_up of string

(* Fault injection for the differential test layer: arm with
   [inject_forge] and the next [prove] whose honest answer is a
   refutation lies and claims [Proved] instead.  The windowed-vs-global
   fuzz oracle must flag the lie. *)
let forged = ref 0
let inject_forge () = incr forged
let forge_armed () = !forged > 0
let clear_forge () = forged := 0

let m_proved = Obs.Metrics.counter "window.proved"
let m_refuted = Obs.Metrics.counter "window.refuted"
let m_gave_up = Obs.Metrics.counter "window.gave_up"

let prove ?(exhaustive_limit = 12) ?(conflict_limit = 2_000)
    ?(deadline = Obs.Deadline.never) m out =
  let real =
    let pis = Circuit.pis m in
    let n = List.length pis in
    if n <= exhaustive_limit then begin
      let words = max 1 ((1 lsl n) / 64) in
      let eng = Sim.Engine.create m ~words in
      Sim.Engine.exhaustive eng;
      let v = Sim.Engine.value eng out in
      let rec first_one j =
        if j >= Array.length v then None
        else if Int64.equal v.(j) 0L then first_one (j + 1)
        else begin
          let bit = ref 0 in
          while
            Int64.equal
              (Int64.logand (Int64.shift_right_logical v.(j) !bit) 1L)
              0L
          do
            incr bit
          done;
          Some ((j * 64) + !bit)
        end
      in
      match first_one 0 with
      | None -> Proved
      | Some pattern ->
        let pattern = pattern land ((1 lsl n) - 1) in
        Refuted
          (List.mapi (fun i pi -> (pi, pattern land (1 lsl i) <> 0)) pis)
    end
    else
      match Cnf.justify_one ~conflict_limit ~deadline m out with
      | Cnf.Impossible -> Proved
      | Cnf.Justified a -> Refuted a
      | Cnf.Gave_up Sat.Conflicts -> Gave_up "conflicts"
      | Cnf.Gave_up Sat.Deadline -> Gave_up "deadline"
  in
  match real with
  | Refuted _ when !forged > 0 ->
    decr forged;
    Obs.Metrics.incr m_proved;
    Proved
  | Proved ->
    Obs.Metrics.incr m_proved;
    Proved
  | Refuted _ as r ->
    Obs.Metrics.incr m_refuted;
    r
  | Gave_up _ as g ->
    Obs.Metrics.incr m_gave_up;
    g
