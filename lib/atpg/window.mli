(** Cut-based local verification windows.

    A window is a small region of the netlist around a candidate edit:
    the truncated transitive fanout of the edit's entry points plus a
    greedily grown slice of shared fanin logic, bounded by a {e cut} of
    at most [max_cut]-ish signals that become free inputs.  Proving
    inside the window that every {e escape} — a changed signal with a
    fanout leaving the window — keeps its value under all cut
    assignments is sound for global equivalence: the cut inputs are
    free (a superset of their reachable behaviour) and any real
    difference would have to cross a silent escape.  A window
    counterexample is {e not} a sound refutation (the cut assignment
    may be unreachable, the boundary difference unobservable), so
    callers must escalate it to a global check. *)

type t = {
  internal : (Netlist.Circuit.node_id, unit) Hashtbl.t;
      (** window membership *)
  changed : (Netlist.Circuit.node_id, unit) Hashtbl.t;
      (** internal nodes downstream of the edit (to be duplicated) *)
  order : Netlist.Circuit.node_id array;
      (** internal nodes, fanins first *)
  cut : Netlist.Circuit.node_id array;
      (** window inputs, ascending ids; every internal fanin is
          internal or in the cut *)
  escapes : Netlist.Circuit.node_id array;
      (** changed nodes with a fanout outside the window (POs count),
          ascending ids *)
}

val is_internal : t -> Netlist.Circuit.node_id -> bool
val is_changed : t -> Netlist.Circuit.node_id -> bool
val cut_size : t -> int
val volume : t -> int

val extract :
  Netlist.Circuit.t ->
  roots:Netlist.Circuit.node_id list ->
  support:Netlist.Circuit.node_id list ->
  max_cut:int ->
  max_volume:int ->
  t option
(** [extract circ ~roots ~support ~max_cut ~max_volume] builds the
    window: truncated TFO of [roots] (live cells; roots are always
    admitted), then greedy lowest-id-first fanin growth while the cut
    stays within [max_cut] and the volume within [max_volume].
    [support] signals (the substitution's source operands and target)
    are guaranteed an image in the window (cut or internal).  Returns
    [None] — escalate to a global check — when the final cut exceeds
    [2 * max_cut].  Deterministic for a given circuit state. *)

type verdict =
  | Proved  (** the output is constant 0 — globally sound *)
  | Refuted of (Netlist.Circuit.node_id * bool) list
      (** a window-local distinguishing assignment over the window's
          PIs — NOT a sound global refutation *)
  | Gave_up of string  (** "conflicts" or "deadline" *)

val prove :
  ?exhaustive_limit:int ->
  ?conflict_limit:int ->
  ?deadline:Obs.Deadline.t ->
  Netlist.Circuit.t ->
  Netlist.Circuit.node_id ->
  verdict
(** Prove a (window-sized) circuit's node constant 0: exhaustive
    simulation when the circuit has at most [exhaustive_limit] (default
    12) primary inputs, otherwise SAT with a modest [conflict_limit]
    (default 2000). *)

val inject_forge : unit -> unit
(** Arm the fault-injection hook: the next {!prove} whose honest
    verdict is [Refuted] returns a forged [Proved] instead (one-shot).
    Exists so the windowed-vs-global differential fuzz leg can assert
    it catches a lying window checker. *)

val forge_armed : unit -> bool
(** True while an {!inject_forge} fault is armed but not yet consumed. *)

val clear_forge : unit -> unit
(** Disarm any pending {!inject_forge} fault. *)
