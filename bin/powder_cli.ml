(* POWDER command-line driver.

   Circuits come either from a mapped BLIF file ([--in file.blif]) or
   from the built-in benchmark suite ([--circuit name]).  Networks can
   be technology-mapped first with the [map] command. *)

module Circuit = Netlist.Circuit
module Optimizer = Powder.Optimizer
open Cmdliner

(* ------------------------------------------------------------------ *)
(* Shared argument parsing.                                            *)
(* ------------------------------------------------------------------ *)

let in_file =
  Arg.(value & opt (some string) None & info [ "i"; "in" ] ~docv:"FILE"
         ~doc:"Mapped BLIF input file.")

let circuit_name =
  Arg.(value & opt (some string) None & info [ "c"; "circuit" ] ~docv:"NAME"
         ~doc:"Built-in benchmark circuit (see the suite command).")

let out_file =
  Arg.(value & opt (some string) None & info [ "o"; "out" ] ~docv:"FILE"
         ~doc:"Write the resulting mapped netlist as BLIF.")

let words =
  Arg.(value & opt int 16 & info [ "words" ] ~docv:"N"
         ~doc:"Simulation words (64 patterns each) for power estimation.")

let seed =
  Arg.(value & opt int 0xC0FFEE & info [ "seed" ] ~docv:"N"
         ~doc:"Random-pattern seed.")

let jobs_arg =
  Arg.(value
       & opt int (Par.Pool.default_jobs ())
       & info [ "j"; "jobs" ] ~docv:"N"
           ~doc:"Parallel executors (1 disables the domain pool). Defaults \
                 to the machine's recommended domain count, capped at 8. \
                 Results are byte-identical for any value; only wall-clock \
                 changes.")

(* Like --jobs, the signature index is an execution-strategy knob:
   results are byte-identical either way (CI enforces it), so it stays
   out of the hashed run-manifest options. *)
let sig_index_arg =
  let parse = function
    | "hash" -> Ok Powder.Candidates.Hash
    | "scan" -> Ok Powder.Candidates.Scan
    | _ -> Error (`Msg "expected hash or scan")
  in
  let print fmt = function
    | Powder.Candidates.Hash -> Format.pp_print_string fmt "hash"
    | Powder.Candidates.Scan -> Format.pp_print_string fmt "scan"
  in
  Arg.(value
       & opt (conv (parse, print)) Powder.Candidates.Hash
       & info [ "sig-index" ] ~docv:"MODE"
           ~doc:"Signature-store lookup strategy for the 2-signal classes: \
                 hash (default; bucket lookup on the masked row) or scan \
                 (linear reference scan).  Candidates, reports and netlists \
                 are byte-identical across modes; only speed differs.")

(* Unlike --jobs / --sig-index, the window size CAN change results (a
   window may prove a candidate the global engine gives up on), so it
   goes into the hashed run-manifest options. *)
let window_arg =
  let parse = function
    | "off" -> Ok None
    | s -> (
      match int_of_string_opt s with
      | Some k when k > 0 -> Ok (Some k)
      | Some _ | None -> Error (`Msg "expected a positive cut size or off"))
  in
  let print fmt = function
    | None -> Format.pp_print_string fmt "off"
    | Some k -> Format.pp_print_int fmt k
  in
  Arg.(value
       & opt (conv (parse, print)) None
       & info [ "window" ] ~docv:"K"
           ~doc:"Windowed permissibility checking: try a local miter over a \
                 cut of at most K signals before the global miter (off by \
                 default).  Window proofs are globally sound; anything \
                 inconclusive escalates to the global check, so verdicts \
                 stay exact.")

(* Like --window, the cost model changes which substitutions are
   accepted, so it is part of the hashed run-manifest options. *)
let cost_arg =
  let parse s =
    match Pareto.Cost.of_string s with Ok c -> Ok c | Error m -> Error (`Msg m)
  in
  let print fmt c = Format.pp_print_string fmt (Pareto.Cost.to_string c) in
  Arg.(value
       & opt (conv (parse, print)) Pareto.Cost.Zero_delay
       & info [ "cost" ] ~docv:"MODEL"
           ~doc:"Acceptance cost model: zero-delay (default; the paper's \
                 switched-capacitance gain) or glitch[:PAIRS] (weight each \
                 candidate by per-node hazard multipliers from a timed \
                 simulation over PAIRS random vector pairs, default 64).  \
                 The glitch model changes which substitutions are accepted \
                 and adds timed before/after power to the report.")

let is3_credit_arg =
  Arg.(value & flag & info [ "is3-credit" ]
         ~doc:"Experimental: credit IS3 candidates with the sink gate's \
               first-order downstream activity reduction during \
               pre-selection, so they can survive the positive-gain filter \
               (their new-gate load charge structurally outweighs the \
               one-pin relief).  Exact PG_C still decides at refinement.")

let delay_mode =
  let parse s =
    if s = "none" then Ok Optimizer.Unconstrained
    else if s = "keep" then Ok Optimizer.Keep_initial
    else if String.length s > 1 && s.[0] = '+' then
      match float_of_string_opt (String.sub s 1 (String.length s - 2)) with
      | Some p when s.[String.length s - 1] = '%' -> Ok (Optimizer.Ratio (p /. 100.0))
      | Some _ | None -> Error (`Msg "expected +N%")
    else
      match float_of_string_opt s with
      | Some d -> Ok (Optimizer.Absolute d)
      | None -> Error (`Msg "expected none, keep, +N% or an absolute delay")
  in
  let print fmt = function
    | Optimizer.Unconstrained -> Format.pp_print_string fmt "none"
    | Optimizer.Keep_initial -> Format.pp_print_string fmt "keep"
    | Optimizer.Ratio r -> Format.fprintf fmt "+%g%%" (100.0 *. r)
    | Optimizer.Absolute d -> Format.fprintf fmt "%g" d
  in
  Arg.(value
       & opt (conv (parse, print)) Optimizer.Unconstrained
       & info [ "d"; "delay" ] ~docv:"MODE"
           ~doc:"Delay constraint: none, keep (initial delay), +N%, or an \
                 absolute required time.")

let classes =
  let parse s =
    let of_name = function
      | "os2" -> Ok Powder.Subst.Os2
      | "is2" -> Ok Powder.Subst.Is2
      | "os3" -> Ok Powder.Subst.Os3
      | "is3" -> Ok Powder.Subst.Is3
      | other -> Error (`Msg ("unknown class " ^ other))
    in
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | x :: rest -> (
        match of_name (String.lowercase_ascii x) with
        | Ok k -> go (k :: acc) rest
        | Error _ as e -> e)
    in
    go [] (String.split_on_char ',' s)
  in
  let print fmt ks =
    Format.pp_print_string fmt
      (String.concat "," (List.map Powder.Subst.klass_name ks))
  in
  Arg.(value
       & opt (conv (parse, print)) Powder.Subst.all_klasses
       & info [ "classes" ] ~docv:"LIST"
           ~doc:"Enabled substitution classes, e.g. os2,is2.")

(* Synthetic scale-benchmark circuits: synth10k, synth100k, or
   synth:GATES[:SEED] for arbitrary sizes. *)
let synth_circuit name =
  let build ~seed ~gates = Some (Circuits.Generators.synth ~seed ~gates) in
  match name with
  | "synth10k" -> build ~seed:1 ~gates:10_000
  | "synth100k" -> build ~seed:1 ~gates:100_000
  | _ -> (
    match String.split_on_char ':' name with
    | [ "synth"; g ] -> (
      match int_of_string_opt g with
      | Some gates when gates > 0 -> build ~seed:1 ~gates
      | _ -> failwith ("bad gate count in " ^ name))
    | [ "synth"; g; s ] -> (
      match (int_of_string_opt g, int_of_string_opt s) with
      | Some gates, Some seed when gates > 0 -> build ~seed ~gates
      | _ -> failwith ("bad gate count or seed in " ^ name))
    | _ -> None)

let load_circuit in_file circuit_name =
  match (in_file, circuit_name) with
  | Some file, None -> (
    match Blif.Blif_io.circuit_of_file Gatelib.Library.lib2 file with
    | Ok c -> c
    | Error e -> failwith ("cannot read " ^ file ^ ": " ^ Blif.Blif_io.error_to_string e))
  | None, Some name -> (
    match synth_circuit name with
    | Some c -> c
    | None -> (
      match Circuits.Suite.find name with
      | Some spec -> Circuits.Suite.mapped spec
      | None -> failwith ("unknown benchmark circuit " ^ name)))
  | Some _, Some _ -> failwith "give either --in or --circuit, not both"
  | None, None -> failwith "an input is required: --in FILE or --circuit NAME"

let emit out_file circ =
  match out_file with
  | None -> ()
  | Some f ->
    if Filename.check_suffix f ".v" then Blif.Verilog.circuit_to_file f circ
    else Blif.Blif_io.circuit_to_file f circ;
    Printf.printf "wrote %s\n" f

(* ------------------------------------------------------------------ *)
(* Commands.                                                           *)
(* ------------------------------------------------------------------ *)

let engine_arg =
  let parse = function
    | "sat" -> Ok `Sat
    | "podem" -> Ok `Podem
    | "bdd" -> Ok `Bdd
    | _ -> Error (`Msg "expected sat, podem or bdd")
  in
  let print fmt = function
    | `Sat -> Format.pp_print_string fmt "sat"
    | `Podem -> Format.pp_print_string fmt "podem"
    | `Bdd -> Format.pp_print_string fmt "bdd"
  in
  Arg.(value
       & opt (conv (parse, print)) `Sat
       & info [ "engine" ] ~docv:"ENGINE"
           ~doc:"Exact permissibility engine: sat (default), podem or bdd.")

let delay_to_string = function
  | Optimizer.Unconstrained -> "none"
  | Optimizer.Keep_initial -> "keep"
  | Optimizer.Ratio r -> Printf.sprintf "+%g%%" (100.0 *. r)
  | Optimizer.Absolute d -> Printf.sprintf "%g" d

let optimize_cmd =
  let run in_file circuit_name out_file words seed delay classes engine verify
      trace_file json_file profile_dir metrics time_budget check_seconds
      round_seconds max_rounds checkpoint resume verify_applies
      checkpoint_every jobs sig_index window cost is3_credit =
    let circ = load_circuit in_file circuit_name in
    let original = Circuit.clone circ in
    (* Resume: pick the checkpoint up before building the config so the
       run continues with the seed it was started with, not the CLI
       default.  A missing checkpoint file with --resume just starts
       fresh — that is what lets one command line be re-run after a
       kill, whether or not a checkpoint had been written yet. *)
    let resume_ck =
      if not resume then None
      else
        match checkpoint with
        | None -> failwith "--resume requires --checkpoint FILE"
        | Some f ->
          if not (Sys.file_exists f) then None
          else (
            match Powder.Checkpoint.load f with
            | Ok ck -> Some ck
            | Error e -> failwith (Powder.Checkpoint.error_to_string e))
    in
    let seed =
      match resume_ck with
      | Some ck -> ck.Powder.Checkpoint.seed
      | None -> Int64.of_int seed
    in
    let config =
      { Optimizer.default_config with
        words;
        seed;
        delay;
        classes;
        check_engine = engine;
        run_seconds = time_budget;
        check_seconds;
        round_seconds;
        max_rounds =
          (match max_rounds with
          | Some n -> n
          | None -> Optimizer.default_config.Optimizer.max_rounds);
        verify_applies;
        checkpoint_file = checkpoint;
        checkpoint_every =
          (if checkpoint_every > 0 then checkpoint_every
           else if checkpoint <> None then 1
           else 0);
        jobs;
        sig_index;
        window;
        cost;
        is3_credit;
      }
    in
    (* The run manifest: identity of this run (host, toolchain, every
       deterministic knob), embedded in the trace header, the profile
       and the JSON report so artifacts can be compared safely. *)
    let manifest =
      let opt_str f = function None -> "-" | Some v -> f v in
      Obs.Runinfo.create ~jobs ~seed
        ~circuit:
          (match circuit_name with
          | Some n -> n
          | None -> Option.value in_file ~default:"-")
        ~options:
          [
            ("words", string_of_int words);
            ("delay", delay_to_string delay);
            ( "classes",
              String.concat "," (List.map Powder.Subst.klass_name classes) );
            ( "engine",
              match engine with `Sat -> "sat" | `Podem -> "podem" | `Bdd -> "bdd"
            );
            ( "window",
              match window with None -> "off" | Some k -> string_of_int k );
            ("cost", Pareto.Cost.to_string cost);
            ("is3_credit", string_of_bool is3_credit);
            ("verify_applies", string_of_bool verify_applies);
            ("max_rounds", opt_str string_of_int max_rounds);
            ("time_budget", opt_str string_of_float time_budget);
            ("check_seconds", opt_str string_of_float check_seconds);
            ("round_seconds", opt_str string_of_float round_seconds);
          ]
        ()
    in
    (* Open both output files before the (possibly long) run so a bad
       path fails immediately instead of after the work is done. *)
    let fail_sys msg = prerr_endline ("powder_cli: " ^ msg); exit 1 in
    (* the profile directory first: --json may point into it *)
    let profile =
      match profile_dir with
      | None -> None
      | Some dir -> (
        try
          (try Unix.mkdir dir 0o755
           with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
          let chrome_oc = open_out (Filename.concat dir "trace.chrome.json") in
          Some (dir, Obs.Profile.create (), chrome_oc)
        with Sys_error m | Unix.Unix_error (Unix.EACCES, _, m) -> fail_sys m)
    in
    let json_out =
      match json_file with
      | None -> None
      | Some f -> (try Some (f, open_out f) with Sys_error m -> fail_sys m)
    in
    let sinks =
      (match trace_file with
      | Some f -> (
        try [ Obs.Trace.jsonl_sink f ] with Sys_error m -> fail_sys m)
      | None -> [])
      @
      match profile with
      | Some (_, p, chrome_oc) ->
        [ Obs.Profile.sink p; Obs.Profile.chrome_sink chrome_oc ]
      | None -> []
    in
    (match sinks with
    | [] -> ()
    | [ s ] -> Obs.Trace.set_sink s
    | ss -> Obs.Trace.set_sink (Obs.Trace.tee_sink ss));
    (* the manifest header must be the stream's first record *)
    if sinks <> [] then Obs.Runinfo.emit_run_start manifest;
    let report = Optimizer.optimize ~config ?resume:resume_ck circ in
    Obs.Trace.close_sink ();
    (match profile with
    | None -> ()
    | Some (dir, p, _) ->
      let write name s =
        let f = Filename.concat dir name in
        let oc = open_out f in
        output_string oc s;
        close_out oc;
        Printf.printf "wrote %s\n" f
      in
      write "profile.json"
        (Obs.Json.to_string
           (Obs.Profile.to_json ~run:(Obs.Runinfo.to_json manifest) p)
        ^ "\n");
      write "profile.folded" (Obs.Profile.to_folded p);
      Printf.printf "wrote %s\n" (Filename.concat dir "trace.chrome.json"));
    Format.printf "%a@." Optimizer.pp_report report;
    (match json_out with
    | Some (f, oc) ->
      let report_json =
        match Optimizer.report_to_json report with
        | Obs.Json.Obj fields ->
          Obs.Json.Obj (("run", Obs.Runinfo.to_json manifest) :: fields)
        | other -> other
      in
      output_string oc (Obs.Json.to_string report_json);
      output_char oc '\n';
      close_out oc;
      Printf.printf "wrote %s\n" f
    | None -> ());
    if metrics then Format.printf "=== metrics ===@.%a@." Obs.Metrics.dump ();
    if verify then begin
      match Atpg.Equiv.check ~exhaustive_limit:16 original circ with
      | Atpg.Equiv.Equivalent -> print_endline "verification: equivalent"
      | Atpg.Equiv.Different _ -> failwith "verification FAILED: outputs differ"
      | Atpg.Equiv.Unknown ->
        print_endline "verification: inconclusive (circuit too wide; every \
                       accepted substitution was individually proven)"
    end;
    emit out_file circ
  in
  let verify =
    Arg.(value & flag & info [ "verify" ]
           ~doc:"Re-check input/output equivalence of the final netlist.")
  in
  let trace_file =
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
           ~doc:"Write a JSONL event trace of the optimization loop (one JSON \
                 object per line: rounds, per-candidate verdicts, accepted \
                 substitutions with estimated vs. realized gain, timed spans).")
  in
  let json_file =
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE"
           ~doc:"Write the final report as machine-readable JSON, including \
                 the candidate funnel and per-phase timings.")
  in
  let profile_dir =
    Arg.(value & opt (some string) None & info [ "profile" ] ~docv:"DIR"
           ~doc:"Profile the run: write an attributed call-tree profile \
                 (profile.json), flamegraph collapsed stacks \
                 (profile.folded) and a Chrome trace-event file \
                 (trace.chrome.json) into DIR.  Inspect with the report \
                 command, a flamegraph viewer, or chrome://tracing.")
  in
  let metrics =
    Arg.(value & flag & info [ "metrics" ]
           ~doc:"Dump the telemetry registry (counters and latency \
                 histograms from the simulator, power estimator, STA and the \
                 ATPG proof engines) after the run.")
  in
  let time_budget =
    Arg.(value & opt (some float) None & info [ "time-budget" ] ~docv:"SECONDS"
           ~doc:"Wall-clock budget for the whole run; on expiry the \
                 optimizer stops cleanly with stopped_by=run_budget.")
  in
  let check_seconds =
    Arg.(value & opt (some float) None & info [ "check-seconds" ] ~docv:"SECONDS"
           ~doc:"Wall-clock budget per exact permissibility check; an expired \
                 check is rejected (counted as a timeout), never hung.")
  in
  let round_seconds =
    Arg.(value & opt (some float) None & info [ "round-seconds" ] ~docv:"SECONDS"
           ~doc:"Wall-clock budget per optimization round; expiry escalates \
                 the degradation ladder.")
  in
  let max_rounds =
    Arg.(value & opt (some int) None & info [ "max-rounds" ] ~docv:"N"
           ~doc:"Stop after N candidate-generation rounds.")
  in
  let checkpoint =
    Arg.(value & opt (some string) None & info [ "checkpoint" ] ~docv:"FILE"
           ~doc:"Save a resumable checkpoint (atomically) every \
                 $(b,--checkpoint-every) rounds.")
  in
  let resume =
    Arg.(value & flag & info [ "resume" ]
           ~doc:"Continue from the $(b,--checkpoint) file if it exists \
                 (start fresh otherwise); the seed is taken from the \
                 checkpoint so the run continues bit-identically.")
  in
  let verify_applies =
    Arg.(value & opt bool true & info [ "verify-applies" ] ~docv:"BOOL"
           ~doc:"Guard every accepted substitution with a transactional \
                 journal and independent re-simulation; mismatches are \
                 rolled back (default true).")
  in
  let checkpoint_every =
    Arg.(value & opt int 0 & info [ "checkpoint-every" ] ~docv:"N"
           ~doc:"Checkpoint cadence in rounds (default 1 when \
                 $(b,--checkpoint) is given).")
  in
  Cmd.v
    (Cmd.info "optimize" ~doc:"Reduce power by permissible substitutions (POWDER).")
    Term.(const run $ in_file $ circuit_name $ out_file $ words $ seed
          $ delay_mode $ classes $ engine_arg $ verify $ trace_file
          $ json_file $ profile_dir $ metrics $ time_budget $ check_seconds
          $ round_seconds $ max_rounds $ checkpoint $ resume $ verify_applies
          $ checkpoint_every $ jobs_arg $ sig_index_arg $ window_arg
          $ cost_arg $ is3_credit_arg)

(* ------------------------------------------------------------------ *)
(* Profile report: human-readable view of a --profile directory.       *)
(* ------------------------------------------------------------------ *)

let report_cmd =
  let read_file path =
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  in
  let module J = Obs.Json in
  (* flatten the call tree into (path, count, inclusive, exclusive) rows *)
  let rec collect_nodes prefix acc node =
    let name = Option.value ~default:"?" (Option.bind (J.member "name" node) J.get_string) in
    let path = prefix @ [ name ] in
    let f key =
      Option.value ~default:0.0 (Option.bind (J.member key node) J.get_float)
    in
    let count =
      Option.value ~default:0 (Option.bind (J.member "count" node) J.get_int)
    in
    let acc = (path, count, f "inclusive_s", f "exclusive_s") :: acc in
    match Option.bind (J.member "children" node) J.get_list with
    | Some kids -> List.fold_left (collect_nodes path) acc kids
    | None -> acc
  in
  let run dir top =
    let path =
      if Sys.file_exists dir && Sys.is_directory dir then
        Filename.concat dir "profile.json"
      else dir
    in
    let j =
      match J.of_string (read_file path) with
      | Ok j -> j
      | Error e -> failwith (path ^ ": " ^ e)
    in
    (match J.member "run" j with
    | Some run ->
      let s k =
        Option.value ~default:"-" (Option.bind (J.member k run) J.get_string)
      in
      Printf.printf "run: tool=%s circuit=%s seed=%s options=%s\n" (s "tool")
        (s "circuit") (s "seed") (s "options_hash")
    | None -> ());
    let total =
      Option.value ~default:0.0
        (Option.bind (J.member "total_seconds" j) J.get_float)
    in
    let spans =
      Option.value ~default:0 (Option.bind (J.member "spans" j) J.get_int)
    in
    Printf.printf "spans: %d, total: %.3fs\n\n" spans total;
    let rows =
      match Option.bind (J.member "tree" j) J.get_list with
      | Some roots -> List.fold_left (collect_nodes []) [] roots
      | None -> []
    in
    let rows =
      List.sort (fun (_, _, _, a) (_, _, _, b) -> Float.compare b a) rows
    in
    Printf.printf "%10s %7s %8s  %s\n" "exclusive" "%total" "calls" "span";
    List.iteri
      (fun i (path, count, _incl, excl) ->
        if i < top then
          Printf.printf "%9.3fs %6.1f%% %8d  %s\n" excl
            (if total > 0.0 then 100.0 *. excl /. total else 0.0)
            count
            (String.concat ";" path))
      rows;
    (match Option.bind (J.member "rounds" j) J.get_list with
    | None | Some [] -> ()
    | Some rounds ->
      Printf.printf "\n%5s %6s %8s  %s\n" "round" "pool" "accepted" "rejected";
      List.iter
        (fun r ->
          let i k =
            Option.value ~default:0 (Option.bind (J.member k r) J.get_int)
          in
          let rejected =
            match J.member "rejected" r with
            | Some (J.Obj fields) ->
              String.concat " "
                (List.map
                   (fun (k, v) ->
                     Printf.sprintf "%s=%d"
                       k (Option.value ~default:0 (J.get_int v)))
                   fields)
            | _ -> ""
          in
          Printf.printf "%5d %6d %8d  %s\n" (i "round") (i "pool")
            (i "accepted") rejected)
        rounds)
  in
  let dir =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"DIR"
           ~doc:"A --profile output directory (or a profile.json file).")
  in
  let top =
    Arg.(value & opt int 15 & info [ "top" ] ~docv:"N"
           ~doc:"Rows in the exclusive-time table.")
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:"Summarize a profile directory: run manifest, top spans by \
             exclusive time, per-round candidate funnel.")
    Term.(const run $ dir $ top)

let map_cmd =
  let run in_file out_file objective =
    match in_file with
    | None -> failwith "--in FILE (a .names BLIF network) is required"
    | Some file -> (
      match Blif.Blif_io.network_of_file file with
      | Error e -> failwith (Blif.Blif_io.error_to_string e)
      | Ok net ->
        let aig = Aig.Network.to_aig net in
        let obj =
          if objective = "area" then Mapper.Techmap.Area else Mapper.Techmap.Power
        in
        let circ = Mapper.Techmap.map ~objective:obj Gatelib.Library.lib2 aig in
        Format.printf "%a@." Circuit.pp_stats circ;
        (match out_file with
        | Some f ->
          Blif.Blif_io.circuit_to_file f circ;
          Printf.printf "wrote %s\n" f
        | None -> print_string (Blif.Blif_io.circuit_to_string circ)))
  in
  let objective =
    Arg.(value & opt string "power" & info [ "objective" ] ~docv:"OBJ"
           ~doc:"Mapping objective: power or area.")
  in
  Cmd.v
    (Cmd.info "map" ~doc:"Technology-map a BLIF logic network onto lib2.")
    Term.(const run $ in_file $ out_file $ objective)

let stats_cmd =
  let run in_file circuit_name words seed =
    let circ = load_circuit in_file circuit_name in
    let eng = Sim.Engine.create circ ~words in
    Sim.Engine.randomize eng (Sim.Rng.create (Int64.of_int seed));
    let est = Power.Estimator.create eng in
    let sta = Sta.Timing.analyze circ in
    Format.printf "%a@." Circuit.pp_stats circ;
    Printf.printf "switched capacitance: %.4f\n" (Power.Estimator.total est);
    Printf.printf "power at 3.3V/20MHz: %.3g W\n" (Power.Estimator.watts est);
    Printf.printf "critical delay: %.2f\n" (Sta.Timing.circuit_delay sta)
  in
  Cmd.v
    (Cmd.info "stats" ~doc:"Report power, area and delay of a mapped netlist.")
    Term.(const run $ in_file $ circuit_name $ words $ seed)

let suite_cmd =
  let run () =
    Printf.printf "%-10s %-10s %-6s %-6s %s\n" "name" "source" "pis" "pos"
      "description";
    List.iter
      (fun spec ->
        let g = spec.Circuits.Suite.build () in
        Printf.printf "%-10s %-10s %-6d %-6d %s\n" spec.Circuits.Suite.name
          (Circuits.Suite.provenance_name spec.Circuits.Suite.provenance)
          (List.length (Aig.Graph.pis g))
          (List.length (Aig.Graph.pos g))
          spec.Circuits.Suite.description)
      Circuits.Suite.all
  in
  Cmd.v
    (Cmd.info "suite" ~doc:"List the built-in benchmark circuits.")
    Term.(const run $ const ())

let atpg_cmd =
  let run in_file circuit_name patterns =
    let circ = load_circuit in_file circuit_name in
    let cov = Atpg.Faultsim.random_coverage circ ~patterns ~seed:7L in
    Printf.printf "random-pattern coverage: %d / %d\n" cov.Atpg.Faultsim.detected
      cov.Atpg.Faultsim.total;
    let found = ref 0 and redundant = ref 0 and aborted = ref 0 in
    List.iter
      (fun f ->
        match Atpg.Podem.generate_test circ f with
        | Atpg.Podem.Test _ -> incr found
        | Atpg.Podem.Untestable -> incr redundant
        | Atpg.Podem.Aborted _ -> incr aborted)
      cov.Atpg.Faultsim.undetected;
    Printf.printf "PODEM: %d additional tests, %d redundant, %d aborted\n"
      !found !redundant !aborted
  in
  let patterns =
    Arg.(value & opt int 256 & info [ "patterns" ] ~docv:"N"
           ~doc:"Random patterns for fault grading.")
  in
  Cmd.v
    (Cmd.info "atpg" ~doc:"Stuck-at fault grading and PODEM test generation.")
    Term.(const run $ in_file $ circuit_name $ patterns)

let redundancy_cmd =
  let run in_file circuit_name out_file =
    let circ = load_circuit in_file circuit_name in
    let original = Circuit.clone circ in
    let stats = Atpg.Redundancy.remove circ in
    Printf.printf
      "wires replaced: %d, cells rewritten: %d, passes: %d, aborted proofs: %d\n"
      stats.Atpg.Redundancy.wires_replaced stats.Atpg.Redundancy.cells_rewritten
      stats.Atpg.Redundancy.passes stats.Atpg.Redundancy.aborted_faults;
    Printf.printf "area: %.0f -> %.0f\n" (Circuit.area original) (Circuit.area circ);
    emit out_file circ
  in
  Cmd.v
    (Cmd.info "redundancy"
       ~doc:"ATPG-based redundancy removal (area-oriented baseline).")
    Term.(const run $ in_file $ circuit_name $ out_file)

let resize_cmd =
  let run in_file circuit_name out_file words =
    let circ = load_circuit in_file circuit_name in
    let report = Powder.Resize.optimize ~words circ in
    Format.printf "%a@." Powder.Resize.pp_report report;
    emit out_file circ
  in
  Cmd.v
    (Cmd.info "resize"
       ~doc:"Drive-strength re-sizing for low power under the initial delay.")
    Term.(const run $ in_file $ circuit_name $ out_file $ words)

let glitch_cmd =
  let run in_file circuit_name pairs =
    let circ = load_circuit in_file circuit_name in
    let report = Power.Glitch.estimate ~pairs circ in
    Format.printf "%a@." Power.Glitch.pp_report report
  in
  let pairs =
    Arg.(value & opt int 256 & info [ "pairs" ] ~docv:"N"
           ~doc:"Random vector pairs for the timed simulation.")
  in
  Cmd.v
    (Cmd.info "glitch"
       ~doc:"Timed power estimation: quantify hazards the zero-delay model skips.")
    Term.(const run $ in_file $ circuit_name $ pairs)

let sweep_cmd =
  let run circuit_names words =
    let builders =
      List.filter_map
        (fun n ->
          Option.map
            (fun spec () -> Circuits.Suite.mapped spec)
            (Circuits.Suite.find n))
        circuit_names
    in
    if builders = [] then failwith "no valid circuits given";
    let config = { Optimizer.default_config with words } in
    let points = Powder.Tradeoff.sweep ~config builders in
    Format.printf "%a@." Powder.Tradeoff.pp_series points
  in
  let names =
    Arg.(value & pos_all string [ "rd84"; "alu2" ] & info [] ~docv:"CIRCUIT")
  in
  Cmd.v
    (Cmd.info "sweep" ~doc:"Power-delay trade-off sweep (Figure 6 experiment).")
    Term.(const run $ names $ words)

(* ------------------------------------------------------------------ *)
(* pareto: power/delay frontier exploration.                           *)
(* ------------------------------------------------------------------ *)

let pareto_cmd =
  let run in_file circuit_name words seed classes engine cost is3_credit
      constraints jobs json_file profile_dir trace_file checkpoint_dir
      max_rounds time_budget window sig_index =
    let name =
      match circuit_name with
      | Some n -> n
      | None -> Option.value in_file ~default:"-"
    in
    (* fresh circuit per point: each constraint optimizes its own copy *)
    let build () = load_circuit in_file circuit_name in
    ignore (build ());  (* fail on a bad input before any work is done *)
    let config =
      {
        Optimizer.default_config with
        words;
        seed = Int64.of_int seed;
        classes;
        check_engine = engine;
        cost;
        is3_credit;
        run_seconds = time_budget;
        max_rounds =
          (match max_rounds with
          | Some n -> n
          | None -> Optimizer.default_config.Optimizer.max_rounds);
        sig_index;
        window;
      }
    in
    let manifest =
      let opt_str f = function None -> "-" | Some v -> f v in
      Obs.Runinfo.create ~jobs ~seed:(Int64.of_int seed) ~circuit:name
        ~options:
          [
            ("mode", "pareto");
            ("words", string_of_int words);
            ( "constraints",
              String.concat ","
                (List.map Pareto.Sweep.spec_to_string constraints) );
            ( "classes",
              String.concat "," (List.map Powder.Subst.klass_name classes) );
            ( "engine",
              match engine with `Sat -> "sat" | `Podem -> "podem" | `Bdd -> "bdd"
            );
            ( "window",
              match window with None -> "off" | Some k -> string_of_int k );
            ("cost", Pareto.Cost.to_string cost);
            ("is3_credit", string_of_bool is3_credit);
            ("max_rounds", opt_str string_of_int max_rounds);
            ("time_budget", opt_str string_of_float time_budget);
          ]
        ()
    in
    let fail_sys msg = prerr_endline ("powder_cli: " ^ msg); exit 1 in
    let profile =
      match profile_dir with
      | None -> None
      | Some dir -> (
        try
          (try Unix.mkdir dir 0o755
           with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
          let chrome_oc = open_out (Filename.concat dir "trace.chrome.json") in
          Some (dir, Obs.Profile.create (), chrome_oc)
        with Sys_error m | Unix.Unix_error (Unix.EACCES, _, m) -> fail_sys m)
    in
    let json_out =
      match json_file with
      | None -> None
      | Some f -> (try Some (f, open_out f) with Sys_error m -> fail_sys m)
    in
    let sinks =
      (match trace_file with
      | Some f -> (
        try [ Obs.Trace.jsonl_sink f ] with Sys_error m -> fail_sys m)
      | None -> [])
      @
      match profile with
      | Some (_, p, chrome_oc) ->
        [ Obs.Profile.sink p; Obs.Profile.chrome_sink chrome_oc ]
      | None -> []
    in
    (match sinks with
    | [] -> ()
    | [ s ] -> Obs.Trace.set_sink s
    | ss -> Obs.Trace.set_sink (Obs.Trace.tee_sink ss));
    if sinks <> [] then Obs.Runinfo.emit_run_start manifest;
    let report =
      Pareto.Sweep.run ~config ~specs:constraints ~jobs ?checkpoint_dir ~name
        build
    in
    Obs.Trace.close_sink ();
    (match profile with
    | None -> ()
    | Some (dir, p, _) ->
      let write fname s =
        let f = Filename.concat dir fname in
        let oc = open_out f in
        output_string oc s;
        close_out oc;
        Printf.printf "wrote %s\n" f
      in
      write "profile.json"
        (Obs.Json.to_string
           (Obs.Profile.to_json ~run:(Obs.Runinfo.to_json manifest) p)
        ^ "\n");
      write "profile.folded" (Obs.Profile.to_folded p);
      Printf.printf "wrote %s\n" (Filename.concat dir "trace.chrome.json"));
    Format.printf "%a@." Pareto.Sweep.pp report;
    match json_out with
    | Some (f, oc) ->
      let report_json =
        match Pareto.Sweep.to_json report with
        | Obs.Json.Obj fields ->
          Obs.Json.Obj (("run", Obs.Runinfo.to_json manifest) :: fields)
        | other -> other
      in
      output_string oc (Obs.Json.to_string report_json);
      output_char oc '\n';
      close_out oc;
      Printf.printf "wrote %s\n" f
    | None -> ()
  in
  let constraints =
    let parse s =
      match Pareto.Sweep.spec_of_string s with
      | Ok sp -> Ok sp
      | Error m -> Error (`Msg m)
    in
    let print fmt sp =
      Format.pp_print_string fmt (Pareto.Sweep.spec_to_string sp)
    in
    Arg.(value
         & opt (list (conv (parse, print))) Pareto.Sweep.default_specs
         & info [ "constraints" ] ~docv:"LIST"
             ~doc:"Comma-separated delay constraints, each a multiple of the \
                   mapped netlist's initial critical path (e.g. 1.0,1.25) or \
                   unbounded.  Default 1.0,1.1,1.25,unbounded.")
  in
  let json_file =
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE"
           ~doc:"Write the sweep report (points, dominance-pruned frontier, \
                 per-point optimizer reports) as machine-readable JSON.  \
                 Byte-identical across --jobs values modulo the volatile \
                 timing fields json_check --compare-reports ignores.")
  in
  let profile_dir =
    Arg.(value & opt (some string) None & info [ "profile" ] ~docv:"DIR"
           ~doc:"Profile the sweep: write profile.json, profile.folded and \
                 trace.chrome.json into DIR (see the optimize command).")
  in
  let trace_file =
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
           ~doc:"Write a JSONL event trace of the sweep (pareto.point spans \
                 plus each point's optimizer events).")
  in
  let checkpoint_dir =
    Arg.(value & opt (some string) None & info [ "checkpoint-dir" ] ~docv:"DIR"
           ~doc:"Per-point crash recovery: each constraint checkpoints to \
                 DIR/point-LABEL.json and an existing checkpoint there is \
                 resumed, so re-running an interrupted sweep redoes only the \
                 unfinished points.")
  in
  let time_budget =
    Arg.(value & opt (some float) None & info [ "time-budget" ] ~docv:"SECONDS"
           ~doc:"Wall-clock budget per point (each point's optimizer stops \
                 cleanly with stopped_by=run_budget on expiry).")
  in
  let max_rounds =
    Arg.(value & opt (some int) None & info [ "max-rounds" ] ~docv:"N"
           ~doc:"Round cap per point.")
  in
  Cmd.v
    (Cmd.info "pareto"
       ~doc:"Explore the power/delay trade-off: optimize under a list of \
             delay constraints and report the dominance-pruned frontier, \
             optionally under the glitch-aware cost model.")
    Term.(const run $ in_file $ circuit_name $ words $ seed $ classes
          $ engine_arg $ cost_arg $ is3_credit_arg $ constraints $ jobs_arg
          $ json_file $ profile_dir $ trace_file $ checkpoint_dir $ max_rounds
          $ time_budget $ window_arg $ sig_index_arg)

let fuzz_cmd =
  let run seed budget cases max_ins candidates out_dir inject replay jobs =
    match replay with
    | Some path -> (
      match Fuzz.Harness.replay path with
      | Ok msg ->
        Printf.printf "FUZZ REPLAY ok: %s\n" msg
      | Error msg ->
        Printf.printf "FUZZ REPLAY failed: %s\n" msg;
        exit 2)
    | None ->
      let forge_window = inject = Some "forge_window" in
      let inject =
        match inject with
        | None -> None
        | Some _ when forge_window -> None
        | Some name -> (
          match Fuzz.Bundle.fault_of_name name with
          | Some f -> Some f
          | None ->
            failwith
              ("unknown fault " ^ name
             ^ " (expected forge_verdict, corrupt_apply, expire_deadline or \
                forge_window)"))
      in
      let config =
        {
          Fuzz.Harness.default_config with
          seed = Int64.of_int seed;
          budget_seconds = (if budget <= 0.0 then None else Some budget);
          cases;
          max_ins;
          candidates_per_case = candidates;
          out_dir;
          inject;
          forge_window;
          jobs;
        }
      in
      let report = Fuzz.Harness.run config in
      Format.printf "%a@." Fuzz.Harness.pp_report report;
      List.iter
        (fun (f : Fuzz.Harness.failure) ->
          Printf.printf "FUZZ FAIL case=%d kind=%s gates=%d bundle=%s\n" f.case
            f.kind f.gates
            (Option.value f.bundle_path ~default:"-"))
        report.Fuzz.Harness.failures;
      (* an injected fault is *supposed* to surface as a caught
         injected_corruption failure; anything else is a defect *)
      let expected f =
        f.Fuzz.Harness.kind
        = (if forge_window then "window_forge" else "injected_corruption")
      in
      let injecting = inject <> None || forge_window in
      let clean =
        if not injecting then report.Fuzz.Harness.failures = []
        else
          report.Fuzz.Harness.injected_caught
          && List.for_all expected report.Fuzz.Harness.failures
      in
      if injecting then
        Printf.printf "FUZZ INJECT caught=%b\n"
          report.Fuzz.Harness.injected_caught;
      if not clean then exit 2
  in
  let budget =
    Arg.(value & opt float 20.0 & info [ "budget" ] ~docv:"SECONDS"
           ~doc:"Wall-clock campaign budget; 0 disables the time bound.")
  in
  let cases =
    Arg.(value & opt int 0 & info [ "cases" ] ~docv:"N"
           ~doc:"Maximum cases to run (0 = until the budget expires).")
  in
  let max_ins =
    Arg.(value & opt int 10 & info [ "max-ins" ] ~docv:"N"
           ~doc:"Upper bound on generated primary-input counts.")
  in
  let candidates =
    Arg.(value & opt int 6 & info [ "candidates" ] ~docv:"N"
           ~doc:"Substitution verdicts cross-checked per case.")
  in
  let out_dir =
    Arg.(value & opt (some string) None & info [ "out" ] ~docv:"DIR"
           ~doc:"Directory for shrunk failure bundles (JSON + embedded BLIF).")
  in
  let inject =
    Arg.(value & opt (some string) None & info [ "inject" ] ~docv:"FAULT"
           ~doc:"Arm a one-shot fault: a Guard fault (forge_verdict, \
                 corrupt_apply or expire_deadline) with the transactional \
                 guard disabled, or forge_window (a lying windowed \
                 permissibility proof); the harness must catch, shrink and \
                 bundle the corruption.")
  in
  let replay =
    Arg.(value & opt (some string) None & info [ "replay" ] ~docv:"BUNDLE"
           ~doc:"Replay a saved failure bundle instead of running a campaign.")
  in
  let fuzz_seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N"
           ~doc:"Campaign seed; every case derives from it deterministically.")
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:"Differential fuzzing of the substitution engine: random mapped \
             netlists, cross-checked equivalence backends, metamorphic \
             optimizer properties, auto-shrunk replayable failures.")
    Term.(const run $ fuzz_seed $ budget $ cases $ max_ins $ candidates
          $ out_dir $ inject $ replay $ jobs_arg)

(* ------------------------------------------------------------------ *)
(* serve: the fault-tolerant batch optimization service.               *)
(* ------------------------------------------------------------------ *)

let serve_cmd =
  let run input state output jobs slice_rounds retry_base retry_cap
      max_attempts seed inject chaos_seed =
    let chaos =
      match inject with
      | None -> None
      | Some name -> (
        match Serve.Chaos.fault_of_name name with
        | None ->
          failwith
            ("unknown fault " ^ name
           ^ " (expected worker-crash, malformed-job, deadline-storm or \
              checkpoint-corrupt)")
        | Some f ->
          let malformed =
            if f = Serve.Chaos.Malformed_job then
              Array.map snd
                (Fuzz.Proto.corpus ~seed:(Int64.of_int chaos_seed) ())
            else [||]
          in
          Some (Serve.Chaos.create ~malformed f))
    in
    let config =
      {
        (Serve.Supervisor.default_config ~state_dir:state) with
        jobs;
        slice_rounds;
        retry =
          {
            Serve.Retry.base = retry_base;
            cap = retry_cap;
            max_attempts;
            jitter = Serve.Retry.default.Serve.Retry.jitter;
          };
        seed = Int64.of_int seed;
        chaos;
      }
    in
    (* graceful shutdown: SIGTERM/SIGINT set a flag the event loop
       polls between slices; the queue is persisted before exit *)
    let stop = ref false in
    let handler = Sys.Signal_handle (fun _ -> stop := true) in
    Sys.set_signal Sys.sigterm handler;
    Sys.set_signal Sys.sigint handler;
    let rec mkdir_p dir =
      if not (Sys.file_exists dir) then begin
        mkdir_p (Filename.dirname dir);
        try Unix.mkdir dir 0o755
        with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
      end
    in
    mkdir_p state;
    let out_path =
      match output with
      | Some f -> f
      | None -> Filename.concat state "results.jsonl"
    in
    (* append: a restarted server extends the same event log *)
    let oc =
      open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 out_path
    in
    let emit j =
      output_string oc (Obs.Json.to_string j);
      output_char oc '\n';
      flush oc
    in
    let source = Serve.Supervisor.file_source input in
    let outcome =
      Serve.Supervisor.run config ~source ~emit
        ~should_stop:(fun () -> !stop)
        ()
    in
    close_out oc;
    Printf.printf
      "serve: %s  completed=%d failed=%d rejected=%d recovered=%d\n"
      (if outcome.Serve.Supervisor.clean_exit then "drained" else "stopped")
      outcome.Serve.Supervisor.completed outcome.Serve.Supervisor.failed
      outcome.Serve.Supervisor.rejected outcome.Serve.Supervisor.recovered
  in
  let input =
    Arg.(value & opt string "-" & info [ "input" ] ~docv:"FILE"
           ~doc:"JSONL request source: a file, a FIFO, or - for stdin.")
  in
  let state =
    Arg.(required & opt (some string) None & info [ "state" ] ~docv:"DIR"
           ~doc:"State directory: queue snapshot, per-job checkpoints, \
                 result files.  A restart with the same directory recovers \
                 pending work.")
  in
  let output =
    Arg.(value & opt (some string) None & info [ "output" ] ~docv:"FILE"
           ~doc:"JSONL event log (default \\$(state)/results.jsonl, \
                 appended).")
  in
  let jobs =
    Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N"
           ~doc:"Parallel worker slots: up to N job slices run \
                 concurrently on a domain pool.")
  in
  let slice_rounds =
    Arg.(value & opt int 2 & info [ "slice-rounds" ] ~docv:"N"
           ~doc:"Optimizer rounds per scheduling slice; smaller slices \
                 preempt faster.")
  in
  let retry_base =
    Arg.(value & opt float 0.05 & info [ "retry-base" ] ~docv:"SECONDS"
           ~doc:"First-retry backoff delay.")
  in
  let retry_cap =
    Arg.(value & opt float 2.0 & info [ "retry-cap" ] ~docv:"SECONDS"
           ~doc:"Backoff ceiling.")
  in
  let max_attempts =
    Arg.(value & opt int 5 & info [ "max-attempts" ] ~docv:"N"
           ~doc:"Total attempts per job (first try included) before a \
                 transient failure becomes permanent.")
  in
  let serve_seed =
    Arg.(value & opt int 0xC0FFEE & info [ "seed" ] ~docv:"N"
           ~doc:"Server seed (retry jitter streams derive from it).")
  in
  let inject =
    Arg.(value & opt (some string) None & info [ "inject" ] ~docv:"FAULT"
           ~doc:"Chaos injection: worker-crash, malformed-job, \
                 deadline-storm or checkpoint-corrupt.  Every well-formed \
                 job must still complete with byte-identical outputs.")
  in
  let chaos_seed =
    Arg.(value & opt int 0xBADF00D & info [ "chaos-seed" ] ~docv:"N"
           ~doc:"Seed for the malformed-job corpus.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Fault-tolerant batch optimization service: JSONL job protocol, \
             priority queue, supervised sliced workers with checkpointed \
             preemption, typed failure taxonomy, retry with backoff, \
             crash-safe state, chaos injection.")
    Term.(const run $ input $ state $ output $ jobs $ slice_rounds
          $ retry_base $ retry_cap $ max_attempts $ serve_seed $ inject
          $ chaos_seed)

let () =
  Obs.Runtime.tune_gc ();
  let default =
    Term.(ret (const (`Help (`Pager, None))))
  in
  let info =
    Cmd.info "powder_cli" ~version:"1.0.0"
      ~doc:"Power reduction after technology mapping by structural transformations."
  in
  exit
    (Cmd.eval
       (Cmd.group ~default info
          [ optimize_cmd; pareto_cmd; report_cmd; map_cmd; stats_cmd;
            suite_cmd; atpg_cmd; sweep_cmd; redundancy_cmd; resize_cmd;
            glitch_cmd; fuzz_cmd; serve_cmd ]))
