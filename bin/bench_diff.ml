(* Perf-regression gate over two BENCH_powder.json files.

     bench_diff OLD NEW [--rel-tol R] [--abs-floor S]
     bench_diff --perturb SRC DST [--factor F]

   Compares the per-run wall-clock figures (cpu_seconds and every
   phase_seconds entry) of every run label present in OLD.  A metric
   regresses when it is BOTH relatively slower (new > old * (1 + R))
   and absolutely slower (new - old > S): the relative tolerance
   absorbs machine noise on long phases, the absolute floor keeps
   micro-second phases from tripping the gate on scheduler jitter.
   Exit 1 on any regression, 0 otherwise.

   [--perturb] writes a copy of SRC with every timing multiplied by F
   (default 1.5) — CI uses it to prove the gate actually fires without
   paying for a second bench run. *)

module J = Obs.Json

let rel_tol = ref 0.35
let abs_floor = ref 0.05
let factor = ref 1.5

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let parse_file path =
  match J.of_string (read_file path) with
  | Ok j -> j
  | Error e ->
    Printf.eprintf "bench_diff: %s: %s\n" path e;
    exit 2

(* ------------------------------------------------------------------ *)
(* --perturb                                                           *)
(* ------------------------------------------------------------------ *)

(* Multiply every timing field by the factor.  Timing lives in
   "cpu_seconds" floats and inside "phase_seconds" objects; everything
   else is copied verbatim. *)
let rec perturb = function
  | J.Obj fields ->
    J.Obj
      (List.map
         (fun (k, v) ->
           match (k, v) with
           | "cpu_seconds", J.Float f -> (k, J.Float (f *. !factor))
           | "phase_seconds", J.Obj phases ->
             ( k,
               J.Obj
                 (List.map
                    (fun (p, pv) ->
                      match pv with
                      | J.Float f -> (p, J.Float (f *. !factor))
                      | other -> (p, other))
                    phases) )
           | _ -> (k, perturb v))
         fields)
  | J.List xs -> J.List (List.map perturb xs)
  | other -> other

let run_perturb src dst =
  let j = perturb (parse_file src) in
  let oc = open_out dst in
  output_string oc (J.to_string j);
  output_char oc '\n';
  close_out oc;
  Printf.printf "bench_diff: wrote %s (timings x%g)\n" dst !factor

(* ------------------------------------------------------------------ *)
(* Comparison                                                          *)
(* ------------------------------------------------------------------ *)

type verdict = Ok_ | Faster | Regressed

let regressions = ref 0
let compared = ref 0

let judge old_v new_v =
  if new_v > (old_v *. (1.0 +. !rel_tol)) && new_v -. old_v > !abs_floor then
    Regressed
  else if old_v > (new_v *. (1.0 +. !rel_tol)) && old_v -. new_v > !abs_floor
  then Faster
  else Ok_

let report label metric old_v new_v =
  incr compared;
  let v = judge old_v new_v in
  let tag =
    match v with Ok_ -> "" | Faster -> "  (faster)" | Regressed -> "  REGRESSED"
  in
  let delta =
    if old_v > 0.0 then 100.0 *. (new_v -. old_v) /. old_v else 0.0
  in
  if v <> Ok_ then begin
    Printf.printf "%-45s %-12s %9.3fs -> %9.3fs %+7.1f%%%s\n" label metric
      old_v new_v delta tag;
    if v = Regressed then incr regressions
  end

let float_member k j = Option.bind (J.member k j) J.get_float

let compare_run label old_run new_run =
  (match (float_member "cpu_seconds" old_run, float_member "cpu_seconds" new_run)
   with
  | Some o, Some n -> report label "cpu_seconds" o n
  | _ -> ());
  match (J.member "phase_seconds" old_run, J.member "phase_seconds" new_run) with
  | Some (J.Obj old_ph), Some (J.Obj new_ph) ->
    List.iter
      (fun (phase, ov) ->
        match (J.get_float ov, Option.bind (List.assoc_opt phase new_ph) J.get_float)
        with
        | Some o, Some n -> report label phase o n
        | _ -> ())
      old_ph
  | _ -> ()

let run_compare old_path new_path =
  let jo = parse_file old_path and jn = parse_file new_path in
  (match
     ( Option.bind (J.member "schema_version" jo) J.get_int,
       Option.bind (J.member "schema_version" jn) J.get_int )
   with
  | Some a, Some b when a <> b ->
    Printf.eprintf
      "bench_diff: schema_version mismatch (%d vs %d); refusing to compare\n" a
      b;
    exit 2
  | _ -> ());
  (match
     ( Option.bind (J.member "run" jo) (J.member "options_hash"),
       Option.bind (J.member "run" jn) (J.member "options_hash") )
   with
  | Some a, Some b when a <> b ->
    Printf.printf
      "bench_diff: warning: options_hash differs — the runs were configured \
       differently\n"
  | _ -> ());
  match (J.member "runs" jo, J.member "runs" jn) with
  | Some (J.Obj old_runs), Some (J.Obj new_runs) ->
    List.iter
      (fun (label, old_run) ->
        match List.assoc_opt label new_runs with
        | Some new_run -> compare_run label old_run new_run
        | None ->
          Printf.printf "bench_diff: warning: %s missing in %s\n" label
            new_path)
      old_runs;
    List.iter
      (fun (label, _) ->
        if List.assoc_opt label old_runs = None then
          Printf.printf "bench_diff: note: %s only in %s\n" label new_path)
      new_runs;
    Printf.printf
      "bench_diff: %d metrics compared, %d regressions (rel-tol %g%%, \
       abs-floor %gs)\n"
      !compared !regressions (100.0 *. !rel_tol) !abs_floor;
    if !regressions > 0 then exit 1
  | _ ->
    Printf.eprintf "bench_diff: missing \"runs\" object in one of the inputs\n";
    exit 2

(* ------------------------------------------------------------------ *)
(* Argument parsing.                                                   *)
(* ------------------------------------------------------------------ *)

let usage () =
  prerr_endline
    "usage: bench_diff OLD NEW [--rel-tol R] [--abs-floor S]\n\
    \       bench_diff --perturb SRC DST [--factor F]";
  exit 2

let () =
  let positional = ref [] in
  let perturb_mode = ref false in
  let rec parse = function
    | [] -> ()
    | "--perturb" :: rest ->
      perturb_mode := true;
      parse rest
    | "--rel-tol" :: v :: rest ->
      rel_tol := float_of_string v;
      parse rest
    | "--abs-floor" :: v :: rest ->
      abs_floor := float_of_string v;
      parse rest
    | "--factor" :: v :: rest ->
      factor := float_of_string v;
      parse rest
    | a :: rest when String.length a > 0 && a.[0] <> '-' ->
      positional := a :: !positional;
      parse rest
    | _ -> usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  match (List.rev !positional, !perturb_mode) with
  | [ src; dst ], true -> run_perturb src dst
  | [ old_path; new_path ], false -> run_compare old_path new_path
  | _ -> usage ()
