(* Validate that a file is well-formed JSON (default) or JSONL
   ([--jsonl]: one JSON object per non-empty line), or compare two
   optimizer reports ([--compare-reports]: structural equality after
   dropping wall-clock fields).  Exit 0 on success.  Used by ci.sh to
   smoke-check the telemetry outputs without external tooling. *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let parse_file path =
  match Obs.Json.of_string (read_file path) with
  | Ok j -> j
  | Error e ->
    Printf.eprintf "%s: %s\n" path e;
    exit 1

(* Timings differ between any two runs, and [jobs] differs between runs
   whose equivalence we specifically want to check; everything else in a
   report is deterministic for a given seed and must match across
   kill/resume and across job counts.  The embedded run manifest is
   compared too, after dropping its own volatile identity fields
   (hostname, pid, timestamp, ... — see [Obs.Runinfo.volatile_fields]):
   seed, circuit and options hash MUST match for the comparison to be
   meaningful. *)
let strip_volatile = function
  | Obs.Json.Obj fields ->
    Obs.Json.Obj
      (List.filter_map
         (fun (k, v) ->
           if k = "cpu_seconds" || k = "phase_seconds" || k = "jobs" then None
           else if k = "run" then Some (k, Obs.Runinfo.strip_volatile v)
           else Some (k, v))
         fields)
  | other -> other

let compare_reports a b =
  let ja = strip_volatile (parse_file a) and jb = strip_volatile (parse_file b) in
  if ja = jb then Printf.printf "%s and %s: reports match\n" a b
  else begin
    (match (ja, jb) with
    | Obs.Json.Obj fa, Obs.Json.Obj fb ->
      List.iter
        (fun (k, v) ->
          match List.assoc_opt k fb with
          | Some v' when v = v' -> ()
          | Some v' ->
            Printf.eprintf "  %s: %s vs %s\n" k (Obs.Json.to_string v)
              (Obs.Json.to_string v')
          | None -> Printf.eprintf "  %s: missing in %s\n" k b)
        fa
    | _ -> ());
    Printf.eprintf "%s and %s: reports DIFFER\n" a b;
    exit 1
  end

(* Structural validation of a pareto sweep report: the frontier must be
   sorted by delay with strictly decreasing power (which is exactly
   "no point dominates another"), every frontier point must be one of
   the sweep's points, the dominated count must balance, constrained
   points must echo their constraint, and glitch power must be present
   exactly when the sweep ran under the glitch cost model. *)
let check_pareto_report ~path j =
  let fail fmt =
    Printf.ksprintf
      (fun m ->
        Printf.eprintf "%s: %s\n" path m;
        exit 1)
      fmt
  in
  let member_or_fail obj k =
    match Obs.Json.member k obj with
    | Some v -> v
    | None -> fail "missing field %s" k
  in
  let float_field obj k =
    match member_or_fail obj k with
    | Obs.Json.Float f -> f
    | Obs.Json.Int n -> float_of_int n
    | _ -> fail "field %s is not a number" k
  in
  let points_of k =
    match member_or_fail j k with
    | Obs.Json.List l ->
      if l = [] then fail "%s is empty" k;
      l
    | _ -> fail "field %s is not a list" k
  in
  let points = points_of "points" and frontier = points_of "frontier" in
  let cost_model =
    match member_or_fail j "cost_model" with
    | Obs.Json.String s -> s
    | _ -> fail "field cost_model is not a string"
  in
  if cost_model <> "zero-delay" && cost_model <> "glitch" then
    fail "unknown cost_model %S" cost_model;
  let label p =
    match member_or_fail p "label" with
    | Obs.Json.String s -> s
    | _ -> fail "point label is not a string"
  in
  List.iter
    (fun p ->
      (* a constrained point must echo the constraint it ran under *)
      (match (label p, member_or_fail p "delay_constraint") with
      | "unbounded", Obs.Json.Null -> ()
      | "unbounded", _ -> fail "unbounded point carries a delay_constraint"
      | l, Obs.Json.Null -> fail "constrained point %s lost its delay_constraint" l
      | _, (Obs.Json.Float _ | Obs.Json.Int _) -> ()
      | l, _ -> fail "point %s: delay_constraint is not a number" l);
      (* glitch power iff the sweep ran under the glitch cost model *)
      match (cost_model, member_or_fail p "glitch_power") with
      | "glitch", (Obs.Json.Float _ | Obs.Json.Int _) -> ()
      | "glitch", _ -> fail "point %s: glitch cost but no glitch_power" (label p)
      | _, Obs.Json.Null -> ()
      | _, _ -> fail "point %s: glitch_power under zero-delay cost" (label p))
    points;
  let point_labels = List.map label points in
  List.iter
    (fun f ->
      if not (List.mem (label f) point_labels) then
        fail "frontier point %s is not one of the sweep's points" (label f))
    frontier;
  let rec walk = function
    | a :: (b :: _ as rest) ->
      if float_field a "delay" > float_field b "delay" then
        fail "frontier not sorted by delay (%s before %s)" (label a) (label b);
      if float_field a "power" <= float_field b "power" then
        fail "dominated frontier point: %s does not beat %s on power" (label b)
          (label a);
      walk rest
    | _ -> ()
  in
  walk frontier;
  let dominated =
    match member_or_fail j "dominated" with
    | Obs.Json.Int n -> n
    | _ -> fail "field dominated is not an integer"
  in
  if dominated <> List.length points - List.length frontier then
    fail "dominated %d <> points %d - frontier %d" dominated
      (List.length points) (List.length frontier);
  Printf.printf "%s: pareto frontier OK (%d points, %d on frontier, %s cost)\n"
    path (List.length points) (List.length frontier) cost_model

(* Structural validation of one optimizer report: the window funnel
   must be internally coherent.  [window_checks] counts candidates that
   entered the windowed check, each of which either proved or
   escalated; every escalation is classified in the guard's give-up
   breakdown under a [window/] key without touching
   [rejected_by_giveup] (an escalation is not a rejection — the global
   engine still decides).  The cost-model fields must also cohere:
   glitch power is measured exactly under the glitch model, and a
   delay rejection implies a constraint was in force.  A report
   violating any of these identities means the accounting regressed. *)
let check_report path =
  let j = parse_file path in
  let fail fmt =
    Printf.ksprintf
      (fun m ->
        Printf.eprintf "%s: %s\n" path m;
        exit 1)
      fmt
  in
  let member_or_fail obj k =
    match Obs.Json.member k obj with
    | Some v -> v
    | None -> fail "missing field %s" k
  in
  if Obs.Json.member "points" j <> None then begin
    check_pareto_report ~path j;
    (* the embedded per-point reports obey the optimizer identities
       too, but they are checked where they are produced; the frontier
       invariants are this report's own contract *)
    exit 0
  end;
  let int_field obj k =
    match member_or_fail obj k with
    | Obs.Json.Int n ->
      if n < 0 then fail "negative %s (%d)" k n;
      n
    | _ -> fail "field %s is not an integer" k
  in
  (match member_or_fail j "cost_model" with
  | Obs.Json.String ("zero-delay" as c) | Obs.Json.String ("glitch" as c) ->
    let glitchy k =
      match member_or_fail j k with
      | Obs.Json.Float _ | Obs.Json.Int _ -> true
      | Obs.Json.Null -> false
      | _ -> fail "field %s is not a number or null" k
    in
    let has_initial = glitchy "initial_glitch_power" in
    let has_final = glitchy "final_glitch_power" in
    if (c = "glitch") <> has_initial || (c = "glitch") <> has_final then
      fail "cost_model %s but glitch power fields %spresent" c
        (if has_initial || has_final then "" else "not ")
  | Obs.Json.String c -> fail "unknown cost_model %S" c
  | _ -> fail "field cost_model is not a string");
  let funnel = member_or_fail j "funnel" in
  (match (int_field funnel "rejected_by_delay", member_or_fail j "delay_constraint")
   with
  | 0, _ | _, (Obs.Json.Float _ | Obs.Json.Int _) -> ()
  | n, Obs.Json.Null ->
    fail "%d delay rejections without a delay_constraint" n
  | _, _ -> fail "field delay_constraint is not a number or null");
  let checks = int_field funnel "window_checks" in
  let proved = int_field funnel "window_proved" in
  let escalated = int_field funnel "window_escalated" in
  if checks <> proved + escalated then
    fail "window_checks %d <> window_proved %d + window_escalated %d" checks
      proved escalated;
  let checks_run = int_field funnel "checks_run" in
  if checks > checks_run then
    fail "window_checks %d exceeds checks_run %d" checks checks_run;
  let accepted = int_field funnel "accepted" in
  if accepted > checks_run then
    fail "accepted %d exceeds checks_run %d" accepted checks_run;
  let guard = member_or_fail j "guard" in
  let window_breakdown_total =
    match Obs.Json.member "giveup_breakdown" guard with
    | Some (Obs.Json.Obj entries) ->
      List.fold_left
        (fun acc (k, v) ->
          let n =
            match v with
            | Obs.Json.Int n -> n
            | _ -> fail "giveup_breakdown %s is not an integer" k
          in
          if n < 0 then fail "negative giveup_breakdown %s (%d)" k n;
          if String.length k > 7 && String.sub k 0 7 = "window/" then acc + n
          else acc)
        0 entries
    | _ -> fail "missing or malformed guard.giveup_breakdown"
  in
  if window_breakdown_total <> escalated then
    fail "window/* breakdown total %d <> window_escalated %d"
      window_breakdown_total escalated;
  Printf.printf "%s: window funnel OK (%d checks = %d proved + %d escalated)\n"
    path checks proved escalated

let () =
  let jsonl, path =
    match Array.to_list Sys.argv with
    | [ _; "--compare-reports"; a; b ] ->
      compare_reports a b;
      exit 0
    | [ _; "--check-report"; p ] ->
      check_report p;
      exit 0
    | [ _; "--jsonl"; p ] -> (true, p)
    | [ _; p ] -> (false, p)
    | _ ->
      prerr_endline
        "usage: json_check [--jsonl] FILE | json_check --compare-reports A B \
         | json_check --check-report REPORT";
      exit 2
  in
  let content = read_file path in
  if jsonl then begin
    let lines =
      String.split_on_char '\n' content
      |> List.filter (fun l -> String.trim l <> "")
    in
    List.iteri
      (fun i line ->
        match Obs.Json.of_string line with
        | Ok j ->
          (* every trace stream leads with its run manifest *)
          if i = 0 then begin
            match Obs.Json.member "ev" j with
            | Some (Obs.Json.String "run_start") -> ()
            | _ ->
              Printf.eprintf
                "%s:1: first record is not a run_start header\n" path;
              exit 1
          end
        | Error e ->
          Printf.eprintf "%s:%d: %s\n" path (i + 1) e;
          exit 1)
      lines;
    Printf.printf "%s: %d JSONL records OK\n" path (List.length lines)
  end
  else
    match Obs.Json.of_string content with
    | Ok _ -> Printf.printf "%s: JSON OK\n" path
    | Error e ->
      Printf.eprintf "%s: %s\n" path e;
      exit 1
