(* Validate that a file is well-formed JSON (default) or JSONL
   ([--jsonl]: one JSON object per non-empty line), or compare two
   optimizer reports ([--compare-reports]: structural equality after
   dropping wall-clock fields).  Exit 0 on success.  Used by ci.sh to
   smoke-check the telemetry outputs without external tooling. *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let parse_file path =
  match Obs.Json.of_string (read_file path) with
  | Ok j -> j
  | Error e ->
    Printf.eprintf "%s: %s\n" path e;
    exit 1

(* Timings differ between any two runs, and [jobs] differs between runs
   whose equivalence we specifically want to check; everything else in a
   report is deterministic for a given seed and must match across
   kill/resume and across job counts.  The embedded run manifest is
   compared too, after dropping its own volatile identity fields
   (hostname, pid, timestamp, ... — see [Obs.Runinfo.volatile_fields]):
   seed, circuit and options hash MUST match for the comparison to be
   meaningful. *)
let strip_volatile = function
  | Obs.Json.Obj fields ->
    Obs.Json.Obj
      (List.filter_map
         (fun (k, v) ->
           if k = "cpu_seconds" || k = "phase_seconds" || k = "jobs" then None
           else if k = "run" then Some (k, Obs.Runinfo.strip_volatile v)
           else Some (k, v))
         fields)
  | other -> other

let compare_reports a b =
  let ja = strip_volatile (parse_file a) and jb = strip_volatile (parse_file b) in
  if ja = jb then Printf.printf "%s and %s: reports match\n" a b
  else begin
    (match (ja, jb) with
    | Obs.Json.Obj fa, Obs.Json.Obj fb ->
      List.iter
        (fun (k, v) ->
          match List.assoc_opt k fb with
          | Some v' when v = v' -> ()
          | Some v' ->
            Printf.eprintf "  %s: %s vs %s\n" k (Obs.Json.to_string v)
              (Obs.Json.to_string v')
          | None -> Printf.eprintf "  %s: missing in %s\n" k b)
        fa
    | _ -> ());
    Printf.eprintf "%s and %s: reports DIFFER\n" a b;
    exit 1
  end

let () =
  let jsonl, path =
    match Array.to_list Sys.argv with
    | [ _; "--compare-reports"; a; b ] ->
      compare_reports a b;
      exit 0
    | [ _; "--jsonl"; p ] -> (true, p)
    | [ _; p ] -> (false, p)
    | _ ->
      prerr_endline "usage: json_check [--jsonl] FILE | json_check --compare-reports A B";
      exit 2
  in
  let content = read_file path in
  if jsonl then begin
    let lines =
      String.split_on_char '\n' content
      |> List.filter (fun l -> String.trim l <> "")
    in
    List.iteri
      (fun i line ->
        match Obs.Json.of_string line with
        | Ok j ->
          (* every trace stream leads with its run manifest *)
          if i = 0 then begin
            match Obs.Json.member "ev" j with
            | Some (Obs.Json.String "run_start") -> ()
            | _ ->
              Printf.eprintf
                "%s:1: first record is not a run_start header\n" path;
              exit 1
          end
        | Error e ->
          Printf.eprintf "%s:%d: %s\n" path (i + 1) e;
          exit 1)
      lines;
    Printf.printf "%s: %d JSONL records OK\n" path (List.length lines)
  end
  else
    match Obs.Json.of_string content with
    | Ok _ -> Printf.printf "%s: JSON OK\n" path
    | Error e ->
      Printf.eprintf "%s: %s\n" path e;
      exit 1
