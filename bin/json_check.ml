(* Validate that a file is well-formed JSON (default) or JSONL
   ([--jsonl]: one JSON object per non-empty line).  Exit 0 on success.
   Used by ci.sh to smoke-check the telemetry outputs without external
   tooling. *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let () =
  let jsonl, path =
    match Array.to_list Sys.argv with
    | [ _; "--jsonl"; p ] -> (true, p)
    | [ _; p ] -> (false, p)
    | _ ->
      prerr_endline "usage: json_check [--jsonl] FILE";
      exit 2
  in
  let content = read_file path in
  if jsonl then begin
    let lines =
      String.split_on_char '\n' content
      |> List.filter (fun l -> String.trim l <> "")
    in
    List.iteri
      (fun i line ->
        match Obs.Json.of_string line with
        | Ok _ -> ()
        | Error e ->
          Printf.eprintf "%s:%d: %s\n" path (i + 1) e;
          exit 1)
      lines;
    Printf.printf "%s: %d JSONL records OK\n" path (List.length lines)
  end
  else
    match Obs.Json.of_string content with
    | Ok _ -> Printf.printf "%s: JSON OK\n" path
    | Error e ->
      Printf.eprintf "%s: %s\n" path e;
      exit 1
