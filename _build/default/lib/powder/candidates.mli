(** Candidate-substitution generation (the paper's
    [get_candidate_substitutions], built on fault-simulation machinery).

    A substitution can only be permissible if the source agrees with the
    substituted signal on every simulated pattern where that signal is
    observable at some primary output.  We therefore compare bit-parallel
    signatures under the target's observability mask: survivors are
    {e potentially} permissible and are later proven or rejected by the
    exact ATPG check.

    2-signal candidates scan all signals; 3-signal candidates (new
    2-input gate) scan ordered pairs from a bounded pool of the closest
    signatures, for every 2-input cell of the library. *)

type config = {
  classes : Subst.klass list;  (** which substitution classes to emit *)
  per_target : int;            (** keep the best k per target (by PG_A+PG_B) *)
  pool_limit : int;            (** pool size for 3-signal pair enumeration *)
  require_positive : bool;     (** drop candidates with PG_A+PG_B+margin <= 0 *)
}

val default_config : config

val generate :
  ?config:config -> Power.Estimator.t -> (Subst.t * Subst.gain) list
(** Candidates sorted by decreasing [PG_A + PG_B]; gains are the cheap
    [Subst.gain_ab] estimates.  The estimator's engine state is left
    unchanged. *)
