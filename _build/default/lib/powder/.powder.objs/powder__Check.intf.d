lib/powder/check.mli: Netlist Sim Subst
