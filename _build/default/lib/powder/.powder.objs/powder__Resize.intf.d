lib/powder/resize.mli: Format Netlist
