lib/powder/resize.ml: Array Float Format Gatelib List Logic Netlist Power Sim Sta
