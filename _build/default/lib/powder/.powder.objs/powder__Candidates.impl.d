lib/powder/candidates.ml: Array Float Gatelib Int64 List Netlist Power Sim Subst
