lib/powder/subst.mli: Gatelib Netlist Power Sim Sta
