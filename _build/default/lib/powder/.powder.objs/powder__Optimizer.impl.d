lib/powder/optimizer.ml: Array Atpg Candidates Check Float Format Hashtbl Int Int64 List Logs Netlist Power Printf Sim Sta Subst Sys
