lib/powder/candidates.mli: Power Subst
