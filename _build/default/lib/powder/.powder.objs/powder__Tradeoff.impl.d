lib/powder/tradeoff.ml: Format List Optimizer
