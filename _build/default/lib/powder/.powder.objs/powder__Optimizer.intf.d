lib/powder/optimizer.mli: Format Netlist Subst
