lib/powder/check.ml: Array Atpg Gatelib Hashtbl Int64 List Netlist Sim Subst
