lib/powder/subst.ml: Array Float Gatelib Int64 List Logic Netlist Power Printf Sim Sta
