lib/powder/tradeoff.mli: Format Netlist Optimizer
