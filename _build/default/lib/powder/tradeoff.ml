type point = {
  constraint_percent : float;
  relative_power : float;
  relative_delay : float;
  substitutions : int;
}

let default_percents = [ 0.0; 10.0; 20.0; 30.0; 50.0; 80.0; 120.0; 200.0 ]

let sweep ?(config = Optimizer.default_config) ?(percents = default_percents)
    builders =
  List.map
    (fun percent ->
      let totals =
        List.fold_left
          (fun (ip, fp, idel, fdel, subs) build ->
            let circ = build () in
            let cfg =
              { config with Optimizer.delay = Optimizer.Ratio (percent /. 100.0) }
            in
            let r = Optimizer.optimize ~config:cfg circ in
            ( ip +. r.Optimizer.initial_power,
              fp +. r.Optimizer.final_power,
              idel +. r.Optimizer.initial_delay,
              fdel +. r.Optimizer.final_delay,
              subs + r.Optimizer.substitutions ))
          (0.0, 0.0, 0.0, 0.0, 0) builders
      in
      let ip, fp, idel, fdel, subs = totals in
      {
        constraint_percent = percent;
        relative_power = (if ip > 0.0 then fp /. ip else 1.0);
        relative_delay = (if idel > 0.0 then fdel /. idel else 1.0);
        substitutions = subs;
      })
    percents

let pp_series fmt points =
  Format.fprintf fmt "@[<v>%% constraint | rel. delay | rel. power | substs@,";
  List.iter
    (fun p ->
      Format.fprintf fmt "%11.0f%% | %10.3f | %10.3f | %6d@,"
        p.constraint_percent p.relative_delay p.relative_power p.substitutions)
    points;
  Format.fprintf fmt "@]"
