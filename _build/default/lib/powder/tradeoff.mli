(** The power-delay trade-off experiment of the paper's Figure 6: run
    the optimizer over a set of circuits under a sweep of delay
    constraints (given as allowed percentage increase over each
    circuit's initial delay) and accumulate total power and delay,
    relative to the initial totals. *)

type point = {
  constraint_percent : float;  (** allowed delay increase, in percent *)
  relative_power : float;      (** sum of final power / sum of initial power *)
  relative_delay : float;      (** sum of final delay / sum of initial delay *)
  substitutions : int;
}

val sweep :
  ?config:Optimizer.config ->
  ?percents:float list ->
  (unit -> Netlist.Circuit.t) list ->
  point list
(** Each circuit thunk is re-built for every constraint point (the
    optimizer mutates its input).  Default sweep:
    [0; 10; 20; 30; 50; 80; 120; 200] percent. *)

val pp_series : Format.formatter -> point list -> unit
