(** Gate re-sizing for low power — the adjacent technique the paper
    cites (Bahar et al. [14]) as a baseline: swap each instance for a
    weaker or stronger drive-strength variant of the same function so
    that switched capacitance drops while every path still meets the
    required time.

    Unlike POWDER this never changes the netlist structure; it is run
    either standalone (ablation) or after POWDER (the flow of Figure 1,
    where re-sizing follows structural optimization). *)

type report = {
  initial_power : float;
  final_power : float;
  initial_area : float;
  final_area : float;
  initial_delay : float;
  final_delay : float;
  resized : int;
  passes : int;
}

val optimize :
  ?words:int ->
  ?seed:int64 ->
  ?input_prob:(string -> float) ->
  ?delay_limit:float ->
  ?max_passes:int ->
  Netlist.Circuit.t ->
  report
(** [delay_limit] defaults to the initial circuit delay (re-sizing must
    never slow the circuit down).  The library searched for variants is
    the circuit's own library — map against
    {!Gatelib.Library.lib2_sized} to give the optimizer real choices. *)

val pp_report : Format.formatter -> report -> unit
