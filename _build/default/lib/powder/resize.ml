module Circuit = Netlist.Circuit
module Cell = Gatelib.Cell
module Library = Gatelib.Library
module Timing = Sta.Timing
module Estimator = Power.Estimator

type report = {
  initial_power : float;
  final_power : float;
  initial_area : float;
  final_area : float;
  initial_delay : float;
  final_delay : float;
  resized : int;
  passes : int;
}

let variants lib (c : Cell.t) =
  List.filter
    (fun (c' : Cell.t) ->
      c'.Cell.name <> c.Cell.name && Logic.Tt.equal c'.Cell.func c.Cell.func)
    (Library.cells lib)

(* switched-capacitance delta of swapping [old_c] for [new_c] at [id] *)
let power_delta est circ id (old_c : Cell.t) (new_c : Cell.t) =
  let fs = Circuit.fanins circ id in
  let pin_part = ref 0.0 in
  Array.iteri
    (fun j f ->
      pin_part :=
        !pin_part
        +. ((new_c.Cell.pin_caps.(j) -. old_c.Cell.pin_caps.(j))
            *. Estimator.transition_prob est f))
    fs;
  !pin_part
  +. ((new_c.Cell.out_cap -. old_c.Cell.out_cap)
      *. Estimator.transition_prob est id)

(* conservative legality under the required-time snapshot *)
let delay_ok sta circ id (old_c : Cell.t) (new_c : Cell.t) =
  let eps = 1e-9 in
  let fs = Circuit.fanins circ id in
  let own_load =
    Circuit.load_of circ id -. old_c.Cell.out_cap +. new_c.Cell.out_cap
  in
  let new_delay = new_c.Cell.tau +. (new_c.Cell.drive_res *. own_load) in
  let max_input_push = ref 0.0 in
  let inputs_ok = ref true in
  Array.iteri
    (fun j f ->
      let dc = new_c.Cell.pin_caps.(j) -. old_c.Cell.pin_caps.(j) in
      let load = Circuit.load_of circ f in
      let push =
        Timing.delay_with_load circ f (load +. dc)
        -. Timing.delay_with_load circ f load
      in
      if push > Timing.slack sta f +. eps then inputs_ok := false;
      if push > !max_input_push then max_input_push := push)
    fs;
  let inputs_ready =
    Array.fold_left (fun acc f -> Float.max acc (Timing.arrival sta f)) 0.0 fs
  in
  let new_arrival = inputs_ready +. !max_input_push +. new_delay in
  !inputs_ok && new_arrival <= Timing.required sta id +. eps

let optimize ?(words = 16) ?(seed = 0xC0FFEEL) ?(input_prob = fun _ -> 0.5)
    ?delay_limit ?(max_passes = 6) circ =
  let eng = Sim.Engine.create circ ~words in
  let prob pi = input_prob (Circuit.name circ pi) in
  Sim.Engine.randomize eng ~input_probs:prob (Sim.Rng.create seed);
  let est = Estimator.create eng in
  let lib = Circuit.library circ in
  let initial_power = Estimator.total est in
  let initial_area = Circuit.area circ in
  let initial_delay = Timing.circuit_delay (Timing.analyze circ) in
  let limit = match delay_limit with Some d -> d | None -> initial_delay in
  let resized = ref 0 in
  let passes = ref 0 in
  let progress = ref true in
  while !progress && !passes < max_passes do
    incr passes;
    progress := false;
    let sta = ref (Timing.analyze ~required_time:limit circ) in
    List.iter
      (fun id ->
        let old_c = Circuit.cell_of circ id in
        let best =
          List.fold_left
            (fun best new_c ->
              let dp = power_delta est circ id old_c new_c in
              match best with
              | Some (_, best_dp) when best_dp <= dp -> best
              | _ when dp < -1e-12 && delay_ok !sta circ id old_c new_c ->
                Some (new_c, dp)
              | _ -> best)
            None (variants lib old_c)
        in
        match best with
        | Some (new_c, _) ->
          Circuit.set_cell circ id new_c;
          incr resized;
          progress := true;
          sta := Timing.analyze ~required_time:limit circ
        | None -> ())
      (Circuit.live_gates circ)
  done;
  {
    initial_power;
    final_power = Estimator.total est;
    initial_area;
    final_area = Circuit.area circ;
    initial_delay;
    final_delay = Timing.circuit_delay (Timing.analyze circ);
    resized = !resized;
    passes = !passes;
  }

let pp_report fmt r =
  Format.fprintf fmt
    "resize: power %.4f -> %.4f (%.1f%%), area %.0f -> %.0f, delay %.2f -> \
     %.2f, %d swaps in %d passes"
    r.initial_power r.final_power
    (if r.initial_power > 0.0 then
       100.0 *. (r.initial_power -. r.final_power) /. r.initial_power
     else 0.0)
    r.initial_area r.final_area r.initial_delay r.final_delay r.resized
    r.passes
