type t = {
  name : string;
  func : Logic.Tt.t;
  area : float;
  pin_caps : float array;
  out_cap : float;
  tau : float;
  drive_res : float;
}

let arity c = Logic.Tt.num_vars c.func

let make ~name ~func ~area ~pin_caps ?(out_cap = 0.0) ~tau ~drive_res () =
  if Array.length pin_caps <> Logic.Tt.num_vars func then
    invalid_arg "Cell.make: pin_caps arity mismatch";
  { name; func; area; pin_caps; out_cap; tau; drive_res }

let eval c inputs = Logic.Tt.eval c.func inputs

let pp fmt c =
  Format.fprintf fmt "%s(area=%g, tau=%g, r=%g, f=%a)" c.name c.area c.tau
    c.drive_res Logic.Tt.pp c.func
