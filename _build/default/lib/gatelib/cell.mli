(** A technology-library cell: logic function plus the physical data the
    power and timing models need.

    Power model: each input pin presents [pin_caps.(i)] units of
    capacitance to its driver; the cell output adds [out_cap] intrinsic
    capacitance to its own net.  Delay model (linear):
    [D = tau +. drive_res *. c_load]. *)

type t = {
  name : string;
  func : Logic.Tt.t;      (** over [arity] inputs, input [i] = pin [i] *)
  area : float;
  pin_caps : float array; (** length = arity *)
  out_cap : float;
  tau : float;            (** intrinsic delay *)
  drive_res : float;
}

val arity : t -> int

val make :
  name:string ->
  func:Logic.Tt.t ->
  area:float ->
  pin_caps:float array ->
  ?out_cap:float ->
  tau:float ->
  drive_res:float ->
  unit ->
  t
(** @raise Invalid_argument if [Array.length pin_caps <> Tt.num_vars func]. *)

val eval : t -> bool array -> bool
val pp : Format.formatter -> t -> unit
