lib/gatelib/cell.mli: Format Logic
