lib/gatelib/genlib.mli: Library
