lib/gatelib/cell.ml: Array Format Logic
