lib/gatelib/genlib.ml: Array Buffer Cell Char Library List Logic Printf String
