lib/gatelib/library.ml: Array Cell Float Format Hashtbl List Logic
