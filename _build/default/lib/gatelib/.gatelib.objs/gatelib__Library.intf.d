lib/gatelib/library.mli: Cell Format Logic
