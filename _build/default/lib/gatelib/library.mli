(** A gate library: an ordered collection of {!Cell.t} with lookup and
    boolean-matching helpers, plus the built-in [lib2]-style library used
    by the benchmarks. *)

type t

val of_cells : Cell.t list -> t
(** @raise Invalid_argument on duplicate cell names or an empty list. *)

val cells : t -> Cell.t list
val find : t -> string -> Cell.t
(** @raise Not_found *)

val find_opt : t -> string -> Cell.t option
val mem : t -> string -> bool

val inverter : t -> Cell.t
(** The cheapest (by area) cell computing [NOT x].
    @raise Not_found if the library has none. *)

val buffer : t -> Cell.t option
(** The cheapest cell computing the identity, if any. *)

val two_input_cells : t -> Cell.t list
(** All cells of arity 2 whose function depends on both inputs; these
    are the gates OS3/IS3 substitutions may insert. *)

val match_tt : t -> Logic.Tt.t -> (Cell.t * int array) list
(** [match_tt lib f] lists cells [c] (with [arity c = Tt.num_vars f])
    and permutations [perm] such that connecting signal [i] of [f]'s
    input list to cell pin [perm.(i)] realizes [f].  Cheapest (area)
    first. *)

val match_tt_best : t -> Logic.Tt.t -> (Cell.t * int array) option

val default_po_load : float
(** Capacitive load assumed on every primary output (1.0). *)

val lib2 : t
(** Built-in library in the spirit of MCNC [lib2.genlib]: inverter,
    buffer, NAND/NOR/AND/OR 2-4, XOR2/XNOR2, AOI/OAI 21/22, MUX2.
    XOR-class pins carry twice the input capacitance of NAND-class pins,
    matching the worked example of the paper (Figure 2). *)

val lib2_sized : t
(** {!lib2} extended with 2x-drive ("_2x") and half-drive ("_h")
    variants of every cell, for the gate-resizing baseline. *)

val minimal : t
(** Tiny library (INV, NAND2, AND2, OR2, XOR2) for focused tests. *)

val pp : Format.formatter -> t -> unit
