module Tt = Logic.Tt

type t = { ordered : Cell.t list; by_name : (string, Cell.t) Hashtbl.t }

let of_cells cells =
  if cells = [] then invalid_arg "Library.of_cells: empty";
  let by_name = Hashtbl.create 64 in
  List.iter
    (fun (c : Cell.t) ->
      if Hashtbl.mem by_name c.Cell.name then
        invalid_arg ("Library.of_cells: duplicate cell " ^ c.Cell.name);
      Hashtbl.add by_name c.Cell.name c)
    cells;
  { ordered = cells; by_name }

let cells t = t.ordered
let find t name = match Hashtbl.find_opt t.by_name name with
  | Some c -> c
  | None -> raise Not_found
let find_opt t name = Hashtbl.find_opt t.by_name name
let mem t name = Hashtbl.mem t.by_name name

let cheapest pred t =
  List.filter pred t.ordered
  |> List.sort (fun (a : Cell.t) b -> Float.compare a.area b.area)
  |> function [] -> None | c :: _ -> Some c

let inverter t =
  match cheapest (fun c -> Tt.equal c.Cell.func (Tt.not_ (Tt.var 1 0))) t with
  | Some c -> c
  | None -> raise Not_found

let buffer t = cheapest (fun c -> Tt.equal c.Cell.func (Tt.var 1 0)) t

let two_input_cells t =
  List.filter
    (fun c -> Cell.arity c = 2 && List.length (Tt.support c.Cell.func) = 2)
    t.ordered

(* All permutations of [0..n-1]; n <= 6 in practice so this is small. *)
let permutations n =
  let rec perms = function
    | [] -> [ [] ]
    | l ->
      List.concat_map
        (fun x -> List.map (fun p -> x :: p) (perms (List.filter (( <> ) x) l)))
        l
  in
  List.map Array.of_list (perms (List.init n (fun i -> i)))

let match_tt t f =
  let n = Tt.num_vars f in
  let perms = permutations n in
  let matches =
    List.concat_map
      (fun (c : Cell.t) ->
        if Cell.arity c <> n then []
        else
          List.filter_map
            (fun perm ->
              (* pin perm.(i) of the cell sees input i: cell func with its
                 variable perm.(i) renamed to i must equal f.  [Tt.permute]
                 renames var [j] to [inv.(j)]. *)
              let inv = Array.make n 0 in
              Array.iteri (fun i p -> inv.(p) <- i) perm;
              if Tt.equal (Tt.permute c.Cell.func inv) f then Some (c, perm)
              else None)
            perms)
      t.ordered
  in
  List.sort (fun ((a : Cell.t), _) (b, _) -> Float.compare a.area b.area) matches

let match_tt_best t f = match match_tt t f with [] -> None | m :: _ -> Some m

let default_po_load = 1.0

(* ------------------------------------------------------------------ *)
(* Built-in libraries.                                                 *)
(* ------------------------------------------------------------------ *)

let v n i = Tt.var n i
let ( &: ) = Tt.and_
let ( |: ) = Tt.or_
let ( ^: ) = Tt.xor
let nott = Tt.not_

let uniform_pins n c = Array.make n c

let simple ~name ~func ~area ~pin_cap ~tau ~drive_res =
  Cell.make ~name ~func ~area
    ~pin_caps:(uniform_pins (Tt.num_vars func) pin_cap)
    ~tau ~drive_res ()

let and_n n = Array.fold_left ( &: ) (Tt.const_true n) (Array.init n (v n))
let or_n n = Array.fold_left ( |: ) (Tt.const_false n) (Array.init n (v n))

let lib2_cells =
  [
    simple ~name:"inv1" ~func:(nott (v 1 0)) ~area:928. ~pin_cap:1.0 ~tau:0.4
      ~drive_res:0.16;
    simple ~name:"buf1" ~func:(v 1 0) ~area:1392. ~pin_cap:1.0 ~tau:0.7
      ~drive_res:0.12;
    simple ~name:"nand2" ~func:(nott (and_n 2)) ~area:1392. ~pin_cap:1.0
      ~tau:0.6 ~drive_res:0.18;
    simple ~name:"nand3" ~func:(nott (and_n 3)) ~area:1856. ~pin_cap:1.1
      ~tau:0.8 ~drive_res:0.21;
    simple ~name:"nand4" ~func:(nott (and_n 4)) ~area:2320. ~pin_cap:1.2
      ~tau:1.0 ~drive_res:0.24;
    simple ~name:"nor2" ~func:(nott (or_n 2)) ~area:1392. ~pin_cap:1.0 ~tau:0.7
      ~drive_res:0.20;
    simple ~name:"nor3" ~func:(nott (or_n 3)) ~area:1856. ~pin_cap:1.1 ~tau:0.9
      ~drive_res:0.24;
    simple ~name:"nor4" ~func:(nott (or_n 4)) ~area:2320. ~pin_cap:1.2 ~tau:1.2
      ~drive_res:0.28;
    simple ~name:"and2" ~func:(and_n 2) ~area:1856. ~pin_cap:1.0 ~tau:1.0
      ~drive_res:0.15;
    simple ~name:"and3" ~func:(and_n 3) ~area:2320. ~pin_cap:1.1 ~tau:1.2
      ~drive_res:0.17;
    simple ~name:"and4" ~func:(and_n 4) ~area:2784. ~pin_cap:1.2 ~tau:1.4
      ~drive_res:0.19;
    simple ~name:"or2" ~func:(or_n 2) ~area:1856. ~pin_cap:1.0 ~tau:1.1
      ~drive_res:0.16;
    simple ~name:"or3" ~func:(or_n 3) ~area:2320. ~pin_cap:1.1 ~tau:1.3
      ~drive_res:0.18;
    simple ~name:"or4" ~func:(or_n 4) ~area:2784. ~pin_cap:1.2 ~tau:1.5
      ~drive_res:0.20;
    simple ~name:"xor2" ~func:(v 2 0 ^: v 2 1) ~area:2784. ~pin_cap:2.0
      ~tau:1.4 ~drive_res:0.22;
    simple ~name:"xnor2" ~func:(nott (v 2 0 ^: v 2 1)) ~area:2784. ~pin_cap:2.0
      ~tau:1.4 ~drive_res:0.22;
    (* aoi21: !(ab + c) with pins (a,b,c) *)
    simple ~name:"aoi21"
      ~func:(nott ((v 3 0 &: v 3 1) |: v 3 2))
      ~area:1856. ~pin_cap:1.1 ~tau:0.9 ~drive_res:0.22;
    simple ~name:"aoi22"
      ~func:(nott ((v 4 0 &: v 4 1) |: (v 4 2 &: v 4 3)))
      ~area:2320. ~pin_cap:1.2 ~tau:1.1 ~drive_res:0.25;
    simple ~name:"oai21"
      ~func:(nott ((v 3 0 |: v 3 1) &: v 3 2))
      ~area:1856. ~pin_cap:1.1 ~tau:0.9 ~drive_res:0.22;
    simple ~name:"oai22"
      ~func:(nott ((v 4 0 |: v 4 1) &: (v 4 2 |: v 4 3)))
      ~area:2320. ~pin_cap:1.2 ~tau:1.1 ~drive_res:0.25;
    (* mux2: s ? b : a  with pins (a, b, s) *)
    simple ~name:"mux2"
      ~func:((nott (v 3 2) &: v 3 0) |: (v 3 2 &: v 3 1))
      ~area:3248. ~pin_cap:1.3 ~tau:1.3 ~drive_res:0.20;
    (* andnot2: a & !b — gives matching coverage for mixed-phase cuts *)
    simple ~name:"andnot2"
      ~func:(v 2 0 &: nott (v 2 1))
      ~area:2088. ~pin_cap:1.0 ~tau:1.0 ~drive_res:0.17;
    simple ~name:"ornot2"
      ~func:(v 2 0 |: nott (v 2 1))
      ~area:2088. ~pin_cap:1.0 ~tau:1.1 ~drive_res:0.18;
  ]

let lib2 = of_cells lib2_cells

(* Strength variants for the gate-resizing baseline: a 2x cell trades
   larger area and input capacitance for half the drive resistance and
   a slightly smaller intrinsic delay; a 0.5x cell the opposite. *)
let strength_variant suffix ~area_k ~cap_k ~tau_k ~res_k (c : Cell.t) =
  Cell.make
    ~name:(c.Cell.name ^ suffix)
    ~func:c.Cell.func
    ~area:(c.Cell.area *. area_k)
    ~pin_caps:(Array.map (fun p -> p *. cap_k) c.Cell.pin_caps)
    ~out_cap:(c.Cell.out_cap *. cap_k)
    ~tau:(c.Cell.tau *. tau_k)
    ~drive_res:(c.Cell.drive_res *. res_k)
    ()

let lib2_sized =
  let doubled =
    List.map
      (strength_variant "_2x" ~area_k:1.6 ~cap_k:1.8 ~tau_k:0.9 ~res_k:0.5)
      lib2_cells
  in
  let halved =
    List.map
      (strength_variant "_h" ~area_k:0.7 ~cap_k:0.6 ~tau_k:1.1 ~res_k:1.9)
      lib2_cells
  in
  of_cells (lib2_cells @ doubled @ halved)

let minimal =
  of_cells
    [
      simple ~name:"inv" ~func:(nott (v 1 0)) ~area:1. ~pin_cap:1.0 ~tau:1.0
        ~drive_res:0.1;
      simple ~name:"nand2" ~func:(nott (and_n 2)) ~area:2. ~pin_cap:1.0
        ~tau:1.0 ~drive_res:0.1;
      simple ~name:"and2" ~func:(and_n 2) ~area:3. ~pin_cap:1.0 ~tau:1.0
        ~drive_res:0.1;
      simple ~name:"or2" ~func:(or_n 2) ~area:3. ~pin_cap:1.0 ~tau:1.0
        ~drive_res:0.1;
      simple ~name:"xor2" ~func:(v 2 0 ^: v 2 1) ~area:4. ~pin_cap:2.0 ~tau:1.0
        ~drive_res:0.1;
    ]

let pp fmt t =
  Format.fprintf fmt "@[<v>";
  List.iter (fun c -> Format.fprintf fmt "%a@," Cell.pp c) t.ordered;
  Format.fprintf fmt "@]"
