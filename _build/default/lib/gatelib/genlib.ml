module Tt = Logic.Tt

(* ------------------------------------------------------------------ *)
(* Tokenizer                                                           *)
(* ------------------------------------------------------------------ *)

type token =
  | Tgate
  | Tpin
  | Tident of string
  | Tnumber of float
  | Tequal
  | Tsemi
  | Tnot
  | Tand
  | Tor
  | Tlparen
  | Trparen
  | Tpostfix_not

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '.' || c = '<' || c = '>' || c = '[' || c = ']' || c = '-'

let tokenize text =
  let n = String.length text in
  let tokens = ref [] in
  let push t = tokens := t :: !tokens in
  let i = ref 0 in
  let error = ref None in
  while !i < n && !error = None do
    let c = text.[!i] in
    if c = '#' then begin
      (* comment to end of line *)
      while !i < n && text.[!i] <> '\n' do incr i done
    end
    else if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '=' then (push Tequal; incr i)
    else if c = ';' then (push Tsemi; incr i)
    else if c = '!' then (push Tnot; incr i)
    else if c = '\'' then (push Tpostfix_not; incr i)
    else if c = '*' then (push Tand; incr i)
    else if c = '+' then (push Tor; incr i)
    else if c = '(' then (push Tlparen; incr i)
    else if c = ')' then (push Trparen; incr i)
    else if is_ident_char c then begin
      let start = !i in
      while !i < n && is_ident_char text.[!i] do incr i done;
      let word = String.sub text start (!i - start) in
      match word with
      | "GATE" -> push Tgate
      | "PIN" -> push Tpin
      | "LATCH" | "SEQ" -> error := Some "sequential genlib records are not supported"
      | _ -> (
        match float_of_string_opt word with
        | Some f -> push (Tnumber f)
        | None -> push (Tident word))
    end
    else error := Some (Printf.sprintf "unexpected character %C" c)
  done;
  match !error with
  | Some e -> Error e
  | None -> Ok (List.rev !tokens)

(* ------------------------------------------------------------------ *)
(* Expression parsing (over pin names discovered on the fly)           *)
(* ------------------------------------------------------------------ *)

(* We first parse to a small AST, then compile to a truth table once
   the pin count is known. *)
type expr =
  | Evar of string
  | Econst of bool
  | Enot of expr
  | Eand of expr * expr
  | Eor of expr * expr

exception Parse_error of string

let parse_expr tokens =
  (* returns (expr, remaining tokens); raises Parse_error *)
  let rec expr toks =
    let t, toks = term toks in
    match toks with
    | Tor :: rest ->
      let u, toks = expr rest in
      (Eor (t, u), toks)
    | _ -> (t, toks)
  and term toks =
    let f, toks = postfix toks in
    match toks with
    | Tand :: rest ->
      let g, toks = term rest in
      (Eand (f, g), toks)
    | (Tident _ | Tnot | Tlparen) :: _ ->
      (* juxtaposition is conjunction *)
      let g, toks = term toks in
      (Eand (f, g), toks)
    | _ -> (f, toks)
  and postfix toks =
    let f, toks = factor toks in
    let rec nots f = function
      | Tpostfix_not :: rest -> nots (Enot f) rest
      | toks -> (f, toks)
    in
    nots f toks
  and factor = function
    | Tnot :: rest ->
      let f, toks = postfix rest in
      (Enot f, toks)
    | Tlparen :: rest -> (
      let f, toks = expr rest in
      match toks with
      | Trparen :: rest -> (f, rest)
      | _ -> raise (Parse_error "expected )"))
    | Tident "CONST0" :: rest -> (Econst false, rest)
    | Tident "CONST1" :: rest -> (Econst true, rest)
    | Tident v :: rest -> (Evar v, rest)
    | _ -> raise (Parse_error "expected an expression")
  in
  expr tokens

let rec vars_of acc = function
  | Evar v -> if List.mem v acc then acc else acc @ [ v ]
  | Econst _ -> acc
  | Enot e -> vars_of acc e
  | Eand (a, b) | Eor (a, b) -> vars_of (vars_of acc a) b

let compile expr pins =
  let n = List.length pins in
  if n > Tt.max_vars then raise (Parse_error "too many pins (max 6)");
  let index v =
    let rec find i = function
      | [] -> raise (Parse_error ("unknown pin " ^ v))
      | p :: rest -> if p = v then i else find (i + 1) rest
    in
    find 0 pins
  in
  let rec go = function
    | Evar v -> Tt.var n (index v)
    | Econst b -> if b then Tt.const_true n else Tt.const_false n
    | Enot e -> Tt.not_ (go e)
    | Eand (a, b) -> Tt.and_ (go a) (go b)
    | Eor (a, b) -> Tt.or_ (go a) (go b)
  in
  go expr

(* ------------------------------------------------------------------ *)
(* Gate statements                                                     *)
(* ------------------------------------------------------------------ *)

type pin_record = {
  pin_name : string option; (* None = wildcard *)
  in_load : float;
  rise_block : float;
  rise_fanout : float;
  fall_block : float;
  fall_fanout : float;
}

let parse_pin = function
  | Tpin :: name_tok :: _phase :: Tnumber in_load :: Tnumber _max_load
    :: Tnumber rise_block :: Tnumber rise_fanout :: Tnumber fall_block
    :: Tnumber fall_fanout :: rest ->
    let pin_name =
      match name_tok with
      | Tident n -> Some n
      | Tand -> None (* '*' tokenizes as Tand *)
      | _ -> raise (Parse_error "bad PIN name")
    in
    ( { pin_name; in_load; rise_block; rise_fanout; fall_block; fall_fanout },
      rest )
  | _ -> raise (Parse_error "malformed PIN record")

let parse tokens_text =
  match tokenize tokens_text with
  | Error e -> Error e
  | Ok tokens -> (
    try
      let cells = ref [] in
      let rec gates = function
        | [] -> ()
        | Tgate :: Tident name :: Tnumber area :: Tident _out :: Tequal :: rest ->
          let expr, rest =
            let e, toks = parse_expr rest in
            match toks with
            | Tsemi :: toks -> (e, toks)
            | _ -> raise (Parse_error ("missing ; after " ^ name))
          in
          let rec pins acc = function
            | Tpin :: _ as toks ->
              let p, toks = parse_pin toks in
              pins (p :: acc) toks
            | toks -> (List.rev acc, toks)
          in
          let pin_records, rest = pins [] rest in
          let pin_names = vars_of [] expr in
          let func = compile expr pin_names in
          let record_for pname =
            match
              List.find_opt
                (fun p -> p.pin_name = Some pname)
                pin_records
            with
            | Some p -> Some p
            | None -> List.find_opt (fun p -> p.pin_name = None) pin_records
          in
          let default =
            {
              pin_name = None;
              in_load = 1.0;
              rise_block = 1.0;
              rise_fanout = 0.2;
              fall_block = 1.0;
              fall_fanout = 0.2;
            }
          in
          let per_pin =
            List.map
              (fun pname ->
                match record_for pname with Some p -> p | None -> default)
              pin_names
          in
          let pin_caps = Array.of_list (List.map (fun p -> p.in_load) per_pin) in
          let avg f g = List.fold_left (fun acc p -> acc +. ((f p +. g p) /. 2.0)) 0.0 per_pin
                        /. float_of_int (max 1 (List.length per_pin)) in
          let tau = avg (fun p -> p.rise_block) (fun p -> p.fall_block) in
          let drive_res = avg (fun p -> p.rise_fanout) (fun p -> p.fall_fanout) in
          let cell =
            Cell.make ~name ~func ~area ~pin_caps ~tau ~drive_res ()
          in
          cells := cell :: !cells;
          gates rest
        | _ -> raise (Parse_error "expected GATE")
      in
      gates tokens;
      if !cells = [] then Error "no gates found"
      else Ok (Library.of_cells (List.rev !cells))
    with
    | Parse_error e -> Error e
    | Invalid_argument e -> Error e)

let parse_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  parse text

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let pin_letter i =
  if i < 26 then String.make 1 (Char.chr (Char.code 'a' + i))
  else Printf.sprintf "p%d" i

let expr_of_tt func =
  let n = Tt.num_vars func in
  if Tt.is_const_false func then "CONST0"
  else if Tt.is_const_true func then "CONST1"
  else begin
    let sop = Logic.Sop.minimize (Logic.Sop.of_tt func) in
    let cube_str c =
      match Logic.Cube.literals c with
      | [] -> "CONST1"
      | lits ->
        String.concat "*"
          (List.map
             (fun (i, phase) ->
               if i >= n then "CONST0"
               else if phase then pin_letter i
               else "!" ^ pin_letter i)
             lits)
    in
    String.concat " + " (List.map cube_str (Logic.Sop.cubes sop))
  end

let to_genlib lib =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (c : Cell.t) ->
      Buffer.add_string buf
        (Printf.sprintf "GATE %s %g O=%s;\n" c.Cell.name c.Cell.area
           (expr_of_tt c.Cell.func));
      if Cell.arity c > 0 then
        Buffer.add_string buf
          (Printf.sprintf "  PIN * NONINV %g 999 %g %g %g %g\n"
             c.Cell.pin_caps.(0) c.Cell.tau c.Cell.drive_res c.Cell.tau
             c.Cell.drive_res))
    (Library.cells lib);
  Buffer.contents buf
