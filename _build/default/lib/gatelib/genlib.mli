(** Parser for a subset of the Berkeley [genlib] gate-library format:

    {v
    GATE <name> <area> <output>=<expr>;  PIN <pin|*> <phase> <in-load> \
      <max-load> <rise-delay> <rise-fanout> <fall-delay> <fall-fanout>
    v}

    Expressions use [!] (not), [*] or juxtaposition (and), [+] (or),
    [CONST0]/[CONST1] and parentheses.  Pin variables are ordered by
    first appearance in the expression.  The linear timing model is
    derived as [tau = avg(rise, fall) block delay] and
    [drive_res = avg(rise, fall) fanout slope]; the input load becomes
    the pin capacitance.  [PIN *] applies one record to all pins.
    Latch/sequential records are rejected. *)

val parse : string -> (Library.t, string) result
val parse_file : string -> (Library.t, string) result

val to_genlib : Library.t -> string
(** Print a library back in genlib syntax (one [PIN *] record per gate,
    using the first pin's capacitance). *)
