(** Three-valued logic values for test generation, and the composite
    good/faulty pair that forms the classic five-valued D-calculus
    (0, 1, X, D = 1/0, D' = 0/1). *)

type v3 = V0 | V1 | VX

val v3_of_bool : bool -> v3
val equal_v3 : v3 -> v3 -> bool
val is_definite : v3 -> bool
val to_char : v3 -> char

type t = { good : v3; faulty : v3 }

val x : t
val of_bool : bool -> t
val d : t
(** good 1 / faulty 0 *)

val dbar : t
val is_d_or_dbar : t -> bool
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

val eval_cell : Logic.Tt.t -> v3 array -> v3
(** Three-valued cell evaluation: definite iff all completions of the X
    inputs agree.  Arity at most {!Logic.Tt.max_vars}. *)
