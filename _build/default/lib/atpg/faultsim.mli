(** Bit-parallel single-stuck-at fault simulation over the pattern set
    held by a {!Sim.Engine.t}.  The candidate-generation machinery of
    POWDER reuses the same flip-and-resimulate core (via the engine's
    observability masks); this module exposes classic fault-grading on
    top of it. *)

val detection_mask : Sim.Engine.t -> Fault.t -> int64 array
(** Patterns (bit per pattern) on which the fault changes some primary
    output.  Engine state is preserved. *)

val detects : Sim.Engine.t -> Fault.t -> bool

type coverage = {
  total : int;
  detected : int;
  undetected : Fault.t list;
}

val grade : Sim.Engine.t -> Fault.t list -> coverage

val random_coverage :
  Netlist.Circuit.t -> patterns:int -> seed:int64 -> coverage
(** Convenience: simulate [patterns] random vectors and grade the full
    fault list of the circuit. *)
