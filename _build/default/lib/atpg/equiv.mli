(** Combinational equivalence checking used as the exact permissibility
    test: two circuits are compared on shared primary-input names.

    Small circuits (PI count at most [exhaustive_limit]) are compared by
    exhaustive bit-parallel simulation — exact and fast.  Larger ones go
    through a miter and a PODEM justification of the miter output; an
    aborted search returns [Unknown], which callers must treat as "not
    proven equivalent" (the paper discards such substitutions). *)

type verdict =
  | Equivalent
  | Different of (string * bool) list
      (** counterexample: PI name/value assignment (missing = any) *)
  | Unknown

val xor_cell : Gatelib.Cell.t
(** Zero-cost virtual XOR2 used to compare outputs inside miters. *)

val or_cell : Gatelib.Cell.t
(** Zero-cost virtual OR2 for the miter's disjunction tree. *)

val miter : Netlist.Circuit.t -> Netlist.Circuit.t -> Netlist.Circuit.t * Netlist.Circuit.node_id
(** Single-output miter over the union of both circuits on shared PIs;
    the returned node is 1 iff some PO differs.  Both circuits must
    have identical PI and PO name sets.
    @raise Invalid_argument otherwise. *)

val check :
  ?backtrack_limit:int ->
  ?exhaustive_limit:int ->
  ?engine:[ `Sat | `Podem ] ->
  Netlist.Circuit.t ->
  Netlist.Circuit.t ->
  verdict
(** [exhaustive_limit] defaults to 14 PIs.  Above it, the miter output
    is justified with the CDCL solver ([`Sat], default; the
    [backtrack_limit] scales its conflict budget) or with classic PODEM
    ([`Podem], kept for the ablation benchmark — it aborts far more
    often on equivalence-style UNSAT proofs). *)
