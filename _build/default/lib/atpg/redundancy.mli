(** Redundancy removal: classic ATPG-based netlist cleanup (the
    technique family of Cheng & Entrena the paper builds on).

    A connection whose stuck-at-[v] fault is untestable can be replaced
    by the constant [v] without changing any primary output; constant
    propagation then shrinks or deletes the downstream gates.  This is
    the area-oriented baseline POWDER's power-oriented substitutions are
    compared against in the ablation benchmark. *)

type stats = {
  wires_replaced : int;
  cells_rewritten : int;
  passes : int;
  aborted_faults : int;
}

val remove :
  ?backtrack_limit:int -> ?max_passes:int -> Netlist.Circuit.t -> stats
(** Iterates to a fixpoint (or [max_passes], default 4), modifying the
    circuit in place.  Untestability is proven with PODEM under the
    given backtrack budget; aborted proofs leave the wire alone. *)
