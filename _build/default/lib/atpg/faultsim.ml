module Circuit = Netlist.Circuit
module Engine = Sim.Engine

let detection_mask eng fault =
  let circ = Engine.circuit eng in
  let w = Engine.words eng in
  let before = Engine.po_signatures eng in
  let stuck_words v = Array.make w (if v then -1L else 0L) in
  let first, perturb =
    match fault.Fault.site with
    | Fault.Stem s ->
      (s, fun eng -> Engine.set_value eng s (stuck_words fault.Fault.stuck_at))
    | Fault.Branch (sink, pin) ->
      ( sink,
        fun eng ->
          Engine.recompute_with_pin_override eng ~sink ~pin
            (stuck_words fault.Fault.stuck_at) )
  in
  Engine.with_perturbation eng ~first ~perturb ~measure:(fun eng ->
      let diff = Array.make w 0L in
      List.iter
        (fun (name, old_sig) ->
          match Circuit.find_by_name circ name with
          | None -> ()
          | Some po ->
            let now = Engine.value eng po in
            for j = 0 to w - 1 do
              diff.(j) <- Int64.logor diff.(j) (Int64.logxor now.(j) old_sig.(j))
            done)
        before;
      diff)

let detects eng fault =
  Array.exists (fun w -> not (Int64.equal w 0L)) (detection_mask eng fault)

type coverage = { total : int; detected : int; undetected : Fault.t list }

let grade eng faults =
  let undetected = List.filter (fun f -> not (detects eng f)) faults in
  {
    total = List.length faults;
    detected = List.length faults - List.length undetected;
    undetected;
  }

let random_coverage circ ~patterns ~seed =
  let words = max 1 ((patterns + 63) / 64) in
  let eng = Engine.create circ ~words in
  Engine.randomize eng (Sim.Rng.create seed);
  grade eng (Fault.all_faults circ)
