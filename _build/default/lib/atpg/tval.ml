type v3 = V0 | V1 | VX

let v3_of_bool b = if b then V1 else V0
let equal_v3 a b = a = b
let is_definite = function V0 | V1 -> true | VX -> false
let to_char = function V0 -> '0' | V1 -> '1' | VX -> 'x'

type t = { good : v3; faulty : v3 }

let x = { good = VX; faulty = VX }
let of_bool b = { good = v3_of_bool b; faulty = v3_of_bool b }
let d = { good = V1; faulty = V0 }
let dbar = { good = V0; faulty = V1 }

let is_d_or_dbar v =
  match (v.good, v.faulty) with
  | V1, V0 | V0, V1 -> true
  | (V0 | V1 | VX), (V0 | V1 | VX) -> false

let equal a b = a = b

let pp fmt v =
  match (v.good, v.faulty) with
  | V1, V0 -> Format.pp_print_char fmt 'D'
  | V0, V1 -> Format.pp_print_string fmt "D'"
  | g, f when g = f -> Format.pp_print_char fmt (to_char g)
  | g, f -> Format.fprintf fmt "%c/%c" (to_char g) (to_char f)

let eval_cell func inputs =
  let k = Logic.Tt.num_vars func in
  if Array.length inputs <> k then invalid_arg "Tval.eval_cell";
  (* Fold the definite inputs into a base minterm and collect the X
     positions, then scan all completions. *)
  let base = ref 0 in
  let xs = ref [] in
  Array.iteri
    (fun i v ->
      match v with
      | V1 -> base := !base lor (1 lsl i)
      | V0 -> ()
      | VX -> xs := i :: !xs)
    inputs;
  let x_positions = Array.of_list !xs in
  let n_free = Array.length x_positions in
  let seen0 = ref false and seen1 = ref false in
  let rec scan j =
    if (not (!seen0 && !seen1)) && j < 1 lsl n_free then begin
      let m = ref !base in
      Array.iteri
        (fun bit pos -> if j land (1 lsl bit) <> 0 then m := !m lor (1 lsl pos))
        x_positions;
      if Logic.Tt.eval_int func !m then seen1 := true else seen0 := true;
      scan (j + 1)
    end
  in
  scan 0;
  match (!seen0, !seen1) with
  | true, false -> V0
  | false, true -> V1
  | true, true -> VX
  | false, false -> assert false
