(** A compact CDCL SAT solver used for the exact permissibility check
    on circuits too wide for exhaustive simulation.

    Features: two-watched-literal propagation, first-UIP clause
    learning with backjumping, VSIDS-style activities, geometric
    restarts, and a conflict budget (exceeding it reports [Timeout],
    which POWDER maps to "not proven permissible" just as the paper
    maps ATPG aborts).

    Literal encoding: variable [v >= 0], literal [2*v] (positive) or
    [2*v + 1] (negated). *)

type result =
  | Sat of bool array  (** model indexed by variable *)
  | Unsat
  | Timeout

val lit_of : int -> bool -> int
val solve : ?conflict_limit:int -> num_vars:int -> int array list -> result
(** Clauses are arrays of literals.  An empty clause makes the problem
    trivially UNSAT. *)
