(** Single stuck-at faults on a mapped netlist: a stem (gate output)
    or a branch (one fanout pin) stuck at 0 or 1. *)

type site =
  | Stem of Netlist.Circuit.node_id
  | Branch of Netlist.Circuit.node_id * int  (** sink node, pin index *)

type t = { site : site; stuck_at : bool }

val stem : Netlist.Circuit.node_id -> bool -> t
val branch : sink:Netlist.Circuit.node_id -> pin:int -> bool -> t

val all_faults : Netlist.Circuit.t -> t list
(** Both polarities on every live stem and, for multi-fanout stems, on
    every branch. *)

val to_string : Netlist.Circuit.t -> t -> string
val equal : t -> t -> bool
