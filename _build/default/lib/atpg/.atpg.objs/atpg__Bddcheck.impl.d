lib/atpg/bddcheck.ml: Array Gatelib Hashtbl List Logic Netlist
