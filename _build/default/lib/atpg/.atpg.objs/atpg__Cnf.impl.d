lib/atpg/cnf.ml: Array Gatelib List Logic Netlist Sat
