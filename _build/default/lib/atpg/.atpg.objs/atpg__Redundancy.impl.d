lib/atpg/redundancy.ml: Array Fault List Netlist Podem
