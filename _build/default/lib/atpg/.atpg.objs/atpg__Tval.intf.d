lib/atpg/tval.mli: Format Logic
