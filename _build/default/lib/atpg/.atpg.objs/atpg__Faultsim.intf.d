lib/atpg/faultsim.mli: Fault Netlist Sim
