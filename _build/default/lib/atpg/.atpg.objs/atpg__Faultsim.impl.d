lib/atpg/faultsim.ml: Array Fault Int64 List Netlist Sim
