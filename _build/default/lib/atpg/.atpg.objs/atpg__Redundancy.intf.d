lib/atpg/redundancy.mli: Netlist
