lib/atpg/equiv.mli: Gatelib Netlist
