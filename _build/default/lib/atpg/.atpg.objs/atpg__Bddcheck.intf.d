lib/atpg/bddcheck.mli: Netlist
