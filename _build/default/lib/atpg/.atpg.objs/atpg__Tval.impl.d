lib/atpg/tval.ml: Array Format Logic
