lib/atpg/sat.ml: Array Int List
