lib/atpg/sat.mli:
