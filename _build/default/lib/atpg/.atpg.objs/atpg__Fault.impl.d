lib/atpg/fault.ml: List Netlist Printf
