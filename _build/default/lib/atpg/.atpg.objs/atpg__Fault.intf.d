lib/atpg/fault.mli: Netlist
