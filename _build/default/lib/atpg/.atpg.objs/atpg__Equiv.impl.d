lib/atpg/equiv.ml: Array Cnf Gatelib Hashtbl Int64 List Logic Netlist Podem Sim String
