lib/atpg/cnf.mli: Netlist
