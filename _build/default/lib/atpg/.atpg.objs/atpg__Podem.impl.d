lib/atpg/podem.ml: Array Fault Gatelib List Netlist Tval
