module Circuit = Netlist.Circuit

type site = Stem of Circuit.node_id | Branch of Circuit.node_id * int

type t = { site : site; stuck_at : bool }

let stem id v = { site = Stem id; stuck_at = v }
let branch ~sink ~pin v = { site = Branch (sink, pin); stuck_at = v }

let all_faults circ =
  let acc = ref [] in
  Circuit.iter_live circ (fun id ->
      match Circuit.kind circ id with
      | Circuit.Po _ -> ()
      | Circuit.Pi | Circuit.Const _ | Circuit.Cell _ ->
        acc := stem id true :: stem id false :: !acc;
        if Circuit.num_fanouts circ id > 1 then
          List.iter
            (fun p ->
              if not (Circuit.is_po_node circ p.Circuit.sink) then
                acc :=
                  branch ~sink:p.Circuit.sink ~pin:p.Circuit.pin_index true
                  :: branch ~sink:p.Circuit.sink ~pin:p.Circuit.pin_index false
                  :: !acc)
            (Circuit.fanouts circ id));
  List.rev !acc

let to_string circ f =
  let polarity = if f.stuck_at then "sa1" else "sa0" in
  match f.site with
  | Stem id -> Printf.sprintf "%s/%s" (Circuit.name circ id) polarity
  | Branch (sink, pin) ->
    Printf.sprintf "%s.pin%d/%s" (Circuit.name circ sink) pin polarity

let equal a b = a = b
