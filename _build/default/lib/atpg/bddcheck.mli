(** Global-BDD justification — the baseline technology the paper
    contrasts with ("we don't need global BDDs, which are required by
    other techniques to exploit functional don't cares").

    Builds ROBDDs for the target's fanin cone bottom-up and decides
    whether the signal can be 1.  Exact when it completes; a node
    budget turns the classic exponential blow-ups (multipliers, wide
    arithmetic) into [Gave_up], which is precisely the failure mode the
    paper avoids by using ATPG instead. *)

type outcome =
  | Justified of (Netlist.Circuit.node_id * bool) list
  | Impossible
  | Gave_up of int  (** live BDD nodes when the budget tripped *)

val justify_one :
  ?node_limit:int -> Netlist.Circuit.t -> Netlist.Circuit.node_id -> outcome
(** Default node budget: 500_000. *)

val bdd_size_of_cone :
  ?node_limit:int -> Netlist.Circuit.t -> Netlist.Circuit.node_id -> int option
(** Shared-BDD node count of a signal's global function, or [None] on
    blow-up — the measurement behind the BDD-vs-ATPG ablation. *)

val signal_probability :
  ?node_limit:int -> Netlist.Circuit.t -> Netlist.Circuit.node_id -> float option
(** Exact probability that the signal is 1 under independent uniform
    primary inputs, via its global BDD ([None] on blow-up).  An exact
    alternative to the Monte-Carlo estimator for narrow cones. *)
