(** Library-aware netlist cleanup: propagate constant fanins through
    cells (re-matching the reduced function against the library),
    collapse cells that degenerate to wires or constants, and sweep
    dead logic.  Used by redundancy removal and as a general tidy-up
    after structural edits. *)

val propagate_constants : Circuit.t -> int
(** Run to a fixpoint; returns the number of cells rewritten.  Cells
    whose reduced function has no library match keep their constant
    fanin (still functionally correct). *)

val collapse_buffers : Circuit.t -> int
(** Replace the stems of identity cells (buffers) by their fanin.
    Returns the number collapsed. *)
