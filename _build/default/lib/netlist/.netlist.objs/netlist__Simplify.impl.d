lib/netlist/simplify.ml: Array Circuit Gatelib List Logic Option
