lib/netlist/circuit.ml: Array Format Gatelib Hashtbl List Printf Queue String
