lib/netlist/circuit.mli: Format Gatelib
