lib/netlist/simplify.mli: Circuit
