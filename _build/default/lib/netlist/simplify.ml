module Cell = Gatelib.Cell
module Library = Gatelib.Library
module Tt = Logic.Tt

let const_value circ id =
  match Circuit.kind circ id with
  | Circuit.Const b -> Some b
  | Circuit.Pi | Circuit.Cell _ | Circuit.Po _ -> None

(* Rewrite one cell that has at least one constant fanin.  Returns true
   when the netlist changed. *)
let rewrite_cell circ id =
  match Circuit.kind circ id with
  | Circuit.Pi | Circuit.Const _ | Circuit.Po _ -> false
  | Circuit.Cell (c, fs) ->
    let consts =
      Array.to_list (Array.mapi (fun i f -> (i, const_value circ f)) fs)
      |> List.filter_map (fun (i, v) -> Option.map (fun v -> (i, v)) v)
    in
    if consts = [] then false
    else begin
      (* cofactor the function on all constant pins *)
      let reduced =
        List.fold_left (fun f (i, v) -> Tt.cofactor i v f) c.Cell.func consts
      in
      let live_pins =
        List.filter
          (fun i -> not (List.mem_assoc i consts))
          (List.init (Cell.arity c) (fun i -> i))
      in
      (* keep only pins the reduced function still depends on *)
      let support = Tt.support reduced in
      let used_pins = List.filter (fun i -> List.mem i support) live_pins in
      if Circuit.num_fanouts circ id = 0 then false
      else if Tt.is_const_false reduced || Tt.is_const_true reduced then begin
        let konst = Circuit.add_const circ (Tt.is_const_true reduced) in
        Circuit.replace_stem circ id konst;
        true
      end
      else
        match used_pins with
        | [ j ] when Tt.equal (Tt.project reduced [ j ]) (Tt.var 1 0) ->
          (* wire-through *)
          if Circuit.would_cycle_stem circ id fs.(j) then false
          else begin
            Circuit.replace_stem circ id fs.(j);
            true
          end
        | _ ->
          let projected = Tt.project reduced used_pins in
          (match Library.match_tt_best (Circuit.library circ) projected with
          | None -> false
          | Some (cell', perm) ->
            let fanins = Array.make (Cell.arity cell') (-1) in
            List.iteri
              (fun k j -> fanins.(perm.(k)) <- fs.(j))
              used_pins;
            (* cheap guard: replacing with the same shape loops forever *)
            if cell'.Cell.name = c.Cell.name && Array.length fanins = Array.length fs
            then false
            else begin
              let fresh = Circuit.add_cell circ cell' fanins in
              Circuit.replace_stem circ id fresh;
              true
            end)
    end

let propagate_constants circ =
  let rewritten = ref 0 in
  let progress = ref true in
  while !progress do
    progress := false;
    Array.iter
      (fun id ->
        if Circuit.is_live circ id && rewrite_cell circ id then begin
          incr rewritten;
          progress := true
        end)
      (Circuit.topo_order circ);
    ignore (Circuit.sweep circ)
  done;
  !rewritten

let collapse_buffers circ =
  let collapsed = ref 0 in
  let identity = Tt.var 1 0 in
  Circuit.iter_live circ (fun id ->
      match Circuit.kind circ id with
      | Circuit.Cell (c, fs)
        when Cell.arity c = 1
             && Tt.equal c.Cell.func identity
             && Circuit.num_fanouts circ id > 0 ->
        if not (Circuit.would_cycle_stem circ id fs.(0)) then begin
          Circuit.replace_stem circ id fs.(0);
          incr collapsed
        end
      | Circuit.Cell _ | Circuit.Pi | Circuit.Const _ | Circuit.Po _ -> ());
  ignore (Circuit.sweep circ);
  !collapsed
