(** Technology mapping: AIG to mapped netlist over a gate library.

    Cut-based covering: enumerate k-feasible cuts per AND node, match
    each cut function (and its complement) against library cells under
    input permutation, then select covers by dynamic programming over
    both output phases with inverter conversion.  A structural fallback
    (AND2/NAND2 + inverters) guarantees totality for any library that
    contains an inverter and a 2-input AND or NAND.

    Objectives:
    - [Area]: classic area flow (leaf costs shared by fanout count);
    - [Power]: switched-capacitance flow — each cell pin costs
      [pin_cap * E(leaf)] with signal probabilities propagated through
      the AIG under the input-independence approximation, mirroring the
      power-oriented mapping the paper's initial circuits came from. *)

type objective = Area | Power

val map :
  ?objective:objective ->
  ?cut_size:int ->
  ?cuts_per_node:int ->
  ?input_prob:(string -> float) ->
  Gatelib.Library.t ->
  Aig.Graph.t ->
  Netlist.Circuit.t
(** Defaults: [objective = Power], [cut_size = 4], [cuts_per_node = 8],
    [input_prob _ = 0.5].  PI and PO names carry over from the AIG.
    @raise Invalid_argument if the library lacks an inverter or any
    2-input AND/NAND cell. *)
