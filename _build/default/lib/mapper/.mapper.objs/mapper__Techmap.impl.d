lib/mapper/techmap.ml: Aig Array Gatelib Hashtbl Int List Logic Netlist
