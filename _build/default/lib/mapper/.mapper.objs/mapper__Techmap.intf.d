lib/mapper/techmap.mli: Aig Gatelib Netlist
