module G = Aig.Graph
module Tt = Logic.Tt
module Cell = Gatelib.Cell
module Library = Gatelib.Library
module Circuit = Netlist.Circuit

type objective = Area | Power

type choice =
  | C_pi
  | C_inv
  | C_match of { leaves : int array; cell : Cell.t; perm : int array }
  | C_struct
  | C_none

(* ------------------------------------------------------------------ *)
(* Cut enumeration.                                                    *)
(* ------------------------------------------------------------------ *)

let merge_cuts k c1 c2 =
  (* merge two sorted leaf arrays; None if the union exceeds k *)
  let n1 = Array.length c1 and n2 = Array.length c2 in
  let out = Array.make (n1 + n2) 0 in
  let rec go i j m =
    if m > k then None
    else if i = n1 && j = n2 then Some (Array.sub out 0 m)
    else if i = n1 || (j < n2 && c2.(j) < c1.(i)) then begin
      out.(m) <- c2.(j);
      go i (j + 1) (m + 1)
    end
    else if j = n2 || c1.(i) < c2.(j) then begin
      out.(m) <- c1.(i);
      go (i + 1) j (m + 1)
    end
    else begin
      out.(m) <- c1.(i);
      go (i + 1) (j + 1) (m + 1)
    end
  in
  go 0 0 0

let enumerate_cuts g ~cut_size ~cuts_per_node =
  let n = G.num_nodes g in
  let cuts = Array.make n [] in
  for id = 1 to n - 1 do
    match G.node_fanins g id with
    | None -> cuts.(id) <- [ [| id |] ]
    | Some (l0, l1) ->
      let c0 = cuts.(G.node_of l0) and c1 = cuts.(G.node_of l1) in
      let merged =
        List.concat_map
          (fun a -> List.filter_map (fun b -> merge_cuts cut_size a b) c1)
          c0
      in
      let dedup = Hashtbl.create 16 in
      let unique =
        List.filter
          (fun c ->
            let key = Array.to_list c in
            if Hashtbl.mem dedup key then false
            else begin
              Hashtbl.add dedup key ();
              true
            end)
          merged
      in
      let sorted =
        List.sort
          (fun a b -> Int.compare (Array.length a) (Array.length b))
          unique
      in
      let rec take n = function
        | [] -> []
        | _ when n = 0 -> []
        | x :: rest -> x :: take (n - 1) rest
      in
      cuts.(id) <- [| id |] :: take cuts_per_node sorted
  done;
  cuts

(* Function of node [root] over the cut leaves (positive variables). *)
let cut_function g root leaves =
  let k = Array.length leaves in
  let var_of = Hashtbl.create 8 in
  Array.iteri (fun i l -> Hashtbl.add var_of l i) leaves;
  let memo = Hashtbl.create 16 in
  let rec f node =
    match Hashtbl.find_opt memo node with
    | Some tt -> tt
    | None ->
      let tt =
        match Hashtbl.find_opt var_of node with
        | Some i -> Tt.var k i
        | None -> (
          match G.node_fanins g node with
          | None -> invalid_arg "cut_function: leaf set does not cover the cone"
          | Some (l0, l1) ->
            let t0 = f (G.node_of l0) in
            let t0 = if G.is_complement l0 then Tt.not_ t0 else t0 in
            let t1 = f (G.node_of l1) in
            let t1 = if G.is_complement l1 then Tt.not_ t1 else t1 in
            Tt.and_ t0 t1)
      in
      Hashtbl.add memo node tt;
      tt
  in
  f root

(* ------------------------------------------------------------------ *)
(* Signal probabilities on the AIG (independence approximation).       *)
(* ------------------------------------------------------------------ *)

let node_probs g input_prob =
  let n = G.num_nodes g in
  let p = Array.make n 0.0 in
  for id = 1 to n - 1 do
    match G.node_fanins g id with
    | None ->
      (match G.pi_name g id with
      | Some name -> p.(id) <- input_prob name
      | None -> p.(id) <- 0.0)
    | Some (l0, l1) ->
      let lp l =
        let q = p.(G.node_of l) in
        if G.is_complement l then 1.0 -. q else q
      in
      p.(id) <- lp l0 *. lp l1
  done;
  p

let activity p = 2.0 *. p *. (1.0 -. p)

(* ------------------------------------------------------------------ *)
(* Mapping.                                                            *)
(* ------------------------------------------------------------------ *)

let map ?(objective = Power) ?(cut_size = 4) ?(cuts_per_node = 8)
    ?(input_prob = fun _ -> 0.5) lib g =
  let inv = try Library.inverter lib with Not_found ->
    invalid_arg "Techmap.map: library has no inverter"
  in
  let and2_tt = Tt.and_ (Tt.var 2 0) (Tt.var 2 1) in
  let nand2_tt = Tt.not_ and2_tt in
  let and_cell = Library.match_tt_best lib and2_tt in
  let nand_cell = Library.match_tt_best lib nand2_tt in
  if and_cell = None && nand_cell = None then
    invalid_arg "Techmap.map: library has no 2-input AND or NAND";
  let n = G.num_nodes g in
  let probs = node_probs g input_prob in
  let refs = G.fanout_count g in
  let share id = float_of_int (max 1 refs.(id)) in
  let cell_cost cell perm leaves =
    match objective with
    | Area -> cell.Cell.area
    | Power ->
      let pins = ref (1e-6 *. cell.Cell.area) in
      Array.iteri
        (fun i leaf ->
          pins :=
            !pins +. (cell.Cell.pin_caps.(perm.(i)) *. activity probs.(leaf)))
        leaves;
      !pins
  in
  let inv_cost id =
    match objective with
    | Area -> inv.Cell.area
    | Power -> (1e-6 *. inv.Cell.area) +. (inv.Cell.pin_caps.(0) *. activity probs.(id))
  in
  let cuts = enumerate_cuts g ~cut_size ~cuts_per_node in
  let cost = Array.make_matrix n 2 infinity in
  let choice = Array.make_matrix n 2 C_none in
  let consider id phase c ch =
    if c < cost.(id).(phase) then begin
      cost.(id).(phase) <- c;
      choice.(id).(phase) <- ch
    end
  in
  for id = 1 to n - 1 do
    match G.node_fanins g id with
    | None ->
      consider id 0 0.0 C_pi;
      consider id 1 (inv_cost id) C_inv
    | Some (l0, l1) ->
      (* matched candidates from every non-trivial cut *)
      List.iter
        (fun cut ->
          if Array.length cut > 1 || cut.(0) <> id then begin
            let f = cut_function g id cut in
            let support = Tt.support f in
            if List.length support >= 2 then begin
              let leaves =
                Array.of_list (List.map (fun v -> cut.(v)) support)
              in
              let f = Tt.project f support in
              let leaf_costs =
                Array.fold_left
                  (fun acc leaf -> acc +. (cost.(leaf).(0) /. share leaf))
                  0.0 leaves
              in
              let try_phase phase target =
                match Library.match_tt_best lib target with
                | None -> ()
                | Some (cell, perm) ->
                  consider id phase
                    (cell_cost cell perm leaves +. leaf_costs)
                    (C_match { leaves; cell; perm })
              in
              try_phase 0 f;
              try_phase 1 (Tt.not_ f)
            end
          end)
        cuts.(id);
      (* structural fallback for the positive phase *)
      let edge_cost l =
        let nd = G.node_of l and ph = if G.is_complement l then 1 else 0 in
        cost.(nd).(ph) /. share nd
      in
      let struct_cost =
        let base = edge_cost l0 +. edge_cost l1 in
        match (and_cell, nand_cell) with
        | Some (c, perm), _ ->
          base +. cell_cost c perm [| G.node_of l0; G.node_of l1 |]
        | None, Some (c, perm) ->
          base
          +. cell_cost c perm [| G.node_of l0; G.node_of l1 |]
          +. inv_cost id
        | None, None -> infinity
      in
      consider id 0 struct_cost C_struct;
      (* inverter conversions both ways *)
      consider id 1 (cost.(id).(0) +. inv_cost id) C_inv;
      consider id 0 (cost.(id).(1) +. inv_cost id) C_inv
  done;
  (* --------------------------------------------------------------- *)
  (* Cover construction.                                              *)
  (* --------------------------------------------------------------- *)
  let circ = Circuit.create lib in
  let pi_ids = Hashtbl.create 16 in
  List.iter
    (fun (name, l) -> Hashtbl.add pi_ids (G.node_of l) (Circuit.add_pi circ ~name))
    (G.pis g);
  let impl_memo = Hashtbl.create 64 in
  let rec impl id phase =
    match Hashtbl.find_opt impl_memo (id, phase) with
    | Some node -> node
    | None ->
      let node =
        match choice.(id).(phase) with
        | C_pi -> Hashtbl.find pi_ids id
        | C_inv -> Circuit.add_cell circ inv [| impl id (1 - phase) |]
        | C_match { leaves; cell; perm } ->
          let fanins = Array.make (Cell.arity cell) (-1) in
          Array.iteri (fun i leaf -> fanins.(perm.(i)) <- impl leaf 0) leaves;
          Circuit.add_cell circ cell fanins
        | C_struct -> (
          let edge l = impl (G.node_of l) (if G.is_complement l then 1 else 0) in
          match (G.node_fanins g id, and_cell, nand_cell) with
          | Some (l0, l1), Some (c, _), _ ->
            Circuit.add_cell circ c [| edge l0; edge l1 |]
          | Some (l0, l1), None, Some (c, _) ->
            let nand_node = Circuit.add_cell circ c [| edge l0; edge l1 |] in
            Circuit.add_cell circ inv [| nand_node |]
          | _, _, _ -> assert false)
        | C_none -> assert false
      in
      Hashtbl.add impl_memo (id, phase) node;
      node
  in
  List.iter
    (fun (name, l) ->
      let driver =
        if G.node_of l = 0 then Circuit.add_const circ (G.is_complement l)
        else impl (G.node_of l) (if G.is_complement l then 1 else 0)
      in
      ignore (Circuit.add_po circ ~name driver))
    (G.pos g);
  circ
