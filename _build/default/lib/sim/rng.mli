(** Deterministic splitmix64 generator; every stochastic component of
    the library threads one of these explicitly so runs are
    reproducible. *)

type t

val create : int64 -> t
val next : t -> int64
val next_float : t -> float
(** Uniform in [0, 1). *)

val bits_with_prob : t -> float -> int64
(** A 64-bit word whose bits are independently 1 with probability [p]. *)

val split : t -> t
(** A statistically independent child generator. *)
