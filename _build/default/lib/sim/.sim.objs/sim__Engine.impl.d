lib/sim/engine.ml: Array Gatelib Hashtbl Int64 List Logic Netlist Rng
