lib/sim/rng.mli:
