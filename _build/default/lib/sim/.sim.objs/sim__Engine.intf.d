lib/sim/engine.mli: Logic Netlist Rng
