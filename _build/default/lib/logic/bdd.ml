(* Hash-consed ROBDD with an ite-based apply and a computed cache. *)

type t = int (* node index; 0 = false, 1 = true *)

exception Node_limit_exceeded

type manager = {
  mutable var_of : int array;   (* per node *)
  mutable low_of : int array;
  mutable high_of : int array;
  mutable count : int;
  unique : (int * int * int, int) Hashtbl.t;  (* (var, low, high) -> node *)
  cache : (int * int * int, int) Hashtbl.t;   (* ite cache *)
  node_limit : int;
}

let leaf_var = max_int

let manager ?(node_limit = 1_000_000) () =
  let m =
    {
      var_of = Array.make 1024 leaf_var;
      low_of = Array.make 1024 0;
      high_of = Array.make 1024 0;
      count = 2;
      unique = Hashtbl.create 4096;
      cache = Hashtbl.create 4096;
      node_limit;
    }
  in
  (* node 0 = false, node 1 = true *)
  m.var_of.(0) <- leaf_var;
  m.var_of.(1) <- leaf_var;
  m

let bdd_false _ = 0
let bdd_true _ = 1

let grow m =
  if m.count = Array.length m.var_of then begin
    let n = 2 * Array.length m.var_of in
    let var' = Array.make n leaf_var in
    let low' = Array.make n 0 in
    let high' = Array.make n 0 in
    Array.blit m.var_of 0 var' 0 m.count;
    Array.blit m.low_of 0 low' 0 m.count;
    Array.blit m.high_of 0 high' 0 m.count;
    m.var_of <- var';
    m.low_of <- low';
    m.high_of <- high'
  end

let mk m v low high =
  if low = high then low
  else
    match Hashtbl.find_opt m.unique (v, low, high) with
    | Some n -> n
    | None ->
      if m.count >= m.node_limit then raise Node_limit_exceeded;
      grow m;
      let n = m.count in
      m.count <- m.count + 1;
      m.var_of.(n) <- v;
      m.low_of.(n) <- low;
      m.high_of.(n) <- high;
      Hashtbl.add m.unique (v, low, high) n;
      n

let var m i = mk m i 0 1

let top_var m f g h =
  let v t = m.var_of.(t) in
  min (v f) (min (v g) (v h))

let cofactors m node v =
  if node <= 1 || m.var_of.(node) <> v then (node, node)
  else (m.low_of.(node), m.high_of.(node))

let rec ite m f g h =
  if f = 1 then g
  else if f = 0 then h
  else if g = h then g
  else if g = 1 && h = 0 then f
  else begin
    match Hashtbl.find_opt m.cache (f, g, h) with
    | Some r -> r
    | None ->
      let v = top_var m f g h in
      let f0, f1 = cofactors m f v in
      let g0, g1 = cofactors m g v in
      let h0, h1 = cofactors m h v in
      let low = ite m f0 g0 h0 in
      let high = ite m f1 g1 h1 in
      let r = mk m v low high in
      Hashtbl.add m.cache (f, g, h) r;
      r
  end

let not_ m f = ite m f 0 1
let and_ m f g = ite m f g 0
let or_ m f g = ite m f 1 g
let xor m f g = ite m f (ite m g 0 1) g

let equal (a : t) (b : t) = a = b
let is_true _ f = f = 1
let is_false _ f = f = 0

let rec eval m f assign =
  if f = 0 then false
  else if f = 1 then true
  else if assign m.var_of.(f) then eval m m.high_of.(f) assign
  else eval m m.low_of.(f) assign

let size m f =
  let seen = Hashtbl.create 64 in
  let rec walk f =
    if f > 1 && not (Hashtbl.mem seen f) then begin
      Hashtbl.add seen f ();
      walk m.low_of.(f);
      walk m.high_of.(f)
    end
  in
  walk f;
  Hashtbl.length seen + 2

let live_nodes m = m.count

let any_sat m f =
  if f = 0 then None
  else begin
    let rec walk f acc =
      if f = 1 then acc
      else if m.high_of.(f) <> 0 then
        walk m.high_of.(f) ((m.var_of.(f), true) :: acc)
      else walk m.low_of.(f) ((m.var_of.(f), false) :: acc)
    in
    Some (List.rev (walk f []))
  end

let sat_fraction m f ~num_vars =
  let memo = Hashtbl.create 64 in
  let rec frac f =
    if f = 0 then 0.0
    else if f = 1 then 1.0
    else
      match Hashtbl.find_opt memo f with
      | Some x -> x
      | None ->
        let x = 0.5 *. (frac m.low_of.(f) +. frac m.high_of.(f)) in
        Hashtbl.add memo f x;
        x
  in
  ignore num_vars;
  frac f
