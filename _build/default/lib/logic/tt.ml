type t = { n : int; w : int64 }

let max_vars = 6

let mask n = if n >= 6 then -1L else Int64.sub (Int64.shift_left 1L (1 lsl n)) 1L

let create n word =
  if n < 0 || n > max_vars then invalid_arg "Tt.create";
  { n; w = Int64.logand word (mask n) }

let num_vars t = t.n
let word t = t.w

let const_false n = create n 0L
let const_true n = create n (-1L)

(* Bit pattern of the projection on variable [i]: bit m is set iff bit i
   of m is set.  These are the classic 0xAAAA.., 0xCCCC.., ... masks. *)
let var_masks =
  [| 0xAAAAAAAAAAAAAAAAL; 0xCCCCCCCCCCCCCCCCL; 0xF0F0F0F0F0F0F0F0L;
     0xFF00FF00FF00FF00L; 0xFFFF0000FFFF0000L; 0xFFFFFFFF00000000L |]

let var n i =
  if i < 0 || i >= n then invalid_arg "Tt.var";
  create n var_masks.(i)

let check2 a b = if a.n <> b.n then invalid_arg "Tt: arity mismatch"

let not_ a = { a with w = Int64.logand (Int64.lognot a.w) (mask a.n) }
let and_ a b = check2 a b; { a with w = Int64.logand a.w b.w }
let or_ a b = check2 a b; { a with w = Int64.logor a.w b.w }
let xor a b = check2 a b; { a with w = Int64.logxor a.w b.w }
let nand a b = not_ (and_ a b)
let nor a b = not_ (or_ a b)
let xnor a b = not_ (xor a b)

let eval_int t m = Int64.logand (Int64.shift_right_logical t.w m) 1L = 1L

let eval t inputs =
  if Array.length inputs <> t.n then invalid_arg "Tt.eval";
  let m = ref 0 in
  for i = 0 to t.n - 1 do
    if inputs.(i) then m := !m lor (1 lsl i)
  done;
  eval_int t !m

let is_const_false t = Int64.equal t.w 0L
let is_const_true t = Int64.equal t.w (mask t.n)

let equal a b = a.n = b.n && Int64.equal a.w b.w
let compare a b =
  let c = Int.compare a.n b.n in
  if c <> 0 then c else Int64.compare a.w b.w
let hash t = Hashtbl.hash (t.n, t.w)

let cofactor i v t =
  if i < 0 || i >= t.n then invalid_arg "Tt.cofactor";
  let vm = var_masks.(i) in
  let shift = 1 lsl i in
  if v then
    let hi = Int64.logand t.w vm in
    { t with w = Int64.logand (Int64.logor hi (Int64.shift_right_logical hi shift)) (mask t.n) }
  else
    let lo = Int64.logand t.w (Int64.lognot vm) in
    { t with w = Int64.logand (Int64.logor lo (Int64.shift_left lo shift)) (mask t.n) }

let depends_on t i = not (equal (cofactor i false t) (cofactor i true t))

let support t =
  let rec loop i acc =
    if i < 0 then acc
    else loop (i - 1) (if depends_on t i then i :: acc else acc)
  in
  loop (t.n - 1) []

let count_ones t =
  let rec pop w acc =
    if Int64.equal w 0L then acc
    else pop (Int64.logand w (Int64.sub w 1L)) (acc + 1)
  in
  pop t.w 0

let swap_adjacent t i =
  if i < 0 || i + 1 >= t.n then invalid_arg "Tt.swap_adjacent";
  (* Minterm bits where var i and var i+1 differ get exchanged. *)
  let lo = 1 lsl i in
  let a = Int64.logand t.w (Int64.logand var_masks.(i) (Int64.lognot var_masks.(i + 1))) in
  let b = Int64.logand t.w (Int64.logand var_masks.(i + 1) (Int64.lognot var_masks.(i))) in
  let keep = Int64.logand t.w (Int64.lognot (Int64.logor
    (Int64.logand var_masks.(i) (Int64.lognot var_masks.(i + 1)))
    (Int64.logand var_masks.(i + 1) (Int64.lognot var_masks.(i))))) in
  { t with
    w = Int64.logor keep
          (Int64.logor (Int64.shift_left a lo) (Int64.shift_right_logical b lo)) }

let permute t perm =
  if Array.length perm <> t.n then invalid_arg "Tt.permute";
  (* Selection-sort by adjacent swaps: move into place one var at a time. *)
  let cur = Array.copy perm in
  let res = ref t in
  for target = 0 to t.n - 1 do
    (* find j >= target with cur.(j) = target, bubble it down to target *)
    let j = ref target in
    while cur.(!j) <> target do incr j done;
    while !j > target do
      res := swap_adjacent !res (!j - 1);
      let tmp = cur.(!j - 1) in
      cur.(!j - 1) <- cur.(!j);
      cur.(!j) <- tmp;
      decr j
    done
  done;
  !res

let project t vars =
  let k = List.length vars in
  if k > max_vars then invalid_arg "Tt.project";
  let vars = Array.of_list vars in
  let w = ref 0L in
  for m = 0 to (1 lsl k) - 1 do
    let full = ref 0 in
    Array.iteri
      (fun i v -> if m land (1 lsl i) <> 0 then full := !full lor (1 lsl v))
      vars;
    if eval_int t !full then w := Int64.logor !w (Int64.shift_left 1L m)
  done;
  create k !w

let of_minterms n ms =
  let w =
    List.fold_left
      (fun acc m ->
        if m < 0 || m >= 1 lsl n then invalid_arg "Tt.of_minterms";
        Int64.logor acc (Int64.shift_left 1L m))
      0L ms
  in
  create n w

let minterms t =
  let rec loop m acc =
    if m < 0 then acc
    else loop (m - 1) (if eval_int t m then m :: acc else acc)
  in
  loop ((1 lsl t.n) - 1) []

let to_string t = Printf.sprintf "%d:0x%Lx" t.n t.w
let pp fmt t = Format.pp_print_string fmt (to_string t)
